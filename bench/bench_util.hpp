// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "common/cli.hpp"

namespace qec::bench {

/// Estimated expected defect count for a phenomenological run (empirical
/// density ~= 4.9 p per check per layer; see DESIGN.md).
inline double expected_defects(int distance, double p, int rounds) {
  return 4.9 * p * distance * (distance - 1) * (rounds + 1);
}

/// MWPM decode cost grows ~cubically in the defect count; adapt the trial
/// count so a single sweep point stays within `budget_ms` while never
/// dropping below a statistical floor.
inline int mwpm_trials(int base, int distance, double p, int rounds,
                       double budget_ms = 10000.0) {
  const double defects = expected_defects(distance, p, rounds);
  const double cost_ms = 1.2e-5 * defects * defects * defects + 0.05;
  const int affordable = static_cast<int>(budget_ms / cost_ms);
  return std::clamp(affordable, 24, base);
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==== %s ====\n", title);
  std::printf("reproduces: %s\n\n", paper_ref);
}

}  // namespace qec::bench
