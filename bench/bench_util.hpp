// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cli.hpp"

namespace qec::bench {

/// Splits "a,b,c" into items, dropping empty segments.
inline std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto comma = text.find(',', start);
    const auto end = comma == std::string::npos ? text.size() : comma;
    if (end > start) items.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return items;
}

/// Parses a comma-separated list of numbers; throws std::invalid_argument
/// naming the first non-numeric item.
inline std::vector<double> split_doubles(const std::string& text) {
  std::vector<double> values;
  for (const auto& item : split_list(text)) {
    std::size_t used = 0;
    double value = 0.0;
    try {
      value = std::stod(item, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != item.size()) {
      throw std::invalid_argument("not a number in list: '" + item + "'");
    }
    values.push_back(value);
  }
  return values;
}

/// snprintf-to-std::string with a printf spec (CSV/table cells).
inline std::string fmt(double value, const char* spec = "%.4g") {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), spec, value);
  return buffer;
}

/// Estimated expected defect count for a phenomenological run (empirical
/// density ~= 4.9 p per check per layer; see DESIGN.md).
inline double expected_defects(int distance, double p, int rounds) {
  return 4.9 * p * distance * (distance - 1) * (rounds + 1);
}

/// MWPM decode cost grows ~cubically in the defect count; adapt the trial
/// count so a single sweep point stays within `budget_ms` while never
/// dropping below a statistical floor.
inline int mwpm_trials(int base, int distance, double p, int rounds,
                       double budget_ms = 10000.0) {
  const double defects = expected_defects(distance, p, rounds);
  const double cost_ms = 1.2e-5 * defects * defects * defects + 0.05;
  const int affordable = static_cast<int>(budget_ms / cost_ms);
  return std::clamp(affordable, 24, base);
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==== %s ====\n", title);
  std::printf("reproduces: %s\n\n", paper_ref);
}

}  // namespace qec::bench
