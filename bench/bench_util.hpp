// Shared helpers for the paper-reproduction bench binaries.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cli.hpp"

namespace qec::bench {

/// Splits "a,b,c" into items, dropping empty segments.
inline std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto comma = text.find(',', start);
    const auto end = comma == std::string::npos ? text.size() : comma;
    if (end > start) items.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return items;
}

/// Parses a comma-separated list of numbers; throws std::invalid_argument
/// naming the first non-numeric item.
inline std::vector<double> split_doubles(const std::string& text) {
  std::vector<double> values;
  for (const auto& item : split_list(text)) {
    std::size_t used = 0;
    double value = 0.0;
    try {
      value = std::stod(item, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != item.size()) {
      throw std::invalid_argument("not a number in list: '" + item + "'");
    }
    values.push_back(value);
  }
  return values;
}

/// snprintf-to-std::string with a printf spec (CSV/table cells).
inline std::string fmt(double value, const char* spec = "%.4g") {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), spec, value);
  return buffer;
}

/// Estimated expected defect count for a phenomenological run (empirical
/// density ~= 4.9 p per check per layer; see DESIGN.md).
inline double expected_defects(int distance, double p, int rounds) {
  return 4.9 * p * distance * (distance - 1) * (rounds + 1);
}

/// MWPM decode cost grows ~cubically in the defect count; adapt the trial
/// count so a single sweep point stays within `budget_ms` while never
/// dropping below a statistical floor.
inline int mwpm_trials(int base, int distance, double p, int rounds,
                       double budget_ms = 10000.0) {
  const double defects = expected_defects(distance, p, rounds);
  const double cost_ms = 1.2e-5 * defects * defects * defects + 0.05;
  const int affordable = static_cast<int>(budget_ms / cost_ms);
  return std::clamp(affordable, 24, base);
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==== %s ====\n", title);
  std::printf("reproduces: %s\n\n", paper_ref);
}

/// Uniform "--foo-csv=FILE written" reporting: prints the success line or
/// the cannot-write error. Returns `ok` so callers can fold it into their
/// exit status (`if (!report_written(...)) return 1;`).
inline bool report_written(bool ok, const char* what, const std::string& path) {
  if (!ok) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("%s written to %s\n", what, path.c_str());
  return true;
}

// ---- machine-readable bench records (--json=FILE) ----------------------
//
// Every perf claim in this repo is pinned to a JSON run record (see
// BENCH_lane_scaling.json): the exact config, the git revision the binary
// was built from, and the measured per-cell numbers. The emitter is
// deliberately tiny — objects and arrays are composed as strings — because
// the records are flat and the only consumers are tools/check_bench_json.py
// and a human with a diff.

inline std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Incremental JSON object: add() accepts strings (quoted + escaped),
/// numbers, and raw JSON fragments (nested objects/arrays).
class JsonObject {
 public:
  JsonObject& add(const std::string& key, const std::string& value) {
    return add_raw(key, "\"" + json_escape(value) + "\"");
  }
  JsonObject& add(const std::string& key, const char* value) {
    return add(key, std::string(value));
  }
  JsonObject& add(const std::string& key, double value) {
    return add_raw(key, fmt(value, "%.10g"));
  }
  JsonObject& add(const std::string& key, std::int64_t value) {
    return add_raw(key, std::to_string(value));
  }
  JsonObject& add(const std::string& key, int value) {
    return add_raw(key, std::to_string(value));
  }
  JsonObject& add_raw(const std::string& key, const std::string& raw_json) {
    if (!body_.empty()) body_ += ", ";
    body_ += "\"" + json_escape(key) + "\": " + raw_json;
    return *this;
  }
  std::string str() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

/// Joins raw JSON fragments into an array.
inline std::string json_array(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += ", ";
    out += items[i];
  }
  return out + "]";
}

inline std::string json_array(const std::vector<double>& values) {
  std::vector<std::string> items;
  items.reserve(values.size());
  for (const double v : values) items.push_back(fmt(v, "%.10g"));
  return json_array(items);
}

/// HEAD revision of the repo the bench runs from, or "unknown" outside a
/// work tree — provenance for pinned perf records.
inline std::string git_revision() {
  std::string rev;
#if defined(_WIN32)
  FILE* pipe = nullptr;
#else
  FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r");
#endif
  if (pipe) {
    char buf[128];
    if (std::fgets(buf, sizeof(buf), pipe)) rev = buf;
#if !defined(_WIN32)
    ::pclose(pipe);
#endif
  }
  while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
    rev.pop_back();
  }
  const bool plausible =
      rev.size() == 40 &&
      rev.find_first_not_of("0123456789abcdef") == std::string::npos;
  return plausible ? rev : "unknown";
}

/// Writes one JSON document to `path`; throws std::runtime_error on I/O
/// failure (a silently missing perf record is worse than a failed bench).
inline void write_json_file(const std::string& path,
                            const std::string& json) {
  FILE* out = std::fopen(path.c_str(), "w");
  if (!out) throw std::runtime_error("cannot open '" + path + "' for writing");
  const bool ok = std::fputs(json.c_str(), out) >= 0 &&
                  std::fputc('\n', out) != EOF;
  if (std::fclose(out) != 0 || !ok) {
    throw std::runtime_error("short write to '" + path + "'");
  }
}

}  // namespace qec::bench
