// Extension experiment (beyond the paper): decoder accuracy under
// circuit-level depolarizing noise in the syndrome-extraction circuit.
// The paper evaluates the phenomenological model only; the on-line decoder
// consumes circuit-level histories unchanged, and the interesting question
// is how far the thresholds drop when every CNOT, reset, idle and readout
// can fault (typically 3-5x for uniform-weight matching decoders).
//
//   ext_circuit_noise [--trials=400]
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "mwpm/mwpm_decoder.hpp"
#include "noise/circuit_level.hpp"
#include "qecool/qecool_decoder.hpp"
#include "sim/threshold.hpp"

namespace {

double run_point(qec::Decoder& decoder, int d, double p, int trials,
                 std::uint64_t seed) {
  const qec::PlanarLattice lat(d);
  qec::Xoshiro256ss rng(seed + static_cast<std::uint64_t>(d) * 131 +
                        static_cast<std::uint64_t>(p * 1e9));
  int failures = 0;
  for (int trial = 0; trial < trials; ++trial) {
    const auto h = qec::sample_circuit_history(lat, {p, d, 1.0}, rng);
    const auto r = decoder.decode(lat, h);
    failures += qec::logical_failure(lat, h, r);
  }
  return static_cast<double>(failures) / trials;
}

}  // namespace

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  if (qec::handle_help(
          args, "ext_circuit_noise",
          "decoder accuracy under circuit-level depolarizing noise in the "
          "syndrome-extraction circuit (extension beyond the paper)",
          "  --trials=400          Monte Carlo trials per point (env "
          "QECOOL_TRIALS)\n")) {
    return 0;
  }
  const int trials = static_cast<int>(qec::trials_override(args, 400));

  qec::bench::print_header(
      "Extension: circuit-level noise thresholds",
      "not in paper — natural extension of Fig 4a / Fig 7");

  const std::vector<int> ds = {5, 7, 9};

  struct Entry {
    const char* name;
    std::function<std::unique_ptr<qec::Decoder>()> make;
    int trial_divisor;
    std::vector<double> ps;  // grid bracketing the expected crossing
  };
  const Entry entries[] = {
      {"batch-QECOOL",
       [] { return std::make_unique<qec::BatchQecoolDecoder>(); }, 1,
       {0.0005, 0.001, 0.0015, 0.002, 0.003, 0.004, 0.006}},
      {"MWPM", [] { return std::make_unique<qec::MwpmDecoder>(); }, 2,
       {0.002, 0.004, 0.006, 0.008, 0.010, 0.012}},
  };

  for (const auto& entry : entries) {
    const auto& ps = entry.ps;
    std::vector<std::string> header = {"d"};
    for (double p : ps) header.push_back("p=" + qec::TextTable::fmt(p, 4));
    qec::TextTable table(header);
    std::vector<qec::DistanceCurve> curves;
    std::printf("--- %s ---\n", entry.name);
    for (int d : ds) {
      qec::DistanceCurve curve{d, {}};
      std::vector<std::string> row = {std::to_string(d)};
      for (double p : ps) {
        auto decoder = entry.make();
        const double pl =
            run_point(*decoder, d, p, trials / entry.trial_divisor, 777);
        curve.points.push_back({p, pl});
        row.push_back(qec::TextTable::sci(pl, 2));
      }
      curves.push_back(curve);
      table.add_row(row);
      std::fprintf(stderr, "  %s d=%d done\n", entry.name, d);
    }
    table.print();
    const auto th = qec::estimate_threshold(curves);
    std::printf("circuit-level p_th (%s): %s  (phenomenological: "
                "QECOOL ~1%%, MWPM ~3%%)\n\n",
                entry.name,
                th ? qec::TextTable::fmt(*th, 5).c_str() : "n/a");
  }

  const auto counts = qec::count_circuit_locations(qec::PlanarLattice(9));
  std::printf("fault locations per round at d=9: %d CNOTs, %d resets, "
              "%d measurements, %d idle slots\n",
              counts.cnots, counts.resets, counts.measurements,
              counts.idle_slots);
  return 0;
}
