// Extension experiment: correlated two-sector depolarizing noise —
// validates the paper's footnote 2 ("even if X and Z errors are corrected
// independently, all errors can be decoded correctly"): decoding the two
// sectors independently under correlated Y errors gives a combined logical
// error rate equal to the product expectation from two independent
// single-sector runs at the sector flip rate 2p/3.
//
//   ext_two_sector [--trials=2000] [--d=5]
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "noise/depolarizing.hpp"
#include "qecool/qecool_decoder.hpp"
#include "sim/monte_carlo.hpp"

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  if (qec::handle_help(
          args, "ext_two_sector",
          "correlated two-sector depolarizing noise: validates independent "
          "X/Z decoding under correlated Y errors (paper footnote 2)",
          "  --trials=2000         Monte Carlo trials (env QECOOL_TRIALS)\n"
          "  --d=5                 code distance\n")) {
    return 0;
  }
  const int trials = static_cast<int>(qec::trials_override(args, 2000));
  const int d = static_cast<int>(args.get_int_or("d", 5));

  qec::bench::print_header(
      "Extension: correlated X/Z sectors under depolarizing noise",
      "paper footnote 2 — independent-sector decoding");

  qec::TextTable table({"p (depolarizing)", "p_L X sector", "p_L Z sector",
                        "p_L combined (either)", "1-(1-pX)(1-pZ)",
                        "single-sector @ 2p/3"});
  const qec::PlanarLattice lat(d);
  for (double p : {0.0075, 0.015, 0.03}) {
    qec::Xoshiro256ss rng(0xdead + static_cast<std::uint64_t>(p * 1e6));
    qec::BatchQecoolDecoder dec_x, dec_z;
    int fx = 0, fz = 0, fboth = 0;
    for (int trial = 0; trial < trials; ++trial) {
      const auto h = qec::sample_depolarizing_history(
          lat, {p, qec::sector_flip_rate(p), d}, rng);
      const bool failed_x = qec::logical_failure(lat, h.x, dec_x.decode(lat, h.x));
      const bool failed_z = qec::logical_failure(lat, h.z, dec_z.decode(lat, h.z));
      fx += failed_x;
      fz += failed_z;
      fboth += (failed_x || failed_z);
    }
    const double px = static_cast<double>(fx) / trials;
    const double pz = static_cast<double>(fz) / trials;

    // Reference: one sector under plain phenomenological noise at 2p/3.
    qec::BatchQecoolDecoder ref;
    auto cfg = qec::phenomenological_config(d, qec::sector_flip_rate(p),
                                            trials, 9999);
    const auto r = qec::run_memory_experiment(ref, cfg);

    table.add_row({qec::TextTable::fmt(p, 4), qec::TextTable::sci(px, 2),
                   qec::TextTable::sci(pz, 2),
                   qec::TextTable::sci(static_cast<double>(fboth) / trials, 2),
                   qec::TextTable::sci(1.0 - (1.0 - px) * (1.0 - pz), 2),
                   qec::TextTable::sci(r.logical_error_rate, 2)});
    std::fprintf(stderr, "  p=%.4f done\n", p);
  }
  table.print();
  std::printf(
      "\n=> per-sector rates match the independent phenomenological run at "
      "2p/3, and the combined rate matches the independence product — the "
      "Y-error correlation does not break sector-independent decoding "
      "(footnote 2).\n");
  return 0;
}
