// Extension experiments (beyond the paper):
//  1. sliding-window MWPM — accuracy vs window size, the software analogue
//     of the paper's thv trade-off (Section III-B);
//  2. decoder-fabric scaling — system bill of materials (JJs, area, power)
//     for whole processors, generalizing Table V.
//
//   ext_window_and_fabric [--trials=400]
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "mwpm/mwpm_decoder.hpp"
#include "mwpm/windowed_mwpm.hpp"
#include "sfq/fabric.hpp"
#include "sim/monte_carlo.hpp"

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  if (qec::handle_help(
          args, "ext_window_and_fabric",
          "sliding-window MWPM accuracy vs window size, plus decoder-fabric "
          "bill of materials for whole processors (extensions)",
          "  --trials=400          Monte Carlo trials per point (env "
          "QECOOL_TRIALS)\n")) {
    return 0;
  }
  const int trials = static_cast<int>(qec::trials_override(args, 400));

  qec::bench::print_header(
      "Extension: sliding-window MWPM + decoder-fabric scaling",
      "not in paper — on-line trade-off and system BOM");

  std::printf("--- windowed MWPM at d=7, rounds=14, p=0.015 ---\n");
  qec::TextTable wt({"window", "guard", "logical error rate", "MWPM calls"});
  const qec::ExperimentConfig cfg = [] {
    auto c = qec::phenomenological_config(7, 0.015, 0);
    c.rounds = 14;
    return c;
  }();
  const qec::PlanarLattice lat(cfg.distance);
  struct WinCase {
    int window, guard;
  };
  for (const WinCase wc : {WinCase{4, 1}, WinCase{6, 3}, WinCase{8, 4},
                           WinCase{1000, 0}}) {
    qec::WindowedMwpmDecoder dec({wc.window, wc.guard});
    qec::Xoshiro256ss rng(4242);
    int failures = 0, windows = 0;
    for (int trial = 0; trial < trials; ++trial) {
      const auto h = qec::sample_history(
          lat, {cfg.p_data, cfg.p_meas, cfg.rounds}, rng);
      failures += qec::logical_failure(lat, h, dec.decode(lat, h));
      windows += dec.last_window_count();
    }
    wt.add_row({wc.window >= 1000 ? "batch" : std::to_string(wc.window),
                std::to_string(wc.guard),
                qec::TextTable::sci(static_cast<double>(failures) / trials, 2),
                qec::TextTable::fmt(static_cast<double>(windows) / trials, 1)});
  }
  wt.print();
  std::printf("=> larger windows converge to batch accuracy; the guard "
              "plays the role QECOOL's thv plays in Section III-B.\n\n");

  std::printf("--- decoder fabric scaling (ERSFQ @ 2 GHz) ---\n");
  qec::TextTable ft({"logical qubits", "d", "Units", "GJJ", "area (cm^2)",
                     "power (mW)", "fits 1 W?"});
  for (const auto& [q, d] : std::vector<std::pair<int, int>>{
           {1, 9}, {100, 9}, {1000, 9}, {2498, 9}, {1000, 13}, {1153, 13}}) {
    const auto r = qec::build_fabric({q, d, 2e9});
    ft.add_row({std::to_string(q), std::to_string(d),
                std::to_string(r.units),
                qec::TextTable::fmt(static_cast<double>(r.total_jjs) * 1e-9, 3),
                qec::TextTable::fmt(r.area_mm2 * 1e-2, 1),
                qec::TextTable::fmt(r.ersfq_power_w * 1e3, 2),
                r.fits_power(qec::kFourKelvinBudgetW) ? "yes" : "NO"});
  }
  ft.print();
  std::printf("=> the paper's 2498 d=9 logical qubits need %.2f billion "
              "JJs and ~%.0f cm^2 of SFQ fabric — power fits, fabrication "
              "scale becomes the next constraint.\n",
              static_cast<double>(qec::build_fabric({2498, 9, 2e9}).total_jjs) *
                  1e-9,
              qec::build_fabric({2498, 9, 2e9}).area_mm2 * 1e-2);
  return 0;
}
