// Fig 4a: physical vs logical error rate for batch-QECOOL and MWPM,
// d = 5..13, phenomenological noise with d noisy rounds. The paper reads a
// threshold of ~1.5% for batch-QECOOL and ~3% for MWPM off these curves.
//
//   fig4a_threshold_batch [--trials=400] [--dmax=13] [--fast]
//                         [--csv=fig4a.csv]
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "mwpm/mwpm_decoder.hpp"
#include "qecool/qecool_decoder.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/threshold.hpp"

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  const int base_trials =
      static_cast<int>(qec::trials_override(args, args.get_flag("fast") ? 120 : 400));
  const int dmax = static_cast<int>(args.get_int_or("dmax", 13));

  qec::bench::print_header("Fig 4a: error-rate scaling, batch-QECOOL vs MWPM",
                           "Fig 4(a); p_th(batch-QECOOL) ~ 1.5%, p_th(MWPM) ~ 3%");

  const std::vector<double> ps = {0.003, 0.005, 0.0075, 0.01,
                                  0.015, 0.02,  0.03,   0.04};
  std::vector<int> ds;
  for (int d = 5; d <= dmax; d += 2) ds.push_back(d);

  std::vector<std::string> header = {"decoder", "d"};
  for (double p : ps) header.push_back("p=" + qec::TextTable::fmt(p, 4));
  qec::TextTable table(header);

  std::unique_ptr<qec::CsvWriter> csv;
  if (const auto path = args.get("csv")) {
    csv = std::make_unique<qec::CsvWriter>(
        *path, std::vector<std::string>{"decoder", "d", "p", "pl"});
  }
  auto csv_point = [&csv](const char* decoder, int d, double p, double pl) {
    if (csv) {
      csv->add_row({decoder, std::to_string(d), qec::TextTable::fmt(p, 6),
                    qec::TextTable::sci(pl, 6)});
    }
  };

  std::vector<qec::DistanceCurve> qecool_curves, mwpm_curves;
  for (int d : ds) {
    qec::BatchQecoolDecoder qecool;
    qec::DistanceCurve curve{d, {}};
    std::vector<std::string> row = {"batch-QECOOL", std::to_string(d)};
    for (double p : ps) {
      const auto r = qec::run_memory_experiment(
          qecool, qec::phenomenological_config(d, p, base_trials));
      curve.points.push_back({p, r.logical_error_rate});
      row.push_back(qec::TextTable::sci(r.logical_error_rate, 2));
      csv_point("batch-QECOOL", d, p, r.logical_error_rate);
    }
    qecool_curves.push_back(curve);
    table.add_row(row);
    std::fprintf(stderr, "  batch-QECOOL d=%d done\n", d);
  }
  for (int d : ds) {
    qec::MwpmDecoder mwpm;
    qec::DistanceCurve curve{d, {}};
    std::vector<std::string> row = {"MWPM", std::to_string(d)};
    for (double p : ps) {
      const int trials = qec::bench::mwpm_trials(base_trials, d, p, d);
      const auto r = qec::run_memory_experiment(
          mwpm, qec::phenomenological_config(d, p, trials));
      curve.points.push_back({p, r.logical_error_rate});
      row.push_back(qec::TextTable::sci(r.logical_error_rate, 2));
      csv_point("MWPM", d, p, r.logical_error_rate);
    }
    mwpm_curves.push_back(curve);
    std::fprintf(stderr, "  MWPM d=%d done\n", d);
    table.add_row(row);
  }
  table.print();

  const auto th_q = qec::estimate_threshold(qecool_curves);
  const auto th_m = qec::estimate_threshold(mwpm_curves);
  std::printf("\nestimated p_th batch-QECOOL: %s   (paper: ~0.015)\n",
              th_q ? qec::TextTable::fmt(*th_q, 4).c_str() : "n/a");
  std::printf("estimated p_th MWPM        : %s   (paper: ~0.030)\n",
              th_m ? qec::TextTable::fmt(*th_m, 4).c_str() : "n/a");
  return 0;
}
