// Fig 4a: physical vs logical error rate for batch-QECOOL and MWPM,
// d = 5..13, phenomenological noise with d noisy rounds. The paper reads a
// threshold of ~1.5% for batch-QECOOL and ~3% for MWPM off these curves.
//
//   fig4a_threshold_batch [--trials=400] [--dmax=13] [--fast] [--threads=N]
//                         [--csv=fig4a.csv]
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  if (qec::handle_help(
          args, "fig4a_threshold_batch",
          "Fig 4a: logical error-rate scaling of batch-QECOOL vs MWPM over "
          "the threshold grid",
          "  --trials=400          Monte Carlo trials per point (env "
          "QECOOL_TRIALS)\n"
          "  --fast                shrink to 120 trials for smoke runs\n"
          "  --dmax=13             largest code distance\n"
          "  --threads=1           worker threads (0 = all cores; env "
          "QECOOL_THREADS)\n"
          "  --csv=FILE            write the sweep CSV to FILE\n")) {
    return 0;
  }
  const int base_trials =
      static_cast<int>(qec::trials_override(args, args.get_flag("fast") ? 120 : 400));
  const int dmax = static_cast<int>(args.get_int_or("dmax", 13));

  qec::bench::print_header("Fig 4a: error-rate scaling, batch-QECOOL vs MWPM",
                           "Fig 4(a); p_th(batch-QECOOL) ~ 1.5%, p_th(MWPM) ~ 3%");

  qec::SweepGrid grid;
  grid.ps = {0.003, 0.005, 0.0075, 0.01, 0.015, 0.02, 0.03, 0.04};
  for (int d = 5; d <= dmax; d += 2) grid.distances.push_back(d);
  grid.trials = base_trials;
  grid.threads = qec::threads_override(args, 1);
  grid.variants.push_back(qec::decoder_variant("batch-QECOOL", "qecool"));
  auto mwpm = qec::decoder_variant("MWPM", "mwpm");
  mwpm.trials_for = [base_trials](const qec::ExperimentConfig& config) {
    return qec::bench::mwpm_trials(base_trials, config.distance,
                                   config.p_data, config.rounds);
  };
  grid.variants.push_back(std::move(mwpm));

  const double last_p = grid.ps.back();
  const auto result = qec::run_sweep(
      grid, args.get_or("csv", ""), [last_p](const qec::SweepCell& cell) {
        if (cell.p == last_p) {
          std::fprintf(stderr, "  %s d=%d done\n", cell.variant.c_str(),
                       cell.distance);
        }
      });

  std::vector<std::string> header = {"decoder", "d"};
  for (double p : grid.ps) header.push_back("p=" + qec::TextTable::fmt(p, 4));
  qec::TextTable table(header);
  for (const auto& variant : grid.variants) {
    for (int d : grid.distances) {
      std::vector<std::string> row = {variant.label, std::to_string(d)};
      for (double p : grid.ps) {
        const auto* cell = result.find(variant.label, d, p);
        row.push_back(
            qec::TextTable::sci(cell->result.logical_error_rate, 2));
      }
      table.add_row(row);
    }
  }
  table.print();

  const auto th_q = result.threshold("batch-QECOOL");
  const auto th_m = result.threshold("MWPM");
  std::printf("\nestimated p_th batch-QECOOL: %s   (paper: ~0.015)\n",
              th_q ? qec::TextTable::fmt(*th_q, 4).c_str() : "n/a");
  std::printf("estimated p_th MWPM        : %s   (paper: ~0.030)\n",
              th_m ? qec::TextTable::fmt(*th_m, 4).c_str() : "n/a");
  return 0;
}
