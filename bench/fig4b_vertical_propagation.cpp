// Fig 4b: the proportion of matchings that propagate three or more planes
// in the vertical (temporal) direction, as a function of physical error
// rate — the evidence for choosing thv = 3 in on-line QECOOL.
//
// Also prints the full vertical-propagation histogram (ablation data for
// other thv choices; DESIGN.md section 5).
//
//   fig4b_vertical_propagation [--trials=300] [--dmax=13]
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "qecool/qecool_decoder.hpp"
#include "sim/monte_carlo.hpp"

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  if (qec::handle_help(
          args, "fig4b_vertical_propagation",
          "Fig 4b: fraction of matchings propagating >= 3 planes vertically "
          "(the evidence for thv = 3), plus the full histogram",
          "  --trials=300          Monte Carlo trials per point (env "
          "QECOOL_TRIALS)\n"
          "  --dmax=13             largest code distance\n")) {
    return 0;
  }
  const int trials = static_cast<int>(qec::trials_override(args, 300));
  const int dmax = static_cast<int>(args.get_int_or("dmax", 13));

  qec::bench::print_header(
      "Fig 4b: proportion of matchings propagating >= 3 vertical planes",
      "Fig 4(b); negligible (<0.002) for p below p_th, justifying thv = 3");

  const std::vector<double> ps = {0.003, 0.005, 0.0075, 0.01,
                                  0.015, 0.02,  0.03,   0.05};
  std::vector<std::string> header = {"d"};
  for (double p : ps) header.push_back("p=" + qec::TextTable::fmt(p, 4));
  qec::TextTable table(header);

  qec::MatchStats hist_at_pth;  // histogram snapshot near p = 0.01
  for (int d = 5; d <= dmax; d += 2) {
    std::vector<std::string> row = {std::to_string(d)};
    for (double p : ps) {
      qec::BatchQecoolDecoder dec;
      const auto r = qec::run_memory_experiment(
          dec, qec::phenomenological_config(d, p, trials));
      const double proportion =
          r.matches.total()
              ? static_cast<double>(r.matches.vertical_ge3) /
                    static_cast<double>(r.matches.total())
              : 0.0;
      row.push_back(qec::TextTable::sci(proportion, 2));
      if (d == dmax && p == 0.01) hist_at_pth = r.matches;
    }
    table.add_row(row);
    std::fprintf(stderr, "  d=%d done\n", d);
  }
  table.print();

  std::printf("\nvertical-propagation histogram at d=%d, p=0.01 "
              "(ablation for thv):\n",
              dmax);
  qec::TextTable hist({"dt (planes)", "matchings", "fraction"});
  const double total = static_cast<double>(hist_at_pth.total());
  for (std::size_t dt = 0; dt < hist_at_pth.vertical_hist.size(); ++dt) {
    if (hist_at_pth.vertical_hist[dt] == 0) continue;
    hist.add_row({std::to_string(dt),
                  std::to_string(hist_at_pth.vertical_hist[dt]),
                  qec::TextTable::sci(
                      static_cast<double>(hist_at_pth.vertical_hist[dt]) /
                          total,
                      2)});
  }
  hist.print();
  std::printf("\n=> matchings reaching dt >= 3 are negligible below p_th, so "
              "a Reg window of thv = 3 suffices (paper Section III-C).\n");
  return 0;
}
