// Fig 7: physical vs logical error rate of on-line QECOOL when the decoder
// is clocked at 500 MHz, 1 GHz and 2 GHz with a 1 us measurement interval.
// Slow clocks overflow the 7-entry Reg at larger code distances (the
// curves collapse toward break-even); at 2 GHz the paper reads p_th ~ 1.0%.
//
// Also reports the Reg-depth ablation (4 vs 7 entries) at 2 GHz.
//
//   fig7_online_frequency [--trials=400] [--dmax=13] [--csv=fig7.csv]
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/threshold.hpp"

namespace {

struct FreqPoint {
  const char* label;
  double hz;
};

}  // namespace

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  const int trials = static_cast<int>(qec::trials_override(args, 400));
  const int dmax = static_cast<int>(args.get_int_or("dmax", 13));

  qec::bench::print_header(
      "Fig 7: on-line QECOOL accuracy vs decoder clock frequency",
      "Fig 7(a)-(c); buffer overflow at 500 MHz / 1 GHz for large d; "
      "p_th ~ 1.0% at 2 GHz");

  const std::vector<double> ps = {0.002, 0.003, 0.005, 0.0075, 0.01, 0.015,
                                  0.02};
  // The paper sweeps 500 MHz / 1 GHz / 2 GHz. Our cycle model is ~2x
  // lighter per layer than the paper's (see EXPERIMENTS.md), so the
  // overflow collapse the paper sees at 500 MHz appears here at a
  // proportionally lower clock — the extra 250 MHz panel makes the
  // phenomenon explicit at our calibration.
  const FreqPoint freqs[] = {{"250 MHz", 250e6}, {"500 MHz", 500e6},
                             {"1 GHz", 1e9}, {"2 GHz", 2e9}};

  std::unique_ptr<qec::CsvWriter> csv;
  if (const auto path = args.get("csv")) {
    csv = std::make_unique<qec::CsvWriter>(
        *path, std::vector<std::string>{"freq_hz", "d", "p", "pl",
                                        "overflow_rate"});
  }

  for (const auto& freq : freqs) {
    std::printf("--- decoder clock %s (budget %llu cycles / layer) ---\n",
                freq.label,
                static_cast<unsigned long long>(
                    qec::cycles_per_microsecond(freq.hz)));
    std::vector<std::string> header = {"d"};
    for (double p : ps) header.push_back("p=" + qec::TextTable::fmt(p, 4));
    header.push_back("overflow@p=0.01");
    qec::TextTable table(header);

    std::vector<qec::DistanceCurve> curves;
    for (int d = 5; d <= dmax; d += 2) {
      qec::DistanceCurve curve{d, {}};
      std::vector<std::string> row = {std::to_string(d)};
      double overflow_at_p01 = 0.0;
      for (double p : ps) {
        qec::OnlineConfig online;
        online.cycles_per_round = qec::cycles_per_microsecond(freq.hz);
        const auto r = qec::run_online_experiment(
            qec::phenomenological_config(d, p, trials), online);
        curve.points.push_back({p, r.logical_error_rate});
        row.push_back(qec::TextTable::sci(r.logical_error_rate, 2));
        if (csv) {
          csv->add_row(std::vector<double>{
              freq.hz, static_cast<double>(d), p, r.logical_error_rate,
              static_cast<double>(r.operational_failures) /
                  static_cast<double>(r.trials)});
        }
        if (p == 0.01) {
          overflow_at_p01 = static_cast<double>(r.operational_failures) /
                            static_cast<double>(r.trials);
        }
      }
      row.push_back(qec::TextTable::fmt(overflow_at_p01, 3));
      table.add_row(row);
      curves.push_back(curve);
      std::fprintf(stderr, "  %s d=%d done\n", freq.label, d);
    }
    table.print();
    const auto th = qec::estimate_threshold(curves);
    std::printf("estimated p_th @ %s: %s\n\n", freq.label,
                th ? qec::TextTable::fmt(*th, 4).c_str() : "n/a");
  }

  // Ablation: Reg margin (paper uses 7 entries "with some margin"; the
  // minimum to hold the thv window is 4).
  std::printf("--- ablation: Reg depth 7 vs 4 at a stressed 250 MHz clock, "
              "p = 0.01 ---\n");
  qec::TextTable ab({"d", "overflow (Reg=7)", "overflow (Reg=4)"});
  for (int d = 9; d <= dmax; d += 2) {
    qec::OnlineConfig deep, shallow;
    deep.cycles_per_round = shallow.cycles_per_round =
        qec::cycles_per_microsecond(250e6);
    shallow.engine.reg_depth = 4;
    const auto cfg = qec::phenomenological_config(d, 0.01, trials);
    const auto rd = qec::run_online_experiment(cfg, deep);
    const auto rs = qec::run_online_experiment(cfg, shallow);
    ab.add_row({std::to_string(d),
                qec::TextTable::fmt(static_cast<double>(rd.operational_failures) /
                                        rd.trials,
                                    4),
                qec::TextTable::fmt(static_cast<double>(rs.operational_failures) /
                                        rs.trials,
                                    4)});
  }
  ab.print();
  return 0;
}
