// Fig 7: physical vs logical error rate of on-line QECOOL when the decoder
// is clocked at 500 MHz, 1 GHz and 2 GHz with a 1 us measurement interval.
// Slow clocks overflow the 7-entry Reg at larger code distances (the
// curves collapse toward break-even); at 2 GHz the paper reads p_th ~ 1.0%.
//
// Also reports the Reg-depth ablation (4 vs 7 entries) at 2 GHz.
//
//   fig7_online_frequency [--trials=400] [--dmax=13] [--threads=N]
//                         [--csv=fig7.csv]
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  if (qec::handle_help(
          args, "fig7_online_frequency",
          "Fig 7: on-line QECOOL accuracy at 500 MHz / 1 GHz / 2 GHz with a "
          "1 us measurement interval, plus the Reg-depth ablation",
          "  --trials=400          Monte Carlo trials per point (env "
          "QECOOL_TRIALS)\n"
          "  --dmax=13             largest code distance\n"
          "  --threads=1           worker threads (0 = all cores; env "
          "QECOOL_THREADS)\n"
          "  --csv=FILE            write the sweep CSV to FILE\n")) {
    return 0;
  }
  const int trials = static_cast<int>(qec::trials_override(args, 400));
  const int dmax = static_cast<int>(args.get_int_or("dmax", 13));
  const int threads = qec::threads_override(args, 1);

  qec::bench::print_header(
      "Fig 7: on-line QECOOL accuracy vs decoder clock frequency",
      "Fig 7(a)-(c); buffer overflow at 500 MHz / 1 GHz for large d; "
      "p_th ~ 1.0% at 2 GHz");

  // The paper sweeps 500 MHz / 1 GHz / 2 GHz. Our cycle model is ~2x
  // lighter per layer than the paper's (see DESIGN.md), so the overflow
  // collapse the paper sees at 500 MHz appears here at a proportionally
  // lower clock — the extra 250 MHz panel makes the phenomenon explicit at
  // our calibration.
  qec::SweepGrid grid;
  for (double hz : {250e6, 500e6, 1e9, 2e9}) {
    qec::OnlineConfig online;
    online.cycles_per_round = qec::cycles_per_microsecond(hz);
    const double mhz = hz / 1e6;
    const std::string label = mhz >= 1000
                                  ? qec::TextTable::fmt(mhz / 1000, 0) + " GHz"
                                  : qec::TextTable::fmt(mhz, 0) + " MHz";
    grid.variants.push_back(qec::online_variant(label, online));
  }
  grid.ps = {0.002, 0.003, 0.005, 0.0075, 0.01, 0.015, 0.02};
  for (int d = 5; d <= dmax; d += 2) grid.distances.push_back(d);
  grid.trials = trials;
  grid.threads = threads;

  const double last_p = grid.ps.back();
  const auto result = qec::run_sweep(
      grid, args.get_or("csv", ""), [last_p](const qec::SweepCell& cell) {
        if (cell.p == last_p) {
          std::fprintf(stderr, "  %s d=%d done\n", cell.variant.c_str(),
                       cell.distance);
        }
      });

  for (const auto& variant : grid.variants) {
    std::printf("--- decoder clock %s (budget %.0f cycles / layer) ---\n",
                variant.label.c_str(), variant.online->cycles_per_round);
    std::vector<std::string> header = {"d"};
    for (double p : grid.ps) header.push_back("p=" + qec::TextTable::fmt(p, 4));
    header.push_back("overflow@p=0.01");
    qec::TextTable table(header);

    for (int d : grid.distances) {
      std::vector<std::string> row = {std::to_string(d)};
      for (double p : grid.ps) {
        row.push_back(qec::TextTable::sci(
            result.find(variant.label, d, p)->result.logical_error_rate, 2));
      }
      row.push_back(qec::TextTable::fmt(
          result.find(variant.label, d, 0.01)->overflow_rate(), 3));
      table.add_row(row);
    }
    table.print();
    const auto th = result.threshold(variant.label);
    std::printf("estimated p_th @ %s: %s\n\n", variant.label.c_str(),
                th ? qec::TextTable::fmt(*th, 4).c_str() : "n/a");
  }

  // Ablation: Reg margin (paper uses 7 entries "with some margin"; the
  // minimum to hold the thv window is 4).
  std::printf("--- ablation: Reg depth 7 vs 4 at a stressed 250 MHz clock, "
              "p = 0.01 ---\n");
  qec::SweepGrid ab_grid;
  qec::OnlineConfig deep, shallow;
  deep.cycles_per_round = shallow.cycles_per_round =
      qec::cycles_per_microsecond(250e6);
  shallow.engine.reg_depth = 4;
  ab_grid.variants.push_back(qec::online_variant("Reg=7", deep));
  ab_grid.variants.push_back(qec::online_variant("Reg=4", shallow));
  for (int d = 9; d <= dmax; d += 2) ab_grid.distances.push_back(d);
  ab_grid.ps = {0.01};
  ab_grid.trials = trials;
  ab_grid.threads = threads;
  const auto ab_result = qec::run_sweep(ab_grid);

  qec::TextTable ab({"d", "overflow (Reg=7)", "overflow (Reg=4)"});
  for (int d : ab_grid.distances) {
    ab.add_row({std::to_string(d),
                qec::TextTable::fmt(
                    ab_result.find("Reg=7", d, 0.01)->overflow_rate(), 4),
                qec::TextTable::fmt(
                    ab_result.find("Reg=4", d, 0.01)->overflow_rate(), 4)});
  }
  ab.print();
  return 0;
}
