// Lane-count scaling curve of the streaming decode service: how does
// wall-clock per streamed round — and aggregate decoded-round throughput —
// scale as the fleet grows from dozens to thousands of concurrent lanes?
// This is the ROADMAP's "sweep lanes in {64 .. 4096} x clock" item: one
// chip hosts ~2,500 logical patches, so the simulator must stay fast at
// fleet scale, and this bench charts exactly where it stops doing so.
//
// For every (lanes, clock) cell a fresh trace is recorded (the trace is a
// function of the lane count) and replayed once; the CSV reports the
// wall-clock of the replay, microseconds per streamed lane-round, and
// lane-rounds decoded per second, plus the outcome split so a cell where
// lanes start dying is visible next to its throughput. Simulation
// outcomes are unaffected by --threads or --dispatch; only wall-clock is.
#include <chrono>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "decoder/registry.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/slo.hpp"
#include "qecool/decode_cache.hpp"
#include "qecool/online_runner.hpp"
#include "stream/scheduler.hpp"
#include "stream/service.hpp"

namespace {

using qec::bench::fmt;
using qec::bench::split_doubles;

constexpr const char* kSummary =
    "sweep the streaming service over lane count x decoder clock and chart "
    "wall-clock per streamed round and aggregate decoded-round throughput";

constexpr const char* kOptions =
    "  --lanes=64,256,1024,4096   lane counts to sweep (list)\n"
    "  --mhz=10,40,160       decoder clocks to sweep (MHz, list)\n"
    "  --d=5                 code distance\n"
    "  --p=0.01              physical error rates to sweep (list) — the\n"
    "                        decode-cache hit rate is a strong function of\n"
    "                        p, so sweeping p charts where memoization pays\n"
    "  --rounds=64           noisy rounds per lane\n"
    "  --engines=0           pool size K (0 = one engine per lane)\n"
    "  --policy=dedicated    scheduling policy spec: dedicated |\n"
    "                        round_robin[:offset=N] | least_loaded |\n"
    "                        fq[:quantum=CYCLES]\n"
    "  --dispatch=1          rounds per scheduling dispatch (static "
    "policies)\n"
    "  --engine=qecool       lane engine spec\n"
    "  --cache=SPEC|ab       decode-cache override: off | on |\n"
    "                        clock[:entries=N,shards=S], or \"ab\" to run\n"
    "                        every cell twice (cache off, then on) and\n"
    "                        report the speedup + the p crossover where\n"
    "                        memoization starts paying for itself\n"
    "  --seed=2021           trace RNG seed\n"
    "  --drain=1000          max drain rounds after the trace ends\n"
    "  --threads=1           worker threads (0 = all cores; never changes "
    "results)\n"
    "  --csv=FILE            write the scaling CSV to FILE\n"
    "  --json=FILE           write a machine-readable run record to FILE\n"
    "                        (config, git revision, wall-clock and\n"
    "                        lane-rounds/s per cell — the format pinned in\n"
    "                        BENCH_lane_scaling.json)\n"
    "  --trace-json=FILE     Chrome-trace-event timeline of the LAST cell\n"
    "                        (tracing is on for every cell; per-cell event\n"
    "                        counts land in the --json obs block)\n"
    "  --trace-ring=16384    per-track event ring capacity\n"
    "  --metrics-csv=FILE    windowed metrics time series of the LAST cell\n"
    "  --metrics-window=64   rounds per metrics window\n"
    "  --profile-csv=FILE    per-stage wall-clock self-profile of the LAST\n"
    "                        cell (enables profiling for every cell;\n"
    "                        wall-clock values are non-deterministic)\n"
    "  --slo=SPEC            SLO burn-rate objectives per cell, e.g.\n"
    "                        'sojourn_p99<8' (implies windowed metrics;\n"
    "                        per-cell compliance lands in the --json\n"
    "                        record's slo block)\n"
    "  --prom-snapshot=FILE  Prometheus snapshot of the LAST cell's final\n"
    "                        cumulative metrics (implies metrics)\n";

}  // namespace

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  if (qec::handle_help(args, "lane_scaling", kSummary, kOptions)) return 0;
  qec::StreamConfig base;
  base.distance = static_cast<int>(args.get_int_or("d", 5));
  base.rounds = static_cast<int>(args.get_int_or("rounds", 64));
  base.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 2021));
  base.engine = args.get_or("engine", "qecool");
  base.policy = args.get_or("policy", "dedicated");
  base.engines = static_cast<int>(args.get_int_or("engines", 0));
  base.max_drain_rounds = static_cast<int>(args.get_int_or("drain", 1000));
  base.rounds_per_dispatch = static_cast<int>(args.get_int_or("dispatch", 1));
  base.threads = qec::threads_override(args, 1);
  const std::string trace_json = args.get_or("trace-json", "");
  const std::string metrics_csv = args.get_or("metrics-csv", "");
  base.obs.trace = !trace_json.empty();
  base.obs.trace_ring =
      static_cast<int>(args.get_int_or("trace-ring", base.obs.trace_ring));
  const std::string profile_csv = args.get_or("profile-csv", "");
  const std::string prom_snapshot = args.get_or("prom-snapshot", "");
  base.obs.metrics = !metrics_csv.empty() || !prom_snapshot.empty();
  base.obs.metrics_window = static_cast<int>(
      args.get_int_or("metrics-window", base.obs.metrics_window));
  base.obs.profile = !profile_csv.empty();
  base.obs.slo = args.get_or("slo", "");

  qec::bench::print_header(
      "Lane scaling: wall-clock per streamed round vs fleet size",
      "the ROADMAP lanes x clock curve — where does fleet-scale replay "
      "stop being cheap?");

  try {
    qec::online_engine_config(base.engine);
    qec::make_scheduler_policy(base.policy);
    if (!base.obs.slo.empty()) qec::obs::parse_slo_spec(base.obs.slo);
    const auto lane_counts =
        split_doubles(args.get_or("lanes", "64,256,1024,4096"));
    const auto clocks_mhz = split_doubles(args.get_or("mhz", "10,40,160"));
    const auto p_list = split_doubles(args.get_or("p", "0.01"));
    for (const double lanes : lane_counts) {
      if (lanes < 1 || lanes != static_cast<int>(lanes)) {
        throw std::invalid_argument("--lanes entries must be integers >= 1");
      }
    }
    // Cache variants per cell: one configured spec, or off-then-on (A/B).
    const std::string cache_arg = args.get_or("cache", "");
    const bool cache_ab = cache_arg == "ab";
    std::vector<std::string> cache_variants;
    if (cache_ab) {
      cache_variants = {"off", "on"};
    } else {
      if (!cache_arg.empty()) qec::parse_decode_cache_spec(cache_arg);
      cache_variants = {cache_arg};
    }

    const std::string csv_path = args.get_or("csv", "");
    const std::string json_path = args.get_or("json", "");
    std::vector<std::string> json_cells;
    std::shared_ptr<qec::obs::Tracer> last_tracer;
    std::shared_ptr<qec::obs::MetricsRegistry> last_metrics;
    std::shared_ptr<qec::obs::Profiler> last_profiler;
    std::shared_ptr<qec::obs::SloEngine> last_slo;
    qec::CsvWriter csv(csv_path.empty() ? "/dev/null" : csv_path,
                       {"lanes", "d", "p", "mhz", "engines", "policy",
                        "rounds", "cache", "record_ms", "replay_ms",
                        "streamed_lane_rounds", "us_per_lane_round",
                        "lane_rounds_per_sec", "overflow_lanes",
                        "failed_lanes", "failed_frac", "cache_hits",
                        "cache_misses", "cache_hit_rate", "cache_installs",
                        "cache_evictions", "cache_zero_rounds",
                        "cache_zero_pushes", "cache_bypasses"});

    qec::TextTable table({"lanes", "p", "mhz", "K", "cache", "replay ms",
                          "us/lane-round", "lane-rounds/s", "hit%",
                          "failed"});
    // A/B crossover bookkeeping: per p, the off- and on-variant
    // throughput summed over cells (lanes x mhz share the p axis).
    struct AbPoint {
      double p = 0.0;
      double off_rps = 0.0;
      double on_rps = 0.0;
      double hit_rate = 0.0;
    };
    std::vector<AbPoint> ab_points;
    for (const double p : p_list) {
      AbPoint ab;
      ab.p = p;
      for (const double lanes : lane_counts) {
        for (const double mhz : clocks_mhz) {
          qec::StreamConfig record_config = base;
          record_config.p = p;
          record_config.lanes = static_cast<int>(lanes);
          record_config.cycles_per_round =
              qec::cycles_per_microsecond(mhz * 1e6);

          const auto record_start = std::chrono::steady_clock::now();
          const qec::SyndromeTrace trace = qec::record_trace(record_config);
          const double record_ms =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - record_start)
                  .count();

          for (const std::string& variant : cache_variants) {
            qec::StreamConfig config = record_config;
            config.cache = variant;

            const auto replay_start = std::chrono::steady_clock::now();
            const qec::StreamOutcome outcome = qec::run_stream(trace, config);
            const double replay_ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - replay_start)
                    .count();

            const auto all = outcome.telemetry.aggregate();
            const std::int64_t lane_rounds =
                static_cast<std::int64_t>(all.rounds_streamed) +
                all.drain_rounds;
            const double us_per_round =
                lane_rounds
                    ? replay_ms * 1e3 / static_cast<double>(lane_rounds)
                    : 0.0;
            const double rounds_per_sec =
                replay_ms > 0
                    ? static_cast<double>(lane_rounds) / (replay_ms * 1e-3)
                    : 0.0;
            const double failed_frac =
                static_cast<double>(outcome.failed_lanes) /
                static_cast<double>(outcome.lanes);
            const qec::DecodeCacheStats& cs = all.cache;
            const std::string& resolved = outcome.telemetry.cache;
            if (cache_ab) {
              if (variant == "off") {
                ab.off_rps += rounds_per_sec;
              } else {
                ab.on_rps += rounds_per_sec;
                ab.hit_rate = cs.hit_rate();
              }
            }

            if (csv.ok()) {
              csv.add_row(
                  {std::to_string(outcome.lanes),
                   std::to_string(base.distance), fmt(p, "%.6g"),
                   fmt(mhz, "%.6g"),
                   std::to_string(outcome.telemetry.engines), base.policy,
                   std::to_string(trace.rounds()), resolved,
                   fmt(record_ms, "%.3f"), fmt(replay_ms, "%.3f"),
                   std::to_string(lane_rounds), fmt(us_per_round, "%.4f"),
                   fmt(rounds_per_sec, "%.6g"),
                   std::to_string(outcome.overflow_lanes),
                   std::to_string(outcome.failed_lanes), fmt(failed_frac),
                   std::to_string(cs.hits), std::to_string(cs.misses),
                   fmt(cs.hit_rate(), "%.4f"), std::to_string(cs.installs),
                   std::to_string(cs.evictions),
                   std::to_string(cs.zero_rounds),
                   std::to_string(cs.zero_pushes),
                   std::to_string(cs.bypasses)});
              csv.flush();
            }
            table.add_row({std::to_string(outcome.lanes), fmt(p, "%.4g"),
                           fmt(mhz, "%.6g"),
                           std::to_string(outcome.telemetry.engines),
                           resolved == "off" ? "off" : "on",
                           fmt(replay_ms, "%.1f"), fmt(us_per_round, "%.3f"),
                           fmt(rounds_per_sec, "%.4g"),
                           fmt(cs.hit_rate() * 100.0, "%.1f"),
                           std::to_string(outcome.failed_lanes) + "/" +
                               std::to_string(outcome.lanes)});
            if (!json_path.empty()) {
              qec::bench::JsonObject cell;
              cell.add("lanes", outcome.lanes)
                  .add("p", p)
                  .add("mhz", mhz)
                  .add("engines", outcome.telemetry.engines)
                  .add("rounds", trace.rounds())
                  .add("record_ms", record_ms)
                  .add("replay_ms", replay_ms)
                  .add("streamed_lane_rounds",
                       static_cast<std::int64_t>(lane_rounds))
                  .add("us_per_lane_round", us_per_round)
                  .add("lane_rounds_per_sec", rounds_per_sec)
                  .add("overflow_lanes", outcome.overflow_lanes)
                  .add("failed_lanes", outcome.failed_lanes)
                  .add("failed_frac", failed_frac);
              cell.add_raw(
                  "cache",
                  qec::bench::JsonObject()
                      .add("spec", resolved)
                      .add("hits", static_cast<std::int64_t>(cs.hits))
                      .add("misses", static_cast<std::int64_t>(cs.misses))
                      .add("hit_rate", cs.hit_rate())
                      .add("installs", static_cast<std::int64_t>(cs.installs))
                      .add("evictions",
                           static_cast<std::int64_t>(cs.evictions))
                      .add("zero_rounds",
                           static_cast<std::int64_t>(cs.zero_rounds))
                      .add("zero_pushes",
                           static_cast<std::int64_t>(cs.zero_pushes))
                      .add("bypasses", static_cast<std::int64_t>(cs.bypasses))
                      .str());
              if (outcome.tracer) {
                const auto emitted = outcome.tracer->emitted();
                cell.add_raw(
                    "obs",
                    qec::bench::JsonObject()
                        .add("events", static_cast<std::int64_t>(emitted))
                        .add("dropped", static_cast<std::int64_t>(
                                            outcome.tracer->dropped()))
                        .add("events_per_lane_round",
                             lane_rounds ? static_cast<double>(emitted) /
                                               static_cast<double>(lane_rounds)
                                         : 0.0)
                        .str());
              }
              if (outcome.slo) {
                cell.add_raw("slo", outcome.slo->summary_json());
              }
              json_cells.push_back(cell.str());
            }
            last_tracer = outcome.tracer;
            last_metrics = outcome.metrics;
            last_profiler = outcome.profiler;
            last_slo = outcome.slo;
          }
        }
      }
      if (cache_ab) ab_points.push_back(ab);
    }
    table.print();
    if (cache_ab && !ab_points.empty()) {
      // Where does memoization pay for itself? The hit rate falls with p
      // (busier windows repeat less), so the speedup crosses 1.0 at some
      // p — report the measured curve and the crossover bracket.
      std::printf("\ncache A/B (speedup = lane-rounds/s on / off):\n");
      double last_paying_p = -1.0;
      double first_losing_p = -1.0;
      for (const auto& point : ab_points) {
        const double speedup =
            point.off_rps > 0 ? point.on_rps / point.off_rps : 0.0;
        std::printf("  p=%-8g speedup %.3fx  hit-rate %.1f%%\n", point.p,
                    speedup, point.hit_rate * 100.0);
        if (speedup >= 1.0) {
          last_paying_p = point.p;
        } else if (first_losing_p < 0) {
          first_losing_p = point.p;
        }
      }
      if (last_paying_p >= 0 && first_losing_p >= 0) {
        std::printf("  cache pays for itself up to p=%g; crossover before "
                    "p=%g\n",
                    last_paying_p, first_losing_p);
      } else if (last_paying_p >= 0) {
        std::printf("  cache pays for itself across the whole sweep\n");
      } else {
        std::printf("  cache never pays at these settings\n");
      }
    }
    std::printf("\n(--threads=%d, --dispatch=%d; outcomes are unaffected by "
                "either)\n",
                base.threads, base.rounds_per_dispatch);
    if (!csv_path.empty()) {
      std::printf("scaling curve written to %s\n", csv_path.c_str());
    }
    using qec::bench::report_written;
    if (!trace_json.empty() && last_tracer &&
        !report_written(qec::obs::write_chrome_trace(*last_tracer, trace_json,
                                                     last_profiler.get()),
                        "event trace (last cell)", trace_json)) {
      return 1;
    }
    if (!metrics_csv.empty() && last_metrics &&
        !report_written(last_metrics->write_csv(metrics_csv),
                        "windowed metrics (last cell)", metrics_csv)) {
      return 1;
    }
    if (!profile_csv.empty() && last_profiler &&
        !report_written(last_profiler->write_csv(profile_csv),
                        "wall-clock profile (last cell)", profile_csv)) {
      return 1;
    }
    if (!prom_snapshot.empty() && last_metrics &&
        !report_written(qec::obs::write_prom_snapshot(
                            *last_metrics, last_slo.get(), prom_snapshot),
                        "prometheus snapshot (last cell)", prom_snapshot)) {
      return 1;
    }
    if (!json_path.empty()) {
      const std::string config_json =
          qec::bench::JsonObject()
              .add("d", base.distance)
              .add_raw("p", qec::bench::json_array(p_list))
              .add("rounds", base.rounds)
              .add("seed", static_cast<std::int64_t>(base.seed))
              .add("engine", base.engine)
              .add("cache", cache_arg)
              .add("policy", base.policy)
              .add("engines", base.engines)
              .add("dispatch", base.rounds_per_dispatch)
              .add("threads", base.threads)
              .add("slo", base.obs.slo)
              .add("profile", base.obs.profile ? 1 : 0)
              .add_raw("lanes", qec::bench::json_array(lane_counts))
              .add_raw("mhz", qec::bench::json_array(clocks_mhz))
              .str();
      qec::bench::write_json_file(
          json_path, qec::bench::JsonObject()
                         .add("bench", "lane_scaling")
                         .add("git_rev", qec::bench::git_revision())
                         .add_raw("config", config_json)
                         .add_raw("cells", qec::bench::json_array(json_cells))
                         .str());
      std::printf("run record written to %s\n", json_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lane_scaling: %s\n", e.what());
    return 1;
  }
}
