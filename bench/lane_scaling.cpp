// Lane-count scaling curve of the streaming decode service: how does
// wall-clock per streamed round — and aggregate decoded-round throughput —
// scale as the fleet grows from dozens to thousands of concurrent lanes?
// This is the ROADMAP's "sweep lanes in {64 .. 4096} x clock" item: one
// chip hosts ~2,500 logical patches, so the simulator must stay fast at
// fleet scale, and this bench charts exactly where it stops doing so.
//
// For every (lanes, clock) cell a fresh trace is recorded (the trace is a
// function of the lane count) and replayed once; the CSV reports the
// wall-clock of the replay, microseconds per streamed lane-round, and
// lane-rounds decoded per second, plus the outcome split so a cell where
// lanes start dying is visible next to its throughput. Simulation
// outcomes are unaffected by --threads or --dispatch; only wall-clock is.
#include <chrono>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "decoder/registry.hpp"
#include "obs/chrome_trace.hpp"
#include "qecool/online_runner.hpp"
#include "stream/scheduler.hpp"
#include "stream/service.hpp"

namespace {

using qec::bench::fmt;
using qec::bench::split_doubles;

constexpr const char* kSummary =
    "sweep the streaming service over lane count x decoder clock and chart "
    "wall-clock per streamed round and aggregate decoded-round throughput";

constexpr const char* kOptions =
    "  --lanes=64,256,1024,4096   lane counts to sweep (list)\n"
    "  --mhz=10,40,160       decoder clocks to sweep (MHz, list)\n"
    "  --d=5                 code distance\n"
    "  --p=0.01              physical error rate (p_data = p_meas)\n"
    "  --rounds=64           noisy rounds per lane\n"
    "  --engines=0           pool size K (0 = one engine per lane)\n"
    "  --policy=dedicated    scheduling policy spec: dedicated |\n"
    "                        round_robin[:offset=N] | least_loaded |\n"
    "                        fq[:quantum=CYCLES]\n"
    "  --dispatch=1          rounds per scheduling dispatch (static "
    "policies)\n"
    "  --engine=qecool       lane engine spec\n"
    "  --seed=2021           trace RNG seed\n"
    "  --drain=1000          max drain rounds after the trace ends\n"
    "  --threads=1           worker threads (0 = all cores; never changes "
    "results)\n"
    "  --csv=FILE            write the scaling CSV to FILE\n"
    "  --json=FILE           write a machine-readable run record to FILE\n"
    "                        (config, git revision, wall-clock and\n"
    "                        lane-rounds/s per cell — the format pinned in\n"
    "                        BENCH_lane_scaling.json)\n"
    "  --trace-json=FILE     Chrome-trace-event timeline of the LAST cell\n"
    "                        (tracing is on for every cell; per-cell event\n"
    "                        counts land in the --json obs block)\n"
    "  --trace-ring=16384    per-track event ring capacity\n"
    "  --metrics-csv=FILE    windowed metrics time series of the LAST cell\n"
    "  --metrics-window=64   rounds per metrics window\n";

}  // namespace

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  if (qec::handle_help(args, "lane_scaling", kSummary, kOptions)) return 0;
  qec::StreamConfig base;
  base.distance = static_cast<int>(args.get_int_or("d", 5));
  base.p = args.get_double_or("p", 0.01);
  base.rounds = static_cast<int>(args.get_int_or("rounds", 64));
  base.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 2021));
  base.engine = args.get_or("engine", "qecool");
  base.policy = args.get_or("policy", "dedicated");
  base.engines = static_cast<int>(args.get_int_or("engines", 0));
  base.max_drain_rounds = static_cast<int>(args.get_int_or("drain", 1000));
  base.rounds_per_dispatch = static_cast<int>(args.get_int_or("dispatch", 1));
  base.threads = qec::threads_override(args, 1);
  const std::string trace_json = args.get_or("trace-json", "");
  const std::string metrics_csv = args.get_or("metrics-csv", "");
  base.obs.trace = !trace_json.empty();
  base.obs.trace_ring =
      static_cast<int>(args.get_int_or("trace-ring", base.obs.trace_ring));
  base.obs.metrics = !metrics_csv.empty();
  base.obs.metrics_window = static_cast<int>(
      args.get_int_or("metrics-window", base.obs.metrics_window));

  qec::bench::print_header(
      "Lane scaling: wall-clock per streamed round vs fleet size",
      "the ROADMAP lanes x clock curve — where does fleet-scale replay "
      "stop being cheap?");

  try {
    qec::online_engine_config(base.engine);
    qec::make_scheduler_policy(base.policy);
    const auto lane_counts =
        split_doubles(args.get_or("lanes", "64,256,1024,4096"));
    const auto clocks_mhz = split_doubles(args.get_or("mhz", "10,40,160"));
    for (const double lanes : lane_counts) {
      if (lanes < 1 || lanes != static_cast<int>(lanes)) {
        throw std::invalid_argument("--lanes entries must be integers >= 1");
      }
    }

    const std::string csv_path = args.get_or("csv", "");
    const std::string json_path = args.get_or("json", "");
    std::vector<std::string> json_cells;
    std::shared_ptr<qec::obs::Tracer> last_tracer;
    std::shared_ptr<qec::obs::MetricsRegistry> last_metrics;
    qec::CsvWriter csv(csv_path.empty() ? "/dev/null" : csv_path,
                       {"lanes", "d", "mhz", "engines", "policy", "rounds",
                        "record_ms", "replay_ms", "streamed_lane_rounds",
                        "us_per_lane_round", "lane_rounds_per_sec",
                        "overflow_lanes", "failed_lanes", "failed_frac"});

    qec::TextTable table({"lanes", "mhz", "K", "replay ms", "us/lane-round",
                          "lane-rounds/s", "failed"});
    for (const double lanes : lane_counts) {
      for (const double mhz : clocks_mhz) {
        qec::StreamConfig config = base;
        config.lanes = static_cast<int>(lanes);
        config.cycles_per_round = qec::cycles_per_microsecond(mhz * 1e6);

        const auto record_start = std::chrono::steady_clock::now();
        const qec::SyndromeTrace trace = qec::record_trace(config);
        const double record_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - record_start)
                .count();

        const auto replay_start = std::chrono::steady_clock::now();
        const qec::StreamOutcome outcome = qec::run_stream(trace, config);
        const double replay_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - replay_start)
                .count();

        const auto all = outcome.telemetry.aggregate();
        const std::int64_t lane_rounds =
            static_cast<std::int64_t>(all.rounds_streamed) + all.drain_rounds;
        const double us_per_round =
            lane_rounds ? replay_ms * 1e3 / static_cast<double>(lane_rounds)
                        : 0.0;
        const double rounds_per_sec =
            replay_ms > 0
                ? static_cast<double>(lane_rounds) / (replay_ms * 1e-3)
                : 0.0;
        const double failed_frac = static_cast<double>(outcome.failed_lanes) /
                                   static_cast<double>(outcome.lanes);

        if (csv.ok()) {
          csv.add_row({std::to_string(outcome.lanes),
                       std::to_string(base.distance), fmt(mhz, "%.6g"),
                       std::to_string(outcome.telemetry.engines), base.policy,
                       std::to_string(trace.rounds()), fmt(record_ms, "%.3f"),
                       fmt(replay_ms, "%.3f"), std::to_string(lane_rounds),
                       fmt(us_per_round, "%.4f"), fmt(rounds_per_sec, "%.6g"),
                       std::to_string(outcome.overflow_lanes),
                       std::to_string(outcome.failed_lanes),
                       fmt(failed_frac)});
          csv.flush();
        }
        table.add_row({std::to_string(outcome.lanes), fmt(mhz, "%.6g"),
                       std::to_string(outcome.telemetry.engines),
                       fmt(replay_ms, "%.1f"), fmt(us_per_round, "%.3f"),
                       fmt(rounds_per_sec, "%.4g"),
                       std::to_string(outcome.failed_lanes) + "/" +
                           std::to_string(outcome.lanes)});
        if (!json_path.empty()) {
          qec::bench::JsonObject cell;
          cell.add("lanes", outcome.lanes)
              .add("mhz", mhz)
              .add("engines", outcome.telemetry.engines)
              .add("rounds", trace.rounds())
              .add("record_ms", record_ms)
              .add("replay_ms", replay_ms)
              .add("streamed_lane_rounds",
                   static_cast<std::int64_t>(lane_rounds))
              .add("us_per_lane_round", us_per_round)
              .add("lane_rounds_per_sec", rounds_per_sec)
              .add("overflow_lanes", outcome.overflow_lanes)
              .add("failed_lanes", outcome.failed_lanes)
              .add("failed_frac", failed_frac);
          if (outcome.tracer) {
            const auto emitted = outcome.tracer->emitted();
            cell.add_raw(
                "obs",
                qec::bench::JsonObject()
                    .add("events", static_cast<std::int64_t>(emitted))
                    .add("dropped", static_cast<std::int64_t>(
                                        outcome.tracer->dropped()))
                    .add("events_per_lane_round",
                         lane_rounds ? static_cast<double>(emitted) /
                                           static_cast<double>(lane_rounds)
                                     : 0.0)
                    .str());
          }
          json_cells.push_back(cell.str());
        }
        last_tracer = outcome.tracer;
        last_metrics = outcome.metrics;
      }
    }
    table.print();
    std::printf("\n(--threads=%d, --dispatch=%d; outcomes are unaffected by "
                "either)\n",
                base.threads, base.rounds_per_dispatch);
    if (!csv_path.empty()) {
      std::printf("scaling curve written to %s\n", csv_path.c_str());
    }
    if (!trace_json.empty() && last_tracer) {
      if (!qec::obs::write_chrome_trace(*last_tracer, trace_json)) {
        std::fprintf(stderr, "cannot write %s\n", trace_json.c_str());
        return 1;
      }
      std::printf("event trace (last cell) written to %s\n",
                  trace_json.c_str());
    }
    if (!metrics_csv.empty() && last_metrics) {
      if (!last_metrics->write_csv(metrics_csv)) {
        std::fprintf(stderr, "cannot write %s\n", metrics_csv.c_str());
        return 1;
      }
      std::printf("windowed metrics (last cell) written to %s\n",
                  metrics_csv.c_str());
    }
    if (!json_path.empty()) {
      const std::string config_json =
          qec::bench::JsonObject()
              .add("d", base.distance)
              .add("p", base.p)
              .add("rounds", base.rounds)
              .add("seed", static_cast<std::int64_t>(base.seed))
              .add("engine", base.engine)
              .add("policy", base.policy)
              .add("engines", base.engines)
              .add("dispatch", base.rounds_per_dispatch)
              .add("threads", base.threads)
              .add_raw("lanes", qec::bench::json_array(lane_counts))
              .add_raw("mhz", qec::bench::json_array(clocks_mhz))
              .str();
      qec::bench::write_json_file(
          json_path, qec::bench::JsonObject()
                         .add("bench", "lane_scaling")
                         .add("git_rev", qec::bench::git_revision())
                         .add_raw("config", config_json)
                         .add_raw("cells", qec::bench::json_array(json_cells))
                         .str());
      std::printf("run record written to %s\n", json_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lane_scaling: %s\n", e.what());
    return 1;
  }
}
