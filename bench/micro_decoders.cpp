// Google-benchmark microbenchmarks: decode latency scaling of every decoder
// plus engine/pulse-simulator throughput. Not a paper table — supporting
// evidence that the software baselines are implemented sensibly and that
// the Monte Carlo sweeps are laptop-scale.
#include <benchmark/benchmark.h>

#include "aqec/aqec_decoder.hpp"
#include "mwpm/mwpm_decoder.hpp"
#include "noise/phenomenological.hpp"
#include "qecool/online_runner.hpp"
#include "qecool/qecool_decoder.hpp"
#include "sfq/pulse_sim.hpp"
#include "unionfind/uf_decoder.hpp"

namespace {

// Pre-sampled histories so the benchmark times decoding only.
std::vector<qec::SyndromeHistory> histories(const qec::PlanarLattice& lat,
                                            double p, int count) {
  qec::Xoshiro256ss rng(12345);
  std::vector<qec::SyndromeHistory> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(qec::sample_history(lat, {p, p, lat.distance()}, rng));
  }
  return out;
}

template <typename DecoderT>
void decode_benchmark(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const double p = static_cast<double>(state.range(1)) * 1e-3;
  const qec::PlanarLattice lat(d);
  const auto hs = histories(lat, p, 32);
  DecoderT decoder;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto r = decoder.decode(lat, hs[i % hs.size()]);
    benchmark::DoNotOptimize(r.correction.data());
    ++i;
  }
  state.SetLabel("d=" + std::to_string(d) + " p=" + std::to_string(p));
}

void bench_args(benchmark::internal::Benchmark* b) {
  for (int d : {5, 9, 13}) {
    for (int p_milli : {1, 5, 10}) b->Args({d, p_milli});
  }
}

void BM_DecodeMwpm(benchmark::State& state) {
  decode_benchmark<qec::MwpmDecoder>(state);
}
void BM_DecodeUnionFind(benchmark::State& state) {
  decode_benchmark<qec::UnionFindDecoder>(state);
}
void BM_DecodeBatchQecool(benchmark::State& state) {
  decode_benchmark<qec::BatchQecoolDecoder>(state);
}
void BM_DecodeAqec(benchmark::State& state) {
  decode_benchmark<qec::AqecDecoder>(state);
}
BENCHMARK(BM_DecodeMwpm)->Apply(bench_args)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DecodeUnionFind)->Apply(bench_args)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DecodeBatchQecool)
    ->Apply(bench_args)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DecodeAqec)->Apply(bench_args)->Unit(benchmark::kMicrosecond);

void BM_OnlineQecoolRun(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const qec::PlanarLattice lat(d);
  const auto hs = histories(lat, 0.005, 16);
  qec::OnlineConfig config;
  config.cycles_per_round = 2000;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto r = qec::run_online(lat, hs[i % hs.size()], config);
    benchmark::DoNotOptimize(r.total_cycles);
    ++i;
  }
}
BENCHMARK(BM_OnlineQecoolRun)->Arg(5)->Arg(9)->Arg(13)->Unit(
    benchmark::kMicrosecond);

void BM_PulseSimArbiter(benchmark::State& state) {
  for (auto _ : state) {
    qec::PulseSimulator sim;
    const auto arb = qec::build_priority_arbiter(sim);
    for (int i = 0; i < 4; ++i) sim.inject(arb.port[i], 0.0);
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
}
BENCHMARK(BM_PulseSimArbiter)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
