// Google-benchmark microbenchmarks: decode latency scaling of every decoder
// plus engine/pulse-simulator throughput. Not a paper table — supporting
// evidence that the software baselines are implemented sensibly and that
// the Monte Carlo sweeps are laptop-scale.
#include <benchmark/benchmark.h>

#include "aqec/aqec_decoder.hpp"
#include "mwpm/mwpm_decoder.hpp"
#include "noise/phenomenological.hpp"
#include "qecool/decode_cache.hpp"
#include "qecool/online_runner.hpp"
#include "qecool/qecool_decoder.hpp"
#include "sfq/pulse_sim.hpp"
#include "unionfind/uf_decoder.hpp"

namespace {

// Pre-sampled histories so the benchmark times decoding only.
std::vector<qec::SyndromeHistory> histories(const qec::PlanarLattice& lat,
                                            double p, int count) {
  qec::Xoshiro256ss rng(12345);
  std::vector<qec::SyndromeHistory> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(qec::sample_history(lat, {p, p, lat.distance()}, rng));
  }
  return out;
}

template <typename DecoderT>
void decode_benchmark(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const double p = static_cast<double>(state.range(1)) * 1e-3;
  const qec::PlanarLattice lat(d);
  const auto hs = histories(lat, p, 32);
  DecoderT decoder;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto r = decoder.decode(lat, hs[i % hs.size()]);
    benchmark::DoNotOptimize(r.correction.data());
    ++i;
  }
  state.SetLabel("d=" + std::to_string(d) + " p=" + std::to_string(p));
}

void bench_args(benchmark::internal::Benchmark* b) {
  for (int d : {5, 9, 13}) {
    for (int p_milli : {1, 5, 10}) b->Args({d, p_milli});
  }
}

void BM_DecodeMwpm(benchmark::State& state) {
  decode_benchmark<qec::MwpmDecoder>(state);
}
void BM_DecodeUnionFind(benchmark::State& state) {
  decode_benchmark<qec::UnionFindDecoder>(state);
}
void BM_DecodeBatchQecool(benchmark::State& state) {
  decode_benchmark<qec::BatchQecoolDecoder>(state);
}
void BM_DecodeAqec(benchmark::State& state) {
  decode_benchmark<qec::AqecDecoder>(state);
}
BENCHMARK(BM_DecodeMwpm)->Apply(bench_args)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DecodeUnionFind)->Apply(bench_args)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DecodeBatchQecool)
    ->Apply(bench_args)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DecodeAqec)->Apply(bench_args)->Unit(benchmark::kMicrosecond);

void BM_OnlineQecoolRun(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const qec::PlanarLattice lat(d);
  const auto hs = histories(lat, 0.005, 16);
  qec::OnlineConfig config;
  config.cycles_per_round = 2000;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto r = qec::run_online(lat, hs[i % hs.size()], config);
    benchmark::DoNotOptimize(r.total_cycles);
    ++i;
  }
}
BENCHMARK(BM_OnlineQecoolRun)->Arg(5)->Arg(9)->Arg(13)->Unit(
    benchmark::kMicrosecond);

// Decode-window memoization A/B on the on-line engine (DESIGN.md section
// 13): cache off (arg 1 = 0) vs on (arg 1 = 1) across the same physical
// error rates as the decode benches, at the paper's d = 9 under a tight
// 160-cycle round budget. One cache persists across iterations — the
// streaming-service shape, where a lane block shares a warm shard — so
// this measures steady-state behaviour, not cold-start misses. At low p
// most windows are sparse and repeat, so the cached variant should pull
// ahead; at high p the max_defects gate bypasses dense windows and the
// two variants converge — the crossover bench/lane_scaling's --p sweep
// pins down at scale. The `hit_rate` counter reports hits / lookups.
void BM_OnlineQecoolCache(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const double p = static_cast<double>(state.range(1)) * 1e-3;
  const bool cached = state.range(2) != 0;
  const qec::PlanarLattice lat(d);
  const auto hs = histories(lat, p, 16);
  qec::OnlineConfig config;
  config.cycles_per_round = 160;
  config.engine.cache.enabled = false;  // we attach our own persistent cache
  qec::DecodeCache cache(config.engine.cache.entries);
  std::uint64_t hits = 0;
  std::uint64_t lookups = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    qec::OnlineStepper stepper(lat, config);
    if (cached) stepper.set_decode_cache(&cache);
    const auto& h = hs[i % hs.size()];
    for (const auto& layer : h.difference) {
      if (!stepper.step(layer)) break;
    }
    if (!stepper.overflowed()) {
      for (int extra = 0; extra < config.max_drain_rounds; ++extra) {
        if (stepper.drained()) break;
        if (!stepper.step_clean()) break;
      }
    }
    const auto& cs = stepper.engine().cache_stats();
    hits += cs.hits;
    lookups += cs.hits + cs.misses;
    benchmark::DoNotOptimize(stepper.engine().total_cycles());
    ++i;
  }
  if (cached && lookups > 0) {
    state.counters["hit_rate"] =
        static_cast<double>(hits) / static_cast<double>(lookups);
  }
  state.SetLabel("d=" + std::to_string(d) + " p=" + std::to_string(p) +
                 (cached ? " cache=on" : " cache=off"));
}
BENCHMARK(BM_OnlineQecoolCache)
    ->ArgsProduct({{5, 9, 13}, {1, 5, 10}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

void BM_PulseSimArbiter(benchmark::State& state) {
  for (auto _ : state) {
    qec::PulseSimulator sim;
    const auto arb = qec::build_priority_arbiter(sim);
    for (int i = 0; i < 4; ++i) sim.inject(arb.port[i], 0.0);
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
}
BENCHMARK(BM_PulseSimArbiter)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
