// Keep-up frontier of the shared decoder-engine pool: sweep the hardware
// budget K/N (engines per lane) against the decoder clock for each lane
// scheduling policy, and chart what fraction of N concurrent streams fail
// (Reg overflow, failure to drain, or logical error). This is the "how
// much decode hardware per chip" question the ROADMAP poses: dedicating
// one QECOOL engine to each of ~2,500 patches is the K == N corner; the
// sweep shows how far K can shrink before lanes start dying, and how much
// a backpressure-aware scheduler buys over a fixed rotation.
//
// Every cell also carries its *watts*: the modelled ERSFQ dissipation of
// the K-engine pool at that clock (src/stream/admission.hpp), so the CSV
// charts failed-lane fraction against power — how many lanes survive per
// watt at each clock — not just against K/N. --budget-w=W caps every cell
// at the largest K whose pool fits W (the Table V question, live), and
// --admission=overflow,pause,codel compares load shedding styles cell by
// cell — depth-triggered vs sojourn-triggered (CoDel) freezing.
//
// One trace is recorded per run and replayed through every (admission,
// policy, K, clock) cell, so cells differ only in the service
// configuration. The CSV has one row per cell: failed-lane fraction,
// overflow/drain/logical split, pool watts, surviving lanes per watt,
// pool utilization, Jain fairness, starved and paused lane-rounds, and
// aggregate end-to-end sojourn percentiles (p50/p95/p99/max, rounds);
// --latency-csv adds per-lane latency rows for every cell.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/slo.hpp"
#include "qecool/online_runner.hpp"
#include "stream/admission.hpp"
#include "stream/scheduler.hpp"
#include "stream/service.hpp"

namespace {

using qec::bench::fmt;
using qec::bench::split_doubles;
using qec::bench::split_list;

/// Splits a comma-separated list of *specs*, re-attaching option
/// fragments to their spec: "overflow,pause:high=6,low=2" is the two
/// specs {"overflow", "pause:high=6,low=2"}, not four items. A fragment
/// that contains '=' but no ':' can only be a key=value option of the
/// previous spec (names never contain '='; a new spec with options
/// carries its own ':').
std::vector<std::string> split_specs(const std::string& text) {
  std::vector<std::string> items;
  for (auto& piece : split_list(text)) {
    const bool option_fragment = piece.find('=') != std::string::npos &&
                                 piece.find(':') == std::string::npos;
    if (option_fragment && !items.empty()) {
      items.back() += "," + piece;
    } else {
      items.push_back(std::move(piece));
    }
  }
  return items;
}

constexpr const char* kSummary =
    "sweep the shared decoder pool over K/N x clock x policy x admission "
    "and chart failed-lane fraction against modelled pool watts";

constexpr const char* kOptions =
    "  --lanes=32            concurrent logical-qubit streams (N)\n"
    "  --d=5                 code distance\n"
    "  --p=0.01              physical error rate (p_data = p_meas)\n"
    "  --rounds=128          noisy rounds per lane\n"
    "  --mhz=10,40,160       decoder clocks to sweep (MHz, list)\n"
    "  --fractions=...       K/N grid (default 0.125,0.25,0.375,0.5,0.75,1)\n"
    "  --engines=K           sweep a single pool size instead of --fractions\n"
    "  --policies=round_robin,least_loaded   scheduling policy specs (list:\n"
    "                        dedicated | round_robin[:offset=N] |\n"
    "                        least_loaded | fq[:quantum=CYCLES])\n"
    "  --admission=overflow  admission specs (list: overflow |\n"
    "                        pause[:high=H,low=L] |\n"
    "                        codel[:target=T,interval=I], rounds)\n"
    "  --budget-w=0          4-K power budget in watts; > 0 caps K per cell\n"
    "  --dispatch=1          rounds per scheduling dispatch (static policies)\n"
    "  --engine=qecool       lane engine spec\n"
    "  --seed=2021           trace RNG seed\n"
    "  --drain=1000          max drain rounds after the trace ends\n"
    "  --threads=1           worker threads (0 = all cores; never changes "
    "results)\n"
    "  --csv=FILE            write the sweep CSV to FILE\n"
    "  --latency-csv=FILE    per-lane sojourn latency rows for every cell\n"
    "  --json=FILE           write a machine-readable run record to FILE\n"
    "                        (config, git revision, per-cell wall-clock and\n"
    "                        lane-rounds/s — same shape as lane_scaling's)\n"
    "  --trace-json=FILE     Chrome-trace-event timeline of the LAST cell\n"
    "                        (tracing is on for every cell; per-cell event\n"
    "                        counts land in the --json obs block)\n"
    "  --trace-ring=16384    per-track event ring capacity\n"
    "  --metrics-csv=FILE    windowed metrics time series of the LAST cell\n"
    "  --metrics-window=64   rounds per metrics window\n"
    "  --profile-csv=FILE    per-stage wall-clock self-profile of the LAST\n"
    "                        cell (enables profiling for every cell;\n"
    "                        wall-clock values are non-deterministic)\n"
    "  --slo=SPEC            SLO burn-rate objectives per cell, e.g.\n"
    "                        'sojourn_p99<8' (implies windowed metrics;\n"
    "                        per-cell compliance lands in the --json\n"
    "                        record's slo block)\n"
    "  --prom-snapshot=FILE  Prometheus snapshot of the LAST cell's final\n"
    "                        cumulative metrics (implies metrics)\n";

}  // namespace

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  if (qec::handle_help(args, "pool_scaling", kSummary, kOptions)) return 0;
  qec::StreamConfig base;
  base.lanes = static_cast<int>(args.get_int_or("lanes", 32));
  base.distance = static_cast<int>(args.get_int_or("d", 5));
  base.p = args.get_double_or("p", 0.01);
  base.rounds = static_cast<int>(args.get_int_or("rounds", 128));
  base.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 2021));
  base.engine = args.get_or("engine", "qecool");
  base.max_drain_rounds = static_cast<int>(args.get_int_or("drain", 1000));
  base.rounds_per_dispatch = static_cast<int>(args.get_int_or("dispatch", 1));
  base.budget_w = args.get_double_or("budget-w", 0.0);
  base.threads = qec::threads_override(args, 1);
  const std::string trace_json = args.get_or("trace-json", "");
  const std::string metrics_csv = args.get_or("metrics-csv", "");
  base.obs.trace = !trace_json.empty();
  base.obs.trace_ring =
      static_cast<int>(args.get_int_or("trace-ring", base.obs.trace_ring));
  const std::string profile_csv = args.get_or("profile-csv", "");
  const std::string prom_snapshot = args.get_or("prom-snapshot", "");
  base.obs.metrics = !metrics_csv.empty() || !prom_snapshot.empty();
  base.obs.metrics_window = static_cast<int>(
      args.get_int_or("metrics-window", base.obs.metrics_window));
  base.obs.profile = !profile_csv.empty();
  base.obs.slo = args.get_or("slo", "");

  qec::bench::print_header(
      "Pool scaling: K shared decoder engines serving N lanes",
      "failed-lane fraction over K/N x clock, per scheduling policy");

  try {
    const auto clocks_mhz = split_doubles(args.get_or("mhz", "10,40,160"));
    const auto policies =
        split_specs(args.get_or("policies", "round_robin,least_loaded"));
    const auto admissions = split_specs(args.get_or("admission", "overflow"));

    // Pool sizes: a single --engines=K, or the K/N fraction grid.
    std::vector<int> pool_sizes;
    if (const auto fixed = args.get_int("engines")) {
      pool_sizes.push_back(static_cast<int>(*fixed));
    } else {
      for (const double f : split_doubles(
               args.get_or("fractions", "0.125,0.25,0.375,0.5,0.75,1"))) {
        const int k = std::clamp(
            static_cast<int>(std::lround(f * base.lanes)), 1, base.lanes);
        if (pool_sizes.empty() || pool_sizes.back() != k) pool_sizes.push_back(k);
      }
    }

    // Validate every policy and admission spec — and the power budget's
    // affordability at every clock — before the first (possibly long)
    // cell, so nothing throws mid-sweep leaving a partial CSV.
    for (const auto& policy : policies) qec::make_scheduler_policy(policy);
    for (const auto& admission : admissions) {
      qec::parse_admission_spec(admission);
    }
    if (!base.obs.slo.empty()) qec::obs::parse_slo_spec(base.obs.slo);
    if (base.budget_w > 0) {
      for (const double mhz : clocks_mhz) {
        if (mhz <= 0) {
          throw std::invalid_argument(
              "--budget-w needs a positive clock; got --mhz=" + fmt(mhz));
        }
        if (qec::PoolPowerModel::max_engines(base.budget_w, base.distance,
                                             mhz * 1e6) < 1) {
          throw std::invalid_argument(
              "--budget-w=" + fmt(base.budget_w, "%.6g") +
              " cannot supply even one engine at d=" +
              std::to_string(base.distance) + ", " + fmt(mhz, "%.6g") +
              " MHz");
        }
      }
    }

    const qec::SyndromeTrace trace = qec::record_trace(base);
    std::printf("trace: %d lanes, d=%d, %d rounds, p=%g, seed %llu\n\n",
                trace.lanes(), base.distance, trace.rounds(), base.p,
                static_cast<unsigned long long>(base.seed));

    const std::string csv_path = args.get_or("csv", "");
    qec::CsvWriter csv(csv_path.empty() ? "/dev/null" : csv_path,
                       {"policy", "admission", "lanes", "engines", "k_over_n",
                        "mhz", "budget", "watts", "budget_w",
                        "overflow_lanes", "undrained_lanes",
                        "logical_failures", "failed_lanes", "failed_frac",
                        "surviving_lanes", "lanes_per_watt", "utilization",
                        "fairness", "starved_rounds", "paused_rounds",
                        "soj_p50", "soj_p95", "soj_p99", "soj_max"});

    const std::string json_path = args.get_or("json", "");
    std::vector<std::string> json_cells;
    std::shared_ptr<qec::obs::Tracer> last_tracer;
    std::shared_ptr<qec::obs::MetricsRegistry> last_metrics;
    std::shared_ptr<qec::obs::Profiler> last_profiler;
    std::shared_ptr<qec::obs::SloEngine> last_slo;

    const std::string latency_path = args.get_or("latency-csv", "");
    qec::CsvWriter latency_csv(
        latency_path.empty() ? "/dev/null" : latency_path,
        {"policy", "admission", "lanes", "engines", "mhz", "lane", "samples",
         "soj_p50", "soj_p95", "soj_p99", "soj_max"});

    qec::TextTable table({"policy", "admission", "K/N", "mhz", "watts",
                          "failed", "overflow", "paused", "soj_p99",
                          "fairness", "util"});
    const auto start = std::chrono::steady_clock::now();
    // With --budget-w, several requested K collapse onto the same
    // power-capped pool; run each distinct (admission, policy, clock, K)
    // cell once instead of re-recording identical rows.
    std::set<std::string> seen;
    int capped_cells = 0;
    for (const auto& admission : admissions) {
      for (const auto& policy : policies) {
        for (const int engines : pool_sizes) {
          for (const double mhz : clocks_mhz) {
            int k = engines;
            if (base.budget_w > 0) {
              const int fit = qec::PoolPowerModel::max_engines(
                  base.budget_w, base.distance, mhz * 1e6);
              if (fit < k) {
                k = fit;
                ++capped_cells;
              }
            }
            if (!seen.insert(admission + "|" + policy + "|" + fmt(mhz, "%.9g") +
                             "|" + std::to_string(k))
                     .second) {
              continue;
            }
            qec::StreamConfig config = base;
            config.policy = policy;
            config.admission = admission;
            config.engines = engines;
            config.cycles_per_round = qec::cycles_per_microsecond(mhz * 1e6);
            const auto cell_start = std::chrono::steady_clock::now();
            const qec::StreamOutcome outcome = qec::run_stream(trace, config);
            const double replay_ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - cell_start)
                    .count();

            // run_stream may have shed K to fit --budget-w; chart what ran.
            const int ran_engines = outcome.telemetry.engines;
            const double watts = outcome.telemetry.watts;
            const auto all = outcome.telemetry.aggregate();
            const double util = outcome.telemetry.pool_utilization();
            const double k_over_n = static_cast<double>(ran_engines) /
                                    static_cast<double>(outcome.lanes);
            const double failed_frac =
                static_cast<double>(outcome.failed_lanes) /
                static_cast<double>(outcome.lanes);
            const int surviving = outcome.lanes - outcome.failed_lanes;
            const double lanes_per_watt =
                watts > 0 ? static_cast<double>(surviving) / watts : 0.0;
            const int undrained =
                static_cast<int>(outcome.telemetry.lanes.size()) -
                outcome.drained_lanes - outcome.overflow_lanes;
            const double fairness = outcome.telemetry.fairness_index();
            const std::uint64_t soj_max =
                all.sojourn_rounds.empty()
                    ? 0
                    : *std::max_element(all.sojourn_rounds.begin(),
                                        all.sojourn_rounds.end());

            if (csv.ok()) {
              csv.add_row(
                  {policy, admission, std::to_string(outcome.lanes),
                   std::to_string(ran_engines), fmt(k_over_n),
                   fmt(mhz, "%.6g"), fmt(config.cycles_per_round, "%.6g"),
                   fmt(watts, "%.6g"), fmt(base.budget_w, "%.6g"),
                   std::to_string(outcome.overflow_lanes),
                   std::to_string(undrained),
                   std::to_string(outcome.logical_failures),
                   std::to_string(outcome.failed_lanes), fmt(failed_frac),
                   std::to_string(surviving), fmt(lanes_per_watt, "%.6g"),
                   fmt(util), fmt(fairness),
                   std::to_string(all.starved_rounds),
                   std::to_string(all.paused_rounds),
                   std::to_string(all.sojourn_percentile(50)),
                   std::to_string(all.sojourn_percentile(95)),
                   std::to_string(all.sojourn_percentile(99)),
                   std::to_string(soj_max)});
              csv.flush();
            }
            if (!latency_path.empty() && latency_csv.ok()) {
              const auto emit_latency = [&](const qec::LaneTelemetry& t,
                                            const std::string& label) {
                const std::uint64_t lane_max =
                    t.sojourn_rounds.empty()
                        ? 0
                        : *std::max_element(t.sojourn_rounds.begin(),
                                            t.sojourn_rounds.end());
                latency_csv.add_row(
                    {policy, admission, std::to_string(outcome.lanes),
                     std::to_string(ran_engines), fmt(mhz, "%.6g"), label,
                     std::to_string(t.sojourn_rounds.size()),
                     std::to_string(t.sojourn_percentile(50)),
                     std::to_string(t.sojourn_percentile(95)),
                     std::to_string(t.sojourn_percentile(99)),
                     std::to_string(lane_max)});
              };
              for (const auto& lane : outcome.telemetry.lanes) {
                emit_latency(lane, std::to_string(lane.lane));
              }
              emit_latency(all, "all");
              latency_csv.flush();
            }
            if (!json_path.empty()) {
              const std::int64_t lane_rounds =
                  static_cast<std::int64_t>(all.rounds_streamed) +
                  all.drain_rounds;
              qec::bench::JsonObject cell;
              cell.add("policy", policy)
                  .add("admission", admission)
                  .add("lanes", outcome.lanes)
                  .add("engines", ran_engines)
                  .add("mhz", mhz)
                  .add("replay_ms", replay_ms)
                  .add("streamed_lane_rounds", lane_rounds)
                  .add("us_per_lane_round",
                       lane_rounds ? replay_ms * 1e3 /
                                         static_cast<double>(lane_rounds)
                                   : 0.0)
                  .add("lane_rounds_per_sec",
                       replay_ms > 0 ? static_cast<double>(lane_rounds) /
                                           (replay_ms * 1e-3)
                                     : 0.0)
                  .add("failed_lanes", outcome.failed_lanes)
                  .add("failed_frac", failed_frac)
                  .add("watts", watts);
              if (outcome.tracer) {
                const auto emitted = outcome.tracer->emitted();
                cell.add_raw(
                    "obs",
                    qec::bench::JsonObject()
                        .add("events", static_cast<std::int64_t>(emitted))
                        .add("dropped", static_cast<std::int64_t>(
                                            outcome.tracer->dropped()))
                        .add("events_per_lane_round",
                             lane_rounds ? static_cast<double>(emitted) /
                                               static_cast<double>(lane_rounds)
                                         : 0.0)
                        .str());
              }
              if (outcome.slo) {
                cell.add_raw("slo", outcome.slo->summary_json());
              }
              json_cells.push_back(cell.str());
            }
            last_tracer = outcome.tracer;
            last_metrics = outcome.metrics;
            last_profiler = outcome.profiler;
            last_slo = outcome.slo;
            table.add_row({policy, admission, fmt(k_over_n),
                           fmt(mhz, "%.6g"), fmt(watts, "%.3g"),
                           std::to_string(outcome.failed_lanes) + "/" +
                               std::to_string(outcome.lanes),
                           std::to_string(outcome.overflow_lanes),
                           std::to_string(all.paused_rounds),
                           std::to_string(all.sojourn_percentile(99)),
                           fmt(fairness), fmt(util)});
          }
        }
      }
    }
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    table.print();
    if (capped_cells > 0) {
      std::printf("\n--budget-w=%g capped %d cell(s); duplicate capped cells "
                  "run once\n",
                  base.budget_w, capped_cells);
    }
    std::printf("\nwall-clock %.1f ms (--threads=%d, --dispatch=%d)\n", ms,
                base.threads, base.rounds_per_dispatch);
    if (!csv_path.empty()) {
      std::printf("sweep written to %s\n", csv_path.c_str());
    }
    if (!latency_path.empty()) {
      std::printf("per-lane sojourn latency written to %s\n",
                  latency_path.c_str());
    }
    using qec::bench::report_written;
    if (!trace_json.empty() && last_tracer &&
        !report_written(qec::obs::write_chrome_trace(*last_tracer, trace_json,
                                                     last_profiler.get()),
                        "event trace (last cell)", trace_json)) {
      return 1;
    }
    if (!metrics_csv.empty() && last_metrics &&
        !report_written(last_metrics->write_csv(metrics_csv),
                        "windowed metrics (last cell)", metrics_csv)) {
      return 1;
    }
    if (!profile_csv.empty() && last_profiler &&
        !report_written(last_profiler->write_csv(profile_csv),
                        "wall-clock profile (last cell)", profile_csv)) {
      return 1;
    }
    if (!prom_snapshot.empty() && last_metrics &&
        !report_written(qec::obs::write_prom_snapshot(
                            *last_metrics, last_slo.get(), prom_snapshot),
                        "prometheus snapshot (last cell)", prom_snapshot)) {
      return 1;
    }
    if (!json_path.empty()) {
      std::vector<std::string> policy_items, admission_items, pool_items;
      for (const auto& p : policies) {
        policy_items.push_back("\"" + qec::bench::json_escape(p) + "\"");
      }
      for (const auto& a : admissions) {
        admission_items.push_back("\"" + qec::bench::json_escape(a) + "\"");
      }
      for (const int k : pool_sizes) pool_items.push_back(std::to_string(k));
      const std::string config_json =
          qec::bench::JsonObject()
              .add("lanes", base.lanes)
              .add("d", base.distance)
              .add("p", base.p)
              .add("rounds", base.rounds)
              .add("seed", static_cast<std::int64_t>(base.seed))
              .add("engine", base.engine)
              .add("dispatch", base.rounds_per_dispatch)
              .add("threads", base.threads)
              .add("budget_w", base.budget_w)
              .add("slo", base.obs.slo)
              .add("profile", base.obs.profile ? 1 : 0)
              .add_raw("policies", qec::bench::json_array(policy_items))
              .add_raw("admissions", qec::bench::json_array(admission_items))
              .add_raw("engines", qec::bench::json_array(pool_items))
              .add_raw("mhz", qec::bench::json_array(clocks_mhz))
              .str();
      qec::bench::write_json_file(
          json_path, qec::bench::JsonObject()
                         .add("bench", "pool_scaling")
                         .add("git_rev", qec::bench::git_revision())
                         .add_raw("config", config_json)
                         .add_raw("cells", qec::bench::json_array(json_cells))
                         .str());
      std::printf("run record written to %s\n", json_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pool_scaling: %s\n", e.what());
    return 1;
  }
}
