// Keep-up frontier of the shared decoder-engine pool: sweep the hardware
// budget K/N (engines per lane) against the decoder clock for each lane
// scheduling policy, and chart what fraction of N concurrent streams fail
// (Reg overflow, failure to drain, or logical error). This is the "how
// much decode hardware per chip" question the ROADMAP poses: dedicating
// one QECOOL engine to each of ~2,500 patches is the K == N corner; the
// sweep shows how far K can shrink before lanes start dying, and how much
// a backpressure-aware scheduler buys over a fixed rotation.
//
//   pool_scaling [--lanes=32] [--d=5] [--p=0.01] [--rounds=128]
//                [--mhz=10,40,160] [--fractions=0.125,0.25,0.375,0.5,0.75,1]
//                [--engines=K]            (overrides --fractions with one K)
//                [--policies=round_robin,least_loaded] [--dispatch=1]
//                [--seed=2021] [--threads=1] [--drain=1000]
//                [--csv=pool_scaling.csv]
//
// One trace is recorded per run and replayed through every (K, clock,
// policy) cell, so cells differ only in the service configuration. The CSV
// has one row per cell: failed-lane fraction, overflow/drain/logical
// split, pool utilization, Jain fairness, and starved lane-rounds.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "qecool/online_runner.hpp"
#include "stream/scheduler.hpp"
#include "stream/service.hpp"

namespace {

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto comma = text.find(',', start);
    const auto end = comma == std::string::npos ? text.size() : comma;
    if (end > start) items.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return items;
}

std::vector<double> split_doubles(const std::string& text) {
  std::vector<double> values;
  for (const auto& item : split_list(text)) {
    std::size_t used = 0;
    double value = 0.0;
    try {
      value = std::stod(item, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != item.size()) {
      throw std::invalid_argument("not a number in list: '" + item + "'");
    }
    values.push_back(value);
  }
  return values;
}

std::string fmt(double value, const char* spec = "%.4g") {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), spec, value);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  qec::StreamConfig base;
  base.lanes = static_cast<int>(args.get_int_or("lanes", 32));
  base.distance = static_cast<int>(args.get_int_or("d", 5));
  base.p = args.get_double_or("p", 0.01);
  base.rounds = static_cast<int>(args.get_int_or("rounds", 128));
  base.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 2021));
  base.engine = args.get_or("engine", "qecool");
  base.max_drain_rounds = static_cast<int>(args.get_int_or("drain", 1000));
  base.rounds_per_dispatch = static_cast<int>(args.get_int_or("dispatch", 1));
  base.threads = qec::threads_override(args, 1);

  qec::bench::print_header(
      "Pool scaling: K shared decoder engines serving N lanes",
      "failed-lane fraction over K/N x clock, per scheduling policy");

  try {
    const auto clocks_mhz = split_doubles(args.get_or("mhz", "10,40,160"));
    const auto policies =
        split_list(args.get_or("policies", "round_robin,least_loaded"));

    // Pool sizes: a single --engines=K, or the K/N fraction grid.
    std::vector<int> pool_sizes;
    if (const auto fixed = args.get_int("engines")) {
      pool_sizes.push_back(static_cast<int>(*fixed));
    } else {
      for (const double f : split_doubles(
               args.get_or("fractions", "0.125,0.25,0.375,0.5,0.75,1"))) {
        const int k = std::clamp(
            static_cast<int>(std::lround(f * base.lanes)), 1, base.lanes);
        if (pool_sizes.empty() || pool_sizes.back() != k) pool_sizes.push_back(k);
      }
    }

    // Validate every policy spec before the first (possibly long) cell.
    for (const auto& policy : policies) qec::make_scheduler_policy(policy);

    const qec::SyndromeTrace trace = qec::record_trace(base);
    std::printf("trace: %d lanes, d=%d, %d rounds, p=%g, seed %llu\n\n",
                trace.lanes(), base.distance, trace.rounds(), base.p,
                static_cast<unsigned long long>(base.seed));

    const std::string csv_path = args.get_or("csv", "");
    qec::CsvWriter csv(csv_path.empty() ? "/dev/null" : csv_path,
                       {"policy", "lanes", "engines", "k_over_n", "mhz",
                        "budget", "overflow_lanes", "undrained_lanes",
                        "logical_failures", "failed_lanes", "failed_frac",
                        "utilization", "fairness", "starved_rounds"});

    qec::TextTable table({"policy", "K/N", "mhz", "failed", "overflow",
                          "fairness", "starved", "util"});
    const auto start = std::chrono::steady_clock::now();
    for (const auto& policy : policies) {
      for (const int engines : pool_sizes) {
        for (const double mhz : clocks_mhz) {
          qec::StreamConfig config = base;
          config.policy = policy;
          config.engines = engines;
          config.cycles_per_round = qec::cycles_per_microsecond(mhz * 1e6);
          const qec::StreamOutcome outcome = qec::run_stream(trace, config);

          const auto all = outcome.telemetry.aggregate();
          const double util = outcome.telemetry.pool_utilization();
          const double k_over_n =
              static_cast<double>(engines) / static_cast<double>(outcome.lanes);
          const double failed_frac = static_cast<double>(outcome.failed_lanes) /
                                     static_cast<double>(outcome.lanes);
          const int undrained = static_cast<int>(outcome.telemetry.lanes.size()) -
                                outcome.drained_lanes - outcome.overflow_lanes;
          const double fairness = outcome.telemetry.fairness_index();

          if (csv.ok()) {
            csv.add_row({policy, std::to_string(outcome.lanes),
                         std::to_string(engines), fmt(k_over_n),
                         fmt(mhz, "%.6g"), fmt(config.cycles_per_round, "%.6g"),
                         std::to_string(outcome.overflow_lanes),
                         std::to_string(undrained),
                         std::to_string(outcome.logical_failures),
                         std::to_string(outcome.failed_lanes),
                         fmt(failed_frac), fmt(util), fmt(fairness),
                         std::to_string(all.starved_rounds)});
            csv.flush();
          }
          table.add_row({policy, fmt(k_over_n), fmt(mhz, "%.6g"),
                         std::to_string(outcome.failed_lanes) + "/" +
                             std::to_string(outcome.lanes),
                         std::to_string(outcome.overflow_lanes), fmt(fairness),
                         std::to_string(all.starved_rounds), fmt(util)});
        }
      }
    }
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    table.print();
    std::printf("\nwall-clock %.1f ms (--threads=%d, --dispatch=%d)\n", ms,
                base.threads, base.rounds_per_dispatch);
    if (!csv_path.empty()) {
      std::printf("sweep written to %s\n", csv_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pool_scaling: %s\n", e.what());
    return 1;
  }
}
