// Soak bench for the streaming decode service: many logical-qubit lanes
// served by a shared pool of K on-line QECOOL engines, with queue-depth,
// latency, and scheduling telemetry. The fleet-scale version of Fig 7's
// keep-up question: at a given clock and hardware budget, how many of N
// concurrent streams survive a long run without Reg overflow?
//
// --engines=K (0 = one per lane) sizes the pool and --policy picks the
// lane scheduler (dedicated | round_robin | least_loaded). --dispatch=B
// batches B rounds per parallel_for barrier for static policies — the
// lane-scaling amortization; outcomes never change, only wall-clock.
// --admission=pause swaps Reg-overflow lane death for graceful load
// shedding (freeze + drain + re-admit), --admission=codel freezes on
// sustained sojourn latency instead of queue depth (the CoDel law in
// logical rounds; pair with --policy=fq for FQ-CoDel fair scheduling and
// --latency-csv for per-lane end-to-end percentiles), and --budget-w
// caps the pool at the largest K that fits the 4-K power budget (see
// --help).
//
// With a fixed seed every CSV is byte-identical for any --threads value,
// and a run replayed from --trace-in reproduces the recorded run's
// per-lane overflow/drain outcomes exactly.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "decoder/registry.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/postmortem.hpp"
#include "obs/slo.hpp"
#include "qecool/decode_cache.hpp"
#include "qecool/online_runner.hpp"
#include "stream/admission.hpp"
#include "stream/scheduler.hpp"
#include "stream/service.hpp"

namespace {

constexpr const char* kSummary =
    "soak the streaming decode service: N concurrent on-line lanes served "
    "by a shared pool of K QECOOL engines, with full telemetry CSVs";

constexpr const char* kOptions =
    "  --lanes=64            concurrent logical-qubit streams (N)\n"
    "  --d=7                 code distance\n"
    "  --p=0.01              physical error rate (p_data = p_meas)\n"
    "  --rounds=256          noisy rounds per lane\n"
    "  --mhz=2000            decoder clock in MHz (cycle budget per round)\n"
    "  --engine=qecool       lane engine spec (e.g. qecool:reg_depth=4)\n"
    "  --engines=0           pool size K (0 = one engine per lane)\n"
    "  --policy=dedicated    scheduling policy spec: dedicated |\n"
    "                        round_robin[:offset=N] | least_loaded |\n"
    "                        fq[:quantum=CYCLES]\n"
    "  --admission=overflow  admission control spec: overflow |\n"
    "                        pause[:high=H,low=L] |\n"
    "                        codel[:target=T,interval=I] (rounds)\n"
    "  --budget-w=0          4-K power budget in watts; > 0 caps K\n"
    "  --cache=SPEC          decode-window cache: off | on |\n"
    "                        clock[:entries=N,shards=S,max_defects=M]\n"
    "                        ('' = engine-spec / built-in default)\n"
    "  --cache-csv=FILE      per-lane decode-cache counter CSV\n"
    "  --dispatch=1          rounds per scheduling dispatch (static policies)\n"
    "  --seed=2021           trace RNG seed\n"
    "  --drain=1000          max drain rounds after the trace ends\n"
    "  --threads=1           worker threads (0 = all cores; never changes "
    "results)\n"
    "  --csv=FILE            per-lane telemetry CSV\n"
    "  --sched-csv=FILE      per-engine / per-lane scheduling report CSV\n"
    "  --timeline-csv=FILE   per-round aggregate depth timeline CSV\n"
    "  --latency-csv=FILE    per-lane end-to-end sojourn latency CSV\n"
    "  --trace-out=FILE      save the recorded syndrome trace ('QTRC')\n"
    "  --trace-in=FILE       replay a previously recorded trace\n"
    "  --trace-json=FILE     event timeline as Chrome trace JSON (open in\n"
    "                        Perfetto / chrome://tracing; ts = logical round)\n"
    "  --trace-ring=16384    per-track event ring capacity (flight recorder:\n"
    "                        oldest events drop once full)\n"
    "  --metrics-csv=FILE    windowed metrics time-series CSV\n"
    "  --metrics-window=64   rounds per metrics window\n"
    "  --profile-csv=FILE    per-stage wall-clock self-profile CSV (enables\n"
    "                        profiling; wall-clock values are explicitly\n"
    "                        non-deterministic — docs/observability.md)\n"
    "  --slo=SPEC            SLO burn-rate objectives, e.g.\n"
    "                        'sojourn_p99<8,window=256' (implies windowed\n"
    "                        metrics; verdicts are thread-count invariant)\n"
    "  --slo-csv=FILE        per-window SLO verdict CSV\n"
    "  --prom-snapshot=FILE  Prometheus text-exposition snapshot of the\n"
    "                        final cumulative metrics (implies metrics)\n"
    "  --dump-obs-on-exit[=DIR]\n"
    "                        arm the postmortem flight recorder: dump the\n"
    "                        obs bundle to DIR (default obs_bundle) at\n"
    "                        exit, on fatal signals, and on SIGUSR1\n";

}  // namespace

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  if (qec::handle_help(args, "stream_soak", kSummary, kOptions)) return 0;
  qec::StreamConfig config;
  config.lanes = static_cast<int>(args.get_int_or("lanes", 64));
  config.distance = static_cast<int>(args.get_int_or("d", 7));
  config.p = args.get_double_or("p", 0.01);
  config.rounds = static_cast<int>(args.get_int_or("rounds", 256));
  config.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 2021));
  config.engine = args.get_or("engine", "qecool");
  config.cycles_per_round =
      qec::cycles_per_microsecond(args.get_double_or("mhz", 2000.0) * 1e6);
  config.max_drain_rounds = static_cast<int>(args.get_int_or("drain", 1000));
  config.engines = static_cast<int>(args.get_int_or("engines", 0));
  config.policy = args.get_or("policy", "dedicated");
  config.admission = args.get_or("admission", "overflow");
  config.budget_w = args.get_double_or("budget-w", 0.0);
  config.rounds_per_dispatch = static_cast<int>(args.get_int_or("dispatch", 1));
  config.cache = args.get_or("cache", "");
  config.threads = qec::threads_override(args, 1);
  const std::string trace_json = args.get_or("trace-json", "");
  const std::string metrics_csv = args.get_or("metrics-csv", "");
  config.obs.trace = !trace_json.empty();
  config.obs.trace_ring =
      static_cast<int>(args.get_int_or("trace-ring", config.obs.trace_ring));
  const std::string profile_csv = args.get_or("profile-csv", "");
  const std::string slo_csv = args.get_or("slo-csv", "");
  const std::string prom_snapshot = args.get_or("prom-snapshot", "");
  const auto dump_dir =
      qec::optional_value_flag(args, "dump-obs-on-exit", "obs_bundle");
  config.obs.metrics = !metrics_csv.empty() || !prom_snapshot.empty();
  config.obs.metrics_window = static_cast<int>(
      args.get_int_or("metrics-window", config.obs.metrics_window));
  config.obs.profile = !profile_csv.empty();
  config.obs.slo = args.get_or("slo", "");
  if (dump_dir) {
    config.obs.dump_dir = *dump_dir;
    qec::obs::FlightRecorder::install_signal_handlers();
  }

  qec::bench::print_header(
      "Stream soak: N concurrent on-line lanes vs a shared decoder pool",
      "Fig 7 scaled out — per-lane overflow/drain under sustained load");

  try {
    // Validate the engine, policy, and admission specs before recording a
    // trace, so a typo costs nothing.
    qec::online_engine_config(config.engine);
    qec::make_scheduler_policy(config.policy);
    qec::parse_admission_spec(config.admission);
    if (!config.cache.empty()) qec::parse_decode_cache_spec(config.cache);
    if (!config.obs.slo.empty()) qec::obs::parse_slo_spec(config.obs.slo);

    qec::SyndromeTrace trace;
    const std::string trace_in = args.get_or("trace-in", "");
    if (!trace_in.empty()) {
      trace = qec::SyndromeTrace::load(trace_in);
      std::printf("replaying %s: %d lanes, d=%u, %d rounds, p=%g\n\n",
                  trace_in.c_str(), trace.lanes(), trace.header().distance,
                  trace.rounds(), trace.header().p_data);
    } else {
      trace = qec::record_trace(config);
    }

    const auto start = std::chrono::steady_clock::now();
    const qec::StreamOutcome outcome = qec::run_stream(trace, config);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();

    const std::string trace_out = args.get_or("trace-out", "");
    if (!trace_out.empty()) {
      trace.save(trace_out);
      std::printf("trace recorded to %s\n", trace_out.c_str());
    }

    const auto all = outcome.telemetry.aggregate();
    qec::TextTable table({"metric", "value"});
    table.add_row({"lanes", std::to_string(outcome.lanes)});
    table.add_row({"pool engines / policy",
                   std::to_string(outcome.telemetry.engines) + " / " +
                       config.policy});
    table.add_row({"admission", config.admission});
    table.add_row({"decode cache", outcome.telemetry.cache});
    if (outcome.telemetry.cache != "off") {
      table.add_row(
          {"cache hits / misses / bypasses",
           std::to_string(all.cache.hits) + " / " +
               std::to_string(all.cache.misses) + " / " +
               std::to_string(all.cache.bypasses)});
      table.add_row({"cache zero rounds / pushes",
                     std::to_string(all.cache.zero_rounds) + " / " +
                         std::to_string(all.cache.zero_pushes)});
    }
    if (outcome.telemetry.watts > 0) {
      std::string watts = qec::TextTable::fmt(outcome.telemetry.watts * 1e6, 3) + " uW";
      if (config.budget_w > 0) {
        watts += " of " + qec::TextTable::fmt(config.budget_w * 1e6, 3) + " uW";
      }
      table.add_row({"pool power (ERSFQ model)", watts});
    }
    table.add_row({"rounds / dispatch",
                   std::to_string(config.rounds_per_dispatch)});
    table.add_row({"rounds streamed / lane", std::to_string(trace.rounds())});
    table.add_row({"budget (cycles/round)",
                   qec::TextTable::fmt(config.cycles_per_round, 2)});
    table.add_row({"overflowed lanes", std::to_string(outcome.overflow_lanes)});
    table.add_row({"drained lanes", std::to_string(outcome.drained_lanes)});
    table.add_row({"logical failures", std::to_string(outcome.logical_failures)});
    table.add_row({"failed lanes (any cause)",
                   std::to_string(outcome.failed_lanes)});
    table.add_row({"popped layers (all lanes)", std::to_string(all.popped_layers)});
    table.add_row({"layer cycles p50/p95/p99",
                   std::to_string(all.cycle_percentile(50)) + " / " +
                       std::to_string(all.cycle_percentile(95)) + " / " +
                       std::to_string(all.cycle_percentile(99))});
    table.add_row({"sojourn rounds p50/p95/p99",
                   std::to_string(all.sojourn_percentile(50)) + " / " +
                       std::to_string(all.sojourn_percentile(95)) + " / " +
                       std::to_string(all.sojourn_percentile(99))});
    table.add_row({"queue depth mean / max",
                   qec::TextTable::fmt(all.mean_depth(), 3) + " / " +
                       std::to_string(all.max_depth())});
    table.add_row({"starved lane-rounds", std::to_string(all.starved_rounds)});
    table.add_row({"paused lane-rounds / lanes",
                   std::to_string(all.paused_rounds) + " / " +
                       std::to_string(outcome.telemetry.ever_paused_lanes())});
    table.add_row({"service fairness (Jain)",
                   qec::TextTable::fmt(outcome.telemetry.fairness_index(), 4)});
    table.add_row({"total working cycles", std::to_string(all.total_cycles)});
    if (outcome.tracer) {
      table.add_row({"obs events (emitted / dropped)",
                     std::to_string(outcome.tracer->emitted()) + " / " +
                         std::to_string(outcome.tracer->dropped())});
    }
    if (outcome.metrics) {
      table.add_row({"obs metrics windows (W rounds)",
                     std::to_string(outcome.metrics->windows()) + " (" +
                         std::to_string(outcome.metrics->window()) + ")"});
    }
    if (outcome.slo) {
      for (const auto& s : outcome.slo->summaries()) {
        table.add_row(
            {"slo " + s.spec,
             std::string(qec::obs::slo_state_name(s.state)) + " (" +
                 std::to_string(s.violations) + "/" +
                 std::to_string(s.windows) + " bad windows, " +
                 std::to_string(s.pages) + " paged)"});
      }
      table.add_row({"slo compliant (never paged)",
                     outcome.slo->compliant() ? "yes" : "no"});
    }
    table.print();
    std::printf("\nwall-clock %.1f ms (--threads=%d, --dispatch=%d)\n", ms,
                config.threads, config.rounds_per_dispatch);

    {
      // Export time shows up as the kTraceExport stage when profiling.
      qec::obs::ScopedStage prof(outcome.profiler.get(),
                                 qec::obs::Stage::kTraceExport);
      using qec::bench::report_written;
      const std::string csv = args.get_or("csv", "");
      if (!csv.empty() &&
          !report_written(outcome.telemetry.write_csv(csv), "telemetry", csv)) {
        return 1;
      }
      const std::string sched_csv = args.get_or("sched-csv", "");
      if (!sched_csv.empty() &&
          !report_written(outcome.telemetry.write_schedule_csv(sched_csv),
                          "schedule report", sched_csv)) {
        return 1;
      }
      const std::string timeline_csv = args.get_or("timeline-csv", "");
      if (!timeline_csv.empty() &&
          !report_written(outcome.telemetry.write_timeline_csv(timeline_csv),
                          "round timeline", timeline_csv)) {
        return 1;
      }
      const std::string cache_csv = args.get_or("cache-csv", "");
      if (!cache_csv.empty() &&
          !report_written(outcome.telemetry.write_cache_csv(cache_csv),
                          "decode-cache report", cache_csv)) {
        return 1;
      }
      const std::string latency_csv = args.get_or("latency-csv", "");
      if (!latency_csv.empty() &&
          !report_written(outcome.telemetry.write_latency_csv(latency_csv),
                          "sojourn latency report", latency_csv)) {
        return 1;
      }
      if (!trace_json.empty() &&
          !report_written(
              qec::obs::write_chrome_trace(*outcome.tracer, trace_json,
                                           outcome.profiler.get()),
              "event trace (open in Perfetto)", trace_json)) {
        return 1;
      }
      if (!metrics_csv.empty() &&
          !report_written(outcome.metrics->write_csv(metrics_csv),
                          "windowed metrics", metrics_csv)) {
        return 1;
      }
      if (!slo_csv.empty() &&
          !report_written(outcome.slo ? outcome.slo->write_csv(slo_csv) : false,
                          "slo verdicts", slo_csv)) {
        return 1;
      }
      if (!prom_snapshot.empty() &&
          !report_written(
              qec::obs::write_prom_snapshot(*outcome.metrics,
                                            outcome.slo.get(), prom_snapshot),
              "prometheus snapshot", prom_snapshot)) {
        return 1;
      }
    }
    if (!profile_csv.empty() &&
        !qec::bench::report_written(outcome.profiler->write_csv(profile_csv),
                                    "wall-clock profile", profile_csv)) {
      return 1;
    }
    if (dump_dir && qec::obs::FlightRecorder::instance().dump("exit")) {
      std::printf("obs bundle dumped to %s\n", dump_dir->c_str());
    }
    return outcome.overflow_lanes == outcome.lanes ? 2 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "stream_soak: %s\n", e.what());
    // Best-effort postmortem: armed only when --dump-obs-on-exit was given
    // and run_stream got far enough to attach the obs objects.
    if (qec::obs::FlightRecorder::instance().dump(
            std::string("exception: ") + e.what())) {
      std::fprintf(stderr, "obs bundle dumped to %s\n",
                   qec::obs::FlightRecorder::instance().dir().c_str());
    }
    return 1;
  }
}
