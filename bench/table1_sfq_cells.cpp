// Table I: the SFQ logic elements used by the QECOOL Unit, with JJ counts,
// bias currents, areas and latencies from the AIST ADP cell library.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sfq/cell_library.hpp"

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  if (qec::handle_help(args, "table1_sfq_cells",
                       "Table I: summary of the SFQ logic cells (JJs, bias, "
                       "area, latency) from the AIST ADP cell library",
                       "")) {
    return 0;
  }
  qec::bench::print_header("Table I: summary of SFQ logic elements",
                           "Table I (AIST 10-kA/cm^2 ADP cell library)");
  qec::TextTable table(
      {"cell", "JJs", "Bias current (mA)", "Area (um^2)", "Latency (ps)"});
  for (const auto& spec : qec::cell_table()) {
    table.add_row({std::string(spec.name), std::to_string(spec.jjs),
                   qec::TextTable::fmt(spec.bias_ma, 3),
                   qec::TextTable::fmt(spec.area_um2, 0),
                   qec::TextTable::fmt(spec.latency_ps, 1)});
  }
  table.print();
  return 0;
}
