// Table II + Fig 6: per-module breakdown of one QECOOL Unit (cell counts,
// JJs, area, bias current, latency) and the whole-Unit budget: 3177 JJs,
// 1.274 mm^2, 336 mA, 215 ps critical path (~5 GHz max clock).
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sfq/power.hpp"
#include "sfq/unit_netlist.hpp"

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  if (qec::handle_help(args, "table2_unit_breakdown",
                       "Table II: logic elements, JJs, area and bias current "
                       "per Unit module",
                       "")) {
    return 0;
  }
  qec::bench::print_header(
      "Table II: logic elements / JJs / area / bias per Unit module",
      "Table II and Fig 6");

  qec::TextTable table({"module", "splitter", "merger", "1:2 switch", "DRO",
                        "NDRO", "RD", "D2", "wire JJs", "JJs", "area (um^2)",
                        "bias (mA)", "latency (ps)"});
  for (const auto& m : qec::unit_modules()) {
    std::vector<std::string> row = {std::string(m.name)};
    for (int c = 0; c < qec::kSfqCellCount; ++c) {
      row.push_back(std::to_string(m.cells[static_cast<std::size_t>(c)]));
    }
    row.push_back(std::to_string(m.wire_jjs));
    row.push_back(std::to_string(m.published_jjs));
    row.push_back(qec::TextTable::fmt(m.published_area_um2, 0));
    row.push_back(qec::TextTable::fmt(m.published_bias_ma, 1));
    row.push_back(m.published_latency_ps > 0
                      ? qec::TextTable::fmt(m.published_latency_ps, 1)
                      : "-");
    table.add_row(row);
  }
  table.print();

  const auto budget = qec::unit_budget();
  int derived = 0;
  for (const auto& m : qec::unit_modules()) derived += m.derived_jjs();
  std::printf("\nUnit totals: %d JJs (derived bottom-up: %d), %.3f mm^2, "
              "%.0f mA, %.0f ps critical path\n",
              budget.jjs, derived, budget.area_um2 * 1e-6, budget.bias_ma,
              budget.critical_path_ps);
  std::printf("max clock: %.2f GHz (paper: about 5 GHz)\n",
              qec::unit_max_frequency_hz() / 1e9);
  std::printf("RSFQ power/Unit: %.0f uW; ERSFQ power/Unit at 2 GHz: %.2f uW\n",
              qec::qecool_unit_rsfq_power_w() * 1e6,
              qec::qecool_unit_ersfq_power_w(2e9) * 1e6);
  std::printf("Fig 6 layout: 1770 um x 720 um = %.3f mm^2\n",
              1770.0 * 720.0 * 1e-6);
  return 0;
}
