// Table III: per-layer execution cycles of on-line QECOOL (Max / Avg /
// sigma) for d in {5..13} and p in {0.001, 0.005, 0.01}.
//
// The decoder runs with an unconstrained cycle budget (the table
// characterises the work per layer, not a particular clock); thv = 3 and a
// 7-entry Reg as in the paper.
//
//   table3_execution_cycles [--trials=200]
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/monte_carlo.hpp"

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  const int trials = static_cast<int>(qec::trials_override(args, 200));

  qec::bench::print_header("Table III: per-layer execution cycles of QECOOL",
                           "Table III (Max / Avg / sigma per layer)");

  const double ps[] = {0.001, 0.005, 0.01};
  std::vector<std::string> header = {"d"};
  for (double p : ps) {
    const std::string tag = "p=" + qec::TextTable::fmt(p, 3);
    header.push_back(tag + " Max");
    header.push_back(tag + " Avg");
    header.push_back(tag + " sigma");
  }
  qec::TextTable table(header);

  for (int d = 5; d <= 13; d += 2) {
    std::vector<std::string> row = {std::to_string(d)};
    for (double p : ps) {
      qec::OnlineConfig online;  // cycles_per_round = 0: unconstrained
      const auto r = qec::run_online_experiment(
          qec::phenomenological_config(d, p, trials), online);
      row.push_back(qec::TextTable::fmt(r.layer_cycles.max(), 0));
      row.push_back(qec::TextTable::fmt(r.layer_cycles.mean(), 2));
      row.push_back(qec::TextTable::fmt(r.layer_cycles.stddev(), 2));
    }
    table.add_row(row);
    std::fprintf(stderr, "  d=%d done\n", d);
  }
  table.print();
  std::printf(
      "\npaper's character to compare: Avg ~ d at p=0.001 (6.1 at d=5), "
      "heavy growth in d and p (337 avg / 4072 max at d=13, p=0.01), "
      "Max >> Avg everywhere.\nA layer must finish within 1 us (the "
      "measurement interval), i.e. within f x 1us cycles.\n");
  return 0;
}
