// Table III: per-layer execution cycles of on-line QECOOL (Max / Avg /
// sigma) for d in {5..13} and p in {0.001, 0.005, 0.01}.
//
// The decoder runs with an unconstrained cycle budget (the table
// characterises the work per layer, not a particular clock); thv = 3 and a
// 7-entry Reg as in the paper.
//
//   table3_execution_cycles [--trials=200] [--threads=N]
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  if (qec::handle_help(
          args, "table3_execution_cycles",
          "Table III: per-layer execution cycles of on-line QECOOL "
          "(max / avg / sigma) over d and p, unconstrained budget",
          "  --trials=200          Monte Carlo trials per point (env "
          "QECOOL_TRIALS)\n"
          "  --threads=1           worker threads (0 = all cores; env "
          "QECOOL_THREADS)\n"
          "  --csv=FILE            write the table CSV to FILE\n")) {
    return 0;
  }
  const int trials = static_cast<int>(qec::trials_override(args, 200));

  qec::bench::print_header("Table III: per-layer execution cycles of QECOOL",
                           "Table III (Max / Avg / sigma per layer)");

  qec::SweepGrid grid;
  // cycles_per_round = 0: unconstrained budget.
  grid.variants.push_back(qec::online_variant("QECOOL", qec::OnlineConfig{}));
  grid.distances = {5, 7, 9, 11, 13};
  grid.ps = {0.001, 0.005, 0.01};
  grid.trials = trials;
  grid.threads = qec::threads_override(args, 1);

  const double last_p = grid.ps.back();
  const auto result =
      qec::run_sweep(grid, args.get_or("csv", ""),
                     [last_p](const qec::SweepCell& cell) {
                       if (cell.p == last_p) {
                         std::fprintf(stderr, "  d=%d done\n", cell.distance);
                       }
                     });

  std::vector<std::string> header = {"d"};
  for (double p : grid.ps) {
    const std::string tag = "p=" + qec::TextTable::fmt(p, 3);
    header.push_back(tag + " Max");
    header.push_back(tag + " Avg");
    header.push_back(tag + " sigma");
  }
  qec::TextTable table(header);

  for (int d : grid.distances) {
    std::vector<std::string> row = {std::to_string(d)};
    for (double p : grid.ps) {
      const auto& cycles = result.find("QECOOL", d, p)->result.layer_cycles;
      row.push_back(qec::TextTable::fmt(cycles.max(), 0));
      row.push_back(qec::TextTable::fmt(cycles.mean(), 2));
      row.push_back(qec::TextTable::fmt(cycles.stddev(), 2));
    }
    table.add_row(row);
  }
  table.print();
  std::printf(
      "\npaper's character to compare: Avg ~ d at p=0.001 (6.1 at d=5), "
      "heavy growth in d and p (337 avg / 4072 max at d=13, p=0.01), "
      "Max >> Avg everywhere.\nA layer must finish within 1 us (the "
      "measurement interval), i.e. within f x 1us cycles.\n");
  return 0;
}
