// Table IV: qualitative comparison of decoder accuracy thresholds (2-D and
// 3-D), measured by Monte Carlo with this repo's implementations:
//
//            paper p_th (2-D / 3-D)     environment
//   MWPM     10.3% / 2.9%               software
//   UF        9.9% / 2.6%               FPGA
//   AQEC      5.0% / -                  SFQ
//   QECOOL    6.0% / 1.0%               SFQ
//
// Includes the hop-limit ablation from DESIGN.md: QECOOL with escalating
// timeout vs a single full-range pass (nlimit behaviour).
//
//   table4_decoder_comparison [--trials=1500] [--threads=N]
#include <cstdio>
#include <optional>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/sweep.hpp"

namespace {

std::optional<double> measure_threshold(const char* spec, bool three_d,
                                        const std::vector<double>& ps,
                                        int base_trials, bool adapt_mwpm,
                                        const std::vector<int>& ds,
                                        int threads) {
  qec::SweepGrid grid;
  auto variant = qec::decoder_variant(spec, spec);
  if (adapt_mwpm) {
    variant.trials_for = [base_trials](const qec::ExperimentConfig& config) {
      return qec::bench::mwpm_trials(base_trials, config.distance,
                                     config.p_data, config.rounds);
    };
  }
  grid.variants.push_back(std::move(variant));
  grid.distances = ds;
  grid.ps = ps;
  grid.code_capacity = !three_d;
  grid.trials = base_trials;
  grid.threads = threads;
  return qec::run_sweep(grid).threshold(spec);
}

std::string fmt_th(const std::optional<double>& th) {
  return th ? qec::TextTable::fmt(*th * 100, 2) + "%" : "n/a";
}

}  // namespace

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  if (qec::handle_help(
          args, "table4_decoder_comparison",
          "Table IV: decoder accuracy thresholds (2-D and 3-D) for MWPM, "
          "UF, AQEC and QECOOL, plus the hop-limit ablation",
          "  --trials=1500         Monte Carlo trials per point (env "
          "QECOOL_TRIALS)\n"
          "  --threads=1           worker threads (0 = all cores; env "
          "QECOOL_THREADS)\n")) {
    return 0;
  }
  const int trials = static_cast<int>(qec::trials_override(args, 1500));
  const int threads = qec::threads_override(args, 1);

  qec::bench::print_header("Table IV: decoder comparison (measured p_th)",
                           "Table IV");

  // Each decoder gets a sweep grid bracketing its expected crossing; a grid
  // far from the crossing makes the log-log interpolation noisy.
  struct Row {
    const char* name;
    const char* spec;
    bool adapt;           // MWPM needs the adaptive trial budget
    bool three_d_capable;
    std::vector<double> ps2d;
    std::vector<double> ps3d;
    std::vector<int> ds;
    const char* paper_2d;
    const char* paper_3d;
    const char* latency;
    const char* environment;
  };
  const Row rows[] = {
      {"MWPM", "mwpm", true, true,
       {0.07, 0.08, 0.09, 0.10, 0.11, 0.12},
       {0.02, 0.025, 0.03, 0.035, 0.04},
       {5, 7, 9},
       "10.3%", "2.9%", "High", "Software"},
      {"UF", "uf", false, true,
       {0.06, 0.07, 0.08, 0.09, 0.10, 0.11},
       {0.015, 0.02, 0.025, 0.03, 0.035},
       {5, 7, 9, 11, 13},
       "9.9%", "2.6%", "Medium", "FPGA"},
      {"AQEC", "aqec", false, false,
       {0.02, 0.03, 0.04, 0.05, 0.06, 0.07},
       {},
       {5, 7, 9, 11, 13},
       "5%", "-", "Very low", "SFQ"},
      {"QECOOL", "qecool", false, true,
       {0.02, 0.03, 0.04, 0.05, 0.06, 0.07},
       {0.005, 0.0075, 0.01, 0.0125, 0.015, 0.02},
       {5, 7, 9, 11, 13},
       "6.0%", "1.0%", "Low", "SFQ"},
  };

  qec::TextTable table({"decoder", "p_th 2-D (meas)", "p_th 2-D (paper)",
                        "p_th 3-D (meas)", "p_th 3-D (paper)", "latency",
                        "environment"});
  for (const auto& row : rows) {
    const auto th2 = measure_threshold(row.spec, false, row.ps2d, trials,
                                       row.adapt, row.ds, threads);
    std::fprintf(stderr, "  %s 2-D done\n", row.name);
    std::optional<double> th3;
    if (row.three_d_capable) {
      th3 = measure_threshold(row.spec, true, row.ps3d, trials / 3,
                              row.adapt, row.ds, threads);
      std::fprintf(stderr, "  %s 3-D done\n", row.name);
    }
    table.add_row({row.name, fmt_th(th2), row.paper_2d,
                   row.three_d_capable ? fmt_th(th3) : "-", row.paper_3d,
                   row.latency, row.environment});
  }
  table.print();

  // Ablation: hop-limit escalation. A Controller that starts with the
  // full-range timeout (nlimit reached immediately) loses the
  // closest-pairs-first property and decodes worse.
  std::printf("\n--- ablation: hop-limit escalation (d=7, 3-D) ---\n");
  qec::SweepGrid ablation;
  ablation.variants.push_back(
      qec::decoder_variant("escalating", "qecool"));
  ablation.variants.push_back(
      qec::decoder_variant("max-hop", "qecool:start_at_max_hop=1"));
  ablation.distances = {7};
  ablation.ps = {0.005, 0.01, 0.02};
  ablation.trials = trials / 2;
  ablation.threads = threads;
  const auto ab_result = qec::run_sweep(ablation);

  qec::TextTable ab({"p", "escalating C (paper)", "max-hop first pass"});
  for (double p : ablation.ps) {
    ab.add_row({qec::TextTable::fmt(p, 4),
                qec::TextTable::sci(
                    ab_result.find("escalating", 7, p)->result.logical_error_rate,
                    2),
                qec::TextTable::sci(
                    ab_result.find("max-hop", 7, p)->result.logical_error_rate,
                    2)});
  }
  ab.print();
  return 0;
}
