// Table V: AQEC [Holmes et al. 2020] vs QECOOL at d = 9, p = 0.001, with a
// 1 W power budget in the 4-K stage:
//
//   - p_th (2-D / 3-D): AQEC 5.0% / unknown, QECOOL 6.0% / 1.0%
//   - execution time per layer (max / avg): AQEC 19.8 / 3.93 ns (published),
//     QECOOL 400 / 20.8 ns (measured cycles at 2 GHz -> 0.5 ns per cycle)
//   - power per Unit: AQEC 13.44 uW, QECOOL 2.78 uW (ERSFQ at 2 GHz)
//   - Units per logical qubit: AQEC (2d-1)^2 (x7 for 3-D), QECOOL 2d(d-1)
//   - protectable logical qubits: AQEC ~37, QECOOL 2498
//
//   table5_aqec_comparison [--trials=400] [--threads=N]
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sfq/budget.hpp"
#include "sfq/power.hpp"
#include "sfq/unit_netlist.hpp"
#include "sim/monte_carlo.hpp"

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  if (qec::handle_help(
          args, "table5_aqec_comparison",
          "Table V: AQEC vs QECOOL at d = 9 — thresholds, execution time, "
          "power per Unit, and protectable logical qubits in 1 W",
          "  --trials=400          Monte Carlo trials (env QECOOL_TRIALS)\n"
          "  --threads=1           worker threads (0 = all cores; env "
          "QECOOL_THREADS)\n")) {
    return 0;
  }
  const int trials = static_cast<int>(qec::trials_override(args, 400));
  const int d = 9;
  const double freq = 2e9;

  qec::bench::print_header("Table V: AQEC vs QECOOL", "Table V (d=9, p=0.001)");

  // Measure QECOOL per-layer execution time at the paper's operating point.
  qec::OnlineConfig online;
  online.cycles_per_round = qec::cycles_per_microsecond(freq);
  auto config = qec::phenomenological_config(d, 0.001, trials);
  config.threads = qec::threads_override(args, 1);
  config.shards = 16;  // fixed schedule: results independent of --threads
  const auto run = qec::run_online_experiment(config, online);
  const double ns_per_cycle = 1e9 / freq;
  const double meas_max_ns = run.layer_cycles.max() * ns_per_cycle;
  const double meas_avg_ns = run.layer_cycles.mean() * ns_per_cycle;

  const auto qecool = qec::qecool_deployment(d, freq);
  const auto aqec = qec::aqec_deployment(d, /*extended_to_3d=*/true);
  const double aqec_exact =
      qec::kFourKelvinBudgetW / aqec.power_per_logical_qubit_w();

  qec::TextTable table({"", "AQEC", "QECOOL (7-bit Reg)"});
  table.add_row({"p_th (2-D / 3-D)", "5.0% / -", "6.0% / 1.0%  (paper)"});
  table.add_row({"exec time per layer Max (ns)", "19.8 (published)",
                 qec::TextTable::fmt(meas_max_ns, 1) + " (meas; paper 400)"});
  table.add_row({"exec time per layer Avg (ns)", "3.93 (published)",
                 qec::TextTable::fmt(meas_avg_ns, 1) + " (meas; paper 20.8)"});
  table.add_row({"power per Unit (uW)",
                 qec::TextTable::fmt(aqec.power_per_unit_w * 1e6, 2),
                 qec::TextTable::fmt(qecool.power_per_unit_w * 1e6, 2)});
  table.add_row({"# Units per logical qubit (d=9)",
                 std::to_string(aqec.units_per_logical_qubit) +
                     "  ((2d-1)^2 x 7)",
                 std::to_string(qecool.units_per_logical_qubit) +
                     "  (2d(d-1))"});
  table.add_row({"directly applicable to 3-D", "No", "Yes"});
  table.add_row(
      {"# protectable logical qubits (1 W)",
       std::to_string(aqec.protectable_logical_qubits(1.0)) + " (paper: 37; " +
           qec::TextTable::fmt(aqec_exact, 1) + " exact)",
       std::to_string(qecool.protectable_logical_qubits(1.0)) +
           " (paper: 2498)"});
  table.print();

  std::printf("\nQECOOL per-layer budget at 2 GHz: %.0f cycles = 1 us; "
              "measured max %.1f ns << 1000 ns, so the decoder keeps up "
              "with the measurement cadence (Section V-D).\n",
              online.cycles_per_round, meas_max_ns);
  return 0;
}
