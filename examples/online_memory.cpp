// On-line memory experiment walk-through: stream one noisy history through
// on-line QECOOL layer by layer and narrate what the hardware does —
// pushes, pops, matches, cycles — then verify the logical qubit survived.
// A didactic view of Section III-B / Fig 3 (batch vs online QEC).
//
//   ./online_memory [--d=5] [--p=0.02] [--seed=7] [--ghz=2]
#include <cstdio>

#include "common/cli.hpp"
#include "decoder/decoder.hpp"
#include "noise/phenomenological.hpp"
#include "qecool/engine.hpp"
#include "qecool/online_runner.hpp"
#include "surface_code/pauli_frame.hpp"

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  if (qec::handle_help(
          args, "online_memory",
          "run one on-line memory experiment and print the per-round "
          "queue/decoding story at a given decoder clock",
          "  --d=5                 code distance\n"
          "  --p=0.02              physical error rate\n"
          "  --ghz=2.0             decoder clock in GHz\n"
          "  --seed=7              RNG seed\n")) {
    return 0;
  }
  const int d = static_cast<int>(args.get_int_or("d", 5));
  const double p = args.get_double_or("p", 0.02);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int_or("seed", 7));
  const double ghz = args.get_double_or("ghz", 2.0);

  const qec::PlanarLattice lattice(d);
  qec::Xoshiro256ss rng(seed);
  const auto history = qec::sample_history(lattice, {p, p, d}, rng);

  std::printf("on-line QECOOL walk-through: d=%d, p=%.3f, %d noisy rounds + "
              "1 perfect round, decoder @ %.1f GHz\n\n",
              d, p, d, ghz);

  qec::QecoolConfig config;  // thv = 3, 7-entry Reg: the paper's hardware
  qec::QecoolEngine engine(lattice, config);
  const auto budget =
      static_cast<std::uint64_t>(qec::cycles_per_microsecond(ghz * 1e9));

  std::uint64_t prev_cycles = 0;
  qec::MatchStats prev_stats;
  for (int t = 0; t < history.total_rounds(); ++t) {
    const auto& layer = history.difference[static_cast<std::size_t>(t)];
    const int defects = qec::weight(layer);
    if (!engine.push_layer(layer)) {
      std::printf("round %2d: REG OVERFLOW - trial failed\n", t);
      return 1;
    }
    engine.run(budget);
    const auto& s = engine.match_stats();
    std::printf("round %2d: %d new defect%s | stored layers %d | spent %5llu "
                "cycles | matches +%llu pair, +%llu time, +%llu boundary\n",
                t, defects, defects == 1 ? " " : "s", engine.stored_layers(),
                static_cast<unsigned long long>(engine.total_cycles() -
                                                prev_cycles),
                static_cast<unsigned long long>(s.pair_matches -
                                                prev_stats.pair_matches),
                static_cast<unsigned long long>(s.self_matches -
                                                prev_stats.self_matches),
                static_cast<unsigned long long>(s.boundary_matches -
                                                prev_stats.boundary_matches));
    prev_cycles = engine.total_cycles();
    prev_stats = s;
  }

  // Keep the QEC cycle running on clean layers until the queues drain.
  const qec::BitVec clean(static_cast<std::size_t>(lattice.num_checks()), 0);
  int extra = 0;
  while (!(engine.all_clear() && engine.stored_layers() == 0) && extra < 64) {
    engine.push_layer(clean);
    engine.run(budget);
    ++extra;
  }
  std::printf("\ndrained after %d extra clean rounds; total %llu working "
              "cycles over %d popped layers\n",
              extra, static_cast<unsigned long long>(engine.total_cycles()),
              engine.popped_layers());

  const qec::BitVec residual =
      qec::xor_of(history.final_error, engine.correction());
  std::printf("physical error weight %d, correction weight %d, residual "
              "weight %d\n",
              qec::weight(history.final_error), qec::weight(engine.correction()),
              qec::weight(residual));
  if (!qec::is_zero(lattice.syndrome(residual))) {
    std::printf("=> residual has live syndrome (unexpected!)\n");
    return 1;
  }
  std::printf("=> logical qubit %s\n", lattice.logical_flip(residual)
                                           ? "LOST (logical error)"
                                           : "survived");
  return 0;
}
