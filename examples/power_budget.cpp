// Cryogenic power budgeting: how many logical qubits fit the 4-K stage of a
// dilution refrigerator for a given code distance, decoder clock, and
// power budget — the deployment question behind the paper's Table V and its
// headline claim of ~2500 protected logical qubits.
//
//   ./power_budget [--budget=1.0] [--ghz=2] [--dmin=5 --dmax=13]
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sfq/budget.hpp"
#include "sfq/power.hpp"
#include "sfq/unit_netlist.hpp"

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  if (qec::handle_help(
          args, "power_budget",
          "how many logical qubits fit the 4-K-stage power budget at each "
          "code distance (the Table V question, generalized)",
          "  --budget=1.0          4-K power budget in watts\n"
          "  --ghz=2.0             decoder clock in GHz\n"
          "  --dmin=5              smallest code distance\n"
          "  --dmax=13             largest code distance\n")) {
    return 0;
  }
  const double budget = args.get_double_or("budget", qec::kFourKelvinBudgetW);
  const double ghz = args.get_double_or("ghz", 2.0);
  const int dmin = static_cast<int>(args.get_int_or("dmin", 5));
  const int dmax = static_cast<int>(args.get_int_or("dmax", 13));

  std::printf("4-K stage budget: %.2f W, decoder clock %.1f GHz\n", budget,
              ghz);
  std::printf("one QECOOL Unit: RSFQ %.0f uW (infeasible), ERSFQ %.2f uW\n\n",
              qec::qecool_unit_rsfq_power_w() * 1e6,
              qec::qecool_unit_ersfq_power_w(ghz * 1e9) * 1e6);

  qec::TextTable table({"d", "Units/logical qubit", "power/logical qubit (uW)",
                        "protectable logical qubits", "physical data qubits"});
  for (int d = dmin; d <= dmax; d += 2) {
    const auto dep = qec::qecool_deployment(d, ghz * 1e9);
    const long long qubits = dep.protectable_logical_qubits(budget);
    // Both error sectors: d^2 + (d-1)^2 data qubits per logical qubit.
    const long long data = static_cast<long long>(d) * d + (d - 1) * (d - 1);
    table.add_row({std::to_string(d),
                   std::to_string(dep.units_per_logical_qubit),
                   qec::TextTable::fmt(dep.power_per_logical_qubit_w() * 1e6, 1),
                   std::to_string(qubits),
                   std::to_string(qubits * data)});
  }
  table.print();

  const auto aqec3d = qec::aqec_deployment(9, true);
  std::printf("\nfor comparison, AQEC (NISQ+) extended to 3-D at d=9 protects "
              "%lld logical qubits in the same budget.\n",
              aqec3d.protectable_logical_qubits(budget));
  return 0;
}
