// Quickstart: protect one logical qubit with QECOOL.
//
// Builds a distance-5 planar surface code sector, streams phenomenological
// noise through the on-line QECOOL decoder clocked at 2 GHz (the paper's
// operating point), and reports the logical error rate next to the MWPM
// baseline on identical settings.
//
//   ./quickstart [--d=5] [--p=0.003] [--trials=2000] [--ghz=2]
#include <cstdio>

#include "common/cli.hpp"
#include "mwpm/mwpm_decoder.hpp"
#include "qecool/online_runner.hpp"
#include "sim/monte_carlo.hpp"

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  if (qec::handle_help(
          args, "quickstart",
          "smallest end-to-end run: sample a memory experiment, decode it "
          "with batch and on-line QECOOL, and report the outcome",
          "  --d=5                 code distance\n"
          "  --p=0.003             physical error rate\n"
          "  --ghz=2.0             decoder clock in GHz\n"
          "  --trials=2000         Monte Carlo trials (env QECOOL_TRIALS)\n")) {
    return 0;
  }
  const int d = static_cast<int>(args.get_int_or("d", 5));
  const double p = args.get_double_or("p", 0.003);
  const int trials = static_cast<int>(qec::trials_override(args, 2000));
  const double ghz = args.get_double_or("ghz", 2.0);

  std::printf("QECOOL quickstart: d=%d, p=%.4f, %d trials, decoder @ %.1f GHz\n",
              d, p, trials, ghz);

  const qec::ExperimentConfig config =
      qec::phenomenological_config(d, p, trials);

  qec::OnlineConfig online;
  online.cycles_per_round = qec::cycles_per_microsecond(ghz * 1e9);
  const qec::ExperimentResult qecool =
      qec::run_online_experiment(config, online);

  qec::MwpmDecoder mwpm;
  const qec::ExperimentResult baseline =
      qec::run_memory_experiment(mwpm, config);

  std::printf("\n  decoder        logical error rate  (95%% CI)\n");
  std::printf("  online-QECOOL  %-18.5f [%.5f, %.5f]\n",
              qecool.logical_error_rate, qecool.ci.lower, qecool.ci.upper);
  std::printf("  MWPM (batch)   %-18.5f [%.5f, %.5f]\n",
              baseline.logical_error_rate, baseline.ci.lower,
              baseline.ci.upper);
  std::printf("\n  QECOOL per-layer cycles: avg %.2f, max %.0f  (budget %.0f)\n",
              qecool.layer_cycles.mean(), qecool.layer_cycles.max(),
              online.cycles_per_round);
  std::printf("  overflow/drain failures: %llu of %llu trials\n",
              static_cast<unsigned long long>(qecool.operational_failures),
              static_cast<unsigned long long>(qecool.trials));
  return 0;
}
