// SFQ hardware demo: build the Unit's race-logic priority arbiter from
// Table I cells in the behavioural pulse simulator and race spikes through
// it, then report the Unit's physical budget (JJs, area, power) — the
// hardware story of Section IV condensed into one runnable example.
//
//   ./sfq_unit_demo
#include <cstdio>

#include "common/cli.hpp"
#include "sfq/budget.hpp"
#include "sfq/power.hpp"
#include "sfq/pulse_sim.hpp"
#include "sfq/unit_netlist.hpp"

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  if (qec::handle_help(args, "sfq_unit_demo",
                       "build the Unit's race-logic priority arbiter from "
                       "Table I cells and race spikes through it, then "
                       "report the Unit's physical budget",
                       "")) {
    return 0;
  }
  std::printf("-- race-logic prioritization (Section IV-B) --\n");
  static const char* kPortNames[4] = {"West", "East", "North", "South"};

  // Case 1: simultaneous spikes on all four ports; the deliberate delay
  // skew makes West win.
  {
    qec::PulseSimulator sim;
    const auto arb = qec::build_priority_arbiter(sim);
    for (int i = 0; i < 4; ++i) sim.inject(arb.port[i], 0.0);
    sim.run();
    std::printf("4 simultaneous spikes -> %d winner pulse (West wins by "
                "priority), %llu pulse events simulated\n",
                sim.pulse_count(arb.winner),
                static_cast<unsigned long long>(sim.events_processed()));
  }
  // Case 2: a genuinely earlier spike on the lowest-priority port wins.
  {
    qec::PulseSimulator sim;
    const auto arb = qec::build_priority_arbiter(sim);
    sim.inject(arb.port[3], 0.0);
    sim.inject(arb.port[0], 200.0);
    sim.run();
    std::printf("%s spike 200 ps earlier -> %d winner pulse "
                "(race logic = arrival time first, priority on ties)\n",
                kPortNames[3], sim.pulse_count(arb.winner));
  }

  std::printf("\n-- Unit budget (Section IV-C / Table II) --\n");
  const auto budget = qec::unit_budget();
  std::printf("one Unit: %d JJs, %.3f mm^2, %.0f mA bias, %.0f ps critical "
              "path (max clock %.2f GHz)\n",
              budget.jjs, budget.area_um2 * 1e-6, budget.bias_ma,
              budget.critical_path_ps, qec::unit_max_frequency_hz() / 1e9);
  std::printf("module JJ breakdown:\n");
  for (const auto& m : qec::unit_modules()) {
    std::printf("  %-22s %4d JJs (%5.1f mA)\n", std::string(m.name).c_str(),
                m.published_jjs, m.published_bias_ma);
  }

  std::printf("\n-- power (Section V-C) --\n");
  std::printf("RSFQ (static-dominated): %.0f uW/Unit -> infeasible in a "
              "1 W 4-K budget at scale\n",
              qec::qecool_unit_rsfq_power_w() * 1e6);
  for (double ghz : {0.5, 1.0, 2.0}) {
    const auto dep = qec::qecool_deployment(9, ghz * 1e9);
    std::printf("ERSFQ @ %.1f GHz: %.2f uW/Unit, %lld protectable d=9 "
                "logical qubits in 1 W\n",
                ghz, dep.power_per_unit_w * 1e6,
                dep.protectable_logical_qubits(qec::kFourKelvinBudgetW));
  }
  return 0;
}
