// Streaming decode service walk-through: record (or load) a multi-lane
// syndrome trace, stream every lane through its own on-line QECOOL engine
// round-by-round, and print one telemetry row per lane. Demonstrates the
// record/replay split: run once with --trace-out, then again with
// --trace-in and any --threads value — the per-lane outcomes match.
//
//   ./stream_service [--lanes=8] [--d=5] [--p=0.01] [--mhz=1000]
//                    [--rounds=32] [--engine=qecool] [--engines=0]
//                    [--policy=dedicated] [--seed=7] [--threads=1]
//                    [--trace-out=s.qtrc] [--trace-in=s.qtrc]
//                    [--csv=lanes.csv]
//
// --engines=K shrinks the decoder pool below one engine per lane and
// --policy picks the lane scheduler (dedicated | round_robin |
// least_loaded | fq); the per-lane "served/starved" column then shows how
// the pool's cycles were spread across lanes.
#include <cstdio>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "qecool/online_runner.hpp"
#include "stream/service.hpp"

namespace {

constexpr const char* kSummary =
    "walk through the streaming decode service: record or replay a "
    "multi-lane syndrome trace and print one telemetry row per lane";

constexpr const char* kOptions =
    "  --lanes=8             concurrent logical-qubit streams\n"
    "  --d=5                 code distance\n"
    "  --p=0.01              physical error rate (p_data = p_meas)\n"
    "  --rounds=32           noisy rounds per lane\n"
    "  --mhz=1000            decoder clock in MHz\n"
    "  --engine=qecool       lane engine spec\n"
    "  --engines=0           pool size K (0 = one engine per lane)\n"
    "  --policy=dedicated    scheduling policy spec: dedicated |\n"
    "                        round_robin[:offset=N] | least_loaded |\n"
    "                        fq[:quantum=CYCLES]\n"
    "  --admission=overflow  admission control spec: overflow |\n"
    "                        pause[:high=H,low=L] |\n"
    "                        codel[:target=T,interval=I] (rounds)\n"
    "  --budget-w=0          4-K power budget in watts; > 0 caps K\n"
    "  --seed=7              trace RNG seed\n"
    "  --threads=1           worker threads (0 = all cores)\n"
    "  --trace-out=FILE      save the recorded trace\n"
    "  --trace-in=FILE       replay a previously recorded trace\n"
    "  --csv=FILE            per-lane telemetry CSV\n";

}  // namespace

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  if (qec::handle_help(args, "stream_service", kSummary, kOptions)) return 0;
  qec::StreamConfig config;
  config.lanes = static_cast<int>(args.get_int_or("lanes", 8));
  config.distance = static_cast<int>(args.get_int_or("d", 5));
  config.p = args.get_double_or("p", 0.01);
  config.rounds = static_cast<int>(args.get_int_or("rounds", 32));
  config.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 7));
  config.engine = args.get_or("engine", "qecool");
  config.cycles_per_round =
      qec::cycles_per_microsecond(args.get_double_or("mhz", 1000.0) * 1e6);
  config.engines = static_cast<int>(args.get_int_or("engines", 0));
  config.policy = args.get_or("policy", "dedicated");
  config.admission = args.get_or("admission", "overflow");
  config.budget_w = args.get_double_or("budget-w", 0.0);
  config.threads = qec::threads_override(args, 1);

  try {
    qec::SyndromeTrace trace;
    const std::string trace_in = args.get_or("trace-in", "");
    if (!trace_in.empty()) {
      trace = qec::SyndromeTrace::load(trace_in);
      std::printf("replaying trace %s\n", trace_in.c_str());
    } else {
      trace = qec::record_trace(config);
    }
    std::printf("streaming %d lanes, d=%u, %d rounds each, p=%g, budget "
                "%.2f cycles/round, engine '%s'\n",
                trace.lanes(), trace.header().distance, trace.rounds(),
                trace.header().p_data, config.cycles_per_round,
                config.engine.c_str());

    const auto outcome = qec::run_stream(trace, config);
    std::printf("decoder pool: %d engines, policy '%s'\n\n",
                outcome.telemetry.engines, config.policy.c_str());

    qec::TextTable table({"lane", "outcome", "drain rounds", "popped",
                          "served/starved/paused", "cycles p50/p99",
                          "depth mean/max"});
    for (const auto& lane : outcome.telemetry.lanes) {
      const char* verdict = lane.overflow          ? "OVERFLOW"
                            : !lane.drained        ? "undrained"
                            : lane.logical_failure ? "logical error"
                                                   : "ok";
      table.add_row({std::to_string(lane.lane), verdict,
                     std::to_string(lane.drain_rounds),
                     std::to_string(lane.popped_layers),
                     std::to_string(lane.served_rounds) + " / " +
                         std::to_string(lane.starved_rounds) + " / " +
                         std::to_string(lane.paused_rounds),
                     std::to_string(lane.cycle_percentile(50)) + " / " +
                         std::to_string(lane.cycle_percentile(99)),
                     qec::TextTable::fmt(lane.mean_depth(), 2) + " / " +
                         std::to_string(lane.max_depth())});
    }
    table.print();
    std::printf("\n%d/%d lanes drained, %d overflowed, %d logical failures, "
                "fairness %.4f\n",
                outcome.drained_lanes, outcome.lanes, outcome.overflow_lanes,
                outcome.logical_failures,
                outcome.telemetry.fairness_index());

    const std::string trace_out = args.get_or("trace-out", "");
    if (!trace_out.empty()) {
      trace.save(trace_out);
      std::printf("trace saved to %s (replay with --trace-in=%s)\n",
                  trace_out.c_str(), trace_out.c_str());
    }
    const std::string csv = args.get_or("csv", "");
    if (!csv.empty()) {
      if (!outcome.telemetry.write_csv(csv)) {
        std::fprintf(stderr, "cannot write %s\n", csv.c_str());
        return 1;
      }
      std::printf("telemetry saved to %s\n", csv.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "stream_service: %s\n", e.what());
    return 1;
  }
}
