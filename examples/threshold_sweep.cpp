// Threshold sweep: measure the accuracy threshold of any decoder in this
// library over a physical-error-rate sweep and print the p / p_L curves —
// the experiment behind Fig 4a, Fig 7 and Table IV, exposed as a tool.
//
// The decoder is any registry spec, so engine knobs sweep too:
//   ./threshold_sweep --decoder=qecool|mwpm|uf|aqec|windowed-mwpm|ml
//   ./threshold_sweep "--decoder=qecool:reg_depth=4" [--mode=3d|2d]
//                     [--dmin=5 --dmax=9] [--trials=500] [--threads=N]
//                     [--pmin=0.004 --pmax=0.04 --points=7] [--csv=out.csv]
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "decoder/registry.hpp"
#include "sim/sweep.hpp"

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  if (qec::handle_help(
          args, "threshold_sweep",
          "sweep any registered decoder over the (p, d) threshold grid and "
          "print / CSV the logical error rates",
          "  --decoder=qecool      decoder spec (see decoder registry)\n"
          "  --mode=3d             noise mode: 3d (phenomenological) or 2d\n"
          "  --dmin=5 --dmax=9     code-distance range\n"
          "  --pmin/--pmax         physical error-rate range (mode-dependent "
          "defaults)\n"
          "  --points=7            grid points between pmin and pmax\n"
          "  --trials=500          Monte Carlo trials per point (env "
          "QECOOL_TRIALS)\n"
          "  --threads=1           worker threads (0 = all cores; env "
          "QECOOL_THREADS)\n"
          "  --csv=FILE            write the sweep CSV to FILE\n")) {
    return 0;
  }
  const std::string spec = args.get_or("decoder", "qecool");
  const bool three_d = args.get_or("mode", "3d") == "3d";
  const int dmin = static_cast<int>(args.get_int_or("dmin", 5));
  const int dmax = static_cast<int>(args.get_int_or("dmax", 9));
  const int trials = static_cast<int>(qec::trials_override(args, 500));
  const double pmin = args.get_double_or("pmin", three_d ? 0.004 : 0.03);
  const double pmax = args.get_double_or("pmax", three_d ? 0.04 : 0.13);
  const int points = static_cast<int>(args.get_int_or("points", 7));

  std::printf("threshold sweep: decoder=%s mode=%s d=%d..%d trials=%d\n",
              spec.c_str(), three_d ? "3d" : "2d", dmin, dmax, trials);
  std::printf("registered decoders:");
  for (const auto& name : qec::registered_decoders()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n");

  qec::SweepGrid grid;
  grid.variants.push_back(qec::decoder_variant(spec, spec));
  for (int d = dmin; d <= dmax; d += 2) grid.distances.push_back(d);
  grid.ps = qec::log_spaced(pmin, pmax, points);
  grid.code_capacity = !three_d;
  grid.trials = trials;
  grid.threads = qec::threads_override(args, 1);

  qec::SweepResult result;
  try {
    result = qec::run_sweep(grid, args.get_or("csv", ""));
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }

  std::vector<std::string> header = {"d"};
  for (double p : grid.ps) header.push_back("p=" + qec::TextTable::fmt(p, 4));
  qec::TextTable table(header);
  for (int d : grid.distances) {
    std::vector<std::string> row = {std::to_string(d)};
    for (double p : grid.ps) {
      row.push_back(qec::TextTable::sci(
          result.find(spec, d, p)->result.logical_error_rate, 2));
    }
    table.add_row(row);
  }
  table.print();

  const auto th = result.threshold(spec);
  if (th) {
    std::printf("\nestimated threshold p_th = %.4f (%.2f%%)\n", *th,
                *th * 100);
  } else {
    std::printf("\nno crossing found in the sampled range — widen the sweep "
                "or add trials\n");
  }
  return 0;
}
