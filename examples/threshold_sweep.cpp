// Threshold sweep: measure the accuracy threshold of any decoder in this
// library over a physical-error-rate sweep and print the p / p_L curves —
// the experiment behind Fig 4a, Fig 7 and Table IV, exposed as a tool.
//
//   ./threshold_sweep --decoder=qecool|mwpm|uf|aqec [--mode=3d|2d]
//                     [--dmin=5 --dmax=9] [--trials=500]
//                     [--pmin=0.004 --pmax=0.04 --points=7]
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "aqec/aqec_decoder.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "mwpm/mwpm_decoder.hpp"
#include "qecool/qecool_decoder.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/threshold.hpp"
#include "unionfind/uf_decoder.hpp"

namespace {

std::unique_ptr<qec::Decoder> make_decoder(const std::string& name) {
  if (name == "mwpm") return std::make_unique<qec::MwpmDecoder>();
  if (name == "uf") return std::make_unique<qec::UnionFindDecoder>();
  if (name == "aqec") return std::make_unique<qec::AqecDecoder>();
  return std::make_unique<qec::BatchQecoolDecoder>();
}

}  // namespace

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  const std::string name = args.get_or("decoder", "qecool");
  const bool three_d = args.get_or("mode", "3d") == "3d";
  const int dmin = static_cast<int>(args.get_int_or("dmin", 5));
  const int dmax = static_cast<int>(args.get_int_or("dmax", 9));
  const int trials = static_cast<int>(qec::trials_override(args, 500));
  const double pmin = args.get_double_or("pmin", three_d ? 0.004 : 0.03);
  const double pmax = args.get_double_or("pmax", three_d ? 0.04 : 0.13);
  const int points = static_cast<int>(args.get_int_or("points", 7));

  std::printf("threshold sweep: decoder=%s mode=%s d=%d..%d trials=%d\n\n",
              name.c_str(), three_d ? "3d" : "2d", dmin, dmax, trials);

  std::vector<double> ps;
  for (int i = 0; i < points; ++i) {
    ps.push_back(pmin * std::pow(pmax / pmin,
                                 static_cast<double>(i) / (points - 1)));
  }

  std::vector<std::string> header = {"d"};
  for (double p : ps) header.push_back("p=" + qec::TextTable::fmt(p, 4));
  qec::TextTable table(header);

  std::vector<qec::DistanceCurve> curves;
  for (int d = dmin; d <= dmax; d += 2) {
    qec::DistanceCurve curve{d, {}};
    std::vector<std::string> row = {std::to_string(d)};
    for (double p : ps) {
      auto decoder = make_decoder(name);
      const auto cfg = three_d ? qec::phenomenological_config(d, p, trials)
                               : qec::code_capacity_config(d, p, trials);
      const auto r = qec::run_memory_experiment(*decoder, cfg);
      curve.points.push_back({p, r.logical_error_rate});
      row.push_back(qec::TextTable::sci(r.logical_error_rate, 2));
    }
    curves.push_back(curve);
    table.add_row(row);
  }
  table.print();

  const auto th = qec::estimate_threshold(curves);
  if (th) {
    std::printf("\nestimated threshold p_th = %.4f (%.2f%%)\n", *th,
                *th * 100);
  } else {
    std::printf("\nno crossing found in the sampled range — widen the sweep "
                "or add trials\n");
  }
  return 0;
}
