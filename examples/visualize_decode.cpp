// Visual decode walk-through: sample a code-capacity error, decode it with
// QECOOL and with MWPM, and render both on the lattice — the fastest way to
// build intuition for how the spike-based greedy matching differs from
// optimal matching (and where it loses: see DESIGN.md's discussion of
// greedy failure modes).
//
//   ./visualize_decode [--d=5] [--p=0.06] [--seed=3] [--trials=1]
#include <cstdio>

#include "common/cli.hpp"
#include "decoder/decoder.hpp"
#include "mwpm/mwpm_decoder.hpp"
#include "noise/phenomenological.hpp"
#include "qecool/qecool_decoder.hpp"
#include "surface_code/ascii_render.hpp"

int main(int argc, char** argv) {
  const qec::CliArgs args(argc, argv);
  if (qec::handle_help(
          args, "visualize_decode",
          "ASCII-render one decode: the sampled errors, the syndrome, and "
          "the decoder's correction on the planar lattice",
          "  --d=5                 code distance\n"
          "  --p=0.06              physical error rate\n"
          "  --seed=3              RNG seed\n"
          "  --trials=1            decodes to render (env QECOOL_TRIALS)\n")) {
    return 0;
  }
  const int d = static_cast<int>(args.get_int_or("d", 5));
  const double p = args.get_double_or("p", 0.06);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int_or("seed", 3));
  const int trials = static_cast<int>(qec::trials_override(args, 1));

  const qec::PlanarLattice lattice(d);
  qec::Xoshiro256ss rng(seed);
  qec::BatchQecoolDecoder qecool;
  qec::MwpmDecoder mwpm;

  for (int trial = 0; trial < trials; ++trial) {
    const auto history =
        qec::sample_history(lattice, {p, 0.0, 1}, rng);
    std::printf("=== trial %d: d=%d, p=%.3f, error weight %d ===\n\n", trial,
                d, p, qec::weight(history.final_error));
    const auto rq = qecool.decode(lattice, history);
    const auto rm = mwpm.decode(lattice, history);
    std::printf("--- QECOOL (spike-based greedy) ---\n%s\n",
                qec::render_decode(lattice, history.final_error, rq.correction)
                    .c_str());
    std::printf("--- MWPM (exact matching) ---\n%s\n",
                qec::render_decode(lattice, history.final_error, rm.correction)
                    .c_str());
  }
  return 0;
}
