#include "aqec/aqec_decoder.hpp"

#include <algorithm>
#include <limits>

namespace qec {
namespace {

// Deterministic candidate ordering: distance first, then defect identity.
struct Choice {
  int dist = std::numeric_limits<int>::max();
  int index = -1;       // partner defect index, -1 = none
  bool boundary = false;

  bool better_than(const Choice& other) const {
    if (dist != other.dist) return dist < other.dist;
    if (boundary != other.boundary) return !boundary;  // prefer partners
    return index < other.index;
  }
};

}  // namespace

std::vector<MatchedPair> AqecDecoder::agreement_round(
    const PlanarLattice& lattice, std::vector<Defect>& defects, int radius) {
  const int n = static_cast<int>(defects.size());
  std::vector<Choice> choice(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Choice best;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      const int dist = defect_distance(defects[static_cast<std::size_t>(i)],
                                       defects[static_cast<std::size_t>(j)]);
      if (dist > radius) continue;
      const Choice cand{dist, j, false};
      if (cand.better_than(best)) best = cand;
    }
    const int bdist =
        lattice.boundary_distance(defects[static_cast<std::size_t>(i)].col);
    if (bdist <= radius) {
      const Choice cand{bdist, -1, true};
      if (cand.better_than(best)) best = cand;
    }
    choice[static_cast<std::size_t>(i)] = best;
  }

  std::vector<MatchedPair> pairs;
  std::vector<std::uint8_t> matched(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    if (matched[static_cast<std::size_t>(i)]) continue;
    const Choice& c = choice[static_cast<std::size_t>(i)];
    if (c.boundary) {
      // Boundary always "agrees".
      pairs.push_back({defects[static_cast<std::size_t>(i)], {}, true});
      matched[static_cast<std::size_t>(i)] = 1;
    } else if (c.index >= 0 && !matched[static_cast<std::size_t>(c.index)] &&
               choice[static_cast<std::size_t>(c.index)].index == i &&
               !choice[static_cast<std::size_t>(c.index)].boundary) {
      // Mutual agreement.
      pairs.push_back({defects[static_cast<std::size_t>(i)],
                       defects[static_cast<std::size_t>(c.index)], false});
      matched[static_cast<std::size_t>(i)] = 1;
      matched[static_cast<std::size_t>(c.index)] = 1;
    }
  }

  std::vector<Defect> remaining;
  remaining.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (!matched[static_cast<std::size_t>(i)]) {
      remaining.push_back(defects[static_cast<std::size_t>(i)]);
    }
  }
  defects = std::move(remaining);
  return pairs;
}

DecodeResult AqecDecoder::decode(const PlanarLattice& lattice,
                                 const SyndromeHistory& history) {
  std::vector<Defect> defects = collect_defects(lattice, history.difference);
  std::vector<MatchedPair> all_pairs;
  const int max_radius = 2 * lattice.distance() + history.total_rounds();
  std::uint64_t work = 0;
  for (int radius = 1; radius <= max_radius && !defects.empty(); ++radius) {
    // Repeat at the same radius until the agreement process saturates: a
    // match can unlock further mutual agreements among the rest.
    while (!defects.empty()) {
      const std::size_t before = defects.size();
      auto pairs = agreement_round(lattice, defects, radius);
      work += before * before;
      all_pairs.insert(all_pairs.end(), pairs.begin(), pairs.end());
      if (defects.size() == before) break;
    }
  }
  DecodeResult result;
  result.correction = pairs_to_correction(lattice, all_pairs);
  result.work = work;
  return result;
}

}  // namespace qec
