// AQEC-style decoder: a re-implementation of the agreement-based parallel
// greedy matcher of Holmes et al., "NISQ+: Boosting quantum computing power
// by approximating quantum error correction" (ISCA 2020) — reference [11]
// and the comparison row of Tables IV/V.
//
// Mechanism (as described in the paper's Section II-C): all flipped ancilla
// locations search for a partner in parallel within an escalating radius;
// a pair is matched when both sides AGREE (each is the other's best
// candidate). Defects nearer to a rough boundary than to any partner match
// the boundary. The original targets 2-D decoding only ("Directly
// applicable to 3-D: No" in Table V), so this decoder ignores everything
// but the first difference layer unless the history is effectively 2-D;
// for 3-D histories use project_to_2d() = false and expect degraded
// accuracy (the paper never evaluates AQEC on 3-D).
#pragma once

#include "decoder/decoder.hpp"
#include "mwpm/matching_graph.hpp"

namespace qec {

class AqecDecoder final : public Decoder {
 public:
  std::string name() const override { return "AQEC"; }

  DecodeResult decode(const PlanarLattice& lattice,
                      const SyndromeHistory& history) override;

  /// Exposed for tests: one agreement round at a fixed radius over an
  /// explicit defect list; returns matched pairs and removes them from
  /// `defects`.
  static std::vector<MatchedPair> agreement_round(
      const PlanarLattice& lattice, std::vector<Defect>& defects, int radius);
};

}  // namespace qec
