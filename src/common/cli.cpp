#include "common/cli.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace qec {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.size() < 3 || arg.substr(0, 2) != "--") {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      flags_.emplace_back(std::string(arg.substr(0, eq)),
                          std::string(arg.substr(eq + 1)));
    } else if (i + 1 < argc &&
               (std::isdigit(static_cast<unsigned char>(argv[i + 1][0])) ||
                argv[i + 1][0] == '.')) {
      // Space-separated values are accepted only when they look numeric;
      // anything else would be ambiguous with boolean flags followed by a
      // positional argument. Use --name=value for string values.
      flags_.emplace_back(std::string(arg), std::string(argv[i + 1]));
      ++i;
    } else {
      flags_.emplace_back(std::string(arg), "");
    }
  }
}

std::optional<std::string> CliArgs::get(std::string_view name) const {
  for (const auto& [key, value] : flags_) {
    if (key == name) return value;
  }
  return std::nullopt;
}

std::optional<std::int64_t> CliArgs::get_int(std::string_view name) const {
  const auto raw = get(name);
  if (!raw) return std::nullopt;
  char* end = nullptr;
  const long long v = std::strtoll(raw->c_str(), &end, 10);
  if (end == raw->c_str() || *end != '\0') return std::nullopt;
  return v;
}

std::optional<double> CliArgs::get_double(std::string_view name) const {
  const auto raw = get(name);
  if (!raw) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(raw->c_str(), &end);
  if (end == raw->c_str() || *end != '\0') return std::nullopt;
  return v;
}

bool CliArgs::get_flag(std::string_view name) const {
  return get(name).has_value();
}

std::int64_t CliArgs::get_int_or(std::string_view name,
                                 std::int64_t fallback) const {
  return get_int(name).value_or(fallback);
}

double CliArgs::get_double_or(std::string_view name, double fallback) const {
  return get_double(name).value_or(fallback);
}

std::string CliArgs::get_or(std::string_view name,
                            std::string_view fallback) const {
  const auto v = get(name);
  return v ? *v : std::string(fallback);
}

void print_usage(const char* program, const char* summary,
                 const char* options) {
  std::printf("usage: %s [options]\n  %s\n", program, summary);
  std::printf("\noptions:\n%s", options);
  std::printf("  --help                show this message and exit\n");
}

bool wants_help(const CliArgs& args) {
  if (args.get_flag("help")) return true;
  const auto& positional = args.positional();
  return !positional.empty() &&
         (positional.front() == "-h" || positional.front() == "help");
}

bool handle_help(const CliArgs& args, const char* program,
                 const char* summary, const char* options) {
  if (!wants_help(args)) return false;
  print_usage(program, summary, options);
  return true;
}

std::optional<std::string> optional_value_flag(const CliArgs& args,
                                               std::string_view name,
                                               std::string_view bare_value) {
  const auto raw = args.get(name);
  if (!raw) return std::nullopt;
  if (raw->empty()) return std::string(bare_value);
  return raw;
}

std::int64_t trials_override(const CliArgs& args, std::int64_t fallback) {
  if (const auto v = args.get_int("trials")) return *v;
  if (const char* env = std::getenv("QECOOL_TRIALS")) {
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return v;
  }
  return fallback;
}

int threads_override(const CliArgs& args, int fallback) {
  if (const auto v = args.get_int("threads")) {
    return static_cast<int>(*v);
  }
  if (const char* env = std::getenv("QECOOL_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 0) return static_cast<int>(v);
  }
  return fallback;
}

}  // namespace qec
