// Minimal command-line flag parsing for examples and bench binaries.
//
// Supports "--name=value" and "--name value" forms plus boolean "--name".
// Unrecognised arguments are kept for the caller (so google-benchmark flags
// pass through untouched).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace qec {

class CliArgs {
 public:
  /// Parses argv (argv[0] skipped). Never throws; malformed numeric values
  /// surface when queried via the typed getters returning std::nullopt.
  CliArgs(int argc, const char* const* argv);

  std::optional<std::string> get(std::string_view name) const;
  std::optional<std::int64_t> get_int(std::string_view name) const;
  std::optional<double> get_double(std::string_view name) const;
  bool get_flag(std::string_view name) const;

  std::int64_t get_int_or(std::string_view name, std::int64_t fallback) const;
  double get_double_or(std::string_view name, double fallback) const;
  std::string get_or(std::string_view name, std::string_view fallback) const;

  /// Arguments that did not look like --flags, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::vector<std::pair<std::string, std::string>> flags_;
  std::vector<std::string> positional_;
};

/// Prints the uniform usage banner every bench/example binary shares:
///
///   usage: <program> [options]
///     <summary>
///
///   options:
///   <options>
///
/// `options` lists one "  --flag=default   description" line per flag
/// (pass "" for binaries without flags beyond --help). Keeping the format
/// in one place is what keeps `--help` output consistent across all of
/// them.
void print_usage(const char* program, const char* summary,
                 const char* options);

/// True when the user asked for help (--help, or -h / help as the first
/// positional argument). Binaries call print_usage and exit 0 when set.
bool wants_help(const CliArgs& args);

/// wants_help + print_usage in one call — the line every main() starts
/// with: `if (qec::handle_help(args, "name", kSummary, kOptions)) return 0;`
bool handle_help(const CliArgs& args, const char* program,
                 const char* summary, const char* options);

/// Reads a flag that may appear bare or with a value — the
/// "--dump-obs-on-exit[=DIR]" shape. Returns std::nullopt when the flag is
/// absent, its value when given as --name=value, and `bare_value` when the
/// flag appears with no value (the built-in default).
std::optional<std::string> optional_value_flag(const CliArgs& args,
                                               std::string_view name,
                                               std::string_view bare_value);

/// Reads trial-count override from --trials or env QECOOL_TRIALS, falling
/// back to `fallback`. Shared by every bench binary.
std::int64_t trials_override(const CliArgs& args, std::int64_t fallback);

/// Reads worker-thread override from --threads or env QECOOL_THREADS,
/// falling back to `fallback`. 0 means "all hardware threads"; results are
/// thread-count independent (the sweep driver fixes the shard schedule).
int threads_override(const CliArgs& args, int fallback = 1);

}  // namespace qec
