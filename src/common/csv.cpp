#include "common/csv.hpp"

#include <cstdio>

namespace qec {

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> header)
    : out_(path), columns_(header.size()) {
  if (!out_) return;
  std::vector<std::string> row(header.begin(), header.end());
  add_row(row);
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string escaped = "\"";
  for (char ch : field) {
    if (ch == '"') escaped += '"';
    escaped += ch;
  }
  escaped += '"';
  return escaped;
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  if (!out_) return;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(row[i]);
  }
  // Pad short rows so every line has the header's column count.
  for (std::size_t i = row.size(); i < columns_; ++i) out_ << ',';
  out_ << '\n';
}

void CsvWriter::add_row(const std::vector<double>& row) {
  if (!out_) return;
  std::vector<std::string> text;
  text.reserve(row.size());
  char buf[64];
  for (double v : row) {
    std::snprintf(buf, sizeof(buf), "%.8g", v);
    text.emplace_back(buf);
  }
  add_row(text);
}

}  // namespace qec
