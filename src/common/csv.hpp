// Minimal CSV writer so bench binaries can emit plotting-ready data
// alongside their human-readable tables (use --csv=path in the figure
// benches).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace qec {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. ok() reports
  /// whether the stream is usable; writes to a failed stream are no-ops.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  bool ok() const { return static_cast<bool>(out_); }

  void add_row(const std::vector<std::string>& row);

  /// Convenience for numeric rows.
  void add_row(const std::vector<double>& row);

  /// Pushes buffered rows to disk; long-running writers call this after
  /// each row so an interrupted run keeps everything finished so far.
  void flush() { out_.flush(); }

 private:
  static std::string escape(const std::string& field);

  std::ofstream out_;
  std::size_t columns_ = 0;
};

}  // namespace qec
