#include "common/rng.hpp"

namespace qec {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Xoshiro256ss::Xoshiro256ss(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Xoshiro256ss::result_type Xoshiro256ss::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256ss::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        for (int i = 0; i < 4; ++i) acc[i] ^= s_[i];
      }
      (*this)();
    }
  }
  s_ = acc;
}

double Xoshiro256ss::uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Xoshiro256ss::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint64_t Xoshiro256ss::below(std::uint64_t n) {
  // Lemire's nearly-divisionless bounded generation; the tiny modulo bias
  // rejection loop keeps results exactly uniform.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace qec
