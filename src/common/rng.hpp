// Deterministic, fast pseudo-random number generation for Monte Carlo runs.
//
// We use xoshiro256** (Blackman & Vigna) rather than std::mt19937_64: it is
// ~2x faster, has a tiny state, and supports cheap stream splitting via
// jump(), which keeps multi-configuration sweeps reproducible regardless of
// evaluation order.
#pragma once

#include <array>
#include <cstdint>

namespace qec {

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words from a single seed via SplitMix64,
  /// which guarantees a non-zero, well-mixed state for any seed value.
  explicit Xoshiro256ss(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()();

  /// Advances the stream by 2^128 steps; use to derive independent
  /// sub-streams for parallel or per-configuration use.
  void jump();

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n);

 private:
  std::array<std::uint64_t, 4> s_;
};

/// SplitMix64 step; exposed for seeding/derivation in tests.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace qec
