#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace qec {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void MatchStats::record(int dt) {
  if (static_cast<std::size_t>(dt) >= vertical_hist.size()) {
    vertical_hist.resize(static_cast<std::size_t>(dt) + 1, 0);
  }
  ++vertical_hist[static_cast<std::size_t>(dt)];
  if (dt >= 3) ++vertical_ge3;
}

void MatchStats::merge(const MatchStats& other) {
  pair_matches += other.pair_matches;
  self_matches += other.self_matches;
  boundary_matches += other.boundary_matches;
  vertical_ge3 += other.vertical_ge3;
  if (vertical_hist.size() < other.vertical_hist.size()) {
    vertical_hist.resize(other.vertical_hist.size(), 0);
  }
  for (std::size_t i = 0; i < other.vertical_hist.size(); ++i) {
    vertical_hist[i] += other.vertical_hist[i];
  }
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

BinomialInterval wilson_interval(std::uint64_t k, std::uint64_t n, double z) {
  if (n == 0) return {0.0, 1.0};
  const double nn = static_cast<double>(n);
  const double phat = static_cast<double>(k) / nn;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = phat + z2 / (2.0 * nn);
  const double half =
      z * std::sqrt(phat * (1.0 - phat) / nn + z2 / (4.0 * nn * nn));
  BinomialInterval out;
  out.lower = std::max(0.0, (center - half) / denom);
  out.upper = std::min(1.0, (center + half) / denom);
  return out;
}

std::uint64_t percentile_nearest_rank(std::vector<std::uint64_t> samples,
                                      double q) {
  if (samples.empty()) return 0;
  q = std::clamp(q, 0.0, 100.0);
  // Nearest rank = ceil(q/100 * n), clamped to [1, n]; rank r is the
  // (r-1)-th order statistic.
  const auto n = samples.size();
  auto rank = static_cast<std::size_t>(
      std::ceil(q / 100.0 * static_cast<double>(n)));
  rank = std::clamp<std::size_t>(rank, 1, n);
  auto nth = samples.begin() + static_cast<std::ptrdiff_t>(rank - 1);
  std::nth_element(samples.begin(), nth, samples.end());
  return *nth;
}

}  // namespace qec
