// Streaming statistics and binomial confidence intervals used throughout the
// Monte Carlo harness and the cycle-count tables.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace qec {

/// Single-pass mean / variance / extrema accumulator (Welford's algorithm;
/// numerically stable for long runs).
class RunningStats {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (divides by n). Table III reports sigma over all
  /// layers, i.e. a population statistic.
  double variance() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Merges another accumulator (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Aggregate matching statistics (Fig 4b instrumentation). Lives here
/// rather than with the QECOOL engine so the generic Decoder interface and
/// the Monte Carlo merge path can use it without depending on qecool/.
struct MatchStats {
  std::uint64_t pair_matches = 0;      ///< Unit-to-other-Unit matches.
  std::uint64_t self_matches = 0;      ///< Pure time-like (same Unit).
  std::uint64_t boundary_matches = 0;  ///< Unit-to-Boundary matches.
  std::uint64_t vertical_ge3 = 0;      ///< Matches with |t - b| >= 3.
  std::vector<std::uint64_t> vertical_hist;  ///< [dt] -> count.

  std::uint64_t total() const {
    return pair_matches + self_matches + boundary_matches;
  }
  void record(int dt);
  /// Merges another accumulator (parallel reduction).
  void merge(const MatchStats& other);
};

/// Two-sided binomial confidence interval.
struct BinomialInterval {
  double lower = 0.0;
  double upper = 1.0;
};

/// Wilson score interval for k successes out of n trials at ~95% confidence
/// (z = 1.96). Well-behaved at k = 0 and k = n, unlike the normal
/// approximation — important for low logical-error-rate points.
BinomialInterval wilson_interval(std::uint64_t k, std::uint64_t n,
                                 double z = 1.96);

/// Nearest-rank percentile: the smallest sample such that at least q% of
/// the samples are <= it (q in [0, 100]; q = 50 is the median). Returns 0
/// for an empty sample set. Exact — the streaming-telemetry p50/p95/p99
/// are real observed latencies, never interpolated values.
std::uint64_t percentile_nearest_rank(std::vector<std::uint64_t> samples,
                                      double q);

}  // namespace qec
