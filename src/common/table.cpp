#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace qec {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << std::string(width[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) out << "  ";
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TextTable::print() const { std::fputs(to_string().c_str(), stdout); }

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

}  // namespace qec
