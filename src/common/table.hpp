// Plain-text table printer so bench binaries emit the paper's rows in a
// uniform, diff-friendly format.
#pragma once

#include <string>
#include <vector>

namespace qec {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders with column alignment and a header underline.
  std::string to_string() const;

  /// Convenience: renders and writes to stdout.
  void print() const;

  static std::string fmt(double v, int precision = 4);
  static std::string sci(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qec
