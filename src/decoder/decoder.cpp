#include "decoder/decoder.hpp"

namespace qec {

bool logical_failure(const PlanarLattice& lattice,
                     const SyndromeHistory& history,
                     const DecodeResult& result) {
  BitVec residual = xor_of(history.final_error, result.correction);
  return lattice.logical_flip(residual);
}

bool residual_syndrome_free(const PlanarLattice& lattice,
                            const SyndromeHistory& history,
                            const DecodeResult& result) {
  BitVec residual = xor_of(history.final_error, result.correction);
  return is_zero(lattice.syndrome(residual));
}

}  // namespace qec
