// Common decoder interface: every decoder in this repo (QECOOL, MWPM,
// Union-Find, AQEC) consumes a SyndromeHistory and produces a data-qubit
// correction for one error sector.
#pragma once

#include <memory>
#include <string>

#include "common/stats.hpp"
#include "noise/phenomenological.hpp"
#include "surface_code/pauli_frame.hpp"
#include "surface_code/planar_lattice.hpp"

namespace qec {

struct DecodeResult {
  /// Data-qubit flips to apply; same size as PlanarLattice::num_data().
  BitVec correction;
  /// Decoder-reported work metric. For QECOOL this is hardware cycles, for
  /// the software decoders a proxy (see each decoder's header).
  std::uint64_t work = 0;
};

class Decoder {
 public:
  virtual ~Decoder() = default;

  virtual std::string name() const = 0;

  /// Decodes a full history (batch operation). The lattice must outlive the
  /// call. Implementations must be deterministic given the history.
  virtual DecodeResult decode(const PlanarLattice& lattice,
                              const SyndromeHistory& history) = 0;

  /// Matching statistics of the most recent decode, for decoders that
  /// instrument their matches (Fig 4b); nullptr for decoders that don't.
  /// The Monte Carlo harness merges these into ExperimentResult::matches.
  virtual const MatchStats* match_stats() const { return nullptr; }
};

/// True iff applying `result.correction` to `history.final_error` leaves a
/// residual that flips the logical observable (i.e. the decode failed).
bool logical_failure(const PlanarLattice& lattice,
                     const SyndromeHistory& history,
                     const DecodeResult& result);

/// True iff the residual after correction is syndrome-free — guaranteed for
/// any valid matching decode when the final round is perfect; used as an
/// integration-test invariant.
bool residual_syndrome_free(const PlanarLattice& lattice,
                            const SyndromeHistory& history,
                            const DecodeResult& result);

}  // namespace qec
