#include "decoder/ml_decoder.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace qec {

MaximumLikelihoodDecoder::MaximumLikelihoodDecoder(double p) : p_(p) {
  if (p <= 0.0 || p >= 1.0) {
    throw std::invalid_argument("ML decoder needs 0 < p < 1");
  }
}

DecodeResult MaximumLikelihoodDecoder::decode(const PlanarLattice& lattice,
                                              const SyndromeHistory& history) {
  const int n = lattice.num_data();
  if (n > kMaxQubits) {
    throw std::invalid_argument("lattice too large for exhaustive ML");
  }
  for (std::size_t t = 1; t < history.difference.size(); ++t) {
    if (!is_zero(history.difference[t])) {
      throw std::invalid_argument("ML decoder supports code capacity only");
    }
  }

  // Bit-pack the parity structure: per qubit, the mask of checks it flips
  // and whether it crosses the logical cut.
  const int num_checks = lattice.num_checks();
  std::vector<std::uint32_t> check_mask(static_cast<std::size_t>(n), 0);
  std::vector<std::uint8_t> logical_mask(static_cast<std::size_t>(n), 0);
  for (int q = 0; q < n; ++q) {
    for (int chk : lattice.qubit_checks(q)) {
      check_mask[static_cast<std::size_t>(q)] |= std::uint32_t{1}
                                                 << static_cast<unsigned>(chk);
    }
  }
  for (int r = 0; r < lattice.distance(); ++r) {
    logical_mask[static_cast<std::size_t>(lattice.horizontal_qubit(r, 0))] = 1;
  }
  std::uint32_t target = 0;
  const BitVec& syndrome = history.measured.back();
  for (int chk = 0; chk < num_checks; ++chk) {
    if (syndrome[static_cast<std::size_t>(chk)]) {
      target |= std::uint32_t{1} << static_cast<unsigned>(chk);
    }
  }

  // Enumerate all error patterns via Gray code so each step flips one
  // qubit: O(2^n) with O(1) work per pattern.
  const double log_ratio = std::log(p_ / (1.0 - p_));
  double class_mass[2] = {0.0, 0.0};
  int best_weight[2] = {n + 1, n + 1};
  std::uint64_t best_pattern[2] = {0, 0};

  std::uint32_t running_syndrome = 0;
  std::uint8_t running_logical = 0;
  int running_weight = 0;
  std::uint64_t pattern = 0;

  const std::uint64_t total = std::uint64_t{1} << static_cast<unsigned>(n);
  for (std::uint64_t i = 0;; ++i) {
    if (running_syndrome == target) {
      const int cls = running_logical;
      class_mass[cls] += std::exp(log_ratio * running_weight);
      if (running_weight < best_weight[cls]) {
        best_weight[cls] = running_weight;
        best_pattern[cls] = pattern;
      }
    }
    if (i + 1 == total) break;
    // Gray-code step: flip qubit = count of trailing ones of i.
    const int q = __builtin_ctzll(i + 1);
    const std::uint64_t bit = std::uint64_t{1} << static_cast<unsigned>(q);
    pattern ^= bit;
    running_syndrome ^= check_mask[static_cast<std::size_t>(q)];
    running_logical ^= logical_mask[static_cast<std::size_t>(q)];
    running_weight += (pattern & bit) ? 1 : -1;
  }

  const int winner = class_mass[1] > class_mass[0] ? 1 : 0;
  DecodeResult result;
  result.correction.assign(static_cast<std::size_t>(n), 0);
  for (int q = 0; q < n; ++q) {
    if (best_pattern[winner] & (std::uint64_t{1} << static_cast<unsigned>(q))) {
      result.correction[static_cast<std::size_t>(q)] = 1;
    }
  }
  result.work = total;
  return result;
}

}  // namespace qec
