// Exact maximum-likelihood decoder by exhaustive coset enumeration — an
// accuracy *oracle* for the approximate decoders, feasible only for tiny
// codes (d <= 3: 13 data qubits, 8192 error patterns).
//
// For code-capacity noise (perfect measurement, iid X errors of rate p),
// the optimal decoder picks the homology class with the larger total
// probability mass among errors consistent with the syndrome, then any
// representative of that class. No approximate decoder can beat it; the
// tests use this bound (ML failures <= MWPM failures <= greedy failures).
#pragma once

#include "decoder/decoder.hpp"

namespace qec {

class MaximumLikelihoodDecoder final : public Decoder {
 public:
  /// `p` is the assumed physical error rate used for the likelihood
  /// weighting (the decoder stays optimal for the matching channel).
  explicit MaximumLikelihoodDecoder(double p);

  std::string name() const override { return "ML (exhaustive)"; }

  /// Decodes the final measured syndrome. Requires a code-capacity history
  /// (no measurement noise — every layer beyond the first must be defect
  /// free) and lattice.num_data() <= kMaxQubits.
  DecodeResult decode(const PlanarLattice& lattice,
                      const SyndromeHistory& history) override;

  static constexpr int kMaxQubits = 24;

 private:
  double p_;
};

}  // namespace qec
