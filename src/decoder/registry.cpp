#include "decoder/registry.hpp"

#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "aqec/aqec_decoder.hpp"
#include "decoder/ml_decoder.hpp"
#include "qecool/decode_cache.hpp"
#include "mwpm/mwpm_decoder.hpp"
#include "mwpm/windowed_mwpm.hpp"
#include "qecool/qecool_decoder.hpp"
#include "unionfind/uf_decoder.hpp"

namespace qec {
namespace {

[[noreturn]] void bad_spec(const std::string& what) {
  throw std::invalid_argument("decoder spec: " + what);
}

/// The option families a qecool spec understands, echoed in unknown-key
/// errors so one error message shows the full vocabulary.
constexpr const char* kQecoolOptionsHint =
    " (engine options: reg_depth, thv, nlimit, deprioritize_boundary, "
    "start_at_max_hop; cache options: cache, cache_entries, cache_shards, "
    "cache_max_defects)";

QecoolConfig qecool_config(const DecoderOptions& options) {
  QecoolConfig config;
  config.reg_depth = options.get_int("reg_depth", config.reg_depth);
  config.thv = options.get_int("thv", config.thv);
  config.nlimit = options.get_int("nlimit", config.nlimit);
  config.deprioritize_boundary =
      options.get_bool("deprioritize_boundary", config.deprioritize_boundary);
  config.start_at_max_hop =
      options.get_bool("start_at_max_hop", config.start_at_max_hop);
  // Decode-window memoization (qecool/decode_cache.hpp): cache=off|on|clock
  // plus the bounded-size / shard-count knobs.
  const std::string cache = options.get_string("cache", "");
  if (!cache.empty()) config.cache = parse_decode_cache_spec(cache);
  config.cache.entries = options.get_int("cache_entries", config.cache.entries);
  config.cache.shards = options.get_int("cache_shards", config.cache.shards);
  config.cache.max_defects =
      options.get_int("cache_max_defects", config.cache.max_defects);
  if (config.cache.entries < 0 || config.cache.shards < 0) {
    bad_spec("cache_entries and cache_shards must be >= 0");
  }
  return config;
}

struct Registry {
  std::mutex mutex;
  std::map<std::string, DecoderFactory, std::less<>> factories;
};

std::map<std::string, DecoderFactory, std::less<>> builtin_factories() {
  std::map<std::string, DecoderFactory, std::less<>> factories;
  factories["qecool"] = [](const DecoderOptions& options) {
    return std::make_unique<BatchQecoolDecoder>(qecool_config(options));
  };
  factories["mwpm"] = [](const DecoderOptions&) {
    return std::make_unique<MwpmDecoder>();
  };
  factories["windowed-mwpm"] = [](const DecoderOptions& options) {
    WindowConfig config;
    config.window = options.get_int("window", config.window);
    config.guard = options.get_int("guard", config.guard);
    return std::make_unique<WindowedMwpmDecoder>(config);
  };
  factories["uf"] = [](const DecoderOptions&) {
    return std::make_unique<UnionFindDecoder>();
  };
  factories["aqec"] = [](const DecoderOptions&) {
    return std::make_unique<AqecDecoder>();
  };
  factories["ml"] = [](const DecoderOptions& options) {
    return std::make_unique<MaximumLikelihoodDecoder>(
        options.get_double("p", 0.01));
  };
  return factories;
}

Registry& registry() {
  static Registry instance{{}, builtin_factories()};
  return instance;
}

}  // namespace

DecoderOptions DecoderOptions::parse(std::string_view text) {
  DecoderOptions options;
  while (!text.empty()) {
    const auto comma = text.find(',');
    const std::string_view item = text.substr(0, comma);
    text = comma == std::string_view::npos ? std::string_view{}
                                           : text.substr(comma + 1);
    const auto eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 == item.size()) {
      bad_spec("expected key=value, got '" + std::string(item) + "'");
    }
    options.values_[std::string(item.substr(0, eq))] =
        std::string(item.substr(eq + 1));
  }
  return options;
}

std::string DecoderOptions::take(std::string_view key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return {};
  consumed_[it->first] = true;
  return it->second;
}

int DecoderOptions::get_int(std::string_view key, int fallback) const {
  const std::string raw = take(key);
  if (raw.empty()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(raw.c_str(), &end, 10);
  if (end == raw.c_str() || *end != '\0') {
    bad_spec("option '" + std::string(key) + "' is not an integer: " + raw);
  }
  return static_cast<int>(v);
}

double DecoderOptions::get_double(std::string_view key, double fallback) const {
  const std::string raw = take(key);
  if (raw.empty()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str() || *end != '\0') {
    bad_spec("option '" + std::string(key) + "' is not a number: " + raw);
  }
  return v;
}

bool DecoderOptions::get_bool(std::string_view key, bool fallback) const {
  const std::string raw = take(key);
  if (raw.empty()) return fallback;
  if (raw == "1" || raw == "true") return true;
  if (raw == "0" || raw == "false") return false;
  bad_spec("option '" + std::string(key) + "' is not a bool: " + raw);
}

std::string DecoderOptions::get_string(std::string_view key,
                                       std::string fallback) const {
  const std::string raw = take(key);
  return raw.empty() ? fallback : raw;
}

std::vector<std::string> DecoderOptions::unconsumed() const {
  std::vector<std::string> keys;
  for (const auto& [key, value] : values_) {
    if (!consumed_.count(key)) keys.push_back(key);
  }
  return keys;
}

std::string DecoderOptions::join_keys(const std::vector<std::string>& keys) {
  std::string joined;
  for (const auto& key : keys) {
    if (!joined.empty()) joined += ", ";
    joined += "'" + key + "'";
  }
  return joined;
}

void register_decoder(const std::string& name, DecoderFactory factory) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.factories[name] = std::move(factory);
}

std::unique_ptr<Decoder> make_decoder(std::string_view spec) {
  const auto colon = spec.find(':');
  const std::string_view name = spec.substr(0, colon);
  const std::string_view opts =
      colon == std::string_view::npos ? std::string_view{}
                                      : spec.substr(colon + 1);
  DecoderFactory factory;
  {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.factories.find(name);
    if (it == r.factories.end()) {
      bad_spec("unknown decoder '" + std::string(name) + "'");
    }
    factory = it->second;
  }
  const DecoderOptions options = DecoderOptions::parse(opts);
  auto decoder = factory(options);
  if (!decoder) bad_spec("factory for '" + std::string(name) + "' failed");
  if (const auto leftover = options.unconsumed(); !leftover.empty()) {
    bad_spec("decoder '" + std::string(name) + "' does not understand " +
             DecoderOptions::join_keys(leftover) +
             (name == "qecool" ? kQecoolOptionsHint : ""));
  }
  return decoder;
}

std::function<std::unique_ptr<Decoder>()> decoder_maker(
    std::string_view spec) {
  make_decoder(spec);  // validate eagerly, before any worker thread exists
  return [spec = std::string(spec)] { return make_decoder(spec); };
}

QecoolConfig online_engine_config(std::string_view spec) {
  const auto colon = spec.find(':');
  const std::string_view name = spec.substr(0, colon);
  if (name != "qecool") {
    bad_spec("online engine spec must name 'qecool', got '" +
             std::string(name) + "'");
  }
  const DecoderOptions options = DecoderOptions::parse(
      colon == std::string_view::npos ? std::string_view{}
                                      : spec.substr(colon + 1));
  const QecoolConfig config = qecool_config(options);
  if (const auto leftover = options.unconsumed(); !leftover.empty()) {
    bad_spec("online engine 'qecool' does not understand " +
             DecoderOptions::join_keys(leftover) + kQecoolOptionsHint);
  }
  return config;
}

std::vector<std::string> registered_decoders() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::string> names;
  for (const auto& [name, factory] : r.factories) names.push_back(name);
  return names;
}

}  // namespace qec
