// String-keyed decoder construction: one place where CLI tools, benches,
// the sweep driver, and the sharded Monte Carlo engine build decoder
// instances. Each worker thread of a sharded run constructs its own decoder
// through this interface, so stateful decoders never need to be shared.
//
// A spec is "name" or "name:key=value,key=value,..." — e.g.
//   "qecool", "qecool:reg_depth=4,start_at_max_hop=1",
//   "windowed-mwpm:window=4,guard=2", "ml:p=0.05".
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "decoder/decoder.hpp"
#include "qecool/config.hpp"

namespace qec {

/// Parsed key=value options of a decoder spec. Factories must consume every
/// key they understand via the typed getters; make_decoder rejects specs
/// with leftover (unconsumed) keys so typos fail loudly.
class DecoderOptions {
 public:
  /// Parses "key=value,key=value". Throws std::invalid_argument on
  /// malformed input (empty key, missing '=').
  static DecoderOptions parse(std::string_view text);

  /// Typed getters; consume the key. Throw std::invalid_argument when the
  /// value does not parse as the requested type.
  int get_int(std::string_view key, int fallback) const;
  double get_double(std::string_view key, double fallback) const;
  bool get_bool(std::string_view key, bool fallback) const;
  std::string get_string(std::string_view key, std::string fallback) const;

  /// Keys never consumed by any getter (set after factory construction).
  std::vector<std::string> unconsumed() const;

  /// "'key1', 'key2'" — formats unconsumed() for an error message, naming
  /// every offending option so one round-trip fixes the whole spec.
  /// Shared by the decoder, scheduler-policy, and admission spec parsers.
  static std::string join_keys(const std::vector<std::string>& keys);

 private:
  std::string take(std::string_view key) const;

  std::map<std::string, std::string, std::less<>> values_;
  mutable std::map<std::string, bool, std::less<>> consumed_;
};

using DecoderFactory =
    std::function<std::unique_ptr<Decoder>(const DecoderOptions&)>;

/// Registers `factory` under `name` (overwrites an existing entry, so tests
/// and downstream code can shadow built-ins). Thread-safe.
void register_decoder(const std::string& name, DecoderFactory factory);

/// Constructs a decoder from a spec ("name" or "name:k=v,..."). Throws
/// std::invalid_argument for unknown names, malformed option lists, or
/// options the named decoder does not understand.
std::unique_ptr<Decoder> make_decoder(std::string_view spec);

/// Convenience: a thunk that builds a fresh instance of `spec` on each call
/// (what the sharded Monte Carlo engine hands to its worker threads). The
/// spec is validated eagerly, so errors surface before any thread spawns.
std::function<std::unique_ptr<Decoder>()> decoder_maker(std::string_view spec);

/// Sorted names of all registered decoders (built-ins plus extensions).
std::vector<std::string> registered_decoders();

/// Parses a spec into the engine configuration of an *on-line capable*
/// decoder — what the streaming decode service (src/stream) builds one lane
/// engine from. Only "qecool" (the paper's hardware) supports incremental
/// per-round stepping, so any other name throws std::invalid_argument, as
/// do unknown options ("qecool:reg_depth=4,thv=3" is the typical shape).
QecoolConfig online_engine_config(std::string_view spec);

}  // namespace qec
