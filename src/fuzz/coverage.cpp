#include "fuzz/coverage.hpp"

#include "common/rng.hpp"

namespace qec::fuzz {

std::size_t feature_cell(Feature kind, std::uint32_t value) {
  std::uint64_t state = (static_cast<std::uint64_t>(kind) << 32) | value;
  return static_cast<std::size_t>(splitmix64(state)) & (kCoverageCells - 1);
}

void FeatureSet::merge(const FeatureSet& other) {
  for (std::size_t i = 0; i < kCoverageCells; ++i) {
    bits_[i] |= other.bits_[i];
  }
}

int FeatureSet::count() const {
  int n = 0;
  for (const std::uint8_t b : bits_) n += b;
  return n;
}

int CoverageMap::merge(const FeatureSet& run) {
  int fresh = 0;
  const auto& bits = run.bits();
  for (std::size_t i = 0; i < kCoverageCells; ++i) {
    if (bits[i] && !bits_[i]) {
      bits_[i] = 1;
      ++fresh;
    }
  }
  covered_ += fresh;
  return fresh;
}

}  // namespace qec::fuzz
