// Engine-state coverage: the fuzzer's fitness signal (DESIGN.md section
// 14, docs/fuzzing.md). Instead of instruction coverage — which saturates
// after a handful of inputs on a decoder whose control flow is short — the
// harness maps each oracle run onto a compact feature space over the
// *engine states* the input reached: Reg occupancy profiles and their
// transitions, overflow proximity, pop bursts, the resumable controller
// position, pause/resume context, per-lane terminal state, and the decode
// cache's hit/zero/bypass mix. An input that drives the engine into a
// feature cell no earlier input reached is interesting and is kept as a
// corpus seed, exactly the AFL-style feedback loop — with the feature map
// substituting for the edge map.
//
// The map is a fixed bitmap of kCoverageCells cells; (kind, value) pairs
// hash in via SplitMix64. Collisions merge features, which only makes the
// fitness signal slightly conservative — never wrong.
#pragma once

#include <cstdint>
#include <vector>

namespace qec::fuzz {

/// Feature kinds. Values are hashed together with the kind, so each kind
/// owns an unbounded value namespace.
enum class Feature : std::uint8_t {
  kOccupancy = 1,   ///< Reg occupancy m after a push (0..reg_depth)
  kOccupancyEdge,   ///< occupancy transition prev -> next across a round
  kProximity,       ///< overflow proximity: min(reg_depth - m, 3)
  kPops,            ///< layers popped by one spend(): min(pops, 7)
  kController,      ///< post-run (base_depth, hop_limit) position
  kPause,           ///< occupancy at a checkpoint/resume no-op pair
  kLaneEnd,         ///< terminal lane state: overflow/drained/paused bits
  kCacheMix,        ///< per-lane hit/zero/bypass occupancy of the cache
};

inline constexpr std::size_t kCoverageCells = std::size_t{1} << 12;

/// Maps one (kind, value) feature to its cell.
std::size_t feature_cell(Feature kind, std::uint32_t value);

/// The features one oracle run touched. Filled by the harness and the
/// coverage probe, then merged into the global CoverageMap.
class FeatureSet {
 public:
  FeatureSet() : bits_(kCoverageCells, 0) {}

  void add(Feature kind, std::uint32_t value) {
    bits_[feature_cell(kind, value)] = 1;
  }

  void merge(const FeatureSet& other);

  int count() const;

  const std::vector<std::uint8_t>& bits() const { return bits_; }

 private:
  std::vector<std::uint8_t> bits_;
};

/// Cumulative coverage across the whole fuzzing session.
class CoverageMap {
 public:
  CoverageMap() : bits_(kCoverageCells, 0) {}

  /// Folds a run's features in; returns how many cells were new — the
  /// run's fitness. 0 means the input reached nothing unseen.
  int merge(const FeatureSet& run);

  int covered() const { return covered_; }

 private:
  std::vector<std::uint8_t> bits_;
  int covered_ = 0;
};

}  // namespace qec::fuzz
