#include "fuzz/fuzzer.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "sim/executor.hpp"
#include "stream/service.hpp"

namespace qec::fuzz {

namespace fs = std::filesystem;

std::vector<FuzzSeedSpec> default_seed_matrix() {
  std::vector<FuzzSeedSpec> seeds;
  int i = 0;
  for (const int d : {5, 9}) {
    for (const double p : {1e-4, 3e-3}) {
      FuzzSeedSpec spec;
      spec.distance = d;
      spec.p = p;
      spec.lanes = 2;
      spec.rounds = 12;
      spec.seed = 2021 + static_cast<std::uint64_t>(i++);
      seeds.push_back(spec);
    }
  }
  return seeds;
}

std::vector<std::string> list_corpus(const std::string& dir) {
  std::vector<std::string> paths;
  std::error_code ec;
  if (dir.empty() || !fs::is_directory(dir, ec)) return paths;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".qtrc") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

namespace {

SyndromeTrace record_seed(const FuzzSeedSpec& spec) {
  StreamConfig config;
  config.lanes = spec.lanes;
  config.distance = spec.distance;
  config.p = spec.p;
  config.rounds = spec.rounds;
  config.seed = spec.seed;
  return record_trace(config);
}

/// In-memory corpus entry: the trace plus its fitness when admitted.
struct CorpusEntry {
  SyndromeTrace trace;
  int fresh_cells = 0;
};

std::string save_trace(const SyndromeTrace& trace, const std::string& dir,
                       const std::string& name) {
  if (dir.empty()) return {};
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string path = (fs::path(dir) / name).string();
  trace.save(path);
  return path;
}

}  // namespace

FuzzStats run_fuzzer(const FuzzConfig& config) {
  if (config.max_iterations <= 0 && config.time_budget_s <= 0.0) {
    throw std::invalid_argument(
        "run_fuzzer: set max_iterations and/or time_budget_s");
  }
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };

  // The window-boundary mutation operator aligns against the engine shape
  // the oracles actually run.
  MutatorConfig mutator_config = config.mutator;
  mutator_config.reg_depth = config.oracle.online.engine.reg_depth;
  mutator_config.thv = config.oracle.online.engine.thv;
  TraceMutator mutator(config.rng_seed, mutator_config);
  Xoshiro256ss& rng = mutator.rng();

  FuzzStats stats;
  CoverageMap coverage;
  std::vector<CorpusEntry> corpus;

  const auto ingest = [&](SyndromeTrace trace, int iteration) -> bool {
    OracleReport report = run_oracles(trace, config.oracle);
    ++stats.oracle_runs;
    stats.cache_hits += report.cache_hits;
    stats.cache_misses += report.cache_misses;
    if (!report.ok()) {
      FuzzFailure failure;
      failure.summary = summarize_report(report);
      failure.iteration = iteration;
      failure.trace = trace;
      const auto idx = std::to_string(stats.failures.size());
      failure.original_path =
          save_trace(trace, config.out_dir, "failure-" + idx + ".qtrc");
      if (config.minimize) {
        MinimizeResult min = minimize_trace(
            trace,
            [&](const SyndromeTrace& candidate) {
              ++stats.oracle_runs;
              return !run_oracles(candidate, config.oracle).ok();
            });
        failure.minimized = std::move(min.trace);
        failure.predicate_calls = min.predicate_calls;
      } else {
        failure.minimized = trace;
      }
      failure.saved_path = save_trace(failure.minimized, config.out_dir,
                                      "failure-" + idx + ".min.qtrc");
      stats.failures.push_back(std::move(failure));
      return true;
    }
    const int fresh = coverage.merge(report.features);
    if ((fresh > 0 || iteration < 0) &&
        static_cast<int>(corpus.size()) < config.max_corpus) {
      corpus.push_back({std::move(trace), fresh});
    }
    return false;
  };

  // Initial corpus: the recorded seed matrix plus any on-disk traces.
  // Seeds are always admitted (iteration < 0) — a parent pool must exist
  // even if the first seed saturates the early coverage cells.
  const std::vector<FuzzSeedSpec> seeds =
      config.seeds.empty() ? default_seed_matrix() : config.seeds;
  for (const auto& spec : seeds) {
    if (ingest(record_seed(spec), -1)) break;
  }
  for (const auto& path : list_corpus(config.corpus_dir)) {
    if (static_cast<int>(stats.failures.size()) >= config.max_failures) break;
    ingest(SyndromeTrace::load(path), -1);
  }
  if (corpus.empty() && stats.failures.empty()) {
    throw std::runtime_error("run_fuzzer: empty initial corpus");
  }

  // The AFL loop: pick a parent, mutate, run, keep what's interesting.
  int iteration = 0;
  while (static_cast<int>(stats.failures.size()) < config.max_failures &&
         !corpus.empty()) {
    if (config.max_iterations > 0 && iteration >= config.max_iterations) break;
    if (config.time_budget_s > 0.0 && elapsed() >= config.time_budget_s) break;

    const std::size_t pick = rng.below(corpus.size());
    SyndromeTrace child = corpus[pick].trace;

    // Occasionally cross with a same-geometry sibling, then stack a few
    // point mutations (AFL havoc-style).
    if (corpus.size() > 1 && rng.below(8) == 0) {
      const std::size_t donor =
          (pick + 1 + rng.below(corpus.size() - 1)) % corpus.size();
      mutator.splice(child, corpus[donor].trace);
    }
    const int stack = 1 + static_cast<int>(rng.below(4));
    for (int i = 0; i < stack; ++i) {
      mutator.mutate(child);
    }

    ingest(std::move(child), iteration);
    ++iteration;
  }

  stats.iterations = iteration;
  stats.corpus_size = static_cast<int>(corpus.size());
  stats.coverage_cells = coverage.covered();
  stats.elapsed_s = elapsed();
  return stats;
}

std::string ReplayReport::to_text() const {
  std::ostringstream out;
  for (const auto& entry : entries) {
    out << fs::path(entry.path).filename().string() << ": " << entry.summary
        << "\n";
  }
  out << entries.size() << " entries, " << failures << " failures\n";
  return out.str();
}

ReplayReport replay_corpus(const std::vector<std::string>& paths,
                           const OracleConfig& config, int threads) {
  ReplayReport report;
  report.entries.resize(paths.size());
  // Per-entry slots filled in parallel, assembled in input order — the
  // report bytes are a pure function of (paths, config).
  parallel_for(static_cast<int>(paths.size()), threads, [&](int i) {
    ReplayEntry& entry = report.entries[static_cast<std::size_t>(i)];
    entry.path = paths[static_cast<std::size_t>(i)];
    try {
      const SyndromeTrace trace = SyndromeTrace::load(entry.path);
      const OracleReport r = run_oracles(trace, config);
      entry.summary = summarize_report(r);
      entry.ok = r.ok();
    } catch (const std::exception& e) {
      entry.summary = std::string("load error: ") + e.what();
      entry.ok = false;
    }
  });
  for (const auto& entry : report.entries) {
    if (!entry.ok) ++report.failures;
  }
  return report;
}

}  // namespace qec::fuzz
