// Coverage-guided engine fuzzer (DESIGN.md section 14, docs/fuzzing.md):
// the AFL loop over QTRC traces. Seeds come from record_trace() (valid
// noise at a few (d, p) points) plus any on-disk corpus; each iteration
// picks a corpus parent, applies a few defect-pattern mutations
// (fuzz/mutate.hpp) or a splice with a same-geometry sibling, and runs the
// differential-oracle battery (fuzz/oracle.hpp). Inputs that light up new
// engine-state coverage cells join the corpus; inputs that diverge are
// shrunk by the delta-debugging minimizer (fuzz/minimize.hpp) and written
// out as loader-valid .qtrc reproducers for the CI corpus_replay_test.
//
// Determinism: one Xoshiro256ss stream drives parent choice and every
// mutation, so (seeds, rng_seed, max_iterations) fully determine the run —
// a CI failure replays locally from the seed alone. The wall-clock budget
// is the only nondeterministic input, and it only truncates the iteration
// sequence, never reorders it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/coverage.hpp"
#include "fuzz/minimize.hpp"
#include "fuzz/mutate.hpp"
#include "fuzz/oracle.hpp"
#include "stream/trace.hpp"

namespace qec::fuzz {

/// One recorded-noise seed point for the initial corpus.
struct FuzzSeedSpec {
  int distance = 5;
  double p = 1e-3;
  int lanes = 2;
  int rounds = 12;
  std::uint64_t seed = 2021;
};

/// The seed matrix the CI smoke run covers: d in {5, 9} x p in {1e-4,
/// 3e-3}, two lanes each.
std::vector<FuzzSeedSpec> default_seed_matrix();

struct FuzzConfig {
  std::vector<FuzzSeedSpec> seeds;  ///< empty: default_seed_matrix()
  OracleConfig oracle;

  std::uint64_t rng_seed = 1;
  /// Iteration cap; <= 0 means bounded by time_budget_s only.
  int max_iterations = 0;
  /// Wall-clock budget in seconds; <= 0 means bounded by iterations only.
  /// (At least one bound must be set; run_fuzzer throws otherwise.)
  double time_budget_s = 0.0;

  /// Extra seed traces: every *.qtrc under this directory joins the
  /// initial corpus (empty: none).
  std::string corpus_dir;
  /// Where failing inputs and their minimized reproducers are written
  /// (empty: failures are reported but not saved).
  std::string out_dir;

  /// Shrink failures before saving/reporting them.
  bool minimize = true;
  /// Stop after this many distinct failures (a diverging engine fails
  /// everywhere; piles of near-identical reproducers help nobody).
  int max_failures = 4;
  /// In-memory corpus cap; beyond it, low-fitness entries stop being added.
  int max_corpus = 256;

  /// Engine-shape hints for the window-boundary mutation operator; kept in
  /// sync with oracle.online.engine by run_fuzzer.
  MutatorConfig mutator;
};

/// One divergence-producing input, as saved.
struct FuzzFailure {
  std::string summary;        ///< first divergence of the original input
  int iteration = 0;          ///< which fuzz iteration found it
  SyndromeTrace trace;        ///< the original failing input
  SyndromeTrace minimized;    ///< == trace when minimization is off
  int predicate_calls = 0;    ///< minimization cost
  std::string saved_path;     ///< reproducer file ("" when not saved)
  std::string original_path;  ///< unminimized failing input ("" when not saved)
};

struct FuzzStats {
  int iterations = 0;
  int corpus_size = 0;
  int coverage_cells = 0;
  std::uint64_t oracle_runs = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::vector<FuzzFailure> failures;
  double elapsed_s = 0.0;

  bool found_failure() const { return !failures.empty(); }
};

/// Runs the fuzz loop to its iteration/time bound. Throws TraceError on an
/// unreadable corpus_dir entry and std::invalid_argument on a bound-less
/// config.
FuzzStats run_fuzzer(const FuzzConfig& config);

/// Per-entry verdict of a corpus replay.
struct ReplayEntry {
  std::string path;
  std::string summary;  ///< summarize_report() of the entry's oracle run
  bool ok = false;
};

struct ReplayReport {
  std::vector<ReplayEntry> entries;  ///< in input order, any thread count
  int failures = 0;

  bool ok() const { return failures == 0; }
  /// One line per entry — byte-identical at any thread count.
  std::string to_text() const;
};

/// Replays every trace file through the full oracle battery. Entries run
/// in parallel over `threads` workers, but the report is assembled in
/// input order from per-entry slots, so the bytes never depend on the
/// thread count — the corpus_replay_test pins this.
ReplayReport replay_corpus(const std::vector<std::string>& paths,
                           const OracleConfig& config, int threads);

/// The *.qtrc files directly under `dir`, sorted by filename (the corpus
/// replay order). Returns an empty list when the directory is missing.
std::vector<std::string> list_corpus(const std::string& dir);

}  // namespace qec::fuzz
