#include "fuzz/minimize.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace qec::fuzz {

SyndromeTrace keep_lanes(const SyndromeTrace& trace,
                         const std::vector<int>& keep) {
  assert(!keep.empty());
  TraceHeader header = trace.header();
  header.lanes = static_cast<std::uint32_t>(keep.size());
  SyndromeTrace out(header);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    const int src = keep[i];
    for (int round = 0; round < trace.rounds(); ++round) {
      out.set_layer(static_cast<int>(i), round, trace.layer(src, round));
    }
    out.set_final_error(static_cast<int>(i), trace.final_error(src));
  }
  return out;
}

SyndromeTrace truncate_rounds(const SyndromeTrace& trace, int rounds) {
  assert(rounds >= 1);
  rounds = std::min(rounds, trace.rounds());
  TraceHeader header = trace.header();
  header.rounds = static_cast<std::uint32_t>(rounds);
  SyndromeTrace out(header);
  for (int lane = 0; lane < trace.lanes(); ++lane) {
    for (int round = 0; round < rounds; ++round) {
      out.set_layer(lane, round, trace.layer(lane, round));
    }
    out.set_final_error(lane, trace.final_error(lane));
  }
  return out;
}

namespace {

class Shrinker {
 public:
  Shrinker(SyndromeTrace trace, const FailurePredicate& predicate)
      : current_(std::move(trace)), predicate_(predicate) {}

  /// Tries `candidate`; adopts it when the failure persists.
  bool attempt(SyndromeTrace candidate) {
    ++calls_;
    if (!predicate_(candidate)) return false;
    current_ = std::move(candidate);
    return true;
  }

  /// Stage 1: drop one lane at a time, retrying until no single lane can
  /// be removed. Scanning from the last lane keeps surviving indices
  /// stable and the result deterministic.
  bool drop_lanes() {
    bool shrunk = false;
    bool progress = true;
    while (progress && current_.lanes() > 1) {
      progress = false;
      for (int lane = current_.lanes() - 1; lane >= 0; --lane) {
        if (current_.lanes() == 1) break;
        std::vector<int> keep;
        for (int i = 0; i < current_.lanes(); ++i) {
          if (i != lane) keep.push_back(i);
        }
        if (attempt(keep_lanes(current_, keep))) {
          shrunk = true;
          progress = true;
        }
      }
    }
    return shrunk;
  }

  /// Stage 2: cut rounds from the tail — halving probe first (one call
  /// discards half the trace when the failure is early), then a linear
  /// peel for the exact boundary.
  bool cut_rounds() {
    bool shrunk = false;
    while (current_.rounds() > 1) {
      const int half = current_.rounds() / 2;
      if (half < 1 || !attempt(truncate_rounds(current_, half))) break;
      shrunk = true;
    }
    while (current_.rounds() > 1) {
      if (!attempt(truncate_rounds(current_, current_.rounds() - 1))) break;
      shrunk = true;
    }
    return shrunk;
  }

  /// Stage 3: zero one whole round across all lanes.
  bool clear_rounds() {
    bool shrunk = false;
    const PackedBits zero(current_.header().checks);
    for (int round = 0; round < current_.rounds(); ++round) {
      bool already_zero = true;
      for (int lane = 0; lane < current_.lanes(); ++lane) {
        if (current_.layer(lane, round).any()) {
          already_zero = false;
          break;
        }
      }
      if (already_zero) continue;
      SyndromeTrace candidate = current_;
      for (int lane = 0; lane < candidate.lanes(); ++lane) {
        candidate.set_layer(lane, round, zero);
      }
      shrunk |= attempt(std::move(candidate));
    }
    return shrunk;
  }

  /// Stage 4: zero one 64-check word of one layer.
  bool clear_words() {
    bool shrunk = false;
    for (int lane = 0; lane < current_.lanes(); ++lane) {
      for (int round = 0; round < current_.rounds(); ++round) {
        const std::size_t words = current_.layer(lane, round).num_words();
        for (std::size_t w = 0; w < words; ++w) {
          if (current_.layer(lane, round).word(w) == 0) continue;
          SyndromeTrace candidate = current_;
          PackedBits layer = candidate.layer(lane, round);
          layer.set_word(w, 0);
          candidate.set_layer(lane, round, std::move(layer));
          shrunk |= attempt(std::move(candidate));
        }
      }
    }
    return shrunk;
  }

  /// Stage 5: clear single defects — the 1-minimal polish.
  bool clear_bits() {
    bool shrunk = false;
    for (int lane = 0; lane < current_.lanes(); ++lane) {
      for (int round = 0; round < current_.rounds(); ++round) {
        std::vector<std::size_t> set_bits;
        current_.layer(lane, round).for_each_set([&](std::size_t i) {
          set_bits.push_back(i);
        });
        for (const std::size_t bit : set_bits) {
          if (!current_.layer(lane, round).test(bit)) continue;
          SyndromeTrace candidate = current_;
          PackedBits layer = candidate.layer(lane, round);
          layer.reset(bit);
          candidate.set_layer(lane, round, std::move(layer));
          shrunk |= attempt(std::move(candidate));
        }
      }
    }
    return shrunk;
  }

  /// Stage 6: zero the ground-truth final errors (the engine oracles never
  /// read them, but the predicate decides).
  bool clear_final_errors() {
    bool any = false;
    for (int lane = 0; lane < current_.lanes(); ++lane) {
      for (const std::uint8_t b : current_.final_error(lane)) {
        if (b) {
          any = true;
          break;
        }
      }
      if (any) break;
    }
    if (!any) return false;
    SyndromeTrace candidate = current_;
    const BitVec zero(current_.header().data_qubits, 0);
    for (int lane = 0; lane < candidate.lanes(); ++lane) {
      candidate.set_final_error(lane, zero);
    }
    return attempt(std::move(candidate));
  }

  SyndromeTrace take() { return std::move(current_); }
  const SyndromeTrace& current() const { return current_; }
  int calls() const { return calls_; }

 private:
  SyndromeTrace current_;
  const FailurePredicate& predicate_;
  int calls_ = 0;
};

}  // namespace

MinimizeResult minimize_trace(const SyndromeTrace& failing,
                              const FailurePredicate& predicate,
                              const MinimizeOptions& options) {
  Shrinker shrinker(failing, predicate);
  MinimizeResult result;
  for (int pass = 0; pass < options.max_passes; ++pass) {
    bool shrunk = false;
    shrunk |= shrinker.drop_lanes();
    shrunk |= shrinker.cut_rounds();
    shrunk |= shrinker.clear_rounds();
    shrunk |= shrinker.clear_words();
    if (options.clear_bits) shrunk |= shrinker.clear_bits();
    shrunk |= shrinker.clear_final_errors();
    ++result.passes;
    if (!shrunk) break;
  }
  result.predicate_calls = shrinker.calls();
  result.trace = shrinker.take();
  return result;
}

}  // namespace qec::fuzz
