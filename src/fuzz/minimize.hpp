// Failure-trace minimization: delta debugging specialised to the QTRC
// shape (docs/fuzzing.md section 5). Given a trace for which `predicate`
// holds (a divergence, an invariant violation, a crash reproduced under a
// harness), the minimizer greedily shrinks it while the predicate keeps
// holding, in structure-first order:
//
//   1. drop lanes            (whole logical qubits, largest units first)
//   2. truncate rounds       (halving probe, then linear from the tail)
//   3. clear whole rounds    (zero one round across all remaining lanes)
//   4. clear layer words     (zero one 64-check word of one layer)
//   5. clear single bits     (the 1-minimal polish pass)
//   6. zero final errors     (engine oracles never read them)
//
// and repeats to a fixpoint (bounded by max_passes). Entirely RNG-free:
// the result is a pure function of (input trace, predicate), so a fixed
// seed always shrinks to the same reproducer. Every intermediate candidate
// is a structurally valid trace — headers are rebuilt through the
// SyndromeTrace constructor, so the saved reproducer always loads.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "stream/trace.hpp"

namespace qec::fuzz {

/// Returns true when the candidate still exhibits the failure being
/// minimized. Must be deterministic.
using FailurePredicate = std::function<bool(const SyndromeTrace&)>;

struct MinimizeOptions {
  /// Outer fixpoint iterations: each pass runs all shrink stages once;
  /// stop early when a full pass removes nothing.
  int max_passes = 4;
  /// Skip the per-bit polish pass (quadratic-ish; the word pass already
  /// gets within 64x of 1-minimal).
  bool clear_bits = true;
};

struct MinimizeResult {
  SyndromeTrace trace;
  /// How many times the predicate ran — the minimization cost.
  int predicate_calls = 0;
  /// Outer passes executed before the fixpoint.
  int passes = 0;
};

/// A copy of `trace` containing only the lanes in `keep` (in the given
/// order). `keep` must be non-empty with valid, distinct lane indices.
SyndromeTrace keep_lanes(const SyndromeTrace& trace,
                         const std::vector<int>& keep);

/// A copy of `trace` truncated to its first `rounds` rounds (>= 1).
SyndromeTrace truncate_rounds(const SyndromeTrace& trace, int rounds);

/// Shrinks `failing` (for which predicate(failing) must be true) to a
/// smaller trace for which the predicate still holds.
MinimizeResult minimize_trace(const SyndromeTrace& failing,
                              const FailurePredicate& predicate,
                              const MinimizeOptions& options = {});

}  // namespace qec::fuzz
