#include "fuzz/mutate.hpp"

#include <algorithm>
#include <cstddef>

namespace qec::fuzz {

namespace {

/// Check-grid geometry of a layer: checks = rows x cols with cols = d - 1
/// (PlanarLattice check layout, row-major).
struct CheckGrid {
  int rows;
  int cols;
};

CheckGrid check_grid(const SyndromeTrace& trace) {
  const int d = static_cast<int>(trace.header().distance);
  const int cols = d > 1 ? d - 1 : 1;
  const int checks = static_cast<int>(trace.header().checks);
  return {checks / cols, cols};
}

}  // namespace

const char* mutation_name(MutationOp op) {
  switch (op) {
    case MutationOp::kBitFlips:
      return "bit-flips";
    case MutationOp::kBurst:
      return "burst";
    case MutationOp::kRowStreak:
      return "row-streak";
    case MutationOp::kColStreak:
      return "col-streak";
    case MutationOp::kWindowCluster:
      return "window-cluster";
    case MutationOp::kClearRegion:
      return "clear-region";
    case MutationOp::kSplice:
      return "splice";
  }
  return "?";
}

void TraceMutator::flip(SyndromeTrace& trace, int lane, int round,
                        std::size_t check) {
  PackedBits layer = trace.layer(lane, round);
  layer.flip(check);
  trace.set_layer(lane, round, std::move(layer));
}

MutationOp TraceMutator::mutate(SyndromeTrace& trace) {
  // kSplice needs a donor parent, so the single-trace picker excludes it.
  const auto op = static_cast<MutationOp>(
      rng_.below(static_cast<std::uint64_t>(MutationOp::kSplice)));
  apply(trace, op);
  return op;
}

void TraceMutator::apply(SyndromeTrace& trace, MutationOp op) {
  const int lanes = trace.lanes();
  const int rounds = trace.rounds();
  const std::size_t checks = trace.header().checks;
  if (lanes <= 0 || rounds <= 0 || checks == 0) return;
  const auto grid = check_grid(trace);

  const auto pick_lane = [&] { return static_cast<int>(rng_.below(lanes)); };
  const auto pick_round = [&] { return static_cast<int>(rng_.below(rounds)); };

  switch (op) {
    case MutationOp::kBitFlips: {
      const int n = 1 + static_cast<int>(rng_.below(8));
      for (int i = 0; i < n; ++i) {
        flip(trace, pick_lane(), pick_round(), rng_.below(checks));
      }
      break;
    }

    case MutationOp::kBurst: {
      // Dense defect cluster in one round: every check within Chebyshev
      // radius r of a random centre flips with probability 3/4. Drives the
      // window defect count across the cache's sparsity gate.
      const int lane = pick_lane();
      const int round = pick_round();
      const int r = 1 + static_cast<int>(rng_.below(3));
      const int cr = static_cast<int>(rng_.below(grid.rows));
      const int cc = static_cast<int>(rng_.below(grid.cols));
      PackedBits layer = trace.layer(lane, round);
      for (int dr = -r; dr <= r; ++dr) {
        for (int dc = -r; dc <= r; ++dc) {
          const int row = cr + dr;
          const int col = cc + dc;
          if (row < 0 || row >= grid.rows || col < 0 || col >= grid.cols)
            continue;
          if (rng_.below(4) == 0) continue;
          layer.flip(static_cast<std::size_t>(row * grid.cols + col));
        }
      }
      trace.set_layer(lane, round, std::move(layer));
      break;
    }

    case MutationOp::kRowStreak: {
      // The same check asserted across consecutive rounds — a measurement
      // error streak. Length biased past the Reg depth so occupancy climbs.
      const int lane = pick_lane();
      const std::size_t check = rng_.below(checks);
      const int max_len = std::min(rounds, config_.reg_depth + 3);
      const int len = 2 + static_cast<int>(rng_.below(
                              std::max(1, max_len - 1)));
      const int start =
          static_cast<int>(rng_.below(std::max(1, rounds - len + 1)));
      for (int round = start; round < std::min(rounds, start + len); ++round) {
        PackedBits layer = trace.layer(lane, round);
        layer.set(check);
        trace.set_layer(lane, round, std::move(layer));
      }
      break;
    }

    case MutationOp::kColStreak: {
      // A vertical line of adjacent checks (same column, consecutive rows)
      // in one round — a spatial error chain the matcher must retrace.
      const int lane = pick_lane();
      const int round = pick_round();
      const int col = static_cast<int>(rng_.below(grid.cols));
      const int len = 2 + static_cast<int>(rng_.below(
                              std::max(1, grid.rows - 1)));
      const int start =
          static_cast<int>(rng_.below(std::max(1, grid.rows - len + 1)));
      PackedBits layer = trace.layer(lane, round);
      for (int row = start; row < std::min(grid.rows, start + len); ++row) {
        layer.set(static_cast<std::size_t>(row * grid.cols + col));
      }
      trace.set_layer(lane, round, std::move(layer));
      break;
    }

    case MutationOp::kWindowCluster: {
      // Defects straddling a window boundary: rounds {b-1, b, b+1} around a
      // multiple of the Reg depth (or of thv), where pop eligibility and
      // cache keys change shape.
      const int lane = pick_lane();
      const int stride =
          (rng_.below(2) == 0 && config_.thv > 0) ? config_.thv
                                                  : std::max(1, config_.reg_depth);
      const int nb = std::max(1, rounds / stride);
      const int boundary =
          stride * (1 + static_cast<int>(rng_.below(nb)));
      const int n = 2 + static_cast<int>(rng_.below(4));
      for (int i = 0; i < n; ++i) {
        const int round =
            boundary - 1 + static_cast<int>(rng_.below(3));
        if (round < 0 || round >= rounds) continue;
        flip(trace, lane, round, rng_.below(checks));
      }
      break;
    }

    case MutationOp::kClearRegion: {
      // Zero a span of rounds in one lane: escapes saturated/overflowed
      // states and seeds the shrinker with naturally sparse neighbours.
      const int lane = pick_lane();
      const int len = 1 + static_cast<int>(rng_.below(
                              std::max(1, rounds / 2)));
      const int start =
          static_cast<int>(rng_.below(std::max(1, rounds - len + 1)));
      PackedBits zero(checks);
      for (int round = start; round < std::min(rounds, start + len); ++round) {
        trace.set_layer(lane, round, zero);
      }
      break;
    }

    case MutationOp::kSplice:
      // Needs a donor; handled by splice().
      break;
  }
}

void TraceMutator::splice(SyndromeTrace& trace, const SyndromeTrace& donor) {
  if (trace.header().distance != donor.header().distance ||
      trace.lanes() != donor.lanes() || trace.rounds() != donor.rounds()) {
    return;  // geometry mismatch: crossover undefined, leave trace alone
  }
  const int rounds = trace.rounds();
  if (rounds <= 1) return;
  const int cut = 1 + static_cast<int>(rng_.below(rounds - 1));
  for (int lane = 0; lane < trace.lanes(); ++lane) {
    for (int round = cut; round < rounds; ++round) {
      trace.set_layer(lane, round, donor.layer(lane, round));
    }
  }
}

}  // namespace qec::fuzz
