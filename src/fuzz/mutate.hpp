// Defect-pattern mutations over valid QTRC traces: the fuzzer's input
// generator (docs/fuzzing.md section 2 is the taxonomy). Every operator
// edits the in-memory payload only — header dimensions and provenance are
// fixed — so a mutated trace re-serializes through SyndromeTrace::save(),
// which re-derives the FNV-1a checksum, and the hardened loader accepts it
// by construction. The engine, not the loader, is the target.
//
// The operators are shaped by how the engine fails, not by byte entropy:
//   kBitFlips        sparse random defect flips (generic exploration)
//   kBurst           a spatial cluster of defects in one round (a burst
//                    error; stresses dense-window bypass and matching)
//   kRowStreak       the same check repeating across consecutive rounds
//                    (a measurement-error streak; stresses time-like
//                    matching and Reg occupancy growth)
//   kColStreak       a line of adjacent checks in one round (a spatial
//                    chain; stresses path retracing)
//   kWindowCluster   defects packed around multiples of the Reg depth and
//                    thv gate (window-boundary alignment; stresses the
//                    pop/eligibility edge cases and cache-key boundaries)
//   kClearRegion     zeroes a random span of rounds in one lane (escapes
//                    saturated states; gives shrinking a head start)
//   kSplice          rounds [cut, end) replaced by another corpus parent's
//                    (crossover; only between same-geometry parents)
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "stream/trace.hpp"

namespace qec::fuzz {

enum class MutationOp : std::uint8_t {
  kBitFlips = 0,
  kBurst,
  kRowStreak,
  kColStreak,
  kWindowCluster,
  kClearRegion,
  kSplice,  // only via splice(); mutate() never picks it
};

const char* mutation_name(MutationOp op);

/// Engine-shape hints the window-boundary operator aligns against.
struct MutatorConfig {
  int reg_depth = 7;
  int thv = 3;
};

class TraceMutator {
 public:
  explicit TraceMutator(std::uint64_t seed, MutatorConfig config = {})
      : rng_(seed), config_(config) {}

  /// Applies one randomly chosen operator (never kSplice) in place.
  /// Returns the operator used.
  MutationOp mutate(SyndromeTrace& trace);

  /// Applies a specific operator in place.
  void apply(SyndromeTrace& trace, MutationOp op);

  /// Crossover: replaces rounds [cut, end) of `trace` with `donor`'s.
  /// Both traces must share (distance, lanes, rounds) — callers pick a
  /// same-geometry donor from the corpus.
  void splice(SyndromeTrace& trace, const SyndromeTrace& donor);

  Xoshiro256ss& rng() { return rng_; }

 private:
  /// Flips one check bit of (lane, round) through the set_layer API.
  void flip(SyndromeTrace& trace, int lane, int round, std::size_t check);

  Xoshiro256ss rng_;
  MutatorConfig config_;
};

}  // namespace qec::fuzz
