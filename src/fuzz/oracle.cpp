#include "fuzz/oracle.hpp"

#include <memory>
#include <sstream>
#include <utility>

#include "qecool/decode_cache.hpp"
#include "qecool/probe.hpp"
#include "surface_code/planar_lattice.hpp"

namespace qec::fuzz {
namespace {

/// Everything a lane run produces that the arms must agree on. Cache
/// counters are deliberately excluded: they are observability, not
/// outcome, and legitimately differ between arms.
struct LaneOutcome {
  bool overflow = false;
  bool drained = false;
  int rounds_stepped = 0;
  int popped_layers = 0;
  BitVec correction;
  std::uint64_t total_cycles = 0;
  std::vector<std::uint64_t> layer_cycles;
  std::uint64_t pair_matches = 0;
  std::uint64_t self_matches = 0;
  std::uint64_t boundary_matches = 0;
  std::vector<std::uint64_t> vertical_hist;
  /// Layers popped by each round's spend(), real rounds then drain rounds
  /// — the arms must agree on *when* work happened, not just the totals.
  std::vector<int> pops_per_round;
};

/// First field (if any) where two outcomes disagree, as a human-readable
/// detail string. Empty when identical.
std::string describe_mismatch(const LaneOutcome& a, const LaneOutcome& b) {
  std::ostringstream out;
  const auto field = [&out](const char* name, auto lhs, auto rhs) {
    if (lhs != rhs && out.tellp() == 0) {
      out << name << ": " << lhs << " vs " << rhs;
    }
  };
  field("overflow", a.overflow, b.overflow);
  field("drained", a.drained, b.drained);
  field("rounds_stepped", a.rounds_stepped, b.rounds_stepped);
  field("popped_layers", a.popped_layers, b.popped_layers);
  field("total_cycles", a.total_cycles, b.total_cycles);
  field("pair_matches", a.pair_matches, b.pair_matches);
  field("self_matches", a.self_matches, b.self_matches);
  field("boundary_matches", a.boundary_matches, b.boundary_matches);
  if (out.tellp() == 0 && a.correction != b.correction) {
    int weight_a = 0, weight_b = 0;
    for (const auto bit : a.correction) weight_a += bit ? 1 : 0;
    for (const auto bit : b.correction) weight_b += bit ? 1 : 0;
    out << "correction differs (weight " << weight_a << " vs " << weight_b
        << ")";
  }
  if (out.tellp() == 0 && a.layer_cycles != b.layer_cycles) {
    out << "per-layer cycle attribution differs";
  }
  if (out.tellp() == 0 && a.vertical_hist != b.vertical_hist) {
    out << "vertical match histogram differs";
  }
  if (out.tellp() == 0 && a.pops_per_round != b.pops_per_round) {
    out << "per-round pop sequence differs";
  }
  return out.str();
}

/// EngineProbe asserting the structural invariants and feeding controller
/// coverage. Violations accumulate as strings; the harness drains them
/// into the report after each lane run.
class InvariantProbe : public EngineProbe {
 public:
  InvariantProbe(int reg_depth, int nlimit, int rows, FeatureSet* features)
      : reg_depth_(reg_depth),
        nlimit_(nlimit),
        rows_(rows),
        features_(features) {}

  void on_push(bool accepted, int stored_layers, int reg_depth) override {
    if (stored_layers > reg_depth) {
      fail("push left occupancy " + std::to_string(stored_layers) +
           " > reg_depth " + std::to_string(reg_depth));
    }
    if (!accepted && stored_layers != reg_depth) {
      fail("push rejected at occupancy " + std::to_string(stored_layers) +
           " with reg_depth " + std::to_string(reg_depth));
    }
    if (accepted) ++pushes_;
  }

  void on_pop(int stored_layers) override {
    if (stored_layers < 1) fail("pop with no stored layer");
    ++pops_;
    if (pops_ > pushes_) {
      fail("pop #" + std::to_string(pops_) + " without a prior push (" +
           std::to_string(pushes_) + " pushed)");
    }
  }

  void on_run(std::uint64_t budget, std::uint64_t consumed,
              std::uint64_t total_cycles, int stored_layers, int base_depth,
              int hop_limit, int row) override {
    // The budget loop checks `spent < budget` before each action and the
    // final action's charge may overshoot (engine.cpp run_scan), so the
    // sound invariant is consumed <= budget + one worst-case iteration:
    // request + timeout wait (<= nlimit) + a match commit (two path
    // retraces + wait, each <= nlimit) + per-pass overhead, pop, and a
    // bulk row skip (< rows). Anything past that is a runaway loop.
    const std::uint64_t slack =
        4u * static_cast<std::uint64_t>(nlimit_) +
        static_cast<std::uint64_t>(rows_) + 16;
    if (budget != QecoolEngine::kUnlimited && consumed > budget + slack) {
      fail("run consumed " + std::to_string(consumed) + " > budget " +
           std::to_string(budget) + " + slack " + std::to_string(slack));
    }
    if (total_cycles - last_total_ != consumed) {
      fail("cycle counter advanced " +
           std::to_string(total_cycles - last_total_) + " but run reported " +
           std::to_string(consumed));
    }
    last_total_ = total_cycles;
    if (stored_layers < 0 || stored_layers > reg_depth_) {
      fail("post-run occupancy " + std::to_string(stored_layers) +
           " out of [0, " + std::to_string(reg_depth_) + "]");
    }
    if (base_depth < 0 || (stored_layers > 0 && base_depth >= stored_layers) ||
        (stored_layers == 0 && base_depth != 0)) {
      fail("post-run base depth " + std::to_string(base_depth) +
           " out of range for occupancy " + std::to_string(stored_layers));
    }
    if (hop_limit < 1 || hop_limit > nlimit_) {
      fail("post-run hop limit " + std::to_string(hop_limit) +
           " out of [1, " + std::to_string(nlimit_) + "]");
    }
    if (row < 0 || row > rows_) {
      fail("post-run row " + std::to_string(row) + " out of [0, " +
           std::to_string(rows_) + "]");
    }
    if (features_) {
      features_->add(Feature::kController,
                     static_cast<std::uint32_t>(base_depth) * 64u +
                         static_cast<std::uint32_t>(hop_limit & 63));
    }
  }

  std::vector<std::string> take_violations() {
    return std::exchange(violations_, {});
  }

 private:
  void fail(std::string what) {
    // Bound the noise: a broken engine trips the same invariant every
    // round; the first few occurrences carry all the signal.
    if (violations_.size() < 8) violations_.push_back(std::move(what));
  }

  int reg_depth_;
  int nlimit_;
  int rows_;
  FeatureSet* features_;
  std::uint64_t pushes_ = 0;
  std::uint64_t pops_ = 0;
  std::uint64_t last_total_ = 0;
  std::vector<std::string> violations_;
};

enum class Arm { kBaseline, kCache, kCacheReplay, kCheckpoint, kUnpacked };

const char* arm_name(Arm arm) {
  switch (arm) {
    case Arm::kBaseline:
      return "baseline";
    case Arm::kCache:
      return "cache";
    case Arm::kCacheReplay:
      return "cache-replay";
    case Arm::kCheckpoint:
      return "checkpoint";
    case Arm::kUnpacked:
      return "unpacked";
  }
  return "?";
}

struct LaneRun {
  LaneOutcome outcome;
  std::vector<std::string> violations;   ///< invariant probe findings
  std::vector<std::string> checkpoint_errors;  ///< snapshot disagreements
  DecodeCacheStats cache;
};

/// Streams one lane of `trace` through a fresh stepper: push + spend per
/// round (mirroring run_online / the streaming service), then clean drain
/// rounds up to the bound. `cache` may be shared across lanes.
LaneRun run_lane(const PlanarLattice& lattice, const SyndromeTrace& trace,
                 int lane, const OracleConfig& config, Arm arm,
                 DecodeCache* cache, FeatureSet* features) {
  OnlineConfig online = config.online;
  online.engine.test_fault = config.fault;
  LaneRun run;
  OnlineStepper stepper(lattice, online);
  InvariantProbe probe(online.engine.reg_depth,
                       stepper.engine().hop_limit_bound(),
                       lattice.check_rows(), features);
  stepper.set_probe(&probe);
  if (cache != nullptr) stepper.set_decode_cache(cache);

  int prev_m = 0;
  const auto observe = [&](int pops) {
    const int m = stepper.engine().stored_layers();
    if (features) {
      features->add(Feature::kOccupancy, static_cast<std::uint32_t>(m));
      features->add(Feature::kOccupancyEdge,
                    static_cast<std::uint32_t>(prev_m) * 16u +
                        static_cast<std::uint32_t>(m));
      const int slack = online.engine.reg_depth - m;
      features->add(Feature::kProximity,
                    static_cast<std::uint32_t>(slack < 3 ? slack : 3));
      features->add(Feature::kPops,
                    static_cast<std::uint32_t>(pops < 7 ? pops : 7));
    }
    prev_m = m;
  };

  const auto maybe_checkpoint = [&] {
    if (arm != Arm::kCheckpoint || stepper.overflowed()) return;
    const int m = stepper.engine().stored_layers();
    if (m < config.checkpoint_min_depth) return;
    const StepperCheckpoint cp = stepper.checkpoint();
    const auto check = [&run](const char* what, auto got, auto want) {
      if (got != want && run.checkpoint_errors.size() < 8) {
        std::ostringstream out;
        out << "checkpoint snapshot " << what << ": " << got
            << " but engine says " << want;
        run.checkpoint_errors.push_back(out.str());
      }
    };
    check("rounds_accepted", cp.rounds_accepted, stepper.rounds_stepped());
    check("stored_layers", cp.stored_layers,
          stepper.engine().stored_layers());
    check("popped_layers", cp.popped_layers, stepper.engine().popped_layers());
    check("total_cycles", cp.total_cycles, stepper.engine().total_cycles());
    if (cp.correction != stepper.engine().correction() &&
        run.checkpoint_errors.size() < 8) {
      run.checkpoint_errors.push_back(
          "checkpoint snapshot correction differs from engine correction");
    }
    stepper.resume();
    if (features) {
      features->add(Feature::kPause, static_cast<std::uint32_t>(m));
    }
  };

  for (int round = 0; round < trace.rounds(); ++round) {
    maybe_checkpoint();
    bool pushed;
    if (arm == Arm::kUnpacked) {
      pushed = stepper.push(trace.layer(lane, round).to_bits());
    } else {
      pushed = stepper.push(trace.layer(lane, round));
    }
    if (!pushed) break;  // Reg overflow: terminal, the lane is dead
    stepper.spend(online.cycles_per_round);
    run.outcome.pops_per_round.push_back(stepper.last_spend_pops());
    observe(stepper.last_spend_pops());
  }
  if (!stepper.overflowed()) {
    for (int extra = 0; extra < online.max_drain_rounds; ++extra) {
      if (stepper.drained()) break;
      maybe_checkpoint();
      if (!stepper.push_clean()) break;
      stepper.spend(online.cycles_per_round);
      run.outcome.pops_per_round.push_back(stepper.last_spend_pops());
      observe(stepper.last_spend_pops());
    }
  }

  const OnlineResult result = stepper.result();
  run.outcome.overflow = result.overflow;
  run.outcome.drained = result.drained;
  run.outcome.rounds_stepped = stepper.rounds_stepped();
  run.outcome.popped_layers = stepper.engine().popped_layers();
  run.outcome.correction = result.correction;
  run.outcome.total_cycles = result.total_cycles;
  run.outcome.layer_cycles = result.layer_cycles;
  run.outcome.pair_matches = result.matches.pair_matches;
  run.outcome.self_matches = result.matches.self_matches;
  run.outcome.boundary_matches = result.matches.boundary_matches;
  run.outcome.vertical_hist = result.matches.vertical_hist;
  run.cache = stepper.engine().cache_stats();
  run.violations = probe.take_violations();
  if (features) {
    features->add(Feature::kLaneEnd,
                  (run.outcome.overflow ? 1u : 0u) |
                      (run.outcome.drained ? 2u : 0u));
  }
  return run;
}

void report_violations(OracleReport& report, const LaneRun& run, Arm arm,
                       int lane) {
  for (const std::string& v : run.violations) {
    report.divergences.push_back(
        {"invariant", lane, std::string(arm_name(arm)) + " arm: " + v});
  }
  for (const std::string& v : run.checkpoint_errors) {
    report.divergences.push_back({"checkpoint", lane, v});
  }
}

void check_bitops(const SyndromeTrace& trace, OracleReport& report) {
  const auto check_word = [&report](std::uint64_t w) {
    if (qec_popcount64(w) != qec_popcount64_swar(w)) {
      std::ostringstream out;
      out << "popcount backend disagrees with SWAR reference on 0x"
          << std::hex << w;
      report.divergences.push_back({"bitops", -1, out.str()});
      return;
    }
    if (w != 0 && qec_countr_zero64(w) != qec_countr_zero64_swar(w)) {
      std::ostringstream out;
      out << "countr_zero backend disagrees with SWAR reference on 0x"
          << std::hex << w;
      report.divergences.push_back({"bitops", -1, out.str()});
    }
  };
  // Edge words first, then every word the trace actually carries.
  check_word(0);
  check_word(~std::uint64_t{0});
  check_word(0x5555555555555555ULL);
  check_word(0xAAAAAAAAAAAAAAAAULL);
  for (int b = 0; b < 64; ++b) check_word(std::uint64_t{1} << b);
  for (int lane = 0; lane < trace.lanes(); ++lane) {
    for (int round = 0; round < trace.rounds(); ++round) {
      const PackedBits& layer = trace.layer(lane, round);
      for (std::size_t w = 0; w < layer.num_words(); ++w) {
        check_word(layer.word(w));
        if (report.divergences.size() > 8) return;  // enough signal
      }
    }
  }
}

}  // namespace

OracleReport run_oracles(const SyndromeTrace& trace,
                         const OracleConfig& config) {
  OracleReport report;
  report.lanes = trace.lanes();
  const PlanarLattice lattice(static_cast<int>(trace.header().distance));

  if (config.arm_bitops) check_bitops(trace, report);

  const DecodeCacheConfig& cache_config = config.online.engine.cache;
  const bool cache_arm = config.arm_cache && cache_config.enabled &&
                         cache_config.entries > 0;
  // One cache shared by every lane, lanes executed in order — the same
  // shard-sequential discipline the streaming service uses, so cross-lane
  // hits are exercised and the run stays deterministic.
  std::unique_ptr<DecodeCache> cache =
      cache_arm ? std::make_unique<DecodeCache>(cache_config.entries)
                : nullptr;

  for (int lane = 0; lane < trace.lanes(); ++lane) {
    const LaneRun baseline = run_lane(lattice, trace, lane, config,
                                      Arm::kBaseline, nullptr,
                                      &report.features);
    report_violations(report, baseline, Arm::kBaseline, lane);

    const auto compare = [&](const LaneRun& other, Arm arm) {
      report_violations(report, other, arm, lane);
      const std::string detail =
          describe_mismatch(baseline.outcome, other.outcome);
      if (!detail.empty()) {
        report.divergences.push_back({arm_name(arm), lane, detail});
      }
    };

    if (cache_arm) {
      const LaneRun with_cache = run_lane(lattice, trace, lane, config,
                                          Arm::kCache, cache.get(),
                                          &report.features);
      compare(with_cache, Arm::kCache);
      // Guaranteed-recurrence pass: the same lane again against the same
      // shard replays every window the first pass just installed (same
      // push sequence => same keys), so replay correctness is exercised
      // on every input — random mutation alone rarely recreates a window
      // bit-for-bit, and a replay bug that only corrupts hits would
      // otherwise hide behind a cold cache.
      const LaneRun replayed = run_lane(lattice, trace, lane, config,
                                        Arm::kCacheReplay, cache.get(),
                                        &report.features);
      compare(replayed, Arm::kCacheReplay);
      report.cache_hits += with_cache.cache.hits + replayed.cache.hits;
      report.cache_misses += with_cache.cache.misses + replayed.cache.misses;
      // Cache-mix feature: which of hit/zero/bypass the lane exercised.
      report.features.add(Feature::kCacheMix,
                          (replayed.cache.hits ? 1u : 0u) |
                              (with_cache.cache.zero_rounds ? 2u : 0u) |
                              (with_cache.cache.bypasses ? 4u : 0u));
    }
    if (config.arm_checkpoint) {
      compare(run_lane(lattice, trace, lane, config, Arm::kCheckpoint,
                       nullptr, &report.features),
              Arm::kCheckpoint);
    }
    if (config.arm_unpacked) {
      compare(run_lane(lattice, trace, lane, config, Arm::kUnpacked, nullptr,
                       nullptr),
              Arm::kUnpacked);
    }
    if (report.divergences.size() >= 32) break;  // plenty to minimize on
  }
  return report;
}

std::string summarize_report(const OracleReport& report) {
  std::ostringstream out;
  if (report.ok()) {
    out << "ok, " << report.features.count() << " features, "
        << report.cache_hits << " cache hits";
    return out.str();
  }
  out << report.divergences.size() << " divergence(s):";
  for (std::size_t i = 0; i < report.divergences.size() && i < 3; ++i) {
    const Divergence& d = report.divergences[i];
    out << " [" << d.oracle;
    if (d.lane >= 0) out << "@lane" << d.lane;
    out << "] " << d.detail << ";";
  }
  return out.str();
}

}  // namespace qec::fuzz
