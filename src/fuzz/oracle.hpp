// Differential-oracle harness: runs every lane of a QTRC trace through the
// on-line engine several ways that are contractually bit-identical, and
// reports any disagreement (DESIGN.md section 14, docs/fuzzing.md).
//
// Oracles:
//   cache       cache=off vs cache=on outcomes must match bit for bit
//               (correction, overflow/drained, cycle accounting, per-layer
//               attribution, match statistics, per-round pop sequence) —
//               the decode-cache determinism contract of section 13. A
//               second cache pass per lane ("cache-replay") reruns the
//               lane against the same shared cache, so every window the
//               first pass installed is *replayed* — replay-path bugs are
//               detectable on every input instead of only when random
//               mutation happens to make a window recur.
//   checkpoint  a checkpoint()/resume() pair with no intervening activity
//               is a perfect no-op (the admission-control contract of
//               section 9), and every checkpoint snapshot must agree with
//               the engine's own counters.
//   unpacked    the byte-per-bit push path equals the packed hot path —
//               the PR 6 datapath-equivalence contract.
//   bitops      the configured popcount/ctz backend agrees with the
//               portable SWAR reference on every trace word (plus edge
//               words) — the backend-equivalence contract of section 11.
//   invariant   EngineProbe structural checks on every push/pop/run: Reg
//               occupancy <= reg_depth, rejects only when full, no pop
//               without a prior push, consumed <= budget, the cycle
//               counter advances by exactly what run() reports, and the
//               resumable controller position stays in range.
//
// Alongside the verdict, the harness extracts the engine-state coverage
// features (fuzz/coverage.hpp) that drive the fuzzer's feedback loop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/coverage.hpp"
#include "qecool/online_runner.hpp"
#include "stream/trace.hpp"

namespace qec::fuzz {

/// One oracle disagreement or invariant violation.
struct Divergence {
  std::string oracle;  ///< "cache", "cache-replay", "checkpoint",
                       ///< "unpacked", "bitops", "invariant"
  int lane = -1;       ///< -1 for trace-level oracles (bitops)
  std::string detail;
};

struct OracleConfig {
  /// Engine knobs, per-round cycle budget (<= 0 unconstrained), and drain
  /// bound shared by every arm. online.engine.cache configures the cache
  /// arm (enabled=false or entries<=0 skips that oracle); the baseline arm
  /// never attaches a cache regardless.
  OnlineConfig online;

  /// Occupancy at which the checkpoint arm inserts a checkpoint()/resume()
  /// no-op pair before the round's push — input-dependent, so pause
  /// transitions show up in coverage. <= 0 pairs on every round.
  int checkpoint_min_depth = 2;

  bool arm_cache = true;
  bool arm_checkpoint = true;
  bool arm_unpacked = true;
  bool arm_bitops = true;

  /// Test-only planted bug (QecoolConfig::kFault*), plumbed into every
  /// arm's engine config — the mutation-testing self-check that proves
  /// the oracles can detect what they claim to detect.
  int fault = 0;

  OracleConfig() { online.max_drain_rounds = 256; }
};

struct OracleReport {
  std::vector<Divergence> divergences;
  /// Engine-state features the run touched (baseline + arms).
  FeatureSet features;
  int lanes = 0;
  /// Cache-arm counters, aggregated over lanes (reporting only).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  bool ok() const { return divergences.empty(); }
};

/// Runs the full oracle battery over `trace`. Deterministic: a pure
/// function of (trace, config). Lanes run sequentially in lane order; the
/// cache arm shares one cache across lanes (lane order = shard order).
OracleReport run_oracles(const SyndromeTrace& trace,
                         const OracleConfig& config);

/// One-line summary of a report ("ok, 17 features" or "3 divergences:
/// cache@lane2 ..."), for tool output.
std::string summarize_report(const OracleReport& report);

}  // namespace qec::fuzz
