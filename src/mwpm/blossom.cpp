#include "mwpm/blossom.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace qec {
namespace {
constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
}

BlossomMatcher::BlossomMatcher(int n) : n_(n) {
  if (n < 0) throw std::invalid_argument("negative vertex count");
  n_total_ = n + n / 2 + 2;
  input_weight_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                       0);
}

void BlossomMatcher::set_weight(int u, int v, std::int64_t weight) {
  assert(u >= 0 && u < n_ && v >= 0 && v < n_ && u != v && weight >= 0);
  input_weight_[static_cast<std::size_t>(u) * n_ + v] = weight;
  input_weight_[static_cast<std::size_t>(v) * n_ + u] = weight;
}

std::int64_t BlossomMatcher::edge_delta(const Edge& e) const {
  return lab_[e.u] + lab_[e.v] - g_[e.u][e.v].w * 2;
}

void BlossomMatcher::update_slack(int u, int x) {
  if (!slack_[x] || edge_delta(g_[u][x]) < edge_delta(g_[slack_[x]][x])) {
    slack_[x] = u;
  }
}

void BlossomMatcher::set_slack(int x) {
  slack_[x] = 0;
  for (int u = 1; u <= n_; ++u) {
    if (g_[u][x].w > 0 && st_[u] != x && s_[st_[u]] == 0) update_slack(u, x);
  }
}

void BlossomMatcher::queue_push(int x) {
  if (x <= n_) {
    queue_.push_back(x);
  } else {
    for (int sub : flower_[x]) queue_push(sub);
  }
}

void BlossomMatcher::set_st(int x, int b) {
  st_[x] = b;
  if (x > n_) {
    for (int sub : flower_[x]) set_st(sub, b);
  }
}

int BlossomMatcher::get_pr(int b, int xr) {
  const auto it = std::find(flower_[b].begin(), flower_[b].end(), xr);
  assert(it != flower_[b].end());
  int pr = static_cast<int>(it - flower_[b].begin());
  if (pr % 2 == 1) {
    // Walk the even way around the cycle instead.
    std::reverse(flower_[b].begin() + 1, flower_[b].end());
    return static_cast<int>(flower_[b].size()) - pr;
  }
  return pr;
}

void BlossomMatcher::set_match(int u, int v) {
  match_[u] = g_[u][v].v;
  if (u > n_) {
    const Edge e = g_[u][v];
    const int xr = flower_from_[u][e.u];
    const int pr = get_pr(u, xr);
    for (int i = 0; i < pr; ++i) {
      set_match(flower_[u][i], flower_[u][i ^ 1]);
    }
    set_match(xr, v);
    std::rotate(flower_[u].begin(), flower_[u].begin() + pr, flower_[u].end());
  }
}

void BlossomMatcher::augment(int u, int v) {
  while (true) {
    const int xnv = st_[match_[u]];
    set_match(u, v);
    if (!xnv) return;
    set_match(xnv, st_[pa_[xnv]]);
    u = st_[pa_[xnv]];
    v = xnv;
  }
}

int BlossomMatcher::get_lca(int u, int v) {
  for (++lca_timer_; u || v; std::swap(u, v)) {
    if (u == 0) continue;
    if (vis_[u] == lca_timer_) return u;
    vis_[u] = lca_timer_;
    u = st_[match_[u]];
    if (u) u = st_[pa_[u]];
  }
  return 0;
}

void BlossomMatcher::add_blossom(int u, int lca, int v) {
  int b = n_ + 1;
  while (b <= n_x_ && st_[b]) ++b;
  if (b > n_x_) ++n_x_;
  assert(b < n_total_);
  lab_[b] = 0;
  s_[b] = 0;
  match_[b] = match_[lca];
  flower_[b].clear();
  flower_[b].push_back(lca);
  for (int x = u, y; x != lca; x = st_[pa_[y]]) {
    flower_[b].push_back(x);
    flower_[b].push_back(y = st_[match_[x]]);
    queue_push(y);
  }
  std::reverse(flower_[b].begin() + 1, flower_[b].end());
  for (int x = v, y; x != lca; x = st_[pa_[y]]) {
    flower_[b].push_back(x);
    flower_[b].push_back(y = st_[match_[x]]);
    queue_push(y);
  }
  set_st(b, b);
  for (int x = 1; x <= n_x_; ++x) g_[b][x].w = g_[x][b].w = 0;
  for (int x = 1; x <= n_; ++x) flower_from_[b][x] = 0;
  for (int xs : flower_[b]) {
    for (int x = 1; x <= n_x_; ++x) {
      if (g_[b][x].w == 0 || edge_delta(g_[xs][x]) < edge_delta(g_[b][x])) {
        g_[b][x] = g_[xs][x];
        g_[x][b] = g_[x][xs];
      }
    }
    for (int x = 1; x <= n_; ++x) {
      if (flower_from_[xs][x]) flower_from_[b][x] = xs;
    }
  }
  set_slack(b);
}

void BlossomMatcher::expand_blossom(int b) {
  for (int sub : flower_[b]) set_st(sub, sub);
  const int xr = flower_from_[b][g_[b][pa_[b]].u];
  const int pr = get_pr(b, xr);
  for (int i = 0; i < pr; i += 2) {
    const int xs = flower_[b][i];
    const int xns = flower_[b][i + 1];
    pa_[xs] = g_[xns][xs].u;
    s_[xs] = 1;
    s_[xns] = 0;
    slack_[xs] = 0;
    set_slack(xns);
    queue_push(xns);
  }
  s_[xr] = 1;
  pa_[xr] = pa_[b];
  for (std::size_t i = static_cast<std::size_t>(pr) + 1; i < flower_[b].size();
       ++i) {
    const int xs = flower_[b][i];
    s_[xs] = -1;
    set_slack(xs);
  }
  st_[b] = 0;
}

bool BlossomMatcher::on_found_edge(const Edge& e) {
  const int u = st_[e.u];
  const int v = st_[e.v];
  if (s_[v] == -1) {
    pa_[v] = e.u;
    s_[v] = 1;
    const int nu = st_[match_[v]];
    slack_[v] = slack_[nu] = 0;
    s_[nu] = 0;
    queue_push(nu);
  } else if (s_[v] == 0) {
    const int lca = get_lca(u, v);
    if (!lca) {
      augment(u, v);
      augment(v, u);
      return true;
    }
    add_blossom(u, lca, v);
  }
  return false;
}

bool BlossomMatcher::matching_phase() {
  std::fill(s_.begin() + 1, s_.begin() + n_x_ + 1, -1);
  std::fill(slack_.begin() + 1, slack_.begin() + n_x_ + 1, 0);
  queue_.clear();
  queue_head_ = 0;
  for (int x = 1; x <= n_x_; ++x) {
    if (st_[x] == x && !match_[x]) {
      pa_[x] = 0;
      s_[x] = 0;
      queue_push(x);
    }
  }
  if (queue_.empty()) return false;
  while (true) {
    while (queue_head_ < queue_.size()) {
      const int u = queue_[queue_head_++];
      if (s_[st_[u]] == 1) continue;
      for (int v = 1; v <= n_; ++v) {
        if (g_[u][v].w > 0 && st_[u] != st_[v]) {
          if (edge_delta(g_[u][v]) == 0) {
            if (on_found_edge(g_[u][v])) return true;
          } else {
            update_slack(u, st_[v]);
          }
        }
      }
    }
    std::int64_t d = kInf;
    for (int b = n_ + 1; b <= n_x_; ++b) {
      if (st_[b] == b && s_[b] == 1) d = std::min(d, lab_[b] / 2);
    }
    for (int x = 1; x <= n_x_; ++x) {
      if (st_[x] == x && slack_[x]) {
        if (s_[x] == -1) {
          d = std::min(d, edge_delta(g_[slack_[x]][x]));
        } else if (s_[x] == 0) {
          d = std::min(d, edge_delta(g_[slack_[x]][x]) / 2);
        }
      }
    }
    for (int u = 1; u <= n_; ++u) {
      if (s_[st_[u]] == 0) {
        if (lab_[u] <= d) return false;  // dual would hit zero: no better
        lab_[u] -= d;
      } else if (s_[st_[u]] == 1) {
        lab_[u] += d;
      }
    }
    for (int b = n_ + 1; b <= n_x_; ++b) {
      if (st_[b] == b) {
        if (s_[b] == 0) {
          lab_[b] += d * 2;
        } else if (s_[b] == 1) {
          lab_[b] -= d * 2;
        }
      }
    }
    queue_.clear();
    queue_head_ = 0;
    for (int x = 1; x <= n_x_; ++x) {
      if (st_[x] == x && slack_[x] && st_[slack_[x]] != x &&
          edge_delta(g_[slack_[x]][x]) == 0) {
        if (on_found_edge(g_[slack_[x]][x])) return true;
      }
    }
    for (int b = n_ + 1; b <= n_x_; ++b) {
      if (st_[b] == b && s_[b] == 1 && lab_[b] == 0) expand_blossom(b);
    }
  }
}

std::vector<int> BlossomMatcher::solve() {
  matching_weight_ = 0;
  if (n_ == 0) return {};
  if (n_ % 2 != 0) {
    throw std::invalid_argument("perfect matching needs an even vertex count");
  }
  // Transform minimisation into the maximisation form the primal-dual core
  // works in: w' = (w_max + 1) - w, so every edge weight is >= 1 (the core
  // uses w > 0 as the edge-existence test) and minimising Sum(w) over
  // perfect matchings equals maximising Sum(w').
  std::int64_t w_max = 0;
  for (std::int64_t w : input_weight_) w_max = std::max(w_max, w);
  const std::int64_t offset = w_max + 1;

  g_.assign(static_cast<std::size_t>(n_total_),
            std::vector<Edge>(static_cast<std::size_t>(n_total_)));
  for (int u = 1; u <= n_; ++u) {
    for (int v = 1; v <= n_; ++v) {
      std::int64_t w = 0;
      if (u != v) {
        w = offset -
            input_weight_[static_cast<std::size_t>(u - 1) * n_ + (v - 1)];
      }
      g_[u][v] = Edge{u, v, w};
    }
  }
  for (int u = n_ + 1; u < n_total_; ++u) {
    for (int v = 0; v < n_total_; ++v) {
      g_[u][v] = Edge{u, v, 0};
      g_[v][u] = Edge{v, u, 0};
    }
  }

  lab_.assign(static_cast<std::size_t>(n_total_), 0);
  match_.assign(static_cast<std::size_t>(n_total_), 0);
  slack_.assign(static_cast<std::size_t>(n_total_), 0);
  st_.assign(static_cast<std::size_t>(n_total_), 0);
  pa_.assign(static_cast<std::size_t>(n_total_), 0);
  s_.assign(static_cast<std::size_t>(n_total_), -1);
  vis_.assign(static_cast<std::size_t>(n_total_), 0);
  flower_.assign(static_cast<std::size_t>(n_total_), {});
  flower_from_.assign(static_cast<std::size_t>(n_total_),
                      std::vector<int>(static_cast<std::size_t>(n_ + 1), 0));
  lca_timer_ = 0;

  n_x_ = n_;
  for (int u = 0; u <= n_; ++u) st_[u] = u;
  for (int u = 1; u <= n_; ++u) {
    for (int v = 1; v <= n_; ++v) {
      flower_from_[u][v] = (u == v) ? u : 0;
    }
  }
  for (int u = 1; u <= n_; ++u) lab_[u] = offset;  // max transformed weight

  while (matching_phase()) {
  }

  std::vector<int> mate(static_cast<std::size_t>(n_), -1);
  for (int u = 1; u <= n_; ++u) {
    if (match_[u]) {
      mate[u - 1] = match_[u] - 1;
      if (match_[u] < u) {
        matching_weight_ +=
            input_weight_[static_cast<std::size_t>(u - 1) * n_ +
                          (match_[u] - 1)];
      }
    }
  }
  return mate;
}

}  // namespace qec
