// Exact minimum-weight perfect matching on dense general graphs.
//
// This is the primal-dual blossom algorithm (Edmonds) in its O(V^3)
// adjacency-matrix formulation with doubled dual variables so that all duals
// stay integral for integer weights. It is the exact matcher behind the
// paper's MWPM baseline [Fowler 2015]; we implement it from scratch and
// property-test it against exhaustive bitmask-DP matching on small random
// graphs (see tests/mwpm_blossom_test.cpp).
//
// The matcher works on a COMPLETE graph: every pair of distinct vertices
// must carry a weight. The space-time matching graph of mwpm/matching_graph
// arranges this with a large sentinel weight on forbidden pairs.
#pragma once

#include <cstdint>
#include <vector>

namespace qec {

class BlossomMatcher {
 public:
  /// n vertices, 0-indexed externally. For a perfect matching to exist on a
  /// complete graph n must be even.
  explicit BlossomMatcher(int n);

  /// Sets the (symmetric) weight of edge {u, v}; u != v, weight >= 0.
  void set_weight(int u, int v, std::int64_t weight);

  /// Solves minimum-weight perfect matching. Returns mate[v] for every
  /// vertex (0-indexed). Requires every pair to have been given a weight
  /// (or relies on the default, which is 0).
  std::vector<int> solve();

  /// Total weight of the matching found by the last solve().
  std::int64_t matching_weight() const { return matching_weight_; }

 private:
  struct Edge {
    int u = 0;
    int v = 0;
    std::int64_t w = 0;
  };

  std::int64_t edge_delta(const Edge& e) const;
  void update_slack(int u, int x);
  void set_slack(int x);
  void queue_push(int x);
  void set_st(int x, int b);
  int get_pr(int b, int xr);
  void set_match(int u, int v);
  void augment(int u, int v);
  int get_lca(int u, int v);
  void add_blossom(int u, int lca, int v);
  void expand_blossom(int b);
  bool on_found_edge(const Edge& e);
  bool matching_phase();

  int n_ = 0;        // real vertices (1-indexed internally)
  int n_total_ = 0;  // capacity incl. blossom ids
  int n_x_ = 0;      // current highest node id in use
  std::vector<std::vector<Edge>> g_;
  std::vector<std::int64_t> lab_;
  std::vector<int> match_, slack_, st_, pa_, s_, vis_;
  std::vector<std::vector<int>> flower_;
  std::vector<std::vector<int>> flower_from_;
  std::vector<int> queue_;
  std::size_t queue_head_ = 0;
  std::vector<std::int64_t> input_weight_;  // row-major, minimisation weights
  std::int64_t matching_weight_ = 0;
  int lca_timer_ = 0;
};

}  // namespace qec
