#include "mwpm/matching_graph.hpp"

#include <cmath>

namespace qec {

std::vector<Defect> collect_defects(const PlanarLattice& lattice,
                                    const std::vector<BitVec>& difference) {
  std::vector<Defect> defects;
  for (int t = 0; t < static_cast<int>(difference.size()); ++t) {
    const auto& layer = difference[static_cast<std::size_t>(t)];
    for (int idx = 0; idx < lattice.num_checks(); ++idx) {
      if (layer[static_cast<std::size_t>(idx)]) {
        const CheckCoord c = lattice.check_coord(idx);
        defects.push_back(Defect{c.row, c.col, t});
      }
    }
  }
  return defects;
}

int defect_distance(const Defect& a, const Defect& b) {
  return std::abs(a.row - b.row) + std::abs(a.col - b.col) +
         std::abs(a.t - b.t);
}

BitVec pairs_to_correction(const PlanarLattice& lattice,
                           const std::vector<MatchedPair>& pairs) {
  BitVec correction(static_cast<std::size_t>(lattice.num_data()), 0);
  for (const auto& pair : pairs) {
    std::vector<int> path;
    if (pair.to_boundary) {
      path = lattice.boundary_path({pair.a.row, pair.a.col});
    } else {
      path = lattice.l_path({pair.a.row, pair.a.col},
                            {pair.b.row, pair.b.col});
    }
    for (int q : path) correction[static_cast<std::size_t>(q)] ^= 1;
  }
  return correction;
}

}  // namespace qec
