// Space-time matching graph for matching-based decoders.
//
// Defects are the set bits of the difference syndromes. The standard
// boundary construction [Fowler 2015] pairs each defect with a private
// virtual boundary node: defect-defect edges weigh the L1 space-time
// distance, defect-to-own-boundary edges weigh the hop distance to the
// nearest rough boundary, and boundary-boundary edges are free, so unused
// boundary nodes pair off among themselves at zero cost.
#pragma once

#include <cstdint>
#include <vector>

#include "noise/phenomenological.hpp"
#include "surface_code/pauli_frame.hpp"
#include "surface_code/planar_lattice.hpp"

namespace qec {

struct Defect {
  int row = 0;
  int col = 0;
  int t = 0;
  friend bool operator==(const Defect&, const Defect&) = default;
};

/// Extracts the defect list from a history's difference syndromes.
std::vector<Defect> collect_defects(const PlanarLattice& lattice,
                                    const std::vector<BitVec>& difference);

/// L1 space-time separation used as the matching weight.
int defect_distance(const Defect& a, const Defect& b);

/// One matched pair in the output of a matching decoder. `to_boundary`
/// pairs have `b` meaningless.
struct MatchedPair {
  Defect a;
  Defect b;
  bool to_boundary = false;
};

/// Turns matched pairs into a data-qubit correction: defect-defect pairs
/// flip the L-path between the two checks, boundary pairs flip the path to
/// the nearest rough boundary. Time-like components need no data flips.
BitVec pairs_to_correction(const PlanarLattice& lattice,
                           const std::vector<MatchedPair>& pairs);

}  // namespace qec
