#include "mwpm/mwpm_decoder.hpp"

#include "mwpm/blossom.hpp"

namespace qec {
namespace {
// Sentinel for defect-to-foreign-boundary pairs. Never selected by an
// optimal matching because pairing with the defect's own boundary node plus
// a free boundary-boundary edge is always cheaper.
constexpr std::int64_t kForbidden = 1 << 20;
}  // namespace

std::vector<MatchedPair> MwpmDecoder::match_defects(
    const PlanarLattice& lattice, const std::vector<Defect>& defects) {
  const int nd = static_cast<int>(defects.size());
  if (nd == 0) return {};
  // Vertices: [0, nd) defects, [nd, 2*nd) their private boundary nodes.
  BlossomMatcher matcher(2 * nd);
  for (int i = 0; i < nd; ++i) {
    for (int j = i + 1; j < nd; ++j) {
      matcher.set_weight(i, j, defect_distance(defects[static_cast<std::size_t>(i)],
                                               defects[static_cast<std::size_t>(j)]));
      matcher.set_weight(nd + i, nd + j, 0);
    }
    matcher.set_weight(i, nd + i,
                       lattice.boundary_distance(defects[static_cast<std::size_t>(i)].col));
    for (int j = 0; j < nd; ++j) {
      if (j != i) matcher.set_weight(i, nd + j, kForbidden);
    }
  }
  const std::vector<int> mate = matcher.solve();

  std::vector<MatchedPair> pairs;
  for (int i = 0; i < nd; ++i) {
    const int m = mate[static_cast<std::size_t>(i)];
    if (m == nd + i) {
      pairs.push_back({defects[static_cast<std::size_t>(i)], {}, true});
    } else if (m > i && m < nd) {
      pairs.push_back({defects[static_cast<std::size_t>(i)],
                       defects[static_cast<std::size_t>(m)], false});
    }
  }
  return pairs;
}

DecodeResult MwpmDecoder::decode(const PlanarLattice& lattice,
                                 const SyndromeHistory& history) {
  const std::vector<Defect> defects =
      collect_defects(lattice, history.difference);
  const std::vector<MatchedPair> pairs = match_defects(lattice, defects);
  DecodeResult result;
  result.correction = pairs_to_correction(lattice, pairs);
  result.work = defects.size();
  return result;
}

}  // namespace qec
