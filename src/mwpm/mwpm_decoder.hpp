// Minimum-weight perfect matching decoder — the paper's accuracy baseline
// (dashed curves in Fig 4a; first row of Table IV).
#pragma once

#include "decoder/decoder.hpp"
#include "mwpm/matching_graph.hpp"

namespace qec {

class MwpmDecoder final : public Decoder {
 public:
  std::string name() const override { return "MWPM"; }

  DecodeResult decode(const PlanarLattice& lattice,
                      const SyndromeHistory& history) override;

  /// Exposed for tests: matches an arbitrary defect list on a lattice and
  /// returns the matched pairs chosen by exact MWPM.
  static std::vector<MatchedPair> match_defects(
      const PlanarLattice& lattice, const std::vector<Defect>& defects);
};

}  // namespace qec
