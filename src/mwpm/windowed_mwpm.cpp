#include "mwpm/windowed_mwpm.hpp"

#include <algorithm>
#include <stdexcept>

#include "mwpm/mwpm_decoder.hpp"

namespace qec {

WindowedMwpmDecoder::WindowedMwpmDecoder(WindowConfig config)
    : config_(config) {
  if (config.window < 1 || config.guard < 0 || config.guard >= config.window) {
    throw std::invalid_argument("need window >= 1 and 0 <= guard < window");
  }
}

DecodeResult WindowedMwpmDecoder::decode(const PlanarLattice& lattice,
                                         const SyndromeHistory& history) {
  std::vector<Defect> pending;
  std::vector<MatchedPair> committed;
  last_windows_ = 0;

  const int total = history.total_rounds();
  auto run_window = [&](int newest_layer, bool final_flush) {
    ++last_windows_;
    const auto pairs = MwpmDecoder::match_defects(lattice, pending);
    const int commit_before = newest_layer - config_.guard;
    std::vector<std::uint8_t> consumed(pending.size(), 0);
    for (const auto& pair : pairs) {
      const int latest = pair.to_boundary ? pair.a.t
                                          : std::max(pair.a.t, pair.b.t);
      if (!final_flush && latest >= commit_before) continue;
      committed.push_back(pair);
      for (std::size_t i = 0; i < pending.size(); ++i) {
        if (consumed[i]) continue;
        if (pending[i] == pair.a || (!pair.to_boundary && pending[i] == pair.b)) {
          consumed[i] = 1;
        }
      }
    }
    std::vector<Defect> rest;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (!consumed[i]) rest.push_back(pending[i]);
    }
    pending = std::move(rest);
  };

  for (int t = 0; t < total; ++t) {
    const auto& layer = history.difference[static_cast<std::size_t>(t)];
    for (int chk = 0; chk < lattice.num_checks(); ++chk) {
      if (layer[static_cast<std::size_t>(chk)]) {
        const CheckCoord c = lattice.check_coord(chk);
        pending.push_back(Defect{c.row, c.col, t});
      }
    }
    if (t + 1 >= config_.window && !pending.empty()) {
      run_window(t, /*final_flush=*/false);
    }
  }
  if (!pending.empty()) run_window(total - 1, /*final_flush=*/true);

  DecodeResult result;
  result.correction = pairs_to_correction(lattice, committed);
  result.work = static_cast<std::uint64_t>(last_windows_);
  return result;
}

}  // namespace qec
