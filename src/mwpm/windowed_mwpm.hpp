// Sliding-window MWPM: how a software/FPGA matching decoder is actually
// deployed on-line. Not in the paper's evaluation, but the natural point of
// comparison for QECOOL's on-line operation (Fig 3's batch-vs-online
// framing): instead of waiting for the full history, decode a window of W
// layers at a time and commit only matches that are safely in the past.
//
// Scheme: after each new layer t, once at least `window` layers are
// pending, match ALL pending defects with exact MWPM, then commit the pairs
// whose latest involved layer is older than t - guard (they can no longer
// be affected by future syndrome information); committed defects are
// removed. At end of history everything remaining is matched and committed.
//
// window -> infinity recovers batch MWPM exactly; small windows trade
// accuracy for bounded latency, mirroring the thv trade-off of Section
// III-B.
#pragma once

#include "decoder/decoder.hpp"
#include "mwpm/matching_graph.hpp"

namespace qec {

struct WindowConfig {
  /// Layers accumulated before the first decode call.
  int window = 6;
  /// Matches touching the most recent `guard` layers are deferred.
  int guard = 3;
};

class WindowedMwpmDecoder final : public Decoder {
 public:
  explicit WindowedMwpmDecoder(WindowConfig config = {});

  std::string name() const override { return "Windowed-MWPM"; }

  DecodeResult decode(const PlanarLattice& lattice,
                      const SyndromeHistory& history) override;

  /// Number of MWPM invocations during the last decode (latency proxy).
  int last_window_count() const { return last_windows_; }

 private:
  WindowConfig config_;
  int last_windows_ = 0;
};

}  // namespace qec
