#include "noise/circuit_level.hpp"

#include <array>
#include <stdexcept>

namespace qec {
namespace {

// Global CNOT schedule: every check touches its neighbours in this order;
// boundary-row checks idle in the steps where the neighbour is absent.
enum Step : int { kNorth = 0, kWest, kEast, kSouth, kStepCount };

// Neighbour data qubit of check (r, c) for a schedule step, or -1.
int step_partner(const PlanarLattice& lat, int r, int c, int step) {
  switch (step) {
    case kNorth: return r > 0 ? lat.vertical_qubit(r - 1, c) : -1;
    case kWest: return lat.horizontal_qubit(r, c);
    case kEast: return lat.horizontal_qubit(r, c + 1);
    case kSouth: return r < lat.distance() - 1 ? lat.vertical_qubit(r, c) : -1;
    default: return -1;
  }
}

}  // namespace

SyndromeHistory sample_circuit_history(const PlanarLattice& lattice,
                                       const CircuitNoiseParams& params,
                                       Xoshiro256ss& rng) {
  if (params.rounds < 1) throw std::invalid_argument("rounds must be >= 1");
  const double p = params.p;
  const double p_x_single = 2.0 * p / 3.0;       // depolarizing X component
  const double p_idle = p_x_single * params.idle_scale;
  const double p_cnot_class = 4.0 * p / 15.0;    // each of {XI, IX, XX}

  const int rows = lattice.check_rows();
  const int cols = lattice.check_cols();

  SyndromeHistory history;
  history.final_error.assign(static_cast<std::size_t>(lattice.num_data()), 0);
  history.measured.reserve(static_cast<std::size_t>(params.rounds) + 1);

  std::vector<std::uint8_t> ancilla(static_cast<std::size_t>(lattice.num_checks()),
                                    0);
  std::vector<std::uint8_t> busy(static_cast<std::size_t>(lattice.num_data()),
                                 0);

  for (int round = 0; round < params.rounds; ++round) {
    // Ancilla reset noise.
    for (auto& a : ancilla) {
      a = static_cast<std::uint8_t>(rng.bernoulli(p_x_single));
    }
    for (int step = 0; step < kStepCount; ++step) {
      std::fill(busy.begin(), busy.end(), 0);
      for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
          const int q = step_partner(lattice, r, c, step);
          if (q < 0) continue;
          busy[static_cast<std::size_t>(q)] = 1;
          const std::size_t chk =
              static_cast<std::size_t>(lattice.check_index(r, c));
          // Ideal CNOT action: ancilla accumulates the data X-frame.
          ancilla[chk] = static_cast<std::uint8_t>(
              ancilla[chk] ^ history.final_error[static_cast<std::size_t>(q)]);
          // Two-qubit depolarizing, X components.
          if (rng.bernoulli(3.0 * p_cnot_class)) {
            switch (rng.below(3)) {
              case 0:  // XI: data only
                history.final_error[static_cast<std::size_t>(q)] ^= 1;
                break;
              case 1:  // IX: ancilla only
                ancilla[chk] ^= 1;
                break;
              default:  // XX
                history.final_error[static_cast<std::size_t>(q)] ^= 1;
                ancilla[chk] ^= 1;
                break;
            }
          }
        }
      }
      // Idle noise on data qubits not touched this step.
      if (p_idle > 0.0) {
        for (int q = 0; q < lattice.num_data(); ++q) {
          if (!busy[static_cast<std::size_t>(q)] && rng.bernoulli(p_idle)) {
            history.final_error[static_cast<std::size_t>(q)] ^= 1;
          }
        }
      }
    }
    // Measurement. `ancilla[chk]` carries the mid-circuit outcome: data
    // faults striking after their CNOT are legitimately invisible until the
    // next round (the space-time structure of circuit noise). The readout
    // itself may additionally lie.
    BitVec meas(static_cast<std::size_t>(lattice.num_checks()), 0);
    for (int chk = 0; chk < lattice.num_checks(); ++chk) {
      meas[static_cast<std::size_t>(chk)] = static_cast<std::uint8_t>(
          ancilla[static_cast<std::size_t>(chk)] ^
          static_cast<std::uint8_t>(rng.bernoulli(p)));
    }
    history.measured.push_back(std::move(meas));
  }
  // Final perfect round.
  history.measured.push_back(lattice.syndrome(history.final_error));
  history.difference = difference_syndromes(history.measured);
  return history;
}

CircuitLocationCounts count_circuit_locations(const PlanarLattice& lattice) {
  CircuitLocationCounts counts;
  counts.resets = lattice.num_checks();
  counts.measurements = lattice.num_checks();
  for (int r = 0; r < lattice.check_rows(); ++r) {
    for (int c = 0; c < lattice.check_cols(); ++c) {
      for (int step = 0; step < kStepCount; ++step) {
        if (step_partner(lattice, r, c, step) >= 0) ++counts.cnots;
      }
    }
  }
  counts.idle_slots = kStepCount * lattice.num_data() - counts.cnots;
  return counts;
}

}  // namespace qec
