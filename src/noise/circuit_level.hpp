// Circuit-level depolarizing noise for the syndrome-extraction circuit —
// an extension beyond the paper's phenomenological model (its evaluation
// stops at phenomenological noise; circuit-level behaviour is the natural
// next question for any hardware decoder, and QECOOL consumes these
// histories unchanged).
//
// Model (one error sector, X errors on data, checks measured via an ancilla
// with data-as-control CNOTs):
//   - per round, each check executes its <= 4 CNOTs in a fixed global
//     schedule of 4 steps (North, West, East, South);
//   - ancilla reset suffers an X with probability 2p/3 (single-qubit
//     depolarizing projected on its X component);
//   - every CNOT suffers two-qubit depolarizing of strength p, which
//     projects onto X-components {XI, IX, XX}, each with probability 4p/15;
//   - data qubits idle in a step suffer X with probability 2p/3 x idle
//     scale (default 1, settable to model faster idles);
//   - the ancilla measurement is flipped with probability p.
//
// Because errors strike *between* CNOT steps, an error on a data qubit can
// be seen by one of its checks in round t and by the other only in round
// t+1 — the space-time "diagonal" defect structure that makes circuit-level
// decoding strictly harder than phenomenological (thresholds drop by
// roughly 3-5x for uniform-weight matching decoders).
//
// For this CNOT orientation (data = control), ancilla X errors never
// propagate back into data qubits, so the X sector has no hook errors;
// hooks afflict the complementary sector symmetrically.
#pragma once

#include "noise/phenomenological.hpp"

namespace qec {

struct CircuitNoiseParams {
  /// Uniform circuit-level depolarizing strength.
  double p = 0.0;
  /// Noisy measurement rounds; one perfect round is appended.
  int rounds = 1;
  /// Scale factor on idle-location noise (1.0 = full depolarizing idles,
  /// 0.0 = idles are noiseless).
  double idle_scale = 1.0;
};

/// Samples a memory-experiment history under circuit-level noise. The
/// resulting SyndromeHistory is drop-in compatible with every decoder.
SyndromeHistory sample_circuit_history(const PlanarLattice& lattice,
                                       const CircuitNoiseParams& params,
                                       Xoshiro256ss& rng);

/// Number of fault locations per round (diagnostics / tests): CNOTs,
/// resets, measurements and idle slots.
struct CircuitLocationCounts {
  int cnots = 0;
  int resets = 0;
  int measurements = 0;
  int idle_slots = 0;
};
CircuitLocationCounts count_circuit_locations(const PlanarLattice& lattice);

}  // namespace qec
