#include "noise/depolarizing.hpp"

#include <stdexcept>

namespace qec {

TwoSectorHistory sample_depolarizing_history(const PlanarLattice& lattice,
                                             const DepolarizingParams& params,
                                             Xoshiro256ss& rng) {
  if (params.rounds < 1) throw std::invalid_argument("rounds must be >= 1");
  TwoSectorHistory history;
  auto init_sector = [&](SyndromeHistory& sector) {
    sector.final_error.assign(static_cast<std::size_t>(lattice.num_data()), 0);
    sector.measured.reserve(static_cast<std::size_t>(params.rounds) + 1);
  };
  init_sector(history.x);
  init_sector(history.z);

  for (int t = 0; t < params.rounds; ++t) {
    for (int q = 0; q < lattice.num_data(); ++q) {
      if (!rng.bernoulli(params.p)) continue;
      // Uniform over {X, Y, Z}; Y strikes both sectors (the correlation the
      // paper's independent-sector argument must survive).
      switch (rng.below(3)) {
        case 0:  // X
          history.x.final_error[static_cast<std::size_t>(q)] ^= 1;
          break;
        case 1:  // Y
          history.x.final_error[static_cast<std::size_t>(q)] ^= 1;
          history.z.final_error[static_cast<std::size_t>(q)] ^= 1;
          break;
        default:  // Z
          history.z.final_error[static_cast<std::size_t>(q)] ^= 1;
          break;
      }
    }
    for (SyndromeHistory* sector : {&history.x, &history.z}) {
      BitVec meas = lattice.syndrome(sector->final_error);
      for (auto& bit : meas) {
        bit ^= static_cast<std::uint8_t>(rng.bernoulli(params.p_meas));
      }
      sector->measured.push_back(std::move(meas));
    }
  }
  for (SyndromeHistory* sector : {&history.x, &history.z}) {
    sector->measured.push_back(lattice.syndrome(sector->final_error));
    sector->difference = difference_syndromes(sector->measured);
  }
  return history;
}

}  // namespace qec
