// Correlated two-sector depolarizing noise.
//
// The paper simulates only Pauli-X errors and argues (footnote 2) that this
// loses nothing: under depolarizing noise a Y error is a simultaneous X and
// Z error, the two sectors are decoded independently, and each sector sees
// an effective iid flip channel. This module makes that argument testable:
// it samples genuinely correlated X/Z error pairs (Y errors hit both
// sectors on the same qubit in the same round), produces one
// SyndromeHistory per sector, and lets the caller decode both and combine.
//
// Sector geometry: the planar code's X- and Z-sectors are transposes of
// each other (d x (d-1) vs (d-1) x d check grids). Because every component
// in this repo is parameterised only by the check-grid shape through
// PlanarLattice, we reuse the same lattice object for both sectors — the
// sectors are statistically identical, exactly the symmetry the paper
// invokes.
#pragma once

#include "noise/phenomenological.hpp"

namespace qec {

struct DepolarizingParams {
  /// Total depolarizing strength per data qubit per round: X, Y, Z each
  /// occur with probability p/3.
  double p = 0.0;
  /// Ancilla measurement flip probability per sector per round.
  double p_meas = 0.0;
  int rounds = 1;
};

struct TwoSectorHistory {
  SyndromeHistory x;  ///< X-error sector (what the paper simulates)
  SyndromeHistory z;  ///< Z-error sector
};

/// Samples correlated sector histories: each qubit-round draws one Pauli
/// from {I (1-p), X (p/3), Y (p/3), Z (p/3)}; X and Y feed the X sector,
/// Z and Y the Z sector. Measurement noise is independent per sector.
TwoSectorHistory sample_depolarizing_history(const PlanarLattice& lattice,
                                             const DepolarizingParams& params,
                                             Xoshiro256ss& rng);

/// Effective per-sector flip rate of the depolarizing channel: 2p/3
/// (X or Y for the X sector). The footnote-2 equivalence says each sector's
/// marginal statistics match a phenomenological run at this rate.
constexpr double sector_flip_rate(double p) { return 2.0 * p / 3.0; }

}  // namespace qec
