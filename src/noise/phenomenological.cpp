#include "noise/phenomenological.hpp"

#include <cassert>
#include <stdexcept>

namespace qec {

SyndromeHistory sample_history(const PlanarLattice& lattice,
                               const NoiseParams& params, Xoshiro256ss& rng) {
  if (params.rounds < 1) throw std::invalid_argument("rounds must be >= 1");
  SyndromeHistory history;
  history.final_error.assign(static_cast<std::size_t>(lattice.num_data()), 0);
  history.measured.reserve(static_cast<std::size_t>(params.rounds) + 1);

  for (int t = 0; t < params.rounds; ++t) {
    for (auto& bit : history.final_error) {
      bit ^= static_cast<std::uint8_t>(rng.bernoulli(params.p_data));
    }
    BitVec meas = lattice.syndrome(history.final_error);
    for (auto& bit : meas) {
      bit ^= static_cast<std::uint8_t>(rng.bernoulli(params.p_meas));
    }
    history.measured.push_back(std::move(meas));
  }
  // Final perfect round: no new data error, no measurement noise.
  history.measured.push_back(lattice.syndrome(history.final_error));
  history.difference = difference_syndromes(history.measured);
  return history;
}

std::vector<BitVec> difference_syndromes(const std::vector<BitVec>& measured) {
  std::vector<BitVec> diff;
  diff.reserve(measured.size());
  for (std::size_t t = 0; t < measured.size(); ++t) {
    if (t == 0) {
      diff.push_back(measured[0]);
    } else {
      diff.push_back(xor_of(measured[t], measured[t - 1]));
    }
  }
  return diff;
}

std::vector<BitVec> accumulate_differences(
    const std::vector<BitVec>& difference) {
  std::vector<BitVec> measured;
  measured.reserve(difference.size());
  for (std::size_t t = 0; t < difference.size(); ++t) {
    if (t == 0) {
      measured.push_back(difference[0]);
    } else {
      measured.push_back(xor_of(difference[t], measured[t - 1]));
    }
  }
  return measured;
}

std::vector<PackedBits> packed_layers(const std::vector<BitVec>& layers) {
  std::vector<PackedBits> packed;
  packed.reserve(layers.size());
  for (const auto& layer : layers) packed.push_back(PackedBits::from_bits(layer));
  return packed;
}

std::vector<PackedBits> difference_syndromes(
    const std::vector<PackedBits>& measured) {
  std::vector<PackedBits> diff;
  diff.reserve(measured.size());
  for (std::size_t t = 0; t < measured.size(); ++t) {
    if (t == 0) {
      diff.push_back(measured[0]);
    } else {
      diff.push_back(xor_of(measured[t], measured[t - 1]));
    }
  }
  return diff;
}

std::vector<PackedBits> accumulate_differences(
    const std::vector<PackedBits>& difference) {
  std::vector<PackedBits> measured;
  measured.reserve(difference.size());
  for (std::size_t t = 0; t < difference.size(); ++t) {
    if (t == 0) {
      measured.push_back(difference[0]);
    } else {
      measured.push_back(xor_of(difference[t], measured[t - 1]));
    }
  }
  return measured;
}

int defect_count(const SyndromeHistory& history) {
  int count = 0;
  for (const auto& layer : history.difference) count += weight(layer);
  return count;
}

}  // namespace qec
