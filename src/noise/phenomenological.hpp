// Phenomenological noise model (Dennis et al. 2002), the error model the
// paper uses for every accuracy result: in each measurement round every data
// qubit flips independently with probability p_data, and every ancilla
// measurement outcome is reported incorrectly with probability p_meas. The
// paper sets p_data = p_meas = p.
//
// A SyndromeHistory carries both what the decoder is allowed to see (the
// measured syndromes) and the ground truth needed to score the trial (the
// accumulated physical error).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "surface_code/pauli_frame.hpp"
#include "surface_code/planar_lattice.hpp"

namespace qec {

struct NoiseParams {
  double p_data = 0.0;
  double p_meas = 0.0;
  /// Noisy measurement rounds. A final, perfect round is always appended so
  /// the logical observable is well-defined (standard practice; see
  /// DESIGN.md).
  int rounds = 1;
};

struct SyndromeHistory {
  /// Total stored rounds = params.rounds + 1 (the final perfect round).
  int total_rounds() const { return static_cast<int>(measured.size()); }

  /// measured[t][check]: the syndrome value reported by the hardware in
  /// round t (cumulative parity of the error so far, XOR measurement noise).
  std::vector<BitVec> measured;

  /// difference[t][check] = measured[t] XOR measured[t-1] (measured[-1]=0):
  /// the defect indicator each decoder actually matches on, and the value
  /// QECOOL Units push into their Reg queues.
  std::vector<BitVec> difference;

  /// Ground truth: accumulated data error after the last round.
  BitVec final_error;
};

/// Samples one memory-experiment history.
SyndromeHistory sample_history(const PlanarLattice& lattice,
                               const NoiseParams& params, Xoshiro256ss& rng);

/// Computes difference syndromes from a measured-syndrome sequence (exposed
/// for tests and for decoders fed with externally generated data).
std::vector<BitVec> difference_syndromes(const std::vector<BitVec>& measured);

/// Inverse of difference_syndromes: rebuilds the measured-syndrome sequence
/// as the running XOR of the difference layers. Syndrome traces (see
/// src/stream/trace.hpp) persist only differences — this is how a replayed
/// lane recovers a full SyndromeHistory for scoring.
std::vector<BitVec> accumulate_differences(
    const std::vector<BitVec>& difference);

// Packed (word-parallel) counterparts: the streamed datapath keeps
// difference layers in PackedBits form end-to-end (trace payload ->
// engine Reg), so generation and accumulation run one XOR per 64 checks.

/// Packs a byte-per-bit layer sequence (the bridge from sample_history
/// output into the packed trace payload).
std::vector<PackedBits> packed_layers(const std::vector<BitVec>& layers);

/// Difference layers of a packed measured-syndrome sequence.
std::vector<PackedBits> difference_syndromes(
    const std::vector<PackedBits>& measured);

/// Running XOR of packed difference layers (inverse of the above).
std::vector<PackedBits> accumulate_differences(
    const std::vector<PackedBits>& difference);

/// Total number of defects (set difference-syndrome bits) in a history.
int defect_count(const SyndromeHistory& history);

}  // namespace qec
