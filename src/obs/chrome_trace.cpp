#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "obs/profile.hpp"

namespace qec::obs {
namespace {

/// pid per track kind: Perfetto groups tracks by process, so the export
/// shows three swim-lane groups — the scheduler, the lanes, the engines.
int track_pid(TrackKind kind) {
  switch (kind) {
    case TrackKind::kControl: return 1;
    case TrackKind::kLane: return 2;
    case TrackKind::kEngine: return 3;
  }
  return 0;
}

std::string i64(std::int64_t v) { return std::to_string(v); }
std::string u64(std::uint64_t v) { return std::to_string(v); }

const char* slo_state_arg_name(std::uint16_t arg) {
  switch (arg) {
    case kSloOk: return "ok";
    case kSloWarning: return "warning";
    case kSloPage: return "page";
  }
  return "unknown";
}

/// Microseconds with fixed 3-decimal formatting (wall-clock track only).
std::string us3(std::uint64_t nanos) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(nanos / 1000),
                static_cast<unsigned long long>(nanos % 1000));
  return buf;
}

/// Kind-specific args object (payload/arg decoded per the taxonomy).
std::string event_args(const TraceEvent& event) {
  const auto kind = static_cast<EventKind>(event.kind);
  switch (kind) {
    case EventKind::kDispatch:
      return "{\"served\": " + u64(event.payload) +
             ", \"drain\": " + std::to_string(event.arg) + "}";
    case EventKind::kPush:
      return "{\"depth\": " + u64(event.payload) +
             ", \"real\": " + std::to_string(event.arg) + "}";
    case EventKind::kOverflow:
    case EventKind::kStarve:
      return "{\"depth\": " + u64(event.payload) + "}";
    case EventKind::kSpend:
    case EventKind::kPop:
      return "{\"cycles\": " + u64(event.payload) + "}";
    case EventKind::kPause:
      return "{\"depth\": " + u64(event.payload) + ", \"law\": \"" +
             (event.arg == kPauseByCodel ? "codel" : "depth") + "\"}";
    case EventKind::kResume:
      return "{\"depth\": " + u64(event.payload) + "}";
    case EventKind::kCodelArm:
    case EventKind::kCodelDisarm:
      return "{\"sojourn\": " + u64(event.payload) + "}";
    case EventKind::kDrained:
      return "{}";
    case EventKind::kGrant:
      return "{\"lane\": " + u64(event.payload) + "}";
    case EventKind::kCache:
      return "{\"cycles\": " + u64(event.payload) + ", \"outcome\": \"" +
             (event.arg == kCacheHit
                  ? "hit"
                  : (event.arg == kCacheZero ? "zero" : "miss")) +
             "\"}";
    case EventKind::kSloState:
      return "{\"objective\": " + u64(event.payload) + ", \"state\": \"" +
             slo_state_arg_name(event.arg) + "\"}";
  }
  return "{}";
}

/// One trace-event line. ph mapping: serve and grant are unit-duration
/// "X" slices (they occupy the round), pause/resume are a "B"/"E" span,
/// everything else is a thread-scoped instant.
std::string event_line(const MergedEvent& merged) {
  const TraceEvent& event = merged.event;
  const auto kind = static_cast<EventKind>(event.kind);
  const char* ph = "i";
  std::string extra;
  if (kind == EventKind::kSpend || kind == EventKind::kGrant) {
    ph = "X";
    extra = ", \"dur\": 1";
  } else if (kind == EventKind::kPause) {
    ph = "B";
  } else if (kind == EventKind::kResume) {
    ph = "E";
  } else {
    extra = ", \"s\": \"t\"";
  }
  std::string name = event_name(kind);
  if (kind == EventKind::kGrant) {
    name = "lane " + u64(event.payload);  // the slice label engines show
  }
  return "{\"ph\": \"" + std::string(ph) + "\", \"ts\": " + i64(event.ts) +
         ", \"pid\": " + std::to_string(track_pid(merged.track)) +
         ", \"tid\": " + std::to_string(merged.id) + ", \"name\": \"" + name +
         "\"" + extra + ", \"args\": " + event_args(event) + "}";
}

std::string metadata_line(const char* what, int pid, int tid,
                          const std::string& name) {
  return "{\"ph\": \"M\", \"ts\": 0, \"pid\": " + std::to_string(pid) +
         ", \"tid\": " + std::to_string(tid) + ", \"name\": \"" +
         std::string(what) + "\", \"args\": {\"name\": \"" + name + "\"}}";
}

}  // namespace

bool write_chrome_trace(const Tracer& tracer, const std::string& path,
                        const Profiler* profiler) {
  std::vector<MergedEvent> events = tracer.merged();

  // Close dangling pause spans: a lane still frozen at run end has a "B"
  // with no "E", which viewers render as a span to infinity. Append a
  // synthetic close at the track's final timestamp. Ring overwrite can
  // also drop a "B" and orphan its "E" — those are left as-is (harmless
  // to viewers, flagged as a warning by check_trace_json.py).
  struct PauseState {
    int open = 0;
    std::int64_t last_ts = 0;
    std::uint32_t max_seq = 0;
  };
  std::map<int, PauseState> lanes;
  for (const MergedEvent& merged : events) {
    if (merged.track != TrackKind::kLane) continue;
    PauseState& state = lanes[merged.id];
    state.last_ts = std::max(state.last_ts, merged.event.ts);
    state.max_seq = std::max(state.max_seq, merged.event.seq);
    const auto kind = static_cast<EventKind>(merged.event.kind);
    if (kind == EventKind::kPause) {
      ++state.open;
    } else if (kind == EventKind::kResume && state.open > 0) {
      --state.open;
    }
  }
  bool appended = false;
  for (const auto& [lane, state] : lanes) {
    for (int k = 0; k < state.open; ++k) {
      MergedEvent close;
      close.track = TrackKind::kLane;
      close.id = lane;
      close.event.ts = state.last_ts;
      close.event.seq = state.max_seq + 1 + static_cast<std::uint32_t>(k);
      close.event.kind = static_cast<std::uint16_t>(EventKind::kResume);
      events.push_back(close);
      appended = true;
    }
  }
  if (appended) {
    std::stable_sort(events.begin(), events.end(),
                     [](const MergedEvent& a, const MergedEvent& b) {
                       if (a.event.ts != b.event.ts) {
                         return a.event.ts < b.event.ts;
                       }
                       if (a.track != b.track) return a.track < b.track;
                       if (a.id != b.id) return a.id < b.id;
                       return a.event.seq < b.event.seq;
                     });
  }

  FILE* out = std::fopen(path.c_str(), "wb");
  if (!out) return false;
  bool ok = true;
  const auto put = [&](const std::string& text) {
    ok = ok && std::fputs(text.c_str(), out) >= 0;
  };

  put("{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");

  // Metadata first: name the three process groups, the scheduler thread,
  // every engine, and every lane that recorded at least one event (a
  // million-lane fleet should not pay a metadata line per silent lane).
  std::vector<std::string> lines;
  lines.push_back(metadata_line("process_name", 1, 0, "service"));
  lines.push_back(metadata_line("process_name", 2, 0, "lanes"));
  lines.push_back(metadata_line("process_name", 3, 0, "engines"));
  lines.push_back(metadata_line("thread_name", 1, 0, "scheduler"));
  for (const auto& [lane, state] : lanes) {
    lines.push_back(
        metadata_line("thread_name", 2, lane, "lane " + std::to_string(lane)));
  }
  for (int e = 0; e < tracer.engines(); ++e) {
    lines.push_back(
        metadata_line("thread_name", 3, e, "engine " + std::to_string(e)));
  }
  // Exact ring accounting, as metadata so viewers ignore it:
  // check_trace_json.py escalates orphaned spans from warning to error
  // when dropped == 0 (no overwrite can excuse them).
  lines.push_back(
      "{\"ph\": \"M\", \"ts\": 0, \"pid\": 1, \"tid\": 0, \"name\": "
      "\"trace_ring_stats\", \"args\": {\"emitted\": " +
      u64(tracer.emitted()) + ", \"dropped\": " + u64(tracer.dropped()) + "}}");
  for (const MergedEvent& merged : events) lines.push_back(event_line(merged));

  // The wall-clock profiler track (pid 4): real time in microseconds, one
  // tid per registered thread, samples sorted by start so ts is monotonic
  // per thread. Explicitly non-deterministic — only present when the run
  // opted into profiling.
  if (profiler && profiler->threads() > 0) {
    lines.push_back(metadata_line("process_name", 4, 0, "profiler (wall clock)"));
    for (int t = 0; t < profiler->threads(); ++t) {
      lines.push_back(
          metadata_line("thread_name", 4, t, "thread " + std::to_string(t)));
      for (const WallSample& sample : profiler->thread_samples(t)) {
        lines.push_back("{\"ph\": \"X\", \"ts\": " + us3(sample.start_ns) +
                        ", \"pid\": 4, \"tid\": " + std::to_string(t) +
                        ", \"name\": \"" + stage_name(sample.stage) +
                        "\", \"dur\": " + us3(sample.dur_ns) +
                        ", \"args\": {\"wall_clock\": true}}");
      }
    }
  }

  for (std::size_t i = 0; i < lines.size(); ++i) {
    put(lines[i]);
    put(i + 1 < lines.size() ? ",\n" : "\n");
  }
  put("]}\n");

  ok = std::fclose(out) == 0 && ok;
  return ok;
}

}  // namespace qec::obs
