// Chrome-trace-event JSON export of an obs::Tracer: open the file in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing and the run
// renders as a lanes x engines timeline — pause spans, serve slices,
// push/pop/starve instants — with logical rounds on the time axis (one
// round = one "microsecond"). See docs/observability.md for the mapping
// and a walkthrough; tools/check_trace_json.py validates the output.
//
// The export is deterministic: events come from Tracer::merged() (already
// canonically ordered), every line is formatted with locale-independent
// integer formatting, and timestamps are logical rounds — so the file is
// byte-identical for any --threads value.
#pragma once

#include <string>

#include "obs/trace.hpp"

namespace qec::obs {

/// Writes `tracer`'s merged events to `path` as Chrome trace JSON.
/// Unmatched pause-begin events are closed with a synthetic end at the
/// track's final timestamp so viewers never see a dangling span. Returns
/// false when the file cannot be opened or written (mirroring the
/// telemetry CSV writers).
bool write_chrome_trace(const Tracer& tracer, const std::string& path);

}  // namespace qec::obs
