// Chrome-trace-event JSON export of an obs::Tracer: open the file in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing and the run
// renders as a lanes x engines timeline — pause spans, serve slices,
// push/pop/starve instants — with logical rounds on the time axis (one
// round = one "microsecond"). See docs/observability.md for the mapping
// and a walkthrough; tools/check_trace_json.py validates the output.
//
// The export is deterministic: events come from Tracer::merged() (already
// canonically ordered), every line is formatted with locale-independent
// integer formatting, and timestamps are logical rounds — so the file is
// byte-identical for any --threads value.
// One deliberate exception to determinism: pass a Profiler and the export
// gains a fourth process group, "profiler (wall clock)" (pid 4), holding
// the per-thread wall-clock stage samples. That track is real time, not
// logical rounds, and is explicitly exempt from the byte-identical
// contract (docs/observability.md) — it only exists when profiling was
// explicitly enabled.
#pragma once

#include <string>

#include "obs/trace.hpp"

namespace qec::obs {

class Profiler;

/// Writes `tracer`'s merged events to `path` as Chrome trace JSON.
/// Unmatched pause-begin events are closed with a synthetic end at the
/// track's final timestamp so viewers never see a dangling span. A
/// `trace_ring_stats` metadata record carries the tracer's exact
/// emitted/dropped counts (check_trace_json.py keys its strictness off
/// `dropped`). When `profiler` is non-null its wall samples are appended
/// as the non-deterministic pid-4 track. Returns false when the file
/// cannot be opened or written (mirroring the telemetry CSV writers).
bool write_chrome_trace(const Tracer& tracer, const std::string& path,
                        const Profiler* profiler = nullptr);

}  // namespace qec::obs
