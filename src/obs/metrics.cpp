#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/csv.hpp"

namespace qec::obs {

int LogHistogram::bucket_index(std::uint64_t value) {
  if (value < kSub) return static_cast<int>(value);
  const int exp = std::bit_width(value) - 1;  // >= kSubBits
  const int shift = exp - kSubBits;
  const auto sub = static_cast<int>((value >> shift) - kSub);
  return static_cast<int>(kSub) + (shift << kSubBits) + sub;
}

std::uint64_t LogHistogram::bucket_lower(int index) {
  if (index < static_cast<int>(kSub)) return static_cast<std::uint64_t>(index);
  const int shift = (index - static_cast<int>(kSub)) >> kSubBits;
  const int sub = (index - static_cast<int>(kSub)) & (static_cast<int>(kSub) - 1);
  return (kSub + static_cast<std::uint64_t>(sub)) << shift;
}

std::uint64_t LogHistogram::bucket_upper(int index) {
  if (index < static_cast<int>(kSub)) return static_cast<std::uint64_t>(index);
  const int shift = (index - static_cast<int>(kSub)) >> kSubBits;
  return bucket_lower(index) + ((1ULL << shift) - 1);
}

void LogHistogram::observe(std::uint64_t value) {
  const auto index = static_cast<std::size_t>(bucket_index(value));
  if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
  ++buckets_[index];
  ++count_;
  sum_ += value;
  max_ = std::max(max_, value);
}

std::uint64_t LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q / 100.0 * static_cast<double>(count_)));
  rank = std::clamp<std::uint64_t>(rank, 1, count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      // The bucket's upper bound, capped at the exact max: never below
      // the exact nearest-rank percentile of the same samples.
      return std::min(bucket_upper(static_cast<int>(i)), max_);
    }
  }
  return max_;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void LogHistogram::reset() {
  buckets_.clear();
  count_ = 0;
  max_ = 0;
  sum_ = 0;
}

MetricsRegistry::MetricsRegistry(int window) : window_(window < 1 ? 1 : window) {}

int MetricsRegistry::add_counter(const std::string& name) {
  counters_.push_back({name, 0, 0});
  return static_cast<int>(counters_.size()) - 1;
}

int MetricsRegistry::add_gauge(const std::string& name) {
  gauges_.push_back({name, 0});
  return static_cast<int>(gauges_.size()) - 1;
}

int MetricsRegistry::add_histogram(const std::string& name) {
  histograms_.push_back({});
  histograms_.back().name = name;
  return static_cast<int>(histograms_.size()) - 1;
}

void MetricsRegistry::tick(std::int64_t round) {
  if (!open_) {
    open_ = true;
    first_ = round;
  }
  last_ = round;
  ++ticks_;
  if (round - first_ + 1 >= window_) close_window(/*partial=*/false);
}

void MetricsRegistry::finish() {
  if (open_ && ticks_ > 0) close_window(/*partial=*/true);
}

std::vector<std::string> MetricsRegistry::value_schema() const {
  std::vector<std::string> names;
  names.reserve(counters_.size() + gauges_.size() + 5 * histograms_.size());
  for (const auto& counter : counters_) names.push_back(counter.name);
  for (const auto& gauge : gauges_) names.push_back(gauge.name);
  for (const auto& histogram : histograms_) {
    names.push_back(histogram.name + "_count");
    names.push_back(histogram.name + "_p50");
    names.push_back(histogram.name + "_p95");
    names.push_back(histogram.name + "_p99");
    names.push_back(histogram.name + "_max");
  }
  return names;
}

void MetricsRegistry::close_window(bool partial) {
  // Numeric snapshot first (value_schema() order), then the observer: any
  // counters the SLO engine bumps land in this window's rendered row.
  std::vector<std::int64_t> values;
  values.reserve(counters_.size() + gauges_.size() + 5 * histograms_.size());
  for (const auto& counter : counters_) {
    values.push_back(static_cast<std::int64_t>(counter.window));
  }
  for (const auto& gauge : gauges_) values.push_back(gauge.value);
  for (const auto& histogram : histograms_) {
    values.push_back(static_cast<std::int64_t>(histogram.hist.count()));
    values.push_back(static_cast<std::int64_t>(histogram.hist.quantile(50)));
    values.push_back(static_cast<std::int64_t>(histogram.hist.quantile(95)));
    values.push_back(static_cast<std::int64_t>(histogram.hist.quantile(99)));
    values.push_back(static_cast<std::int64_t>(histogram.hist.max()));
  }
  if (observer_) {
    WindowSnapshot snapshot;
    snapshot.index = static_cast<int>(rows_.size());
    snapshot.first = first_;
    snapshot.last = last_;
    snapshot.rounds = ticks_;
    snapshot.partial = partial;
    snapshot.values = &values;
    observer_(snapshot);
  }

  std::vector<std::string> row;
  row.reserve(5 + counters_.size() + gauges_.size() + 5 * histograms_.size());
  row.push_back(std::to_string(rows_.size()));
  row.push_back(std::to_string(first_));
  row.push_back(std::to_string(last_));
  row.push_back(std::to_string(ticks_));
  row.push_back(partial ? "1" : "0");
  for (auto& counter : counters_) {
    row.push_back(std::to_string(counter.window));
    counter.total += counter.window;
    counter.window = 0;  // counters report per-window deltas
  }
  for (const auto& gauge : gauges_) {
    row.push_back(std::to_string(gauge.value));  // value at window close
  }
  for (auto& histogram : histograms_) {
    row.push_back(std::to_string(histogram.hist.count()));
    row.push_back(std::to_string(histogram.hist.quantile(50)));
    row.push_back(std::to_string(histogram.hist.quantile(95)));
    row.push_back(std::to_string(histogram.hist.quantile(99)));
    row.push_back(std::to_string(histogram.hist.max()));
    histogram.total.merge(histogram.hist);
    histogram.hist.reset();  // histograms cover one window each
  }
  rows_.push_back(std::move(row));
  open_ = false;
  ticks_ = 0;
}

std::vector<std::string> MetricsRegistry::header() const {
  std::vector<std::string> header = {"window", "round_first", "round_last",
                                     "rounds", "partial"};
  for (const auto& name : value_schema()) header.push_back(name);
  return header;
}

bool MetricsRegistry::write_csv(const std::string& path) const {
  CsvWriter csv(path, header());
  if (!csv.ok()) return false;
  for (const auto& row : rows_) csv.add_row(row);
  csv.flush();
  return true;
}

bool MetricsRegistry::write_last_window_csv(const std::string& path) const {
  CsvWriter csv(path, header());
  if (!csv.ok()) return false;
  if (!rows_.empty()) csv.add_row(rows_.back());
  csv.flush();
  return true;
}

}  // namespace qec::obs
