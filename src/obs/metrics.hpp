// Windowed metrics for the streaming decode service: counters, gauges,
// and log-bucketed fixed-point histograms, snapshotted every W logical
// rounds into a time-series CSV. The whole-run telemetry aggregates
// (stream/telemetry.hpp) answer "how did the run end"; this registry
// answers "what was the p99 sojourn *during rounds 128..191*" — the
// rolling view the open-system churn work needs (ROADMAP), and the first
// consumer of the obs layer's determinism contract: every value is fed on
// the scheduling thread in fixed order, so the CSV is byte-identical at
// any thread count.
//
// Histograms are HDR-style log-bucketed with 3 sub-bucket bits: values
// below 8 are exact, larger values land in one of 8 sub-buckets per
// power of two, bounding the relative quantile error at 12.5%. Quantiles
// report the bucket's *upper* bound, so a histogram quantile never
// understates the exact nearest-rank percentile over the same samples —
// the invariant the tier-1 tests pin against percentile_nearest_rank.
// Integer-only throughout (no FPU in the SFQ telemetry path either).
//
// Window closes are also the service's alerting heartbeat: a registered
// window observer (obs::SloEngine) sees each window's numeric snapshot
// *before* the CSV row is rendered, so any counters it bumps (slo_ok /
// slo_warning / slo_page) land in the very row that triggered them.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace qec::obs {

/// Log-bucketed histogram of unsigned 64-bit samples (sojourn rounds,
/// queue depths, cycle counts). Bucket layout with kSubBits = 3:
/// index v for v < 8 (exact), then 8 sub-buckets per octave.
class LogHistogram {
 public:
  static constexpr int kSubBits = 3;
  static constexpr std::uint64_t kSub = 1ULL << kSubBits;  // 8

  /// Bucket index of `value` (0-based, monotone in value).
  static int bucket_index(std::uint64_t value);
  /// Largest value the bucket covers (its reported quantile bound).
  static std::uint64_t bucket_upper(int index);
  /// Smallest value the bucket covers.
  static std::uint64_t bucket_lower(int index);

  void observe(std::uint64_t value);

  std::uint64_t count() const { return count_; }
  /// Exact maximum observed (tracked outside the buckets).
  std::uint64_t max() const { return max_; }
  /// Exact sum of observed values (Prometheus summary `_sum`).
  std::uint64_t sum() const { return sum_; }

  /// Upper bound of the bucket holding the nearest-rank q-th percentile
  /// (q in (0, 100]); 0 when empty. Never below the exact percentile of
  /// the same samples, and at most 12.5% above it (exact below 8).
  std::uint64_t quantile(double q) const;

  /// Adds `other`'s buckets/count/sum/max into this histogram — how the
  /// cumulative whole-run histogram absorbs each closed window.
  void merge(const LogHistogram& other);

  void reset();

 private:
  std::vector<std::uint64_t> buckets_;  ///< grown lazily to the top index
  std::uint64_t count_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t sum_ = 0;
};

/// Numeric snapshot of one closed window, handed to the window observer.
/// `values` parallels MetricsRegistry::value_schema(): counters (window
/// deltas), then gauges (value at close), then count/p50/p95/p99/max per
/// histogram. Derived purely from logical rounds — thread-count invariant.
struct WindowSnapshot {
  int index = 0;             ///< window ordinal (CSV `window` column)
  std::int64_t first = 0;    ///< first logical round of the window
  std::int64_t last = 0;     ///< last logical round of the window
  std::int64_t rounds = 0;   ///< rounds executed in the window
  bool partial = false;      ///< trailing window flushed by finish()
  const std::vector<std::int64_t>* values = nullptr;
};

/// A registry of named windowed metrics. Register instruments up front
/// (registration order is CSV column order), feed them as rounds execute,
/// and call tick(round) once per executed logical round: every W-th round
/// closes a window — counters report the window delta, gauges the value
/// at the window's close, histograms the window's count/p50/p95/p99/max —
/// and appends one CSV row. finish() flushes the trailing partial window
/// (flagged by the `partial` column) so short runs and non-multiple round
/// counts never lose their tail.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(int window);

  int add_counter(const std::string& name);
  int add_gauge(const std::string& name);
  int add_histogram(const std::string& name);

  void count(int counter, std::uint64_t delta = 1) {
    counters_[static_cast<std::size_t>(counter)].window += delta;
  }
  void set_gauge(int gauge, std::int64_t value) {
    gauges_[static_cast<std::size_t>(gauge)].value = value;
  }
  void observe(int histogram, std::uint64_t value) {
    histograms_[static_cast<std::size_t>(histogram)].hist.observe(value);
  }

  /// Marks logical round `round` executed; closes the window once it
  /// spans `window()` rounds. Rounds must be fed in nondecreasing order.
  void tick(std::int64_t round);

  /// Closes the trailing partial window, if any rounds are pending.
  void finish();

  int window() const { return window_; }
  /// Windows snapshotted so far.
  int windows() const { return static_cast<int>(rows_.size()); }

  /// Column names of a WindowSnapshot's `values` vector, in order:
  /// counters, gauges, then <hist>_count/_p50/_p95/_p99/_max. Stable once
  /// registration is done; later registrations only append.
  std::vector<std::string> value_schema() const;

  /// Installs the window-close observer (at most one; the SLO engine).
  /// Invoked inside close: counters bumped by the observer are included
  /// in the closing window's CSV row, then reset with everything else.
  void set_window_observer(std::function<void(const WindowSnapshot&)> observer) {
    observer_ = std::move(observer);
  }

  // Cumulative whole-run view (fed at each window close) — the source
  // for the Prometheus text snapshot. Counters: lifetime totals; gauges:
  // latest value; histograms: merged across all closed windows.
  int num_counters() const { return static_cast<int>(counters_.size()); }
  const std::string& counter_name(int i) const {
    return counters_[static_cast<std::size_t>(i)].name;
  }
  std::uint64_t counter_total(int i) const {
    return counters_[static_cast<std::size_t>(i)].total;
  }
  int num_gauges() const { return static_cast<int>(gauges_.size()); }
  const std::string& gauge_name(int i) const {
    return gauges_[static_cast<std::size_t>(i)].name;
  }
  std::int64_t gauge_value(int i) const {
    return gauges_[static_cast<std::size_t>(i)].value;
  }
  int num_histograms() const { return static_cast<int>(histograms_.size()); }
  const std::string& histogram_name(int i) const {
    return histograms_[static_cast<std::size_t>(i)].name;
  }
  const LogHistogram& histogram_total(int i) const {
    return histograms_[static_cast<std::size_t>(i)].total;
  }

  /// The time series: header + one row per closed window. Returns false
  /// when the file cannot be opened (mirroring the telemetry writers).
  bool write_csv(const std::string& path) const;

  /// Header + the most recent closed window only — the postmortem
  /// bundle's "what did the last heartbeat look like" file.
  bool write_last_window_csv(const std::string& path) const;

 private:
  void close_window(bool partial);
  std::vector<std::string> header() const;

  struct Counter {
    std::string name;
    std::uint64_t window = 0;
    std::uint64_t total = 0;  ///< cumulative across closed windows
  };
  struct Gauge {
    std::string name;
    std::int64_t value = 0;
  };
  struct Histogram {
    std::string name;
    LogHistogram hist;
    LogHistogram total;  ///< cumulative across closed windows
  };

  int window_ = 64;
  std::vector<Counter> counters_;
  std::vector<Gauge> gauges_;
  std::vector<Histogram> histograms_;
  std::function<void(const WindowSnapshot&)> observer_;

  bool open_ = false;            ///< a window has pending rounds
  std::int64_t first_ = 0;       ///< first round of the open window
  std::int64_t last_ = 0;        ///< latest round ticked
  std::int64_t ticks_ = 0;       ///< rounds executed in the open window
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qec::obs
