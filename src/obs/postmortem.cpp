#include "obs/postmortem.hpp"

#include <sys/stat.h>
#include <sys/types.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <mutex>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"

namespace qec::obs {

namespace {

std::atomic<bool> g_dump_requested{false};
std::atomic<bool> g_in_fatal{false};

/// mkdir -p, POSIX only (the toolchain targets Linux). Returns true when
/// the full path exists afterwards.
bool make_dirs(const std::string& path) {
  std::string prefix;
  prefix.reserve(path.size());
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') {
      prefix += path[i];
      continue;
    }
    if (!prefix.empty()) {
      if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) return false;
    }
    if (i < path.size()) prefix += '/';
  }
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fputs(text.c_str(), f) >= 0;
  return (std::fclose(f) == 0) && ok;
}

extern "C" void obs_sigusr1_handler(int) { FlightRecorder::request_dump(); }

extern "C" void obs_fatal_handler(int sig) {
  // Restore the default disposition first so any crash *inside* the dump
  // terminates instead of recursing, then best-effort dump and re-raise.
  std::signal(sig, SIG_DFL);
  if (!g_in_fatal.exchange(true)) {
    const char* name = "fatal signal";
    switch (sig) {
      case SIGSEGV: name = "fatal signal SIGSEGV"; break;
      case SIGABRT: name = "fatal signal SIGABRT"; break;
      case SIGFPE: name = "fatal signal SIGFPE"; break;
#ifdef SIGBUS
      case SIGBUS: name = "fatal signal SIGBUS"; break;
#endif
      default: break;
    }
    FlightRecorder::instance().dump(name);
  }
  std::raise(sig);
}

}  // namespace

struct FlightRecorder::Impl {
  mutable std::mutex mutex;
  bool armed = false;
  PostmortemSources sources;
};

FlightRecorder::Impl& FlightRecorder::impl() const {
  static Impl instance;
  return instance;
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::arm(PostmortemSources sources) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.sources = std::move(sources);
  state.armed = true;
}

void FlightRecorder::disarm() {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.sources = PostmortemSources{};
  state.armed = false;
}

bool FlightRecorder::armed() const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.armed;
}

std::string FlightRecorder::dir() const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.armed ? state.sources.dir : std::string();
}

bool FlightRecorder::dump(const std::string& reason) {
  Impl& state = impl();
  // try_lock, not lock: the fatal-signal path may interrupt a thread that
  // holds this mutex; a missing dump beats a deadlocked crash handler.
  std::unique_lock<std::mutex> lock(state.mutex, std::try_to_lock);
  if (!lock.owns_lock() || !state.armed) return false;
  const PostmortemSources& src = state.sources;
  if (src.dir.empty() || !make_dirs(src.dir)) return false;

  std::vector<std::string> files;
  if (!src.config_json.empty() &&
      write_text_file(src.dir + "/config.json", src.config_json + "\n")) {
    files.push_back("config.json");
  }
  if (src.tracer &&
      write_chrome_trace(*src.tracer, src.dir + "/trace.json",
                         src.profiler.get())) {
    files.push_back("trace.json");
  }
  if (src.metrics) {
    if (src.metrics->write_csv(src.dir + "/metrics.csv")) {
      files.push_back("metrics.csv");
    }
    if (src.metrics->write_last_window_csv(src.dir + "/last_window.csv")) {
      files.push_back("last_window.csv");
    }
  }
  if (src.profiler && src.profiler->write_csv(src.dir + "/profile.csv")) {
    files.push_back("profile.csv");
  }
  if (src.slo && src.slo->write_csv(src.dir + "/slo.csv")) {
    files.push_back("slo.csv");
  }

  std::string manifest = "{\"reason\": \"" + json_escape(reason) + "\"";
  manifest += ", \"files\": [";
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (i > 0) manifest += ", ";
    manifest += "\"" + files[i] + "\"";
  }
  manifest += "]";
  if (src.tracer) {
    manifest += ", \"trace\": {\"emitted\": " +
                std::to_string(src.tracer->emitted()) +
                ", \"dropped\": " + std::to_string(src.tracer->dropped()) + "}";
  }
  if (src.metrics) {
    manifest +=
        ", \"metrics_windows\": " + std::to_string(src.metrics->windows());
  }
  if (src.slo) {
    manifest += ", \"slo\": " + src.slo->summary_json();
  }
  manifest += "}\n";
  return write_text_file(src.dir + "/manifest.json", manifest);
}

void FlightRecorder::request_dump() {
  g_dump_requested.store(true, std::memory_order_relaxed);
}

bool FlightRecorder::take_dump_request() {
  return g_dump_requested.exchange(false, std::memory_order_relaxed);
}

void FlightRecorder::install_signal_handlers() {
#ifdef SIGUSR1
  std::signal(SIGUSR1, obs_sigusr1_handler);
#endif
  std::signal(SIGSEGV, obs_fatal_handler);
  std::signal(SIGABRT, obs_fatal_handler);
  std::signal(SIGFPE, obs_fatal_handler);
#ifdef SIGBUS
  std::signal(SIGBUS, obs_fatal_handler);
#endif
}

}  // namespace qec::obs
