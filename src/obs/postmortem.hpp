// Postmortem flight-recorder dumps: when a run dies — TraceError, engine
// divergence, a fatal signal — or when asked (SIGUSR1, --dump-obs-on-exit),
// write everything the obs layer knows into one bundle directory:
//
//   <dir>/manifest.json     reason, file list, ring + SLO health summary
//   <dir>/config.json       echo of the run's configuration
//   <dir>/trace.json        merged ring trace (Chrome/Perfetto JSON,
//                           wall-clock track included when profiling)
//   <dir>/metrics.csv       every closed metrics window
//   <dir>/last_window.csv   the final window alone (the last heartbeat)
//   <dir>/profile.csv       per-stage wall-clock profile
//   <dir>/slo.csv           SLO verdict time series
//
// Files for disabled subsystems are simply absent; the manifest lists
// what was written. tools/obs_report.py renders the bundle as a triage
// summary. The recorder is a process-wide singleton so signal handlers
// and bench catch-blocks can reach it without plumbing; run_stream arms
// it with the live obs objects when StreamObsConfig::dump_dir is set, and
// the shared_ptr sources keep the bundle writable after the run returns.
//
// Signal safety: the handlers installed by install_signal_handlers() are
// best-effort by design (flight recorders exist for exactly the moments
// nothing else works). SIGUSR1 only sets an atomic flag that the
// scheduling thread polls between dispatches — that path is fully safe.
// The fatal-signal path (SIGSEGV/SIGABRT/SIGBUS/SIGFPE) dumps directly
// from the handler, which is formally async-signal-unsafe; it is guarded
// against recursion, takes the lock with try_lock, and then re-raises
// with the default disposition so the crash still crashes.
#pragma once

#include <memory>
#include <string>

namespace qec::obs {

class MetricsRegistry;
class Profiler;
class SloEngine;
class Tracer;

/// What the recorder snapshots. All sources optional; config_json is the
/// already-serialized configuration echo.
struct PostmortemSources {
  std::shared_ptr<const Tracer> tracer;
  std::shared_ptr<const MetricsRegistry> metrics;
  std::shared_ptr<const Profiler> profiler;
  std::shared_ptr<const SloEngine> slo;
  std::string config_json;
  std::string dir;  ///< bundle directory (created on dump)
};

class FlightRecorder {
 public:
  static FlightRecorder& instance();

  /// Arms (or re-arms) the recorder with a run's live obs objects.
  void arm(PostmortemSources sources);
  /// Disarms; dump() becomes a no-op returning false.
  void disarm();
  bool armed() const;
  /// The armed bundle directory ("" when disarmed).
  std::string dir() const;

  /// Writes the bundle. Returns false when disarmed, when the directory
  /// cannot be created, or when another dump is in flight (try_lock — the
  /// fatal-signal path must never deadlock on a lock the crashed thread
  /// holds).
  bool dump(const std::string& reason);

  /// Async-signal-safe: flags a dump request (the SIGUSR1 handler).
  static void request_dump();
  /// Consumes the pending request flag (polled by the scheduling thread).
  static bool take_dump_request();

  /// Installs the SIGUSR1 dump-request handler and best-effort fatal
  /// handlers (SIGSEGV/SIGABRT/SIGBUS/SIGFPE) that dump then re-raise.
  /// Opt-in: benches call this only when --dump-obs-on-exit is given.
  static void install_signal_handlers();

 private:
  FlightRecorder() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace qec::obs
