#include "obs/profile.hpp"

#include <algorithm>
#include <cstdio>

namespace qec::obs {

namespace {

std::uint64_t next_profiler_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kDispatchAssign: return "dispatch_assign";
    case Stage::kLaneExecute: return "lane_execute";
    case Stage::kReduction: return "reduction";
    case Stage::kCache: return "cache";
    case Stage::kTelemetryClose: return "telemetry_close";
    case Stage::kTraceExport: return "trace_export";
  }
  return "unknown";
}

Profiler::ThreadSlot::ThreadSlot(std::size_t ring_capacity)
    : ring_capacity(ring_capacity) {
  for (auto& n : nanos) n.store(0, std::memory_order_relaxed);
  for (auto& c : calls) c.store(0, std::memory_order_relaxed);
  ring.reserve(ring_capacity);
}

Profiler::Profiler(std::size_t sample_ring)
    : epoch_(std::chrono::steady_clock::now()),
      sample_ring_(sample_ring > 0 ? sample_ring : 1),
      id_(next_profiler_id()) {}

Profiler::ThreadSlot& Profiler::register_thread() {
  std::lock_guard<std::mutex> lock(mutex_);
  slots_.push_back(std::make_unique<ThreadSlot>(sample_ring_));
  return *slots_.back();
}

Profiler::ThreadSlot& Profiler::slot() {
  // The cache is keyed by the profiler's process-unique id so a worker
  // thread that outlives one run (the persistent shared pool) re-registers
  // against the next run's profiler instead of writing into a freed slot.
  thread_local std::uint64_t cached_id = 0;
  thread_local ThreadSlot* cached_slot = nullptr;
  if (cached_id != id_) {
    cached_slot = &register_thread();
    cached_id = id_;
  }
  return *cached_slot;
}

void Profiler::record(Stage stage, std::uint64_t start_ns) {
  const std::uint64_t end_ns = now_ns();
  const std::uint64_t dur = end_ns > start_ns ? end_ns - start_ns : 0;
  ThreadSlot& s = slot();
  const auto i = static_cast<std::size_t>(stage);
  // Single-writer accumulation: a relaxed load+store pair compiles to a
  // plain add (no lock-prefixed RMW) and the scheduling thread only reads
  // between joins, so this is race-free and cheap.
  s.nanos[i].store(s.nanos[i].load(std::memory_order_relaxed) + dur,
                   std::memory_order_relaxed);
  s.calls[i].store(s.calls[i].load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  WallSample sample{start_ns, dur, stage};
  if (s.ring.size() < s.ring_capacity) {
    s.ring.push_back(sample);
  } else {
    s.ring[s.ring_head] = sample;
    ++s.ring_dropped;
  }
  s.ring_head = (s.ring_head + 1) % s.ring_capacity;
}

std::array<StageTotals, kStageCount> Profiler::totals() const {
  std::array<StageTotals, kStageCount> out{};
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& slot : slots_) {
    for (int i = 0; i < kStageCount; ++i) {
      const std::uint64_t calls = slot->calls[i].load(std::memory_order_relaxed);
      out[i].calls += calls;
      out[i].nanos += slot->nanos[i].load(std::memory_order_relaxed);
      if (calls > 0) ++out[i].threads;
    }
  }
  return out;
}

std::uint64_t Profiler::take_window_nanos(Stage stage) {
  const auto i = static_cast<std::size_t>(stage);
  std::uint64_t total = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& slot : slots_) {
      total += slot->nanos[i].load(std::memory_order_relaxed);
    }
  }
  const std::uint64_t delta = total - window_consumed_[i];
  window_consumed_[i] = total;
  return delta;
}

int Profiler::threads() const {
  // Slots are created lazily on a thread's first record(), so every slot
  // has recorded at least one scope and slot index == export tid.
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(slots_.size());
}

std::vector<WallSample> Profiler::thread_samples(int tid) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (tid < 0 || static_cast<std::size_t>(tid) >= slots_.size()) return {};
  std::vector<WallSample> out = slots_[tid]->ring;
  // Ring order is scope-close order; nested scopes close inner-first, so
  // sort by start time to keep the exported track monotonic per thread.
  std::stable_sort(out.begin(), out.end(),
                   [](const WallSample& a, const WallSample& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

std::uint64_t Profiler::thread_dropped(int tid) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (tid < 0 || static_cast<std::size_t>(tid) >= slots_.size()) return 0;
  return slots_[tid]->ring_dropped;
}

bool Profiler::write_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const auto agg = totals();
  std::fprintf(f, "stage,calls,threads,total_ns,mean_ns\n");
  for (int i = 0; i < kStageCount; ++i) {
    const double mean =
        agg[i].calls > 0
            ? static_cast<double>(agg[i].nanos) / static_cast<double>(agg[i].calls)
            : 0.0;
    std::fprintf(f, "%s,%llu,%d,%llu,%.1f\n", stage_name(static_cast<Stage>(i)),
                 static_cast<unsigned long long>(agg[i].calls), agg[i].threads,
                 static_cast<unsigned long long>(agg[i].nanos), mean);
  }
  std::fclose(f);
  return true;
}

}  // namespace qec::obs
