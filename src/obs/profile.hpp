// Scoped wall-clock self-profiler for the streaming decode service: where
// does the wall-clock actually go — dispatch/assignment, lane execution,
// reduction, the decode-cache probe/install path, telemetry window closes,
// or trace export?
//
// This is the one obs component that is *explicitly outside* the
// determinism contract (DESIGN.md section 12): it measures wall time, so
// its outputs (the per-stage profile CSV, the optional wall-clock track in
// the Chrome trace, and the prof_* metrics columns) differ run to run and
// thread count to thread count by design. Everything it touches is opt-in
// and off by default, so a profiling-disabled run's exports stay
// byte-identical; the *outcomes* of a profiling-enabled run are unchanged
// too — only timing is observed, never consulted.
//
// Design constraints, in order:
//  - disabled cost: one branch per scope (a null Profiler* test) — the
//    pinned `after_profile` bench record holds instrumented-but-disabled
//    throughput within 2% of `after_cache`;
//  - enabled cost: two steady_clock reads plus two relaxed per-thread
//    stores per scope — no locks, no RMW atomics, no allocation on the
//    hot path (the wall-sample ring is preallocated and overwrite-oldest,
//    the same flight-recorder semantics as the trace rings);
//  - per-thread accumulators: every worker writes only its own slot
//    (registered once per thread, cached thread_local), and the
//    scheduling thread reads the relaxed atomics between parallel
//    regions, so aggregation is data-race free without fences.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace qec::obs {

/// The fixed stage taxonomy. Stages may nest (kCache runs inside
/// kLaneExecute; kTelemetryClose inside kReduction), so per-stage totals
/// are not disjoint shares of the run — they answer "how much wall time
/// was spent under this label", Perfetto-slice style.
enum class Stage : std::uint8_t {
  kDispatchAssign = 0,  ///< pre-round lane state + policy assignment
  kLaneExecute,         ///< the lane-parallel region (per-lane body)
  kReduction,           ///< fixed-order reductions on the scheduling thread
  kCache,               ///< decode-cache probe + install (engine hot path)
  kTelemetryClose,      ///< metrics feed, window close, finish
  kTraceExport,         ///< serializing traces/CSVs after the run
};
inline constexpr int kStageCount = 6;

/// Stable lowercase stage name (CSV rows, trace slice labels).
const char* stage_name(Stage stage);

/// One recorded scope: start offset from the profiler's epoch plus
/// duration, both in nanoseconds of std::chrono::steady_clock.
struct WallSample {
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  Stage stage = Stage::kDispatchAssign;
};

/// Aggregate of one stage across all threads.
struct StageTotals {
  std::uint64_t calls = 0;
  std::uint64_t nanos = 0;
  int threads = 0;  ///< threads that entered the stage at least once
};

class Profiler {
 public:
  /// `sample_ring` bounds the per-thread wall-sample flight recorder
  /// (overwrite-oldest once full; accumulators are never dropped).
  explicit Profiler(std::size_t sample_ring = 1 << 13);

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Nanoseconds since this profiler's construction (steady clock).
  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Records one closed scope on the calling thread's slot.
  void record(Stage stage, std::uint64_t start_ns);

  /// Per-stage totals summed over every registered thread. Call from one
  /// thread while no parallel region is in flight.
  std::array<StageTotals, kStageCount> totals() const;

  /// Nanoseconds accrued on `stage` since the previous take — the
  /// windowed-metrics feed (scheduling thread only; the consumed cursor
  /// is not thread-safe).
  std::uint64_t take_window_nanos(Stage stage);

  /// Threads that have recorded at least one scope.
  int threads() const;

  /// Surviving wall samples of thread `tid` (registration order), sorted
  /// by start time — the Chrome-trace wall-clock track source.
  std::vector<WallSample> thread_samples(int tid) const;
  /// Samples overwritten on thread `tid`'s ring.
  std::uint64_t thread_dropped(int tid) const;

  /// Per-stage profile CSV: stage,calls,threads,total_ns,mean_ns.
  /// Returns false when the file cannot be opened (mirroring the
  /// telemetry writers). Wall-clock values: not deterministic.
  bool write_csv(const std::string& path) const;

 private:
  struct ThreadSlot {
    explicit ThreadSlot(std::size_t ring_capacity);
    // Single-writer accumulators: the owning thread updates them with
    // relaxed load+store (a plain add in machine code); the scheduling
    // thread reads them with relaxed loads between joins.
    std::array<std::atomic<std::uint64_t>, kStageCount> nanos;
    std::array<std::atomic<std::uint64_t>, kStageCount> calls;
    // Wall-sample ring: owner-thread writes only; read after the run.
    std::vector<WallSample> ring;
    std::size_t ring_capacity = 0;
    std::size_t ring_head = 0;
    std::uint64_t ring_dropped = 0;
  };

  ThreadSlot& slot();
  ThreadSlot& register_thread();

  const std::chrono::steady_clock::time_point epoch_;
  const std::size_t sample_ring_;
  const std::uint64_t id_;  ///< process-unique, for the thread_local cache

  mutable std::mutex mutex_;  ///< guards slots_ registration / aggregation
  std::vector<std::unique_ptr<ThreadSlot>> slots_;

  std::array<std::uint64_t, kStageCount> window_consumed_{};
};

/// RAII stage scope. A null profiler costs exactly one branch in the
/// constructor and one in the destructor — the instrumented-but-disabled
/// contract the after_profile bench record pins.
class ScopedStage {
 public:
  ScopedStage(Profiler* profiler, Stage stage)
      : profiler_(profiler), stage_(stage) {
    if (profiler_) start_ns_ = profiler_->now_ns();
  }
  ~ScopedStage() {
    if (profiler_) profiler_->record(stage_, start_ns_);
  }
  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

 private:
  Profiler* const profiler_;
  const Stage stage_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace qec::obs
