#include "obs/slo.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "common/csv.hpp"

namespace qec::obs {

namespace {

// Splits on `sep`, keeping empty pieces (an empty item is a spec error
// worth naming, not silently skipping).
std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool parse_int64(const std::string& text, std::int64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = static_cast<std::int64_t>(value);
  return true;
}

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}

std::string join(const std::vector<std::string>& items, const char* sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool objective_met(std::int64_t value, SloOp op, std::int64_t threshold) {
  switch (op) {
    case SloOp::kLt: return value < threshold;
    case SloOp::kLe: return value <= threshold;
    case SloOp::kGt: return value > threshold;
    case SloOp::kGe: return value >= threshold;
  }
  return false;
}

}  // namespace

const char* slo_op_name(SloOp op) {
  switch (op) {
    case SloOp::kLt: return "<";
    case SloOp::kLe: return "<=";
    case SloOp::kGt: return ">";
    case SloOp::kGe: return ">=";
  }
  return "?";
}

const char* slo_state_name(SloState state) {
  switch (state) {
    case SloState::kOk: return "ok";
    case SloState::kWarning: return "warning";
    case SloState::kPage: return "page";
  }
  return "unknown";
}

std::string SloObjective::spec() const {
  return metric + slo_op_name(op) + std::to_string(threshold);
}

SloConfig parse_slo_spec(const std::string& spec) {
  SloConfig config;
  std::vector<std::string> problems;  // every offending item, not just the first

  for (const std::string& item : split(spec, ',')) {
    if (item.empty()) {
      problems.push_back("'' (empty item)");
      continue;
    }
    // Objectives use a comparison operator; options use a bare '='.
    // Check the two-char operators first so "<=" is not read as "<" + "=".
    struct OpToken {
      const char* text;
      SloOp op;
    };
    static constexpr OpToken kOps[] = {{"<=", SloOp::kLe},
                                       {">=", SloOp::kGe},
                                       {"<", SloOp::kLt},
                                       {">", SloOp::kGt}};
    SloOp op{};
    std::size_t op_pos = std::string::npos;
    std::size_t op_len = 0;
    for (const OpToken& token : kOps) {
      const std::size_t pos = item.find(token.text);
      if (pos != std::string::npos) {
        op = token.op;
        op_pos = pos;
        op_len = std::strlen(token.text);
        break;
      }
    }

    if (op_pos != std::string::npos) {
      SloObjective objective;
      objective.metric = item.substr(0, op_pos);
      objective.op = op;
      const std::string rhs = item.substr(op_pos + op_len);
      if (!valid_metric_name(objective.metric)) {
        problems.push_back("'" + item + "' (bad metric name '" +
                           objective.metric + "')");
        continue;
      }
      if (!parse_int64(rhs, &objective.threshold)) {
        problems.push_back("'" + item + "' (threshold '" + rhs +
                           "' is not an integer)");
        continue;
      }
      config.objectives.push_back(std::move(objective));
      continue;
    }

    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      problems.push_back("'" + item +
                         "' (expected metric<op>threshold or key=value)");
      continue;
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    std::int64_t parsed = 0;
    if (key != "window" && key != "fast" && key != "slow") {
      problems.push_back("'" + item + "' (unknown option '" + key + "')");
      continue;
    }
    if (!parse_int64(value, &parsed) || parsed < 1) {
      problems.push_back("'" + item + "' (option '" + key +
                         "' needs a positive integer)");
      continue;
    }
    if (key == "window") {
      config.window = static_cast<int>(parsed);
    } else if (key == "fast") {
      config.fast = static_cast<int>(parsed);
    } else {
      config.slow = static_cast<int>(parsed);
    }
  }

  if (config.slow < config.fast) {
    problems.push_back("'slow=" + std::to_string(config.slow) +
                       "' (slow burn window must be >= fast=" +
                       std::to_string(config.fast) + ")");
  }
  if (config.objectives.empty() && problems.empty()) {
    problems.push_back("'" + spec + "' (no objectives)");
  }
  if (!problems.empty()) {
    throw std::invalid_argument("bad slo spec: " + join(problems, "; "));
  }
  return config;
}

SloEngine::SloEngine(SloConfig config) : config_(std::move(config)) {
  runtime_.resize(config_.objectives.size());
  summaries_.resize(config_.objectives.size());
  for (std::size_t i = 0; i < config_.objectives.size(); ++i) {
    summaries_[i].spec = config_.objectives[i].spec();
    runtime_[i].ring.assign(static_cast<std::size_t>(config_.slow), 0);
  }
}

void SloEngine::attach(MetricsRegistry& metrics, Track* control) {
  metrics_ = &metrics;
  control_ = control;

  // Register our own counters BEFORE resolving objective columns: new
  // counters land ahead of every gauge/histogram column in value_schema(),
  // so resolving first would leave each objective reading a column three
  // slots to the left of its metric.
  counter_ok_ = metrics.add_counter("slo_ok");
  counter_warning_ = metrics.add_counter("slo_warning");
  counter_page_ = metrics.add_counter("slo_page");

  const std::vector<std::string> schema = metrics.value_schema();
  std::vector<std::string> unknown;
  for (std::size_t i = 0; i < config_.objectives.size(); ++i) {
    const auto it = std::find(schema.begin(), schema.end(),
                              config_.objectives[i].metric);
    if (it == schema.end()) {
      unknown.push_back("'" + config_.objectives[i].metric + "'");
    } else {
      runtime_[i].column = static_cast<int>(it - schema.begin());
    }
  }
  if (!unknown.empty()) {
    throw std::invalid_argument("bad slo spec: unknown metric(s) " +
                                join(unknown, ", ") +
                                " — known metrics: " + join(schema, ", "));
  }

  metrics.set_window_observer(
      [this](const WindowSnapshot& snapshot) { on_window(snapshot); });
}

void SloEngine::on_window(const WindowSnapshot& snapshot) {
  const auto slow = static_cast<std::size_t>(config_.slow);
  for (std::size_t i = 0; i < config_.objectives.size(); ++i) {
    const SloObjective& objective = config_.objectives[i];
    ObjectiveRuntime& rt = runtime_[i];
    const std::int64_t value =
        (*snapshot.values)[static_cast<std::size_t>(rt.column)];
    const bool violated = !objective_met(value, objective.op, objective.threshold);

    rt.ring[rt.head] = violated ? 1 : 0;
    rt.head = (rt.head + 1) % slow;
    rt.filled = std::min(rt.filled + 1, slow);

    int fast_bad = 0;
    int slow_bad = 0;
    for (std::size_t j = 1; j <= rt.filled; ++j) {
      const std::size_t idx = (rt.head + slow - j) % slow;
      if (rt.ring[idx]) {
        ++slow_bad;
        if (j <= static_cast<std::size_t>(config_.fast)) ++fast_bad;
      }
    }

    // Dual-window burn rate with *fixed* denominators (fast/slow, not the
    // windows seen so far): a short history cannot page, and the state is
    // a pure function of the violation bit sequence.
    SloState state = SloState::kOk;
    if (fast_bad == config_.fast && 2 * slow_bad >= config_.slow) {
      state = SloState::kPage;
    } else if (2 * fast_bad >= config_.fast && 4 * slow_bad >= config_.slow) {
      state = SloState::kWarning;
    }

    switch (state) {
      case SloState::kOk: metrics_->count(counter_ok_); break;
      case SloState::kWarning: metrics_->count(counter_warning_); break;
      case SloState::kPage: metrics_->count(counter_page_); break;
    }
    if (control_ && rt.last_state != static_cast<int>(state)) {
      control_->emit_at(snapshot.last, EventKind::kSloState,
                        static_cast<std::uint64_t>(i),
                        static_cast<std::uint16_t>(state));
    }
    rt.last_state = static_cast<int>(state);

    SloVerdict verdict;
    verdict.window = snapshot.index;
    verdict.round_last = snapshot.last;
    verdict.objective = static_cast<int>(i);
    verdict.value = value;
    verdict.violated = violated;
    verdict.fast_bad = fast_bad;
    verdict.slow_bad = slow_bad;
    verdict.state = state;
    verdicts_.push_back(verdict);

    SloObjectiveSummary& summary = summaries_[i];
    ++summary.windows;
    if (violated) ++summary.violations;
    if (state == SloState::kWarning) ++summary.warnings;
    if (state == SloState::kPage) {
      ++summary.pages;
      ever_paged_ = true;
    }
    summary.state = state;
  }
}

SloState SloEngine::worst_state() const {
  SloState worst = SloState::kOk;
  for (const auto& summary : summaries_) {
    if (static_cast<int>(summary.state) > static_cast<int>(worst)) {
      worst = summary.state;
    }
  }
  return worst;
}

bool SloEngine::compliant() const { return !ever_paged_; }

bool SloEngine::write_csv(const std::string& path) const {
  CsvWriter csv(path, {"window", "round_last", "objective", "metric", "op",
                       "threshold", "value", "violated", "fast_bad", "fast",
                       "slow_bad", "slow", "state"});
  if (!csv.ok()) return false;
  for (const auto& verdict : verdicts_) {
    const SloObjective& objective =
        config_.objectives[static_cast<std::size_t>(verdict.objective)];
    csv.add_row({std::to_string(verdict.window),
                 std::to_string(verdict.round_last),
                 std::to_string(verdict.objective), objective.metric,
                 slo_op_name(objective.op), std::to_string(objective.threshold),
                 std::to_string(verdict.value), verdict.violated ? "1" : "0",
                 std::to_string(verdict.fast_bad), std::to_string(config_.fast),
                 std::to_string(verdict.slow_bad), std::to_string(config_.slow),
                 slo_state_name(verdict.state)});
  }
  csv.flush();
  return true;
}

std::string SloEngine::summary_json() const {
  std::string out = "{";
  std::vector<std::string> specs;
  for (const auto& objective : config_.objectives) {
    specs.push_back(objective.spec());
  }
  out += "\"spec\": \"" + json_escape(join(specs, ",")) + "\"";
  out += ", \"metrics_window\": " +
         std::to_string(metrics_ ? metrics_->window() : config_.window);
  out += ", \"fast\": " + std::to_string(config_.fast);
  out += ", \"slow\": " + std::to_string(config_.slow);
  out += ", \"objectives\": [";
  for (std::size_t i = 0; i < summaries_.size(); ++i) {
    const SloObjectiveSummary& summary = summaries_[i];
    if (i > 0) out += ", ";
    out += "{\"spec\": \"" + json_escape(summary.spec) + "\"";
    out += ", \"windows\": " + std::to_string(summary.windows);
    out += ", \"violations\": " + std::to_string(summary.violations);
    out += ", \"warnings\": " + std::to_string(summary.warnings);
    out += ", \"pages\": " + std::to_string(summary.pages);
    out += ", \"final_state\": \"";
    out += slo_state_name(summary.state);
    out += "\"}";
  }
  out += "], \"worst_state\": \"";
  out += slo_state_name(worst_state());
  out += "\", \"compliant\": ";
  out += compliant() ? "true" : "false";
  out += "}";
  return out;
}

bool write_prom_snapshot(const MetricsRegistry& metrics, const SloEngine* slo,
                         const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f,
               "# Streaming decode service snapshot (Prometheus text "
               "exposition).\n# Cumulative over all closed metrics windows; "
               "integer-valued and\n# thread-count invariant.\n");
  for (int i = 0; i < metrics.num_counters(); ++i) {
    const std::string& name = metrics.counter_name(i);
    std::fprintf(f, "# TYPE qec_stream_%s counter\nqec_stream_%s %llu\n",
                 name.c_str(), name.c_str(),
                 static_cast<unsigned long long>(metrics.counter_total(i)));
  }
  for (int i = 0; i < metrics.num_gauges(); ++i) {
    const std::string& name = metrics.gauge_name(i);
    std::fprintf(f, "# TYPE qec_stream_%s gauge\nqec_stream_%s %lld\n",
                 name.c_str(), name.c_str(),
                 static_cast<long long>(metrics.gauge_value(i)));
  }
  for (int i = 0; i < metrics.num_histograms(); ++i) {
    const std::string& name = metrics.histogram_name(i);
    const LogHistogram& hist = metrics.histogram_total(i);
    std::fprintf(f, "# TYPE qec_stream_%s summary\n", name.c_str());
    std::fprintf(f, "qec_stream_%s{quantile=\"0.5\"} %llu\n", name.c_str(),
                 static_cast<unsigned long long>(hist.quantile(50)));
    std::fprintf(f, "qec_stream_%s{quantile=\"0.95\"} %llu\n", name.c_str(),
                 static_cast<unsigned long long>(hist.quantile(95)));
    std::fprintf(f, "qec_stream_%s{quantile=\"0.99\"} %llu\n", name.c_str(),
                 static_cast<unsigned long long>(hist.quantile(99)));
    std::fprintf(f, "qec_stream_%s_sum %llu\n", name.c_str(),
                 static_cast<unsigned long long>(hist.sum()));
    std::fprintf(f, "qec_stream_%s_count %llu\n", name.c_str(),
                 static_cast<unsigned long long>(hist.count()));
  }
  std::fprintf(f,
               "# TYPE qec_stream_metrics_windows gauge\n"
               "qec_stream_metrics_windows %d\n",
               metrics.windows());
  if (slo) {
    std::fprintf(f, "# TYPE qec_slo_state gauge\n");
    for (const auto& summary : slo->summaries()) {
      std::fprintf(f, "qec_slo_state{objective=\"%s\"} %d\n",
                   summary.spec.c_str(), static_cast<int>(summary.state));
    }
  }
  std::fclose(f);
  return true;
}

}  // namespace qec::obs
