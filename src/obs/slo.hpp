// Declarative SLO engine for the streaming decode service: parse an
// objective list like `sojourn_p99<8,depth_p95<=12,window=256`, evaluate
// it against every closed metrics window, and track burn-rate state per
// objective with the classic dual-window scheme (a *fast* window of
// recent metric windows for paging, a *slow* window for sustained burn /
// early warning — the Google-SRE multiwindow multi-burn-rate alert,
// transplanted into logical rounds).
//
// Everything here derives from the MetricsRegistry's windowed numeric
// snapshots, which are fed on the scheduling thread in fixed order — so
// verdicts, counters, trace events, and the compliance summary are pure
// functions of (trace, config minus threads): thread-count invariant and
// CI-diffable, unlike any wall-clock alerting. The wall-clock profiler
// (obs/profile.hpp) is the explicitly non-deterministic counterpart.
//
// Grammar (comma-separated items, spec-parsed like decoders/policies —
// every malformed item is reported, not just the first):
//   objective := <metric><op><int64>     op in { < <= > >= }
//                metric names a value_schema() column, e.g. sojourn_p99
//   option    := window=<rounds>  metrics window override (>= 1)
//              | fast=<windows>   fast burn window, default 4  (>= 1)
//              | slow=<windows>   slow burn window, default 16 (>= fast)
//
// Burn-rate state per objective, re-evaluated at each window close over
// the last `fast` / `slow` windows' violation bits:
//   page    — every fast window violated AND >= 1/2 of slow violated
//   warning — >= 1/2 of fast violated AND >= 1/4 of slow violated
//   ok      — otherwise
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace qec::obs {

enum class SloOp : std::uint8_t { kLt = 0, kLe, kGt, kGe };
const char* slo_op_name(SloOp op);  // "<", "<=", ">", ">="

enum class SloState : std::uint8_t { kOk = 0, kWarning = 1, kPage = 2 };
const char* slo_state_name(SloState state);  // "ok", "warning", "page"

struct SloObjective {
  std::string metric;  ///< a MetricsRegistry value_schema() column name
  SloOp op = SloOp::kLt;
  std::int64_t threshold = 0;

  /// The objective as written, e.g. "sojourn_p99<8".
  std::string spec() const;
};

struct SloConfig {
  std::vector<SloObjective> objectives;
  int window = 0;  ///< metrics-window override in rounds; 0 = keep default
  int fast = 4;    ///< fast burn window, in metric windows
  int slow = 16;   ///< slow burn window, in metric windows
};

/// Parses an SLO spec string. Throws std::invalid_argument naming *every*
/// offending item/key, not just the first. Requires >= 1 objective.
SloConfig parse_slo_spec(const std::string& spec);

/// One evaluated (window, objective) pair — a row of the verdict CSV.
struct SloVerdict {
  int window = 0;              ///< metrics window ordinal
  std::int64_t round_last = 0; ///< last logical round of the window
  int objective = 0;           ///< index into config().objectives
  std::int64_t value = 0;      ///< the metric's windowed value
  bool violated = false;
  int fast_bad = 0;            ///< violations in the last `fast` windows
  int slow_bad = 0;            ///< violations in the last `slow` windows
  SloState state = SloState::kOk;
};

/// Whole-run tallies per objective, for the summary/compliance report.
struct SloObjectiveSummary {
  std::string spec;            ///< "sojourn_p99<8"
  std::int64_t windows = 0;
  std::int64_t violations = 0;
  std::int64_t warnings = 0;   ///< windows spent in warning
  std::int64_t pages = 0;      ///< windows spent in page
  SloState state = SloState::kOk;  ///< state after the last window
};

class SloEngine {
 public:
  explicit SloEngine(SloConfig config);

  /// Resolves objective metrics against the registry's value schema
  /// (throws std::invalid_argument naming every unknown metric), registers
  /// the slo_ok/slo_warning/slo_page counters, and installs the window
  /// observer. `control` (may be null) receives a kSloState trace event on
  /// the first window and on every state transition. Call after every
  /// other instrument is registered and before the first tick.
  void attach(MetricsRegistry& metrics, Track* control);

  const SloConfig& config() const { return config_; }
  const std::vector<SloVerdict>& verdicts() const { return verdicts_; }
  const std::vector<SloObjectiveSummary>& summaries() const {
    return summaries_;
  }

  /// Worst *current* state across objectives.
  SloState worst_state() const;
  /// True when no objective ever reached page.
  bool compliant() const;

  /// Verdict time series CSV: one row per (window, objective).
  bool write_csv(const std::string& path) const;

  /// Compliance summary as a self-contained JSON object (the `slo` block
  /// of the benches' --json run records and the postmortem manifest).
  std::string summary_json() const;

 private:
  void on_window(const WindowSnapshot& snapshot);

  struct ObjectiveRuntime {
    int column = -1;                 ///< index into the snapshot values
    std::vector<std::uint8_t> ring;  ///< last `slow` violation bits
    std::size_t head = 0;
    std::size_t filled = 0;
    int last_state = -1;             ///< -1 = no window evaluated yet
  };

  SloConfig config_;
  std::vector<ObjectiveRuntime> runtime_;
  std::vector<SloVerdict> verdicts_;
  std::vector<SloObjectiveSummary> summaries_;
  MetricsRegistry* metrics_ = nullptr;
  Track* control_ = nullptr;
  int counter_ok_ = -1;
  int counter_warning_ = -1;
  int counter_page_ = -1;
  bool ever_paged_ = false;
};

/// Prometheus text-exposition snapshot of a finished run: cumulative
/// counters, final gauges, merged histogram summaries (quantile labels,
/// _sum/_count), plus qec_slo_state per objective when `slo` is non-null.
/// Integer-valued throughout, so the file is byte-identical at any thread
/// count. Returns false when the file cannot be opened.
bool write_prom_snapshot(const MetricsRegistry& metrics, const SloEngine* slo,
                         const std::string& path);

}  // namespace qec::obs
