#include "obs/trace.hpp"

#include <algorithm>

namespace qec::obs {

const char* event_name(EventKind kind) {
  switch (kind) {
    case EventKind::kDispatch: return "dispatch";
    case EventKind::kPush: return "push";
    case EventKind::kOverflow: return "overflow";
    case EventKind::kSpend: return "serve";
    case EventKind::kPop: return "pop";
    case EventKind::kStarve: return "starve";
    case EventKind::kPause: return "paused";
    case EventKind::kResume: return "paused";  // closes the kPause span
    case EventKind::kCodelArm: return "codel_arm";
    case EventKind::kCodelDisarm: return "codel_disarm";
    case EventKind::kDrained: return "drained";
    case EventKind::kGrant: return "grant";
    case EventKind::kCache: return "cache";
    case EventKind::kSloState: return "slo";
  }
  return "unknown";
}

Tracer::Tracer(int lanes, int engines, std::size_t ring_capacity)
    : control_(TrackKind::kControl, 0, ring_capacity) {
  lanes_.reserve(static_cast<std::size_t>(lanes));
  for (int i = 0; i < lanes; ++i) {
    lanes_.emplace_back(TrackKind::kLane, i, ring_capacity);
  }
  engines_.reserve(static_cast<std::size_t>(engines));
  for (int e = 0; e < engines; ++e) {
    engines_.emplace_back(TrackKind::kEngine, e, ring_capacity);
  }
}

std::uint64_t Tracer::emitted() const {
  std::uint64_t total = control_.ring().emitted();
  for (const auto& t : lanes_) total += t.ring().emitted();
  for (const auto& t : engines_) total += t.ring().emitted();
  return total;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = control_.ring().dropped();
  for (const auto& t : lanes_) total += t.ring().dropped();
  for (const auto& t : engines_) total += t.ring().dropped();
  return total;
}

std::vector<MergedEvent> Tracer::merged() const {
  std::vector<MergedEvent> out;
  std::size_t total = control_.ring().size();
  for (const auto& t : lanes_) total += t.ring().size();
  for (const auto& t : engines_) total += t.ring().size();
  out.reserve(total);

  const auto append = [&out](const Track& track) {
    for (const TraceEvent& event : track.ring().events()) {
      out.push_back({track.kind(), track.id(), event});
    }
  };
  append(control_);
  for (const auto& t : lanes_) append(t);
  for (const auto& t : engines_) append(t);

  // Canonical order: time first, then control < lanes < engines, then
  // track id, then per-track emission order. Stable across thread counts
  // because every ring's content already is.
  std::stable_sort(out.begin(), out.end(),
                   [](const MergedEvent& a, const MergedEvent& b) {
                     if (a.event.ts != b.event.ts) return a.event.ts < b.event.ts;
                     if (a.track != b.track) return a.track < b.track;
                     if (a.id != b.id) return a.id < b.id;
                     return a.event.seq < b.event.seq;
                   });
  return out;
}

}  // namespace qec::obs
