// Deterministic event tracing for the streaming decode service: the
// observability layer the windowed-telemetry and open-system work hangs
// off (ROADMAP). Every interesting moment of a run — scheduler dispatch,
// layer push/pop, engine grant spend, admission pause/resume, CoDel
// arm/disarm, overflow, drain — is recorded as a fixed-size binary event
// on a per-track ring buffer, merged in deterministic order at flush, and
// exported as Chrome-trace-event JSON (src/obs/chrome_trace.hpp) so any
// run opens in Perfetto / chrome://tracing as a lanes x engines timeline.
//
// Determinism contract (the whole point): timestamps are *logical rounds*,
// never wall clock, and every track has exactly one writer —
//
//  - lane tracks are written only inside the lane-parallel region, by
//    whichever worker owns that lane for the dispatch (parallel_for calls
//    each lane index exactly once per dispatch, and dispatches are
//    separated by joins, so ring writes are single-writer by construction
//    — lock-free without a single atomic);
//  - the control track and the engine tracks are written only on the
//    scheduling thread, in the fixed reduction order.
//
// A lane's event stream is therefore a pure function of (trace, config
// minus threads), and the merged export is byte-identical at any thread
// count — the same contract every telemetry CSV already honours.
//
// Ring semantics: fixed capacity per track, overwrite-oldest (the classic
// flight-recorder trace ring — a bounded run keeps everything, an
// over-long one keeps the end), with an exact dropped-event counter. A
// disabled tracer costs the hooks one branch each (a null pointer test).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qec::obs {

/// What happened. Payload/arg meaning is per-kind (see event_name and
/// docs/observability.md for the taxonomy).
enum class EventKind : std::uint16_t {
  kDispatch = 0,  ///< control: round scheduled; payload = engines that served
  kPush,          ///< lane: layer accepted; payload = post-push depth, arg = real
  kOverflow,      ///< lane: push into a full Reg — terminal; payload = depth
  kSpend,         ///< lane: engine grant consumed; payload = cycles
  kPop,           ///< lane: engine fully decoded a layer; payload = layer cycles
  kStarve,        ///< lane: backlogged and denied an engine; payload = depth
  kPause,         ///< lane: admission froze the clock; payload = depth, arg = law
  kResume,        ///< lane: admission re-admitted; payload = depth
  kCodelArm,      ///< lane: CoDel deadline armed; payload = head sojourn
  kCodelDisarm,   ///< lane: sojourn dipped below target before the deadline
  kDrained,       ///< lane: backlog fully consumed (operational success)
  kGrant,         ///< engine: grant consumed by a lane; payload = lane
  kCache,         ///< lane: decode-cache outcome; payload = cycles,
                  ///< arg = 0 miss / 1 hit / 2 all-zero fast path
  kSloState,      ///< control: SLO burn-rate state at a window close;
                  ///< payload = objective index, arg = 0 ok / 1 warning / 2 page
};

/// kSloState `arg` values: the objective's burn-rate state.
inline constexpr std::uint16_t kSloOk = 0;
inline constexpr std::uint16_t kSloWarning = 1;
inline constexpr std::uint16_t kSloPage = 2;

/// kCache `arg` values: how the engine resolved the run.
inline constexpr std::uint16_t kCacheMiss = 0;
inline constexpr std::uint16_t kCacheHit = 1;
inline constexpr std::uint16_t kCacheZero = 2;
inline constexpr std::uint16_t kCacheBypass = 3;

/// kPause `arg` values: which law froze the lane.
inline constexpr std::uint16_t kPauseByDepth = 0;
inline constexpr std::uint16_t kPauseByCodel = 1;

/// Stable lowercase name of an event kind (trace JSON, goldens, logs).
const char* event_name(EventKind kind);

/// One fixed-size binary trace record. The track (lane / engine / control)
/// is a property of the ring the event lives in, not of the event, so the
/// record stays at 24 bytes.
struct TraceEvent {
  std::int64_t ts = 0;        ///< logical round (never wall clock)
  std::uint64_t payload = 0;  ///< kind-specific (depth, cycles, lane, ...)
  std::uint32_t seq = 0;      ///< per-track emission index (gap = drops)
  std::uint16_t kind = 0;     ///< EventKind
  std::uint16_t arg = 0;      ///< kind-specific small argument
};

/// Fixed-capacity single-writer event ring: overwrite-oldest with exact
/// drop accounting. Storage grows lazily up to `capacity`, so a fleet of
/// mostly-quiet tracks costs what it records, not what it could record.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity) : capacity_(capacity) {}

  void emit(std::int64_t ts, EventKind kind, std::uint64_t payload,
            std::uint16_t arg) {
    TraceEvent event;
    event.ts = ts;
    event.payload = payload;
    event.seq = seq_++;
    event.kind = static_cast<std::uint16_t>(kind);
    event.arg = arg;
    if (ring_.size() < capacity_) {
      ring_.push_back(event);
    } else if (capacity_ > 0) {
      ring_[head_] = event;  // overwrite the oldest survivor
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
    } else {
      ++dropped_;
    }
  }

  std::uint64_t emitted() const { return seq_; }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t size() const { return ring_.size(); }

  /// Surviving events in emission order (oldest survivor first).
  std::vector<TraceEvent> events() const {
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    return out;
  }

 private:
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;  ///< index of the oldest survivor once full
  std::vector<TraceEvent> ring_;
  std::uint32_t seq_ = 0;
  std::uint64_t dropped_ = 0;
};

enum class TrackKind : std::uint8_t { kControl = 0, kLane = 1, kEngine = 2 };

/// One event track (control, one lane, or one engine): a ring plus the
/// track's current logical round. The writer sets the round once per
/// dispatch (set_round) and emits against it, so deep hooks — the engine
/// pop path — need no round plumbing; scheduling-thread hooks that know
/// the round emit_at() it directly.
class Track {
 public:
  Track(TrackKind kind, int id, std::size_t capacity)
      : ring_(capacity), kind_(kind), id_(id) {}

  void set_round(std::int64_t round) { round_ = round; }
  std::int64_t round() const { return round_; }

  void emit(EventKind kind, std::uint64_t payload = 0, std::uint16_t arg = 0) {
    ring_.emit(round_, kind, payload, arg);
  }
  void emit_at(std::int64_t ts, EventKind kind, std::uint64_t payload = 0,
               std::uint16_t arg = 0) {
    ring_.emit(ts, kind, payload, arg);
  }

  TrackKind kind() const { return kind_; }
  int id() const { return id_; }
  const TraceRing& ring() const { return ring_; }

 private:
  TraceRing ring_;
  std::int64_t round_ = 0;
  TrackKind kind_;
  int id_ = 0;
};

/// A trace event joined with its track, the unit of the merged export.
struct MergedEvent {
  TrackKind track = TrackKind::kControl;
  int id = 0;
  TraceEvent event;
};

/// The per-run tracer: one control track, one track per lane, one per
/// engine. merged() flattens every ring into the canonical deterministic
/// order — (ts, control < lanes < engines, track id, per-track seq) — the
/// order the Chrome export and the golden tests pin.
class Tracer {
 public:
  Tracer(int lanes, int engines, std::size_t ring_capacity);

  Track& control() { return control_; }
  Track& lane(int i) { return lanes_[static_cast<std::size_t>(i)]; }
  Track& engine(int e) { return engines_[static_cast<std::size_t>(e)]; }
  const Track& control() const { return control_; }
  const Track& lane(int i) const { return lanes_[static_cast<std::size_t>(i)]; }
  const Track& engine(int e) const {
    return engines_[static_cast<std::size_t>(e)];
  }

  int lanes() const { return static_cast<int>(lanes_.size()); }
  int engines() const { return static_cast<int>(engines_.size()); }

  /// Total events emitted / overwritten-on-ring-full across all tracks.
  std::uint64_t emitted() const;
  std::uint64_t dropped() const;

  /// Every surviving event, sorted by (ts, track kind, track id, seq).
  std::vector<MergedEvent> merged() const;

 private:
  Track control_;
  std::vector<Track> lanes_;
  std::vector<Track> engines_;
};

}  // namespace qec::obs
