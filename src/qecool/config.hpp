// Configuration knobs of the QECOOL engine (Algorithm 1 parameters plus the
// hardware cycle-cost model of Section IV / Table III).
#pragma once

#include <cstdint>

namespace qec {

/// Cycle costs of the primitive hardware actions. Defaults model each
/// signal hop / register action as one clock cycle, matching the
/// architecture's distributed single-cycle design; Table III's character
/// (avg ~ d at low p, heavy tail in d and p) follows from these.
struct CycleModel {
  std::uint32_t row_skip = 1;       ///< Row Master skipping an all-clean row.
  std::uint32_t token_hop = 1;      ///< Token advancing by one Unit.
  std::uint32_t request = 1;        ///< Sink broadcasting requestSpike().
  std::uint32_t correct = 1;        ///< Correction signal to the data qubit.
  std::uint32_t pass_overhead = 1;  ///< sendResetFlag / per-pass bookkeeping.
  std::uint32_t pop = 1;            ///< SHIFTREG broadcast.
};

struct QecoolConfig {
  /// Reg queue capacity per Unit. The paper's hardware uses 7 (Section
  /// IV-A: "at least three measurement values ... 7-bit with some margin");
  /// batch-QECOOL sets it to the full number of stored rounds.
  int reg_depth = 7;

  /// Vertical threshold: a base layer b is decoded only once m - b > thv
  /// (Algorithm 1, Controller line 9). -1 reproduces batch behaviour
  /// (decode any stored layer); the paper selects 3 for on-line QEC.
  int thv = 3;

  /// Maximum hop-limit for spike propagation; the Controller escalates the
  /// timeout C from 1 to nlimit and restarts (Algorithm 1, outer loop).
  /// <= 0 selects an automatic bound large enough to reach any defect or
  /// boundary: 2(d-1) + reg_depth.
  int nlimit = 0;

  /// Paper footnote 1: Boundary Unit spikes are delayed slightly so that a
  /// normal Unit at the same distance wins the race.
  bool deprioritize_boundary = true;

  /// Ablation knob (not in the paper): start every pass at the maximal hop
  /// limit instead of escalating C from 1. This removes the
  /// closest-pairs-first property of the Controller and degrades accuracy
  /// (bench/table4_decoder_comparison).
  bool start_at_max_hop = false;

  /// Record a per-match event trace (QecoolEngine::trace()) for debugging
  /// and analysis. Off by default: traces grow with the defect count.
  bool record_trace = false;

  CycleModel cycles;
};

}  // namespace qec
