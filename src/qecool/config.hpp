// Configuration knobs of the QECOOL engine (Algorithm 1 parameters plus the
// hardware cycle-cost model of Section IV / Table III).
#pragma once

#include <cstdint>

namespace qec {

/// Cycle costs of the primitive hardware actions. Defaults model each
/// signal hop / register action as one clock cycle, matching the
/// architecture's distributed single-cycle design; Table III's character
/// (avg ~ d at low p, heavy tail in d and p) follows from these.
struct CycleModel {
  std::uint32_t row_skip = 1;       ///< Row Master skipping an all-clean row.
  std::uint32_t token_hop = 1;      ///< Token advancing by one Unit.
  std::uint32_t request = 1;        ///< Sink broadcasting requestSpike().
  std::uint32_t correct = 1;        ///< Correction signal to the data qubit.
  std::uint32_t pass_overhead = 1;  ///< sendResetFlag / per-pass bookkeeping.
  std::uint32_t pop = 1;            ///< SHIFTREG broadcast.
};

/// Decode-window memoization knobs (src/qecool/decode_cache.hpp, DESIGN.md
/// section 13). The cache is engine-external — QecoolEngine only holds a
/// non-owning pointer — so this config rides along wherever an engine is
/// built (run_online, BatchQecoolDecoder, the streaming service) and each
/// owner decides how many shards to materialize.
struct DecodeCacheConfig {
  /// Master switch: false reproduces the uncached engine byte for byte
  /// (no lookups, no installs, no cache trace events).
  bool enabled = true;

  /// Entries per cache shard; 0 behaves like enabled = false.
  int entries = 4096;

  /// Cache shards for the streaming service's lane pool. Lanes are split
  /// into `shards` contiguous blocks, each block sharing one shard and
  /// executing sequentially on whichever worker claims it — so cache
  /// contents never depend on --threads. <= 0 picks one shard per 256
  /// lanes (capped at 16). Single-engine owners ignore this.
  int shards = 0;

  /// Sparsity gate: windows carrying more than this many defect bits
  /// across all resident layers bypass the cache (no probe, no install —
  /// counted in DecodeCacheStats::bypasses). Dense backlogged windows
  /// are near-unique, so probing them only buys key-build and install
  /// churn; the small windows that actually recur sit well under this
  /// bound. <= 0 disables the gate (every eligible window is probed).
  int max_defects = 6;
};

struct QecoolConfig {
  /// Reg queue capacity per Unit. The paper's hardware uses 7 (Section
  /// IV-A: "at least three measurement values ... 7-bit with some margin");
  /// batch-QECOOL sets it to the full number of stored rounds.
  int reg_depth = 7;

  /// Vertical threshold: a base layer b is decoded only once m - b > thv
  /// (Algorithm 1, Controller line 9). -1 reproduces batch behaviour
  /// (decode any stored layer); the paper selects 3 for on-line QEC.
  int thv = 3;

  /// Maximum hop-limit for spike propagation; the Controller escalates the
  /// timeout C from 1 to nlimit and restarts (Algorithm 1, outer loop).
  /// <= 0 selects an automatic bound large enough to reach any defect or
  /// boundary: 2(d-1) + reg_depth.
  int nlimit = 0;

  /// Paper footnote 1: Boundary Unit spikes are delayed slightly so that a
  /// normal Unit at the same distance wins the race.
  bool deprioritize_boundary = true;

  /// Ablation knob (not in the paper): start every pass at the maximal hop
  /// limit instead of escalating C from 1. This removes the
  /// closest-pairs-first property of the Controller and degrades accuracy
  /// (bench/table4_decoder_comparison).
  bool start_at_max_hop = false;

  /// Record a per-match event trace (QecoolEngine::trace()) for debugging
  /// and analysis. Off by default: traces grow with the defect count.
  bool record_trace = false;

  CycleModel cycles;

  /// Decode-window memoization (attached by the engine's owner; the
  /// record_trace path bypasses it because MatchEvent cycle stamps depend
  /// on absolute engine time, which replay does not reproduce).
  DecodeCacheConfig cache;

  /// Test-only fault injection for the fuzz harness's mutation-testing
  /// self-check (src/fuzz, docs/fuzzing.md): a deliberately planted engine
  /// bug that the differential oracles / invariant probe must detect, or
  /// the harness itself is broken. kFaultNone in every production path;
  /// never exposed through spec strings.
  int test_fault = kFaultNone;

  static constexpr int kFaultNone = 0;
  /// Cache replay drops the correction XOR delta — a cache-coherence bug
  /// only the cache-off vs cache-on differential oracle can see, and only
  /// on a window that both recurs (a hit) and carries a correction.
  static constexpr int kFaultCacheReplay = 1;
  /// run() under-reports consumed cycles by one whenever it did work — an
  /// accounting bug the invariant probe's conservation check catches.
  static constexpr int kFaultCycleReport = 2;
};

}  // namespace qec
