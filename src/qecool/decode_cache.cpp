#include "qecool/decode_cache.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace qec {
namespace {

[[noreturn]] void bad_cache_spec(const std::string& what) {
  throw std::invalid_argument("cache spec: " + what);
}

int parse_cache_int(std::string_view key, std::string_view raw) {
  const std::string text(raw);
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || v < 0) {
    bad_cache_spec("option '" + std::string(key) +
                   "' is not a non-negative integer: " + text);
  }
  return static_cast<int>(v);
}

}  // namespace

DecodeCache::DecodeCache(int capacity) : capacity_(std::max(capacity, 0)) {
  slots_.reserve(static_cast<std::size_t>(capacity_));
  if (capacity_ > 0) {
    // Smallest power of two holding 2x capacity keeps probe chains short.
    std::size_t size = 4;
    while (size < static_cast<std::size_t>(capacity_) * 2) size <<= 1;
    table_.assign(size, kEmpty);
    hashes_.assign(size, 0);
    table_mask_ = size - 1;
  }
}

std::size_t DecodeCache::probe(std::uint64_t hash) const {
  std::size_t pos = hash & table_mask_;
  while (table_[pos] != kEmpty && hashes_[pos] != hash) {
    pos = (pos + 1) & table_mask_;
  }
  return pos;
}

void DecodeCache::unlink(std::uint64_t hash) {
  std::size_t hole = probe(hash);
  table_[hole] = kEmpty;
  for (std::size_t pos = (hole + 1) & table_mask_; table_[pos] != kEmpty;
       pos = (pos + 1) & table_mask_) {
    const std::size_t home = hashes_[pos] & table_mask_;
    // The entry at pos may fill the hole only if the hole lies on its
    // probe path, i.e. between its home position and pos (cyclically).
    if (((pos - home) & table_mask_) >= ((pos - hole) & table_mask_)) {
      table_[hole] = table_[pos];
      hashes_[hole] = hashes_[pos];
      table_[pos] = kEmpty;
      hole = pos;
    }
  }
}

const DecodeOutcome* DecodeCache::lookup(
    std::uint64_t hash, const std::vector<std::uint64_t>& key) {
  if (capacity_ == 0) return nullptr;
  const std::size_t pos = probe(hash & hash_mask_);
  if (table_[pos] == kEmpty) return nullptr;
  Slot& slot = slots_[table_[pos]];
  // Full-key compare: a hash collision reads as a miss, never as a wrong
  // replay.
  if (slot.key != key) return nullptr;
  slot.referenced = true;
  return &slot.value;
}

bool DecodeCache::install(std::uint64_t hash,
                          const std::vector<std::uint64_t>& key,
                          const DecodeOutcome& value) {
  if (capacity_ == 0) return false;
  hash &= hash_mask_;
  const std::size_t pos = probe(hash);
  if (table_[pos] != kEmpty) {
    // Same hash already resident: either a re-install of the same key or
    // a collision takeover; either way the slot is rewritten in place.
    // Copy-assignment throughout so the slot's vectors keep their heap
    // buffers — the install hot path stays allocation-free at steady
    // state.
    Slot& slot = slots_[table_[pos]];
    const bool displaced = slot.key != key;
    slot.key = key;
    slot.value = value;
    slot.referenced = true;
    return displaced;
  }
  if (slots_.size() < static_cast<std::size_t>(capacity_)) {
    table_[pos] = static_cast<std::uint32_t>(slots_.size());
    hashes_[pos] = hash;
    slots_.push_back(Slot{hash, key, value, true});
    return false;
  }
  // CLOCK / second-chance: sweep, clearing reference bits, and replace
  // the first slot that was not touched since the hand last passed.
  for (;;) {
    Slot& slot = slots_[hand_];
    if (slot.referenced) {
      slot.referenced = false;
      hand_ = (hand_ + 1) % slots_.size();
      continue;
    }
    unlink(slot.hash);
    slot.hash = hash;
    slot.key = key;
    slot.value = value;
    slot.referenced = true;
    const std::size_t home = probe(hash);
    table_[home] = static_cast<std::uint32_t>(hand_);
    hashes_[home] = hash;
    hand_ = (hand_ + 1) % slots_.size();
    return true;
  }
}

DecodeCacheConfig parse_decode_cache_spec(std::string_view spec) {
  DecodeCacheConfig config;
  if (spec.empty()) return config;

  const auto colon = spec.find(':');
  const std::string_view policy = spec.substr(0, colon);
  std::string_view opts = colon == std::string_view::npos
                              ? std::string_view{}
                              : spec.substr(colon + 1);

  if (policy == "off" || policy == "none") {
    if (!opts.empty()) {
      bad_cache_spec("policy 'off' takes no options, got '" +
                     std::string(opts) + "'");
    }
    config.enabled = false;
    return config;
  }
  if (policy != "on" && policy != "clock") {
    bad_cache_spec("unknown cache policy '" + std::string(policy) +
                   "' (expected off, on, or clock[:entries=N,shards=S])");
  }

  while (!opts.empty()) {
    const auto comma = opts.find(',');
    const std::string_view item = opts.substr(0, comma);
    opts = comma == std::string_view::npos ? std::string_view{}
                                          : opts.substr(comma + 1);
    const auto eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 == item.size()) {
      bad_cache_spec("expected key=value, got '" + std::string(item) + "'");
    }
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (key == "entries") {
      config.entries = parse_cache_int(key, value);
    } else if (key == "shards") {
      config.shards = parse_cache_int(key, value);
    } else if (key == "max_defects") {
      config.max_defects = parse_cache_int(key, value);
    } else {
      bad_cache_spec("cache '" + std::string(policy) +
                     "' does not understand '" + std::string(key) +
                     "' (cache options: entries, shards, max_defects)");
    }
  }
  return config;
}

std::string decode_cache_spec_string(const DecodeCacheConfig& config) {
  if (!config.enabled || config.entries <= 0) return "off";
  return "clock:entries=" + std::to_string(config.entries) +
         ",shards=" + std::to_string(config.shards) +
         ",max_defects=" + std::to_string(std::max(config.max_defects, 0));
}

int decode_cache_shard_count(const DecodeCacheConfig& config, int lanes) {
  const int n = std::max(lanes, 1);
  int shards = config.shards > 0 ? config.shards
                                 : std::clamp((n + 255) / 256, 1, 16);
  return std::min(shards, n);
}

}  // namespace qec
