// Decode-window memoization: a canonical-key -> decode-outcome cache for
// the QECOOL engine hot path (DESIGN.md section 13).
//
// At physical error rates near threshold the overwhelming majority of
// decode windows across thousands of lanes carry the empty or a tiny
// defect pattern — the same small decode problem re-solved millions of
// times. The engine canonicalizes a window as the sparse list of nonzero
// PackedBits words of its resident Reg layers plus the resumable
// controller position and the cycle budget, hashes the key words with an
// FNV-style mix, and — on a hit — replays the stored outcome (correction
// XOR delta, cleared Reg words, pop cycle offsets, match-statistic
// records) instead of running the token/match scan. On a miss the scan
// runs once and the outcome is installed.
//
// Determinism contract: a hit replays *exactly* what the scan would have
// produced (the full key is compared on lookup, so hash collisions read
// as misses, never as wrong answers), so cached and uncached runs are
// bit-identical in every outcome: correction, cycle accounting, per-layer
// attribution, match statistics, and pop trace events. Only the cache's
// own counters and kCache trace events distinguish the two. The streaming
// service shards the cache over contiguous lane blocks executed
// sequentially (service.cpp), so cache *contents* — and therefore the
// hit/miss counters — are also independent of the worker thread count.
//
// Eviction is CLOCK / second-chance: each slot carries a reference bit
// set on hit and install; the clock hand sweeps, clearing reference bits,
// and replaces the first unreferenced slot. Capacity 0 disables the
// cache (every lookup misses, installs are dropped).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "qecool/config.hpp"

namespace qec {

/// Counters of one cache (or one engine's view of a shared shard; the
/// engine counts its own lookups, so per-lane telemetry stays meaningful
/// even when lanes share a shard).
struct DecodeCacheStats {
  std::uint64_t hits = 0;        ///< window replayed from the cache
  std::uint64_t misses = 0;      ///< scan ran; an install followed
  std::uint64_t installs = 0;    ///< outcomes written into the cache
  std::uint64_t evictions = 0;   ///< installs that displaced a live entry
  std::uint64_t zero_rounds = 0; ///< all-clear fast path, no hash/lookup
  std::uint64_t zero_pushes = 0; ///< all-zero pushed layers (word copy skipped)
  std::uint64_t bypasses = 0;    ///< windows denser than max_defects, not probed

  double hit_rate() const {
    const std::uint64_t probes = hits + misses;
    return probes ? static_cast<double>(hits) / static_cast<double>(probes)
                  : 0.0;
  }

  void merge(const DecodeCacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    installs += other.installs;
    evictions += other.evictions;
    zero_rounds += other.zero_rounds;
    zero_pushes += other.zero_pushes;
    bypasses += other.bypasses;
  }
};

/// The memoized result of one QecoolEngine::run(budget) call, in
/// replayable form. Everything is relative (XOR deltas, cycle offsets
/// from run start) so one entry serves any lane at any absolute time.
struct DecodeOutcome {
  std::uint64_t consumed = 0;  ///< cycles the run spent

  // Controller position after the run.
  int m_after = 0;
  int b_after = 0;
  int c_after = 0;
  int row_after = 0;

  /// Reg contents after the run: (tag, word) pairs where tag =
  /// layer * words_per_layer + word index. Replay clears the resident
  /// layers and writes these words back.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> reg_words;

  /// Correction delta: (word index, XOR mask) pairs applied on replay.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> corr_words;

  /// Cycle offset from run start of every layer pop, in pop order —
  /// replay reconstructs per-layer cycle attribution and kPop events.
  std::vector<std::uint64_t> pop_offsets;

  /// Match-statistic records, one per match: kind in the top two bits
  /// (0 = pair, 1 = self, 2 = boundary), recorded dt below.
  std::vector<std::uint32_t> match_records;
};

/// FNV-1a-style mix over the canonical key words with a splitmix64
/// finalizer. Collisions only cost a miss (DecodeCache compares the full
/// key), so word-at-a-time mixing is plenty.
inline std::uint64_t hash_key_words(const std::uint64_t* words,
                                    std::size_t count, std::uint64_t seed) {
  std::uint64_t h = seed ^ (0xcbf29ce484222325ULL + count);
  for (std::size_t i = 0; i < count; ++i) {
    h ^= words[i];
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

/// One bounded window->outcome map. Not thread-safe by design: the
/// streaming service guarantees single-threaded access per shard via
/// shard-sequential lane execution, so the hot path takes no locks.
class DecodeCache {
 public:
  /// `capacity` entries; 0 disables (lookup always misses, install drops).
  explicit DecodeCache(int capacity);

  /// Returns the stored outcome when `key` is present, else nullptr. A
  /// hash match with a different key (collision) is a miss. The returned
  /// pointer is valid until the next install().
  const DecodeOutcome* lookup(std::uint64_t hash,
                              const std::vector<std::uint64_t>& key);

  /// Installs (or, after a collision, replaces) the outcome for `key`.
  /// Returns true when a live entry with a *different* key was displaced
  /// (CLOCK eviction or collision takeover). Takes the outcome by
  /// reference and copy-assigns so the victim slot's vector capacity is
  /// reused — steady-state installs allocate nothing.
  bool install(std::uint64_t hash, const std::vector<std::uint64_t>& key,
               const DecodeOutcome& value);

  int capacity() const { return capacity_; }
  std::size_t size() const { return slots_.size(); }

  /// Test hook: AND-masks every hash before use, forcing collisions so
  /// the full-key compare path is exercised deterministically.
  void set_hash_mask(std::uint64_t mask) { hash_mask_ = mask; }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    std::vector<std::uint64_t> key;
    DecodeOutcome value;
    bool referenced = false;  ///< CLOCK second-chance bit
  };

  static constexpr std::uint32_t kEmpty = ~std::uint32_t{0};

  /// Probe position holding `hash`, or the first empty position of its
  /// chain. The table is open-addressing with linear probing (power-of-2
  /// size >= 2x capacity, so a free position always exists): one or two
  /// warm cache lines per probe, no modulo, no node allocation — the
  /// hot-path cost an std::unordered_map index was measured to dominate.
  std::size_t probe(std::uint64_t hash) const;
  /// Unlinks `hash` with the standard linear-probe backward shift, so
  /// later chains stay findable without tombstones.
  void unlink(std::uint64_t hash);

  int capacity_ = 0;
  std::uint64_t hash_mask_ = ~std::uint64_t{0};
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> table_;  ///< slot indices (kEmpty = free)
  /// Slot hashes mirrored at table_ positions, so probe chains walk one
  /// contiguous array instead of touching each candidate's (cold, ~200
  /// byte) Slot — most lookups are misses and now stay out of slots_
  /// entirely. hashes_[i] is meaningful only where table_[i] != kEmpty.
  std::vector<std::uint64_t> hashes_;
  std::uint64_t table_mask_ = 0;
  std::size_t hand_ = 0;  ///< CLOCK sweep position
};

/// Parses a cache spec: "" (defaults), "off" / "none", or "on" / "clock"
/// optionally followed by ":entries=N,shards=S". Throws
/// std::invalid_argument naming the offending key on unknown options.
DecodeCacheConfig parse_decode_cache_spec(std::string_view spec);

/// Canonical echo of a config ("off" or "clock:entries=N,shards=S") for
/// telemetry CSV context columns.
std::string decode_cache_spec_string(const DecodeCacheConfig& config);

/// Shards the streaming service materializes for `lanes` lanes under
/// `config`: config.shards when positive, else one shard per 256 lanes,
/// clamped to [1, 16] — and never more shards than lanes.
int decode_cache_shard_count(const DecodeCacheConfig& config, int lanes);

}  // namespace qec
