#include "qecool/engine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "qecool/probe.hpp"

namespace qec {
namespace {
// Race-logic port priority (Section IV-B, Prioritization module): the
// predefined order is West, East, North, South; the sink's own time-like
// candidate needs no propagation and outranks everything at equal arrival.
constexpr int kPortSelf = -1;
constexpr int kPortWest = 0;
constexpr int kPortEast = 1;
constexpr int kPortNorth = 2;
constexpr int kPortSouth = 3;
}  // namespace

bool QecoolEngine::Candidate::operator<(const Candidate& other) const {
  if (arrival2 != other.arrival2) return arrival2 < other.arrival2;
  if (port != other.port) return port < other.port;
  if (t != other.t) return t < other.t;
  if (row != other.row) return row < other.row;
  return col < other.col;
}

QecoolEngine::QecoolEngine(const PlanarLattice& lattice,
                           const QecoolConfig& config)
    : lattice_(lattice),
      config_(config),
      rows_(lattice.check_rows()),
      cols_(lattice.check_cols()),
      reg_capacity_(config.reg_depth) {
  if (reg_capacity_ < 1) throw std::invalid_argument("reg_depth must be >= 1");
  nlimit_ = config_.nlimit > 0
                ? config_.nlimit
                : (rows_ - 1) + (cols_ - 1) + reg_capacity_ + 1;
  c_ = config_.start_at_max_hop ? nlimit_ : 1;
  const auto units = static_cast<std::size_t>(rows_ * cols_);
  reg_.assign(static_cast<std::size_t>(reg_capacity_), PackedBits(units));
  occupancy_ = PackedBits(units);
  correction_ = PackedBits(static_cast<std::size_t>(lattice.num_data()));
  corr_before_ = PackedBits(static_cast<std::size_t>(lattice.num_data()));
  // unit -> (row, col) lookup: best_candidate() decodes every defect's
  // coordinates on each spike fan-in; a table beats div/mod by the
  // non-constant cols_.
  row_of_.resize(units);
  col_of_.resize(units);
  for (std::size_t u = 0; u < units; ++u) {
    row_of_[u] = static_cast<std::int16_t>(u / static_cast<std::size_t>(cols_));
    col_of_[u] = static_cast<std::int16_t>(u % static_cast<std::size_t>(cols_));
  }

  // Cache-key seed: a digest of everything that shapes a run's outcome
  // besides the dynamic state, so engines with different geometry or
  // knobs sharing one cache shard can never replay each other's entries
  // (the full-key compare would still catch it; the digest keeps such
  // cross-config probes from even colliding in practice).
  const std::uint64_t digest[] = {
      static_cast<std::uint64_t>(rows_),
      static_cast<std::uint64_t>(cols_),
      static_cast<std::uint64_t>(reg_capacity_),
      static_cast<std::uint64_t>(nlimit_),
      static_cast<std::uint64_t>(static_cast<std::int64_t>(config_.thv)),
      static_cast<std::uint64_t>(config_.deprioritize_boundary ? 1 : 0) |
          (config_.start_at_max_hop ? 2u : 0u),
      static_cast<std::uint64_t>(config_.cycles.row_skip) |
          (static_cast<std::uint64_t>(config_.cycles.token_hop) << 32),
      static_cast<std::uint64_t>(config_.cycles.request) |
          (static_cast<std::uint64_t>(config_.cycles.correct) << 32),
      static_cast<std::uint64_t>(config_.cycles.pass_overhead) |
          (static_cast<std::uint64_t>(config_.cycles.pop) << 32),
  };
  cache_seed_ = hash_key_words(digest, std::size(digest), 0);
}

bool QecoolEngine::push_layer(const PackedBits& difference_layer) {
  assert(difference_layer.size() ==
         static_cast<std::size_t>(rows_ * cols_));
  if (m_ == reg_capacity_) {  // buffer overflow
    if (probe_) probe_->on_push(false, m_, reg_capacity_);
    return false;
  }
  if (difference_layer.none()) {
    // All-zero layer (the overwhelmingly common case near threshold, and
    // every drain round): slots at or past m_ are already all-zero, so
    // claiming the slot is the whole push.
    ++cache_stats_.zero_pushes;
    ++m_;
  } else {
    reg_[static_cast<std::size_t>(m_)].copy_from(difference_layer);
    ++m_;
  }
  if (probe_) probe_->on_push(true, m_, reg_capacity_);
  return true;
}

bool QecoolEngine::push_layer(const BitVec& difference_layer) {
  assert(static_cast<int>(difference_layer.size()) == rows_ * cols_);
  if (m_ == reg_capacity_) {  // buffer overflow
    if (probe_) probe_->on_push(false, m_, reg_capacity_);
    return false;
  }
  reg_[static_cast<std::size_t>(m_)].assign_bits(difference_layer);
  ++m_;
  if (probe_) probe_->on_push(true, m_, reg_capacity_);
  return true;
}

bool QecoolEngine::all_clear() const {
  for (int t = 0; t < m_; ++t) {
    if (reg_[static_cast<std::size_t>(t)].any()) return false;
  }
  return true;
}

bool QecoolEngine::reg_bit(int row, int col, int depth) const {
  assert(depth >= 0 && depth < m_);
  return reg_[static_cast<std::size_t>(depth)].test(
      static_cast<std::size_t>(unit_index(row, col)));
}

bool QecoolEngine::row_has_any_bit(int row) const {
  const auto first = static_cast<std::size_t>(row * cols_);
  const auto count = static_cast<std::size_t>(cols_);
  for (int t = 0; t < m_; ++t) {
    if (reg_[static_cast<std::size_t>(t)].any_in_range(first, count)) {
      return true;
    }
  }
  return false;
}

int QecoolEngine::next_occupied_row(int from) const {
  // OR the resident layers one word at a time; tail bits past num_checks
  // are zero by the PackedBits invariant, so no end masking is needed.
  const std::size_t words = reg_[0].num_words();
  const std::size_t unit =
      static_cast<std::size_t>(from) * static_cast<std::size_t>(cols_);
  std::uint64_t drop_mask = ~std::uint64_t{0} << (unit % 64);
  for (std::size_t w = unit / 64; w < words; ++w) {
    std::uint64_t combined = 0;
    for (int t = 0; t < m_; ++t) {
      combined |= reg_[static_cast<std::size_t>(t)].word(w);
    }
    combined &= drop_mask;
    drop_mask = ~std::uint64_t{0};
    if (combined != 0) {
      const std::size_t first = w * 64 + static_cast<std::size_t>(
                                             qec_countr_zero64(combined));
      return static_cast<int>(first / static_cast<std::size_t>(cols_));
    }
  }
  return rows_;
}

bool QecoolEngine::base_layer_clear() const {
  return m_ > 0 && reg_[0].none();
}

int QecoolEngine::first_set_depth(int unit, int from_depth) const {
  const auto u = static_cast<std::size_t>(unit);
  for (int t = from_depth; t < m_; ++t) {
    if (reg_[static_cast<std::size_t>(t)].test(u)) return t;
  }
  return -1;
}

bool QecoolEngine::has_eligible_base() const {
  for (int b = 0; b < m_; ++b) {
    if (m_ - b <= config_.thv) continue;
    if (reg_[static_cast<std::size_t>(b)].any()) return true;
  }
  return false;
}

std::optional<QecoolEngine::Candidate> QecoolEngine::best_candidate(
    int sink_row, int sink_col, int base, int hop_limit) const {
  std::optional<Candidate> best;
  auto consider = [&best](const Candidate& cand) {
    if (!best || cand < *best) best = cand;
  };

  const int sink = unit_index(sink_row, sink_col);
  // Time-like candidate inside the sink Unit itself (Algorithm 1, sink loop
  // over t): a later set bit at depth t arrives after t - base cycles.
  const int self_t = first_set_depth(sink, base + 1);
  if (self_t >= 0 && self_t - base <= hop_limit) {
    consider(Candidate{2 * static_cast<std::int64_t>(self_t - base), kPortSelf,
                       self_t, sink_row, sink_col, Candidate::Kind::Self});
  }

  // Spatial candidates: only Units with a resident defect at depth >= base
  // can answer, each at its *first* set depth. Walk the layers upward from
  // the base, visiting only bits not claimed by a shallower layer — that
  // yields every unit's first depth in one sweep instead of a per-defect
  // depth scan (the spike fan-in is sparse at any physical error rate
  // worth decoding). occupancy_ accumulates the claimed units.
  const std::size_t words = reg_[0].num_words();
  occupancy_.clear_all();
  for (int t = base; t < m_; ++t) {
    const PackedBits& layer = reg_[static_cast<std::size_t>(t)];
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t fresh = layer.word(w) & ~occupancy_.word(w);
      occupancy_.xor_word(w, fresh);  // fresh is disjoint from occupancy_
      while (fresh) {
        const std::size_t u =
            (w << 6) + static_cast<std::size_t>(qec_countr_zero64(fresh));
        fresh &= fresh - 1;
        if (static_cast<int>(u) == sink) continue;
        const int r = row_of_[u];
        const int c = col_of_[u];
        const int spatial =
            std::abs(r - sink_row) + std::abs(c - sink_col);
        const int arrival = spatial + (t - base);
        if (arrival > hop_limit) continue;
        int port;
        if (c != sink_col) {
          port = c < sink_col ? kPortWest : kPortEast;
        } else {
          port = r < sink_row ? kPortNorth : kPortSouth;
        }
        consider(Candidate{2 * static_cast<std::int64_t>(arrival), port, t, r,
                           c, Candidate::Kind::Unit});
      }
    }
  }

  // Boundary Units always answer a requestSpike(); the nearer side wins.
  const int bdist = lattice_.boundary_distance(sink_col);
  if (bdist <= hop_limit) {
    const bool left_nearer = sink_col + 1 <= lattice_.distance() - 1 - sink_col;
    Candidate cand{2 * static_cast<std::int64_t>(bdist) +
                       (config_.deprioritize_boundary ? 1 : 0),
                   left_nearer ? kPortWest : kPortEast, base, sink_row,
                   sink_col, Candidate::Kind::Boundary};
    consider(cand);
  }
  return best;
}

std::uint64_t QecoolEngine::process_unit(int row, int col) {
  std::uint64_t spent = 0;
  const int sink = unit_index(row, col);
  if (!reg_[static_cast<std::size_t>(b_)].test(static_cast<std::size_t>(sink))) {
    return spent;
  }

  spent += config_.cycles.request;
  const auto winner = best_candidate(row, col, b_, c_);
  if (!winner) {
    spent += static_cast<std::uint64_t>(c_);  // timeout: full wait window
    return spent;
  }

  if (config_.record_trace) {
    MatchEvent event;
    event.kind = winner->kind == Candidate::Kind::Unit
                     ? MatchEvent::Kind::Pair
                     : (winner->kind == Candidate::Kind::Self
                            ? MatchEvent::Kind::Self
                            : MatchEvent::Kind::Boundary);
    event.sink_row = row;
    event.sink_col = col;
    event.base_depth = b_;
    event.source_row = winner->row;
    event.source_col = winner->col;
    event.source_depth = winner->t;
    event.hop_limit = c_;
    event.cycle = cycles_;
    trace_.push_back(event);
  }

  switch (winner->kind) {
    case Candidate::Kind::Self: {
      const int dt = winner->t - b_;
      spent += static_cast<std::uint64_t>(dt);
      reg_[static_cast<std::size_t>(b_)].reset(static_cast<std::size_t>(sink));
      reg_[static_cast<std::size_t>(winner->t)].reset(
          static_cast<std::size_t>(sink));
      ++stats_.self_matches;
      stats_.record(dt);
      if (recording_) {
        match_scratch_.push_back((1u << 30) | static_cast<std::uint32_t>(dt));
      }
      break;
    }
    case Candidate::Kind::Unit: {
      const int spatial =
          std::abs(winner->row - row) + std::abs(winner->col - col);
      const int dt = winner->t - b_;
      // Wait for the first spike, then the Syndrome retraces the path.
      spent += static_cast<std::uint64_t>(spatial + dt);
      spent += static_cast<std::uint64_t>(spatial);
      spent += config_.cycles.correct;
      lattice_.l_path_into({winner->row, winner->col}, {row, col},
                           path_scratch_);
      for (int q : path_scratch_) correction_.flip(static_cast<std::size_t>(q));
      reg_[static_cast<std::size_t>(b_)].reset(static_cast<std::size_t>(sink));
      reg_[static_cast<std::size_t>(winner->t)].reset(static_cast<std::size_t>(
          unit_index(winner->row, winner->col)));
      ++stats_.pair_matches;
      stats_.record(dt);
      if (recording_) {
        match_scratch_.push_back(static_cast<std::uint32_t>(dt));
      }
      break;
    }
    case Candidate::Kind::Boundary: {
      const int bdist = lattice_.boundary_distance(col);
      spent += static_cast<std::uint64_t>(2 * bdist);
      spent += config_.cycles.correct;
      lattice_.boundary_path_into({row, col}, path_scratch_);
      for (int q : path_scratch_) correction_.flip(static_cast<std::size_t>(q));
      reg_[static_cast<std::size_t>(b_)].reset(static_cast<std::size_t>(sink));
      ++stats_.boundary_matches;
      stats_.record(0);
      if (recording_) match_scratch_.push_back(2u << 30);
      break;
    }
  }
  return spent;
}

void QecoolEngine::pop_layer() {
  assert(m_ > 0);
  if (probe_) probe_->on_pop(m_);
  // The base layer is popped only when clean (SHIFTREG): rotating its
  // all-zero PackedBits to the back both shifts every deeper layer down
  // one slot and re-establishes the "slots at or past m_ are zero"
  // invariant — O(depth) moves, no per-Unit work.
  assert(reg_[0].none());
  std::rotate(reg_.begin(), reg_.begin() + 1,
              reg_.begin() + static_cast<std::ptrdiff_t>(m_));
  --m_;
  layer_cycles_.push_back(cycles_ - last_pop_cycles_);
  last_pop_cycles_ = cycles_;
  if (recording_) {
    pop_offsets_scratch_.push_back(cycles_ - run_start_cycles_);
  }
  if (obs_track_) {
    obs_track_->emit(obs::EventKind::kPop, layer_cycles_.back());
  }
}

std::uint64_t QecoolEngine::run(std::uint64_t budget) {
  std::uint64_t consumed = run_dispatch(budget);
  // Planted accounting bug for the fuzz self-check (docs/fuzzing.md): the
  // cycle counter advanced by `consumed` but the caller is told one less.
  // The invariant probe's conservation check must flag the discrepancy.
  if (config_.test_fault == QecoolConfig::kFaultCycleReport && consumed > 0) {
    --consumed;
  }
  if (probe_) {
    probe_->on_run(budget, consumed, cycles_, m_, b_, c_, row_);
  }
  return consumed;
}

std::uint64_t QecoolEngine::run_dispatch(std::uint64_t budget) {
  if (budget == 0 || m_ == 0) return 0;

  // One pass over the resident layers serves both the all-clear test and
  // the cache's sparsity gate: count defect bits, stopping as soon as the
  // window is provably dense (or, with the gate off, provably non-empty).
  const bool cached = cache_ != nullptr && !config_.record_trace;
  const int limit =
      cached && config_.cache.max_defects > 0 ? config_.cache.max_defects : 0;
  int defects = 0;
  for (int t = 0; t < m_ && defects <= limit; ++t) {
    defects += static_cast<int>(reg_[static_cast<std::size_t>(t)].popcount());
  }

  if (defects == 0) {
    // All resident layers clean: the scan would only skip rows and pop —
    // emulate those charges analytically, no hashing, no lookup.
    ++cache_stats_.zero_rounds;
    const std::uint64_t consumed = run_all_clear(budget);
    if (obs_track_ && cache_ != nullptr) {
      obs_track_->emit(obs::EventKind::kCache, consumed, obs::kCacheZero);
    }
    return consumed;
  }

  // Idle when no work can make progress (the scan's loop-entry check):
  // the base layer is dirty and nothing is old enough under thv.
  if (!base_layer_clear() && !has_eligible_base()) return 0;

  if (!cached) return run_scan(budget);

  // Sparsity gate: dense windows are near-unique, so probing them only
  // buys key-build and install churn — hand them straight to the scan,
  // no probe, no install, only the bypass counter.
  if (limit > 0 && defects > limit) {
    ++cache_stats_.bypasses;
    const std::uint64_t consumed = run_scan(budget);
    if (obs_track_) {
      obs_track_->emit(obs::EventKind::kCache, consumed, obs::kCacheBypass);
    }
    return consumed;
  }

  std::uint64_t hash = 0;
  const DecodeOutcome* outcome = nullptr;
  {
    // The cache probe is the first half of the profiler's kCache stage
    // (the second is the install below); a null profiler costs one branch.
    obs::ScopedStage probe_scope(profiler_, obs::Stage::kCache);
    hash = build_cache_key(budget);
    outcome = cache_->lookup(hash, key_);
  }
  if (outcome != nullptr) {
    ++cache_stats_.hits;
    const std::uint64_t consumed = replay(*outcome);
    if (obs_track_) {
      obs_track_->emit(obs::EventKind::kCache, consumed, obs::kCacheHit);
    }
    return consumed;
  }

  ++cache_stats_.misses;
  recording_ = true;
  run_start_cycles_ = cycles_;
  pop_offsets_scratch_.clear();
  match_scratch_.clear();
  corr_before_.copy_from(correction_);
  const std::uint64_t consumed = run_scan(budget);
  recording_ = false;
  ++cache_stats_.installs;
  {
    obs::ScopedStage install_scope(profiler_, obs::Stage::kCache);
    build_outcome(consumed);
    if (cache_->install(hash, key_, outcome_scratch_)) {
      ++cache_stats_.evictions;
    }
  }
  if (obs_track_) {
    obs_track_->emit(obs::EventKind::kCache, consumed, obs::kCacheMiss);
  }
  return consumed;
}

std::uint64_t QecoolEngine::run_all_clear(std::uint64_t budget) {
  std::uint64_t spent = 0;
  const int c_start = config_.start_at_max_hop ? nlimit_ : 1;
  const std::uint64_t skip = config_.cycles.row_skip;
  while (spent < budget && m_ > 0) {
    if (row_ < rows_) {
      // Every remaining row charges row_skip with a per-row budget check
      // (a charge may overshoot, exactly like the scan loop).
      std::uint64_t steps = static_cast<std::uint64_t>(rows_ - row_);
      if (skip > 0) {
        // Ceiling division written overflow-safe: budget may be kUnlimited.
        const std::uint64_t left = budget - spent;
        const std::uint64_t checked = left / skip + (left % skip != 0 ? 1 : 0);
        if (checked < steps) steps = checked;
      }
      spent += steps * skip;
      cycles_ += steps * skip;
      row_ += static_cast<int>(steps);
      continue;
    }
    // End of pass; the base layer is clean by premise, so pop. The pass
    // overhead and the pop charge land in one loop iteration, no budget
    // check between them — as in the scan.
    spent += config_.cycles.pass_overhead + config_.cycles.pop;
    cycles_ += config_.cycles.pass_overhead + config_.cycles.pop;
    row_ = 0;
    pop_layer();
    c_ = c_start;
    b_ = 0;
  }
  return spent;
}

std::uint64_t QecoolEngine::build_cache_key(std::uint64_t budget) {
  key_.clear();
  key_.push_back((static_cast<std::uint64_t>(m_) << 48) |
                 (static_cast<std::uint64_t>(b_ & 0xffff) << 32) |
                 (static_cast<std::uint64_t>(c_ & 0xffff) << 16) |
                 static_cast<std::uint64_t>(row_ & 0xffff));
  key_.push_back(budget);
  const std::size_t words = reg_[0].num_words();
  for (int t = 0; t < m_; ++t) {
    const PackedBits& layer = reg_[static_cast<std::size_t>(t)];
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint64_t word = layer.word(w);
      if (word != 0) {
        key_.push_back(static_cast<std::uint64_t>(t) * words + w);
        key_.push_back(word);
      }
    }
  }
  return hash_key_words(key_.data(), key_.size(), cache_seed_);
}

std::uint64_t QecoolEngine::replay(const DecodeOutcome& outcome) {
  const std::size_t words = reg_[0].num_words();
  for (int t = 0; t < m_; ++t) {
    reg_[static_cast<std::size_t>(t)].clear_all();
  }
  for (const auto& [tag, word] : outcome.reg_words) {
    reg_[tag / words].set_word(tag % words, word);
  }
  // Planted cache-coherence bug for the fuzz self-check (docs/fuzzing.md):
  // replay silently drops the correction delta, so a hit on a window that
  // carries a correction diverges from the cache-off arm.
  if (config_.test_fault != QecoolConfig::kFaultCacheReplay) {
    for (const auto& [w, mask] : outcome.corr_words) {
      correction_.xor_word(w, mask);
    }
  }
  for (const std::uint32_t record : outcome.match_records) {
    const std::uint32_t kind = record >> 30;
    const int dt = static_cast<int>(record & ((1u << 30) - 1));
    if (kind == 0) {
      ++stats_.pair_matches;
    } else if (kind == 1) {
      ++stats_.self_matches;
    } else {
      ++stats_.boundary_matches;
    }
    stats_.record(dt);
  }
  const std::uint64_t run_start = cycles_;
  for (const std::uint64_t offset : outcome.pop_offsets) {
    const std::uint64_t at = run_start + offset;
    layer_cycles_.push_back(at - last_pop_cycles_);
    last_pop_cycles_ = at;
    if (obs_track_) {
      obs_track_->emit(obs::EventKind::kPop, layer_cycles_.back());
    }
  }
  m_ = outcome.m_after;
  b_ = outcome.b_after;
  c_ = outcome.c_after;
  row_ = outcome.row_after;
  cycles_ = run_start + outcome.consumed;
  return outcome.consumed;
}

void QecoolEngine::build_outcome(std::uint64_t consumed) {
  DecodeOutcome& outcome = outcome_scratch_;
  outcome.reg_words.clear();
  outcome.corr_words.clear();
  outcome.consumed = consumed;
  outcome.m_after = m_;
  outcome.b_after = b_;
  outcome.c_after = c_;
  outcome.row_after = row_;
  const std::size_t words = reg_[0].num_words();
  for (int t = 0; t < m_; ++t) {
    const PackedBits& layer = reg_[static_cast<std::size_t>(t)];
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint64_t word = layer.word(w);
      if (word != 0) {
        outcome.reg_words.emplace_back(
            static_cast<std::uint32_t>(static_cast<std::size_t>(t) * words + w),
            word);
      }
    }
  }
  for (std::size_t w = 0; w < correction_.num_words(); ++w) {
    const std::uint64_t delta = correction_.word(w) ^ corr_before_.word(w);
    if (delta != 0) {
      outcome.corr_words.emplace_back(static_cast<std::uint32_t>(w), delta);
    }
  }
  outcome.pop_offsets = pop_offsets_scratch_;
  outcome.match_records = match_scratch_;
}

std::uint64_t QecoolEngine::run_scan(std::uint64_t budget) {
  std::uint64_t spent = 0;
  auto charge = [&](std::uint64_t c) {
    cycles_ += c;
    spent += c;
  };
  const std::uint64_t skip = config_.cycles.row_skip;

  // The stop conditions below depend only on Reg contents and the (m_, b_)
  // position, so they are invariant across bulk row skips — they need
  // re-evaluation only after a processed row or an end-of-pass step.
  bool recheck = true;
  while (spent < budget) {
    if (recheck) {
      if (m_ == 0) break;
      // Idle when no work can make progress: the base layer is dirty
      // (cannot pop) and no stored layer is old enough to decode under
      // thv.
      if (!base_layer_clear() && !has_eligible_base()) break;
      recheck = false;
    }

    if (row_ < rows_) {
      const bool gate_open = (m_ - b_) > config_.thv;
      // The Row Master withholds the token from every row up to `stop`:
      // all remaining rows when the gate is closed, else the clean rows
      // before the next occupied one. Skipped rows leave the Reg and the
      // gate untouched, so the run is bulk-charged in one shot with the
      // same per-row budget check (a charge may overshoot, exactly like
      // the one-row-at-a-time loop this emulates).
      const int stop = gate_open ? next_occupied_row(row_) : rows_;
      if (row_ < stop) {
        std::uint64_t steps = static_cast<std::uint64_t>(stop - row_);
        if (skip > 0) {
          // Ceiling division written overflow-safe: budget may be
          // kUnlimited.
          const std::uint64_t left = budget - spent;
          const std::uint64_t checked =
              left / skip + (left % skip != 0 ? 1 : 0);
          if (checked < steps) steps = checked;
        }
        spent += steps * skip;
        cycles_ += steps * skip;
        row_ += static_cast<int>(steps);
        continue;
      }
      if (config_.record_trace) {
        // Trace mode stamps event.cycle mid-row, so keep the hop/process
        // charge interleaving byte-exact.
        for (int col = 0; col < cols_; ++col) {
          charge(config_.cycles.token_hop);
          charge(process_unit(row_, col));
        }
      } else {
        // The token visits every Unit of the row (one hop charge each; no
        // budget check inside a row), but only Units holding a base-layer
        // defect do sink work — walk those bits directly. Re-read the
        // word after each match: a pair match may clear a later sink in
        // this same row.
        charge(static_cast<std::uint64_t>(cols_) * config_.cycles.token_hop);
        const std::size_t row_first =
            static_cast<std::size_t>(row_) * static_cast<std::size_t>(cols_);
        const std::size_t row_end = row_first + static_cast<std::size_t>(cols_);
        const PackedBits& layer = reg_[static_cast<std::size_t>(b_)];
        std::size_t from = row_first;
        while (from < row_end) {
          std::size_t w = from / 64;
          std::uint64_t word = layer.word(w) & (~std::uint64_t{0} << (from % 64));
          while (word == 0 && (++w) * 64 < row_end) word = layer.word(w);
          if (word == 0) break;
          const std::size_t u =
              w * 64 + static_cast<std::size_t>(qec_countr_zero64(word));
          if (u >= row_end) break;
          charge(process_unit(row_, static_cast<int>(u - row_first)));
          from = u + 1;
        }
      }
      ++row_;
      recheck = true;  // matches may have cleared Reg bits
      continue;
    }

    // End of a full (C, b) grid pass.
    charge(config_.cycles.pass_overhead);
    row_ = 0;
    recheck = true;  // the (m_, b_) position moves below
    const int c_start = config_.start_at_max_hop ? nlimit_ : 1;
    if (base_layer_clear()) {
      charge(config_.cycles.pop);
      pop_layer();
      c_ = c_start;
      b_ = 0;
      continue;
    }
    ++b_;
    if (b_ >= m_) {
      b_ = 0;
      ++c_;
      if (c_ > nlimit_) c_ = c_start;
    }
  }
  return spent;
}

}  // namespace qec
