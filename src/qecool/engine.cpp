#include "qecool/engine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/trace.hpp"

namespace qec {
namespace {
// Race-logic port priority (Section IV-B, Prioritization module): the
// predefined order is West, East, North, South; the sink's own time-like
// candidate needs no propagation and outranks everything at equal arrival.
constexpr int kPortSelf = -1;
constexpr int kPortWest = 0;
constexpr int kPortEast = 1;
constexpr int kPortNorth = 2;
constexpr int kPortSouth = 3;
}  // namespace

bool QecoolEngine::Candidate::operator<(const Candidate& other) const {
  if (arrival2 != other.arrival2) return arrival2 < other.arrival2;
  if (port != other.port) return port < other.port;
  if (t != other.t) return t < other.t;
  if (row != other.row) return row < other.row;
  return col < other.col;
}

QecoolEngine::QecoolEngine(const PlanarLattice& lattice,
                           const QecoolConfig& config)
    : lattice_(lattice),
      config_(config),
      rows_(lattice.check_rows()),
      cols_(lattice.check_cols()),
      reg_capacity_(config.reg_depth) {
  if (reg_capacity_ < 1) throw std::invalid_argument("reg_depth must be >= 1");
  nlimit_ = config_.nlimit > 0
                ? config_.nlimit
                : (rows_ - 1) + (cols_ - 1) + reg_capacity_ + 1;
  c_ = config_.start_at_max_hop ? nlimit_ : 1;
  const auto units = static_cast<std::size_t>(rows_ * cols_);
  reg_.assign(static_cast<std::size_t>(reg_capacity_), PackedBits(units));
  occupancy_ = PackedBits(units);
  correction_ = PackedBits(static_cast<std::size_t>(lattice.num_data()));
}

bool QecoolEngine::push_layer(const PackedBits& difference_layer) {
  assert(difference_layer.size() ==
         static_cast<std::size_t>(rows_ * cols_));
  if (m_ == reg_capacity_) return false;  // buffer overflow
  reg_[static_cast<std::size_t>(m_)].copy_from(difference_layer);
  ++m_;
  return true;
}

bool QecoolEngine::push_layer(const BitVec& difference_layer) {
  assert(static_cast<int>(difference_layer.size()) == rows_ * cols_);
  if (m_ == reg_capacity_) return false;  // buffer overflow
  reg_[static_cast<std::size_t>(m_)].assign_bits(difference_layer);
  ++m_;
  return true;
}

bool QecoolEngine::all_clear() const {
  for (int t = 0; t < m_; ++t) {
    if (reg_[static_cast<std::size_t>(t)].any()) return false;
  }
  return true;
}

bool QecoolEngine::reg_bit(int row, int col, int depth) const {
  assert(depth >= 0 && depth < m_);
  return reg_[static_cast<std::size_t>(depth)].test(
      static_cast<std::size_t>(unit_index(row, col)));
}

bool QecoolEngine::row_has_any_bit(int row) const {
  const auto first = static_cast<std::size_t>(row * cols_);
  const auto count = static_cast<std::size_t>(cols_);
  for (int t = 0; t < m_; ++t) {
    if (reg_[static_cast<std::size_t>(t)].any_in_range(first, count)) {
      return true;
    }
  }
  return false;
}

bool QecoolEngine::base_layer_clear() const {
  return m_ > 0 && reg_[0].none();
}

int QecoolEngine::first_set_depth(int unit, int from_depth) const {
  const auto u = static_cast<std::size_t>(unit);
  for (int t = from_depth; t < m_; ++t) {
    if (reg_[static_cast<std::size_t>(t)].test(u)) return t;
  }
  return -1;
}

bool QecoolEngine::has_eligible_base() const {
  for (int b = 0; b < m_; ++b) {
    if (m_ - b <= config_.thv) continue;
    if (reg_[static_cast<std::size_t>(b)].any()) return true;
  }
  return false;
}

std::optional<QecoolEngine::Candidate> QecoolEngine::best_candidate(
    int sink_row, int sink_col, int base, int hop_limit) const {
  std::optional<Candidate> best;
  auto consider = [&best](const Candidate& cand) {
    if (!best || cand < *best) best = cand;
  };

  const int sink = unit_index(sink_row, sink_col);
  // Time-like candidate inside the sink Unit itself (Algorithm 1, sink loop
  // over t): a later set bit at depth t arrives after t - base cycles.
  const int self_t = first_set_depth(sink, base + 1);
  if (self_t >= 0 && self_t - base <= hop_limit) {
    consider(Candidate{2 * static_cast<std::int64_t>(self_t - base), kPortSelf,
                       self_t, sink_row, sink_col, Candidate::Kind::Self});
  }

  // Spatial candidates: only Units with a resident defect at depth >= base
  // can answer. Their union is the OR of the resident layers — walk its
  // set bits instead of scanning the full grid (the spike fan-in is sparse
  // at any physical error rate worth decoding).
  occupancy_.copy_from(reg_[static_cast<std::size_t>(base)]);
  for (int t = base + 1; t < m_; ++t) {
    occupancy_ |= reg_[static_cast<std::size_t>(t)];
  }
  occupancy_.for_each_set([&](std::size_t u) {
    if (static_cast<int>(u) == sink) return;
    const int r = static_cast<int>(u) / cols_;
    const int c = static_cast<int>(u) % cols_;
    const int t = first_set_depth(static_cast<int>(u), base);
    assert(t >= 0);
    const int spatial = std::abs(r - sink_row) + std::abs(c - sink_col);
    const int arrival = spatial + (t - base);
    if (arrival > hop_limit) return;
    int port;
    if (c != sink_col) {
      port = c < sink_col ? kPortWest : kPortEast;
    } else {
      port = r < sink_row ? kPortNorth : kPortSouth;
    }
    consider(Candidate{2 * static_cast<std::int64_t>(arrival), port, t, r, c,
                       Candidate::Kind::Unit});
  });

  // Boundary Units always answer a requestSpike(); the nearer side wins.
  const int bdist = lattice_.boundary_distance(sink_col);
  if (bdist <= hop_limit) {
    const bool left_nearer = sink_col + 1 <= lattice_.distance() - 1 - sink_col;
    Candidate cand{2 * static_cast<std::int64_t>(bdist) +
                       (config_.deprioritize_boundary ? 1 : 0),
                   left_nearer ? kPortWest : kPortEast, base, sink_row,
                   sink_col, Candidate::Kind::Boundary};
    consider(cand);
  }
  return best;
}

std::uint64_t QecoolEngine::process_unit(int row, int col) {
  std::uint64_t spent = 0;
  const int sink = unit_index(row, col);
  if (!reg_[static_cast<std::size_t>(b_)].test(static_cast<std::size_t>(sink))) {
    return spent;
  }

  spent += config_.cycles.request;
  const auto winner = best_candidate(row, col, b_, c_);
  if (!winner) {
    spent += static_cast<std::uint64_t>(c_);  // timeout: full wait window
    return spent;
  }

  if (config_.record_trace) {
    MatchEvent event;
    event.kind = winner->kind == Candidate::Kind::Unit
                     ? MatchEvent::Kind::Pair
                     : (winner->kind == Candidate::Kind::Self
                            ? MatchEvent::Kind::Self
                            : MatchEvent::Kind::Boundary);
    event.sink_row = row;
    event.sink_col = col;
    event.base_depth = b_;
    event.source_row = winner->row;
    event.source_col = winner->col;
    event.source_depth = winner->t;
    event.hop_limit = c_;
    event.cycle = cycles_;
    trace_.push_back(event);
  }

  switch (winner->kind) {
    case Candidate::Kind::Self: {
      const int dt = winner->t - b_;
      spent += static_cast<std::uint64_t>(dt);
      reg_[static_cast<std::size_t>(b_)].reset(static_cast<std::size_t>(sink));
      reg_[static_cast<std::size_t>(winner->t)].reset(
          static_cast<std::size_t>(sink));
      ++stats_.self_matches;
      stats_.record(dt);
      break;
    }
    case Candidate::Kind::Unit: {
      const int spatial =
          std::abs(winner->row - row) + std::abs(winner->col - col);
      const int dt = winner->t - b_;
      // Wait for the first spike, then the Syndrome retraces the path.
      spent += static_cast<std::uint64_t>(spatial + dt);
      spent += static_cast<std::uint64_t>(spatial);
      spent += config_.cycles.correct;
      const std::vector<int> path =
          lattice_.l_path({winner->row, winner->col}, {row, col});
      for (int q : path) correction_.flip(static_cast<std::size_t>(q));
      reg_[static_cast<std::size_t>(b_)].reset(static_cast<std::size_t>(sink));
      reg_[static_cast<std::size_t>(winner->t)].reset(static_cast<std::size_t>(
          unit_index(winner->row, winner->col)));
      ++stats_.pair_matches;
      stats_.record(dt);
      break;
    }
    case Candidate::Kind::Boundary: {
      const int bdist = lattice_.boundary_distance(col);
      spent += static_cast<std::uint64_t>(2 * bdist);
      spent += config_.cycles.correct;
      const std::vector<int> path = lattice_.boundary_path({row, col});
      for (int q : path) correction_.flip(static_cast<std::size_t>(q));
      reg_[static_cast<std::size_t>(b_)].reset(static_cast<std::size_t>(sink));
      ++stats_.boundary_matches;
      stats_.record(0);
      break;
    }
  }
  return spent;
}

void QecoolEngine::pop_layer() {
  assert(m_ > 0);
  // The base layer is popped only when clean (SHIFTREG): rotating its
  // all-zero PackedBits to the back both shifts every deeper layer down
  // one slot and re-establishes the "slots at or past m_ are zero"
  // invariant — O(depth) moves, no per-Unit work.
  assert(reg_[0].none());
  std::rotate(reg_.begin(), reg_.begin() + 1,
              reg_.begin() + static_cast<std::ptrdiff_t>(m_));
  --m_;
  layer_cycles_.push_back(cycles_ - last_pop_cycles_);
  last_pop_cycles_ = cycles_;
  if (obs_track_) {
    obs_track_->emit(obs::EventKind::kPop, layer_cycles_.back());
  }
}

std::uint64_t QecoolEngine::run(std::uint64_t budget) {
  std::uint64_t spent = 0;
  auto charge = [&](std::uint64_t c) {
    cycles_ += c;
    spent += c;
  };

  while (spent < budget) {
    if (m_ == 0) break;
    // Idle when no work can make progress: the base layer is dirty (cannot
    // pop) and no stored layer is old enough to decode under thv.
    if (!base_layer_clear() && !has_eligible_base()) break;

    if (row_ < rows_) {
      const bool gate_open = (m_ - b_) > config_.thv;
      if (!row_has_any_bit(row_) || !gate_open) {
        // Row Master withholds the token: either the row is clean or the
        // base layer is not yet eligible for decoding.
        charge(config_.cycles.row_skip);
      } else {
        for (int col = 0; col < cols_; ++col) {
          charge(config_.cycles.token_hop);
          charge(process_unit(row_, col));
        }
      }
      ++row_;
      continue;
    }

    // End of a full (C, b) grid pass.
    charge(config_.cycles.pass_overhead);
    row_ = 0;
    const int c_start = config_.start_at_max_hop ? nlimit_ : 1;
    if (base_layer_clear()) {
      charge(config_.cycles.pop);
      pop_layer();
      c_ = c_start;
      b_ = 0;
      continue;
    }
    ++b_;
    if (b_ >= m_) {
      b_ = 0;
      ++c_;
      if (c_ > nlimit_) c_ = c_start;
    }
  }
  return spent;
}

}  // namespace qec
