// The QECOOL decoding engine: a cycle-level behavioural model of the
// hardware of Section IV executing Algorithm 1.
//
// One engine models the Unit array of a single logical qubit / error sector:
// a d x (d-1) grid of Units (one per check), a Row Master per row, one
// shared Boundary Unit per rough edge, and the Controller that scans tokens
// row-major with an escalating hop-limit C.
//
// Faithfulness notes (see DESIGN.md section 6 for rationale):
//  - Reg entries hold *difference* syndromes pushed in measurement order.
//  - A token granted to a Unit with Reg[b] = 1 makes it the sink; every
//    other Unit whose earliest set Reg bit at depth t >= b exists answers
//    with a spike whose arrival time is (Manhattan distance) + (t - b);
//    the sink itself competes with a pure-vertical candidate at t - b; the
//    Boundary Unit answers at its hop distance, half a cycle late when
//    deprioritized. The earliest arrival within the timeout C wins; ties
//    resolve by the race-logic port priority W > E > N > S.
//  - The winning spike's path (vertical to the sink's row, then horizontal)
//    is retraced by the Syndrome signal, flipping those data qubits into the
//    accumulated correction; the matched Reg bits are cleared.
//  - After each full (C, b) grid pass the Controller pops the base layer if
//    it is clean everywhere (SHIFTREG) and restarts at C = 1.
//
// Datapath representation: each Reg depth slot is one PackedBits layer (64
// Units per word), mirroring the SFQ shift registers — occupancy scans
// (all_clear, row gating, thv eligibility) are word-parallel, layer pops
// are O(depth) moves instead of O(units x depth) byte shuffles, and the
// match path walks only the *set* bits of the occupancy mask instead of
// scanning the full grid. The accumulated correction is packed too. The
// cycle accounting and match selection are bit-identical to the byte-per-
// bit implementation: the same candidates are considered and the same
// deterministic comparator picks the winner.
//
// The engine is resumable: run(budget) consumes at most `budget` cycles and
// can be continued later, which is how the on-line runner models a decoder
// clocked at f while measurements arrive every 1 us.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.hpp"
#include "qecool/config.hpp"
#include "qecool/decode_cache.hpp"
#include "surface_code/packed_bits.hpp"
#include "surface_code/pauli_frame.hpp"
#include "surface_code/planar_lattice.hpp"

namespace qec {

class EngineProbe;  // qecool/probe.hpp — invariant hook for the fuzz build

namespace obs {
class Track;     // obs/trace.hpp — the engine never includes the obs layer
class Profiler;  // obs/profile.hpp — wall-clock hook, same arrangement
}

/// One matching event, recorded when QecoolConfig::record_trace is set.
struct MatchEvent {
  enum class Kind : std::uint8_t { Pair, Self, Boundary } kind = Kind::Pair;
  int sink_row = 0;
  int sink_col = 0;
  int base_depth = 0;   ///< b at match time
  int source_row = 0;   ///< == sink for Self/Boundary
  int source_col = 0;
  int source_depth = 0;
  int hop_limit = 0;    ///< C at match time
  std::uint64_t cycle = 0;  ///< engine cycle counter at match time
};

class QecoolEngine {
 public:
  QecoolEngine(const PlanarLattice& lattice, const QecoolConfig& config);

  /// Appends one difference-syndrome layer to every Unit's Reg. Returns
  /// false when the Reg queues are full (buffer overflow — the failure mode
  /// of Fig 7); the layer is dropped in that case. The packed overload is
  /// the streamed hot path (one word copy per 64 Units); the byte-per-bit
  /// overload packs and delegates.
  bool push_layer(const PackedBits& difference_layer);
  bool push_layer(const BitVec& difference_layer);

  /// Executes controller work for at most `budget` cycles (use kUnlimited
  /// to run until there is nothing left to do). Returns cycles consumed.
  /// The engine idles — consuming nothing — when no stored layer is
  /// eligible under thv or all Regs are clean.
  std::uint64_t run(std::uint64_t budget);

  static constexpr std::uint64_t kUnlimited = ~std::uint64_t{0};

  /// True when every Reg bit is clear.
  bool all_clear() const;

  /// Stored layers currently in the Reg queues.
  int stored_layers() const { return m_; }

  /// Accumulated data-qubit correction from all Syndrome signals so far,
  /// in packed form (the in-memory Pauli frame).
  const PackedBits& correction_packed() const { return correction_; }

  /// Byte-per-bit copy of the accumulated correction (cold-path bridge
  /// for scoring and tests).
  BitVec correction() const { return correction_.to_bits(); }

  /// Total working cycles since construction.
  std::uint64_t total_cycles() const { return cycles_; }

  /// Working cycles attributed to each popped layer, in pop order
  /// (Table III's per-layer execution cycles).
  const std::vector<std::uint64_t>& layer_cycles() const {
    return layer_cycles_;
  }

  const MatchStats& match_stats() const { return stats_; }

  /// Number of layers popped so far.
  int popped_layers() const { return static_cast<int>(layer_cycles_.size()); }

  /// Test hook: reads Reg[depth] of the Unit at (row, col).
  bool reg_bit(int row, int col, int depth) const;

  /// Match-event trace; empty unless QecoolConfig::record_trace is set.
  const std::vector<MatchEvent>& trace() const { return trace_; }

  /// Observability hook (src/obs): when set, every popped layer emits a
  /// kPop event (payload = the layer's attributed cycles) onto `track`.
  /// The track's current round is maintained by the caller; disabled
  /// tracing costs the pop path one branch.
  void set_obs_track(obs::Track* track) { obs_track_ = track; }

  /// Wall-clock profiling hook (src/obs/profile.hpp): when set, the
  /// decode-cache probe/install regions of run() are timed under
  /// Stage::kCache. Null disables; a disabled profiler costs the cache
  /// path one branch, matching the obs hook precedent.
  void set_profiler(obs::Profiler* profiler) { profiler_ = profiler; }

  /// Invariant/coverage hook (qecool/probe.hpp): when set, every push,
  /// pop, and run() fires the probe. Null disables; a disabled probe
  /// costs each site one branch, following the obs hook precedent.
  void set_probe(EngineProbe* probe) { probe_ = probe; }

  /// The resolved maximum hop limit (config nlimit, or the automatic
  /// 2(d-1) + reg_depth + 1 bound) — the invariant probe's range check.
  int hop_limit_bound() const { return nlimit_; }

  /// Attaches a decode-window memoization cache (non-owning; see
  /// decode_cache.hpp and DESIGN.md section 13). run() then replays
  /// cached outcomes on window hits — bit-identical to the uncached scan
  /// — and installs outcomes on misses. Null detaches. Ignored while
  /// QecoolConfig::record_trace is set (MatchEvent cycle stamps depend on
  /// absolute engine time, which replay does not reproduce).
  void set_decode_cache(DecodeCache* cache) { cache_ = cache; }

  /// This engine's own cache counters: hits/misses/installs/evictions of
  /// its lookups (meaningful per lane even when lanes share a shard),
  /// plus the all-zero fast-path counters, which advance with or without
  /// an attached cache.
  const DecodeCacheStats& cache_stats() const { return cache_stats_; }

 private:
  struct Candidate {
    // Sort key: arrival doubled so the boundary half-cycle penalty stays
    // integral, then port priority, then depth/row/col for determinism.
    std::int64_t arrival2 = 0;
    int port = 0;
    int t = 0;
    int row = 0;
    int col = 0;
    enum class Kind : std::uint8_t { Unit, Self, Boundary } kind = Kind::Unit;
    bool operator<(const Candidate& other) const;
  };

  int unit_index(int row, int col) const {
    return row * cols_ + col;
  }

  bool row_has_any_bit(int row) const;
  /// First row at or after `from` with a bit in any resident layer;
  /// rows_ when the rest of the pass is clean.
  int next_occupied_row(int from) const;
  bool base_layer_clear() const;
  int first_set_depth(int unit, int from_depth) const;
  std::optional<Candidate> best_candidate(int sink_row, int sink_col,
                                          int base, int hop_limit) const;

  /// Token + sink handling for one Unit; returns cycles spent.
  std::uint64_t process_unit(int row, int col);
  /// Pops the base layer; records per-layer cycles.
  void pop_layer();
  /// True if any base layer is eligible for decoding under thv.
  bool has_eligible_base() const;

  /// run() body (zero fast path, sparsity gate, cache probe, scan); the
  /// public run() wraps it with the probe hook and fault injection.
  std::uint64_t run_dispatch(std::uint64_t budget);
  /// The token/match scan loop (the pre-cache run() body).
  std::uint64_t run_scan(std::uint64_t budget);
  /// Analytic emulation of run_scan when every resident layer is clear:
  /// bulk row skips and pops, identical charges, no per-word Reg scans.
  std::uint64_t run_all_clear(std::uint64_t budget);
  /// Canonicalizes (controller position, budget, sparse Reg words) into
  /// key_ and returns its hash.
  std::uint64_t build_cache_key(std::uint64_t budget);
  /// Applies a cached outcome: state, correction delta, match stats,
  /// per-layer cycle attribution, and kPop events. Returns cycles spent.
  std::uint64_t replay(const DecodeOutcome& outcome);
  /// Packages the just-recorded run into outcome_scratch_ for install()
  /// (a reused member, so steady-state misses allocate nothing).
  void build_outcome(std::uint64_t consumed);

  const PlanarLattice& lattice_;
  QecoolConfig config_;
  int rows_ = 0;
  int cols_ = 0;
  int reg_capacity_ = 0;
  int nlimit_ = 0;
  /// Reg queues, one packed layer per depth slot; slots at or past m_ are
  /// always all-zero (pushes land at m_, pops rotate the clean base layer
  /// to the back).
  std::vector<PackedBits> reg_;
  int m_ = 0;                      // stored layers
  PackedBits correction_;
  /// Scratch for best_candidate(): OR of the resident layers at or above
  /// the base depth — the units that could answer a requestSpike().
  mutable PackedBits occupancy_;
  /// unit -> (row, col) lookup tables (avoid div/mod on the spike fan-in).
  std::vector<std::int16_t> row_of_;
  std::vector<std::int16_t> col_of_;
  std::vector<int> path_scratch_;  ///< match-path qubits (reused, no alloc)

  // Resumable controller position.
  int c_ = 1;    // current hop limit (1..nlimit_)
  int b_ = 0;    // current base depth
  int row_ = 0;  // next row to scan in the current pass

  obs::Track* obs_track_ = nullptr;  ///< kPop sink; null = tracing off
  obs::Profiler* profiler_ = nullptr;  ///< kCache stage timer; null = off
  EngineProbe* probe_ = nullptr;     ///< invariant hook; null = disabled
  std::uint64_t cycles_ = 0;
  std::uint64_t last_pop_cycles_ = 0;
  std::vector<std::uint64_t> layer_cycles_;
  MatchStats stats_;
  std::vector<MatchEvent> trace_;

  // Decode-window memoization (DESIGN.md section 13).
  DecodeCache* cache_ = nullptr;  ///< non-owning; null = memoization off
  DecodeCacheStats cache_stats_;
  std::uint64_t cache_seed_ = 0;  ///< config digest folded into every hash
  bool recording_ = false;        ///< run_scan feeding the install scratch
  std::uint64_t run_start_cycles_ = 0;
  std::vector<std::uint64_t> key_;  ///< canonical key scratch (reused)
  PackedBits corr_before_;          ///< pre-run correction snapshot
  std::vector<std::uint64_t> pop_offsets_scratch_;
  std::vector<std::uint32_t> match_scratch_;
  DecodeOutcome outcome_scratch_;   ///< install staging (reused)
};

}  // namespace qec
