#include "qecool/online_runner.hpp"

#include <memory>
#include <stdexcept>

namespace qec {

OnlineStepper::OnlineStepper(const PlanarLattice& lattice,
                             const OnlineConfig& config)
    : engine_(lattice, config.engine),
      clean_(static_cast<std::size_t>(lattice.num_checks())),
      per_round_(config.cycles_per_round) {}

bool OnlineStepper::note_push(bool accepted) {
  if (!accepted) {
    overflow_ = true;
    return false;
  }
  ++rounds_;
  return true;
}

bool OnlineStepper::push(const PackedBits& layer) {
  if (paused_) {
    throw std::logic_error(
        "online stepper: push() while paused — resume() first");
  }
  if (overflow_) return false;
  return note_push(engine_.push_layer(layer));
}

bool OnlineStepper::push(const BitVec& layer) {
  if (paused_) {
    throw std::logic_error(
        "online stepper: push() while paused — resume() first");
  }
  if (overflow_) return false;
  return note_push(engine_.push_layer(layer));
}

std::uint64_t OnlineStepper::spend(double cycles) {
  last_spend_pops_ = 0;
  if (overflow_) return 0;
  const int popped_before = engine_.popped_layers();
  std::uint64_t consumed;
  if (cycles <= 0.0) {
    consumed = engine_.run(QecoolEngine::kUnlimited);
  } else {
    // Accumulate the fractional budget: a 1.5-cycle clock grants 1, 2, 1,
    // 2, ... cycles rather than truncating to 1 every round. Cycles the
    // engine leaves unused because it went idle are NOT carried — the
    // hardware clock ticks on regardless.
    carry_ += cycles;
    const auto budget = static_cast<std::uint64_t>(carry_);
    carry_ -= static_cast<double>(budget);
    consumed = engine_.run(budget);
  }
  last_spend_pops_ = engine_.popped_layers() - popped_before;
  return consumed;
}

bool OnlineStepper::step(const PackedBits& layer) {
  if (!push(layer)) return false;
  spend(per_round_);
  return true;
}

bool OnlineStepper::step(const BitVec& layer) {
  if (!push(layer)) return false;
  spend(per_round_);
  return true;
}

StepperCheckpoint OnlineStepper::checkpoint() {
  if (paused_) {
    throw std::logic_error("online stepper: checkpoint() while paused");
  }
  if (overflow_) {
    throw std::logic_error("online stepper: checkpoint() after overflow");
  }
  paused_ = true;
  StepperCheckpoint cp;
  cp.correction = engine_.correction();
  cp.rounds_accepted = rounds_;
  cp.stored_layers = engine_.stored_layers();
  cp.popped_layers = engine_.popped_layers();
  cp.total_cycles = engine_.total_cycles();
  return cp;
}

void OnlineStepper::resume() {
  if (!paused_) {
    throw std::logic_error("online stepper: resume() without checkpoint()");
  }
  paused_ = false;
}

OnlineResult OnlineStepper::result() const {
  OnlineResult r;
  r.overflow = overflow_;
  r.drained = !overflow_ && engine_.all_clear();
  r.correction = engine_.correction();
  r.matches = engine_.match_stats();
  r.layer_cycles = engine_.layer_cycles();
  r.total_cycles = engine_.total_cycles();
  return r;
}

OnlineResult run_online(const PlanarLattice& lattice,
                        const SyndromeHistory& history,
                        const OnlineConfig& config) {
  OnlineStepper stepper(lattice, config);
  std::unique_ptr<DecodeCache> cache;
  if (config.engine.cache.enabled && config.engine.cache.entries > 0) {
    cache = std::make_unique<DecodeCache>(config.engine.cache.entries);
    stepper.set_decode_cache(cache.get());
  }
  for (const auto& layer : history.difference) {
    if (!stepper.step(layer)) break;
  }
  if (!stepper.overflowed()) {
    // Keep the QEC cycle running on clean layers until the queues drain.
    for (int extra = 0; extra < config.max_drain_rounds; ++extra) {
      if (stepper.drained()) break;
      if (!stepper.step_clean()) break;
    }
  }
  return stepper.result();
}

}  // namespace qec
