#include "qecool/online_runner.hpp"

namespace qec {

OnlineResult run_online(const PlanarLattice& lattice,
                        const SyndromeHistory& history,
                        const OnlineConfig& config) {
  QecoolEngine engine(lattice, config.engine);
  const std::uint64_t budget = config.cycles_per_round == 0
                                   ? QecoolEngine::kUnlimited
                                   : config.cycles_per_round;
  OnlineResult result;

  auto step = [&](const BitVec& layer) {
    if (!engine.push_layer(layer)) {
      result.overflow = true;
      return false;
    }
    engine.run(budget);
    return true;
  };

  for (const auto& layer : history.difference) {
    if (!step(layer)) break;
  }
  if (!result.overflow) {
    // Keep the QEC cycle running on clean layers until the queues drain.
    const BitVec clean(static_cast<std::size_t>(lattice.num_checks()), 0);
    for (int extra = 0; extra < config.max_drain_rounds; ++extra) {
      if (engine.all_clear() && engine.stored_layers() == 0) break;
      if (!step(clean)) break;
    }
  }

  result.drained = !result.overflow && engine.all_clear();
  result.correction = engine.correction();
  result.matches = engine.match_stats();
  result.layer_cycles = engine.layer_cycles();
  result.total_cycles = engine.total_cycles();
  return result;
}

}  // namespace qec
