// On-line QECOOL (Section III-B / V): the decoder is clocked at `frequency`
// while a new measurement layer arrives every measurement interval (1 us in
// the paper). Between consecutive layers the engine may spend at most
// frequency * interval cycles; if the 7-entry Reg queues overflow because
// decoding falls behind, the run fails (the effect visible in Fig 7a/7b).
#pragma once

#include <cstdint>

#include "noise/phenomenological.hpp"
#include "qecool/config.hpp"
#include "qecool/engine.hpp"
#include "surface_code/planar_lattice.hpp"

namespace qec {

struct OnlineConfig {
  QecoolConfig engine;  ///< thv = 3, reg_depth = 7 by default (the paper's).

  /// Decoder cycles available between consecutive measurement layers:
  /// frequency [Hz] * measurement interval [s]. Fractional budgets (a
  /// 1.5 MHz clock grants 1.5 cycles per 1 us round) accumulate across
  /// rounds instead of truncating, so sub-cycle clocks are modelled
  /// honestly. <= 0 means unconstrained (used for Table III cycle
  /// statistics).
  double cycles_per_round = 0.0;

  /// After the last real layer the experiment keeps pushing clean layers
  /// (QEC never stops in hardware) until the queues drain; bail out after
  /// this many extra layers.
  int max_drain_rounds = 1000;
};

/// Convenience: cycles available per 1 us measurement interval at `hz`.
/// Returns the exact (possibly fractional) budget; OnlineStepper carries
/// the fractional remainder across rounds, so e.g. 500 kHz grants one
/// cycle every second round instead of truncating to "unconstrained".
constexpr double cycles_per_microsecond(double hz) { return hz * 1e-6; }

struct OnlineResult {
  bool overflow = false;  ///< Reg overflow — the trial counts as a failure.
  bool drained = false;   ///< All defects consumed by the end of the run.
  BitVec correction;
  MatchStats matches;
  /// Working cycles attributed to each popped layer (Table III).
  std::vector<std::uint64_t> layer_cycles;
  std::uint64_t total_cycles = 0;

  /// A trial is successful only if the decoder kept up and drained.
  bool failed_operationally() const { return overflow || !drained; }
};

/// Snapshot of a lane's accumulated decode state, taken by
/// OnlineStepper::checkpoint() when the pool admission controller freezes
/// a lane's logical clock (src/stream/admission.hpp). It captures the
/// patch the lane has committed so far, so a host could read it out while
/// the lane is paused; the live engine keeps the backlog and continues
/// draining under whatever service it receives.
struct StepperCheckpoint {
  BitVec correction;               ///< accumulated data-qubit patch
  int rounds_accepted = 0;         ///< layers pushed before the pause
  int stored_layers = 0;           ///< Reg backlog at checkpoint time
  int popped_layers = 0;           ///< layers fully decoded so far
  std::uint64_t total_cycles = 0;  ///< working cycles consumed so far
};

/// Incremental per-round driver of one on-line engine: push a layer, spend
/// the round's cycle budget, repeat. run_online() is a loop over this; the
/// streaming decode service (src/stream) holds one stepper per lane and
/// advances them round-by-round so many logical qubits progress together.
///
/// Push and spend are separate operations: a lane served by a shared
/// engine pool receives a full, partial, or zero budget each round, so the
/// service pushes the arriving layer unconditionally and grants cycles
/// only when the scheduler assigns the lane an engine. step() bundles the
/// two for the dedicated one-engine-per-lane case.
///
/// checkpoint()/resume() freeze and thaw the lane's logical clock for the
/// pool admission controller: a paused stepper rejects push() (no new
/// measurement layers are admitted — calling it is a logic error, not an
/// overflow) but still accepts spend(), so the backlog drains. A
/// checkpoint()/resume() pair with no intervening activity is a perfect
/// no-op: all subsequent behaviour is identical to never having paused.
class OnlineStepper {
 public:
  OnlineStepper(const PlanarLattice& lattice, const OnlineConfig& config);

  /// Pushes one difference layer without spending any decode cycles.
  /// Returns false when the Reg queues overflow — a terminal state; later
  /// calls are no-ops returning false. Throws std::logic_error while
  /// paused: a frozen logical clock produces no layers. The packed
  /// overload is the streamed hot path (the trace hands out packed
  /// layers); the byte-per-bit overload serves the offline loop and tests.
  bool push(const PackedBits& layer);
  bool push(const BitVec& layer);

  /// Pushes an all-zero layer (the drain phase after the last real round).
  bool push_clean() { return push(clean_); }

  /// Grants `cycles` decode cycles (<= 0: unconstrained, matching the
  /// OnlineConfig::cycles_per_round convention). Fractional grants
  /// accumulate in the cross-round carry and only the integer part is
  /// spent, so a lane granted 0.5 cycles twice runs one cycle on the
  /// second grant. Rounds with no grant leave the carry untouched — the
  /// deficit shows up as queue depth, not as banked cycles. Returns the
  /// cycles the engine actually consumed (it may idle below the budget);
  /// no-op returning 0 after overflow.
  std::uint64_t spend(double cycles);

  /// Layers the engine fully decoded (popped) during the most recent
  /// spend() call — the dequeue events the streaming QoS layer timestamps
  /// for sojourn latency (src/stream/qos.hpp). 0 before any spend.
  int last_spend_pops() const { return last_spend_pops_; }

  /// push() + spend() of this round's configured budget — the dedicated
  /// engine behaviour. Returns false when the Reg queues overflow.
  bool step(const PackedBits& layer);
  bool step(const BitVec& layer);

  /// Streams an all-zero layer (the drain phase after the last real round).
  bool step_clean() { return step(clean_); }

  /// Freezes the logical clock (admission pause) and returns the
  /// checkpointed accumulated patch. While paused, push() throws and
  /// spend() keeps draining the backlog. Throws std::logic_error when
  /// already paused or after overflow (there is nothing left to save).
  StepperCheckpoint checkpoint();

  /// Thaws a paused stepper: the lane's logical clock runs again and
  /// push() is accepted. Throws std::logic_error when not paused.
  void resume();

  bool paused() const { return paused_; }

  bool overflowed() const { return overflow_; }

  /// Observability hook (src/obs): forwards the lane's event track to the
  /// engine so popped layers emit kPop events. Null disables tracing.
  void set_obs_track(obs::Track* track) { engine_.set_obs_track(track); }

  /// Wall-clock profiling hook: forwards the profiler to the engine so the
  /// decode-cache probe/install path is timed under Stage::kCache.
  void set_profiler(obs::Profiler* profiler) { engine_.set_profiler(profiler); }

  /// Decode-window memoization hook: forwards a (possibly shared) cache
  /// shard to the engine. The owner guarantees single-threaded access —
  /// the streaming service does so by executing each shard's lane block
  /// sequentially. Null disables memoization.
  void set_decode_cache(DecodeCache* cache) { engine_.set_decode_cache(cache); }

  /// Invariant/coverage hook (qecool/probe.hpp): forwards the probe to the
  /// engine. The fuzz oracle harness attaches one per lane. Null disables.
  void set_probe(EngineProbe* probe) { engine_.set_probe(probe); }

  /// True when the engine consumed everything: every Reg bit clear and no
  /// stored layers left to pop.
  bool drained() const {
    return !overflow_ && engine_.all_clear() && engine_.stored_layers() == 0;
  }

  /// Rounds the engine accepted so far (real + clean; a layer rejected at
  /// overflow does not count — it was dropped).
  int rounds_stepped() const { return rounds_; }

  const QecoolEngine& engine() const { return engine_; }

  /// Snapshot of the outcome so far, in run_online()'s result shape.
  OnlineResult result() const;

 private:
  /// Shared overflow/round bookkeeping behind both push overloads.
  bool note_push(bool accepted);

  QecoolEngine engine_;
  PackedBits clean_;
  double per_round_ = 0.0;  ///< <= 0: unconstrained.
  double carry_ = 0.0;      ///< fractional budget carried across rounds.
  bool overflow_ = false;
  bool paused_ = false;     ///< logical clock frozen by admission control.
  int rounds_ = 0;
  int last_spend_pops_ = 0;  ///< layers popped by the most recent spend().
};

/// Streams `history` through an on-line engine and returns the outcome.
OnlineResult run_online(const PlanarLattice& lattice,
                        const SyndromeHistory& history,
                        const OnlineConfig& config);

}  // namespace qec
