// On-line QECOOL (Section III-B / V): the decoder is clocked at `frequency`
// while a new measurement layer arrives every measurement interval (1 us in
// the paper). Between consecutive layers the engine may spend at most
// frequency * interval cycles; if the 7-entry Reg queues overflow because
// decoding falls behind, the run fails (the effect visible in Fig 7a/7b).
#pragma once

#include <cstdint>

#include "noise/phenomenological.hpp"
#include "qecool/config.hpp"
#include "qecool/engine.hpp"
#include "surface_code/planar_lattice.hpp"

namespace qec {

struct OnlineConfig {
  QecoolConfig engine;  ///< thv = 3, reg_depth = 7 by default (the paper's).

  /// Decoder cycles available between consecutive measurement layers:
  /// frequency [Hz] * measurement interval [s]. 0 means unconstrained
  /// (used for Table III cycle statistics).
  std::uint64_t cycles_per_round = 0;

  /// After the last real layer the experiment keeps pushing clean layers
  /// (QEC never stops in hardware) until the queues drain; bail out after
  /// this many extra layers.
  int max_drain_rounds = 1000;
};

/// Convenience: cycles available per 1 us measurement interval at `hz`.
constexpr std::uint64_t cycles_per_microsecond(double hz) {
  return static_cast<std::uint64_t>(hz * 1e-6);
}

struct OnlineResult {
  bool overflow = false;  ///< Reg overflow — the trial counts as a failure.
  bool drained = false;   ///< All defects consumed by the end of the run.
  BitVec correction;
  MatchStats matches;
  /// Working cycles attributed to each popped layer (Table III).
  std::vector<std::uint64_t> layer_cycles;
  std::uint64_t total_cycles = 0;

  /// A trial is successful only if the decoder kept up and drained.
  bool failed_operationally() const { return overflow || !drained; }
};

/// Streams `history` through an on-line engine and returns the outcome.
OnlineResult run_online(const PlanarLattice& lattice,
                        const SyndromeHistory& history,
                        const OnlineConfig& config);

}  // namespace qec
