// EngineProbe: a lightweight observation hook on the QECOOL engine's three
// state transitions — layer push, base-layer pop, and one run(budget) call.
// The fuzzing harness (src/fuzz/oracle.hpp) attaches an invariant-checking
// probe here to assert the engine's structural contracts on every
// adversarial input:
//
//   - Reg occupancy never exceeds reg_depth, and a push is rejected only
//     when the queues are exactly full;
//   - no pop without a prior push (pops never outnumber pushes, and a pop
//     always finds at least one stored layer);
//   - cycle accounting conserves grants: run(budget) never consumes more
//     than the budget, and the engine's total cycle counter advances by
//     exactly what run() reports;
//   - the resumable controller position stays in range after every run.
//
// The hook follows the obs::Track precedent: the engine holds a non-owning
// pointer, every call site is one branch when the probe is null, and the
// production hot path never pays more than that branch. Probes are allowed
// to be stateful and are not required to be thread-safe — the owner attaches
// one probe per engine, matching the engine's own single-threaded contract.
#pragma once

#include <cstdint>

namespace qec {

class EngineProbe {
 public:
  virtual ~EngineProbe() = default;

  /// One push_layer() attempt. `accepted` is false on the overflow drop;
  /// `stored_layers` is the occupancy after the attempt (unchanged when
  /// rejected); `reg_depth` is the configured capacity.
  virtual void on_push(bool accepted, int stored_layers, int reg_depth) {
    (void)accepted;
    (void)stored_layers;
    (void)reg_depth;
  }

  /// One base-layer pop (SHIFTREG). `stored_layers` is the occupancy
  /// *before* the pop — a pop with zero stored layers is a bug.
  virtual void on_pop(int stored_layers) { (void)stored_layers; }

  /// One run(budget) call returning `consumed`. `total_cycles` is the
  /// engine's cycle counter after the run; the controller position
  /// (stored_layers, base_depth, hop_limit, row) is the post-run resumable
  /// state. budget == QecoolEngine::kUnlimited means unconstrained.
  virtual void on_run(std::uint64_t budget, std::uint64_t consumed,
                      std::uint64_t total_cycles, int stored_layers,
                      int base_depth, int hop_limit, int row) {
    (void)budget;
    (void)consumed;
    (void)total_cycles;
    (void)stored_layers;
    (void)base_depth;
    (void)hop_limit;
    (void)row;
  }
};

}  // namespace qec
