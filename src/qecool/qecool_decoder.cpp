#include "qecool/qecool_decoder.hpp"

#include <stdexcept>

namespace qec {

BatchQecoolDecoder::BatchQecoolDecoder(QecoolConfig config)
    : config_(config) {
  config_.thv = -1;  // batch: every stored layer is immediately eligible
}

DecodeResult BatchQecoolDecoder::decode(const PlanarLattice& lattice,
                                        const SyndromeHistory& history) {
  QecoolConfig config = config_;
  config.reg_depth = history.total_rounds();
  QecoolEngine engine(lattice, config);
  if (config.cache.enabled && config.cache.entries > 0) {
    // The cache persists across decode() calls; reg_depth varies with the
    // history, but the engine folds it into every key, so stale entries
    // can only waste capacity, never replay wrongly.
    if (!cache_ || cache_->capacity() != config.cache.entries) {
      cache_ = std::make_unique<DecodeCache>(config.cache.entries);
    }
    engine.set_decode_cache(cache_.get());
  }
  for (const auto& layer : history.difference) {
    if (!engine.push_layer(layer)) {
      throw std::logic_error("batch engine sized to hold all layers");
    }
  }
  engine.run(QecoolEngine::kUnlimited);
  if (!engine.all_clear()) {
    throw std::logic_error("batch-QECOOL must drain every defect");
  }
  last_stats_ = engine.match_stats();
  DecodeResult result;
  result.correction = engine.correction();
  result.work = engine.total_cycles();
  return result;
}

}  // namespace qec
