// Batch-QECOOL: Algorithm 1 run in the batch-QEC manner of Section III-C
// (Ndepth = all stored rounds, thv = -1, Controller executed after all
// measurements). This is the decoder behind Fig 4a/4b; with a single noisy
// round it is also the "QECOOL 2-D" entry of Table IV.
#pragma once

#include <memory>

#include "decoder/decoder.hpp"
#include "qecool/config.hpp"
#include "qecool/decode_cache.hpp"
#include "qecool/engine.hpp"

namespace qec {

class BatchQecoolDecoder final : public Decoder {
 public:
  explicit BatchQecoolDecoder(QecoolConfig config = {});

  std::string name() const override { return "Batch-QECOOL"; }

  /// Decodes a complete history. `work` in the result is hardware cycles
  /// under the engine's cycle model.
  DecodeResult decode(const PlanarLattice& lattice,
                      const SyndromeHistory& history) override;

  /// Match statistics of the most recent decode (Fig 4b instrumentation).
  const MatchStats& last_match_stats() const { return last_stats_; }

  const MatchStats* match_stats() const override { return &last_stats_; }

 private:
  QecoolConfig config_;
  MatchStats last_stats_;
  /// Decode-window memoization across decode() calls (decoder instances
  /// are per-worker-thread, so no locking; see decode_cache.hpp).
  std::unique_ptr<DecodeCache> cache_;
};

}  // namespace qec
