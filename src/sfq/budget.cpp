#include "sfq/budget.hpp"

#include <cmath>

#include "sfq/power.hpp"
#include "sfq/unit_netlist.hpp"

namespace qec {

long long DecoderDeployment::protectable_logical_qubits(
    double budget_w) const {
  const double per_qubit = power_per_logical_qubit_w();
  if (per_qubit <= 0.0) return 0;
  return static_cast<long long>(std::floor(budget_w / per_qubit));
}

DecoderDeployment qecool_deployment(int distance, double freq_hz) {
  DecoderDeployment out;
  out.name = "QECOOL (7-bit Reg)";
  out.power_per_unit_w = qecool_unit_ersfq_power_w(freq_hz);
  out.units_per_logical_qubit = units_per_logical_qubit(distance);
  return out;
}

DecoderDeployment aqec_deployment(int distance, bool extended_to_3d) {
  DecoderDeployment out;
  out.name = "AQEC";
  out.power_per_unit_w = 13.44e-6;  // Table V
  const long long base = static_cast<long long>(2 * distance - 1) *
                         static_cast<long long>(2 * distance - 1);
  out.units_per_logical_qubit = extended_to_3d ? base * 7 : base;
  return out;
}

}  // namespace qec
