// Dilution-refrigerator power budgeting (Table V): how many logical qubits
// each decoder can protect inside the ~1 W budget of the 4-K stage
// [Hornibrook et al. 2015].
#pragma once

#include <string>

namespace qec {

/// 4-K stage budget assumed by the paper.
inline constexpr double kFourKelvinBudgetW = 1.0;

/// One decoder technology's power story: watts per Unit and Units per
/// logical qubit, from which Table V's "protectable qubits" follows.
struct DecoderDeployment {
  std::string name;
  double power_per_unit_w = 0.0;           ///< dissipation of one Unit [W]
  long long units_per_logical_qubit = 0;   ///< decoder Units per patch

  /// Watts needed to protect one logical qubit.
  double power_per_logical_qubit_w() const {
    return power_per_unit_w * static_cast<double>(units_per_logical_qubit);
  }
  /// Logical qubits that FIT the budget (floor; the paper rounds, which
  /// yields 37 instead of 36 for AQEC — see EXPERIMENTS.md).
  long long protectable_logical_qubits(double budget_w) const;
};

/// QECOOL at code distance d and clock `freq_hz` (ERSFQ).
DecoderDeployment qecool_deployment(int distance, double freq_hz);

/// AQEC / NISQ+ [Holmes et al. 2020] with the constants the paper quotes in
/// Table V: 13.44 uW per unit, (2d-1)^2 units per logical qubit, and a 7x
/// module overhead when extended to 3-D matching (Section V-D).
DecoderDeployment aqec_deployment(int distance, bool extended_to_3d);

}  // namespace qec
