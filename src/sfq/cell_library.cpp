#include "sfq/cell_library.hpp"

#include <cstdlib>

namespace qec {
namespace {

// Table I of the paper, verbatim.
constexpr std::array<SfqCellSpec, kSfqCellCount> kCellTable{{
    {"splitter", 3, 0.300, 900.0, 4.3},
    {"merger", 7, 0.880, 900.0, 8.2},
    {"1:2 switch", 33, 3.464, 8100.0, 10.5},
    {"DRO", 6, 0.720, 900.0, 5.1},
    {"NDRO", 11, 1.112, 1800.0, 6.4},
    {"RD", 11, 0.900, 1800.0, 6.0},
    {"D2", 12, 0.944, 1800.0, 6.8},
}};

}  // namespace

const SfqCellSpec& cell_spec(SfqCell cell) {
  const auto index = static_cast<std::size_t>(cell);
  if (index >= kCellTable.size()) std::abort();
  return kCellTable[index];
}

const std::array<SfqCellSpec, kSfqCellCount>& cell_table() {
  return kCellTable;
}

}  // namespace qec
