// The RSFQ standard-cell library of Table I (AIST 10-kA/cm^2 ADP cell
// library [Yamanashi et al.], niobium nine-layer 1.0-um process): per-cell
// Josephson-junction count, bias current, area and latency.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace qec {

/// The seven SFQ logic cells of Table I, in table order.
enum class SfqCell : std::uint8_t {
  Splitter,
  Merger,
  Switch12,       ///< 1:2 switch
  Dro,            ///< destructive readout
  Ndro,           ///< nondestructive readout
  ResettableDro,  ///< DRO with reset (RD)
  DualOutputDro,  ///< dual-output DRO (D2)
  kCount,
};

/// Number of distinct cells in Table I.
inline constexpr int kSfqCellCount = static_cast<int>(SfqCell::kCount);

/// One Table I row: the published physical budget of a standard cell.
struct SfqCellSpec {
  std::string_view name;
  int jjs = 0;              ///< Josephson junctions
  double bias_ma = 0.0;     ///< bias current [mA]
  double area_um2 = 0.0;    ///< layout area [um^2]
  double latency_ps = 0.0;  ///< propagation latency [ps]
};

/// Table I, row for `cell`.
const SfqCellSpec& cell_spec(SfqCell cell);

/// All cells in Table I order.
const std::array<SfqCellSpec, kSfqCellCount>& cell_table();

/// Magnetic flux quantum Phi0 [Wb] (Section V-C power model).
inline constexpr double kFluxQuantumWb = 2.068e-15;
/// Designed RSFQ bias supply voltage [V] (Section V-C power model).
inline constexpr double kRsfqSupplyV = 2.5e-3;

}  // namespace qec
