#include "sfq/fabric.hpp"

#include "sfq/power.hpp"
#include "sfq/unit_netlist.hpp"

namespace qec {

FabricReport build_fabric(const FabricConfig& config) {
  const int d = config.distance;
  const long long q = config.logical_qubits;
  const UnitBudget unit = unit_budget();

  FabricReport report;
  report.units = q * units_per_logical_qubit(d);
  report.row_masters = q * 2LL * d;        // d rows per sector
  report.controllers = q * 2LL;
  report.boundary_units = q * 2LL * 2LL;   // two rough edges per sector
  report.total_jjs = report.units * unit.jjs;
  report.area_mm2 = static_cast<double>(report.units) * unit.area_um2 * 1e-6;
  report.ersfq_power_w = static_cast<double>(report.units) *
                         qecool_unit_ersfq_power_w(config.freq_hz);
  report.rsfq_power_w =
      static_cast<double>(report.units) * qecool_unit_rsfq_power_w();
  report.physical_data_qubits =
      q * (static_cast<long long>(d) * d + static_cast<long long>(d - 1) * (d - 1));
  report.physical_ancilla_qubits = q * units_per_logical_qubit(d);
  return report;
}

long long max_logical_qubits(int distance, double freq_hz, double budget_w) {
  return qecool_deployment(distance, freq_hz)
      .protectable_logical_qubits(budget_w);
}

}  // namespace qec
