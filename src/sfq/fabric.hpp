// System-level decoder fabric model: what it takes to protect a whole
// processor's worth of logical qubits with QECOOL Units in the 4-K stage —
// the scaling story behind the paper's "around 2,500 logical qubits"
// headline, extended with area and junction-count feasibility.
#pragma once

#include <string>

#include "sfq/budget.hpp"

namespace qec {

/// What to build: a decoder fabric protecting `logical_qubits` patches of
/// code distance `distance`, clocked at `freq_hz`.
struct FabricConfig {
  int logical_qubits = 1;  ///< surface-code patches to protect
  int distance = 9;        ///< code distance of every patch
  double freq_hz = 2e9;    ///< decoder clock (ERSFQ dynamic power scales with it)
};

/// Bill of materials and physical budget of one decoder fabric.
struct FabricReport {
  long long units = 0;            ///< decoder Units, both error sectors
  long long row_masters = 0;      ///< one per row per sector per qubit
  long long controllers = 0;      ///< one per sector per logical qubit
  long long boundary_units = 0;   ///< two per sector per logical qubit
  long long total_jjs = 0;        ///< Units only (controllers are small)
  double area_mm2 = 0.0;          ///< Unit layout area, both sectors
  double ersfq_power_w = 0.0;     ///< dynamic power at FabricConfig::freq_hz
  double rsfq_power_w = 0.0;      ///< static bias power (RSFQ technology)
  long long physical_data_qubits = 0;     ///< data qubits protected
  long long physical_ancilla_qubits = 0;  ///< ancilla (check) qubits read out

  /// Fits the given 4-K power budget?
  bool fits_power(double budget_w) const { return ersfq_power_w <= budget_w; }
};

/// Builds the bill of materials for a decoder fabric.
FabricReport build_fabric(const FabricConfig& config);

/// Largest number of logical qubits whose fabric fits `budget_w` at the
/// given distance and clock (the paper's Table V question, generalized).
long long max_logical_qubits(int distance, double freq_hz, double budget_w);

}  // namespace qec
