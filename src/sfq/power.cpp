#include "sfq/power.hpp"

#include "sfq/cell_library.hpp"
#include "sfq/unit_netlist.hpp"

namespace qec {

double rsfq_power_w(double bias_ma, double supply_v) {
  return bias_ma * 1e-3 * supply_v;
}

double ersfq_power_w(double bias_ma, double freq_hz) {
  return bias_ma * 1e-3 * freq_hz * kFluxQuantumWb * 2.0;
}

double qecool_unit_rsfq_power_w() {
  return rsfq_power_w(unit_budget().bias_ma, kRsfqSupplyV);
}

double qecool_unit_ersfq_power_w(double freq_hz) {
  return ersfq_power_w(unit_budget().bias_ma, freq_hz);
}

}  // namespace qec
