// RSFQ / ERSFQ power models of Sections IV-C and V-C.
//
// RSFQ power is dominated by static bias dissipation: P = V_bias * I_bias
// (840 uW per Unit at 2.5 mV, 336 mA). ERSFQ [Kirichenko et al. 2011]
// eliminates static dissipation; what remains is dynamic power, twice the
// RSFQ dynamic power [Mukhanov 2011]:
//
//     P_unit = I_bias * f * Phi0 * 2
//
// which gives 2.78 uW per Unit at 2 GHz — the headline number of the paper.
#pragma once

namespace qec {

/// Static RSFQ power [W] for a bias current [mA] at supply `supply_v`.
double rsfq_power_w(double bias_ma, double supply_v);

/// ERSFQ dynamic power [W] for a bias current [mA] at clock `freq_hz`.
double ersfq_power_w(double bias_ma, double freq_hz);

/// Power of one QECOOL Unit (published 336 mA bias) in each technology.
double qecool_unit_rsfq_power_w();
double qecool_unit_ersfq_power_w(double freq_hz);

}  // namespace qec
