#include "sfq/pulse_sim.hpp"

#include <cassert>
#include <stdexcept>

namespace qec {

PulseSimulator::NodeId PulseSimulator::make_node(std::string name) {
  const NodeId id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(std::move(name));
  traces_.emplace_back();
  listeners_.emplace_back();
  return id;
}

void PulseSimulator::attach(NodeId node, int cell, Pin pin) {
  assert(node >= 0 && node < static_cast<NodeId>(listeners_.size()));
  listeners_[static_cast<std::size_t>(node)].push_back({cell, pin});
}

void PulseSimulator::add_jtl(NodeId in, NodeId out, double delay_ps) {
  cells_.push_back({CellKind::Jtl, delay_ps, out, -1, false});
  attach(in, static_cast<int>(cells_.size()) - 1, kIn0);
}

void PulseSimulator::add_splitter(NodeId in, NodeId out_a, NodeId out_b) {
  cells_.push_back({CellKind::Splitter, cell_spec(SfqCell::Splitter).latency_ps,
                    out_a, out_b, false});
  attach(in, static_cast<int>(cells_.size()) - 1, kIn0);
}

void PulseSimulator::add_merger(NodeId in_a, NodeId in_b, NodeId out) {
  cells_.push_back({CellKind::Merger, cell_spec(SfqCell::Merger).latency_ps,
                    out, -1, false});
  const int cell = static_cast<int>(cells_.size()) - 1;
  attach(in_a, cell, kIn0);
  attach(in_b, cell, kIn1);
}

void PulseSimulator::add_dro(NodeId set, NodeId clk, NodeId out) {
  cells_.push_back(
      {CellKind::Dro, cell_spec(SfqCell::Dro).latency_ps, out, -1, false});
  const int cell = static_cast<int>(cells_.size()) - 1;
  attach(set, cell, kIn0);
  attach(clk, cell, kClk);
}

void PulseSimulator::add_rd(NodeId set, NodeId reset, NodeId clk, NodeId out) {
  cells_.push_back({CellKind::Rd, cell_spec(SfqCell::ResettableDro).latency_ps,
                    out, -1, false});
  const int cell = static_cast<int>(cells_.size()) - 1;
  attach(set, cell, kIn0);
  attach(reset, cell, kReset);
  attach(clk, cell, kClk);
}

void PulseSimulator::add_ndro(NodeId set, NodeId reset, NodeId clk,
                              NodeId out) {
  cells_.push_back(
      {CellKind::Ndro, cell_spec(SfqCell::Ndro).latency_ps, out, -1, false});
  const int cell = static_cast<int>(cells_.size()) - 1;
  attach(set, cell, kIn0);
  attach(reset, cell, kReset);
  attach(clk, cell, kClk);
}

void PulseSimulator::add_d2(NodeId set, NodeId clk, NodeId out_true,
                            NodeId out_false) {
  cells_.push_back({CellKind::D2, cell_spec(SfqCell::DualOutputDro).latency_ps,
                    out_true, out_false, false});
  const int cell = static_cast<int>(cells_.size()) - 1;
  attach(set, cell, kIn0);
  attach(clk, cell, kClk);
}

void PulseSimulator::add_switch(NodeId in, NodeId select_set,
                                NodeId select_reset, NodeId out0,
                                NodeId out1) {
  cells_.push_back({CellKind::Switch, cell_spec(SfqCell::Switch12).latency_ps,
                    out0, out1, false});
  const int cell = static_cast<int>(cells_.size()) - 1;
  attach(in, cell, kIn0);
  attach(select_set, cell, kIn1);
  attach(select_reset, cell, kReset);
}

void PulseSimulator::inject(NodeId node, double t_ps) { schedule(node, t_ps); }

void PulseSimulator::schedule(NodeId node, double t) {
  if (node < 0) return;  // unconnected output
  queue_.push(Event{t, seq_++, node});
}

void PulseSimulator::deliver(const Event& event) {
  traces_[static_cast<std::size_t>(event.node)].push_back(event.t);
  for (const Listener& listener :
       listeners_[static_cast<std::size_t>(event.node)]) {
    Cell& cell = cells_[static_cast<std::size_t>(listener.cell)];
    const double out_t = event.t + cell.latency_ps;
    switch (cell.kind) {
      case CellKind::Jtl:
      case CellKind::Merger:
        schedule(cell.out0, out_t);
        break;
      case CellKind::Splitter:
        schedule(cell.out0, out_t);
        schedule(cell.out1, out_t);
        break;
      case CellKind::Dro:
        if (listener.pin == kIn0) {
          cell.state = true;
        } else if (listener.pin == kClk) {
          if (cell.state) schedule(cell.out0, out_t);
          cell.state = false;
        }
        break;
      case CellKind::Rd:
        if (listener.pin == kIn0) {
          cell.state = true;
        } else if (listener.pin == kReset) {
          cell.state = false;
        } else if (listener.pin == kClk) {
          if (cell.state) schedule(cell.out0, out_t);
          cell.state = false;
        }
        break;
      case CellKind::Ndro:
        if (listener.pin == kIn0) {
          cell.state = true;
        } else if (listener.pin == kReset) {
          cell.state = false;
        } else if (listener.pin == kClk) {
          if (cell.state) schedule(cell.out0, out_t);  // non-destructive
        }
        break;
      case CellKind::D2:
        if (listener.pin == kIn0) {
          cell.state = true;
        } else if (listener.pin == kClk) {
          schedule(cell.state ? cell.out0 : cell.out1, out_t);
          cell.state = false;
        }
        break;
      case CellKind::Switch:
        if (listener.pin == kIn0) {
          schedule(cell.state ? cell.out1 : cell.out0, out_t);
        } else if (listener.pin == kIn1) {
          cell.state = true;
        } else if (listener.pin == kReset) {
          cell.state = false;
        }
        break;
    }
  }
}

void PulseSimulator::run(double until_ps) {
  while (!queue_.empty() && queue_.top().t <= until_ps) {
    const Event event = queue_.top();
    queue_.pop();
    ++events_processed_;
    deliver(event);
  }
}

const std::vector<double>& PulseSimulator::pulses(NodeId node) const {
  return traces_[static_cast<std::size_t>(node)];
}

int PulseSimulator::pulse_count(NodeId node) const {
  return static_cast<int>(traces_[static_cast<std::size_t>(node)].size());
}

PriorityArbiter build_priority_arbiter(PulseSimulator& sim,
                                       double port_skew_ps) {
  PriorityArbiter arb{};
  // Four ports, skewed so W arrives before E before N before S when pulses
  // are injected simultaneously — the "appropriate signal delay in each
  // direction" of Section IV-B.
  PulseSimulator::NodeId delayed[4];
  for (int i = 0; i < 4; ++i) {
    arb.port[i] = sim.make_node("port" + std::to_string(i));
    delayed[i] = sim.make_node("delayed" + std::to_string(i));
    sim.add_jtl(arb.port[i], delayed[i],
                1.0 + port_skew_ps * static_cast<double>(i));
  }
  // Merge tree: ((W,E),(N,S)) -> merged.
  const auto m0 = sim.make_node("merge_we");
  const auto m1 = sim.make_node("merge_ns");
  const auto merged = sim.make_node("merged");
  sim.add_merger(delayed[0], delayed[1], m0);
  sim.add_merger(delayed[2], delayed[3], m1);
  sim.add_merger(m0, m1, merged);
  // First pulse passes the switch to `winner` and then locks the switch so
  // later pulses fall into the sink.
  arb.winner = sim.make_node("winner");
  const auto sink = sim.make_node("sink");
  const auto lock = sim.make_node("lock");
  const auto none = sim.make_node("nc");
  sim.add_switch(merged, lock, none, arb.winner, sink);
  const auto winner_fanout = sim.make_node("winner_fanout");
  sim.add_splitter(arb.winner, winner_fanout, lock);
  return arb;
}

}  // namespace qec
