// Event-driven behavioural simulator for SFQ pulse logic.
//
// The paper verifies its Unit design with JSIM, a SPICE-level Josephson
// circuit simulator, which we cannot run here. This module substitutes a
// pulse-level behavioural model: SFQ pulses are timestamped events on named
// nodes, and each Table I cell is modelled by its logical behaviour plus its
// published propagation latency. It is sufficient to demonstrate the
// functional mechanisms the hardware relies on — DRO/NDRO storage,
// merger/splitter fan-in/out, and the race-logic prioritization where the
// earliest pulse through deliberately skewed delay lines wins (Section
// IV-B) — and is exercised by tests/sfq_pulse_sim_test.cpp.
#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "sfq/cell_library.hpp"

namespace qec {

class PulseSimulator {
 public:
  using NodeId = int;

  /// Creates a wiring node; `name` is for diagnostics only.
  NodeId make_node(std::string name = {});

  // --- Cells (latencies default to the Table I figures) -------------------
  /// Josephson transmission line: pure delay.
  void add_jtl(NodeId in, NodeId out, double delay_ps);
  /// Splitter: one input pulse fans out to both outputs.
  void add_splitter(NodeId in, NodeId out_a, NodeId out_b);
  /// Merger: a pulse on either input appears on the output.
  void add_merger(NodeId in_a, NodeId in_b, NodeId out);
  /// DRO: `set` stores a flux quantum; `clk` destructively reads it out.
  void add_dro(NodeId set, NodeId clk, NodeId out);
  /// RD: DRO with an extra reset input that silently clears the loop.
  void add_rd(NodeId set, NodeId reset, NodeId clk, NodeId out);
  /// NDRO: non-destructive read; set/reset control the stored state.
  void add_ndro(NodeId set, NodeId reset, NodeId clk, NodeId out);
  /// D2: dual-output DRO; `clk` emits on out_true if set, else on
  /// out_false, and clears the state.
  void add_d2(NodeId set, NodeId clk, NodeId out_true, NodeId out_false);
  /// 1:2 switch: routes `in` to out0 (select clear) or out1 (select set).
  void add_switch(NodeId in, NodeId select_set, NodeId select_reset,
                  NodeId out0, NodeId out1);

  /// Injects an external pulse at time t [ps].
  void inject(NodeId node, double t_ps);

  /// Runs until the event queue drains (or `until_ps`).
  void run(double until_ps = 1e18);

  /// All pulse arrival times recorded at a node, in time order.
  const std::vector<double>& pulses(NodeId node) const;
  /// Convenience: number of pulses seen at a node.
  int pulse_count(NodeId node) const;
  /// Total events processed (sanity/termination metric).
  std::uint64_t events_processed() const { return events_processed_; }

 private:
  enum class CellKind : std::uint8_t {
    Jtl,
    Splitter,
    Merger,
    Dro,
    Rd,
    Ndro,
    D2,
    Switch,
  };
  // Pin roles, meaning depends on kind.
  enum Pin : std::uint8_t { kIn0 = 0, kIn1, kClk, kReset };

  struct Cell {
    CellKind kind;
    double latency_ps = 0.0;
    NodeId out0 = -1;
    NodeId out1 = -1;
    bool state = false;
  };
  struct Listener {
    int cell = -1;
    Pin pin = kIn0;
  };
  struct Event {
    double t = 0.0;
    std::uint64_t seq = 0;  // deterministic tie-break
    NodeId node = -1;
    bool operator>(const Event& other) const {
      if (t != other.t) return t > other.t;
      return seq > other.seq;
    }
  };

  void attach(NodeId node, int cell, Pin pin);
  void schedule(NodeId node, double t);
  void deliver(const Event& event);

  std::vector<std::string> node_names_;
  std::vector<std::vector<double>> traces_;
  std::vector<std::vector<Listener>> listeners_;
  std::vector<Cell> cells_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::uint64_t seq_ = 0;
  std::uint64_t events_processed_ = 0;
};

/// Builds the race-logic priority arbiter of the Unit's Prioritization
/// module: four spike input ports (W, E, N, S) are skewed by increasing JTL
/// delays and merged; the first pulse is forwarded to `winner` and flips a
/// 1:2 switch so every later pulse is swallowed. The per-port skew must
/// exceed the lock-loop latency (switch + splitter, ~15 ps with Table I
/// figures) or simultaneous pulses race past the lock before it engages —
/// exactly the timing constraint a real race-logic design must close; the
/// default leaves ~1 ps of margin.
struct PriorityArbiter {
  PulseSimulator::NodeId port[4];
  PulseSimulator::NodeId winner;
};
PriorityArbiter build_priority_arbiter(PulseSimulator& sim,
                                       double port_skew_ps = 16.0);

}  // namespace qec
