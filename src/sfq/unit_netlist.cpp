#include "sfq/unit_netlist.hpp"

namespace qec {
namespace {

// Table II, cell-instance rows. Array order: splitter, merger, 1:2 switch,
// DRO, NDRO, RD, D2.
constexpr std::array<ModuleNetlist, kUnitModuleCount> kModules{{
    {"State machine", {17, 14, 8, 0, 20, 6, 0}, 196, 675, 265500.0, 69.7,
     98.7},
    {"Prioritization", {4, 9, 0, 0, 0, 0, 0}, 82, 157, 82800.0, 15.3, 28.0},
    {"Base pointer (7-bit)", {8, 30, 3, 3, 0, 30, 6}, 1085, 1935, 709200.0,
     208.5, 147.0},
    {"Spike out", {2, 8, 0, 0, 0, 4, 0}, 91, 314, 129600.0, 32.2, 61.1},
    {"Syndrome out", {0, 2, 0, 0, 0, 4, 0}, 18, 58, 25200.0, 5.4, 10.4},
    {"Other", {0, 2, 0, 0, 0, 0, 0}, 0, 38, 62100.0, 5.0, 0.0},
}};

}  // namespace

int ModuleNetlist::derived_jjs() const {
  int total = wire_jjs;
  for (int c = 0; c < kSfqCellCount; ++c) {
    total += cells[static_cast<std::size_t>(c)] *
             cell_spec(static_cast<SfqCell>(c)).jjs;
  }
  return total;
}

double ModuleNetlist::derived_cell_bias_ma() const {
  double total = 0.0;
  for (int c = 0; c < kSfqCellCount; ++c) {
    total += cells[static_cast<std::size_t>(c)] *
             cell_spec(static_cast<SfqCell>(c)).bias_ma;
  }
  return total;
}

double ModuleNetlist::derived_cell_area_um2() const {
  double total = 0.0;
  for (int c = 0; c < kSfqCellCount; ++c) {
    total += cells[static_cast<std::size_t>(c)] *
             cell_spec(static_cast<SfqCell>(c)).area_um2;
  }
  return total;
}

int ModuleNetlist::total_cell_instances() const {
  int total = 0;
  for (int count : cells) total += count;
  return total;
}

const std::array<ModuleNetlist, kUnitModuleCount>& unit_modules() {
  return kModules;
}

UnitBudget unit_budget() { return {}; }

double unit_max_frequency_hz() {
  return 1.0 / (unit_budget().critical_path_ps * 1e-12);
}

long long units_per_logical_qubit(int distance) {
  return 2LL * distance * (distance - 1);
}

}  // namespace qec
