// The QECOOL hardware Unit netlist of Table II / Fig 6: per-module cell
// instance counts, wire-JJ counts, and the published module budgets (JJs,
// area, bias current, latency) from the AIST ADP cell library design.
//
// Two views are provided:
//  - published_*: the numbers printed in Table II (used to regenerate it);
//  - derived_*: bottom-up sums from cell instance counts x Table I specs
//    plus wire JJs. The grand JJ total reconciles exactly (3177); the
//    paper's per-module JJ splits do not decompose exactly into its own
//    cell rows, which we surface rather than hide (see
//    tests/sfq_netlist_test.cpp).
#pragma once

#include <array>
#include <string_view>

#include "sfq/cell_library.hpp"

namespace qec {

/// The six functional modules of one Unit (Table II columns / Fig 6).
enum class UnitModule : std::uint8_t {
  StateMachine,
  Prioritization,
  BasePointer,  ///< 7-bit Reg + base pointer
  SpikeOut,
  SyndromeOut,
  Other,
  kCount,
};

/// Number of Unit modules in Table II.
inline constexpr int kUnitModuleCount = static_cast<int>(UnitModule::kCount);

/// Cell-level netlist and published budgets of one Unit module.
struct ModuleNetlist {
  std::string_view name;
  /// Cell instance counts in Table I order (splitter..D2).
  std::array<int, kSfqCellCount> cells{};
  int wire_jjs = 0;  ///< JJs in wiring (JTLs) not attributed to a cell

  /// Published per-module budgets (Table II).
  int published_jjs = 0;
  double published_area_um2 = 0.0;
  double published_bias_ma = 0.0;
  double published_latency_ps = 0.0;  ///< 0 where the paper leaves it blank

  /// Bottom-up JJ count: cell instances x JJs/cell + wire JJs.
  int derived_jjs() const;
  /// Bottom-up bias current from cell specs only (wire bias excluded; the
  /// paper does not publish a per-wire-JJ bias figure).
  double derived_cell_bias_ma() const;
  /// Bottom-up layout area from cell specs only.
  double derived_cell_area_um2() const;
  /// Total cell instances across all Table I cell kinds.
  int total_cell_instances() const;
};

/// All six modules of one Unit, in Table II column order.
const std::array<ModuleNetlist, kUnitModuleCount>& unit_modules();

/// Whole-Unit published budgets (Table II "Total" column).
struct UnitBudget {
  int jjs = 3177;               ///< Josephson junctions per Unit
  double area_um2 = 1274400.0;  ///< 1.274 mm^2 (Fig 6: 1770 um x 720 um)
  double bias_ma = 336.0;       ///< total bias current [mA]
  double critical_path_ps = 215.0;  ///< longest combinational path [ps]
};

/// The published whole-Unit budget (Table II "Total" column).
UnitBudget unit_budget();

/// Maximum clock frequency implied by the critical path (about 5 GHz less
/// margin; Section IV-C quotes "about 5 GHz").
double unit_max_frequency_hz();

/// Number of decoder Units per logical qubit: one per ancilla of both error
/// sectors, 2 d (d-1) (Table V).
long long units_per_logical_qubit(int distance);

}  // namespace qec
