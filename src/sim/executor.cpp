#include "sim/executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace qec {

int resolve_threads(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 1;
}

struct ThreadPool::Job {
  const std::function<void(int)>* fn = nullptr;
  int tasks = 0;
  int max_workers = 0;  // pool workers allowed in (caller not counted)
  std::atomic<int> next{0};
  int active = 0;  // workers inside execute(); guarded by the pool mutex
  std::mutex error_mutex;
  std::exception_ptr error;

  void execute() {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks) return;
      try {
        (*fn)(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        next.store(tasks, std::memory_order_relaxed);  // abandon the range
      }
    }
  }
};

ThreadPool::ThreadPool(int threads) {
  const int total = resolve_threads(threads);
  workers_.reserve(static_cast<std::size_t>(total > 0 ? total - 1 : 0));
  for (int i = 1; i < total; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_.wait(lock, [&] {
      return stopping_ || (job_ != nullptr && generation_ != seen_generation);
    });
    if (stopping_) return;
    seen_generation = generation_;
    Job* job = job_;
    if (job->active >= job->max_workers) continue;  // job is at its cap
    ++job->active;
    lock.unlock();
    job->execute();
    lock.lock();
    if (--job->active == 0) drained_.notify_all();
  }
}

void ThreadPool::parallel_for(int tasks, const std::function<void(int)>& fn,
                              int max_threads) {
  if (tasks <= 0) return;
  const std::lock_guard<std::mutex> serialize(run_mutex_);
  Job job;
  job.fn = &fn;
  job.tasks = tasks;
  job.max_workers = (max_threads <= 0 ? size() : std::min(max_threads, size())) - 1;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++generation_;
  }
  wake_.notify_all();
  job.execute();  // the calling thread is a worker too
  {
    std::unique_lock<std::mutex> lock(mutex_);
    job_ = nullptr;  // late workers must no longer pick the job up
    drained_.wait(lock, [&] { return job.active == 0; });
  }
  if (job.error) std::rethrow_exception(job.error);
}

std::shared_ptr<ThreadPool> shared_pool(int min_threads) {
  static std::mutex mutex;
  static std::shared_ptr<ThreadPool> pool;
  const int total = resolve_threads(min_threads);
  const std::lock_guard<std::mutex> lock(mutex);
  if (!pool || pool->size() < total) {
    pool = std::make_shared<ThreadPool>(total);
  }
  return pool;
}

void parallel_for(int tasks, int threads, const std::function<void(int)>& fn) {
  const int total = std::min(resolve_threads(threads), std::max(tasks, 1));
  if (total <= 1 || tasks <= 1) {
    for (int i = 0; i < tasks; ++i) fn(i);
    return;
  }
  shared_pool(total)->parallel_for(tasks, fn, total);
}

}  // namespace qec
