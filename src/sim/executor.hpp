// Thread-pool executor for sharded Monte Carlo runs.
//
// Work is expressed as an indexed task range [0, tasks); workers claim
// indices from a shared atomic counter, so the pool never imposes an
// ordering. Callers that need deterministic output (all of src/sim does)
// write each task's result into a per-index slot and reduce in index order
// after parallel_for returns — the outcome is then independent of thread
// count and scheduling.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace qec {

/// Number of worker threads `requested` resolves to: values >= 1 pass
/// through, and <= 0 means "all hardware threads" (at least 1).
int resolve_threads(int requested);

/// Fixed-size pool of worker threads. parallel_for calls are serialized —
/// one indexed range runs at a time, with the calling thread participating
/// as an extra worker.
class ThreadPool {
 public:
  /// Spawns resolve_threads(threads) - 1 workers (the caller is the last
  /// worker, so `threads` == total concurrency during parallel_for).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + calling thread).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [0, tasks); blocks until all complete.
  /// `max_threads` caps the concurrency of this call (0 = the whole pool),
  /// so a small job on a large shared pool stays within its own budget.
  /// Exceptions thrown by fn are captured and the first one rethrown on the
  /// calling thread after the range drains.
  void parallel_for(int tasks, const std::function<void(int)>& fn,
                    int max_threads = 0);

 private:
  struct Job;
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex run_mutex_;  // serializes parallel_for calls
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable drained_;
  Job* job_ = nullptr;              // guarded by mutex_
  std::uint64_t generation_ = 0;    // bumped per job so workers join once
  bool stopping_ = false;
};

/// Process-wide pool with at least resolve_threads(min_threads) total
/// concurrency, grown (replaced) on demand. Holders pin the pool they got
/// via the shared_ptr, so a replaced pool drains its in-flight range before
/// its workers join. Repeated experiment/sweep cells reuse the same
/// threads instead of spawning fresh ones per cell.
std::shared_ptr<ThreadPool> shared_pool(int min_threads);

/// One-shot convenience: runs fn(i) for i in [0, tasks) on up to `threads`
/// concurrent workers of the shared pool (inline when threads resolves to
/// 1 or tasks <= 1).
void parallel_for(int tasks, int threads, const std::function<void(int)>& fn);

}  // namespace qec
