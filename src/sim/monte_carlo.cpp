#include "sim/monte_carlo.hpp"

#include <bit>
#include <vector>

#include "sim/executor.hpp"

namespace qec {

ExperimentConfig phenomenological_config(int distance, double p, int trials,
                                         std::uint64_t seed) {
  ExperimentConfig config;
  config.distance = distance;
  config.rounds = distance;
  config.p_data = p;
  config.p_meas = p;
  config.trials = trials;
  config.seed = seed;
  return config;
}

ExperimentConfig code_capacity_config(int distance, double p, int trials,
                                      std::uint64_t seed) {
  ExperimentConfig config;
  config.distance = distance;
  config.rounds = 1;
  config.p_data = p;
  config.p_meas = 0.0;
  config.trials = trials;
  config.seed = seed;
  return config;
}

void ExperimentResult::merge(const ExperimentResult& other) {
  trials += other.trials;
  failures += other.failures;
  operational_failures += other.operational_failures;
  layer_cycles.merge(other.layer_cycles);
  matches.merge(other.matches);
}

void ExperimentResult::finalize() {
  logical_error_rate =
      trials ? static_cast<double>(failures) / static_cast<double>(trials)
             : 0.0;
  ci = wilson_interval(failures, trials);
}

Xoshiro256ss experiment_rng(const ExperimentConfig& config, int shard) {
  // Feed every structural parameter through a full SplitMix64 avalanche so
  // any single-bit change — including p-values far below 1e-12, via their
  // raw IEEE-754 bit patterns — yields an unrelated stream.
  std::uint64_t state = config.seed;
  const auto feed = [&state](std::uint64_t value) {
    state ^= value;
    state = splitmix64(state);
  };
  feed(static_cast<std::uint64_t>(config.distance));
  feed(static_cast<std::uint64_t>(config.rounds));
  feed(std::bit_cast<std::uint64_t>(config.p_data));
  feed(std::bit_cast<std::uint64_t>(config.p_meas));
  Xoshiro256ss rng(state);
  for (int i = 0; i < shard; ++i) rng.jump();
  return rng;
}

int resolve_shards(const ExperimentConfig& config) {
  if (config.shards >= 1) return config.shards;
  return resolve_threads(config.threads);
}

namespace {

NoiseParams noise_params(const ExperimentConfig& config) {
  NoiseParams params;
  params.p_data = config.p_data;
  params.p_meas = config.p_meas;
  params.rounds = config.rounds;
  return params;
}

/// Trials assigned to `shard`: an even split, earlier shards absorbing the
/// remainder, so the schedule is a pure function of (trials, shards).
int shard_trials(int trials, int shards, int shard) {
  return trials / shards + (shard < trials % shards ? 1 : 0);
}

ExperimentResult run_memory_shard(Decoder& decoder,
                                  const PlanarLattice& lattice,
                                  const NoiseParams& params, Xoshiro256ss rng,
                                  int trials) {
  ExperimentResult result;
  for (int trial = 0; trial < trials; ++trial) {
    const SyndromeHistory history = sample_history(lattice, params, rng);
    const DecodeResult decode = decoder.decode(lattice, history);
    if (logical_failure(lattice, history, decode)) ++result.failures;
    if (const MatchStats* stats = decoder.match_stats()) {
      result.matches.merge(*stats);
    }
    ++result.trials;
  }
  return result;
}

ExperimentResult run_online_shard(const PlanarLattice& lattice,
                                  const NoiseParams& params,
                                  const OnlineConfig& online, Xoshiro256ss rng,
                                  int trials) {
  ExperimentResult result;
  for (int trial = 0; trial < trials; ++trial) {
    const SyndromeHistory history = sample_history(lattice, params, rng);
    const OnlineResult run = run_online(lattice, history, online);
    bool failed = run.failed_operationally();
    if (failed) {
      ++result.operational_failures;
    } else {
      DecodeResult decode;
      decode.correction = run.correction;
      failed = logical_failure(lattice, history, decode);
    }
    if (failed) ++result.failures;
    result.matches.merge(run.matches);
    for (std::uint64_t cycles : run.layer_cycles) {
      result.layer_cycles.add(static_cast<double>(cycles));
    }
    ++result.trials;
  }
  return result;
}

/// Shared shard-fanout skeleton: runs `shard_fn(shard, rng, trials)` for
/// every shard (in parallel up to config.threads) and merges the per-shard
/// results in shard order, so the reduction is deterministic.
template <typename ShardFn>
ExperimentResult run_sharded(const ExperimentConfig& config, int threads,
                             const ShardFn& shard_fn) {
  const int shards = resolve_shards(config);
  std::vector<ExperimentResult> parts(static_cast<std::size_t>(shards));
  parallel_for(shards, threads, [&](int shard) {
    parts[static_cast<std::size_t>(shard)] =
        shard_fn(shard, experiment_rng(config, shard),
                 shard_trials(config.trials, shards, shard));
  });
  ExperimentResult result;
  for (const ExperimentResult& part : parts) result.merge(part);
  result.finalize();
  return result;
}

}  // namespace

ExperimentResult run_memory_experiment(const DecoderMaker& make,
                                       const ExperimentConfig& config) {
  const PlanarLattice lattice(config.distance);
  const NoiseParams params = noise_params(config);
  return run_sharded(config, config.threads,
                     [&](int /*shard*/, Xoshiro256ss rng, int trials) {
                       const auto decoder = make();
                       return run_memory_shard(*decoder, lattice, params,
                                               rng, trials);
                     });
}

ExperimentResult run_memory_experiment(Decoder& decoder,
                                       const ExperimentConfig& config) {
  const PlanarLattice lattice(config.distance);
  const NoiseParams params = noise_params(config);
  // One shared instance — same shard schedule, forced sequential.
  return run_sharded(config, /*threads=*/1,
                     [&](int /*shard*/, Xoshiro256ss rng, int trials) {
                       return run_memory_shard(decoder, lattice, params, rng,
                                               trials);
                     });
}

ExperimentResult run_online_experiment(const ExperimentConfig& config,
                                       const OnlineConfig& online) {
  const PlanarLattice lattice(config.distance);
  const NoiseParams params = noise_params(config);
  return run_sharded(config, config.threads,
                     [&](int /*shard*/, Xoshiro256ss rng, int trials) {
                       return run_online_shard(lattice, params, online, rng,
                                               trials);
                     });
}

}  // namespace qec
