#include "sim/monte_carlo.hpp"

#include "qecool/qecool_decoder.hpp"

namespace qec {

ExperimentConfig phenomenological_config(int distance, double p, int trials,
                                         std::uint64_t seed) {
  ExperimentConfig config;
  config.distance = distance;
  config.rounds = distance;
  config.p_data = p;
  config.p_meas = p;
  config.trials = trials;
  config.seed = seed;
  return config;
}

ExperimentConfig code_capacity_config(int distance, double p, int trials,
                                      std::uint64_t seed) {
  ExperimentConfig config;
  config.distance = distance;
  config.rounds = 1;
  config.p_data = p;
  config.p_meas = 0.0;
  config.trials = trials;
  config.seed = seed;
  return config;
}

void ExperimentResult::finalize() {
  logical_error_rate =
      trials ? static_cast<double>(failures) / static_cast<double>(trials)
             : 0.0;
  ci = wilson_interval(failures, trials);
}

namespace {

Xoshiro256ss seeded_rng(const ExperimentConfig& config) {
  // Mix the structural parameters into the seed so every (d, p, rounds)
  // point draws an independent stream while staying reproducible.
  std::uint64_t state = config.seed;
  state ^= static_cast<std::uint64_t>(config.distance) * 0x9e3779b97f4a7c15ULL;
  state ^= static_cast<std::uint64_t>(config.rounds) * 0xbf58476d1ce4e5b9ULL;
  state ^= static_cast<std::uint64_t>(config.p_data * 1e12);
  state ^= static_cast<std::uint64_t>(config.p_meas * 1e12) << 1;
  std::uint64_t mixed = state;
  return Xoshiro256ss(splitmix64(mixed));
}

NoiseParams noise_params(const ExperimentConfig& config) {
  NoiseParams params;
  params.p_data = config.p_data;
  params.p_meas = config.p_meas;
  params.rounds = config.rounds;
  return params;
}

}  // namespace

ExperimentResult run_memory_experiment(Decoder& decoder,
                                       const ExperimentConfig& config) {
  const PlanarLattice lattice(config.distance);
  const NoiseParams params = noise_params(config);
  Xoshiro256ss rng = seeded_rng(config);

  ExperimentResult result;
  auto* qecool = dynamic_cast<BatchQecoolDecoder*>(&decoder);
  for (int trial = 0; trial < config.trials; ++trial) {
    const SyndromeHistory history = sample_history(lattice, params, rng);
    const DecodeResult decode = decoder.decode(lattice, history);
    if (logical_failure(lattice, history, decode)) ++result.failures;
    if (qecool) result.matches.merge(qecool->last_match_stats());
    ++result.trials;
  }
  result.finalize();
  return result;
}

ExperimentResult run_online_experiment(const ExperimentConfig& config,
                                       const OnlineConfig& online) {
  const PlanarLattice lattice(config.distance);
  const NoiseParams params = noise_params(config);
  Xoshiro256ss rng = seeded_rng(config);

  ExperimentResult result;
  for (int trial = 0; trial < config.trials; ++trial) {
    const SyndromeHistory history = sample_history(lattice, params, rng);
    const OnlineResult run = run_online(lattice, history, online);
    bool failed = run.failed_operationally();
    if (failed) {
      ++result.operational_failures;
    } else {
      DecodeResult decode;
      decode.correction = run.correction;
      failed = logical_failure(lattice, history, decode);
    }
    if (failed) ++result.failures;
    result.matches.merge(run.matches);
    for (std::uint64_t cycles : run.layer_cycles) {
      result.layer_cycles.add(static_cast<double>(cycles));
    }
    ++result.trials;
  }
  result.finalize();
  return result;
}

}  // namespace qec
