// Monte Carlo memory experiments: sample a phenomenological-noise history,
// decode it, apply the correction and score the logical observable — the
// procedure behind every accuracy figure in the paper.
//
// Trials are split into `shards`, each drawing from an independent RNG
// stream derived from the mixed seed via Xoshiro256ss::jump(), and shard
// results are merged in shard order. The shard schedule and merge order
// depend only on (seed, trials, shards), so for a FIXED shard count a run
// is bit-identical for any thread count, and the default
// threads = 1 / shards = 0 reproduces the original sequential single-stream
// loop seed-for-seed (one shard, zero jumps). The shards = 0 fallback
// derives the shard count from `threads`, so whoever varies threads with
// shards left at 0 accepts a changed seed schedule — pin `shards` when
// results must be stable under varying thread counts (the sweep driver
// pins 16).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/stats.hpp"
#include "decoder/decoder.hpp"
#include "qecool/online_runner.hpp"

namespace qec {

struct ExperimentConfig {
  int distance = 5;
  /// Noisy measurement rounds; the paper uses rounds = d for 3-D
  /// experiments and rounds = 1 with p_meas = 0 for 2-D (code capacity).
  int rounds = 5;
  double p_data = 1e-3;
  double p_meas = 1e-3;
  int trials = 1000;
  std::uint64_t seed = 2021;

  /// Worker threads; <= 0 means all hardware threads. With `shards` set
  /// explicitly this never affects the sampled streams or the result —
  /// only wall-clock. With shards = 0 it also picks the shard count, and
  /// the shard count IS part of the seed schedule.
  int threads = 1;
  /// RNG shards; 0 derives one shard per resolved worker thread (machine-
  /// dependent when threads <= 0). Each shard is an independent stream, so
  /// fix this explicitly when results must be identical across machines
  /// and thread counts (the sweep driver pins 16).
  int shards = 0;
};

/// Convenience constructors for the two standard settings.
ExperimentConfig phenomenological_config(int distance, double p, int trials,
                                         std::uint64_t seed = 2021);
ExperimentConfig code_capacity_config(int distance, double p, int trials,
                                      std::uint64_t seed = 2021);

/// The RNG stream of one shard: the seed is mixed with the structural
/// parameters (distance, rounds, and the full IEEE-754 bits of both
/// p-values, so arbitrarily small probabilities still perturb the stream),
/// then jumped `shard` times. Exposed for determinism tests.
Xoshiro256ss experiment_rng(const ExperimentConfig& config, int shard = 0);

/// Number of shards `config` resolves to (>= 1).
int resolve_shards(const ExperimentConfig& config);

struct ExperimentResult {
  std::uint64_t trials = 0;
  std::uint64_t failures = 0;            ///< logical errors (incl. operational)
  std::uint64_t operational_failures = 0;  ///< overflow / failed drain (online)
  double logical_error_rate = 0.0;
  BinomialInterval ci;

  RunningStats layer_cycles;  ///< per-layer execution cycles (Table III)
  MatchStats matches;         ///< vertical-propagation stats (Fig 4b)

  /// Folds another shard's counters in (parallel reduction; call in shard
  /// order for reproducible floating-point sums, then finalize()).
  void merge(const ExperimentResult& other);

  void finalize();
};

/// Builds one decoder instance per shard so worker threads never share
/// decoder state; see decoder_maker() in decoder/registry.hpp.
using DecoderMaker = std::function<std::unique_ptr<Decoder>()>;

/// Sharded batch experiment: each shard decodes with its own instance from
/// `make`, in parallel when config.threads > 1.
ExperimentResult run_memory_experiment(const DecoderMaker& make,
                                       const ExperimentConfig& config);

/// Batch experiment with a caller-owned decoder instance. Runs the same
/// shard schedule strictly sequentially (one instance cannot be shared
/// across threads) — bit-identical to the DecoderMaker overload with the
/// same config, whatever its thread count.
ExperimentResult run_memory_experiment(Decoder& decoder,
                                       const ExperimentConfig& config);

/// On-line QECOOL experiment (cycle-budgeted streaming decode), sharded and
/// parallel exactly like the batch path.
ExperimentResult run_online_experiment(const ExperimentConfig& config,
                                       const OnlineConfig& online);

}  // namespace qec
