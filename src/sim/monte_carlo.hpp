// Monte Carlo memory experiments: sample a phenomenological-noise history,
// decode it, apply the correction and score the logical observable — the
// procedure behind every accuracy figure in the paper.
#pragma once

#include <cstdint>
#include <functional>

#include "common/stats.hpp"
#include "decoder/decoder.hpp"
#include "qecool/online_runner.hpp"

namespace qec {

struct ExperimentConfig {
  int distance = 5;
  /// Noisy measurement rounds; the paper uses rounds = d for 3-D
  /// experiments and rounds = 1 with p_meas = 0 for 2-D (code capacity).
  int rounds = 5;
  double p_data = 1e-3;
  double p_meas = 1e-3;
  int trials = 1000;
  std::uint64_t seed = 2021;
};

/// Convenience constructors for the two standard settings.
ExperimentConfig phenomenological_config(int distance, double p, int trials,
                                         std::uint64_t seed = 2021);
ExperimentConfig code_capacity_config(int distance, double p, int trials,
                                      std::uint64_t seed = 2021);

struct ExperimentResult {
  std::uint64_t trials = 0;
  std::uint64_t failures = 0;            ///< logical errors (incl. operational)
  std::uint64_t operational_failures = 0;  ///< overflow / failed drain (online)
  double logical_error_rate = 0.0;
  BinomialInterval ci;

  RunningStats layer_cycles;  ///< per-layer execution cycles (Table III)
  MatchStats matches;         ///< vertical-propagation stats (Fig 4b)

  void finalize();
};

/// Batch experiment with any Decoder implementation.
ExperimentResult run_memory_experiment(Decoder& decoder,
                                       const ExperimentConfig& config);

/// On-line QECOOL experiment (cycle-budgeted streaming decode).
ExperimentResult run_online_experiment(const ExperimentConfig& config,
                                       const OnlineConfig& online);

}  // namespace qec
