#include "sim/sweep.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "decoder/registry.hpp"

namespace qec {

SweepVariant decoder_variant(std::string label, std::string decoder_spec) {
  SweepVariant variant;
  variant.label = std::move(label);
  variant.decoder = std::move(decoder_spec);
  return variant;
}

SweepVariant online_variant(std::string label, OnlineConfig online) {
  SweepVariant variant;
  variant.label = std::move(label);
  variant.online = online;
  return variant;
}

ExperimentConfig SweepGrid::cell_config(int distance, double p) const {
  ExperimentConfig config = code_capacity
                                ? code_capacity_config(distance, p, trials, seed)
                                : phenomenological_config(distance, p, trials,
                                                          seed);
  config.threads = threads;
  config.shards = shards;
  return config;
}

const SweepCell* SweepResult::find(std::string_view variant, int distance,
                                   double p) const {
  for (const SweepCell& cell : cells) {
    if (cell.variant == variant && cell.distance == distance &&
        cell.p == p) {
      return &cell;
    }
  }
  return nullptr;
}

std::vector<DistanceCurve> SweepResult::curves(
    std::string_view variant) const {
  std::vector<DistanceCurve> out;
  for (const SweepCell& cell : cells) {
    if (cell.variant != variant) continue;
    if (out.empty() || out.back().distance != cell.distance) {
      out.push_back({cell.distance, {}});
    }
    out.back().points.push_back({cell.p, cell.result.logical_error_rate});
  }
  return out;
}

std::optional<double> SweepResult::threshold(std::string_view variant) const {
  return estimate_threshold(curves(variant));
}

namespace {

std::vector<std::string> csv_header() {
  return {"variant", "decoder", "distance", "rounds", "p", "trials",
          "failures", "operational_failures", "pl", "ci_lower", "ci_upper"};
}

void csv_append(CsvWriter& csv, const SweepCell& cell) {
  csv.add_row({cell.variant, cell.decoder, std::to_string(cell.distance),
               std::to_string(cell.config.rounds), TextTable::fmt(cell.p, 6),
               std::to_string(cell.result.trials),
               std::to_string(cell.result.failures),
               std::to_string(cell.result.operational_failures),
               TextTable::sci(cell.result.logical_error_rate, 6),
               TextTable::sci(cell.result.ci.lower, 6),
               TextTable::sci(cell.result.ci.upper, 6)});
}

}  // namespace

bool SweepResult::write_csv(const std::string& path) const {
  CsvWriter csv(path, csv_header());
  if (!csv.ok()) return false;
  for (const SweepCell& cell : cells) csv_append(csv, cell);
  return true;
}

SweepResult run_sweep(const SweepGrid& grid, const std::string& csv_path,
                      const SweepProgress& progress) {
  // Validate every decoder spec and the CSV destination before burning any
  // Monte Carlo time.
  std::vector<DecoderMaker> makers(grid.variants.size());
  for (std::size_t i = 0; i < grid.variants.size(); ++i) {
    if (!grid.variants[i].online) {
      makers[i] = decoder_maker(grid.variants[i].decoder);
    }
  }
  std::unique_ptr<CsvWriter> csv;
  if (!csv_path.empty()) {
    csv = std::make_unique<CsvWriter>(csv_path, csv_header());
    if (!csv->ok()) {
      throw std::runtime_error("sweep: cannot write CSV to " + csv_path);
    }
  }

  SweepResult result;
  result.cells.reserve(grid.variants.size() * grid.distances.size() *
                       grid.ps.size());
  for (std::size_t v = 0; v < grid.variants.size(); ++v) {
    const SweepVariant& variant = grid.variants[v];
    for (int distance : grid.distances) {
      for (double p : grid.ps) {
        SweepCell cell;
        cell.variant = variant.label;
        cell.decoder = variant.online ? "online" : variant.decoder;
        cell.distance = distance;
        cell.p = p;
        cell.config = grid.cell_config(distance, p);
        if (variant.trials_for) {
          cell.config.trials = variant.trials_for(cell.config);
        }
        cell.result = variant.online
                          ? run_online_experiment(cell.config, *variant.online)
                          : run_memory_experiment(makers[v], cell.config);
        result.cells.push_back(std::move(cell));
        // Stream the row immediately so an interrupted sweep keeps every
        // finished point on disk.
        if (csv) {
          csv_append(*csv, result.cells.back());
          csv->flush();
        }
        if (progress) progress(result.cells.back());
      }
    }
  }
  return result;
}

std::vector<double> log_spaced(double lo, double hi, int points) {
  std::vector<double> out;
  if (points <= 1) {
    out.push_back(lo);
    return out;
  }
  for (int i = 0; i < points; ++i) {
    out.push_back(lo * std::pow(hi / lo,
                                static_cast<double>(i) / (points - 1)));
  }
  return out;
}

}  // namespace qec
