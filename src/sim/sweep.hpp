// Unified sweep driver: one declarative grid over (decoder variant, code
// distance, physical error rate) replacing the hand-rolled nested loops that
// every bench and example used to carry. A variant is either a batch
// decoder (a registry spec, run through the sharded Monte Carlo engine) or
// an on-line QECOOL configuration; all cells share the grid's trial budget,
// seed schedule, and threads/shards settings, and can be streamed to CSV.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "qecool/online_runner.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/threshold.hpp"

namespace qec {

struct SweepVariant {
  /// Row label in tables / the `variant` CSV column.
  std::string label;

  /// Decoder registry spec ("mwpm", "qecool:reg_depth=4", ...); used unless
  /// `online` is set.
  std::string decoder;

  /// When set the cell runs the on-line QECOOL experiment instead of a
  /// batch decode (`decoder` is ignored).
  std::optional<OnlineConfig> online;

  /// Optional per-cell trial override (e.g. the MWPM cost-budget adaptation
  /// in bench_util.hpp); receives the cell's config with the grid-level
  /// trial count already filled in.
  std::function<int(const ExperimentConfig&)> trials_for;
};

/// Convenience constructors for the two variant kinds.
SweepVariant decoder_variant(std::string label, std::string decoder_spec);
SweepVariant online_variant(std::string label, OnlineConfig online);

struct SweepGrid {
  std::vector<SweepVariant> variants;
  std::vector<int> distances;
  std::vector<double> ps;

  /// false: 3-D phenomenological (rounds = d); true: 2-D code capacity
  /// (rounds = 1, perfect measurement).
  bool code_capacity = false;

  int trials = 400;
  std::uint64_t seed = 2021;

  /// Worker threads per cell (<= 0: all hardware threads). Thread count
  /// never changes results because `shards` is fixed independently.
  int threads = 1;
  /// RNG shards per cell. Fixed by default so sweep output is identical on
  /// any machine and for any --threads value.
  int shards = 16;

  /// The per-cell ExperimentConfig (before any trials_for override).
  ExperimentConfig cell_config(int distance, double p) const;
};

struct SweepCell {
  std::string variant;
  std::string decoder;  ///< registry spec, or "online" for on-line cells.
  int distance = 0;
  double p = 0.0;
  ExperimentConfig config;
  ExperimentResult result;

  double overflow_rate() const {
    return result.trials ? static_cast<double>(result.operational_failures) /
                               static_cast<double>(result.trials)
                         : 0.0;
  }
};

class SweepResult {
 public:
  std::vector<SweepCell> cells;  ///< variant-major, then distance, then p.

  /// Cell lookup; nullptr when absent.
  const SweepCell* find(std::string_view variant, int distance,
                        double p) const;

  /// p_L(p) curves of one variant, ascending in distance — the input of the
  /// threshold estimator.
  std::vector<DistanceCurve> curves(std::string_view variant) const;

  /// Averaged pairwise curve-crossing threshold of one variant.
  std::optional<double> threshold(std::string_view variant) const;

  /// Writes all cells as CSV (variant, decoder, distance, rounds, p,
  /// trials, failures, operational_failures, pl, ci_lower, ci_upper).
  /// Returns false when the file could not be opened.
  bool write_csv(const std::string& path) const;
};

/// Called after each finished cell (progress reporting).
using SweepProgress = std::function<void(const SweepCell&)>;

/// Runs every (variant, distance, p) cell of the grid. Throws
/// std::invalid_argument for unknown decoder specs (validated before any
/// simulation starts). When `csv_path` is non-empty the result is also
/// written there.
SweepResult run_sweep(const SweepGrid& grid, const std::string& csv_path = "",
                      const SweepProgress& progress = nullptr);

/// `points` log-spaced values spanning [lo, hi] (the usual p grid).
std::vector<double> log_spaced(double lo, double hi, int points);

}  // namespace qec
