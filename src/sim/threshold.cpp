#include "sim/threshold.hpp"

#include <algorithm>
#include <cmath>

namespace qec {
namespace {

struct LogPoint {
  double x = 0.0;  // log p
  double y = 0.0;  // log pl
};

std::vector<LogPoint> to_log(const DistanceCurve& curve) {
  std::vector<LogPoint> out;
  for (const auto& pt : curve.points) {
    if (pt.p > 0.0 && pt.pl > 0.0) {
      out.push_back({std::log(pt.p), std::log(pt.pl)});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const LogPoint& a, const LogPoint& b) { return a.x < b.x; });
  return out;
}

// Piecewise-linear evaluation with clamped extrapolation disabled: returns
// nullopt outside the sampled range.
std::optional<double> eval(const std::vector<LogPoint>& pts, double x) {
  if (pts.size() < 2 || x < pts.front().x || x > pts.back().x) {
    return std::nullopt;
  }
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (x <= pts[i].x) {
      const double t = (x - pts[i - 1].x) / (pts[i].x - pts[i - 1].x);
      return pts[i - 1].y + t * (pts[i].y - pts[i - 1].y);
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<double> curve_crossing(const DistanceCurve& a,
                                     const DistanceCurve& b) {
  const auto la = to_log(a);
  const auto lb = to_log(b);
  if (la.size() < 2 || lb.size() < 2) return std::nullopt;
  const double lo = std::max(la.front().x, lb.front().x);
  const double hi = std::min(la.back().x, lb.back().x);
  if (lo >= hi) return std::nullopt;

  // Scan for a sign change of (curve_a - curve_b) on a fine grid, then
  // bisect. The higher-distance curve must go from below to above (or the
  // reverse); either direction counts as a crossing.
  constexpr int kGrid = 256;
  auto diff = [&](double x) -> std::optional<double> {
    const auto ya = eval(la, x);
    const auto yb = eval(lb, x);
    if (!ya || !yb) return std::nullopt;
    return *ya - *yb;
  };
  std::optional<double> prev;
  double prev_x = lo;
  for (int i = 0; i <= kGrid; ++i) {
    const double x = lo + (hi - lo) * i / kGrid;
    const auto d = diff(x);
    if (!d) continue;
    if (prev && ((*prev < 0 && *d >= 0) || (*prev > 0 && *d <= 0))) {
      double xl = prev_x, xr = x;
      for (int iter = 0; iter < 60; ++iter) {
        const double mid = 0.5 * (xl + xr);
        const auto dm = diff(mid);
        if (!dm) break;
        if ((*prev < 0) == (*dm < 0)) {
          xl = mid;
        } else {
          xr = mid;
        }
      }
      return std::exp(0.5 * (xl + xr));
    }
    prev = d;
    prev_x = x;
  }
  return std::nullopt;
}

std::optional<double> estimate_threshold(
    const std::vector<DistanceCurve>& curves) {
  double sum = 0.0;
  int count = 0;
  for (std::size_t i = 1; i < curves.size(); ++i) {
    if (const auto x = curve_crossing(curves[i - 1], curves[i])) {
      sum += *x;
      ++count;
    }
  }
  if (count == 0) return std::nullopt;
  return sum / count;
}

}  // namespace qec
