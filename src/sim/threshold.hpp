// Threshold estimation from logical-error-rate curves.
//
// The paper defines the threshold p_th as the physical error rate where the
// p_L(p) curves for different code distances cross (Section III-C). We
// estimate it the same way: interpolate each pair of consecutive-distance
// curves in log-log space, find their crossing, and average the crossings.
#pragma once

#include <optional>
#include <vector>

namespace qec {

struct CurvePoint {
  double p = 0.0;   ///< physical error rate
  double pl = 0.0;  ///< logical error rate
};

struct DistanceCurve {
  int distance = 0;
  std::vector<CurvePoint> points;  ///< ascending in p
};

/// Crossing of two curves in log-log space (linear interpolation between
/// sample points). Returns nullopt when the curves do not cross within the
/// sampled range. Points with pl == 0 are skipped (no log).
std::optional<double> curve_crossing(const DistanceCurve& a,
                                     const DistanceCurve& b);

/// Averaged pairwise crossing of consecutive-distance curves; nullopt when
/// no pair crosses.
std::optional<double> estimate_threshold(
    const std::vector<DistanceCurve>& curves);

}  // namespace qec
