#include "stream/admission.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "decoder/registry.hpp"
#include "obs/trace.hpp"
#include "sfq/budget.hpp"

namespace qec {
namespace {

[[noreturn]] void bad_spec(const std::string& what) {
  throw std::invalid_argument("admission spec: " + what);
}

/// DecoderOptions has no "was this key given" query; an implausible
/// fallback distinguishes an absent key from an explicit value, so a
/// typo like high=0 or low=-2 fails loudly instead of silently selecting
/// the automatic watermark.
constexpr int kAbsent = std::numeric_limits<int>::min();

}  // namespace

AdmissionConfig parse_admission_spec(std::string_view spec) {
  const auto colon = spec.find(':');
  const std::string_view name = spec.substr(0, colon);
  const DecoderOptions options = DecoderOptions::parse(
      colon == std::string_view::npos ? std::string_view{}
                                      : spec.substr(colon + 1));

  AdmissionConfig config;
  if (name == "overflow") {
    config.mode = AdmissionConfig::Mode::kOverflow;
  } else if (name == "pause") {
    config.mode = AdmissionConfig::Mode::kPause;
    if (const int high = options.get_int("high", kAbsent); high != kAbsent) {
      if (high < 1) bad_spec("high-water mark must be >= 1");
      config.high_water = high;
    }
    if (const int low = options.get_int("low", kAbsent); low != kAbsent) {
      if (low < 0) bad_spec("low-water mark must be >= 0");
      config.low_water = low;
    }
  } else if (name == "codel") {
    config.mode = AdmissionConfig::Mode::kCodel;
    if (const int target = options.get_int("target", kAbsent);
        target != kAbsent) {
      if (target < 1) bad_spec("codel target must be >= 1 round");
      config.target = target;
    }
    if (const int interval = options.get_int("interval", kAbsent);
        interval != kAbsent) {
      if (interval < 1) bad_spec("codel interval must be >= 1 round");
      config.interval = interval;
    }
  } else {
    bad_spec("unknown mode '" + std::string(name) +
             "' (expected overflow, pause, or codel)");
  }
  if (const auto leftover = options.unconsumed(); !leftover.empty()) {
    bad_spec("mode '" + std::string(name) + "' does not understand " +
             DecoderOptions::join_keys(leftover));
  }
  // Reject orderings that can never resolve, before reg_depth is known.
  if (config.pause() && config.high_water > 0 && config.low_water >= 0 &&
      config.low_water >= config.high_water) {
    bad_spec("low-water mark must be below the high-water mark");
  }
  return config;
}

AdmissionConfig resolve_admission(const AdmissionConfig& config,
                                  int reg_depth) {
  AdmissionConfig resolved = config;
  if (!resolved.pause()) return resolved;
  if (resolved.codel()) {
    // The latency law drives pause decisions; the depth high-water mark
    // stays as the overflow backstop, so codel can never lose a lane
    // that pause mode would have kept. The low-water mark doubles as the
    // drain re-admission depth: the engine cannot pop a base layer until
    // m - b > thv, so a paused lane stalls with a few layers resident and
    // a depth mark (not depth == 0) must thaw it, exactly as in pause
    // mode.
    resolved.high_water = reg_depth;
    resolved.low_water = reg_depth / 2;
    if (resolved.target <= 0) resolved.target = std::max(1, reg_depth / 2);
    if (resolved.interval <= 0) resolved.interval = 2 * reg_depth;
    return resolved;
  }
  if (resolved.high_water <= 0) resolved.high_water = reg_depth;
  if (resolved.low_water < 0) resolved.low_water = reg_depth / 2;
  if (resolved.high_water > reg_depth) {
    bad_spec("high-water mark " + std::to_string(resolved.high_water) +
             " exceeds reg_depth " + std::to_string(reg_depth));
  }
  if (resolved.low_water >= resolved.high_water) {
    bad_spec("low-water mark must be below the high-water mark");
  }
  return resolved;
}

void trace_admission_pause(obs::Track& track, std::int64_t round, bool codel,
                           int depth) {
  // emit_at, not emit: the admission controller runs on the scheduling
  // thread before the parallel region updates the track's round cursor.
  track.emit_at(round, obs::EventKind::kPause,
                static_cast<std::uint64_t>(depth),
                codel ? obs::kPauseByCodel : obs::kPauseByDepth);
}

void trace_admission_resume(obs::Track& track, std::int64_t round, int depth) {
  track.emit_at(round, obs::EventKind::kResume,
                static_cast<std::uint64_t>(depth));
}

double PoolPowerModel::watts_per_engine() const {
  return qecool_deployment(distance, freq_hz).power_per_logical_qubit_w();
}

double PoolPowerModel::watts() const {
  return static_cast<double>(engines) * watts_per_engine();
}

int PoolPowerModel::max_engines(double budget_w, int distance,
                                double freq_hz) {
  const long long fit = qecool_deployment(distance, freq_hz)
                            .protectable_logical_qubits(budget_w);
  // A pool larger than any realistic lane count is indistinguishable from
  // "unbounded"; clamp so callers can store the answer in an int.
  constexpr long long kCap = 1 << 30;
  return static_cast<int>(fit < 0 ? 0 : (fit > kCap ? kCap : fit));
}

}  // namespace qec
