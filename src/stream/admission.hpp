// Power-aware admission control for the shared decoder-engine pool.
//
// The paper's headline constraint is the ~1 W 4-K-stage budget (Table V,
// src/sfq/budget.hpp): the pool size K is ultimately a *watts* decision,
// not a free integer. This header ties the two ends together:
//
//  - PoolPowerModel maps a pool spec (K engines, code distance, decoder
//    clock) to dissipated watts through the ERSFQ power model of
//    src/sfq/{power,budget} — the same per-Unit numbers behind Table V —
//    and answers the inverse question: how many engines fit a budget.
//
//  - AdmissionConfig selects what happens to a lane whose Reg queues fill
//    because the pool is over-subscribed. "overflow" (the default) keeps
//    the PR 3 behaviour byte for byte: the next push overflows and the
//    lane dies. "pause" is graceful load shedding: instead of pushing
//    into a full queue, the admission controller freezes the lane's
//    logical clock (OnlineStepper::checkpoint() — the accumulated patch
//    is checkpointed and no further layers are admitted), lets the
//    backlog drain through whatever engine service the lane receives,
//    and re-admits it (OnlineStepper::resume()) once its queue depth
//    falls to the low-water mark. Paused lanes are non-schedulable for
//    state-aware policies (ScheduleView::paused); engines the policy
//    leaves idle are granted to paused lanes, deepest queue first, so a
//    paused lane always eventually drains and resumes.
//
// Both knobs ride StreamConfig: admission = "overflow" | "pause" |
// "pause:high=6,low=2" (parsed exactly like decoder and policy specs),
// and budget_w > 0 caps the pool at the largest K whose model watts fit
// the budget. Everything here is deterministic: admission decisions are
// made on the scheduling thread in lane order and depend only on
// (trace, config), never on thread count. See DESIGN.md section 9.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace qec {

namespace obs {
class Track;  // obs/trace.hpp — pause/resume transitions emit here
}

/// What the streaming service does when a lane's Reg queues fill up.
struct AdmissionConfig {
  enum class Mode {
    kOverflow,  ///< PR 3 behaviour: push into a full queue, lane dies.
    kPause,     ///< freeze the lane's logical clock until the queue drains.
    kCodel,     ///< freeze on sustained sojourn latency (CoDel control law).
  };

  Mode mode = Mode::kOverflow;

  /// Pause a lane whose pre-round queue depth is >= high_water. In kPause
  /// mode 0 selects the automatic mark: the engine's reg_depth, i.e.
  /// pause exactly when the next push would overflow — pause mode then
  /// strictly dominates overflow mode. In kCodel mode this is always the
  /// overflow backstop (reg_depth) behind the latency control law.
  int high_water = 0;

  /// Re-admit a paused lane once its queue depth is <= low_water. -1
  /// selects the automatic mark: reg_depth / 2. Must resolve to
  /// 0 <= low_water < high_water <= reg_depth. kCodel always uses the
  /// automatic mark, as the drain backstop behind the sojourn-based
  /// resume (the engine cannot pop below thv resident layers, so a depth
  /// mark must thaw a stalled drain).
  int low_water = -1;

  /// kCodel: sojourn target in logical rounds — pause once the lane's
  /// minimum head sojourn stays >= target for a whole interval; re-admit
  /// when the head sojourn falls below it. 0 selects the automatic
  /// target: max(1, reg_depth / 2).
  int target = 0;

  /// kCodel: control interval in logical rounds (the sustained-congestion
  /// window; consecutive pauses shrink it by 1/sqrt(count), computed in
  /// Q0.32 fixed point — see codel_rec_inv_sqrt in stream/qos.hpp). 0
  /// selects the automatic interval: 2 * reg_depth.
  int interval = 0;

  /// Admission-controlled modes: the service runs the pause/drain/resume
  /// machinery (per-lane trace cursors, checkpoint()/resume()).
  bool pause() const { return mode != Mode::kOverflow; }
  /// Pause decisions come from the CoDel latency law, not depth marks.
  bool codel() const { return mode == Mode::kCodel; }
};

/// Parses an admission spec — "overflow", "pause", "pause:high=H,low=L",
/// "codel", or "codel:target=T,interval=I" — through the same option
/// machinery as decoder and scheduler-policy specs. Throws
/// std::invalid_argument for unknown modes, malformed option lists,
/// options the mode does not understand ("overflow" takes none, "pause"
/// takes high/low, "codel" takes target/interval; every offending key is
/// named), or marks that cannot order (low >= high).
AdmissionConfig parse_admission_spec(std::string_view spec);

/// Resolves the automatic watermarks (pause) or target/interval (codel)
/// against the engine's actual reg_depth and validates
/// 0 <= low < high <= reg_depth. Throws std::invalid_argument when the
/// resolved marks are out of range.
AdmissionConfig resolve_admission(const AdmissionConfig& config,
                                  int reg_depth);

/// Observability hooks (src/obs): one call per admission transition, made
/// on the scheduling thread in lane order right where the controller
/// freezes (OnlineStepper::checkpoint) or thaws (resume) a lane. kPause
/// opens a span on the lane's track (arg records which law fired — the
/// depth watermark or the CoDel deadline), kResume closes it; both carry
/// the queue depth at transition time. Callers guard with a null test, so
/// disabled tracing costs one branch.
void trace_admission_pause(obs::Track& track, std::int64_t round, bool codel,
                           int depth);
void trace_admission_resume(obs::Track& track, std::int64_t round, int depth);

/// Watts drawn by a pool of K streaming decoder engines. One engine
/// serves one lane (logical qubit) at a time, so its hardware is one
/// logical qubit's worth of QECOOL Units — the Table V deployment at
/// this code distance — clocked at freq_hz in ERSFQ technology.
struct PoolPowerModel {
  int engines = 1;        ///< pool size K
  int distance = 5;       ///< code distance of the served lattice
  double freq_hz = 0.0;   ///< decoder clock (cycles_per_round / 1 us)

  /// ERSFQ watts of one engine's Unit array (Table V per-qubit power).
  double watts_per_engine() const;

  /// Total pool dissipation: engines * watts_per_engine().
  double watts() const;

  /// Does the whole pool fit a 4-K-stage budget?
  bool fits(double budget_w) const { return watts() <= budget_w; }

  /// Largest K whose pool fits `budget_w` at this distance and clock
  /// (0 when not even one engine fits). The inverse of watts().
  static int max_engines(double budget_w, int distance, double freq_hz);
};

}  // namespace qec
