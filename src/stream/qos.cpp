#include "stream/qos.hpp"

#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/trace.hpp"

namespace qec {

std::uint32_t codel_newton_step(std::uint32_t rec_inv_sqrt,
                                std::uint32_t count) {
  // v' = v/2 * (3 - k v^2), all in Q0.32. The invariant v <= 1/sqrt(k)
  // keeps k * v^2 <= 1, so the 64-bit intermediates cannot overflow.
  const std::uint64_t v = rec_inv_sqrt;
  const std::uint64_t v2 = (v * v) >> 32;               // Q0.32 of v^2
  std::uint64_t val = (3ULL << 32) - count * v2;        // Q2.32 of 3 - k v^2
  val >>= 2;                                            // (3 - k v^2) / 4
  val = (val * v) >> 31;                                // v (3 - k v^2) / 2
  return val > 0xffffffffULL ? 0xffffffffU
                             : static_cast<std::uint32_t>(val);
}

std::uint32_t codel_rec_inv_sqrt(std::uint32_t count) {
  if (count <= 1) return 0xffffffffU;  // saturated 1.0
  // Seed with 2^-ceil(bit_width/2): a power-of-two underestimate of
  // 1/sqrt(count), so Newton climbs toward the root. Convergence is
  // quadratic, but the truncating Q0.32 arithmetic can stall a few ULP
  // short or (for large counts, where v^2 carries few significant bits)
  // drift past it, so the loop runs to its first non-increasing step and
  // a correction pass lands exactly on round(2^32 / sqrt(count)).
  const int width = std::bit_width(count);
  std::uint32_t v = 1U << (32 - (width + 1) / 2);
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t next = codel_newton_step(v, count);
    if (next <= v) break;
    v = next;
  }
  // Exact rounding, still integer-only: the floor f of 2^32 / sqrt(k) is
  // the largest v with v^2 k <= 2^64, and rounding to nearest picks f + 1
  // exactly when (2f + 1)^2 k < 2^66 (the half-point test squared). The
  // wide products are bounded by 2^98, well inside 128 bits.
  using u128 = unsigned __int128;
  const u128 k = count;
  const u128 limit = u128{1} << 64;
  while (u128{v} * v * k > limit) --v;
  while ((u128{v} + 1) * (u128{v} + 1) * k <= limit) ++v;
  const u128 half = 2 * u128{v} + 1;
  if (half * half * k < u128{1} << 66) ++v;
  return v;
}

std::int64_t codel_shrunk_interval(std::int64_t interval,
                                   std::uint32_t rec_inv_sqrt) {
  // Round-half-up of interval * rec_inv_sqrt / 2^32: identical to
  // llround(interval / sqrt(k)) for positive values. The product is
  // bounded by (2^31 - 1)(2^32 - 1) < 2^63, so uint64 cannot wrap.
  const std::uint64_t product =
      static_cast<std::uint64_t>(interval) * rec_inv_sqrt;
  const auto shrunk =
      static_cast<std::int64_t>((product + (1ULL << 31)) >> 32);
  return shrunk < 1 ? 1 : shrunk;
}

void LatencyTracker::on_push(std::int64_t round, bool real) {
  in_flight_.push_back({round, real});
}

void LatencyTracker::on_pops(int count, std::int64_t round) {
  if (count < 0 || static_cast<std::size_t>(count) > in_flight_.size()) {
    throw std::logic_error(
        "latency tracker: engine reported more pops than layers in flight");
  }
  for (int i = 0; i < count; ++i) {
    const InFlight entry = in_flight_.front();
    in_flight_.pop_front();
    if (entry.real) {
      samples_.push_back(static_cast<std::uint64_t>(round - entry.round + 1));
    }
  }
}

std::int64_t LatencyTracker::head_age(std::int64_t now) const {
  return in_flight_.empty() ? 0 : now - in_flight_.front().round;
}

std::int64_t CodelControl::shrunk_interval(int k) const {
  // interval / sqrt(count), the classic CoDel drop spacing — computed
  // entirely in Q0.32 fixed point (no FPU on the SFQ controller). The
  // converged reciprocal root is memoized per count: consecutive
  // observations at the same pause count skip the Newton loop.
  const auto count = static_cast<std::uint32_t>(k);
  if (count != memo_count_) {
    memo_count_ = count;
    memo_rec_ = codel_rec_inv_sqrt(count);
  }
  return codel_shrunk_interval(interval_, memo_rec_);
}

bool CodelControl::should_pause(std::int64_t now, std::int64_t sojourn,
                                int depth) {
  if (sojourn < target_ || depth < 2) {
    // Healthy (or not a standing queue): disarm. The consecutive-pause
    // count survives until a full healthy interval elapses, below.
    if (armed_at_ >= 0 && obs_track_) {
      obs_track_->emit_at(now, obs::EventKind::kCodelDisarm,
                          static_cast<std::uint64_t>(sojourn));
    }
    armed_at_ = -1;
    return false;
  }
  if (armed_at_ < 0) {
    armed_at_ = now;
    // Re-entering the above-target state long after the last resume is a
    // fresh congestion event, not a continuation: reset the sqrt divisor.
    if (last_resume_ == kNever || now - last_resume_ > interval_) count_ = 0;
    if (obs_track_) {
      obs_track_->emit_at(now, obs::EventKind::kCodelArm,
                          static_cast<std::uint64_t>(sojourn));
    }
  }
  if (now - armed_at_ + 1 >= shrunk_interval(count_ + 1)) {
    ++count_;
    armed_at_ = -1;
    return true;
  }
  return false;
}

namespace {

/// Deficit-round-robin over new/old lane lists (FQ-CoDel's scheduler,
/// lanes for flows, engine grants for packets). Each round the policy
/// walks the new list, then the old list, granting an engine to every
/// backlogged lane whose deficit is positive; a lane at the head with no
/// deficit is topped up by one quantum and rotated to the old-list tail.
/// Lanes joining with fresh backlog enter the new list with one quantum —
/// served ahead of everyone once, then they rotate into the old list like
/// any other lane, so a burst gets priority service exactly once per
/// backlog episode.
// DRR credit is tracked in Q48.16 fixed-point engine cycles (1/65536 of a
// cycle resolution): doubles cross into the policy only at the config
// boundary (to_fixed16 below), and every per-round deficit update is pure
// int64 add/subtract/compare — the arithmetic an SFQ scheduler can
// actually implement. Grant costs and quanta are round-constant, so the
// one-time conversion rounds once and the accumulated credit is exact
// integer arithmetic thereafter.
constexpr std::int64_t kFix16One = 1 << 16;

std::int64_t to_fixed16(double cycles) {
  return static_cast<std::int64_t>(std::llround(cycles * 65536.0));
}

class FqCodelPolicy final : public SchedulerPolicy {
 public:
  explicit FqCodelPolicy(double quantum) : quantum_opt_(quantum) {}

  bool dynamic() const override { return true; }

  void assign(const ScheduleView& view,
              std::vector<int>& assignment) override {
    const auto n = static_cast<std::size_t>(view.lanes);
    if (membership_.size() != n) {
      membership_.assign(n, List::kNone);
      deficit_.assign(n, 0);
      new_.clear();
      old_.clear();
    }
    granted_.assign(n, 0);

    // One engine grant is worth the per-round cycle budget; with an
    // unconstrained budget DRR degenerates to counting grants (cost 1).
    const std::int64_t grant_cost =
        view.grant_cycles > 0 ? to_fixed16(view.grant_cycles) : kFix16One;
    const std::int64_t quantum =
        quantum_opt_ > 0 ? to_fixed16(quantum_opt_) : grant_cost;

    // Enroll lanes that just became backlogged, in lane order.
    for (int lane = 0; lane < view.lanes; ++lane) {
      const auto i = static_cast<std::size_t>(lane);
      if (membership_[i] == List::kNone && view.schedulable(lane) &&
          view.depth[i] > 0) {
        membership_[i] = List::kNew;
        deficit_[i] = quantum;
        new_.push_back(lane);
      }
    }

    int next_engine = 0;
    // A lane needs at most grant_cost/quantum top-ups before its deficit
    // goes positive, so this many sweeps provably either fills all K
    // engines or proves nothing more is grantable.
    const int max_sweeps = static_cast<int>(grant_cost / quantum) + 2;
    for (int sweep = 0; sweep < max_sweeps && next_engine < view.engines;
         ++sweep) {
      bool progressed = false;
      // Pops are bounded by the current list population: rotated lanes go
      // to the old-list tail, behind every lane already enqueued, so each
      // lane is visited at most once per sweep.
      std::size_t pops = new_.size() + old_.size();
      while (pops-- > 0 && next_engine < view.engines) {
        const bool from_new = !new_.empty();
        std::deque<int>& list = from_new ? new_ : old_;
        if (list.empty()) break;
        const int lane = list.front();
        list.pop_front();
        const auto i = static_cast<std::size_t>(lane);
        if (!view.schedulable(lane) || view.depth[i] == 0) {
          // Emptied or frozen. A new-list lane keeps one old-list turn
          // (the FQ-CoDel anti-starvation rotation); an old-list lane
          // retires and re-enrolls as new when backlog returns.
          if (from_new) {
            membership_[i] = List::kOld;
            old_.push_back(lane);
          } else {
            membership_[i] = List::kNone;
          }
          continue;
        }
        if (granted_[i]) {
          // Already served this round — one Unit array cannot consume two
          // engines' cycles in one interval. Keep its rotation slot.
          membership_[i] = List::kOld;
          old_.push_back(lane);
          continue;
        }
        if (deficit_[i] <= 0) {
          deficit_[i] += quantum;
          membership_[i] = List::kOld;
          old_.push_back(lane);
          progressed = true;
          continue;
        }
        assignment[static_cast<std::size_t>(next_engine++)] = lane;
        granted_[i] = 1;
        deficit_[i] -= grant_cost;
        membership_[i] = List::kOld;
        old_.push_back(lane);
        progressed = true;
      }
      if (!progressed) break;
    }
  }

 private:
  enum class List : std::uint8_t { kNone, kNew, kOld };

  const double quantum_opt_;          ///< <= 0: one grant's worth per turn
  std::vector<List> membership_;      ///< which list each lane sits in
  std::vector<std::int64_t> deficit_; ///< DRR credit, Q48.16 engine cycles
  std::deque<int> new_;               ///< freshly-backlogged lanes
  std::deque<int> old_;               ///< rotation of established lanes
  std::vector<std::uint8_t> granted_; ///< per-round scratch
};

}  // namespace

std::unique_ptr<SchedulerPolicy> make_fq_policy(const DecoderOptions& options) {
  constexpr double kAbsent = std::numeric_limits<double>::lowest();
  double quantum = options.get_double("quantum", kAbsent);
  if (quantum == kAbsent) {
    quantum = 0.0;  // auto: one engine grant's worth of cycles
  } else if (quantum <= 0.0) {
    throw std::invalid_argument(
        "scheduler policy spec: fq quantum must be > 0 engine cycles");
  }
  return std::make_unique<FqCodelPolicy>(quantum);
}

}  // namespace qec
