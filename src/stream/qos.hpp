// Lane quality-of-service for the streaming decode service: sojourn-time
// latency tracking, CoDel admission control, and an FQ-CoDel-style fair
// scheduler. The keep-up argument of the paper is ultimately a *latency*
// argument — a syndrome round that sits in a lane's Reg past reg_depth
// rounds is lost — yet depth watermarks (admission=pause) only react after
// the damage is queued. This layer controls on *time in queue* instead,
// the CoDel insight translated from wall-clock to logical rounds.
//
// Three pieces (see DESIGN.md section 10):
//
//  - LatencyTracker: the per-lane sojourn clock. Every pushed difference
//    layer is timestamped with the global round at enqueue; when the
//    engine pops it (OnlineStepper::spend reports pops per grant), the
//    sample pop_round - push_round + 1 is recorded — the end-to-end
//    round latency of that measurement layer, *including* any rounds the
//    lane spent frozen by admission control. Counters are exact (every
//    sample kept, no reservoir); percentiles come from the same
//    percentile_nearest_rank the cycle-latency telemetry uses.
//
//  - CodelControl: the CoDel control law in logical rounds. A lane whose
//    *minimum* sojourn over the last `interval` rounds stays at or above
//    `target` is paused; consecutive pauses shrink the interval by
//    1/sqrt(count) — exactly CoDel's drop law with "drop" replaced by
//    "freeze the lane's logical clock" (admission=codel:target=T,interval=I,
//    src/stream/admission.hpp).
//
//  - The `fq` SchedulerPolicy (registered in stream/scheduler.cpp,
//    constructed by make_fq_policy): deficit-round-robin over new/old
//    lane lists with a configurable quantum of engine cycles. A lane
//    that starts backlogging joins the *new* list with one quantum of
//    credit and is served ahead of the old list once, then rotates into
//    the old list — FQ-CoDel's new-flow priority, so a freshly-bursting
//    lane gets immediate service without letting it starve the rest.
//
// Determinism: LatencyTracker mutates only in the lane-parallel region
// (lane-local state); CodelControl decisions and fq assignments happen on
// the scheduling thread in lane/list order. Outcomes and every CSV remain
// pure functions of (trace, config minus threads).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "stream/scheduler.hpp"

namespace qec {

namespace obs {
class Track;  // obs/trace.hpp — CoDel arm/disarm transitions emit here
}

/// Q0.32 fixed-point reciprocal square root — the integer-only CoDel
/// interval math (DESIGN.md section 11). `rec_inv_sqrt` represents
/// 1/sqrt(count) as round(2^32 / sqrt(count)), saturated at 2^32 - 1 for
/// count <= 1. An SFQ admission controller has no FPU; the control law
/// must close in adders and shifters, so the interval shrink runs on
/// these helpers in hardware-representable arithmetic. This is the single
/// shared Newton step (the Linux codel.h lineage) — widened from the
/// kernel's u16 to full 32-bit precision so the shrink rounds identically
/// to llround(interval / sqrt(k)) for every interval below 2^31.

/// One Newton-Raphson iteration for 1/sqrt(k) in Q0.32:
///   v' = v/2 * (3 - k * v^2)
/// Converges monotonically upward from any underestimate of the root.
std::uint32_t codel_newton_step(std::uint32_t rec_inv_sqrt,
                                std::uint32_t count);

/// Fully converged Q0.32 reciprocal square root of `count` (iterates
/// codel_newton_step from a power-of-two underestimate to its fixed
/// point). count <= 1 returns the saturated representation of 1.0.
std::uint32_t codel_rec_inv_sqrt(std::uint32_t count);

/// interval * rec_inv_sqrt in Q0.32 with round-half-up — the shrunk CoDel
/// deadline. Matches llround(interval / sqrt(k)) for positive arguments;
/// never below one round. `interval` must be in [0, 2^31).
std::int64_t codel_shrunk_interval(std::int64_t interval,
                                   std::uint32_t rec_inv_sqrt);

/// Per-lane sojourn clock: exact end-to-end round latency of every decoded
/// difference layer. Push events timestamp layers at enqueue; pop events
/// (reported by OnlineStepper::spend) close the samples.
class LatencyTracker {
 public:
  /// A layer entered the lane's Reg in global round `round`. `real` marks
  /// trace layers; clean drain layers ride the same FIFO (pop attribution
  /// needs every enqueue) but do not produce latency samples.
  void on_push(std::int64_t round, bool real);

  /// The engine fully decoded (popped) `count` layers during global round
  /// `round`. Records one sample per real layer: round - push_round + 1,
  /// i.e. a layer decoded within its arrival interval has sojourn 1.
  /// Throws std::logic_error if more pops are reported than layers are in
  /// flight (an accounting bug, never a data condition).
  void on_pops(int count, std::int64_t round);

  /// Age of the oldest resident layer at the start of round `now`: the
  /// completed rounds it has waited so far (>= 1 once it survives its
  /// arrival round). 0 when nothing is in flight — the CoDel observable.
  std::int64_t head_age(std::int64_t now) const;

  /// Layers pushed but not yet popped.
  int in_flight() const { return static_cast<int>(in_flight_.size()); }

  /// Completed sojourn samples (rounds, >= 1), in pop order.
  const std::vector<std::uint64_t>& samples() const { return samples_; }

  /// Exact nearest-rank percentile over the samples (0 when empty).
  std::uint64_t percentile(double q) const {
    return percentile_nearest_rank(samples_, q);
  }

  /// Moves the samples out (telemetry finalization).
  std::vector<std::uint64_t> take_samples() { return std::move(samples_); }

 private:
  struct InFlight {
    std::int64_t round = 0;
    bool real = false;
  };
  std::deque<InFlight> in_flight_;
  std::vector<std::uint64_t> samples_;
};

/// CoDel's control law in logical rounds, one instance per lane. The
/// caller observes the lane once per scheduling round (pre-push) and asks
/// should_pause() while the lane is admitted, should_resume() while it is
/// paused; on_resume() must be called when the lane is re-admitted so
/// consecutive pauses are detected.
///
/// Law (the ACM-queue CoDel state machine, rounds for nanoseconds, pause
/// for drop): the lane is "above" while its head sojourn is >= target and
/// at least 2 layers are resident (one resident layer is not a standing
/// queue — the MTU guard). The first above round arms a deadline one
/// interval out; staying above through the deadline pauses the lane. The
/// k-th consecutive pause uses a deadline of interval/sqrt(k) rounds —
/// persistent congestion is squeezed harder. The consecutive count resets
/// once the lane stays healthy for longer than `interval` after a resume.
class CodelControl {
 public:
  CodelControl() = default;
  CodelControl(int target, int interval) : target_(target), interval_(interval) {}

  /// One admitted-round observation. `sojourn` is the lane's head age,
  /// `depth` its stored layers. True = pause the lane now (the decision
  /// is consumed: the armed deadline resets and the pause count bumps).
  bool should_pause(std::int64_t now, std::int64_t sojourn, int depth);

  /// One paused-round observation: re-admit once the backlog's head
  /// sojourn fell below target or the queue fully drained.
  bool should_resume(std::int64_t sojourn, int depth) const {
    return depth == 0 || sojourn < target_;
  }

  /// The lane was re-admitted in round `now` (starts the consecutive-pause
  /// window).
  void on_resume(std::int64_t now) { last_resume_ = now; }

  int target() const { return target_; }
  int interval() const { return interval_; }
  /// Consecutive pauses so far (the sqrt divisor); resets after a healthy
  /// interval.
  int consecutive_pauses() const { return count_; }
  /// Deadline the (count+1)-th consecutive pause would use, in rounds.
  std::int64_t next_deadline_rounds() const { return shrunk_interval(count_ + 1); }

  /// Observability hook (src/obs): when set, arming and disarming the
  /// CoDel deadline emit kCodelArm/kCodelDisarm events (payload = the
  /// head sojourn that flipped the state) onto the lane's track. The
  /// pause decision itself is traced by the admission controller.
  void set_obs_track(obs::Track* track) { obs_track_ = track; }

 private:
  std::int64_t shrunk_interval(int k) const;

  static constexpr std::int64_t kNever = INT64_MIN / 4;
  int target_ = 1;
  int interval_ = 1;
  int count_ = 0;                  ///< consecutive pauses (sqrt divisor)
  std::int64_t armed_at_ = -1;     ///< first consecutive above-target round
  std::int64_t last_resume_ = kNever;
  obs::Track* obs_track_ = nullptr;  ///< arm/disarm sink; null = off
  /// Memo of the last converged rec_inv_sqrt — consecutive observations
  /// reuse the same k, so the Newton loop runs once per count change
  /// (mirroring the kernel's incremental-update trick without its u16
  /// precision loss).
  mutable std::uint32_t memo_count_ = 0;
  mutable std::uint32_t memo_rec_ = 0;
};

/// Constructs the `fq` scheduler policy (deficit-round-robin over new/old
/// lane lists, FQ-CoDel style). Options: quantum (engine cycles granted
/// per DRR turn, > 0; 0 or absent = one engine grant's worth). Registered
/// under "fq" in the scheduler-policy registry.
std::unique_ptr<SchedulerPolicy> make_fq_policy(const DecoderOptions& options);

}  // namespace qec
