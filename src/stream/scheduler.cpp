#include "stream/scheduler.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"
#include "stream/qos.hpp"

namespace qec {
namespace {

[[noreturn]] void bad_spec(const std::string& what) {
  throw std::invalid_argument("scheduler policy spec: " + what);
}

/// Engine i serves lane i every round — the pre-pool behaviour, kept as the
/// K == N special case so the refactor stays byte-identical to it.
class DedicatedPolicy final : public SchedulerPolicy {
 public:
  void validate(int lanes, int engines) const override {
    if (lanes != engines) {
      bad_spec("'dedicated' needs one engine per lane (engines == lanes); "
               "use round_robin, least_loaded, or fq for a shared pool");
    }
  }

  void assign(const ScheduleView& view,
              std::vector<int>& assignment) override {
    for (int e = 0; e < view.engines; ++e) assignment[static_cast<std::size_t>(e)] = e;
  }
};

/// Fixed rotation: engine j serves lane (round*K + j + offset) mod N, a TDM
/// crossbar schedule that ignores lane state entirely (so it can be
/// batched). With K == N every lane is served every round — identical to
/// dedicated.
class RoundRobinPolicy final : public SchedulerPolicy {
 public:
  explicit RoundRobinPolicy(int offset) : offset_(offset) {}

  void assign(const ScheduleView& view,
              std::vector<int>& assignment) override {
    const auto n = static_cast<std::int64_t>(view.lanes);
    // K consecutive lanes mod N are distinct whenever K <= N.
    std::int64_t base = view.round * view.engines + offset_;
    base %= n;
    if (base < 0) base += n;
    for (int e = 0; e < view.engines; ++e) {
      assignment[static_cast<std::size_t>(e)] =
          static_cast<int>((base + e) % n);
    }
  }

 private:
  int offset_ = 0;
};

/// Backpressure-aware: live lanes ranked by Reg queue depth (deepest
/// first, ties broken by lane index), top K get an engine. Reads runtime
/// queue state, so it is dynamic — one scheduling barrier per round.
class LeastLoadedPolicy final : public SchedulerPolicy {
 public:
  bool dynamic() const override { return true; }

  void assign(const ScheduleView& view,
              std::vector<int>& assignment) override {
    ranked_.clear();
    for (int lane = 0; lane < view.lanes; ++lane) {
      if (view.schedulable(lane)) ranked_.push_back(lane);
    }
    const auto takers =
        std::min<std::size_t>(ranked_.size(), static_cast<std::size_t>(view.engines));
    std::partial_sort(ranked_.begin(), ranked_.begin() + static_cast<std::ptrdiff_t>(takers),
                      ranked_.end(), [&view](int a, int b) {
                        const int da = view.depth[static_cast<std::size_t>(a)];
                        const int db = view.depth[static_cast<std::size_t>(b)];
                        return da != db ? da > db : a < b;
                      });
    for (int e = 0; e < view.engines; ++e) {
      assignment[static_cast<std::size_t>(e)] =
          static_cast<std::size_t>(e) < takers ? ranked_[static_cast<std::size_t>(e)] : -1;
    }
  }

 private:
  std::vector<int> ranked_;  // scratch, reused across rounds
};

struct PolicyRegistry {
  std::mutex mutex;
  std::map<std::string, SchedulerPolicyFactory, std::less<>> factories;
};

std::map<std::string, SchedulerPolicyFactory, std::less<>> builtin_policies() {
  std::map<std::string, SchedulerPolicyFactory, std::less<>> factories;
  factories["dedicated"] = [](const DecoderOptions&) {
    return std::make_unique<DedicatedPolicy>();
  };
  factories["round_robin"] = [](const DecoderOptions& options) {
    return std::make_unique<RoundRobinPolicy>(options.get_int("offset", 0));
  };
  factories["least_loaded"] = [](const DecoderOptions&) {
    return std::make_unique<LeastLoadedPolicy>();
  };
  factories["fq"] = [](const DecoderOptions& options) {
    return make_fq_policy(options);  // stream/qos.cpp (DRR over new/old lists)
  };
  return factories;
}

PolicyRegistry& policy_registry() {
  static PolicyRegistry instance{{}, builtin_policies()};
  return instance;
}

}  // namespace

void SchedulerPolicy::validate(int lanes, int engines) const {
  if (engines < 1 || engines > lanes) {
    bad_spec("engines must be in [1, lanes]");
  }
}

void register_scheduler_policy(const std::string& name,
                               SchedulerPolicyFactory factory) {
  PolicyRegistry& r = policy_registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.factories[name] = std::move(factory);
}

std::unique_ptr<SchedulerPolicy> make_scheduler_policy(std::string_view spec) {
  const auto colon = spec.find(':');
  const std::string_view name = spec.substr(0, colon);
  SchedulerPolicyFactory factory;
  {
    PolicyRegistry& r = policy_registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.factories.find(name);
    if (it == r.factories.end()) {
      bad_spec("unknown policy '" + std::string(name) + "'");
    }
    factory = it->second;
  }
  const DecoderOptions options = DecoderOptions::parse(
      colon == std::string_view::npos ? std::string_view{}
                                      : spec.substr(colon + 1));
  auto policy = factory(options);
  if (!policy) bad_spec("factory for '" + std::string(name) + "' failed");
  if (const auto leftover = options.unconsumed(); !leftover.empty()) {
    bad_spec("policy '" + std::string(name) + "' does not understand " +
             DecoderOptions::join_keys(leftover));
  }
  return policy;
}

std::vector<std::string> registered_scheduler_policies() {
  PolicyRegistry& r = policy_registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::string> names;
  for (const auto& [name, factory] : r.factories) names.push_back(name);
  return names;
}

void trace_round_schedule(obs::Tracer& tracer, std::int64_t round,
                          const std::vector<int>& served, bool drain) {
  std::uint64_t serving = 0;
  for (const int lane : served) {
    if (lane >= 0) ++serving;
  }
  tracer.control().emit_at(round, obs::EventKind::kDispatch, serving,
                           drain ? 1 : 0);
  for (std::size_t e = 0; e < served.size(); ++e) {
    if (served[e] < 0) continue;
    tracer.engine(static_cast<int>(e))
        .emit_at(round, obs::EventKind::kGrant,
                 static_cast<std::uint64_t>(served[e]));
  }
}

}  // namespace qec
