// Lane-to-engine scheduling for the shared decoder-engine pool: K decoder
// engines (K <= N) serve N logical-qubit lanes, and each round a
// SchedulerPolicy decides which lanes receive an engine's worth of decode
// cycles. This converts the streaming service's hard-coded one-engine-per-
// lane assumption into the "how much decode hardware per chip" question the
// ROADMAP poses (src/sfq/fabric.hpp asks it in the power domain).
//
// Policies are constructed from specs parsed exactly like decoder specs
// ("name" or "name:key=value,..."), through the same DecoderOptions
// machinery — unknown names and unknown options throw before any lane
// exists. Built-ins:
//   dedicated    engine i serves lane i every round; requires K == N and
//                reproduces the pre-pool service byte for byte.
//   round_robin  fixed rotation: engine j serves lane (round*K + j + offset)
//                mod N, regardless of lane state (a TDM crossbar schedule).
//                Option: offset (int, default 0).
//   least_loaded lanes ranked by Reg queue depth (deepest first, ties by
//                lane index); the K top-ranked live lanes are served. The
//                name is the engine's view — a free engine grabs the most
//                backed-up lane, i.e. work goes where load is highest.
//   fq           FQ-CoDel-style fair scheduler: deficit-round-robin over
//                new/old lane lists with a configurable quantum of engine
//                cycles per turn (option: quantum, default one grant's
//                worth). Freshly-bursting lanes are served once with
//                priority, then rotate into the old list. Implemented in
//                stream/qos.cpp (make_fq_policy).
//
// Determinism contract: assign() is called once per round on the scheduling
// thread, in round order, and must be a pure function of (view, options,
// rounds seen so far). dynamic() policies read runtime lane state and force
// a scheduling barrier every round; static policies are pure functions of
// the round index, so the service may batch them rounds_per_dispatch rounds
// at a time (see DESIGN.md section 8).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "decoder/registry.hpp"

namespace qec {

namespace obs {
class Tracer;  // obs/trace.hpp — per-round dispatch/grant events emit here
}

/// What a policy sees when assigning engines for one round: per-lane Reg
/// queue depths and liveness, sampled before the round's layer lands.
struct ScheduleView {
  std::int64_t round = 0;  ///< global round index (streaming + drain)
  int lanes = 0;
  int engines = 0;
  /// Stored Reg layers per lane at the start of the round (size lanes).
  const int* depth = nullptr;
  /// Lane overflowed or drained — serving it wastes the engine (size lanes).
  const std::uint8_t* finished = nullptr;
  /// Lane paused by admission control (admission=pause/codel, size
  /// lanes) — non-schedulable: its logical clock is frozen, so
  /// state-aware policies must not spend an engine on it. The admission
  /// controller itself grants engines the policy leaves idle to paused
  /// lanes so their backlog drains. Null when admission control is off
  /// (admission=overflow, the PR 3 behaviour).
  const std::uint8_t* paused = nullptr;

  /// Decode cycles one engine grant delivers this round
  /// (StreamConfig::cycles_per_round; <= 0 = unconstrained). Quantum-based
  /// policies (fq) charge this against a lane's DRR deficit.
  double grant_cycles = 0.0;

  /// True when the lane can usefully be scheduled this round: it is
  /// neither finished nor paused by admission control.
  bool schedulable(int lane) const {
    const auto i = static_cast<std::size_t>(lane);
    return !finished[i] && !(paused && paused[i]);
  }
};

class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  /// True when assignments depend on runtime lane state (queue depths),
  /// forcing a scheduling barrier every round. Static policies — pure
  /// functions of the round index — may be batched.
  virtual bool dynamic() const { return false; }

  /// Called once before the run; throw std::invalid_argument for pool
  /// shapes the policy cannot serve (dedicated requires engines == lanes).
  virtual void validate(int lanes, int engines) const;

  /// Fills assignment[e] (size view.engines) with the lane engine e serves
  /// this round, or -1 to leave it idle. A lane may appear at most once —
  /// one Unit array cannot consume two engines' cycles in one interval.
  virtual void assign(const ScheduleView& view,
                      std::vector<int>& assignment) = 0;
};

using SchedulerPolicyFactory =
    std::function<std::unique_ptr<SchedulerPolicy>(const DecoderOptions&)>;

/// Registers `factory` under `name` (overwrites, so tests and downstream
/// code can shadow built-ins). Thread-safe, mirroring register_decoder.
void register_scheduler_policy(const std::string& name,
                               SchedulerPolicyFactory factory);

/// Constructs a policy from a spec ("name" or "name:k=v,..."). Throws
/// std::invalid_argument for unknown names, malformed option lists, or
/// options the named policy does not understand.
std::unique_ptr<SchedulerPolicy> make_scheduler_policy(std::string_view spec);

/// Sorted names of all registered policies (built-ins plus extensions).
std::vector<std::string> registered_scheduler_policies();

/// Observability hook (src/obs): one call per executed scheduling round,
/// made during the service's deterministic reduction (never from the
/// parallel region). `served[e]` is the lane engine e actually served this
/// round, or -1 — the *consumed* grants, which can differ from the policy's
/// raw assignment when a granted lane finished mid-dispatch. Emits one
/// kDispatch on the control track (payload = engines serving, arg = drain
/// flag) plus one kGrant per serving engine on that engine's track
/// (payload = lane). Rounds where no lane is live emit nothing, matching
/// the timeline/engine-stat accounting.
void trace_round_schedule(obs::Tracer& tracer, std::int64_t round,
                          const std::vector<int>& served, bool drain);

}  // namespace qec
