#include "stream/service.hpp"

#include <bit>
#include <stdexcept>

#include "decoder/registry.hpp"
#include "qecool/online_runner.hpp"
#include "sim/executor.hpp"
#include "surface_code/planar_lattice.hpp"

namespace qec {
namespace {

/// Lane k's noise stream: the seed mixed with the lane index and every
/// structural parameter through SplitMix64 avalanches (the experiment_rng
/// recipe), so streams are independent per lane and stable under changes
/// to lane count, thread count, or scheduling.
Xoshiro256ss lane_rng(const StreamConfig& config, int lane, int rounds) {
  std::uint64_t state = config.seed;
  const auto feed = [&state](std::uint64_t value) {
    state ^= value;
    state = splitmix64(state);
  };
  feed(static_cast<std::uint64_t>(lane));
  feed(static_cast<std::uint64_t>(config.distance));
  feed(static_cast<std::uint64_t>(rounds));
  feed(std::bit_cast<std::uint64_t>(config.p));
  return Xoshiro256ss(state);
}

struct Lane {
  Lane(const PlanarLattice& lattice, const OnlineConfig& online, int id,
       int depth_bins)
      : stepper(lattice, online) {
    telemetry.lane = id;
    telemetry.depth_hist.assign(static_cast<std::size_t>(depth_bins), 0);
  }

  void record_depth() {
    const auto depth = static_cast<std::size_t>(stepper.engine().stored_layers());
    if (depth < telemetry.depth_hist.size()) ++telemetry.depth_hist[depth];
  }

  bool finished() const { return stepper.overflowed() || stepper.drained(); }

  OnlineStepper stepper;
  LaneTelemetry telemetry;
};

}  // namespace

SyndromeTrace record_trace(const StreamConfig& config) {
  if (config.lanes < 1) throw std::invalid_argument("stream: lanes must be >= 1");
  const int noisy_rounds = config.rounds > 0 ? config.rounds : config.distance;
  const PlanarLattice lattice(config.distance);

  TraceHeader header;
  header.distance = static_cast<std::uint32_t>(config.distance);
  header.lanes = static_cast<std::uint32_t>(config.lanes);
  // Stored rounds include the final perfect round sample_history appends.
  header.rounds = static_cast<std::uint32_t>(noisy_rounds + 1);
  header.checks = static_cast<std::uint32_t>(lattice.num_checks());
  header.data_qubits = static_cast<std::uint32_t>(lattice.num_data());
  header.seed = config.seed;
  header.p_data = config.p;
  header.p_meas = config.p;

  SyndromeTrace trace(header);
  parallel_for(config.lanes, config.threads, [&](int lane) {
    Xoshiro256ss rng = lane_rng(config, lane, noisy_rounds);
    const auto history =
        sample_history(lattice, {config.p, config.p, noisy_rounds}, rng);
    trace.set_lane(lane, history);  // disjoint slots: no cross-lane writes
  });
  return trace;
}

StreamOutcome run_stream(const SyndromeTrace& trace,
                         const StreamConfig& config) {
  const int n = trace.lanes();
  if (n < 1) throw std::invalid_argument("stream: trace has no lanes");
  // Resolve the engine spec before any lane (or thread) exists so a typo
  // fails loudly up front.
  const QecoolConfig engine_config = online_engine_config(config.engine);
  OnlineConfig online;
  online.engine = engine_config;
  online.cycles_per_round = config.cycles_per_round;
  online.max_drain_rounds = config.max_drain_rounds;

  const PlanarLattice lattice(static_cast<int>(trace.header().distance));
  std::vector<Lane> lanes;
  lanes.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    lanes.emplace_back(lattice, online, i, engine_config.reg_depth + 1);
  }

  // Phase 1 — streaming: round t reaches every live lane before any lane
  // sees round t+1, mirroring syndrome arrival in hardware. Lanes are
  // fully independent, so the parallel_for writes only lane-local state.
  for (int t = 0; t < trace.rounds(); ++t) {
    parallel_for(n, config.threads, [&](int i) {
      Lane& lane = lanes[static_cast<std::size_t>(i)];
      if (lane.stepper.overflowed()) return;
      if (lane.stepper.step(trace.layer(i, t))) {
        ++lane.telemetry.rounds_streamed;
      }
      lane.record_depth();
    });
  }

  // Phase 2 — drain: clean layers until every lane overflowed or drained,
  // bounded by max_drain_rounds (QEC never stops in hardware).
  for (int extra = 0; extra < config.max_drain_rounds; ++extra) {
    bool any_active = false;
    for (const auto& lane : lanes) any_active |= !lane.finished();
    if (!any_active) break;
    parallel_for(n, config.threads, [&](int i) {
      Lane& lane = lanes[static_cast<std::size_t>(i)];
      if (lane.finished()) return;
      if (lane.stepper.step_clean()) ++lane.telemetry.drain_rounds;
      lane.record_depth();
    });
  }

  // Finalize each lane (the logical scoring decodes nothing, but keep it
  // in the parallel region: it is per-lane work too).
  parallel_for(n, config.threads, [&](int i) {
    Lane& lane = lanes[static_cast<std::size_t>(i)];
    const OnlineResult result = lane.stepper.result();
    LaneTelemetry& t = lane.telemetry;
    t.overflow = result.overflow;
    t.drained = result.drained;
    t.popped_layers = static_cast<int>(result.layer_cycles.size());
    t.total_cycles = result.total_cycles;
    t.layer_cycles = result.layer_cycles;
    t.matches = result.matches;
    if (!result.failed_operationally()) {
      SyndromeHistory truth;
      truth.final_error = trace.final_error(i);
      DecodeResult decode;
      decode.correction = result.correction;
      t.logical_failure = logical_failure(lattice, truth, decode);
    }
  });

  StreamOutcome outcome;
  outcome.lanes = n;
  outcome.telemetry.distance = static_cast<int>(trace.header().distance);
  outcome.telemetry.p = trace.header().p_data;
  outcome.telemetry.cycles_per_round = config.cycles_per_round;
  outcome.telemetry.seed = trace.header().seed;
  outcome.telemetry.engine = config.engine;
  outcome.telemetry.lanes.reserve(static_cast<std::size_t>(n));
  for (auto& lane : lanes) {
    outcome.telemetry.lanes.push_back(std::move(lane.telemetry));
  }
  outcome.overflow_lanes = outcome.telemetry.overflow_lanes();
  outcome.drained_lanes = outcome.telemetry.drained_lanes();
  outcome.failed_lanes = outcome.telemetry.failed_lanes();
  for (const auto& lane : outcome.telemetry.lanes) {
    outcome.logical_failures += lane.logical_failure ? 1 : 0;
  }
  return outcome;
}

StreamOutcome run_stream(const StreamConfig& config) {
  return run_stream(record_trace(config), config);
}

}  // namespace qec
