#include "stream/service.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include <cstdio>

#include "decoder/registry.hpp"
#include "obs/postmortem.hpp"
#include "qecool/decode_cache.hpp"
#include "qecool/online_runner.hpp"
#include "sim/executor.hpp"
#include "stream/admission.hpp"
#include "stream/qos.hpp"
#include "stream/scheduler.hpp"
#include "surface_code/planar_lattice.hpp"

namespace qec {
namespace {

/// Lane k's noise stream: the seed mixed with the lane index and every
/// structural parameter through SplitMix64 avalanches (the experiment_rng
/// recipe), so streams are independent per lane and stable under changes
/// to lane count, thread count, or scheduling.
Xoshiro256ss lane_rng(const StreamConfig& config, int lane, int rounds) {
  std::uint64_t state = config.seed;
  const auto feed = [&state](std::uint64_t value) {
    state ^= value;
    state = splitmix64(state);
  };
  feed(static_cast<std::uint64_t>(lane));
  feed(static_cast<std::uint64_t>(config.distance));
  feed(static_cast<std::uint64_t>(rounds));
  feed(std::bit_cast<std::uint64_t>(config.p));
  return Xoshiro256ss(state);
}

struct Lane {
  Lane(const PlanarLattice& lattice, const OnlineConfig& online, int id,
       int depth_bins)
      : stepper(lattice, online) {
    telemetry.lane = id;
    telemetry.depth_hist.assign(static_cast<std::size_t>(depth_bins), 0);
  }

  void record_depth() {
    const auto depth = static_cast<std::size_t>(stepper.engine().stored_layers());
    if (depth < telemetry.depth_hist.size()) ++telemetry.depth_hist[depth];
  }

  bool finished() const { return stepper.overflowed() || stepper.drained(); }

  /// Finished test under admission control: a paused lane is never
  /// finished (its clock is frozen mid-stream), and a lane with trace
  /// layers still to consume is not done just because its queue drained.
  bool finished_admission(int trace_rounds) const {
    if (stepper.overflowed()) return true;
    return !stepper.paused() && cursor >= trace_rounds && stepper.drained();
  }

  OnlineStepper stepper;
  LaneTelemetry telemetry;

  /// Sojourn clock: timestamps every pushed layer with the global round
  /// and closes a latency sample on every pop spend() reports. Mutated
  /// only inside the lane-parallel region (lane-local); read on the
  /// scheduling thread between dispatches (head_age for CoDel).
  LatencyTracker qos;

  /// CoDel control law state (admission=codel only); driven on the
  /// scheduling thread in lane order.
  CodelControl codel;

  /// Next trace layer this lane will consume (admission pause mode: a
  /// paused lane's cursor freezes while the global round marches on).
  int cursor = 0;

  /// Observability (src/obs): the lane's event track, null when tracing
  /// is off — every hook below guards on it, so a disabled tracer costs
  /// one branch. Written only inside the lane-parallel region (plus the
  /// scheduling thread between joins), so the ring stays single-writer.
  obs::Track* track = nullptr;

  /// Sojourn samples already fed to the metrics histogram. The parallel
  /// region records the cumulative sample count per (lane, round) slot;
  /// the reduction consumes the delta in fixed round order, so the
  /// windowed histogram is invariant under threads and batching.
  std::size_t obs_consumed = 0;

  /// Decode-cache counters already fed to the metrics registry (same
  /// cumulative-snapshot / consume-delta pattern as obs_consumed).
  DecodeCacheStats cache_consumed;
};

/// How the decode cache is sharded over the lane fleet: lanes
/// [s * block, (s + 1) * block) share shard s and execute sequentially on
/// whichever worker claims the shard, so cache contents are a pure
/// function of (trace, config) — independent of the worker thread count.
struct CacheLayout {
  bool enabled = false;
  int shards = 0;
  int block = 0;  ///< lanes per shard (last shard may be short)
};

/// Orchestrates the shared engine pool over one run: per dispatch it asks
/// the policy for up to `batch` rounds of engine->lane assignments (on the
/// calling thread, in round order), executes them lane-parallel with all
/// writes going to lane-local slots, then reduces engine accounting and
/// the round timeline on the calling thread — so every outcome and CSV is
/// independent of the worker-thread count.
class PoolScheduler {
 public:
  PoolScheduler(std::vector<Lane>& lanes, SchedulerPolicy& policy, int engines,
                const StreamConfig& config, const AdmissionConfig& admission,
                const CacheLayout& cache, StreamTelemetry& telemetry,
                obs::Tracer* tracer, obs::MetricsRegistry* metrics,
                obs::Profiler* profiler)
      : lanes_(lanes),
        policy_(policy),
        config_(config),
        admission_(admission),
        cache_(cache),
        telemetry_(telemetry),
        tracer_(tracer),
        metrics_(metrics),
        profiler_(profiler),
        engines_(engines),
        // A shared cache shard makes per-lane hit counters sensitive to
        // execution order, so the cache clamps the batch to 1 like a
        // dynamic policy does — outcomes never depended on the batch;
        // this keeps the cache CSV independent of it too.
        batch_(policy.dynamic() || cache.enabled
                   ? 1
                   : std::max(1, config.rounds_per_dispatch)) {
    telemetry_.engine_stats.resize(static_cast<std::size_t>(engines_));
    for (int e = 0; e < engines_; ++e) {
      telemetry_.engine_stats[static_cast<std::size_t>(e)].engine = e;
    }
    depth_.resize(lanes_.size());
    finished_.resize(lanes_.size());
    paused_.resize(lanes_.size());
    assignment_.assign(static_cast<std::size_t>(engines_), -1);
    if (metrics_) {
      // Registration order is CSV column order — keep it stable, goldens
      // pin it.
      m_pushes_ = metrics_->add_counter("pushes");
      m_drain_pushes_ = metrics_->add_counter("drain_pushes");
      m_pops_ = metrics_->add_counter("pops");
      m_serves_ = metrics_->add_counter("serves");
      m_starves_ = metrics_->add_counter("starves");
      m_overflows_ = metrics_->add_counter("overflows");
      m_pauses_ = metrics_->add_counter("pauses");
      m_resumes_ = metrics_->add_counter("resumes");
      m_live_ = metrics_->add_gauge("live_lanes");
      m_paused_ = metrics_->add_gauge("paused_lanes");
      m_overflowed_ = metrics_->add_gauge("overflowed_lanes");
      m_depth_ = metrics_->add_histogram("depth");
      m_sojourn_ = metrics_->add_histogram("sojourn");
      // Decode-cache counters append after the PR 7 instruments so the
      // established column order is untouched. They stay registered (all
      // zero except the fast-path counters) when the cache is off, so the
      // metrics CSV header does not depend on the cache spec.
      m_cache_hits_ = metrics_->add_counter("cache_hits");
      m_cache_misses_ = metrics_->add_counter("cache_misses");
      m_cache_installs_ = metrics_->add_counter("cache_installs");
      m_cache_evictions_ = metrics_->add_counter("cache_evictions");
      m_cache_zero_rounds_ = metrics_->add_counter("cache_zero_rounds");
      m_cache_zero_pushes_ = metrics_->add_counter("cache_zero_pushes");
      m_cache_bypasses_ = metrics_->add_counter("cache_bypasses");
      // Wall-clock profile feed: registered only when profiling is on, so
      // the default metrics CSV schema is untouched — and these columns
      // are the ONE part of the CSV exempt from the byte-identical
      // contract (they measure real time). Values are nanoseconds accrued
      // per window; trace_export happens after the run, so its column
      // stays 0 here and lives in the profile CSV instead.
      if (profiler_) {
        m_prof_[0] = metrics_->add_counter("prof_dispatch_ns");
        m_prof_[1] = metrics_->add_counter("prof_lane_ns");
        m_prof_[2] = metrics_->add_counter("prof_reduce_ns");
        m_prof_[3] = metrics_->add_counter("prof_cache_ns");
        m_prof_[4] = metrics_->add_counter("prof_telemetry_ns");
        m_prof_[5] = metrics_->add_counter("prof_export_ns");
      }
    }
  }

  int batch() const { return batch_; }

  /// Runs `count` rounds starting at global round `start`. Streaming
  /// rounds (drain == false) push trace layer (start + r) into every lane
  /// that has not overflowed; drain rounds push clean layers into every
  /// unfinished lane.
  void dispatch(std::int64_t start, int count, bool drain,
                const SyndromeTrace* trace) {
    const int n = static_cast<int>(lanes_.size());
    const auto slots = static_cast<std::size_t>(n) * static_cast<std::size_t>(count);
    grant_.assign(slots, -1);
    cycles_.assign(slots, 0);
    flags_.assign(slots, 0);
    depth_scratch_.assign(slots, 0);
    if (metrics_) {
      pops_.assign(slots, 0);
      samples_after_.assign(slots, 0);
      cache_after_.assign(slots, DecodeCacheStats{});
    }

    {
      // Profiler stage scopes (here and below) cost one branch each when
      // profiling is off and never touch any outcome — timing is observed,
      // not consulted.
      obs::ScopedStage prof(profiler_, obs::Stage::kDispatchAssign);

      // Pre-round lane state for the policy. Fresh only when count == 1,
      // which the constructor forces for dynamic policies; static policies
      // never read it.
      for (int i = 0; i < n; ++i) {
        const Lane& lane = lanes_[static_cast<std::size_t>(i)];
        depth_[static_cast<std::size_t>(i)] = lane.stepper.engine().stored_layers();
        finished_[static_cast<std::size_t>(i)] =
            (drain ? lane.finished() : lane.stepper.overflowed()) ? 1 : 0;
      }

      // Assignments for the whole batch, in round order on this thread.
      assignments_.assign(static_cast<std::size_t>(count) *
                              static_cast<std::size_t>(engines_),
                          -1);
      ScheduleView view;
      view.lanes = n;
      view.engines = engines_;
      view.depth = depth_.data();
      view.finished = finished_.data();
      view.grant_cycles = config_.cycles_per_round;
      for (int r = 0; r < count; ++r) {
        view.round = start + r;
        // Reset so a policy that leaves an engine's entry untouched idles it
        // instead of inheriting the previous round's grant.
        std::fill(assignment_.begin(), assignment_.end(), -1);
        policy_.assign(view, assignment_);
        for (int e = 0; e < engines_; ++e) {
          const int lane = assignment_[static_cast<std::size_t>(e)];
          assignments_[static_cast<std::size_t>(r) * engines_ +
                       static_cast<std::size_t>(e)] = lane;
          if (lane < 0) continue;
          if (lane >= n) {
            throw std::logic_error("stream: policy assigned engine " +
                                   std::to_string(e) + " to nonexistent lane " +
                                   std::to_string(lane));
          }
          auto& slot = grant_[static_cast<std::size_t>(lane) * count +
                              static_cast<std::size_t>(r)];
          if (slot >= 0) {
            throw std::logic_error(
                "stream: policy assigned two engines to lane " +
                std::to_string(lane) + " in one round");
          }
          slot = e;
        }
      }
    }

    // Lane-parallel execution; every write below lands in lane-local
    // state or the lane's own scratch slots. (Shard-sequential when the
    // decode cache is on: see for_lanes.)
    for_lanes(n, [&](int i) {
      obs::ScopedStage prof(profiler_, obs::Stage::kLaneExecute);
      Lane& lane = lanes_[static_cast<std::size_t>(i)];
      for (int r = 0; r < count; ++r) {
        const std::size_t idx = static_cast<std::size_t>(i) * count +
                                static_cast<std::size_t>(r);
        if (drain ? lane.finished() : lane.stepper.overflowed()) continue;
        if (lane.track) lane.track->set_round(start + r);
        // Backlog before this round's layer lands: the starvation test.
        const bool backlog = lane.stepper.engine().stored_layers() > 0;
        const bool pushed =
            drain ? lane.stepper.push_clean()
                  : lane.stepper.push(trace->layer(i, static_cast<int>(start) + r));
        std::uint8_t flags = kActive;
        if (pushed) {
          flags |= kPushed;
          if (lane.track) {
            lane.track->emit(
                obs::EventKind::kPush,
                static_cast<std::uint64_t>(lane.stepper.engine().stored_layers()),
                drain ? 0 : 1);
          }
          lane.qos.on_push(start + r, /*real=*/!drain);
          if (drain) {
            ++lane.telemetry.drain_rounds;
          } else {
            ++lane.telemetry.rounds_streamed;
          }
          if (grant_[idx] >= 0) {
            cycles_[idx] = lane.stepper.spend(config_.cycles_per_round);
            lane.qos.on_pops(lane.stepper.last_spend_pops(), start + r);
            flags |= kServed;
            ++lane.telemetry.served_rounds;
            if (lane.track) {
              lane.track->emit(obs::EventKind::kSpend, cycles_[idx]);
            }
            if (metrics_) {
              pops_[idx] = lane.stepper.last_spend_pops();
            }
          } else if (backlog) {
            flags |= kStarved;
            ++lane.telemetry.starved_rounds;
            if (lane.track) {
              lane.track->emit(obs::EventKind::kStarve,
                               static_cast<std::uint64_t>(
                                   lane.stepper.engine().stored_layers()));
            }
          }
        } else if (lane.track) {
          lane.track->emit(obs::EventKind::kOverflow,
                           static_cast<std::uint64_t>(
                               lane.stepper.engine().stored_layers()));
        }
        lane.record_depth();
        depth_scratch_[idx] = lane.stepper.engine().stored_layers();
        if (metrics_) {
          samples_after_[idx] = lane.qos.samples().size();
          cache_after_[idx] = lane.stepper.engine().cache_stats();
        }
        flags_[idx] = flags;
      }
    });

    // Reductions in fixed (round, lane/engine) order on this thread.
    obs::ScopedStage prof_reduce(profiler_, obs::Stage::kReduction);
    for (int r = 0; r < count; ++r) {
      RoundSample sample;
      sample.round = start + r;
      sample.drain = drain;
      for (int i = 0; i < n; ++i) {
        const std::size_t idx = static_cast<std::size_t>(i) * count +
                                static_cast<std::size_t>(r);
        const std::uint8_t flags = flags_[idx];
        if (!(flags & kActive)) continue;
        ++sample.live_lanes;
        if (flags & kServed) ++sample.served_lanes;
        if (flags & kStarved) ++sample.starved_lanes;
        if (!(flags & kPushed)) ++overflowed_so_far_;
        sample.depth_sum += static_cast<std::uint64_t>(depth_scratch_[idx]);
        sample.depth_max = std::max(sample.depth_max, depth_scratch_[idx]);
        if (metrics_) {
          if (flags & kPushed) {
            metrics_->count(drain ? m_drain_pushes_ : m_pushes_);
          } else {
            metrics_->count(m_overflows_);
          }
          if (flags & kServed) {
            metrics_->count(m_serves_);
            metrics_->count(m_pops_, static_cast<std::uint64_t>(pops_[idx]));
          }
          if (flags & kStarved) metrics_->count(m_starves_);
          metrics_->observe(m_depth_,
                            static_cast<std::uint64_t>(depth_scratch_[idx]));
          consume_sojourn(lanes_[static_cast<std::size_t>(i)],
                          samples_after_[idx]);
          consume_cache(lanes_[static_cast<std::size_t>(i)],
                        cache_after_[idx]);
        }
      }
      sample.overflowed_lanes = overflowed_so_far_;
      // Rounds where every lane has already finished are scheduling
      // artifacts (a batch outlives the fleet, or the trace outlives an
      // all-overflow run): account nothing, so engine stats — like the
      // timeline — cover exactly the rounds with live lanes and stay
      // invariant under rounds_per_dispatch.
      if (sample.live_lanes == 0) continue;
      if (tracer_) served_.assign(static_cast<std::size_t>(engines_), -1);
      for (int e = 0; e < engines_; ++e) {
        EngineTelemetry& stats = telemetry_.engine_stats[static_cast<std::size_t>(e)];
        const int lane = assignments_[static_cast<std::size_t>(r) * engines_ +
                                      static_cast<std::size_t>(e)];
        const std::size_t idx = lane < 0
                                    ? 0
                                    : static_cast<std::size_t>(lane) * count +
                                          static_cast<std::size_t>(r);
        if (lane >= 0 && (flags_[idx] & kServed)) {
          ++stats.busy_rounds;
          stats.cycles += cycles_[idx];
          sample.cycles += cycles_[idx];
          if (tracer_) served_[static_cast<std::size_t>(e)] = lane;
        } else {
          ++stats.idle_rounds;
        }
      }
      telemetry_.timeline.push_back(sample);
      if (tracer_) trace_round_schedule(*tracer_, start + r, served_, drain);
      if (metrics_) {
        obs::ScopedStage prof_close(profiler_, obs::Stage::kTelemetryClose);
        metrics_->set_gauge(m_live_, sample.live_lanes);
        metrics_->set_gauge(m_paused_, sample.paused_lanes);
        metrics_->set_gauge(m_overflowed_, overflowed_so_far_);
        feed_profile();
        metrics_->tick(start + r);
      }
    }
  }

  /// One admission-controlled round (admission=pause). Differs from
  /// dispatch() in three ways: every lane consumes the trace through its
  /// own cursor (a paused lane's logical clock freezes while the global
  /// round marches on), the admission controller pauses and re-admits
  /// lanes around the watermarks before the policy runs, and engines the
  /// policy leaves idle (or points at finished lanes) are granted to
  /// paused lanes, deepest queue first, so a paused backlog always
  /// eventually drains. All decisions are made on the calling thread in
  /// lane order — outcomes stay a pure function of (trace, config).
  /// Returns false once every lane has finished.
  bool dispatch_admission(std::int64_t round, const SyndromeTrace& trace) {
    const int n = static_cast<int>(lanes_.size());
    const int trace_rounds = trace.rounds();
    grant_.assign(static_cast<std::size_t>(n), -1);
    cycles_.assign(static_cast<std::size_t>(n), 0);
    flags_.assign(static_cast<std::size_t>(n), 0);
    depth_scratch_.assign(static_cast<std::size_t>(n), 0);
    if (metrics_) {
      pops_.assign(static_cast<std::size_t>(n), 0);
      samples_after_.assign(static_cast<std::size_t>(n), 0);
      cache_after_.assign(static_cast<std::size_t>(n), DecodeCacheStats{});
    }

    std::unique_ptr<obs::ScopedStage> prof_assign;
    if (profiler_) {
      prof_assign = std::make_unique<obs::ScopedStage>(
          profiler_, obs::Stage::kDispatchAssign);
    }

    // Pre-round state and admission transitions, in lane order. A paused
    // lane re-admits once its backlog reaches the low-water mark; an
    // admitted lane at or above the high-water mark is paused instead of
    // being allowed to push toward overflow.
    bool any_unfinished = false;
    for (int i = 0; i < n; ++i) {
      Lane& lane = lanes_[static_cast<std::size_t>(i)];
      const int depth = lane.stepper.engine().stored_layers();
      depth_[static_cast<std::size_t>(i)] = depth;
      bool finished = lane.finished_admission(trace_rounds);
      if (!finished) {
        if (lane.stepper.paused()) {
          // Codel re-admits when the standing latency dissolved (head
          // sojourn back under target) or the backlog drained to the
          // low-water mark — whichever comes first; pause mode uses the
          // depth mark alone.
          const bool readmit =
              depth <= admission_.low_water ||
              (admission_.codel() &&
               lane.codel.should_resume(lane.qos.head_age(round), depth));
          if (readmit) {
            lane.stepper.resume();
            ++lane.telemetry.resumes;
            if (admission_.codel()) lane.codel.on_resume(round);
            if (lane.track) trace_admission_resume(*lane.track, round, depth);
            if (metrics_) metrics_->count(m_resumes_);
            // A fully drained lane with no trace left finishes on resume.
            finished = lane.finished_admission(trace_rounds);
          }
        } else {
          bool freeze;
          bool by_codel = false;
          if (admission_.codel()) {
            // The CoDel law observes every admitted round (the call arms
            // and disarms its deadline); the depth high-water mark stays
            // behind it as the overflow backstop, so codel never loses a
            // lane that pause mode would have kept.
            by_codel = lane.codel.should_pause(round, lane.qos.head_age(round),
                                               depth);
            freeze = by_codel || depth >= admission_.high_water;
          } else {
            freeze = depth >= admission_.high_water;
          }
          if (freeze) {
            // checkpoint() freezes the clock; the returned patch snapshot
            // is the host-offload view, which the service itself does not
            // need — tests exercise it directly.
            (void)lane.stepper.checkpoint();
            ++lane.telemetry.pauses;
            if (lane.track) {
              trace_admission_pause(*lane.track, round, by_codel, depth);
            }
            if (metrics_) metrics_->count(m_pauses_);
          }
        }
      }
      finished_[static_cast<std::size_t>(i)] = finished ? 1 : 0;
      paused_[static_cast<std::size_t>(i)] =
          (!finished && lane.stepper.paused()) ? 1 : 0;
      any_unfinished |= !finished;
    }
    if (!any_unfinished) return false;

    // Policy assignment (paused lanes visible as non-schedulable).
    ScheduleView view;
    view.round = round;
    view.lanes = n;
    view.engines = engines_;
    view.depth = depth_.data();
    view.finished = finished_.data();
    view.paused = paused_.data();
    view.grant_cycles = config_.cycles_per_round;
    std::fill(assignment_.begin(), assignment_.end(), -1);
    policy_.assign(view, assignment_);
    assignments_.assign(static_cast<std::size_t>(engines_), -1);
    for (int e = 0; e < engines_; ++e) {
      const int lane = assignment_[static_cast<std::size_t>(e)];
      assignments_[static_cast<std::size_t>(e)] = lane;
      if (lane < 0) continue;
      if (lane >= n) {
        throw std::logic_error("stream: policy assigned engine " +
                               std::to_string(e) + " to nonexistent lane " +
                               std::to_string(lane));
      }
      auto& slot = grant_[static_cast<std::size_t>(lane)];
      if (slot >= 0) {
        throw std::logic_error("stream: policy assigned two engines to lane " +
                               std::to_string(lane) + " in one round");
      }
      slot = e;
    }

    // Admission drain grants: engines left idle or pointed at finished
    // lanes serve the paused lanes' backlogs, deepest first (lane-index
    // ties) — deterministic, and independent of the policy in use.
    drainable_.clear();
    for (int i = 0; i < n; ++i) {
      if (paused_[static_cast<std::size_t>(i)] &&
          grant_[static_cast<std::size_t>(i)] < 0) {
        drainable_.push_back(i);
      }
    }
    std::sort(drainable_.begin(), drainable_.end(), [this](int a, int b) {
      const int da = depth_[static_cast<std::size_t>(a)];
      const int db = depth_[static_cast<std::size_t>(b)];
      return da != db ? da > db : a < b;
    });
    std::size_t next_drain = 0;
    for (int e = 0; e < engines_ && next_drain < drainable_.size(); ++e) {
      const int lane = assignments_[static_cast<std::size_t>(e)];
      if (lane >= 0 && !finished_[static_cast<std::size_t>(lane)]) continue;
      const int target = drainable_[next_drain++];
      assignments_[static_cast<std::size_t>(e)] = target;
      grant_[static_cast<std::size_t>(target)] = e;
    }
    prof_assign.reset();

    // Lane-parallel execution; writes stay lane-local (shard-sequential
    // when the decode cache is on: see for_lanes).
    for_lanes(n, [&](int i) {
      obs::ScopedStage prof(profiler_, obs::Stage::kLaneExecute);
      Lane& lane = lanes_[static_cast<std::size_t>(i)];
      const auto idx = static_cast<std::size_t>(i);
      if (finished_[idx]) return;
      if (lane.track) lane.track->set_round(round);
      std::uint8_t flags = 0;
      if (paused_[idx]) {
        flags = kPausedF;
        ++lane.telemetry.paused_rounds;
        if (grant_[idx] >= 0) {
          cycles_[idx] = lane.stepper.spend(config_.cycles_per_round);
          lane.qos.on_pops(lane.stepper.last_spend_pops(), round);
          flags |= kServed;
          ++lane.telemetry.served_rounds;
          if (lane.track) {
            lane.track->emit(obs::EventKind::kSpend, cycles_[idx]);
          }
          if (metrics_) pops_[idx] = lane.stepper.last_spend_pops();
        }
      } else {
        flags = kActive;
        const bool backlog = lane.stepper.engine().stored_layers() > 0;
        bool pushed = false;
        if (lane.cursor < trace_rounds) {
          // trace.layer() hands out PackedBits: this push is a word copy
          // into the engine Reg, never a byte-per-bit repack.
          pushed = lane.stepper.push(trace.layer(i, lane.cursor));
          if (pushed) {
            ++lane.cursor;
            ++lane.telemetry.rounds_streamed;
            lane.qos.on_push(round, /*real=*/true);
            flags |= kRealPush;
          }
        } else {
          pushed = lane.stepper.push_clean();
          if (pushed) {
            ++lane.telemetry.drain_rounds;
            lane.qos.on_push(round, /*real=*/false);
          }
        }
        if (pushed) {
          flags |= kPushed;
          if (lane.track) {
            lane.track->emit(
                obs::EventKind::kPush,
                static_cast<std::uint64_t>(lane.stepper.engine().stored_layers()),
                (flags & kRealPush) ? 1 : 0);
          }
          if (grant_[idx] >= 0) {
            cycles_[idx] = lane.stepper.spend(config_.cycles_per_round);
            lane.qos.on_pops(lane.stepper.last_spend_pops(), round);
            flags |= kServed;
            ++lane.telemetry.served_rounds;
            if (lane.track) {
              lane.track->emit(obs::EventKind::kSpend, cycles_[idx]);
            }
            if (metrics_) pops_[idx] = lane.stepper.last_spend_pops();
          } else if (backlog) {
            flags |= kStarved;
            ++lane.telemetry.starved_rounds;
            if (lane.track) {
              lane.track->emit(obs::EventKind::kStarve,
                               static_cast<std::uint64_t>(
                                   lane.stepper.engine().stored_layers()));
            }
          }
        } else if (lane.track) {
          lane.track->emit(obs::EventKind::kOverflow,
                           static_cast<std::uint64_t>(
                               lane.stepper.engine().stored_layers()));
        }
      }
      lane.record_depth();
      depth_scratch_[idx] = lane.stepper.engine().stored_layers();
      if (metrics_) {
        samples_after_[idx] = lane.qos.samples().size();
        cache_after_[idx] = lane.stepper.engine().cache_stats();
      }
      flags_[idx] = flags;
    });

    // Reductions in fixed lane/engine order on this thread.
    obs::ScopedStage prof_reduce(profiler_, obs::Stage::kReduction);
    RoundSample sample;
    sample.round = round;
    bool real_push = false;
    for (int i = 0; i < n; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const std::uint8_t flags = flags_[idx];
      if (!(flags & (kActive | kPausedF))) continue;
      if (flags & kActive) {
        ++sample.live_lanes;
        if (flags & kRealPush) real_push = true;
        if (flags & kStarved) ++sample.starved_lanes;
        if (!(flags & kPushed)) ++overflowed_so_far_;
        if (metrics_) {
          if (flags & kPushed) {
            metrics_->count((flags & kRealPush) ? m_pushes_ : m_drain_pushes_);
          } else {
            metrics_->count(m_overflows_);
          }
          if (flags & kStarved) metrics_->count(m_starves_);
        }
      } else {
        ++sample.paused_lanes;
      }
      if (flags & kServed) {
        ++sample.served_lanes;
        if (metrics_) {
          metrics_->count(m_serves_);
          metrics_->count(m_pops_, static_cast<std::uint64_t>(pops_[idx]));
        }
      }
      sample.depth_sum += static_cast<std::uint64_t>(depth_scratch_[idx]);
      sample.depth_max = std::max(sample.depth_max, depth_scratch_[idx]);
      if (metrics_) {
        metrics_->observe(m_depth_,
                          static_cast<std::uint64_t>(depth_scratch_[idx]));
        consume_sojourn(lanes_[idx], samples_after_[idx]);
        consume_cache(lanes_[idx], cache_after_[idx]);
      }
    }
    sample.overflowed_lanes = overflowed_so_far_;
    sample.drain = !real_push;
    if (tracer_) served_.assign(static_cast<std::size_t>(engines_), -1);
    for (int e = 0; e < engines_; ++e) {
      EngineTelemetry& stats =
          telemetry_.engine_stats[static_cast<std::size_t>(e)];
      const int lane = assignments_[static_cast<std::size_t>(e)];
      if (lane >= 0 && (flags_[static_cast<std::size_t>(lane)] & kServed)) {
        ++stats.busy_rounds;
        stats.cycles += cycles_[static_cast<std::size_t>(lane)];
        sample.cycles += cycles_[static_cast<std::size_t>(lane)];
        if (tracer_) served_[static_cast<std::size_t>(e)] = lane;
      } else {
        ++stats.idle_rounds;
      }
    }
    telemetry_.timeline.push_back(sample);
    if (tracer_) trace_round_schedule(*tracer_, round, served_, sample.drain);
    if (metrics_) {
      obs::ScopedStage prof_close(profiler_, obs::Stage::kTelemetryClose);
      metrics_->set_gauge(m_live_, sample.live_lanes);
      metrics_->set_gauge(m_paused_, sample.paused_lanes);
      metrics_->set_gauge(m_overflowed_, overflowed_so_far_);
      feed_profile();
      metrics_->tick(round);
    }
    return true;
  }

  /// Flushes the trailing partial metrics window (feeding it the last
  /// profile deltas first) — the run_stream epilogue.
  void finish_metrics() {
    if (!metrics_) return;
    obs::ScopedStage prof_close(profiler_, obs::Stage::kTelemetryClose);
    feed_profile();
    metrics_->finish();
  }

 private:
  /// Feeds the lane's sojourn samples [obs_consumed, upto) to the windowed
  /// histogram. Called only from the reductions, in fixed (round, lane)
  /// order, so window attribution never depends on threads or batching.
  void consume_sojourn(Lane& lane, std::size_t upto) {
    const auto& samples = lane.qos.samples();
    for (std::size_t k = lane.obs_consumed; k < upto; ++k) {
      metrics_->observe(m_sojourn_, samples[k]);
    }
    lane.obs_consumed = upto;
  }

  /// Feeds the delta between the lane's cumulative decode-cache counters
  /// and what was already consumed to the metrics registry. Same fixed
  /// reduction order as consume_sojourn, so window attribution never
  /// depends on threads or batching.
  void consume_cache(Lane& lane, const DecodeCacheStats& after) {
    const DecodeCacheStats& before = lane.cache_consumed;
    metrics_->count(m_cache_hits_, after.hits - before.hits);
    metrics_->count(m_cache_misses_, after.misses - before.misses);
    metrics_->count(m_cache_installs_, after.installs - before.installs);
    metrics_->count(m_cache_evictions_, after.evictions - before.evictions);
    metrics_->count(m_cache_zero_rounds_,
                    after.zero_rounds - before.zero_rounds);
    metrics_->count(m_cache_zero_pushes_,
                    after.zero_pushes - before.zero_pushes);
    metrics_->count(m_cache_bypasses_, after.bypasses - before.bypasses);
    lane.cache_consumed = after;
  }

  /// Feeds the wall-clock nanoseconds accrued since the previous feed into
  /// the prof_* counters, so each metrics window carries its own share.
  /// Scopes still open when this runs (the enclosing reduction, the
  /// telemetry close itself) are attributed to the window open when they
  /// end — wall-clock values are non-deterministic either way.
  void feed_profile() {
    if (!profiler_) return;
    for (int s = 0; s < obs::kStageCount; ++s) {
      metrics_->count(m_prof_[static_cast<std::size_t>(s)],
                      profiler_->take_window_nanos(static_cast<obs::Stage>(s)));
    }
  }

  /// The lane-parallel region: a plain parallel_for over lanes, unless the
  /// decode cache is on — then the unit of parallelism is the cache shard
  /// and the lanes sharing a shard run sequentially in lane order, so
  /// shard contents (and every hit/miss counter) are independent of the
  /// worker-thread count.
  template <typename Body>
  void for_lanes(int n, Body&& body) {
    if (!cache_.enabled) {
      parallel_for(n, config_.threads, body);
      return;
    }
    parallel_for(cache_.shards, config_.threads, [&](int s) {
      const int first = s * cache_.block;
      const int last = std::min(n, first + cache_.block);
      for (int i = first; i < last; ++i) body(i);
    });
  }

  static constexpr std::uint8_t kActive = 1;   ///< lane took part in the round
  static constexpr std::uint8_t kPushed = 2;   ///< layer accepted (no overflow)
  static constexpr std::uint8_t kServed = 4;   ///< consumed an engine grant
  static constexpr std::uint8_t kStarved = 8;  ///< backlogged, no grant
  static constexpr std::uint8_t kPausedF = 16;   ///< frozen by admission
  static constexpr std::uint8_t kRealPush = 32;  ///< pushed a trace layer

  std::vector<Lane>& lanes_;
  SchedulerPolicy& policy_;
  const StreamConfig& config_;
  const AdmissionConfig admission_;
  const CacheLayout cache_;
  StreamTelemetry& telemetry_;
  obs::Tracer* const tracer_ = nullptr;            ///< null = tracing off
  obs::MetricsRegistry* const metrics_ = nullptr;  ///< null = metrics off
  obs::Profiler* const profiler_ = nullptr;        ///< null = profiling off
  const int engines_;
  const int batch_;
  int overflowed_so_far_ = 0;

  // Metrics instrument ids (valid only when metrics_ is set).
  int m_pushes_ = -1;
  int m_drain_pushes_ = -1;
  int m_pops_ = -1;
  int m_serves_ = -1;
  int m_starves_ = -1;
  int m_overflows_ = -1;
  int m_pauses_ = -1;
  int m_resumes_ = -1;
  int m_live_ = -1;
  int m_paused_ = -1;
  int m_overflowed_ = -1;
  int m_depth_ = -1;
  int m_sojourn_ = -1;
  int m_cache_hits_ = -1;
  int m_cache_misses_ = -1;
  int m_cache_installs_ = -1;
  int m_cache_evictions_ = -1;
  int m_cache_zero_rounds_ = -1;
  int m_cache_zero_pushes_ = -1;
  int m_cache_bypasses_ = -1;
  std::array<int, obs::kStageCount> m_prof_{};  ///< per-stage nanos counters

  std::vector<int> depth_;             // pre-round, for the policy view
  std::vector<std::uint8_t> finished_;
  std::vector<std::uint8_t> paused_;   // pause mode: frozen this round
  std::vector<int> drainable_;         // pause mode: ungranted paused lanes
  std::vector<int> assignment_;        // one round, engine -> lane
  std::vector<int> assignments_;       // whole batch, [round][engine]
  std::vector<int> grant_;             // [lane][round]: engine or -1
  std::vector<std::uint64_t> cycles_;  // [lane][round]: cycles consumed
  std::vector<std::uint8_t> flags_;    // [lane][round]: kActive | ...
  std::vector<int> depth_scratch_;     // [lane][round]: post-round depth
  std::vector<int> served_;            // tracer: per-round consumed grants
  std::vector<int> pops_;              // metrics: [lane][round] layers popped
  std::vector<std::size_t> samples_after_;  // metrics: cumulative sojourn count
  std::vector<DecodeCacheStats> cache_after_;  // metrics: cumulative cache stats
};

std::string json_string(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  out += "\"";
  return out;
}

std::string json_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

/// Configuration echo for the postmortem bundle: enough to rerun the
/// exact scenario (the trace seed/shape plus every service knob).
std::string stream_config_json(const StreamConfig& config, int trace_rounds,
                               int engines) {
  std::string out = "{";
  out += "\"lanes\": " + std::to_string(config.lanes);
  out += ", \"distance\": " + std::to_string(config.distance);
  out += ", \"p\": " + json_double(config.p);
  out += ", \"rounds\": " + std::to_string(config.rounds);
  out += ", \"trace_rounds\": " + std::to_string(trace_rounds);
  out += ", \"seed\": " + std::to_string(config.seed);
  out += ", \"engine\": " + json_string(config.engine);
  out += ", \"cycles_per_round\": " + json_double(config.cycles_per_round);
  out += ", \"max_drain_rounds\": " + std::to_string(config.max_drain_rounds);
  out += ", \"engines\": " + std::to_string(engines);
  out += ", \"policy\": " + json_string(config.policy);
  out += ", \"rounds_per_dispatch\": " +
         std::to_string(config.rounds_per_dispatch);
  out += ", \"admission\": " + json_string(config.admission);
  out += ", \"budget_w\": " + json_double(config.budget_w);
  out += ", \"cache\": " + json_string(config.cache);
  out += ", \"threads\": " + std::to_string(config.threads);
  out += ", \"obs\": {";
  out += "\"trace\": ";
  out += config.obs.trace ? "true" : "false";
  out += ", \"trace_ring\": " + std::to_string(config.obs.trace_ring);
  out += ", \"metrics\": ";
  out += config.obs.metrics ? "true" : "false";
  out += ", \"metrics_window\": " + std::to_string(config.obs.metrics_window);
  out += ", \"profile\": ";
  out += config.obs.profile ? "true" : "false";
  out += ", \"slo\": " + json_string(config.obs.slo);
  out += ", \"dump_dir\": " + json_string(config.obs.dump_dir);
  out += "}}";
  return out;
}

}  // namespace

SyndromeTrace record_trace(const StreamConfig& config) {
  if (config.lanes < 1) throw std::invalid_argument("stream: lanes must be >= 1");
  const int noisy_rounds = config.rounds > 0 ? config.rounds : config.distance;
  const PlanarLattice lattice(config.distance);

  TraceHeader header;
  header.distance = static_cast<std::uint32_t>(config.distance);
  header.lanes = static_cast<std::uint32_t>(config.lanes);
  // Stored rounds include the final perfect round sample_history appends.
  header.rounds = static_cast<std::uint32_t>(noisy_rounds + 1);
  header.checks = static_cast<std::uint32_t>(lattice.num_checks());
  header.data_qubits = static_cast<std::uint32_t>(lattice.num_data());
  header.seed = config.seed;
  header.p_data = config.p;
  header.p_meas = config.p;

  SyndromeTrace trace(header);
  parallel_for(config.lanes, config.threads, [&](int lane) {
    Xoshiro256ss rng = lane_rng(config, lane, noisy_rounds);
    const auto history =
        sample_history(lattice, {config.p, config.p, noisy_rounds}, rng);
    trace.set_lane(lane, history);  // disjoint slots: no cross-lane writes
  });
  return trace;
}

StreamOutcome run_stream(const SyndromeTrace& trace,
                         const StreamConfig& user_config) {
  const int n = trace.lanes();
  if (n < 1) throw std::invalid_argument("stream: trace has no lanes");
  // Arming the flight recorder implies the recorders it dumps: a
  // postmortem bundle without the event trace and the metrics heartbeat
  // would be useless at triage time. Profiling and SLOs stay opt-in.
  StreamConfig config = user_config;
  if (!config.obs.dump_dir.empty()) {
    config.obs.trace = true;
    config.obs.metrics = true;
  }
  // Resolve the engine, policy, and admission specs before any lane (or
  // thread) exists so a typo fails loudly up front.
  const QecoolConfig engine_config = online_engine_config(config.engine);
  const auto policy = make_scheduler_policy(config.policy);
  const AdmissionConfig admission = resolve_admission(
      parse_admission_spec(config.admission), engine_config.reg_depth);
  // The SLO spec parses with the same up-front loudness; it implies a
  // metrics registry (verdicts are a function of windowed metrics) and its
  // window= option overrides the metrics window.
  const bool slo_enabled = !config.obs.slo.empty();
  obs::SloConfig slo_config;
  if (slo_enabled) slo_config = obs::parse_slo_spec(config.obs.slo);
  // Decode-window memoization: config.cache overrides the engine spec's
  // cache block when present (also validated eagerly, before any lane
  // exists). record_trace engines bypass the cache, so treat that as off.
  DecodeCacheConfig cache_cfg = engine_config.cache;
  if (!config.cache.empty()) cache_cfg = parse_decode_cache_spec(config.cache);
  CacheLayout cache_layout;
  cache_layout.enabled = cache_cfg.enabled && cache_cfg.entries > 0 &&
                         !engine_config.record_trace;
  if (cache_layout.enabled) {
    cache_layout.shards = decode_cache_shard_count(cache_cfg, n);
    cache_layout.block = (n + cache_layout.shards - 1) / cache_layout.shards;
  }
  int engines = config.engines <= 0 ? n : config.engines;

  // The pool size is ultimately a watts decision: a positive budget_w
  // caps K at the largest pool whose modelled ERSFQ dissipation fits the
  // 4-K stage (Table V). The clock sets the watts, so an unconstrained
  // cycle budget cannot be power-capped.
  const double freq_hz =
      config.cycles_per_round > 0 ? config.cycles_per_round * 1e6 : 0.0;
  if (config.budget_w > 0) {
    if (freq_hz <= 0) {
      throw std::invalid_argument(
          "stream: budget_w needs a positive cycles_per_round — an "
          "unconstrained clock has no defined power");
    }
    const int fit = PoolPowerModel::max_engines(
        config.budget_w, static_cast<int>(trace.header().distance), freq_hz);
    if (fit < 1) {
      throw std::invalid_argument(
          "stream: power budget cannot supply even one engine at this "
          "distance and clock");
    }
    engines = std::min(engines, fit);
  }
  if (engines < 1 || engines > n) {
    throw std::invalid_argument("stream: engines must be in [1, lanes], got " +
                                std::to_string(engines));
  }
  policy->validate(n, engines);

  OnlineConfig online;
  online.engine = engine_config;
  online.cycles_per_round = config.cycles_per_round;
  online.max_drain_rounds = config.max_drain_rounds;

  const PlanarLattice lattice(static_cast<int>(trace.header().distance));
  std::vector<Lane> lanes;
  lanes.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    lanes.emplace_back(lattice, online, i, engine_config.reg_depth + 1);
  }
  if (admission.codel()) {
    for (auto& lane : lanes) {
      lane.codel = CodelControl(admission.target, admission.interval);
    }
  }

  // Cache shards: lanes [s * block, (s + 1) * block) share shard s. The
  // shard count is a pure function of the config (never of --threads), so
  // which windows collide in a shard — and thus every hit/miss counter —
  // is reproducible across machines.
  std::vector<DecodeCache> cache_shards;
  if (cache_layout.enabled) {
    cache_shards.reserve(static_cast<std::size_t>(cache_layout.shards));
    for (int s = 0; s < cache_layout.shards; ++s) {
      cache_shards.emplace_back(cache_cfg.entries);
    }
    for (int i = 0; i < n; ++i) {
      lanes[static_cast<std::size_t>(i)].stepper.set_decode_cache(
          &cache_shards[static_cast<std::size_t>(i / cache_layout.block)]);
    }
  }

  StreamOutcome outcome;
  if (config.obs.trace) {
    outcome.tracer = std::make_shared<obs::Tracer>(
        n, engines,
        static_cast<std::size_t>(std::max(1, config.obs.trace_ring)));
    for (int i = 0; i < n; ++i) {
      Lane& lane = lanes[static_cast<std::size_t>(i)];
      lane.track = &outcome.tracer->lane(i);
      lane.stepper.set_obs_track(lane.track);  // engine pop events
      lane.codel.set_obs_track(lane.track);    // CoDel arm/disarm events
    }
  }
  if (config.obs.metrics || slo_enabled) {
    int metrics_window = std::max(1, config.obs.metrics_window);
    if (slo_enabled && slo_config.window > 0) metrics_window = slo_config.window;
    outcome.metrics = std::make_shared<obs::MetricsRegistry>(metrics_window);
  }
  if (config.obs.profile) {
    outcome.profiler = std::make_shared<obs::Profiler>(
        static_cast<std::size_t>(std::max(1, config.obs.profile_ring)));
    for (auto& lane : lanes) {
      lane.stepper.set_profiler(outcome.profiler.get());  // kCache stage
    }
  }
  outcome.telemetry.distance = static_cast<int>(trace.header().distance);
  outcome.telemetry.p = trace.header().p_data;
  outcome.telemetry.cycles_per_round = config.cycles_per_round;
  outcome.telemetry.seed = trace.header().seed;
  outcome.telemetry.engine = config.engine;
  outcome.telemetry.policy = config.policy;
  outcome.telemetry.admission = config.admission;
  if (cache_layout.enabled) {
    DecodeCacheConfig resolved = cache_cfg;
    resolved.shards = cache_layout.shards;
    outcome.telemetry.cache = decode_cache_spec_string(resolved);
  } else {
    outcome.telemetry.cache = "off";
  }
  outcome.telemetry.engines = engines;
  outcome.telemetry.budget_w = config.budget_w;
  if (freq_hz > 0) {
    const PoolPowerModel power{engines,
                               static_cast<int>(trace.header().distance),
                               freq_hz};
    outcome.telemetry.watts = power.watts();
  }

  PoolScheduler scheduler(lanes, *policy, engines, config, admission,
                          cache_layout, outcome.telemetry,
                          outcome.tracer.get(), outcome.metrics.get(),
                          outcome.profiler.get());

  // The SLO engine attaches after every other instrument is registered,
  // so its slo_ok/slo_warning/slo_page counters are the trailing metrics
  // columns; unknown objective metrics fail loudly here, before any round
  // executes.
  if (slo_enabled) {
    outcome.slo = std::make_shared<obs::SloEngine>(slo_config);
    outcome.slo->attach(*outcome.metrics,
                        outcome.tracer ? &outcome.tracer->control() : nullptr);
  }

  // Arm the process-wide flight recorder before the first round so a
  // mid-run SIGUSR1 (or a fatal-signal handler installed by the bench)
  // can snapshot the live obs objects; the shared_ptr sources keep the
  // bundle writable after this function returns.
  const bool dump_armed = !config.obs.dump_dir.empty();
  if (dump_armed) {
    obs::PostmortemSources sources;
    sources.tracer = outcome.tracer;
    sources.metrics = outcome.metrics;
    sources.profiler = outcome.profiler;
    sources.slo = outcome.slo;
    sources.config_json = stream_config_json(config, trace.rounds(), engines);
    sources.dir = config.obs.dump_dir;
    obs::FlightRecorder::instance().arm(std::move(sources));
  }
  const auto poll_dump_request = [dump_armed]() {
    if (dump_armed && obs::FlightRecorder::take_dump_request()) {
      obs::FlightRecorder::instance().dump("sigusr1");
    }
  };

  if (admission.pause()) {
    // Admission-controlled run: one round at a time, per-lane cursors.
    // Paused lanes lag behind the global round, so streaming and drain
    // interleave per lane; the total round count is bounded by the trace
    // length plus the drain budget, exactly like the two-phase loop.
    const std::int64_t max_rounds =
        static_cast<std::int64_t>(trace.rounds()) + config.max_drain_rounds;
    for (std::int64_t t = 0; t < max_rounds; ++t) {
      poll_dump_request();
      if (!scheduler.dispatch_admission(t, trace)) break;
    }
  } else {
    // Phase 1 — streaming: round t reaches every live lane before any lane
    // sees round t+1, mirroring syndrome arrival in hardware; the policy
    // grants engines round by round within each dispatch batch.
    for (std::int64_t t = 0; t < trace.rounds();) {
      poll_dump_request();
      const int count = static_cast<int>(
          std::min<std::int64_t>(scheduler.batch(), trace.rounds() - t));
      scheduler.dispatch(t, count, /*drain=*/false, &trace);
      t += count;
    }

    // Phase 2 — drain: clean layers until every lane overflowed or
    // drained, bounded by max_drain_rounds (QEC never stops in hardware).
    std::int64_t round = trace.rounds();
    for (int budget = config.max_drain_rounds; budget > 0;) {
      poll_dump_request();
      bool any_active = false;
      for (const auto& lane : lanes) any_active |= !lane.finished();
      if (!any_active) break;
      const int count = std::min(scheduler.batch(), budget);
      scheduler.dispatch(round, count, /*drain=*/true, nullptr);
      round += count;
      budget -= count;
    }
  }

  // Finalize each lane (the logical scoring decodes nothing, but keep it
  // in the parallel region: it is per-lane work too).
  const bool pause_mode = admission.pause();
  parallel_for(n, config.threads, [&](int i) {
    obs::ScopedStage prof(outcome.profiler.get(), obs::Stage::kLaneExecute);
    Lane& lane = lanes[static_cast<std::size_t>(i)];
    const OnlineResult result = lane.stepper.result();
    LaneTelemetry& t = lane.telemetry;
    t.overflow = result.overflow;
    // Under admission pause a lane can exit the round bound mid-trace
    // with an empty queue (it spent the tail paused): it never consumed
    // the remaining syndrome layers, so it is NOT drained and must not
    // be scored against the full-trace ground truth.
    const bool drained =
        result.drained &&
        (!pause_mode ||
         (lane.cursor >= trace.rounds() && !lane.stepper.paused()));
    t.drained = drained;
    // The drained event lands at the lane's last executed round (its
    // track cursor) — deterministic, since a lane participates in the
    // same rounds regardless of threads or batching.
    if (drained && lane.track) lane.track->emit(obs::EventKind::kDrained);
    t.popped_layers = static_cast<int>(result.layer_cycles.size());
    t.total_cycles = result.total_cycles;
    t.layer_cycles = result.layer_cycles;
    t.sojourn_rounds = lane.qos.take_samples();
    t.matches = result.matches;
    t.cache = lane.stepper.engine().cache_stats();
    if (!result.overflow && drained) {
      SyndromeHistory truth;
      truth.final_error = trace.final_error(i);
      DecodeResult decode;
      decode.correction = result.correction;
      t.logical_failure = logical_failure(lattice, truth, decode);
    }
  });

  outcome.lanes = n;
  outcome.telemetry.lanes.reserve(static_cast<std::size_t>(n));
  for (auto& lane : lanes) {
    outcome.telemetry.lanes.push_back(std::move(lane.telemetry));
  }
  outcome.overflow_lanes = outcome.telemetry.overflow_lanes();
  outcome.drained_lanes = outcome.telemetry.drained_lanes();
  outcome.failed_lanes = outcome.telemetry.failed_lanes();
  for (const auto& lane : outcome.telemetry.lanes) {
    outcome.logical_failures += lane.logical_failure ? 1 : 0;
  }
  scheduler.finish_metrics();  // flush the trailing partial window
  return outcome;
}

StreamOutcome run_stream(const StreamConfig& config) {
  return run_stream(record_trace(config), config);
}

}  // namespace qec
