#include "stream/service.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "decoder/registry.hpp"
#include "qecool/online_runner.hpp"
#include "sim/executor.hpp"
#include "stream/scheduler.hpp"
#include "surface_code/planar_lattice.hpp"

namespace qec {
namespace {

/// Lane k's noise stream: the seed mixed with the lane index and every
/// structural parameter through SplitMix64 avalanches (the experiment_rng
/// recipe), so streams are independent per lane and stable under changes
/// to lane count, thread count, or scheduling.
Xoshiro256ss lane_rng(const StreamConfig& config, int lane, int rounds) {
  std::uint64_t state = config.seed;
  const auto feed = [&state](std::uint64_t value) {
    state ^= value;
    state = splitmix64(state);
  };
  feed(static_cast<std::uint64_t>(lane));
  feed(static_cast<std::uint64_t>(config.distance));
  feed(static_cast<std::uint64_t>(rounds));
  feed(std::bit_cast<std::uint64_t>(config.p));
  return Xoshiro256ss(state);
}

struct Lane {
  Lane(const PlanarLattice& lattice, const OnlineConfig& online, int id,
       int depth_bins)
      : stepper(lattice, online) {
    telemetry.lane = id;
    telemetry.depth_hist.assign(static_cast<std::size_t>(depth_bins), 0);
  }

  void record_depth() {
    const auto depth = static_cast<std::size_t>(stepper.engine().stored_layers());
    if (depth < telemetry.depth_hist.size()) ++telemetry.depth_hist[depth];
  }

  bool finished() const { return stepper.overflowed() || stepper.drained(); }

  OnlineStepper stepper;
  LaneTelemetry telemetry;
};

/// Orchestrates the shared engine pool over one run: per dispatch it asks
/// the policy for up to `batch` rounds of engine->lane assignments (on the
/// calling thread, in round order), executes them lane-parallel with all
/// writes going to lane-local slots, then reduces engine accounting and
/// the round timeline on the calling thread — so every outcome and CSV is
/// independent of the worker-thread count.
class PoolScheduler {
 public:
  PoolScheduler(std::vector<Lane>& lanes, SchedulerPolicy& policy, int engines,
                const StreamConfig& config, StreamTelemetry& telemetry)
      : lanes_(lanes),
        policy_(policy),
        config_(config),
        telemetry_(telemetry),
        engines_(engines),
        batch_(policy.dynamic() ? 1
                                : std::max(1, config.rounds_per_dispatch)) {
    telemetry_.engine_stats.resize(static_cast<std::size_t>(engines_));
    for (int e = 0; e < engines_; ++e) {
      telemetry_.engine_stats[static_cast<std::size_t>(e)].engine = e;
    }
    depth_.resize(lanes_.size());
    finished_.resize(lanes_.size());
    assignment_.assign(static_cast<std::size_t>(engines_), -1);
  }

  int batch() const { return batch_; }

  /// Runs `count` rounds starting at global round `start`. Streaming
  /// rounds (drain == false) push trace layer (start + r) into every lane
  /// that has not overflowed; drain rounds push clean layers into every
  /// unfinished lane.
  void dispatch(std::int64_t start, int count, bool drain,
                const SyndromeTrace* trace) {
    const int n = static_cast<int>(lanes_.size());
    const auto slots = static_cast<std::size_t>(n) * static_cast<std::size_t>(count);
    grant_.assign(slots, -1);
    cycles_.assign(slots, 0);
    flags_.assign(slots, 0);
    depth_scratch_.assign(slots, 0);

    // Pre-round lane state for the policy. Fresh only when count == 1,
    // which the constructor forces for dynamic policies; static policies
    // never read it.
    for (int i = 0; i < n; ++i) {
      const Lane& lane = lanes_[static_cast<std::size_t>(i)];
      depth_[static_cast<std::size_t>(i)] = lane.stepper.engine().stored_layers();
      finished_[static_cast<std::size_t>(i)] =
          (drain ? lane.finished() : lane.stepper.overflowed()) ? 1 : 0;
    }

    // Assignments for the whole batch, in round order on this thread.
    assignments_.assign(static_cast<std::size_t>(count) *
                            static_cast<std::size_t>(engines_),
                        -1);
    ScheduleView view;
    view.lanes = n;
    view.engines = engines_;
    view.depth = depth_.data();
    view.finished = finished_.data();
    for (int r = 0; r < count; ++r) {
      view.round = start + r;
      // Reset so a policy that leaves an engine's entry untouched idles it
      // instead of inheriting the previous round's grant.
      std::fill(assignment_.begin(), assignment_.end(), -1);
      policy_.assign(view, assignment_);
      for (int e = 0; e < engines_; ++e) {
        const int lane = assignment_[static_cast<std::size_t>(e)];
        assignments_[static_cast<std::size_t>(r) * engines_ +
                     static_cast<std::size_t>(e)] = lane;
        if (lane < 0) continue;
        if (lane >= n) {
          throw std::logic_error("stream: policy assigned engine " +
                                 std::to_string(e) + " to nonexistent lane " +
                                 std::to_string(lane));
        }
        auto& slot = grant_[static_cast<std::size_t>(lane) * count +
                            static_cast<std::size_t>(r)];
        if (slot >= 0) {
          throw std::logic_error(
              "stream: policy assigned two engines to lane " +
              std::to_string(lane) + " in one round");
        }
        slot = e;
      }
    }

    // Lane-parallel execution; every write below lands in lane-local
    // state or the lane's own scratch slots.
    parallel_for(n, config_.threads, [&](int i) {
      Lane& lane = lanes_[static_cast<std::size_t>(i)];
      for (int r = 0; r < count; ++r) {
        const std::size_t idx = static_cast<std::size_t>(i) * count +
                                static_cast<std::size_t>(r);
        if (drain ? lane.finished() : lane.stepper.overflowed()) continue;
        // Backlog before this round's layer lands: the starvation test.
        const bool backlog = lane.stepper.engine().stored_layers() > 0;
        const bool pushed =
            drain ? lane.stepper.push_clean()
                  : lane.stepper.push(trace->layer(i, static_cast<int>(start) + r));
        std::uint8_t flags = kActive;
        if (pushed) {
          flags |= kPushed;
          if (drain) {
            ++lane.telemetry.drain_rounds;
          } else {
            ++lane.telemetry.rounds_streamed;
          }
          if (grant_[idx] >= 0) {
            cycles_[idx] = lane.stepper.spend(config_.cycles_per_round);
            flags |= kServed;
            ++lane.telemetry.served_rounds;
          } else if (backlog) {
            flags |= kStarved;
            ++lane.telemetry.starved_rounds;
          }
        }
        lane.record_depth();
        depth_scratch_[idx] = lane.stepper.engine().stored_layers();
        flags_[idx] = flags;
      }
    });

    // Reductions in fixed (round, lane/engine) order on this thread.
    for (int r = 0; r < count; ++r) {
      RoundSample sample;
      sample.round = start + r;
      sample.drain = drain;
      for (int i = 0; i < n; ++i) {
        const std::size_t idx = static_cast<std::size_t>(i) * count +
                                static_cast<std::size_t>(r);
        const std::uint8_t flags = flags_[idx];
        if (!(flags & kActive)) continue;
        ++sample.live_lanes;
        if (flags & kServed) ++sample.served_lanes;
        if (flags & kStarved) ++sample.starved_lanes;
        if (!(flags & kPushed)) ++overflowed_so_far_;
        sample.depth_sum += static_cast<std::uint64_t>(depth_scratch_[idx]);
        sample.depth_max = std::max(sample.depth_max, depth_scratch_[idx]);
      }
      sample.overflowed_lanes = overflowed_so_far_;
      // Rounds where every lane has already finished are scheduling
      // artifacts (a batch outlives the fleet, or the trace outlives an
      // all-overflow run): account nothing, so engine stats — like the
      // timeline — cover exactly the rounds with live lanes and stay
      // invariant under rounds_per_dispatch.
      if (sample.live_lanes == 0) continue;
      for (int e = 0; e < engines_; ++e) {
        EngineTelemetry& stats = telemetry_.engine_stats[static_cast<std::size_t>(e)];
        const int lane = assignments_[static_cast<std::size_t>(r) * engines_ +
                                      static_cast<std::size_t>(e)];
        const std::size_t idx = lane < 0
                                    ? 0
                                    : static_cast<std::size_t>(lane) * count +
                                          static_cast<std::size_t>(r);
        if (lane >= 0 && (flags_[idx] & kServed)) {
          ++stats.busy_rounds;
          stats.cycles += cycles_[idx];
          sample.cycles += cycles_[idx];
        } else {
          ++stats.idle_rounds;
        }
      }
      telemetry_.timeline.push_back(sample);
    }
  }

 private:
  static constexpr std::uint8_t kActive = 1;   ///< lane took part in the round
  static constexpr std::uint8_t kPushed = 2;   ///< layer accepted (no overflow)
  static constexpr std::uint8_t kServed = 4;   ///< consumed an engine grant
  static constexpr std::uint8_t kStarved = 8;  ///< backlogged, no grant

  std::vector<Lane>& lanes_;
  SchedulerPolicy& policy_;
  const StreamConfig& config_;
  StreamTelemetry& telemetry_;
  const int engines_;
  const int batch_;
  int overflowed_so_far_ = 0;

  std::vector<int> depth_;             // pre-round, for the policy view
  std::vector<std::uint8_t> finished_;
  std::vector<int> assignment_;        // one round, engine -> lane
  std::vector<int> assignments_;       // whole batch, [round][engine]
  std::vector<int> grant_;             // [lane][round]: engine or -1
  std::vector<std::uint64_t> cycles_;  // [lane][round]: cycles consumed
  std::vector<std::uint8_t> flags_;    // [lane][round]: kActive | ...
  std::vector<int> depth_scratch_;     // [lane][round]: post-round depth
};

}  // namespace

SyndromeTrace record_trace(const StreamConfig& config) {
  if (config.lanes < 1) throw std::invalid_argument("stream: lanes must be >= 1");
  const int noisy_rounds = config.rounds > 0 ? config.rounds : config.distance;
  const PlanarLattice lattice(config.distance);

  TraceHeader header;
  header.distance = static_cast<std::uint32_t>(config.distance);
  header.lanes = static_cast<std::uint32_t>(config.lanes);
  // Stored rounds include the final perfect round sample_history appends.
  header.rounds = static_cast<std::uint32_t>(noisy_rounds + 1);
  header.checks = static_cast<std::uint32_t>(lattice.num_checks());
  header.data_qubits = static_cast<std::uint32_t>(lattice.num_data());
  header.seed = config.seed;
  header.p_data = config.p;
  header.p_meas = config.p;

  SyndromeTrace trace(header);
  parallel_for(config.lanes, config.threads, [&](int lane) {
    Xoshiro256ss rng = lane_rng(config, lane, noisy_rounds);
    const auto history =
        sample_history(lattice, {config.p, config.p, noisy_rounds}, rng);
    trace.set_lane(lane, history);  // disjoint slots: no cross-lane writes
  });
  return trace;
}

StreamOutcome run_stream(const SyndromeTrace& trace,
                         const StreamConfig& config) {
  const int n = trace.lanes();
  if (n < 1) throw std::invalid_argument("stream: trace has no lanes");
  // Resolve the engine and policy specs before any lane (or thread)
  // exists so a typo fails loudly up front.
  const QecoolConfig engine_config = online_engine_config(config.engine);
  const auto policy = make_scheduler_policy(config.policy);
  const int engines = config.engines <= 0 ? n : config.engines;
  if (engines < 1 || engines > n) {
    throw std::invalid_argument("stream: engines must be in [1, lanes], got " +
                                std::to_string(engines));
  }
  policy->validate(n, engines);

  OnlineConfig online;
  online.engine = engine_config;
  online.cycles_per_round = config.cycles_per_round;
  online.max_drain_rounds = config.max_drain_rounds;

  const PlanarLattice lattice(static_cast<int>(trace.header().distance));
  std::vector<Lane> lanes;
  lanes.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    lanes.emplace_back(lattice, online, i, engine_config.reg_depth + 1);
  }

  StreamOutcome outcome;
  outcome.telemetry.distance = static_cast<int>(trace.header().distance);
  outcome.telemetry.p = trace.header().p_data;
  outcome.telemetry.cycles_per_round = config.cycles_per_round;
  outcome.telemetry.seed = trace.header().seed;
  outcome.telemetry.engine = config.engine;
  outcome.telemetry.policy = config.policy;
  outcome.telemetry.engines = engines;

  PoolScheduler scheduler(lanes, *policy, engines, config, outcome.telemetry);

  // Phase 1 — streaming: round t reaches every live lane before any lane
  // sees round t+1, mirroring syndrome arrival in hardware; the policy
  // grants engines round by round within each dispatch batch.
  for (std::int64_t t = 0; t < trace.rounds();) {
    const int count = static_cast<int>(
        std::min<std::int64_t>(scheduler.batch(), trace.rounds() - t));
    scheduler.dispatch(t, count, /*drain=*/false, &trace);
    t += count;
  }

  // Phase 2 — drain: clean layers until every lane overflowed or drained,
  // bounded by max_drain_rounds (QEC never stops in hardware).
  std::int64_t round = trace.rounds();
  for (int budget = config.max_drain_rounds; budget > 0;) {
    bool any_active = false;
    for (const auto& lane : lanes) any_active |= !lane.finished();
    if (!any_active) break;
    const int count = std::min(scheduler.batch(), budget);
    scheduler.dispatch(round, count, /*drain=*/true, nullptr);
    round += count;
    budget -= count;
  }

  // Finalize each lane (the logical scoring decodes nothing, but keep it
  // in the parallel region: it is per-lane work too).
  parallel_for(n, config.threads, [&](int i) {
    Lane& lane = lanes[static_cast<std::size_t>(i)];
    const OnlineResult result = lane.stepper.result();
    LaneTelemetry& t = lane.telemetry;
    t.overflow = result.overflow;
    t.drained = result.drained;
    t.popped_layers = static_cast<int>(result.layer_cycles.size());
    t.total_cycles = result.total_cycles;
    t.layer_cycles = result.layer_cycles;
    t.matches = result.matches;
    if (!result.failed_operationally()) {
      SyndromeHistory truth;
      truth.final_error = trace.final_error(i);
      DecodeResult decode;
      decode.correction = result.correction;
      t.logical_failure = logical_failure(lattice, truth, decode);
    }
  });

  outcome.lanes = n;
  outcome.telemetry.lanes.reserve(static_cast<std::size_t>(n));
  for (auto& lane : lanes) {
    outcome.telemetry.lanes.push_back(std::move(lane.telemetry));
  }
  outcome.overflow_lanes = outcome.telemetry.overflow_lanes();
  outcome.drained_lanes = outcome.telemetry.drained_lanes();
  outcome.failed_lanes = outcome.telemetry.failed_lanes();
  for (const auto& lane : outcome.telemetry.lanes) {
    outcome.logical_failures += lane.logical_failure ? 1 : 0;
  }
  return outcome;
}

StreamOutcome run_stream(const StreamConfig& config) {
  return run_stream(record_trace(config), config);
}

}  // namespace qec
