// Streaming decode service: drives many logical-qubit lanes through a
// shared pool of K on-line QECOOL engines (K <= N lanes) — the fleet-scale
// version of the single-trial run_online() loop, modelling a processor's
// worth of syndrome streams arriving every measurement interval and the
// hardware-budget question behind it: how much decode hardware per chip
// (the ~2,500-patch question src/sfq/fabric.hpp asks, answered in the
// time domain).
//
// Each round, every live lane receives its arriving difference layer, and
// a pluggable SchedulerPolicy (stream/scheduler.hpp) grants up to K lanes
// one engine's worth of decode cycles; ungranted lanes carry the deficit
// as Reg queue depth. K == N with the "dedicated" policy is the original
// one-engine-per-lane service, byte for byte.
//
// Admission control (stream/admission.hpp) decides what happens when a
// lane's queues fill: admission=overflow lets the next push overflow the
// Reg and kill the lane (the PR 3 behaviour, byte-identical),
// admission=pause freezes the lane's logical clock at the high-water
// mark, drains its backlog on engines the policy leaves idle, and
// re-admits it at the low-water mark, and admission=codel freezes on
// sustained sojourn latency instead (the CoDel control law in logical
// rounds, stream/qos.hpp) with the depth mark as overflow backstop.
// budget_w ties the pool size K to the 4-K-stage power budget through
// the ERSFQ model (PoolPowerModel). Every pushed layer is timestamped at
// enqueue, so per-lane end-to-end sojourn percentiles — paused lanes
// included — come out in write_latency_csv.
//
// Determinism contract: every lane is an independent (engine, telemetry)
// pair; the scheduler advances all live lanes round-by-round over the
// PR-1 thread-pool executor, assigns engines on the calling thread in
// round order, and reduces results on the calling thread in lane order.
// The outcome — including every telemetry CSV, byte for byte — is a pure
// function of (trace, StreamConfig minus threads); --threads and
// rounds_per_dispatch only change wall-clock. See DESIGN.md sections 7-8.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "stream/telemetry.hpp"
#include "stream/trace.hpp"

namespace qec {

/// Observability switches riding StreamConfig (src/obs, DESIGN.md
/// section 12). Both default off; a disabled tracer costs one branch per
/// hook site, so instrumented builds run within noise of PR 6. All event
/// timestamps are logical rounds — the trace and the metrics CSV are pure
/// functions of (trace, config minus threads), byte-identical at any
/// thread count.
struct StreamObsConfig {
  /// Record the per-track event trace (StreamOutcome::tracer).
  bool trace = false;
  /// Per-track ring capacity in events; the ring is a flight recorder —
  /// once full the oldest events are overwritten and counted as dropped.
  int trace_ring = 1 << 14;
  /// Maintain the windowed metrics registry (StreamOutcome::metrics).
  bool metrics = false;
  /// Rounds per metrics window (counters are window deltas, gauges are
  /// sampled at window close, histograms reset per window).
  int metrics_window = 64;
  /// Wall-clock self-profiling (obs/profile.hpp, StreamOutcome::profiler).
  /// The ONE obs feature exempt from the determinism contract: its CSV,
  /// its prof_* metrics columns, and the pid-4 Chrome-trace track measure
  /// real time. Outcomes are untouched — timing is observed, never
  /// consulted — and with this off (the default) every export stays
  /// byte-identical.
  bool profile = false;
  /// Per-thread wall-sample ring capacity (flight-recorder semantics).
  int profile_ring = 1 << 13;
  /// SLO spec, parse_slo_spec() grammar — e.g. "sojourn_p99<8,window=256"
  /// (obs/slo.hpp). Non-empty implies a metrics registry; its `window=`
  /// option overrides metrics_window. Verdicts derive only from windowed
  /// metrics, so they are thread-count invariant.
  std::string slo;
  /// Postmortem flight-recorder bundle directory (obs/postmortem.hpp).
  /// Non-empty arms the process-wide FlightRecorder with this run's obs
  /// objects; SIGUSR1 (when the bench installed handlers) or an explicit
  /// FlightRecorder::dump() writes the bundle there.
  std::string dump_dir;
};

struct StreamConfig {
  int lanes = 8;        ///< concurrent logical-qubit streams
  int distance = 5;
  double p = 0.01;      ///< p_data = p_meas (the paper's setting)
  int rounds = 0;       ///< noisy rounds per lane; <= 0 means `distance`
  std::uint64_t seed = 2021;

  /// Lane engine spec, resolved via online_engine_config() — e.g.
  /// "qecool" or "qecool:reg_depth=4,thv=3".
  std::string engine = "qecool";

  /// Decoder cycles granted per measurement interval (fractional budgets
  /// accumulate; <= 0 = unconstrained). See cycles_per_microsecond().
  double cycles_per_round = 0.0;

  /// Clean rounds pushed after the trace ends before giving up on a lane.
  int max_drain_rounds = 1000;

  /// Decoder engines in the shared pool (K); <= 0 means one per lane
  /// (K == N). Must end up in [1, lanes].
  int engines = 0;

  /// Lane-to-engine scheduling policy spec, resolved via
  /// make_scheduler_policy() — "dedicated", "round_robin",
  /// "round_robin:offset=3", "least_loaded", or "fq" /
  /// "fq:quantum=120" (FQ-CoDel-style deficit-round-robin,
  /// stream/qos.hpp).
  std::string policy = "dedicated";

  /// Rounds executed per scheduling dispatch (one parallel_for barrier).
  /// Static policies amortize the per-round barrier over this many rounds
  /// without changing any outcome; dynamic policies (least_loaded) need
  /// fresh queue depths every round and clamp it to 1. <= 1 means one
  /// round per dispatch. Admission pause mode also clamps to 1: pause and
  /// resume decisions need fresh queue depths every round.
  int rounds_per_dispatch = 1;

  /// Admission control spec, resolved via parse_admission_spec():
  /// "overflow" (PR 3 behaviour, byte-identical), "pause" /
  /// "pause:high=H,low=L" (freeze a lane's logical clock at the queue
  /// high-water mark instead of overflowing its Reg queues), or "codel" /
  /// "codel:target=T,interval=I" (freeze on sustained sojourn latency —
  /// the CoDel control law in logical rounds, anticipating overflow
  /// instead of waiting for the depth mark). See stream/admission.hpp
  /// and stream/qos.hpp.
  std::string admission = "overflow";

  /// 4-K-stage power budget in watts; > 0 caps the pool at the largest K
  /// whose modelled ERSFQ dissipation fits (PoolPowerModel). Requires a
  /// positive cycles_per_round (the clock sets the watts); throws when
  /// not even one engine fits. <= 0 leaves K uncapped.
  double budget_w = 0.0;

  /// Decode-window memoization spec override, resolved via
  /// parse_decode_cache_spec(): "" defers to the engine spec (whose
  /// default is on), "off" disables (byte-identical to the uncached
  /// engine), "on" / "clock[:entries=N,shards=S]" configures the bounded
  /// CLOCK cache. Lanes are split into `shards` contiguous blocks, each
  /// sharing one shard and executing sequentially, so cache contents —
  /// and the cache CSV — never depend on --threads. With the cache on,
  /// rounds_per_dispatch clamps to 1 for the same reason (outcomes never
  /// depend on it; shared-shard hit counters would). See
  /// qecool/decode_cache.hpp and DESIGN.md section 13.
  std::string cache;

  /// Worker threads (<= 0: all hardware threads). Never changes results.
  int threads = 1;

  /// Event tracing and windowed metrics (src/obs); both off by default.
  StreamObsConfig obs;
};

struct StreamOutcome {
  StreamTelemetry telemetry;
  int lanes = 0;
  int overflow_lanes = 0;
  int drained_lanes = 0;
  int logical_failures = 0;  ///< among operationally successful lanes
  int failed_lanes = 0;      ///< overflow + undrained + logical

  /// Populated when config.obs.trace: the merged event timeline
  /// (obs::write_chrome_trace serializes it for Perfetto).
  std::shared_ptr<obs::Tracer> tracer;
  /// Populated when config.obs.metrics: the closed-window time series
  /// (MetricsRegistry::write_csv serializes it).
  std::shared_ptr<obs::MetricsRegistry> metrics;
  /// Populated when config.obs.profile: per-stage wall-clock totals
  /// (explicitly non-deterministic; Profiler::write_csv serializes it).
  std::shared_ptr<obs::Profiler> profiler;
  /// Populated when config.obs.slo is non-empty: burn-rate verdicts and
  /// the compliance summary (SloEngine::write_csv / summary_json).
  std::shared_ptr<obs::SloEngine> slo;
};

/// Samples one memory-experiment history per lane (independent per-lane
/// RNG streams derived from config.seed — lane k's stream never depends on
/// lane count or thread count) and packs them into a trace. This is the
/// "record" half: the returned trace fully determines any later run.
SyndromeTrace record_trace(const StreamConfig& config);

/// The "replay" half: streams every lane of `trace` through its own
/// online engine, round-by-round in lane order. Noise parameters come
/// from the trace; service parameters (engine spec, cycle budget, drain
/// bound, threads) from `config`.
StreamOutcome run_stream(const SyndromeTrace& trace,
                         const StreamConfig& config);

/// record_trace + run_stream in one call (fresh-noise convenience).
StreamOutcome run_stream(const StreamConfig& config);

}  // namespace qec
