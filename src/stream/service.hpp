// Streaming decode service: drives many logical-qubit lanes through
// on-line QECOOL engines concurrently — the fleet-scale version of the
// single-trial run_online() loop, modelling a processor's worth of
// syndrome streams arriving every measurement interval (the ~2,500-patch
// question src/sfq/fabric.hpp asks, answered in the time domain).
//
// Determinism contract: every lane is an independent (engine, telemetry)
// pair; the scheduler advances all live lanes round-by-round over the
// PR-1 thread-pool executor and reduces results on the calling thread in
// lane order. The outcome — including the telemetry CSV, byte for byte —
// is a pure function of (trace, StreamConfig minus threads); --threads
// only changes wall-clock. See DESIGN.md section 7.
#pragma once

#include <cstdint>
#include <string>

#include "stream/telemetry.hpp"
#include "stream/trace.hpp"

namespace qec {

struct StreamConfig {
  int lanes = 8;        ///< concurrent logical-qubit streams
  int distance = 5;
  double p = 0.01;      ///< p_data = p_meas (the paper's setting)
  int rounds = 0;       ///< noisy rounds per lane; <= 0 means `distance`
  std::uint64_t seed = 2021;

  /// Lane engine spec, resolved via online_engine_config() — e.g.
  /// "qecool" or "qecool:reg_depth=4,thv=3".
  std::string engine = "qecool";

  /// Decoder cycles granted per measurement interval (fractional budgets
  /// accumulate; <= 0 = unconstrained). See cycles_per_microsecond().
  double cycles_per_round = 0.0;

  /// Clean rounds pushed after the trace ends before giving up on a lane.
  int max_drain_rounds = 1000;

  /// Worker threads (<= 0: all hardware threads). Never changes results.
  int threads = 1;
};

struct StreamOutcome {
  StreamTelemetry telemetry;
  int lanes = 0;
  int overflow_lanes = 0;
  int drained_lanes = 0;
  int logical_failures = 0;  ///< among operationally successful lanes
  int failed_lanes = 0;      ///< overflow + undrained + logical
};

/// Samples one memory-experiment history per lane (independent per-lane
/// RNG streams derived from config.seed — lane k's stream never depends on
/// lane count or thread count) and packs them into a trace. This is the
/// "record" half: the returned trace fully determines any later run.
SyndromeTrace record_trace(const StreamConfig& config);

/// The "replay" half: streams every lane of `trace` through its own
/// online engine, round-by-round in lane order. Noise parameters come
/// from the trace; service parameters (engine spec, cycle budget, drain
/// bound, threads) from `config`.
StreamOutcome run_stream(const SyndromeTrace& trace,
                         const StreamConfig& config);

/// record_trace + run_stream in one call (fresh-noise convenience).
StreamOutcome run_stream(const StreamConfig& config);

}  // namespace qec
