#include "stream/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/csv.hpp"

namespace qec {
namespace {

std::string fmt_double(double value, const char* spec = "%.6g") {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), spec, value);
  return buffer;
}

}  // namespace

double LaneTelemetry::mean_depth() const {
  std::uint64_t rounds = 0, weighted = 0;
  for (std::size_t k = 0; k < depth_hist.size(); ++k) {
    rounds += depth_hist[k];
    weighted += depth_hist[k] * k;
  }
  return rounds ? static_cast<double>(weighted) / static_cast<double>(rounds)
                : 0.0;
}

int LaneTelemetry::max_depth() const {
  for (std::size_t k = depth_hist.size(); k-- > 0;) {
    if (depth_hist[k]) return static_cast<int>(k);
  }
  return 0;
}

void LaneTelemetry::merge(const LaneTelemetry& other) {
  overflow |= other.overflow;
  drained &= other.drained;
  logical_failure |= other.logical_failure;
  rounds_streamed += other.rounds_streamed;
  drain_rounds += other.drain_rounds;
  served_rounds += other.served_rounds;
  starved_rounds += other.starved_rounds;
  paused_rounds += other.paused_rounds;
  pauses += other.pauses;
  resumes += other.resumes;
  popped_layers += other.popped_layers;
  total_cycles += other.total_cycles;
  if (depth_hist.size() < other.depth_hist.size()) {
    depth_hist.resize(other.depth_hist.size(), 0);
  }
  for (std::size_t k = 0; k < other.depth_hist.size(); ++k) {
    depth_hist[k] += other.depth_hist[k];
  }
  layer_cycles.insert(layer_cycles.end(), other.layer_cycles.begin(),
                      other.layer_cycles.end());
  sojourn_rounds.insert(sojourn_rounds.end(), other.sojourn_rounds.begin(),
                        other.sojourn_rounds.end());
  matches.merge(other.matches);
  cache.merge(other.cache);
}

LaneTelemetry StreamTelemetry::aggregate() const {
  LaneTelemetry all;
  all.lane = -1;
  all.drained = !lanes.empty();
  for (const auto& lane : lanes) all.merge(lane);
  return all;
}

int StreamTelemetry::overflow_lanes() const {
  return static_cast<int>(std::count_if(
      lanes.begin(), lanes.end(), [](const auto& l) { return l.overflow; }));
}

int StreamTelemetry::drained_lanes() const {
  return static_cast<int>(std::count_if(
      lanes.begin(), lanes.end(), [](const auto& l) { return l.drained; }));
}

int StreamTelemetry::failed_lanes() const {
  return static_cast<int>(std::count_if(
      lanes.begin(), lanes.end(), [](const auto& l) { return l.failed(); }));
}

int StreamTelemetry::ever_paused_lanes() const {
  return static_cast<int>(std::count_if(
      lanes.begin(), lanes.end(), [](const auto& l) { return l.pauses > 0; }));
}

double StreamTelemetry::pool_utilization() const {
  std::int64_t busy = 0, idle = 0;
  for (const auto& e : engine_stats) {
    busy += e.busy_rounds;
    idle += e.idle_rounds;
  }
  return busy + idle
             ? static_cast<double>(busy) / static_cast<double>(busy + idle)
             : 0.0;
}

double StreamTelemetry::fairness_index() const {
  double sum = 0.0, sum_sq = 0.0;
  for (const auto& lane : lanes) {
    const auto s = static_cast<double>(lane.served_rounds);
    sum += s;
    sum_sq += s * s;
  }
  if (sum_sq <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(lanes.size()) * sum_sq);
}

bool StreamTelemetry::write_csv(const std::string& path) const {
  std::size_t depth_bins = 0;
  for (const auto& lane : lanes) {
    depth_bins = std::max(depth_bins, lane.depth_hist.size());
  }

  std::vector<std::string> header = {
      "lane",         "distance",     "p",
      "engine",       "budget",       "overflow",
      "drained",      "logical_fail", "rounds",
      "drain_rounds", "popped",       "total_cycles",
      "cyc_p50",      "cyc_p95",      "cyc_p99",
      "cyc_max",      "depth_mean",   "depth_max"};
  for (std::size_t k = 0; k < depth_bins; ++k) {
    header.push_back("depth_" + std::to_string(k));
  }
  CsvWriter csv(path, header);
  if (!csv.ok()) return false;

  const auto emit = [&](const LaneTelemetry& t, const std::string& label,
                        std::uint64_t overflow_count,
                        std::uint64_t drained_count,
                        std::uint64_t logical_count) {
    // One sorted copy serves all three percentile columns and the max.
    std::vector<std::uint64_t> sorted = t.layer_cycles;
    std::sort(sorted.begin(), sorted.end());
    const auto pct = [&sorted](double q) -> std::uint64_t {
      if (sorted.empty()) return 0;
      auto rank = static_cast<std::size_t>(
          std::ceil(q / 100.0 * static_cast<double>(sorted.size())));
      rank = std::clamp<std::size_t>(rank, 1, sorted.size());
      return sorted[rank - 1];
    };
    const std::uint64_t cyc_max = sorted.empty() ? 0 : sorted.back();
    std::vector<std::string> row = {
        label,
        std::to_string(distance),
        fmt_double(p),
        engine,
        fmt_double(cycles_per_round),
        std::to_string(overflow_count),
        std::to_string(drained_count),
        std::to_string(logical_count),
        std::to_string(t.rounds_streamed),
        std::to_string(t.drain_rounds),
        std::to_string(t.popped_layers),
        std::to_string(t.total_cycles),
        std::to_string(pct(50)),
        std::to_string(pct(95)),
        std::to_string(pct(99)),
        std::to_string(cyc_max),
        fmt_double(t.mean_depth(), "%.4f"),
        std::to_string(t.max_depth())};
    for (std::size_t k = 0; k < depth_bins; ++k) {
      row.push_back(std::to_string(
          k < t.depth_hist.size() ? t.depth_hist[k] : std::uint64_t{0}));
    }
    csv.add_row(row);
  };

  for (const auto& lane : lanes) {
    emit(lane, std::to_string(lane.lane), lane.overflow ? 1 : 0,
         lane.drained ? 1 : 0, lane.logical_failure ? 1 : 0);
  }
  emit(aggregate(), "all", static_cast<std::uint64_t>(overflow_lanes()),
       static_cast<std::uint64_t>(drained_lanes()),
       static_cast<std::uint64_t>(std::count_if(
           lanes.begin(), lanes.end(),
           [](const auto& l) { return l.logical_failure; })));
  csv.flush();
  return true;
}

bool StreamTelemetry::write_schedule_csv(const std::string& path) const {
  CsvWriter csv(path, {"kind", "id", "policy", "admission", "engines",
                       "lanes", "rounds_active", "rounds_inactive",
                       "paused_rounds", "pauses", "resumes", "cycles",
                       "utilization", "fairness"});
  if (!csv.ok()) return false;

  const std::string pool_engines = std::to_string(engines);
  const std::string pool_lanes = std::to_string(lanes.size());
  for (const auto& e : engine_stats) {
    csv.add_row({"engine", std::to_string(e.engine), policy, admission,
                 pool_engines, pool_lanes, std::to_string(e.busy_rounds),
                 std::to_string(e.idle_rounds), "", "", "",
                 std::to_string(e.cycles), fmt_double(e.utilization(), "%.4f"),
                 ""});
  }
  std::int64_t busy = 0, idle = 0;
  std::uint64_t cycles = 0;
  for (const auto& e : engine_stats) {
    busy += e.busy_rounds;
    idle += e.idle_rounds;
    cycles += e.cycles;
  }
  for (const auto& lane : lanes) {
    csv.add_row({"lane", std::to_string(lane.lane), policy, admission,
                 pool_engines, pool_lanes, std::to_string(lane.served_rounds),
                 std::to_string(lane.starved_rounds),
                 std::to_string(lane.paused_rounds),
                 std::to_string(lane.pauses), std::to_string(lane.resumes),
                 std::to_string(lane.total_cycles), "", ""});
  }
  const auto all = aggregate();
  csv.add_row({"pool", "all", policy, admission, pool_engines, pool_lanes,
               std::to_string(busy), std::to_string(idle),
               std::to_string(all.paused_rounds), std::to_string(all.pauses),
               std::to_string(all.resumes), std::to_string(cycles),
               fmt_double(pool_utilization(), "%.4f"),
               fmt_double(fairness_index(), "%.4f")});
  csv.flush();
  return true;
}

bool StreamTelemetry::write_latency_csv(const std::string& path) const {
  CsvWriter csv(path, {"lane", "distance", "p", "engine", "policy",
                       "admission", "engines", "budget", "pauses",
                       "paused_rounds", "samples", "soj_p50", "soj_p95",
                       "soj_p99", "soj_max", "soj_mean"});
  if (!csv.ok()) return false;

  const std::string pool_engines = std::to_string(engines);
  const auto emit = [&](const LaneTelemetry& t, const std::string& label) {
    // One sorted copy serves the percentiles, the max, and the mean.
    std::vector<std::uint64_t> sorted = t.sojourn_rounds;
    std::sort(sorted.begin(), sorted.end());
    const auto pct = [&sorted](double q) -> std::uint64_t {
      if (sorted.empty()) return 0;
      auto rank = static_cast<std::size_t>(
          std::ceil(q / 100.0 * static_cast<double>(sorted.size())));
      rank = std::clamp<std::size_t>(rank, 1, sorted.size());
      return sorted[rank - 1];
    };
    std::uint64_t sum = 0;
    for (const std::uint64_t s : sorted) sum += s;
    const double mean =
        sorted.empty() ? 0.0
                       : static_cast<double>(sum) /
                             static_cast<double>(sorted.size());
    csv.add_row({label, std::to_string(distance), fmt_double(p), engine,
                 policy, admission, pool_engines,
                 fmt_double(cycles_per_round), std::to_string(t.pauses),
                 std::to_string(t.paused_rounds),
                 std::to_string(sorted.size()), std::to_string(pct(50)),
                 std::to_string(pct(95)), std::to_string(pct(99)),
                 std::to_string(sorted.empty() ? 0 : sorted.back()),
                 fmt_double(mean, "%.4f")});
  };

  for (const auto& lane : lanes) emit(lane, std::to_string(lane.lane));
  emit(aggregate(), "all");
  csv.flush();
  return true;
}

bool StreamTelemetry::write_cache_csv(const std::string& path) const {
  CsvWriter csv(path, {"lane", "distance", "p", "engine", "cache", "hits",
                       "misses", "hit_rate", "installs", "evictions",
                       "zero_rounds", "zero_pushes", "bypasses"});
  if (!csv.ok()) return false;

  const auto emit = [&](const DecodeCacheStats& s, const std::string& label) {
    csv.add_row({label, std::to_string(distance), fmt_double(p), engine,
                 cache, std::to_string(s.hits), std::to_string(s.misses),
                 fmt_double(s.hit_rate(), "%.4f"), std::to_string(s.installs),
                 std::to_string(s.evictions), std::to_string(s.zero_rounds),
                 std::to_string(s.zero_pushes), std::to_string(s.bypasses)});
  };

  for (const auto& lane : lanes) emit(lane.cache, std::to_string(lane.lane));
  emit(aggregate().cache, "all");
  csv.flush();
  return true;
}

bool StreamTelemetry::write_timeline_csv(const std::string& path) const {
  CsvWriter csv(path, {"round", "phase", "live", "served", "starved",
                       "paused", "overflowed", "depth_sum", "depth_mean",
                       "depth_max", "cycles", "watts"});
  if (!csv.ok()) return false;
  const std::string watts_col = fmt_double(watts);
  for (const auto& s : timeline) {
    csv.add_row({std::to_string(s.round), s.drain ? "drain" : "stream",
                 std::to_string(s.live_lanes), std::to_string(s.served_lanes),
                 std::to_string(s.starved_lanes),
                 std::to_string(s.paused_lanes),
                 std::to_string(s.overflowed_lanes),
                 std::to_string(s.depth_sum),
                 fmt_double(s.depth_mean(), "%.4f"),
                 std::to_string(s.depth_max), std::to_string(s.cycles),
                 watts_col});
  }
  csv.flush();
  return true;
}

}  // namespace qec
