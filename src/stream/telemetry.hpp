// Telemetry of the streaming decode service: per-lane and aggregate
// queue-depth histograms, per-layer decode-cycle latency percentiles, and
// overflow/drain counters, emitted as CSV via common/csv.
//
// Definitions (also in DESIGN.md section 7):
//  - queue depth    stored Reg layers observed after each streamed round
//                   (including drain rounds); bin k counts rounds that
//                   ended with k layers resident, k in [0, reg_depth].
//  - layer latency  working cycles the engine attributed to each popped
//                   layer (QecoolEngine::layer_cycles()); p50/p95/p99 are
//                   exact nearest-rank percentiles over those samples.
//  - overflow       the lane pushed a layer into a full Reg queue; the
//                   lane stops immediately (terminal, as in Fig 7).
//  - drained        every Reg bit clear and no stored layers by run end.
//
// Everything here is assembled on the calling thread in lane order, so the
// CSV is byte-identical for any --threads value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace qec {

struct LaneTelemetry {
  int lane = 0;
  bool overflow = false;
  bool drained = false;
  /// Logical scoring (only meaningful when the lane did not fail
  /// operationally; false otherwise, matching run_online_experiment).
  bool logical_failure = false;

  int rounds_streamed = 0;  ///< trace rounds pushed (stops at overflow)
  int drain_rounds = 0;     ///< extra clean rounds pushed
  int popped_layers = 0;
  std::uint64_t total_cycles = 0;

  /// depth_hist[k] = rounds that ended with k stored layers.
  std::vector<std::uint64_t> depth_hist;
  /// Per-popped-layer working cycles (the latency percentile samples).
  std::vector<std::uint64_t> layer_cycles;
  MatchStats matches;

  /// A lane fails when it overflowed, failed to drain, or drained to a
  /// logically wrong correction.
  bool failed() const { return overflow || !drained || logical_failure; }

  double mean_depth() const;
  int max_depth() const;
  std::uint64_t cycle_percentile(double q) const {
    return percentile_nearest_rank(layer_cycles, q);
  }

  /// Folds another lane in (the aggregate row).
  void merge(const LaneTelemetry& other);
};

struct StreamTelemetry {
  // Run context, echoed into every CSV row.
  int distance = 0;
  double p = 0.0;
  double cycles_per_round = 0.0;
  std::uint64_t seed = 0;
  std::string engine = "qecool";

  std::vector<LaneTelemetry> lanes;

  /// All lanes merged, in lane order; counters sum, percentiles recompute
  /// over the pooled samples.
  LaneTelemetry aggregate() const;

  int overflow_lanes() const;
  int drained_lanes() const;
  int failed_lanes() const;

  /// One row per lane plus a final "all" aggregate row, where the
  /// overflow/drained/logical_failure columns hold lane *counts*. Returns
  /// false when the file could not be opened.
  bool write_csv(const std::string& path) const;
};

}  // namespace qec
