// Telemetry of the streaming decode service: per-lane and aggregate
// queue-depth histograms, per-layer decode-cycle latency percentiles,
// overflow/drain counters, and — for the shared engine pool — per-engine
// utilization, per-lane starvation counters, a fairness index, and the
// per-round aggregate queue-depth timeline, emitted as CSV via common/csv.
//
// Definitions (also in DESIGN.md sections 7 and 8):
//  - queue depth    stored Reg layers observed after each streamed round
//                   (including drain rounds); bin k counts rounds that
//                   ended with k layers resident, k in [0, reg_depth].
//  - layer latency  working cycles the engine attributed to each popped
//                   layer (QecoolEngine::layer_cycles()); p50/p95/p99 are
//                   exact nearest-rank percentiles over those samples.
//  - overflow       the lane pushed a layer into a full Reg queue; the
//                   lane stops immediately (terminal, as in Fig 7).
//  - drained        every Reg bit clear and no stored layers by run end.
//  - served round   a live lane was granted a pool engine for the round.
//  - starved round  a live lane entered the round with backlog (stored
//                   layers > 0 before the new layer landed) and was not
//                   granted an engine.
//  - paused round   the lane spent the round frozen by admission control
//                   (admission=pause): no layer was admitted; engine
//                   grants, if any, drained the backlog.
//  - watts          modelled ERSFQ dissipation of the K-engine pool at
//                   the run's clock (stream/admission.hpp); 0 when the
//                   cycle budget is unconstrained (clock unknown).
//
// Everything here is assembled on the calling thread in lane order, so
// every CSV is byte-identical for any --threads value. write_csv keeps the
// pre-pool column set (the dedicated K == N contract); the pool views are
// separate files (write_schedule_csv, write_timeline_csv).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "qecool/decode_cache.hpp"

namespace qec {

struct LaneTelemetry {
  int lane = 0;
  bool overflow = false;
  bool drained = false;
  /// Logical scoring (only meaningful when the lane did not fail
  /// operationally; false otherwise, matching run_online_experiment).
  bool logical_failure = false;

  int rounds_streamed = 0;  ///< trace rounds pushed (stops at overflow)
  int drain_rounds = 0;     ///< extra clean rounds pushed
  int served_rounds = 0;    ///< rounds granted a pool engine
  int starved_rounds = 0;   ///< rounds denied an engine while backlogged
  int paused_rounds = 0;    ///< rounds spent frozen by admission control
  int pauses = 0;           ///< admission pauses (checkpoint() calls)
  int resumes = 0;          ///< admission re-admissions (resume() calls)
  int popped_layers = 0;
  std::uint64_t total_cycles = 0;

  /// depth_hist[k] = rounds that ended with k stored layers.
  std::vector<std::uint64_t> depth_hist;
  /// Per-popped-layer working cycles (the latency percentile samples).
  std::vector<std::uint64_t> layer_cycles;
  /// End-to-end round latency of every decoded trace layer: global pop
  /// round - push round + 1, in pop order, including rounds the lane
  /// spent frozen by admission control (stream/qos.hpp LatencyTracker).
  std::vector<std::uint64_t> sojourn_rounds;
  MatchStats matches;
  /// The lane engine's decode-window memoization counters (its own
  /// lookups, meaningful even when lanes share a cache shard; all zero
  /// except zero_rounds/zero_pushes when the cache is off).
  DecodeCacheStats cache;

  /// A lane fails when it overflowed, failed to drain, or drained to a
  /// logically wrong correction.
  bool failed() const { return overflow || !drained || logical_failure; }

  double mean_depth() const;
  int max_depth() const;
  std::uint64_t cycle_percentile(double q) const {
    return percentile_nearest_rank(layer_cycles, q);
  }
  /// Exact nearest-rank percentile of the end-to-end sojourn samples.
  std::uint64_t sojourn_percentile(double q) const {
    return percentile_nearest_rank(sojourn_rounds, q);
  }

  /// Folds another lane in (the aggregate row).
  void merge(const LaneTelemetry& other);
};

/// Accounting of one pool engine across the run. An engine is busy in a
/// round when its assigned lane actually consumed the grant (the lane was
/// live); it is idle when unassigned or its lane had already finished.
struct EngineTelemetry {
  int engine = 0;
  std::int64_t busy_rounds = 0;
  std::int64_t idle_rounds = 0;
  std::uint64_t cycles = 0;  ///< working cycles consumed through this engine

  double utilization() const {
    const std::int64_t total = busy_rounds + idle_rounds;
    return total ? static_cast<double>(busy_rounds) / static_cast<double>(total)
                 : 0.0;
  }
};

/// One entry per scheduled round: the aggregate queue-depth timeline that
/// makes overflow cascades under bursty load visible, not just end-of-run
/// histograms. Rounds where no lane was active are not recorded.
struct RoundSample {
  std::int64_t round = 0;    ///< global round index (stream + drain)
  bool drain = false;        ///< false: trace round, true: drain round
  int live_lanes = 0;        ///< lanes that took part in the round
  /// Lanes granted an engine: live lanes spending their budget plus
  /// paused lanes draining via admission grants — so in pause mode
  /// served can exceed live (bounded by live + paused).
  int served_lanes = 0;
  int starved_lanes = 0;     ///< live lanes denied an engine while backlogged
  int paused_lanes = 0;      ///< lanes frozen by admission control
  int overflowed_lanes = 0;  ///< cumulative lanes lost to overflow so far
  /// Stored layers across live and paused lanes, post-round.
  std::uint64_t depth_sum = 0;
  int depth_max = 0;
  std::uint64_t cycles = 0;  ///< decode cycles consumed this round (all engines)

  /// Mean queue depth over every lane the sample covers (live + paused).
  double depth_mean() const {
    const int covered = live_lanes + paused_lanes;
    return covered ? static_cast<double>(depth_sum) / covered : 0.0;
  }
};

struct StreamTelemetry {
  // Run context, echoed into every CSV row.
  int distance = 0;
  double p = 0.0;
  double cycles_per_round = 0.0;
  std::uint64_t seed = 0;
  std::string engine = "qecool";
  std::string policy = "dedicated";
  std::string admission = "overflow";  ///< admission spec (PR 4)
  /// Resolved decode-cache spec ("off" or "clock:entries=N,shards=S" with
  /// the shard count the service materialized).
  std::string cache = "off";
  int engines = 0;   ///< pool size K
  double watts = 0.0;     ///< modelled pool dissipation (0: clock unknown)
  double budget_w = 0.0;  ///< configured power budget (<= 0: uncapped)

  std::vector<LaneTelemetry> lanes;
  std::vector<EngineTelemetry> engine_stats;  ///< one per pool engine
  std::vector<RoundSample> timeline;          ///< per-round aggregates

  /// All lanes merged, in lane order; counters sum, percentiles recompute
  /// over the pooled samples.
  LaneTelemetry aggregate() const;

  int overflow_lanes() const;
  int drained_lanes() const;
  int failed_lanes() const;
  /// Lanes the admission controller paused at least once.
  int ever_paused_lanes() const;

  /// Busy fraction of the whole pool: busy engine-rounds over all
  /// accounted engine-rounds (0.0 when nothing was scheduled).
  double pool_utilization() const;

  /// Jain's fairness index over per-lane served rounds:
  /// (sum s_i)^2 / (n * sum s_i^2), 1.0 = perfectly even service, 1/n =
  /// one lane got everything. Defined as 1.0 when nothing was served.
  double fairness_index() const;

  /// One row per lane plus a final "all" aggregate row, where the
  /// overflow/drained/logical_failure columns hold lane *counts*. Returns
  /// false when the file could not be opened. Column set is frozen: a
  /// dedicated K == N run emits the same bytes as the pre-pool service.
  bool write_csv(const std::string& path) const;

  /// Pool scheduling report: one row per engine (kind "engine":
  /// rounds_active = busy, rounds_inactive = idle, utilization), one per
  /// lane (kind "lane": rounds_active = served, rounds_inactive = starved),
  /// and a final "pool" summary row carrying the fairness index.
  bool write_schedule_csv(const std::string& path) const;

  /// The per-round aggregate queue-depth timeline, one row per recorded
  /// round: live/served/starved lane counts, cumulative overflows, depth
  /// sum/mean/max, and cycles consumed.
  bool write_timeline_csv(const std::string& path) const;

  /// End-to-end round-latency report: one row per lane plus a final "all"
  /// aggregate row with exact p50/p95/p99/max/mean sojourn in logical
  /// rounds over the lane's decoded trace layers — paused lanes included
  /// (their samples span the freeze). See docs/streaming.md §3.4.
  bool write_latency_csv(const std::string& path) const;

  /// Decode-cache report: one row per lane plus a final "all" aggregate
  /// row with hit/miss/install/evict counters, the hit rate, and the
  /// all-zero fast-path counters (which advance even with the cache off).
  /// write_csv's column set is frozen, so the cache columns live here.
  bool write_cache_csv(const std::string& path) const;
};

}  // namespace qec
