#include "stream/trace.hpp"

#include <cstring>
#include <fstream>

namespace qec {
namespace {

[[noreturn]] void bad_trace(const std::string& what) {
  throw TraceError("syndrome trace: " + what);
}

std::size_t packed_size(std::size_t num_bits) { return (num_bits + 7) / 8; }

// All header fields cross the file boundary through these two helpers, so
// the on-disk layout is fixed little-endian regardless of host order.
template <typename T>
void put_le(std::vector<std::uint8_t>& out, T value) {
  std::uint64_t raw = 0;
  static_assert(sizeof(T) <= sizeof(raw));
  std::memcpy(&raw, &value, sizeof(T));
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<std::uint8_t>(raw >> (8 * i)));
  }
}

template <typename T>
T get_le(const std::uint8_t* bytes) {
  std::uint64_t raw = 0;
  static_assert(sizeof(T) <= sizeof(raw));
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    raw |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  }
  T value;
  std::memcpy(&value, &raw, sizeof(T));
  return value;
}

constexpr std::size_t kHeaderBytes = 4 * 7 + 8 + 8 + 8;  // see trace.hpp

}  // namespace

std::vector<std::uint8_t> pack_bits(const BitVec& bits) {
  std::vector<std::uint8_t> bytes(packed_size(bits.size()), 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) bytes[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  return bytes;
}

BitVec unpack_bits(const std::uint8_t* bytes, std::size_t num_bits) {
  BitVec bits(num_bits, 0);
  for (std::size_t i = 0; i < num_bits; ++i) {
    bits[i] = static_cast<std::uint8_t>((bytes[i / 8] >> (i % 8)) & 1u);
  }
  return bits;
}

std::uint64_t fnv1a64(const std::uint8_t* bytes, std::size_t size) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

SyndromeTrace::SyndromeTrace(const TraceHeader& header) : header_(header) {
  layers_.assign(static_cast<std::size_t>(header.rounds) * header.lanes,
                 PackedBits(header.checks));
  final_error_.assign(header.lanes, BitVec(header.data_qubits, 0));
}

std::size_t SyndromeTrace::layer_index(int lane, int round) const {
  return static_cast<std::size_t>(round) * header_.lanes +
         static_cast<std::size_t>(lane);
}

const PackedBits& SyndromeTrace::layer(int lane, int round) const {
  return layers_.at(layer_index(lane, round));
}

void SyndromeTrace::set_layer(int lane, int round, PackedBits layer) {
  if (layer.size() != header_.checks) bad_trace("layer size mismatch");
  layers_.at(layer_index(lane, round)) = std::move(layer);
}

void SyndromeTrace::set_layer(int lane, int round, const BitVec& layer) {
  if (layer.size() != header_.checks) bad_trace("layer size mismatch");
  layers_.at(layer_index(lane, round)).assign_bits(layer);
}

const BitVec& SyndromeTrace::final_error(int lane) const {
  return final_error_.at(static_cast<std::size_t>(lane));
}

void SyndromeTrace::set_final_error(int lane, BitVec error) {
  if (error.size() != header_.data_qubits) {
    bad_trace("final error size mismatch");
  }
  final_error_.at(static_cast<std::size_t>(lane)) = std::move(error);
}

void SyndromeTrace::set_lane(int lane, const SyndromeHistory& history) {
  if (history.difference.size() != header_.rounds) {
    bad_trace("lane history has wrong round count");
  }
  for (int t = 0; t < rounds(); ++t) {
    set_layer(lane, t, history.difference[static_cast<std::size_t>(t)]);
  }
  set_final_error(lane, history.final_error);
}

SyndromeHistory SyndromeTrace::history(int lane) const {
  // Cold path: the replay-scoring bridge unpacks to the byte-per-bit
  // SyndromeHistory shape the offline decoders and scorers consume.
  SyndromeHistory h;
  h.difference.reserve(header_.rounds);
  for (int t = 0; t < rounds(); ++t) {
    h.difference.push_back(layer(lane, t).to_bits());
  }
  h.measured = accumulate_differences(h.difference);
  h.final_error = final_error(lane);
  return h;
}

bool SyndromeTrace::operator==(const SyndromeTrace& other) const {
  return header_.distance == other.header_.distance &&
         header_.lanes == other.header_.lanes &&
         header_.rounds == other.header_.rounds &&
         header_.checks == other.header_.checks &&
         header_.data_qubits == other.header_.data_qubits &&
         header_.seed == other.header_.seed &&
         header_.p_data == other.header_.p_data &&
         header_.p_meas == other.header_.p_meas &&
         layers_ == other.layers_ && final_error_ == other.final_error_;
}

void SyndromeTrace::save(const std::string& path) const {
  std::vector<std::uint8_t> payload;
  payload.reserve(layers_.size() * packed_size(header_.checks) +
                  final_error_.size() * packed_size(header_.data_qubits));
  // Layers are already packed in the payload's exact layout (LSB-first,
  // 64-bit words little-endian == LSB-first bytes): emit them directly.
  for (const auto& layer : layers_) layer.append_bytes(payload);
  for (const auto& error : final_error_) {
    const auto packed = pack_bits(error);
    payload.insert(payload.end(), packed.begin(), packed.end());
  }

  std::vector<std::uint8_t> blob;
  blob.reserve(kHeaderBytes + payload.size() + 8);
  put_le<std::uint32_t>(blob, TraceHeader::kMagic);
  put_le<std::uint32_t>(blob, TraceHeader::kVersion);
  put_le<std::uint32_t>(blob, header_.distance);
  put_le<std::uint32_t>(blob, header_.lanes);
  put_le<std::uint32_t>(blob, header_.rounds);
  put_le<std::uint32_t>(blob, header_.checks);
  put_le<std::uint32_t>(blob, header_.data_qubits);
  put_le<std::uint64_t>(blob, header_.seed);
  put_le<double>(blob, header_.p_data);
  put_le<double>(blob, header_.p_meas);
  blob.insert(blob.end(), payload.begin(), payload.end());
  put_le<std::uint64_t>(blob, fnv1a64(payload.data(), payload.size()));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) bad_trace("cannot open '" + path + "' for writing");
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  if (!out) bad_trace("short write to '" + path + "'");
}

std::size_t SyndromeTrace::payload_offset() { return kHeaderBytes; }

std::size_t SyndromeTrace::payload_size(const std::vector<std::uint8_t>& blob) {
  if (blob.size() < kHeaderBytes + 8) bad_trace("blob too short to rewrite");
  if (get_le<std::uint32_t>(blob.data()) != TraceHeader::kMagic) {
    bad_trace("bad magic (not a trace blob)");
  }
  if (get_le<std::uint32_t>(blob.data() + 4) != TraceHeader::kVersion) {
    bad_trace("unsupported version in blob");
  }
  return blob.size() - kHeaderBytes - 8;
}

void SyndromeTrace::rewrite_payload(std::vector<std::uint8_t>& blob) {
  const std::size_t size = payload_size(blob);  // validates magic/version
  const std::uint64_t sum = fnv1a64(blob.data() + kHeaderBytes, size);
  for (std::size_t i = 0; i < 8; ++i) {
    blob[kHeaderBytes + size + i] = static_cast<std::uint8_t>(sum >> (8 * i));
  }
}

SyndromeTrace SyndromeTrace::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) bad_trace("cannot open '" + path + "'");
  std::vector<std::uint8_t> blob((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  if (blob.size() < kHeaderBytes + 8) bad_trace("truncated header");

  const std::uint8_t* p = blob.data();
  const auto magic = get_le<std::uint32_t>(p);
  const auto version = get_le<std::uint32_t>(p + 4);
  if (magic != TraceHeader::kMagic) bad_trace("bad magic (not a trace file)");
  if (version != TraceHeader::kVersion) {
    bad_trace("unsupported version " + std::to_string(version));
  }
  TraceHeader header;
  header.distance = get_le<std::uint32_t>(p + 8);
  header.lanes = get_le<std::uint32_t>(p + 12);
  header.rounds = get_le<std::uint32_t>(p + 16);
  header.checks = get_le<std::uint32_t>(p + 20);
  header.data_qubits = get_le<std::uint32_t>(p + 24);
  header.seed = get_le<std::uint64_t>(p + 28);
  header.p_data = get_le<double>(p + 36);
  header.p_meas = get_le<double>(p + 44);

  const auto d = static_cast<std::uint64_t>(header.distance);
  if (d < 2 || d > 1000) bad_trace("implausible distance");
  if (header.checks != d * (d - 1) ||
      header.data_qubits != d * d + (d - 1) * (d - 1)) {
    bad_trace("check/data counts inconsistent with distance");
  }
  if (header.lanes == 0 || header.rounds == 0) {
    bad_trace("empty lane or round count");
  }

  // Size arithmetic is bounded by the actual file size before any multiply
  // can wrap: a crafted header with huge lanes x rounds must fail the
  // length check here, never reach an allocation.
  const std::uint64_t avail = blob.size() - kHeaderBytes - 8;
  const std::uint64_t layer_bytes = packed_size(header.checks);
  const std::uint64_t error_bytes = packed_size(header.data_qubits);
  const std::uint64_t num_layers =
      static_cast<std::uint64_t>(header.rounds) * header.lanes;
  if (num_layers > avail / layer_bytes ||
      static_cast<std::uint64_t>(header.lanes) * error_bytes >
          avail - num_layers * layer_bytes) {
    bad_trace("payload length mismatch (truncated or padded file)");
  }
  const std::uint64_t payload_bytes =
      num_layers * layer_bytes + header.lanes * error_bytes;
  if (payload_bytes != avail) {
    bad_trace("payload length mismatch (truncated or padded file)");
  }

  const std::uint8_t* payload = p + kHeaderBytes;
  const auto stored_sum = get_le<std::uint64_t>(payload + payload_bytes);
  if (fnv1a64(payload, payload_bytes) != stored_sum) {
    bad_trace("checksum mismatch (corrupt payload)");
  }

  SyndromeTrace trace(header);
  const std::uint8_t* cursor = payload;
  for (std::size_t i = 0; i < num_layers; ++i) {
    // Words assemble straight from the payload bytes — no per-bit loop.
    trace.layers_[i] = PackedBits::from_bytes(cursor, header.checks);
    cursor += layer_bytes;
  }
  for (std::uint32_t lane = 0; lane < header.lanes; ++lane) {
    trace.final_error_[lane] = unpack_bits(cursor, header.data_qubits);
    cursor += error_bytes;
  }
  return trace;
}

}  // namespace qec
