// Versioned binary syndrome trace: the record/replay substrate of the
// streaming decode service. A trace holds, for every lane (logical qubit),
// the full difference-syndrome stream of one memory experiment plus the
// ground-truth final error, so noise sampling and decoding are decoupled —
// any stream can be captured once and replayed bit-exactly through any
// engine configuration, thread count, or future decoder.
//
// On-disk layout (little-endian, version 1):
//   header   magic 'QTRC' (u32) | version u32 | distance u32 | lanes u32 |
//            rounds u32 | checks u32 | data_qubits u32 | seed u64 |
//            p_data f64 | p_meas f64
//   payload  rounds x lanes x ceil(checks/8) bytes      (difference layers,
//            round-major — the order the service streams them in)
//            lanes x ceil(data_qubits/8) bytes          (final errors)
//   footer   FNV-1a 64 checksum of the payload (u64)
//
// Bits pack LSB-first within each byte. load() validates the magic,
// version, dimensional consistency (checks/data_qubits must match the
// planar lattice of `distance`), payload length, and checksum, and throws
// TraceError on any mismatch — a corrupt or truncated file never produces
// undefined behaviour, it produces an exception.
//
// The packed payload layout is also the in-memory layout: difference
// layers are held as PackedBits (64 checks per word, LSB-first — see
// surface_code/packed_bits.hpp), so save() emits each layer's words
// little-endian truncated to ceil(checks/8) bytes and load() assembles
// words straight from the payload bytes. The streamed hot path (layer()
// -> OnlineStepper::push -> engine Reg) never unpacks byte-per-bit; only
// history() — the cold replay-scoring bridge — converts back to BitVec.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "noise/phenomenological.hpp"
#include "surface_code/pauli_frame.hpp"

namespace qec {

/// Malformed, corrupt, truncated, or unwritable trace file.
class TraceError : public std::runtime_error {
 public:
  explicit TraceError(const std::string& what) : std::runtime_error(what) {}
};

struct TraceHeader {
  static constexpr std::uint32_t kMagic = 0x43525451;  // "QTRC", LSB first
  static constexpr std::uint32_t kVersion = 1;

  std::uint32_t distance = 0;
  std::uint32_t lanes = 0;
  std::uint32_t rounds = 0;  ///< stored rounds per lane (incl. final perfect)
  std::uint32_t checks = 0;
  std::uint32_t data_qubits = 0;
  /// Provenance of the recorded noise (informational; replay ignores them).
  std::uint64_t seed = 0;
  double p_data = 0.0;
  double p_meas = 0.0;
};

class SyndromeTrace {
 public:
  SyndromeTrace() = default;

  /// An empty trace with `header.lanes` lanes of `header.rounds` all-zero
  /// layers; fill via set_layer()/set_final_error().
  explicit SyndromeTrace(const TraceHeader& header);

  const TraceHeader& header() const { return header_; }
  int lanes() const { return static_cast<int>(header_.lanes); }
  int rounds() const { return static_cast<int>(header_.rounds); }

  /// Difference layer streamed to `lane` in round `round` (sized checks).
  /// Packed — OnlineStepper::push() consumes it without unpacking.
  const PackedBits& layer(int lane, int round) const;
  void set_layer(int lane, int round, PackedBits layer);
  void set_layer(int lane, int round, const BitVec& layer);

  /// Ground-truth accumulated data error of `lane` (sized data_qubits).
  const BitVec& final_error(int lane) const;
  void set_final_error(int lane, BitVec error);

  /// Copies one recorded lane into the trace (history.difference must hold
  /// exactly rounds() layers).
  void set_lane(int lane, const SyndromeHistory& history);

  /// Reconstructs `lane` as a SyndromeHistory (measured syndromes rebuilt
  /// via accumulate_differences) — what replay hands to the scoring path.
  SyndromeHistory history(int lane) const;

  /// Serializes to `path`; throws TraceError when the file cannot be
  /// written.
  void save(const std::string& path) const;

  /// Deserializes and fully validates `path`; throws TraceError on any
  /// corruption, truncation, or version/dimension mismatch.
  static SyndromeTrace load(const std::string& path);

  /// Byte offset of the payload within a serialized trace blob (the fixed
  /// header size). Exposed for byte-level mutation tooling.
  static std::size_t payload_offset();

  /// Payload byte count of a serialized blob (size minus header and
  /// checksum footer). Throws TraceError when the blob is too short to be
  /// a v1 trace or the magic/version do not match — payload arithmetic on
  /// a non-trace blob is meaningless.
  static std::size_t payload_size(const std::vector<std::uint8_t>& blob);

  /// Re-derives the FNV-1a footer checksum of a serialized trace blob
  /// after in-place payload mutation, so the loader accepts the mutated
  /// bytes. The single entry point every byte-level fuzz mutation goes
  /// through: header and provenance bytes are left untouched, only the
  /// 8 footer bytes are rewritten. Throws TraceError on a blob too short
  /// to be a v1 trace or with a foreign magic/version (same checks as
  /// payload_size). Note this validates nothing else — a mutated header
  /// or a resized payload still gets a consistent checksum and must stand
  /// or fall on load()'s own validation, which is exactly what loader
  /// fuzzing wants.
  static void rewrite_payload(std::vector<std::uint8_t>& blob);

  bool operator==(const SyndromeTrace& other) const;

 private:
  std::size_t layer_index(int lane, int round) const;

  TraceHeader header_;
  std::vector<PackedBits> layers_;   ///< [round][lane], round-major
  std::vector<BitVec> final_error_;  ///< [lane]
};

/// Bit packing used by the trace payload (LSB-first); exposed for tests.
std::vector<std::uint8_t> pack_bits(const BitVec& bits);
BitVec unpack_bits(const std::uint8_t* bytes, std::size_t num_bits);

/// FNV-1a 64 over a byte range; the trace footer checksum.
std::uint64_t fnv1a64(const std::uint8_t* bytes, std::size_t size);

}  // namespace qec
