#include "surface_code/ascii_render.hpp"

#include <sstream>

namespace qec {
namespace {

char data_char(std::span<const std::uint8_t> bits,
               std::span<const std::uint8_t> overlay, int q,
               const RenderOptions& opt) {
  const bool primary =
      !bits.empty() && bits[static_cast<std::size_t>(q)] != 0;
  const bool secondary =
      !overlay.empty() && overlay[static_cast<std::size_t>(q)] != 0;
  if (primary && secondary) return opt.both_mark;
  if (primary) return opt.data_marked;
  if (secondary) return opt.overlay_mark;
  return opt.data_clean;
}

}  // namespace

std::string render_lattice(const PlanarLattice& lattice,
                           std::span<const std::uint8_t> data_bits,
                           std::span<const std::uint8_t> check_bits,
                           std::span<const std::uint8_t> overlay,
                           const RenderOptions& options) {
  std::ostringstream out;
  const int d = lattice.distance();
  for (int r = 0; r < d; ++r) {
    // Check row: | q [c] q [c] q |
    out << '|';
    for (int c = 0; c < d; ++c) {
      out << ' ' << data_char(data_bits, overlay,
                              lattice.horizontal_qubit(r, c), options);
      if (c < d - 1) {
        const bool lit = !check_bits.empty() &&
                         check_bits[static_cast<std::size_t>(
                             lattice.check_index(r, c))] != 0;
        out << ' ' << (lit ? "[*]" : "[ ]");
      }
    }
    out << " |\n";
    // Vertical-qubit row between check rows.
    if (r < d - 1) {
      out << '|';
      for (int c = 0; c < d; ++c) {
        out << "  ";
        if (c < d - 1) {
          out << "  "
              << data_char(data_bits, overlay, lattice.vertical_qubit(r, c),
                           options);
        }
      }
      // Pad to align with the check rows (cosmetic only).
      out << "  |\n";
    }
  }
  return out.str();
}

std::string render_error(const PlanarLattice& lattice, const BitVec& error) {
  return render_lattice(lattice, error, lattice.syndrome(error));
}

std::string render_decode(const PlanarLattice& lattice, const BitVec& error,
                          const BitVec& correction) {
  const BitVec residual = xor_of(error, correction);
  std::string out =
      render_lattice(lattice, error, lattice.syndrome(error), correction);
  out += "legend: x=error o=correction #=both [*]=lit check\n";
  if (!is_zero(lattice.syndrome(residual))) {
    out += "residual: LIVE SYNDROME (invalid decode)\n";
  } else if (lattice.logical_flip(residual)) {
    out += "residual: LOGICAL ERROR\n";
  } else {
    out += "residual: clean (decode succeeded)\n";
  }
  return out;
}

}  // namespace qec
