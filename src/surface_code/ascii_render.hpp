// ASCII rendering of lattice states — errors, syndromes, corrections —
// for debugging, documentation and the visualize_decode example.
//
// Layout mirrors Fig 1/Fig 2 of the paper: checks are squares on a
// d x (d-1) grid, horizontal data qubits sit between them (and against the
// rough left/right boundaries), vertical data qubits between rows.
//
//     |  .  [ ]  .  [*]  .  |        . : clean data qubit
//     |           x         |        x : flagged data qubit (error/corr.)
//     |  .  [ ]  .  [ ]  .  |        [ ]/[*] : check, clean/lit
//
#pragma once

#include <string>

#include "surface_code/pauli_frame.hpp"
#include "surface_code/planar_lattice.hpp"

namespace qec {

struct RenderOptions {
  char data_clean = '.';
  char data_marked = 'x';
  /// Mark for data qubits set in an optional second overlay (e.g. the
  /// correction on top of the error); cells set in both show `both_mark`.
  char overlay_mark = 'o';
  char both_mark = '#';
};

/// Renders one layer: `data_bits` over data qubits (may be empty) and
/// `check_bits` over checks (may be empty). Optional `overlay` is a second
/// data-qubit pattern drawn with overlay_mark / both_mark.
std::string render_lattice(const PlanarLattice& lattice,
                           std::span<const std::uint8_t> data_bits,
                           std::span<const std::uint8_t> check_bits,
                           std::span<const std::uint8_t> overlay = {},
                           const RenderOptions& options = {});

/// Convenience: error + syndrome of that error.
std::string render_error(const PlanarLattice& lattice, const BitVec& error);

/// Convenience: error with correction overlay plus the residual's verdict
/// line ("residual clean/logical error/live syndrome").
std::string render_decode(const PlanarLattice& lattice, const BitVec& error,
                          const BitVec& correction);

}  // namespace qec
