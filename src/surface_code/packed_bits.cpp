#include "surface_code/packed_bits.hpp"

#include <algorithm>

namespace qec {

PackedBits PackedBits::from_bits(std::span<const std::uint8_t> bits) {
  PackedBits packed(bits.size());
  packed.assign_bits(bits);
  return packed;
}

PackedBits PackedBits::from_bytes(const std::uint8_t* bytes,
                                  std::size_t num_bits) {
  PackedBits packed(num_bits);
  const std::size_t num_bytes = (num_bits + 7) / 8;
  for (std::size_t k = 0; k < num_bytes; ++k) {
    packed.words_[k >> 3] |= static_cast<std::uint64_t>(bytes[k])
                             << (8 * (k & 7));
  }
  // A final partial byte may carry stray bits past num_bits (the trace
  // loader validates them separately); keep the tail-zero invariant here.
  if (!packed.words_.empty()) packed.words_.back() &= packed.tail_mask();
  return packed;
}

void PackedBits::clear_all() { std::fill(words_.begin(), words_.end(), 0); }

void PackedBits::assign_bits(std::span<const std::uint8_t> bits) {
  assert(bits.size() == bits_);
  clear_all();
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) set(i);
  }
}

void PackedBits::copy_from(const PackedBits& other) {
  assert(other.bits_ == bits_);
  std::copy(other.words_.begin(), other.words_.end(), words_.begin());
}

bool PackedBits::any() const {
  for (const std::uint64_t w : words_) {
    if (w) return true;
  }
  return false;
}

int PackedBits::popcount() const {
  int count = 0;
  for (const std::uint64_t w : words_) count += qec_popcount64(w);
  return count;
}

bool PackedBits::any_in_range(std::size_t first, std::size_t count) const {
  assert(first + count <= bits_);
  if (count == 0) return false;
  const std::size_t last = first + count - 1;
  std::size_t w = first >> 6;
  const std::size_t w_last = last >> 6;
  // Mask off bits below `first` in the first word and above `last` in the
  // last word; whole words in between are tested unmasked.
  std::uint64_t mask = ~std::uint64_t{0} << (first & 63);
  for (; w <= w_last; ++w, mask = ~std::uint64_t{0}) {
    std::uint64_t bits = words_[w] & mask;
    if (w == w_last) {
      const std::size_t rem = last & 63;
      if (rem != 63) bits &= (std::uint64_t{1} << (rem + 1)) - 1;
    }
    if (bits) return true;
  }
  return false;
}

PackedBits& PackedBits::operator^=(const PackedBits& other) {
  assert(other.bits_ == bits_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= other.words_[w];
  return *this;
}

PackedBits& PackedBits::operator|=(const PackedBits& other) {
  assert(other.bits_ == bits_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  return *this;
}

PackedBits& PackedBits::operator&=(const PackedBits& other) {
  assert(other.bits_ == bits_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  return *this;
}

std::vector<std::uint8_t> PackedBits::to_bits() const {
  std::vector<std::uint8_t> bits(bits_, 0);
  for_each_set([&bits](std::size_t i) { bits[i] = 1; });
  return bits;
}

void PackedBits::append_bytes(std::vector<std::uint8_t>& out) const {
  const std::size_t num_bytes = (bits_ + 7) / 8;
  for (std::size_t k = 0; k < num_bytes; ++k) {
    out.push_back(
        static_cast<std::uint8_t>(words_[k >> 3] >> (8 * (k & 7))));
  }
}

}  // namespace qec
