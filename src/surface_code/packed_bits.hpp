// Word-packed bit vector: the integer-only hot-path representation of
// difference-syndrome layers and Pauli frames. The streamed datapath
// (trace -> lane stepper -> QECOOL engine Reg scans) touches every bit of
// every layer of every lane each round; byte-per-bit vectors spend a load,
// a compare, and a branch per ancilla, where the SFQ hardware the paper
// describes operates on whole registers at once. PackedBits stores 64
// ancillas per word so XOR, occupancy scans, and defect counting become
// one word op per 64 bits (std::popcount / countr_zero where available,
// portable SWAR fallbacks otherwise — see qec_popcount64 below).
//
// Layout contract: bit i lives in word i/64 at bit position i%64 (LSB
// first). Byte k of the little-endian word stream therefore holds bits
// [8k, 8k+8) LSB-first — exactly the QTRC trace payload packing
// (docs/trace_format.md), so a packed layer serializes by emitting its
// words little-endian, truncated to ceil(bits/8) bytes, and deserializes
// by assembling words from bytes. No byte-per-bit unpack on either side.
//
// Invariant: tail bits past size() in the last word are always zero, so
// any()/popcount()/operator== never need masking.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

// Bit-op backends. QEC_PORTABLE_BITOPS (CMake option, CI-exercised) forces
// the portable SWAR paths; otherwise prefer C++20 <bit>, then the GCC/Clang
// builtins. All three backends are branch-free and bit-exact.
#if !defined(QEC_PORTABLE_BITOPS)
#include <bit>
#if defined(__cpp_lib_bitops) && __cpp_lib_bitops >= 201907L
#define QEC_BITOPS_STD 1
#elif defined(__GNUC__) || defined(__clang__)
#define QEC_BITOPS_BUILTIN 1
#endif
#endif

namespace qec {

/// Portable SWAR popcount (Hacker's Delight 5-1). Always available under
/// this name regardless of the configured backend: it is the reference
/// implementation the fuzz bit-ops oracle (src/fuzz/oracle.cpp) compares
/// the selected backend against on every trace word.
inline int qec_popcount64_swar(std::uint64_t x) {
  x = x - ((x >> 1) & 0x5555555555555555ULL);
  x = (x & 0x3333333333333333ULL) + ((x >> 2) & 0x3333333333333333ULL);
  x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0fULL;
  return static_cast<int>((x * 0x0101010101010101ULL) >> 56);
}

/// Portable SWAR count-trailing-zeros of a nonzero word: isolate the lowest
/// set bit and popcount the mask below it. Reference twin of
/// qec_countr_zero64 for the fuzz bit-ops oracle.
inline int qec_countr_zero64_swar(std::uint64_t x) {
  return qec_popcount64_swar((x & (~x + 1)) - 1);
}

/// Population count of one 64-bit word.
inline int qec_popcount64(std::uint64_t x) {
#if defined(QEC_BITOPS_STD)
  return std::popcount(x);
#elif defined(QEC_BITOPS_BUILTIN)
  return __builtin_popcountll(x);
#else
  return qec_popcount64_swar(x);
#endif
}

/// Index of the lowest set bit of a nonzero 64-bit word.
inline int qec_countr_zero64(std::uint64_t x) {
  assert(x != 0);
#if defined(QEC_BITOPS_STD)
  return std::countr_zero(x);
#elif defined(QEC_BITOPS_BUILTIN)
  return __builtin_ctzll(x);
#else
  return qec_countr_zero64_swar(x);
#endif
}

class PackedBits {
 public:
  PackedBits() = default;

  /// `num_bits` zeroed bits.
  explicit PackedBits(std::size_t num_bits)
      : bits_(num_bits), words_(word_count(num_bits), 0) {}

  /// Packs a byte-per-bit vector (any nonzero byte reads as 1).
  static PackedBits from_bits(std::span<const std::uint8_t> bits);

  /// Unpacks ceil(num_bits/8) LSB-first bytes — the QTRC payload layout.
  static PackedBits from_bytes(const std::uint8_t* bytes,
                               std::size_t num_bits);

  std::size_t size() const { return bits_; }
  std::size_t num_words() const { return words_.size(); }
  std::uint64_t word(std::size_t w) const { return words_[w]; }

  /// Whole-word mutators (the decode-cache replay path writes Reg layers
  /// and correction deltas word-at-a-time). The value must respect the
  /// tail-zero invariant — callers pass words read from a same-sized
  /// PackedBits.
  void set_word(std::size_t w, std::uint64_t value) {
    assert(w < words_.size());
    assert(w + 1 < words_.size() || (value & ~tail_mask()) == 0);
    words_[w] = value;
  }
  void xor_word(std::size_t w, std::uint64_t value) {
    assert(w < words_.size());
    assert(w + 1 < words_.size() || (value & ~tail_mask()) == 0);
    words_[w] ^= value;
  }

  bool test(std::size_t i) const {
    assert(i < bits_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i) {
    assert(i < bits_);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
  void reset(std::size_t i) {
    assert(i < bits_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  void flip(std::size_t i) {
    assert(i < bits_);
    words_[i >> 6] ^= std::uint64_t{1} << (i & 63);
  }

  /// All bits -> 0 (size unchanged).
  void clear_all();

  /// Overwrites with a same-sized byte-per-bit vector (no reallocation).
  void assign_bits(std::span<const std::uint8_t> bits);

  /// Word-copy of a same-sized source (no reallocation).
  void copy_from(const PackedBits& other);

  bool any() const;
  bool none() const { return !any(); }
  /// Set entries — the packed weight().
  int popcount() const;
  /// Any set bit in [first, first + count)? The engine's per-row Reg scan.
  bool any_in_range(std::size_t first, std::size_t count) const;

  /// XOR/OR/AND with a same-sized operand, word-parallel.
  PackedBits& operator^=(const PackedBits& other);
  PackedBits& operator|=(const PackedBits& other);
  PackedBits& operator&=(const PackedBits& other);

  friend bool operator==(const PackedBits& a, const PackedBits& b) {
    return a.bits_ == b.bits_ && a.words_ == b.words_;
  }
  friend bool operator!=(const PackedBits& a, const PackedBits& b) {
    return !(a == b);
  }

  /// Byte-per-bit copy (the cold-path bridge back to BitVec consumers).
  std::vector<std::uint8_t> to_bits() const;

  /// Appends ceil(size()/8) LSB-first bytes — the exact QTRC payload
  /// encoding of this layer (inverse of from_bytes).
  void append_bytes(std::vector<std::uint8_t>& out) const;

  /// Calls f(index) for every set bit in ascending order.
  template <typename F>
  void for_each_set(F&& f) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word) {
        const int b = qec_countr_zero64(word);
        f((w << 6) + static_cast<std::size_t>(b));
        word &= word - 1;  // clear lowest set bit
      }
    }
  }

 private:
  static std::size_t word_count(std::size_t bits) { return (bits + 63) / 64; }
  /// Mask selecting the valid bits of the last word (all-ones when the
  /// size is a multiple of 64 or zero).
  std::uint64_t tail_mask() const {
    const std::size_t rem = bits_ & 63;
    return rem ? (std::uint64_t{1} << rem) - 1 : ~std::uint64_t{0};
  }

  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace qec
