#include "surface_code/pauli_frame.hpp"

#include <cassert>

namespace qec {

int weight(std::span<const std::uint8_t> bits) {
  int w = 0;
  for (std::uint8_t b : bits) w += b != 0;
  return w;
}

void xor_into(std::span<const std::uint8_t> in, BitVec& out) {
  assert(in.size() == out.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] ^= in[i];
}

BitVec xor_of(std::span<const std::uint8_t> a,
              std::span<const std::uint8_t> b) {
  assert(a.size() == b.size());
  BitVec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(a[i] ^ b[i]);
  }
  return out;
}

bool is_zero(std::span<const std::uint8_t> bits) {
  for (std::uint8_t b : bits) {
    if (b) return false;
  }
  return true;
}

PackedBits xor_of(const PackedBits& a, const PackedBits& b) {
  assert(a.size() == b.size());
  PackedBits out = a;
  out ^= b;
  return out;
}

}  // namespace qec
