// Small helpers for manipulating binary error / correction vectors
// ("Pauli frames" restricted to one error sector).
//
// Two representations coexist:
//  - BitVec (byte per bit): the legacy, random-access-friendly form the
//    offline decoders (MWPM, union-find, AQEC) index per check.
//  - PackedBits (64 bits per word, surface_code/packed_bits.hpp): the
//    streamed hot-path form — the QECOOL engine's Reg layers, the lane
//    steppers' difference layers, and the engine's accumulated correction
//    all live packed, so per-round XOR/occupancy/weight work is
//    word-parallel. The overloads below keep both forms first-class.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "surface_code/packed_bits.hpp"

namespace qec {

/// One-sector Pauli frame: a binary vector over data qubits.
using BitVec = std::vector<std::uint8_t>;

/// Number of set entries.
int weight(std::span<const std::uint8_t> bits);

/// out ^= in (sizes must match).
void xor_into(std::span<const std::uint8_t> in, BitVec& out);

/// a XOR b as a new vector (sizes must match).
BitVec xor_of(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b);

/// True if every entry is zero.
bool is_zero(std::span<const std::uint8_t> bits);

// Packed (word-parallel) counterparts.

/// Number of set bits — one popcount per 64 ancillas.
inline int weight(const PackedBits& bits) { return bits.popcount(); }

/// out ^= in (sizes must match), word-parallel.
inline void xor_into(const PackedBits& in, PackedBits& out) { out ^= in; }

/// a XOR b as a new packed vector (sizes must match).
PackedBits xor_of(const PackedBits& a, const PackedBits& b);

/// True if every bit is zero — one compare per 64 ancillas.
inline bool is_zero(const PackedBits& bits) { return bits.none(); }

}  // namespace qec
