// Small helpers for manipulating binary error / correction vectors
// ("Pauli frames" restricted to one error sector).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace qec {

/// One-sector Pauli frame: a binary vector over data qubits.
using BitVec = std::vector<std::uint8_t>;

/// Number of set entries.
int weight(std::span<const std::uint8_t> bits);

/// out ^= in (sizes must match).
void xor_into(std::span<const std::uint8_t> in, BitVec& out);

/// a XOR b as a new vector (sizes must match).
BitVec xor_of(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b);

/// True if every entry is zero.
bool is_zero(std::span<const std::uint8_t> bits);

}  // namespace qec
