#include "surface_code/planar_lattice.hpp"

#include <cassert>
#include <cstdlib>
#include <stdexcept>

namespace qec {

Direction opposite(Direction dir) {
  switch (dir) {
    case Direction::North: return Direction::South;
    case Direction::East: return Direction::West;
    case Direction::South: return Direction::North;
    case Direction::West: return Direction::East;
  }
  std::abort();  // unreachable: all enumerators handled
}

PlanarLattice::PlanarLattice(int distance) : d_(distance) {
  if (d_ < 2) throw std::invalid_argument("code distance must be >= 2");
  check_supports_.resize(static_cast<std::size_t>(num_checks()));
  qubit_checks_.resize(static_cast<std::size_t>(num_data()));
  for (int r = 0; r < check_rows(); ++r) {
    for (int c = 0; c < check_cols(); ++c) {
      auto& support = check_supports_[static_cast<std::size_t>(check_index(r, c))];
      support.push_back(horizontal_qubit(r, c));
      support.push_back(horizontal_qubit(r, c + 1));
      if (r > 0) support.push_back(vertical_qubit(r - 1, c));
      if (r < d_ - 1) support.push_back(vertical_qubit(r, c));
      for (int q : support) {
        qubit_checks_[static_cast<std::size_t>(q)].push_back(check_index(r, c));
      }
    }
  }
}

int PlanarLattice::check_index(int row, int col) const {
  assert(row >= 0 && row < check_rows() && col >= 0 && col < check_cols());
  return row * check_cols() + col;
}

CheckCoord PlanarLattice::check_coord(int index) const {
  assert(index >= 0 && index < num_checks());
  return {index / check_cols(), index % check_cols()};
}

int PlanarLattice::horizontal_qubit(int row, int k) const {
  assert(row >= 0 && row < d_ && k >= 0 && k < d_);
  return row * d_ + k;
}

int PlanarLattice::vertical_qubit(int row, int col) const {
  assert(row >= 0 && row < d_ - 1 && col >= 0 && col < d_ - 1);
  return d_ * d_ + row * (d_ - 1) + col;
}

bool PlanarLattice::is_horizontal(int qubit) const {
  return qubit < d_ * d_;
}

std::span<const int> PlanarLattice::check_support(int row, int col) const {
  return check_supports_[static_cast<std::size_t>(check_index(row, col))];
}

std::span<const int> PlanarLattice::qubit_checks(int qubit) const {
  assert(qubit >= 0 && qubit < num_data());
  return qubit_checks_[static_cast<std::size_t>(qubit)];
}

std::vector<std::uint8_t> PlanarLattice::syndrome(
    std::span<const std::uint8_t> error) const {
  assert(static_cast<int>(error.size()) == num_data());
  std::vector<std::uint8_t> out(static_cast<std::size_t>(num_checks()), 0);
  for (int q = 0; q < num_data(); ++q) {
    if (!error[static_cast<std::size_t>(q)]) continue;
    for (int chk : qubit_checks_[static_cast<std::size_t>(q)]) {
      out[static_cast<std::size_t>(chk)] ^= 1;
    }
  }
  return out;
}

void PlanarLattice::apply_flips(std::span<const std::uint8_t> flips,
                                std::vector<std::uint8_t>& error) {
  assert(flips.size() == error.size());
  for (std::size_t i = 0; i < flips.size(); ++i) error[i] ^= flips[i];
}

bool PlanarLattice::logical_flip(std::span<const std::uint8_t> error) const {
  assert(static_cast<int>(error.size()) == num_data());
  // Parity of errors crossing the cut between the left boundary and column 0
  // of the check grid: the horizontal qubits (row, 0). Any left-to-right
  // spanning chain crosses this cut an odd number of times; loops and
  // boundary-to-same-boundary chains cross it evenly.
  int parity = 0;
  for (int r = 0; r < d_; ++r) {
    parity ^= error[static_cast<std::size_t>(horizontal_qubit(r, 0))];
  }
  return parity != 0;
}

std::vector<int> PlanarLattice::l_path(CheckCoord from, CheckCoord to) const {
  std::vector<int> path;
  l_path_into(from, to, path);
  return path;
}

void PlanarLattice::l_path_into(CheckCoord from, CheckCoord to,
                                std::vector<int>& out) const {
  out.clear();
  // Vertical leg: from (from.row, from.col) toward (to.row, from.col).
  const int step_r = from.row < to.row ? 1 : -1;
  for (int r = from.row; r != to.row; r += step_r) {
    const int top = std::min(r, r + step_r);
    out.push_back(vertical_qubit(top, from.col));
  }
  // Horizontal leg along to.row: between columns from.col and to.col the
  // interior edges are horizontal_qubit(to.row, k) for k in (min+1 .. max).
  const int lo = std::min(from.col, to.col);
  const int hi = std::max(from.col, to.col);
  for (int k = lo + 1; k <= hi; ++k) {
    out.push_back(horizontal_qubit(to.row, k));
  }
}

std::vector<int> PlanarLattice::boundary_path(CheckCoord c) const {
  std::vector<int> path;
  boundary_path_into(c, path);
  return path;
}

void PlanarLattice::boundary_path_into(CheckCoord c,
                                       std::vector<int>& out) const {
  out.clear();
  const int left = c.col + 1;
  const int right = d_ - 1 - c.col;
  if (left <= right) {
    for (int k = 0; k <= c.col; ++k) out.push_back(horizontal_qubit(c.row, k));
  } else {
    for (int k = c.col + 1; k < d_; ++k) {
      out.push_back(horizontal_qubit(c.row, k));
    }
  }
}

int PlanarLattice::boundary_distance(int col) const {
  return std::min(col + 1, d_ - 1 - col);
}

}  // namespace qec
