// Geometry of one error sector of a distance-d planar surface code.
//
// The paper (Fig 1, Table V) uses the planar code of Dennis et al. / Fowler
// et al.: data qubits on the edges of a square lattice, with one sector of
// checks detecting Pauli-X errors and the complementary sector detecting
// Pauli-Z errors. Because the two sectors decode independently (paper
// footnote 2), the whole evaluation runs on a single sector, which we model
// explicitly:
//
//   - Checks (ancilla qubits / decoder Units) form a grid of d rows by
//     (d-1) columns — exactly the d x (d-1) Unit array of Section IV-A.
//   - "Horizontal" data qubits sit between horizontally adjacent checks and
//     between edge checks and the left/right (rough) boundaries: d per row,
//     d rows.
//   - "Vertical" data qubits sit between vertically adjacent checks:
//     (d-1) x (d-1).
//   - Total data qubits: d^2 + (d-1)^2.
//
// An X error on a data qubit flips the 1 or 2 adjacent checks. Error chains
// may terminate on the left/right boundaries; the logical-X operator is any
// left-to-right chain, so a residual error is a logical error iff it crosses
// the cut next to the left boundary an odd number of times.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace qec {

/// Direction of travel on the check grid; matches the spike-routing
/// directions in Algorithm 1 (north = decreasing row).
enum class Direction : std::uint8_t { North, East, South, West };

/// Returns the 180-degree rotation, i.e. Algorithm 1's rotate(S) used to
/// derive the syndrome write-back direction from an incoming spike port.
Direction opposite(Direction dir);

/// A check-grid coordinate. Row in [0, d), column in [0, d-1).
struct CheckCoord {
  int row = 0;
  int col = 0;
  friend bool operator==(const CheckCoord&, const CheckCoord&) = default;
};

class PlanarLattice {
 public:
  /// Constructs the sector for odd code distance d >= 3.
  explicit PlanarLattice(int distance);

  int distance() const { return d_; }

  // --- Checks (ancilla qubits / decoder Units) -----------------------------
  int check_rows() const { return d_; }
  int check_cols() const { return d_ - 1; }
  int num_checks() const { return d_ * (d_ - 1); }
  int check_index(int row, int col) const;
  CheckCoord check_coord(int index) const;

  // --- Data qubits ----------------------------------------------------------
  // Horizontal data qubit (row, k): the k-th edge along `row`, k in [0, d).
  // k = 0 touches the left boundary, k = d-1 the right boundary.
  // Vertical data qubit (row, col): between checks (row, col) and
  // (row+1, col); row in [0, d-1), col in [0, d-1).
  int num_data() const { return d_ * d_ + (d_ - 1) * (d_ - 1); }
  int horizontal_qubit(int row, int k) const;
  int vertical_qubit(int row, int col) const;
  bool is_horizontal(int qubit) const;

  /// Data qubits stabilised by check (row, col): 3 on the top/bottom rows,
  /// 4 elsewhere.
  std::span<const int> check_support(int row, int col) const;

  /// Checks adjacent to a data qubit: 1 for boundary-touching horizontal
  /// qubits, 2 otherwise. Entries are check indices.
  std::span<const int> qubit_checks(int qubit) const;

  // --- Syndromes and logical observable --------------------------------------
  /// True syndrome of an error pattern (one byte per data qubit, value 0/1).
  std::vector<std::uint8_t> syndrome(std::span<const std::uint8_t> error) const;

  /// XORs `flips` into `error` (both sized num_data()).
  static void apply_flips(std::span<const std::uint8_t> flips,
                          std::vector<std::uint8_t>& error);

  /// Whether `error` anticommutes with the logical operator of this sector,
  /// i.e. crosses the left boundary cut an odd number of times. Any
  /// homologically trivial pattern (syndrome-free and non-spanning) returns
  /// false.
  bool logical_flip(std::span<const std::uint8_t> error) const;

  /// Shortest-path data qubits between two checks, routed like the spike /
  /// syndrome signals of Algorithm 1: first vertically from `from` to
  /// `to.row`, then horizontally along that row (an "L" path).
  std::vector<int> l_path(CheckCoord from, CheckCoord to) const;
  /// l_path() written into `out` (cleared first) — decoder hot paths
  /// reuse one scratch vector instead of allocating per match.
  void l_path_into(CheckCoord from, CheckCoord to, std::vector<int>& out) const;

  /// Data qubits between check `c` and the nearer of the two rough
  /// boundaries (ties resolved toward the left boundary).
  std::vector<int> boundary_path(CheckCoord c) const;
  /// boundary_path() written into `out` (cleared first).
  void boundary_path_into(CheckCoord c, std::vector<int>& out) const;

  /// Hop distance from a check to the nearest rough boundary:
  /// min(col + 1, d - 1 - col). Equals boundary_path(c).size().
  int boundary_distance(int col) const;

 private:
  int d_;
  std::vector<std::vector<int>> check_supports_;   // [check] -> qubits
  std::vector<std::vector<int>> qubit_checks_;     // [qubit] -> checks
};

}  // namespace qec
