#include "unionfind/uf_decoder.hpp"

#include <cassert>
#include <stdexcept>
#include <vector>

#include "unionfind/union_find.hpp"

namespace qec {
namespace {

// Space-time graph: vertex (t, check) = t * num_checks + check, plus one
// virtual boundary vertex shared by both rough boundaries.
struct Edge {
  int u = 0;
  int v = 0;
  int data_qubit = -1;  // -1 for temporal edges
  std::uint8_t growth = 0;
};

struct Graph {
  int layers = 0;
  int checks = 0;
  int boundary = 0;  // vertex id
  std::vector<Edge> edges;
  std::vector<std::vector<int>> incident;  // vertex -> edge indices

  int vertex(int t, int check) const { return t * checks + check; }
};

Graph build_graph(const PlanarLattice& lattice, int layers) {
  Graph graph;
  graph.layers = layers;
  graph.checks = lattice.num_checks();
  graph.boundary = layers * graph.checks;
  const int rows = lattice.check_rows();
  const int cols = lattice.check_cols();
  const int d = lattice.distance();

  auto add_edge = [&graph](int u, int v, int q) {
    graph.edges.push_back(Edge{u, v, q, 0});
  };

  for (int t = 0; t < layers; ++t) {
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        const int u = graph.vertex(t, lattice.check_index(r, c));
        // Eastward spatial edge.
        if (c + 1 < cols) {
          add_edge(u, graph.vertex(t, lattice.check_index(r, c + 1)),
                   lattice.horizontal_qubit(r, c + 1));
        }
        // Southward spatial edge.
        if (r + 1 < rows) {
          add_edge(u, graph.vertex(t, lattice.check_index(r + 1, c)),
                   lattice.vertical_qubit(r, c));
        }
        // Rough-boundary edges on the first and last columns.
        if (c == 0) add_edge(u, graph.boundary, lattice.horizontal_qubit(r, 0));
        if (c == cols - 1) {
          add_edge(u, graph.boundary, lattice.horizontal_qubit(r, d - 1));
        }
        // Temporal edge to the next layer.
        if (t + 1 < layers) {
          add_edge(u, graph.vertex(t + 1, lattice.check_index(r, c)), -1);
        }
      }
    }
  }
  graph.incident.resize(static_cast<std::size_t>(graph.boundary) + 1);
  for (int e = 0; e < static_cast<int>(graph.edges.size()); ++e) {
    graph.incident[static_cast<std::size_t>(graph.edges[static_cast<std::size_t>(e)].u)]
        .push_back(e);
    graph.incident[static_cast<std::size_t>(graph.edges[static_cast<std::size_t>(e)].v)]
        .push_back(e);
  }
  return graph;
}

}  // namespace

DecodeResult UnionFindDecoder::decode(const PlanarLattice& lattice,
                                      const SyndromeHistory& history) {
  const int layers = history.total_rounds();
  Graph graph = build_graph(lattice, layers);
  const int num_vertices = graph.boundary + 1;

  std::vector<std::uint8_t> defect(static_cast<std::size_t>(num_vertices), 0);
  ClusterSets clusters(num_vertices);
  clusters.mark_boundary(graph.boundary);

  bool any_defect = false;
  for (int t = 0; t < layers; ++t) {
    const auto& layer = history.difference[static_cast<std::size_t>(t)];
    for (int check = 0; check < graph.checks; ++check) {
      if (layer[static_cast<std::size_t>(check)]) {
        const int v = graph.vertex(t, check);
        defect[static_cast<std::size_t>(v)] = 1;
        clusters.toggle_parity(v);
        any_defect = true;
      }
    }
  }

  DecodeResult result;
  result.correction.assign(static_cast<std::size_t>(lattice.num_data()), 0);
  if (!any_defect) return result;

  // --- Stage 1: syndrome validation by cluster growth --------------------
  std::uint64_t work = 0;
  while (true) {
    bool any_active = false;
    // Grow every edge adjacent to an active (odd, non-boundary) cluster by
    // the number of active endpoints, then merge saturated edges.
    std::vector<int> saturated;
    for (int e = 0; e < static_cast<int>(graph.edges.size()); ++e) {
      Edge& edge = graph.edges[static_cast<std::size_t>(e)];
      if (edge.growth >= 2) continue;
      int grow = 0;
      if (clusters.active(edge.u)) ++grow;
      if (clusters.active(edge.v)) ++grow;
      if (grow == 0) continue;
      any_active = true;
      edge.growth = static_cast<std::uint8_t>(
          std::min(2, static_cast<int>(edge.growth) + grow));
      if (edge.growth >= 2) saturated.push_back(e);
      ++work;
    }
    if (!any_active) break;
    for (int e : saturated) {
      const Edge& edge = graph.edges[static_cast<std::size_t>(e)];
      clusters.unite(edge.u, edge.v);
    }
  }

  // --- Stage 2: peeling --------------------------------------------------
  // Build a spanning forest of the erasure (fully grown edges), rooting
  // trees at the boundary vertex first so boundary-connected clusters peel
  // toward the boundary.
  std::vector<int> parent_edge(static_cast<std::size_t>(num_vertices), -1);
  std::vector<std::uint8_t> visited(static_cast<std::size_t>(num_vertices), 0);
  std::vector<int> order;  // BFS order over all trees
  order.reserve(static_cast<std::size_t>(num_vertices));

  auto bfs_from = [&](int root) {
    visited[static_cast<std::size_t>(root)] = 1;
    order.push_back(root);
    for (std::size_t head = order.size() - 1; head < order.size(); ++head) {
      const int u = order[head];
      for (int e : graph.incident[static_cast<std::size_t>(u)]) {
        const Edge& edge = graph.edges[static_cast<std::size_t>(e)];
        if (edge.growth < 2) continue;
        const int v = edge.u == u ? edge.v : edge.u;
        if (visited[static_cast<std::size_t>(v)]) continue;
        visited[static_cast<std::size_t>(v)] = 1;
        parent_edge[static_cast<std::size_t>(v)] = e;
        order.push_back(v);
      }
    }
  };

  bfs_from(graph.boundary);
  for (int v = 0; v < num_vertices; ++v) {
    if (!visited[static_cast<std::size_t>(v)]) bfs_from(v);
  }

  // Peel leaves in reverse BFS order: each defective vertex sends its defect
  // across its parent edge.
  for (std::size_t i = order.size(); i-- > 0;) {
    const int v = order[i];
    const int e = parent_edge[static_cast<std::size_t>(v)];
    if (e < 0) continue;  // tree root
    if (!defect[static_cast<std::size_t>(v)]) continue;
    const Edge& edge = graph.edges[static_cast<std::size_t>(e)];
    const int parent = edge.u == v ? edge.v : edge.u;
    defect[static_cast<std::size_t>(v)] = 0;
    defect[static_cast<std::size_t>(parent)] ^= 1;
    if (edge.data_qubit >= 0) {
      result.correction[static_cast<std::size_t>(edge.data_qubit)] ^= 1;
    }
  }
  defect[static_cast<std::size_t>(graph.boundary)] = 0;  // absorbed
  for (int v = 0; v < num_vertices; ++v) {
    if (defect[static_cast<std::size_t>(v)]) {
      throw std::logic_error("union-find peeling left an unmatched defect");
    }
  }
  result.work = work;
  return result;
}

}  // namespace qec
