// Union-Find decoder [Delfosse & Nickerson 2017] on the space-time lattice —
// the "UF" row of Table IV (p_th 9.9% in 2-D / 2.6% in 3-D, per the paper).
//
// This is the standard two-stage decoder:
//  1. Syndrome validation: every odd cluster of defects grows by half an
//     edge per round in all directions; clusters merge when their grown
//     regions meet, and stop growing once their defect parity is even or
//     they touch a rough boundary.
//  2. Peeling: a spanning forest of each cluster's erasure (the fully grown
//     edges) is peeled leaf-to-root, emitting a correction edge whenever the
//     peeled leaf carries a defect.
//
// Spatial edges map 1:1 to data qubits; temporal edges (measurement errors)
// produce no data correction.
#pragma once

#include "decoder/decoder.hpp"

namespace qec {

class UnionFindDecoder final : public Decoder {
 public:
  std::string name() const override { return "Union-Find"; }

  DecodeResult decode(const PlanarLattice& lattice,
                      const SyndromeHistory& history) override;
};

}  // namespace qec
