#include "unionfind/union_find.hpp"

#include <utility>

namespace qec {

ClusterSets::ClusterSets(int n)
    : parent_(static_cast<std::size_t>(n)),
      size_(static_cast<std::size_t>(n), 1),
      parity_(static_cast<std::size_t>(n), 0),
      boundary_(static_cast<std::size_t>(n), 0) {
  for (int v = 0; v < n; ++v) parent_[static_cast<std::size_t>(v)] = v;
}

int ClusterSets::find(int v) {
  while (parent_[static_cast<std::size_t>(v)] != v) {
    parent_[static_cast<std::size_t>(v)] =
        parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(v)])];
    v = parent_[static_cast<std::size_t>(v)];
  }
  return v;
}

int ClusterSets::unite(int a, int b) {
  int ra = find(a);
  int rb = find(b);
  if (ra == rb) return ra;
  if (size_[static_cast<std::size_t>(ra)] < size_[static_cast<std::size_t>(rb)]) {
    std::swap(ra, rb);
  }
  parent_[static_cast<std::size_t>(rb)] = ra;
  size_[static_cast<std::size_t>(ra)] += size_[static_cast<std::size_t>(rb)];
  parity_[static_cast<std::size_t>(ra)] ^= parity_[static_cast<std::size_t>(rb)];
  boundary_[static_cast<std::size_t>(ra)] |=
      boundary_[static_cast<std::size_t>(rb)];
  return ra;
}

void ClusterSets::toggle_parity(int v) {
  const int r = find(v);
  parity_[static_cast<std::size_t>(r)] ^= 1;
}

void ClusterSets::mark_boundary(int v) {
  const int r = find(v);
  boundary_[static_cast<std::size_t>(r)] = 1;
}

}  // namespace qec
