// Disjoint-set forest with the cluster metadata the Union-Find decoder
// needs: defect parity and boundary contact per cluster root.
#pragma once

#include <cstdint>
#include <vector>

namespace qec {

class ClusterSets {
 public:
  explicit ClusterSets(int n);

  int find(int v);
  /// Unions the clusters of a and b; returns the surviving root.
  int unite(int a, int b);

  /// Flips the defect parity of v's cluster.
  void toggle_parity(int v);
  bool odd(int v) { return parity_[static_cast<std::size_t>(find(v))]; }

  /// Marks v's cluster as touching a (rough) boundary.
  void mark_boundary(int v);
  bool touches_boundary(int v) {
    return boundary_[static_cast<std::size_t>(find(v))];
  }

  /// A cluster is active (keeps growing) while it is odd and not yet
  /// boundary-connected.
  bool active(int v) { return odd(v) && !touches_boundary(v); }

  int size(int v) { return size_[static_cast<std::size_t>(find(v))]; }

 private:
  std::vector<int> parent_;
  std::vector<int> size_;
  std::vector<std::uint8_t> parity_;
  std::vector<std::uint8_t> boundary_;
};

}  // namespace qec
