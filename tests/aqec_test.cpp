// Tests for the AQEC (agreement-based) decoder.
#include "aqec/aqec_decoder.hpp"

#include <gtest/gtest.h>

#include "decoder/decoder.hpp"
#include "noise/phenomenological.hpp"
#include "surface_code/pauli_frame.hpp"

namespace qec {
namespace {

SyndromeHistory history_from_error(const PlanarLattice& lat,
                                   const BitVec& error) {
  SyndromeHistory h;
  h.final_error = error;
  h.measured = {lat.syndrome(error), lat.syndrome(error)};
  h.difference = difference_syndromes(h.measured);
  return h;
}

TEST(AqecAgreement, MutualPairMatchesInOneRound) {
  const PlanarLattice lat(5);
  std::vector<Defect> defects = {{1, 1, 0}, {1, 2, 0}};
  const auto pairs = AqecDecoder::agreement_round(lat, defects, 1);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_FALSE(pairs[0].to_boundary);
  EXPECT_TRUE(defects.empty());
}

TEST(AqecAgreement, NonMutualWaits) {
  const PlanarLattice lat(9);
  // Colinear defects spaced 1,2: middle prefers the nearer neighbour.
  // (2,2)-(2,3) mutual; (2,5) waits (its best is (2,3) at distance 2 > 1).
  std::vector<Defect> defects = {{2, 2, 0}, {2, 3, 0}, {2, 5, 0}};
  const auto pairs = AqecDecoder::agreement_round(lat, defects, 1);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(defects.size(), 1u);
  EXPECT_EQ(defects[0].col, 5);
}

TEST(AqecAgreement, BoundaryAlwaysAgrees) {
  const PlanarLattice lat(5);
  std::vector<Defect> defects = {{0, 0, 0}};  // distance 1 from left edge
  const auto pairs = AqecDecoder::agreement_round(lat, defects, 1);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_TRUE(pairs[0].to_boundary);
}

TEST(AqecAgreement, PartnerPreferredOverBoundaryAtEqualDistance) {
  const PlanarLattice lat(5);
  std::vector<Defect> defects = {{2, 0, 0}, {2, 1, 0}};  // both 1 from a wall
  const auto pairs = AqecDecoder::agreement_round(lat, defects, 1);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_FALSE(pairs[0].to_boundary);
}

TEST(AqecDecoder, CorrectsEverySingleDataError) {
  const PlanarLattice lat(5);
  AqecDecoder dec;
  for (int q = 0; q < lat.num_data(); ++q) {
    BitVec err(static_cast<std::size_t>(lat.num_data()), 0);
    err[static_cast<std::size_t>(q)] = 1;
    const auto h = history_from_error(lat, err);
    const auto r = dec.decode(lat, h);
    ASSERT_TRUE(residual_syndrome_free(lat, h, r)) << "qubit " << q;
    EXPECT_FALSE(logical_failure(lat, h, r)) << "qubit " << q;
  }
}

class AqecRandom : public ::testing::TestWithParam<int> {};

TEST_P(AqecRandom, AlwaysProducesValidCorrection) {
  const int d = GetParam();
  const PlanarLattice lat(d);
  Xoshiro256ss rng(7u * static_cast<unsigned>(d) + 1);
  AqecDecoder dec;
  for (int trial = 0; trial < 50; ++trial) {
    // Code-capacity setting (AQEC's native 2-D regime).
    const auto h = sample_history(lat, {0.05, 0.0, 1}, rng);
    const auto r = dec.decode(lat, h);
    ASSERT_TRUE(residual_syndrome_free(lat, h, r)) << "trial " << trial;
  }
}

TEST_P(AqecRandom, HandlesNoisyMeasurementsToo) {
  // Not AQEC's design point (Table V: not directly applicable to 3-D), but
  // the implementation must still terminate with a valid correction.
  const int d = GetParam();
  const PlanarLattice lat(d);
  Xoshiro256ss rng(11u * static_cast<unsigned>(d) + 3);
  AqecDecoder dec;
  for (int trial = 0; trial < 20; ++trial) {
    const auto h = sample_history(lat, {0.02, 0.02, d}, rng);
    const auto r = dec.decode(lat, h);
    ASSERT_TRUE(residual_syndrome_free(lat, h, r)) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Distances, AqecRandom, ::testing::Values(3, 5, 7),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace qec
