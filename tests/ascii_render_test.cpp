// Tests for the ASCII lattice renderer.
#include "surface_code/ascii_render.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace qec {
namespace {

TEST(AsciiRender, CleanLatticeHasNoMarks) {
  const PlanarLattice lat(3);
  const BitVec none(static_cast<std::size_t>(lat.num_data()), 0);
  const std::string out = render_error(lat, none);
  EXPECT_EQ(out.find('x'), std::string::npos);
  EXPECT_EQ(out.find("[*]"), std::string::npos);
  EXPECT_NE(out.find("[ ]"), std::string::npos);
}

TEST(AsciiRender, ErrorAndSyndromeAppear) {
  const PlanarLattice lat(3);
  BitVec err(static_cast<std::size_t>(lat.num_data()), 0);
  err[static_cast<std::size_t>(lat.horizontal_qubit(1, 1))] = 1;
  const std::string out = render_error(lat, err);
  EXPECT_NE(out.find('x'), std::string::npos);
  EXPECT_NE(out.find("[*]"), std::string::npos);
}

TEST(AsciiRender, LineCountMatchesGeometry) {
  for (int d : {3, 5, 7}) {
    const PlanarLattice lat(d);
    const BitVec none(static_cast<std::size_t>(lat.num_data()), 0);
    const std::string out = render_error(lat, none);
    const long lines = std::count(out.begin(), out.end(), '\n');
    EXPECT_EQ(lines, 2 * d - 1) << "d=" << d;
  }
}

TEST(AsciiRender, OverlayMarksDistinguishErrorAndCorrection) {
  const PlanarLattice lat(3);
  BitVec err(static_cast<std::size_t>(lat.num_data()), 0);
  BitVec corr(static_cast<std::size_t>(lat.num_data()), 0);
  err[static_cast<std::size_t>(lat.horizontal_qubit(0, 0))] = 1;   // x
  corr[static_cast<std::size_t>(lat.horizontal_qubit(2, 2))] = 1;  // o
  err[static_cast<std::size_t>(lat.horizontal_qubit(1, 1))] = 1;   // #
  corr[static_cast<std::size_t>(lat.horizontal_qubit(1, 1))] = 1;
  const std::string out = render_decode(lat, err, corr);
  EXPECT_NE(out.find('x'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(AsciiRender, VerdictLines) {
  const PlanarLattice lat(3);
  BitVec err(static_cast<std::size_t>(lat.num_data()), 0);
  err[static_cast<std::size_t>(lat.horizontal_qubit(1, 1))] = 1;
  // Perfect correction: clean verdict.
  EXPECT_NE(render_decode(lat, err, err).find("decode succeeded"),
            std::string::npos);
  // No correction: live syndrome verdict.
  const BitVec none(static_cast<std::size_t>(lat.num_data()), 0);
  EXPECT_NE(render_decode(lat, err, none).find("LIVE SYNDROME"),
            std::string::npos);
  // Logical operator as "residual": logical error verdict.
  BitVec logical(static_cast<std::size_t>(lat.num_data()), 0);
  for (int k = 0; k < 3; ++k) {
    logical[static_cast<std::size_t>(lat.horizontal_qubit(0, k))] = 1;
  }
  EXPECT_NE(render_decode(lat, logical, none).find("LOGICAL ERROR"),
            std::string::npos);
}

}  // namespace
}  // namespace qec
