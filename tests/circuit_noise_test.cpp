// Tests for the circuit-level noise extension.
#include "noise/circuit_level.hpp"

#include <gtest/gtest.h>

#include "decoder/decoder.hpp"
#include "mwpm/mwpm_decoder.hpp"
#include "qecool/qecool_decoder.hpp"
#include "surface_code/pauli_frame.hpp"

namespace qec {
namespace {

TEST(CircuitNoise, ZeroNoiseIsClean) {
  const PlanarLattice lat(5);
  Xoshiro256ss rng(1);
  const auto h = sample_circuit_history(lat, {0.0, 5, 1.0}, rng);
  EXPECT_TRUE(is_zero(h.final_error));
  EXPECT_EQ(defect_count(h), 0);
  EXPECT_EQ(h.total_rounds(), 6);
}

TEST(CircuitNoise, RejectsZeroRounds) {
  const PlanarLattice lat(3);
  Xoshiro256ss rng(1);
  EXPECT_THROW(sample_circuit_history(lat, {0.01, 0, 1.0}, rng),
               std::invalid_argument);
}

TEST(CircuitNoise, FinalRoundIsPerfect) {
  const PlanarLattice lat(5);
  Xoshiro256ss rng(2);
  const auto h = sample_circuit_history(lat, {0.01, 5, 1.0}, rng);
  EXPECT_EQ(h.measured.back(), lat.syndrome(h.final_error));
}

TEST(CircuitNoise, DifferenceTelescopes) {
  const PlanarLattice lat(5);
  Xoshiro256ss rng(3);
  const auto h = sample_circuit_history(lat, {0.02, 5, 1.0}, rng);
  BitVec acc(static_cast<std::size_t>(lat.num_checks()), 0);
  for (const auto& layer : h.difference) xor_into(layer, acc);
  EXPECT_EQ(acc, h.measured.back());
}

TEST(CircuitNoise, LocationCountsAreConsistent) {
  const PlanarLattice lat(5);
  const auto counts = count_circuit_locations(lat);
  EXPECT_EQ(counts.resets, lat.num_checks());
  EXPECT_EQ(counts.measurements, lat.num_checks());
  // Every check has 2 horizontal CNOTs always, plus vertical ones except on
  // the top/bottom rows: total = sum of support sizes.
  int support_total = 0;
  for (int r = 0; r < lat.check_rows(); ++r) {
    for (int c = 0; c < lat.check_cols(); ++c) {
      support_total += static_cast<int>(lat.check_support(r, c).size());
    }
  }
  EXPECT_EQ(counts.cnots, support_total);
  EXPECT_EQ(counts.idle_slots, 4 * lat.num_data() - counts.cnots);
}

TEST(CircuitNoise, MoreLocationsThanPhenomenological) {
  // At equal p, circuit-level noise must inject more defects than the
  // phenomenological model (more fault locations per round).
  const PlanarLattice lat(7);
  Xoshiro256ss rng_a(4), rng_b(4);
  int circuit_defects = 0, pheno_defects = 0;
  for (int trial = 0; trial < 100; ++trial) {
    circuit_defects +=
        defect_count(sample_circuit_history(lat, {0.005, 7, 1.0}, rng_a));
    pheno_defects +=
        defect_count(sample_history(lat, {0.005, 0.005, 7}, rng_b));
  }
  EXPECT_GT(circuit_defects, pheno_defects);
}

TEST(CircuitNoise, IdleScaleMonotone) {
  const PlanarLattice lat(5);
  Xoshiro256ss rng_a(5), rng_b(5);
  int with_idle = 0, without_idle = 0;
  for (int trial = 0; trial < 200; ++trial) {
    with_idle += weight(
        sample_circuit_history(lat, {0.01, 5, 1.0}, rng_a).final_error);
    without_idle += weight(
        sample_circuit_history(lat, {0.01, 5, 0.0}, rng_b).final_error);
  }
  EXPECT_GT(with_idle, without_idle);
}

class CircuitDecoding : public ::testing::TestWithParam<int> {};

TEST_P(CircuitDecoding, DecodersProduceValidCorrections) {
  const int d = GetParam();
  const PlanarLattice lat(d);
  Xoshiro256ss rng(100u + static_cast<unsigned>(d));
  MwpmDecoder mwpm;
  BatchQecoolDecoder qecool;
  for (int trial = 0; trial < 25; ++trial) {
    const auto h = sample_circuit_history(lat, {0.005, d, 1.0}, rng);
    const auto rm = mwpm.decode(lat, h);
    ASSERT_TRUE(residual_syndrome_free(lat, h, rm)) << "MWPM trial " << trial;
    const auto rq = qecool.decode(lat, h);
    ASSERT_TRUE(residual_syndrome_free(lat, h, rq)) << "QECOOL trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Distances, CircuitDecoding,
                         ::testing::Values(3, 5, 7),
                         ::testing::PrintToStringParamName());

TEST(CircuitNoise, DeterministicGivenRng) {
  const PlanarLattice lat(5);
  Xoshiro256ss a(77), b(77);
  const auto ha = sample_circuit_history(lat, {0.01, 5, 1.0}, a);
  const auto hb = sample_circuit_history(lat, {0.01, 5, 1.0}, b);
  EXPECT_EQ(ha.final_error, hb.final_error);
  EXPECT_EQ(ha.measured, hb.measured);
}

}  // namespace
}  // namespace qec
