// Tests for common utilities: RNG, statistics, CLI parsing, table printing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace qec {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256ss a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256ss a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256ss rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, BernoulliMatchesProbability) {
  Xoshiro256ss rng(11);
  for (double p : {0.0, 0.01, 0.3, 0.5, 1.0}) {
    int hits = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) hits += rng.bernoulli(p);
    EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01) << "p=" << p;
  }
}

TEST(Rng, BelowStaysInRangeAndCoversAll) {
  Xoshiro256ss rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, JumpProducesDecorrelatedStream) {
  Xoshiro256ss a(99);
  Xoshiro256ss b(99);
  b.jump();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Stats, MeanAndVariance) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);  // classic population-variance set
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(Stats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(Stats, MergeEqualsSequential) {
  Xoshiro256ss rng(3);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 10.0;
    whole.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
}

TEST(Stats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Wilson, BracketsPointEstimate) {
  const auto ci = wilson_interval(10, 100);
  EXPECT_LT(ci.lower, 0.1);
  EXPECT_GT(ci.upper, 0.1);
  EXPECT_GT(ci.lower, 0.0);
  EXPECT_LT(ci.upper, 1.0);
}

TEST(Wilson, ZeroSuccessesHasPositiveUpper) {
  const auto ci = wilson_interval(0, 1000);
  EXPECT_DOUBLE_EQ(ci.lower, 0.0);
  EXPECT_GT(ci.upper, 0.0);
  EXPECT_LT(ci.upper, 0.01);
}

TEST(Wilson, AllSuccesses) {
  const auto ci = wilson_interval(50, 50);
  EXPECT_LT(ci.lower, 1.0);
  EXPECT_DOUBLE_EQ(ci.upper, 1.0);
}

TEST(Wilson, NoTrials) {
  const auto ci = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(ci.lower, 0.0);
  EXPECT_DOUBLE_EQ(ci.upper, 1.0);
}

TEST(Wilson, ShrinksWithTrials) {
  const auto narrow = wilson_interval(100, 10000);
  const auto wide = wilson_interval(1, 100);
  EXPECT_LT(narrow.upper - narrow.lower, wide.upper - wide.lower);
}

TEST(Cli, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--d=7", "--p", "0.01", "--verbose", "file"};
  CliArgs args(6, argv);
  EXPECT_EQ(args.get_int_or("d", 0), 7);
  EXPECT_DOUBLE_EQ(args.get_double_or("p", 0.0), 0.01);
  EXPECT_TRUE(args.get_flag("verbose"));
  EXPECT_FALSE(args.get_flag("quiet"));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "file");
}

TEST(Cli, MalformedNumbersReturnNullopt) {
  const char* argv[] = {"prog", "--d=abc"};
  CliArgs args(2, argv);
  EXPECT_FALSE(args.get_int("d").has_value());
  EXPECT_EQ(args.get_int_or("d", 5), 5);
}

TEST(Cli, TrialsOverridePrefersFlag) {
  const char* argv[] = {"prog", "--trials=123"};
  CliArgs args(2, argv);
  EXPECT_EQ(trials_override(args, 999), 123);
}

TEST(Cli, TrialsFallback) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  unsetenv("QECOOL_TRIALS");
  EXPECT_EQ(trials_override(args, 999), 999);
}

TEST(Table, RendersAlignedColumns) {
  TextTable table({"a", "bbbb"});
  table.add_row({"1", "2"});
  table.add_row({"333", "4"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("a    bbbb"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::sci(0.00123, 1), "1.2e-03");
}

}  // namespace
}  // namespace qec
