// Replays the checked-in fuzz corpus (tests/corpus/*.qtrc) through the
// full differential-oracle battery, and runs the harness's mutation-
// testing self-check: a deliberately planted engine bug (behind the
// test-only QecoolConfig::test_fault flag) must be FOUND by the fuzzer and
// shrunk to a small reproducer — otherwise the oracles are decorative.
#include "fuzz/fuzzer.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fuzz/minimize.hpp"
#include "fuzz/oracle.hpp"
#include "qecool/config.hpp"
#include "stream/trace.hpp"

#ifndef QEC_CORPUS_DIR
#error "corpus_replay_test requires the QEC_CORPUS_DIR compile definition"
#endif

namespace qec::fuzz {
namespace {

std::vector<std::string> corpus_paths() { return list_corpus(QEC_CORPUS_DIR); }

OracleConfig replay_config(double cycles) {
  OracleConfig config;
  config.online.cycles_per_round = cycles;
  return config;
}

TEST(CorpusReplay, CorpusIsPresent) {
  EXPECT_GE(corpus_paths().size(), 4u)
      << "the seed corpus (engine_fuzz --save-corpus) must be checked in";
}

TEST(CorpusReplay, EveryEntryPassesAllOracles) {
  // The replay matrix: unconstrained and budgeted service rates. Every
  // arm disagreement — cache off/on, packed/unpacked, checkpoint/resume,
  // invariants, bit-op backends — fails the entry.
  for (const double cycles : {0.0, 4.0}) {
    const ReplayReport report =
        replay_corpus(corpus_paths(), replay_config(cycles), /*threads=*/1);
    EXPECT_EQ(report.failures, 0) << "cycles=" << cycles << "\n"
                                  << report.to_text();
  }
}

TEST(CorpusReplay, ReportBytesIdenticalAcrossThreadCounts) {
  const OracleConfig config = replay_config(4.0);
  const ReplayReport one = replay_corpus(corpus_paths(), config, 1);
  const ReplayReport four = replay_corpus(corpus_paths(), config, 4);
  EXPECT_EQ(one.to_text(), four.to_text());
  EXPECT_EQ(one.failures, four.failures);
}

TEST(CorpusReplay, ReplayDetectsPerturbedEntry) {
  // Self-check of the replay harness itself: mutate one corpus entry's
  // defect pattern (re-signed via rewrite_payload, so the loader accepts
  // it) enough to change the decode outcome... a perturbed trace is a
  // *different valid input*, so every oracle still agrees on it. The
  // detection the harness owes us is for a perturbed ENGINE, which the
  // planted-fault tests below exercise. What replay must catch here is a
  // corpus file whose bytes no longer load (bit rot / bad checksum).
  const auto paths = corpus_paths();
  ASSERT_FALSE(paths.empty());
  const std::string victim = std::string(::testing::TempDir()) + "/rot.qtrc";
  {
    const SyndromeTrace trace = SyndromeTrace::load(paths.front());
    trace.save(victim);
  }
  // Corrupt one payload byte WITHOUT re-signing: replay must flag it.
  {
    FILE* f = std::fopen(victim.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(SyndromeTrace::payload_offset()), SEEK_SET);
    std::fputc(0x5A, f);
    std::fclose(f);
  }
  const ReplayReport report =
      replay_corpus({victim}, replay_config(4.0), /*threads=*/1);
  EXPECT_EQ(report.failures, 1);
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_FALSE(report.entries[0].ok);
  std::remove(victim.c_str());
}

FuzzConfig self_check_config(int fault) {
  FuzzConfig config;
  FuzzSeedSpec spec;
  spec.distance = 5;
  spec.p = 3e-3;
  spec.lanes = 2;
  spec.rounds = 12;
  spec.seed = 2022;
  config.seeds = {spec};
  config.oracle = replay_config(4.0);
  config.oracle.fault = fault;
  config.rng_seed = 9;
  config.max_iterations = 60;
  config.max_failures = 1;
  return config;
}

TEST(FuzzSelfCheck, PlantedCacheReplayBugIsFoundAndShrunk) {
  // kFaultCacheReplay drops the correction delta when a decode window
  // replays from the cache — invisible to everything except the cache
  // differential oracles. The fuzzer must find a violating trace within
  // a bounded run and the minimizer must shrink it hard.
  const FuzzStats stats =
      run_fuzzer(self_check_config(QecoolConfig::kFaultCacheReplay));
  ASSERT_TRUE(stats.found_failure())
      << "the oracle battery cannot see a planted cache-replay bug";
  const FuzzFailure& failure = stats.failures.front();
  EXPECT_LE(failure.minimized.lanes(), 2);
  EXPECT_LE(failure.minimized.rounds(), 8);

  // The reproducer is real: it fails with the fault, passes without.
  OracleConfig with_fault = replay_config(4.0);
  with_fault.fault = QecoolConfig::kFaultCacheReplay;
  EXPECT_FALSE(run_oracles(failure.minimized, with_fault).ok());
  EXPECT_TRUE(run_oracles(failure.minimized, replay_config(4.0)).ok());
}

TEST(FuzzSelfCheck, PlantedCycleAccountingBugIsFound) {
  // kFaultCycleReport makes run() under-report consumed cycles by one —
  // caught by the invariant probe's conservation check (the cycle counter
  // must advance by exactly what run() reports).
  const FuzzStats stats =
      run_fuzzer(self_check_config(QecoolConfig::kFaultCycleReport));
  ASSERT_TRUE(stats.found_failure())
      << "the invariant probe cannot see a planted accounting bug";
  EXPECT_NE(stats.failures.front().summary.find("invariant"),
            std::string::npos)
      << stats.failures.front().summary;
}

TEST(FuzzSelfCheck, CleanSeededRunReportsNoDivergence) {
  // The inverse direction: without a planted fault, a bounded seeded run
  // over the default matrix must be silent — the acceptance bar for the
  // CI fuzz smoke job.
  FuzzConfig config;
  config.oracle = replay_config(4.0);
  config.rng_seed = 1;
  config.max_iterations = 40;
  const FuzzStats stats = run_fuzzer(config);
  EXPECT_FALSE(stats.found_failure())
      << stats.failures.front().summary;
  EXPECT_GT(stats.coverage_cells, 0);
  EXPECT_GT(stats.corpus_size, 0);
}

}  // namespace
}  // namespace qec::fuzz
