// Tests for the CSV writer.
#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace qec {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/qecool_csv_test.csv";
};

TEST_F(CsvTest, HeaderAndRows) {
  {
    CsvWriter csv(path_, {"d", "p", "pl"});
    ASSERT_TRUE(csv.ok());
    csv.add_row(std::vector<double>{5, 0.01, 0.002});
    csv.add_row(std::vector<std::string>{"7", "0.02", "1e-3"});
  }
  EXPECT_EQ(slurp(path_), "d,p,pl\n5,0.01,0.002\n7,0.02,1e-3\n");
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  {
    CsvWriter csv(path_, {"name", "note"});
    csv.add_row(std::vector<std::string>{"a,b", "say \"hi\""});
  }
  EXPECT_EQ(slurp(path_), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST_F(CsvTest, PadsShortRows) {
  {
    CsvWriter csv(path_, {"a", "b", "c"});
    csv.add_row(std::vector<std::string>{"1"});
  }
  EXPECT_EQ(slurp(path_), "a,b,c\n1,,\n");
}

TEST(CsvFailure, UnwritablePathIsNoop) {
  CsvWriter csv("/nonexistent_dir_zz/x.csv", {"a"});
  EXPECT_FALSE(csv.ok());
  csv.add_row(std::vector<std::string>{"1"});  // must not crash
}

}  // namespace
}  // namespace qec
