// Tests for the decode-window memoization cache (qecool/decode_cache):
// unit-level CLOCK eviction and collision safety, bit-exact equivalence
// of cached and uncached decoding across a p x d grid (online and
// streaming), thread-count invariance of the cache CSV, the all-zero
// fast-path counters, and the spec grammar.
#include "qecool/decode_cache.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "decoder/registry.hpp"
#include "noise/phenomenological.hpp"
#include "qecool/engine.hpp"
#include "qecool/online_runner.hpp"
#include "stream/service.hpp"
#include "surface_code/planar_lattice.hpp"

namespace qec {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

DecodeOutcome outcome_with(std::uint64_t consumed) {
  DecodeOutcome outcome;
  outcome.consumed = consumed;
  return outcome;
}

// ---------------------------------------------------------------------------
// Unit level: the bounded CLOCK map itself.

TEST(DecodeCacheUnit, HitRequiresFullKeyMatch) {
  DecodeCache cache(8);
  const std::vector<std::uint64_t> key{1, 2, 3};
  EXPECT_EQ(cache.lookup(42, key), nullptr);
  EXPECT_FALSE(cache.install(42, key, outcome_with(7)));
  const DecodeOutcome* hit = cache.lookup(42, key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->consumed, 7u);
  // Same hash, different key: a collision must read as a miss.
  const std::vector<std::uint64_t> other{1, 2, 4};
  EXPECT_EQ(cache.lookup(42, other), nullptr);
}

TEST(DecodeCacheUnit, CapacityOneEvictsThePreviousKey) {
  DecodeCache cache(1);
  const std::vector<std::uint64_t> k1{1};
  const std::vector<std::uint64_t> k2{2};
  EXPECT_FALSE(cache.install(10, k1, outcome_with(1)));
  EXPECT_NE(cache.lookup(10, k1), nullptr);
  EXPECT_TRUE(cache.install(20, k2, outcome_with(2)));  // displaced k1
  EXPECT_EQ(cache.lookup(10, k1), nullptr);
  ASSERT_NE(cache.lookup(20, k2), nullptr);
  EXPECT_EQ(cache.lookup(20, k2)->consumed, 2u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(DecodeCacheUnit, CapacityZeroDisablesTheCache) {
  DecodeCache cache(0);
  const std::vector<std::uint64_t> key{1};
  EXPECT_FALSE(cache.install(10, key, outcome_with(1)));
  EXPECT_EQ(cache.lookup(10, key), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.capacity(), 0);
}

TEST(DecodeCacheUnit, ClockEvictionKeepsExactlyCapacityEntries) {
  DecodeCache cache(2);
  const std::vector<std::uint64_t> k1{1}, k2{2}, k3{3};
  EXPECT_FALSE(cache.install(10, k1, outcome_with(1)));
  EXPECT_FALSE(cache.install(20, k2, outcome_with(2)));
  EXPECT_TRUE(cache.install(30, k3, outcome_with(3)));  // one of k1/k2 out
  EXPECT_EQ(cache.size(), 2u);
  ASSERT_NE(cache.lookup(30, k3), nullptr);
  const int survivors = (cache.lookup(10, k1) != nullptr ? 1 : 0) +
                        (cache.lookup(20, k2) != nullptr ? 1 : 0);
  EXPECT_EQ(survivors, 1);
}

TEST(DecodeCacheUnit, ForcedCollisionTakeoverStaysCorrect) {
  DecodeCache cache(8);
  cache.set_hash_mask(0);  // every hash becomes 0: maximal collisions
  const std::vector<std::uint64_t> k1{1}, k2{2};
  EXPECT_FALSE(cache.install(10, k1, outcome_with(1)));
  EXPECT_EQ(cache.lookup(20, k2), nullptr);  // collision reads as miss
  EXPECT_TRUE(cache.install(20, k2, outcome_with(2)));  // takeover
  EXPECT_EQ(cache.lookup(10, k1), nullptr);
  ASSERT_NE(cache.lookup(20, k2), nullptr);
  EXPECT_EQ(cache.lookup(20, k2)->consumed, 2u);
}

// ---------------------------------------------------------------------------
// Engine level: cached and uncached runs are bit-identical.

void expect_same_matches(const MatchStats& a, const MatchStats& b) {
  EXPECT_EQ(a.pair_matches, b.pair_matches);
  EXPECT_EQ(a.self_matches, b.self_matches);
  EXPECT_EQ(a.boundary_matches, b.boundary_matches);
  EXPECT_EQ(a.vertical_ge3, b.vertical_ge3);
  EXPECT_EQ(a.vertical_hist, b.vertical_hist);
}

TEST(DecodeCacheEngine, ForcedCollisionsNeverChangeTheDecode) {
  // mask 0 funnels every window into one bucket: almost every probe is a
  // collision, every install a takeover — the worst case for the full-key
  // compare, which must keep outcomes bit-identical to the uncached scan.
  const PlanarLattice lat(7);
  QecoolConfig config;
  config.thv = -1;
  config.reg_depth = 10;
  Xoshiro256ss rng(2718);
  const auto h = sample_history(lat, {0.03, 0.03, 8}, rng);

  QecoolEngine plain(lat, config);
  QecoolEngine cached(lat, config);
  DecodeCache cache(16);
  cache.set_hash_mask(0);
  cached.set_decode_cache(&cache);

  for (const auto& layer : h.difference) {
    plain.push_layer(layer);
    cached.push_layer(layer);
    // Small budgets so runs suspend and resume mid-decode: the cache key
    // must cover the controller position, not just the window bits.
    for (int i = 0; i < 64 && !plain.all_clear(); ++i) plain.run(23);
    for (int i = 0; i < 64 && !cached.all_clear(); ++i) cached.run(23);
  }
  plain.run(QecoolEngine::kUnlimited);
  cached.run(QecoolEngine::kUnlimited);

  EXPECT_EQ(plain.correction(), cached.correction());
  EXPECT_EQ(plain.total_cycles(), cached.total_cycles());
  expect_same_matches(plain.match_stats(), cached.match_stats());
  EXPECT_GT(cached.cache_stats().misses, 0u);
}

TEST(DecodeCacheEngine, RepeatedWindowHitsTheCache) {
  const PlanarLattice lat(5);
  QecoolConfig config;
  config.thv = -1;
  config.reg_depth = 4;
  QecoolEngine engine(lat, config);
  DecodeCache cache(16);
  engine.set_decode_cache(&cache);

  BitVec layer(static_cast<std::size_t>(lat.num_checks()), 0);
  layer[static_cast<std::size_t>(lat.check_index(2, 2))] = 1;
  engine.push_layer(layer);
  engine.run(QecoolEngine::kUnlimited);
  EXPECT_EQ(engine.cache_stats().misses, 1u);
  engine.push_layer(layer);
  engine.run(QecoolEngine::kUnlimited);
  EXPECT_EQ(engine.cache_stats().hits, 1u)
      << "the second identical window must replay from the cache";
}

TEST(DecodeCacheOnline, OnOffIdenticalAcrossPAndD) {
  for (const int d : {3, 5}) {
    const PlanarLattice lat(d);
    for (const double p : {0.0, 0.002, 0.01, 0.04}) {
      Xoshiro256ss rng(static_cast<std::uint64_t>(d * 1000) +
                       static_cast<std::uint64_t>(p * 1e6));
      const auto h = sample_history(lat, {p, p, d + 2}, rng);

      OnlineConfig off;
      off.cycles_per_round = 40;
      off.engine.cache.enabled = false;
      OnlineConfig on = off;
      on.engine.cache.enabled = true;

      const OnlineResult a = run_online(lat, h, off);
      const OnlineResult b = run_online(lat, h, on);
      EXPECT_EQ(a.overflow, b.overflow) << "d=" << d << " p=" << p;
      EXPECT_EQ(a.drained, b.drained) << "d=" << d << " p=" << p;
      EXPECT_EQ(a.correction, b.correction) << "d=" << d << " p=" << p;
      EXPECT_EQ(a.total_cycles, b.total_cycles) << "d=" << d << " p=" << p;
      EXPECT_EQ(a.layer_cycles, b.layer_cycles) << "d=" << d << " p=" << p;
      expect_same_matches(a.matches, b.matches);
    }
  }
}

// ---------------------------------------------------------------------------
// Stream level: CSV byte-equality, shards, threads, fast-path counters.

StreamConfig stream_config() {
  StreamConfig config;
  config.lanes = 8;
  config.distance = 5;
  config.p = 0.02;
  config.rounds = 16;
  config.seed = 11;
  config.cycles_per_round = 300;
  return config;
}

std::string stream_csv(const SyndromeTrace& trace, const StreamConfig& config,
                       const char* name) {
  const auto outcome = run_stream(trace, config);
  const std::string path = temp_path(name);
  EXPECT_TRUE(outcome.telemetry.write_csv(path));
  const std::string text = read_all(path);
  std::remove(path.c_str());
  return text;
}

TEST(DecodeCacheStream, OnOffByteIdenticalTelemetry) {
  StreamConfig config = stream_config();
  const auto trace = record_trace(config);
  config.cache = "off";
  const std::string off = stream_csv(trace, config, "cache_off.csv");
  config.cache = "on";
  const std::string on = stream_csv(trace, config, "cache_on.csv");
  EXPECT_EQ(off, on) << "cache must never change a decode outcome";
}

TEST(DecodeCacheStream, SingleEntrySharedShardStaysExact) {
  // entries=1 with one shard shared by all lanes: constant eviction
  // pressure and maximal cross-lane interleaving — outcomes still exact.
  StreamConfig config = stream_config();
  const auto trace = record_trace(config);
  config.cache = "off";
  const std::string off = stream_csv(trace, config, "cache1_off.csv");
  config.cache = "clock:entries=1,shards=1";
  const std::string tiny = stream_csv(trace, config, "cache1_on.csv");
  EXPECT_EQ(off, tiny);
}

TEST(DecodeCacheStream, ThreadCountNeverChangesCacheCsv) {
  StreamConfig config = stream_config();
  config.lanes = 12;
  config.cache = "clock:entries=64,shards=3";
  const auto trace = record_trace(config);

  const auto run_with = [&](int threads, const char* name, const char* cname) {
    StreamConfig c = config;
    c.threads = threads;
    const auto outcome = run_stream(trace, c);
    const std::string path = temp_path(name);
    const std::string cache_path = temp_path(cname);
    EXPECT_TRUE(outcome.telemetry.write_csv(path));
    EXPECT_TRUE(outcome.telemetry.write_cache_csv(cache_path));
    const auto result =
        std::make_pair(read_all(path), read_all(cache_path));
    std::remove(path.c_str());
    std::remove(cache_path.c_str());
    return result;
  };

  const auto serial = run_with(1, "ct1.csv", "ct1_cache.csv");
  const auto parallel = run_with(4, "ct4.csv", "ct4_cache.csv");
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second)
      << "shard-sequential execution must make hit/miss counters "
         "independent of --threads";
}

TEST(DecodeCacheStream, CleanStreamRidesTheZeroFastPath) {
  StreamConfig config = stream_config();
  config.p = 0.0;
  const auto outcome = run_stream(config);
  const DecodeCacheStats stats = outcome.telemetry.aggregate().cache;
  EXPECT_GT(stats.zero_rounds, 0u);
  EXPECT_GT(stats.zero_pushes, 0u);
  // The all-clear path never probes the cache.
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(outcome.failed_lanes, 0);
}

TEST(DecodeCacheStream, ZeroCountersAdvanceEvenWithCacheOff) {
  StreamConfig config = stream_config();
  config.p = 0.0;
  config.cache = "off";
  const auto outcome = run_stream(config);
  EXPECT_EQ(outcome.telemetry.cache, "off");
  const DecodeCacheStats stats = outcome.telemetry.aggregate().cache;
  EXPECT_GT(stats.zero_rounds, 0u);
  EXPECT_GT(stats.zero_pushes, 0u);
  EXPECT_EQ(stats.installs, 0u);
}

TEST(DecodeCacheStream, TelemetryEchoesTheResolvedSpec) {
  StreamConfig config = stream_config();
  config.cache = "on";
  // An eager engine (no thv aging gate) decodes single-layer windows,
  // which repeat across lanes — so this small run demonstrably hits.
  config.engine = "qecool:thv=-1";
  const auto outcome = run_stream(config);
  // 8 lanes -> one shard under the one-per-256-lanes default.
  EXPECT_EQ(outcome.telemetry.cache,
            "clock:entries=4096,shards=1,max_defects=6");
  EXPECT_GT(outcome.telemetry.aggregate().cache.misses, 0u);
  EXPECT_GT(outcome.telemetry.aggregate().cache.hits, 0u);
}

// ---------------------------------------------------------------------------
// Spec grammar and error messages.

TEST(DecodeCacheSpec, ParsesAndEchoes) {
  const DecodeCacheConfig off = parse_decode_cache_spec("off");
  EXPECT_FALSE(off.enabled);
  EXPECT_EQ(decode_cache_spec_string(off), "off");

  const DecodeCacheConfig on = parse_decode_cache_spec("on");
  EXPECT_TRUE(on.enabled);
  EXPECT_EQ(on.entries, 4096);

  const DecodeCacheConfig tuned =
      parse_decode_cache_spec("clock:entries=128,shards=2,max_defects=9");
  EXPECT_TRUE(tuned.enabled);
  EXPECT_EQ(tuned.entries, 128);
  EXPECT_EQ(tuned.shards, 2);
  EXPECT_EQ(tuned.max_defects, 9);
  EXPECT_EQ(decode_cache_spec_string(tuned),
            "clock:entries=128,shards=2,max_defects=9");

  // max_defects=0 turns the sparsity gate off: every window is probed.
  EXPECT_EQ(parse_decode_cache_spec("on:max_defects=0").max_defects, 0);
}

TEST(DecodeCacheSpec, ShardCountDefaultsOnePer256Lanes) {
  DecodeCacheConfig config;
  EXPECT_EQ(decode_cache_shard_count(config, 8), 1);
  EXPECT_EQ(decode_cache_shard_count(config, 256), 1);
  EXPECT_EQ(decode_cache_shard_count(config, 257), 2);
  EXPECT_EQ(decode_cache_shard_count(config, 4096), 16);
  EXPECT_EQ(decode_cache_shard_count(config, 100000), 16);  // capped
  config.shards = 5;
  EXPECT_EQ(decode_cache_shard_count(config, 4096), 5);
  EXPECT_EQ(decode_cache_shard_count(config, 3), 3);  // never > lanes
}

TEST(DecodeCacheSpec, ErrorsNameTheOptionFamily) {
  EXPECT_THROW(parse_decode_cache_spec("lru"), std::invalid_argument);
  try {
    parse_decode_cache_spec("clock:banana=1");
    FAIL() << "unknown cache option must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("entries, shards"),
              std::string::npos)
        << e.what();
  }
  try {
    online_engine_config("qecool:cache_banana=1");
    FAIL() << "unknown engine option must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("cache options"), std::string::npos)
        << e.what();
  }
}

TEST(DecodeCacheSpec, EngineSpecCarriesCacheOptions) {
  const QecoolConfig config =
      online_engine_config("qecool:cache=clock,cache_entries=32,cache_shards=2");
  EXPECT_TRUE(config.cache.enabled);
  EXPECT_EQ(config.cache.entries, 32);
  EXPECT_EQ(config.cache.shards, 2);
  const QecoolConfig off = online_engine_config("qecool:cache=off");
  EXPECT_FALSE(off.cache.enabled);
}

}  // namespace
}  // namespace qec
