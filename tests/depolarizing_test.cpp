// Tests for correlated two-sector depolarizing noise.
#include "noise/depolarizing.hpp"

#include <gtest/gtest.h>

#include "decoder/decoder.hpp"
#include "mwpm/mwpm_decoder.hpp"
#include "surface_code/pauli_frame.hpp"

namespace qec {
namespace {

TEST(Depolarizing, ZeroNoiseIsClean) {
  const PlanarLattice lat(5);
  Xoshiro256ss rng(1);
  const auto h = sample_depolarizing_history(lat, {0.0, 0.0, 5}, rng);
  EXPECT_TRUE(is_zero(h.x.final_error));
  EXPECT_TRUE(is_zero(h.z.final_error));
  EXPECT_EQ(h.x.total_rounds(), 6);
  EXPECT_EQ(h.z.total_rounds(), 6);
}

TEST(Depolarizing, RejectsZeroRounds) {
  const PlanarLattice lat(3);
  Xoshiro256ss rng(1);
  EXPECT_THROW(sample_depolarizing_history(lat, {0.1, 0.0, 0}, rng),
               std::invalid_argument);
}

TEST(Depolarizing, SectorFlipRateHelper) {
  EXPECT_DOUBLE_EQ(sector_flip_rate(0.03), 0.02);
}

TEST(Depolarizing, MarginalRatesMatchTwoThirds) {
  const PlanarLattice lat(5);
  Xoshiro256ss rng(2);
  const double p = 0.06;
  int x_flips = 0, z_flips = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const auto h = sample_depolarizing_history(lat, {p, 0.0, 1}, rng);
    x_flips += weight(h.x.final_error);
    z_flips += weight(h.z.final_error);
  }
  const double expected = sector_flip_rate(p) * lat.num_data() * trials;
  EXPECT_NEAR(x_flips, expected, 0.05 * expected);
  EXPECT_NEAR(z_flips, expected, 0.05 * expected);
}

TEST(Depolarizing, SectorsAreCorrelatedThroughY) {
  // P(both sectors flip the same qubit in a 1-round run) = p/3 per qubit,
  // much larger than the independent product (2p/3)^2 at small p.
  const PlanarLattice lat(5);
  Xoshiro256ss rng(3);
  const double p = 0.03;
  int joint = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    const auto h = sample_depolarizing_history(lat, {p, 0.0, 1}, rng);
    for (int q = 0; q < lat.num_data(); ++q) {
      joint += h.x.final_error[static_cast<std::size_t>(q)] &
               h.z.final_error[static_cast<std::size_t>(q)];
    }
  }
  const double measured =
      static_cast<double>(joint) / (static_cast<double>(trials) * lat.num_data());
  EXPECT_NEAR(measured, p / 3.0, p / 10.0);
  EXPECT_GT(measured, 2.0 * (2.0 * p / 3.0) * (2.0 * p / 3.0));
}

TEST(Depolarizing, BothSectorsDecodeValidly) {
  const PlanarLattice lat(5);
  Xoshiro256ss rng(4);
  MwpmDecoder dec;
  for (int trial = 0; trial < 30; ++trial) {
    const auto h = sample_depolarizing_history(lat, {0.02, 0.013, 5}, rng);
    const auto rx = dec.decode(lat, h.x);
    const auto rz = dec.decode(lat, h.z);
    ASSERT_TRUE(residual_syndrome_free(lat, h.x, rx));
    ASSERT_TRUE(residual_syndrome_free(lat, h.z, rz));
  }
}

TEST(Depolarizing, HistoriesAreInternallyConsistent) {
  const PlanarLattice lat(7);
  Xoshiro256ss rng(5);
  const auto h = sample_depolarizing_history(lat, {0.02, 0.01, 7}, rng);
  for (const SyndromeHistory* sector : {&h.x, &h.z}) {
    BitVec acc(static_cast<std::size_t>(lat.num_checks()), 0);
    for (const auto& layer : sector->difference) xor_into(layer, acc);
    EXPECT_EQ(acc, sector->measured.back());
    EXPECT_EQ(sector->measured.back(), lat.syndrome(sector->final_error));
  }
}

}  // namespace
}  // namespace qec
