// Remaining edge-path coverage: AQEC adversarial configurations, engine
// thv edge values, Union-Find boundary columns, smallest lattices.
#include <gtest/gtest.h>

#include "aqec/aqec_decoder.hpp"
#include "decoder/decoder.hpp"
#include "noise/phenomenological.hpp"
#include "qecool/engine.hpp"
#include "qecool/online_runner.hpp"
#include "qecool/qecool_decoder.hpp"
#include "surface_code/pauli_frame.hpp"
#include "unionfind/uf_decoder.hpp"

namespace qec {
namespace {

SyndromeHistory history_from_error(const PlanarLattice& lat,
                                   const BitVec& error) {
  SyndromeHistory h;
  h.final_error = error;
  h.measured = {lat.syndrome(error), lat.syndrome(error)};
  h.difference = difference_syndromes(h.measured);
  return h;
}

TEST(AqecAdversarial, ColinearEquidistantChainTerminates) {
  // Defects spaced exactly 2 apart in a row: no mutual pair exists at
  // radius 1; at radius 2 the tie-breaking must still drain everything.
  const PlanarLattice lat(13);
  std::vector<Defect> defects;
  for (int c = 0; c < 12; c += 2) defects.push_back({6, c, 0});
  AqecDecoder dec;
  SyndromeHistory h;
  h.final_error.assign(static_cast<std::size_t>(lat.num_data()), 0);
  BitVec layer(static_cast<std::size_t>(lat.num_checks()), 0);
  for (const auto& defect : defects) {
    layer[static_cast<std::size_t>(lat.check_index(defect.row, defect.col))] = 1;
  }
  // Construct a syndrome-consistent error for this defect pattern: chain
  // segments between consecutive defects.
  h.measured = {layer, layer};
  h.difference = difference_syndromes(h.measured);
  const auto r = dec.decode(lat, h);
  EXPECT_EQ(lat.syndrome(r.correction), layer)
      << "correction must terminate and clear every defect";
}

TEST(AqecAdversarial, DenseGridOfDefects) {
  const PlanarLattice lat(9);
  BitVec layer(static_cast<std::size_t>(lat.num_checks()), 0);
  for (int r = 0; r < 9; r += 2) {
    for (int c = 0; c < 8; c += 2) {
      layer[static_cast<std::size_t>(lat.check_index(r, c))] = 1;
    }
  }
  SyndromeHistory h;
  h.final_error.assign(static_cast<std::size_t>(lat.num_data()), 0);
  h.measured = {layer, layer};
  h.difference = difference_syndromes(h.measured);
  AqecDecoder dec;
  const auto r = dec.decode(lat, h);
  EXPECT_EQ(lat.syndrome(r.correction), layer);
}

TEST(EngineEdge, ThvZeroDecodesImmediately) {
  const PlanarLattice lat(5);
  QecoolConfig config;
  config.thv = 0;  // a layer is eligible as soon as one newer exists... m-b>0
  config.reg_depth = 7;
  QecoolEngine engine(lat, config);
  BitVec layer(static_cast<std::size_t>(lat.num_checks()), 0);
  layer[static_cast<std::size_t>(lat.check_index(2, 1))] = 1;
  layer[static_cast<std::size_t>(lat.check_index(2, 2))] = 1;
  engine.push_layer(layer);
  engine.run(QecoolEngine::kUnlimited);
  // m=1, b=0: m-b=1 > 0, so the layer decodes without waiting.
  EXPECT_TRUE(engine.all_clear());
  EXPECT_EQ(engine.match_stats().pair_matches, 1u);
}

TEST(EngineEdge, SmallestLatticeDecodes) {
  // d=2: a 2x1 check grid, 5 data qubits — degenerate but must work.
  const PlanarLattice lat(2);
  EXPECT_EQ(lat.num_checks(), 2);
  EXPECT_EQ(lat.num_data(), 5);
  BatchQecoolDecoder dec;
  for (int q = 0; q < lat.num_data(); ++q) {
    BitVec err(static_cast<std::size_t>(lat.num_data()), 0);
    err[static_cast<std::size_t>(q)] = 1;
    const auto h = history_from_error(lat, err);
    const auto r = dec.decode(lat, h);
    ASSERT_TRUE(residual_syndrome_free(lat, h, r)) << "qubit " << q;
  }
}

TEST(UnionFindEdge, LoneDefectInEveryColumnReachesBoundary) {
  const PlanarLattice lat(7);
  UnionFindDecoder dec;
  for (int col = 0; col < lat.check_cols(); ++col) {
    BitVec err(static_cast<std::size_t>(lat.num_data()), 0);
    // Boundary-path error producing a single defect at (3, col).
    for (int q : lat.boundary_path({3, col})) {
      err[static_cast<std::size_t>(q)] = 1;
    }
    const auto h = history_from_error(lat, err);
    const auto r = dec.decode(lat, h);
    ASSERT_TRUE(residual_syndrome_free(lat, h, r)) << "col " << col;
    EXPECT_FALSE(logical_failure(lat, h, r)) << "col " << col;
  }
}

TEST(UnionFindEdge, WholeGridLitStillDecodes) {
  // Every check lit (a pathological syndrome): Union-Find must still
  // produce a valid correction via one giant cluster.
  const PlanarLattice lat(5);
  BitVec layer(static_cast<std::size_t>(lat.num_checks()), 1);
  SyndromeHistory h;
  h.final_error.assign(static_cast<std::size_t>(lat.num_data()), 0);
  h.measured = {layer, layer};
  h.difference = difference_syndromes(h.measured);
  UnionFindDecoder dec;
  const auto r = dec.decode(lat, h);
  EXPECT_EQ(lat.syndrome(r.correction), layer);
}

TEST(OnlineEdge, SingleRoundHistory) {
  const PlanarLattice lat(3);
  Xoshiro256ss rng(5);
  const auto h = sample_history(lat, {0.05, 0.05, 1}, rng);
  OnlineConfig config;
  config.cycles_per_round = 2000;
  const auto r = run_online(lat, h, config);
  EXPECT_TRUE(r.drained || r.failed_operationally());
}

}  // namespace
}  // namespace qec
