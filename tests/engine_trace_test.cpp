// Tests for the optional match-event trace of the QECOOL engine.
#include <gtest/gtest.h>

#include "noise/phenomenological.hpp"
#include "qecool/engine.hpp"
#include "surface_code/pauli_frame.hpp"

namespace qec {
namespace {

BitVec layer_with(const PlanarLattice& lat, std::vector<CheckCoord> coords) {
  BitVec layer(static_cast<std::size_t>(lat.num_checks()), 0);
  for (const auto& c : coords) {
    layer[static_cast<std::size_t>(lat.check_index(c.row, c.col))] = 1;
  }
  return layer;
}

TEST(EngineTrace, OffByDefault) {
  const PlanarLattice lat(5);
  QecoolConfig config;
  config.thv = -1;
  config.reg_depth = 1;
  QecoolEngine engine(lat, config);
  engine.push_layer(layer_with(lat, {{2, 1}, {2, 2}}));
  engine.run(QecoolEngine::kUnlimited);
  EXPECT_TRUE(engine.trace().empty());
  EXPECT_EQ(engine.match_stats().total(), 1u);
}

TEST(EngineTrace, RecordsEveryMatch) {
  const PlanarLattice lat(5);
  QecoolConfig config;
  config.thv = -1;
  config.reg_depth = 2;
  config.record_trace = true;
  QecoolEngine engine(lat, config);
  engine.push_layer(layer_with(lat, {{2, 1}, {2, 2}, {0, 0}}));
  engine.push_layer(layer_with(lat, {{0, 0}}));
  engine.run(QecoolEngine::kUnlimited);
  ASSERT_EQ(engine.trace().size(), engine.match_stats().total());
  // Events must be cycle-ordered and internally consistent.
  std::uint64_t prev_cycle = 0;
  for (const auto& event : engine.trace()) {
    EXPECT_GE(event.cycle, prev_cycle);
    prev_cycle = event.cycle;
    EXPECT_GE(event.hop_limit, 1);
    EXPECT_GE(event.source_depth, event.base_depth);
    if (event.kind != MatchEvent::Kind::Pair) {
      EXPECT_EQ(event.source_row, event.sink_row);
      EXPECT_EQ(event.source_col, event.sink_col);
    }
  }
}

TEST(EngineTrace, SelfMatchRecordsDepths) {
  const PlanarLattice lat(5);
  QecoolConfig config;
  config.thv = -1;
  config.reg_depth = 2;
  config.record_trace = true;
  QecoolEngine engine(lat, config);
  engine.push_layer(layer_with(lat, {{1, 2}}));
  engine.push_layer(layer_with(lat, {{1, 2}}));
  engine.run(QecoolEngine::kUnlimited);
  ASSERT_EQ(engine.trace().size(), 1u);
  const auto& event = engine.trace()[0];
  EXPECT_EQ(event.kind, MatchEvent::Kind::Self);
  EXPECT_EQ(event.base_depth, 0);
  EXPECT_EQ(event.source_depth, 1);
}

TEST(EngineTrace, TraceKindsMatchStats) {
  const PlanarLattice lat(7);
  Xoshiro256ss rng(616);
  QecoolConfig config;
  config.thv = -1;
  config.record_trace = true;
  for (int trial = 0; trial < 10; ++trial) {
    const auto h = sample_history(lat, {0.03, 0.03, 7}, rng);
    QecoolConfig c = config;
    c.reg_depth = h.total_rounds();
    QecoolEngine engine(lat, c);
    for (const auto& layer : h.difference) engine.push_layer(layer);
    engine.run(QecoolEngine::kUnlimited);
    std::uint64_t pairs = 0, selfs = 0, boundaries = 0;
    for (const auto& event : engine.trace()) {
      switch (event.kind) {
        case MatchEvent::Kind::Pair: ++pairs; break;
        case MatchEvent::Kind::Self: ++selfs; break;
        case MatchEvent::Kind::Boundary: ++boundaries; break;
      }
    }
    EXPECT_EQ(pairs, engine.match_stats().pair_matches);
    EXPECT_EQ(selfs, engine.match_stats().self_matches);
    EXPECT_EQ(boundaries, engine.match_stats().boundary_matches);
  }
}

}  // namespace
}  // namespace qec
