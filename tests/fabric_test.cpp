// Tests for the system-level decoder fabric model.
#include "sfq/fabric.hpp"

#include <gtest/gtest.h>

#include "sfq/power.hpp"
#include "sfq/unit_netlist.hpp"

namespace qec {
namespace {

TEST(Fabric, SingleLogicalQubitBom) {
  const auto r = build_fabric({1, 9, 2e9});
  EXPECT_EQ(r.units, 144);
  EXPECT_EQ(r.controllers, 2);
  EXPECT_EQ(r.row_masters, 18);
  EXPECT_EQ(r.boundary_units, 4);
  EXPECT_EQ(r.total_jjs, 144LL * 3177);
  EXPECT_NEAR(r.area_mm2, 144 * 1.2744, 0.01);
  EXPECT_NEAR(r.ersfq_power_w * 1e6, 144 * 2.78, 1.0);
  EXPECT_EQ(r.physical_data_qubits, 81 + 64);
  EXPECT_EQ(r.physical_ancilla_qubits, 144);
}

TEST(Fabric, ScalesLinearlyInLogicalQubits) {
  const auto one = build_fabric({1, 9, 2e9});
  const auto many = build_fabric({2498, 9, 2e9});
  EXPECT_EQ(many.units, 2498 * one.units);
  EXPECT_NEAR(many.ersfq_power_w, 2498 * one.ersfq_power_w, 1e-9);
  // The paper's headline configuration just fits 1 W.
  EXPECT_TRUE(many.fits_power(kFourKelvinBudgetW));
  const auto too_many = build_fabric({2499, 9, 2e9});
  EXPECT_FALSE(too_many.fits_power(kFourKelvinBudgetW));
}

TEST(Fabric, RsfqIsInfeasibleAtScale) {
  const auto r = build_fabric({2498, 9, 2e9});
  EXPECT_GT(r.rsfq_power_w, 100.0) << "RSFQ static power blows the budget";
}

TEST(Fabric, MaxLogicalQubitsMatchesTableV) {
  EXPECT_EQ(max_logical_qubits(9, 2e9, 1.0), 2498);
}

TEST(Fabric, AreaIsRoomScaleButTractable) {
  // ~2500 qubits x 144 units x 1.27 mm^2 ~ 0.46 m^2 of SFQ — large but
  // finite; the model exposes it for feasibility discussions.
  const auto r = build_fabric({2498, 9, 2e9});
  EXPECT_GT(r.area_mm2, 4e5);
  EXPECT_LT(r.area_mm2, 6e5);
}

TEST(Fabric, HigherDistanceCostsMore) {
  const auto d9 = build_fabric({1, 9, 2e9});
  const auto d13 = build_fabric({1, 13, 2e9});
  EXPECT_GT(d13.units, d9.units);
  EXPECT_GT(d13.ersfq_power_w, d9.ersfq_power_w);
  EXPECT_GT(d13.physical_data_qubits, d9.physical_data_qubits);
}

}  // namespace
}  // namespace qec
