// Tests for the delta-debugging trace minimizer and the fuzz mutation
// operators (src/fuzz/minimize.hpp, src/fuzz/mutate.hpp): seeded synthetic
// failures must shrink to a known minimal trace, deterministically, and
// every intermediate or final artifact must stay loader-valid.
#include "fuzz/minimize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "fuzz/mutate.hpp"
#include "stream/service.hpp"
#include "stream/trace.hpp"

namespace qec::fuzz {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

SyndromeTrace noisy_trace(int lanes, int rounds, std::uint64_t seed) {
  StreamConfig config;
  config.lanes = lanes;
  config.distance = 5;
  config.p = 0.02;
  config.rounds = rounds;  // recorded trace carries rounds + 1 layers
  config.seed = seed;
  return record_trace(config);
}

int defect_count(const SyndromeTrace& trace) {
  int count = 0;
  for (int lane = 0; lane < trace.lanes(); ++lane) {
    for (int round = 0; round < trace.rounds(); ++round) {
      count += trace.layer(lane, round).popcount();
    }
  }
  return count;
}

TEST(FuzzMinimize, KeepLanesExtractsSelectedLanes) {
  const auto trace = noisy_trace(4, 6, 11);
  const auto kept = keep_lanes(trace, {3, 1});
  ASSERT_EQ(kept.lanes(), 2);
  EXPECT_EQ(kept.rounds(), trace.rounds());
  for (int round = 0; round < trace.rounds(); ++round) {
    EXPECT_EQ(kept.layer(0, round), trace.layer(3, round));
    EXPECT_EQ(kept.layer(1, round), trace.layer(1, round));
  }
  EXPECT_EQ(kept.final_error(0), trace.final_error(3));
  EXPECT_EQ(kept.final_error(1), trace.final_error(1));
}

TEST(FuzzMinimize, TruncateRoundsKeepsPrefix) {
  const auto trace = noisy_trace(2, 6, 12);
  const auto cut = truncate_rounds(trace, 3);
  ASSERT_EQ(cut.rounds(), 3);
  EXPECT_EQ(cut.lanes(), trace.lanes());
  for (int lane = 0; lane < trace.lanes(); ++lane) {
    for (int round = 0; round < 3; ++round) {
      EXPECT_EQ(cut.layer(lane, round), trace.layer(lane, round));
    }
  }
}

TEST(FuzzMinimize, SyntheticPredicateShrinksToKnownMinimum) {
  // Predicate: some lane carries a defect in a round >= k. The input is a
  // noise-free trace with three planted defects, only one of which (lane
  // 1, round k+2) satisfies the predicate — so the unique 1-minimal
  // witness is one lane, k+3 rounds, that single defect, and the
  // minimizer must land exactly there.
  const int k = 6;
  StreamConfig zero;
  zero.lanes = 3;
  zero.distance = 5;
  zero.p = 0.0;
  zero.rounds = 10;
  zero.seed = 21;
  auto failing = record_trace(zero);
  const auto plant = [&failing](int lane, int round, std::size_t check) {
    PackedBits layer = failing.layer(lane, round);
    layer.set(check);
    failing.set_layer(lane, round, std::move(layer));
  };
  plant(0, 2, 3);       // decoy before the window
  plant(1, k + 2, 7);   // the witness
  plant(2, 0, 11);      // decoy in another lane
  const FailurePredicate predicate = [&](const SyndromeTrace& t) {
    for (int lane = 0; lane < t.lanes(); ++lane) {
      for (int round = k; round < t.rounds(); ++round) {
        if (t.layer(lane, round).any()) return true;
      }
    }
    return false;
  };
  ASSERT_TRUE(predicate(failing));

  const MinimizeResult result = minimize_trace(failing, predicate);
  EXPECT_TRUE(predicate(result.trace));
  EXPECT_EQ(result.trace.lanes(), 1);
  EXPECT_EQ(result.trace.rounds(), k + 3);
  EXPECT_EQ(defect_count(result.trace), 1);
  EXPECT_TRUE(result.trace.layer(0, k + 2).test(7));
  EXPECT_GT(result.predicate_calls, 0);

  // Ground truth is gone too: the final-error zeroing pass runs last.
  for (int lane = 0; lane < result.trace.lanes(); ++lane) {
    for (const auto bit : result.trace.final_error(lane)) {
      EXPECT_EQ(bit, 0);
    }
  }
}

TEST(FuzzMinimize, DeterministicForFixedSeed) {
  // The minimizer is RNG-free and the mutator is seeded, so the whole
  // input -> shrink pipeline is a pure function of the seed.
  const auto run_once = [] {
    auto trace = noisy_trace(2, 8, 31);
    TraceMutator mutator(/*seed=*/77);
    for (int i = 0; i < 10; ++i) mutator.mutate(trace);
    const FailurePredicate predicate = [](const SyndromeTrace& t) {
      for (int lane = 0; lane < t.lanes(); ++lane) {
        for (int round = 4; round < t.rounds(); ++round) {
          if (t.layer(lane, round).any()) return true;
        }
      }
      return false;
    };
    if (!predicate(trace)) return trace;  // mutation erased every defect
    return minimize_trace(trace, predicate).trace;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_TRUE(a == b);
}

TEST(FuzzMinimize, MinimizedTraceStaysLoaderValid) {
  auto failing = noisy_trace(2, 8, 41);
  const FailurePredicate predicate = [](const SyndromeTrace& t) {
    return t.layer(0, 0).size() > 0;  // always true: shrinks maximally
  };
  const MinimizeResult result = minimize_trace(failing, predicate);
  // Maximal shrink: one lane, one round, no defects — still a legal trace.
  EXPECT_EQ(result.trace.lanes(), 1);
  EXPECT_EQ(result.trace.rounds(), 1);
  EXPECT_EQ(defect_count(result.trace), 0);

  const std::string path = temp_path("minimized.qtrc");
  result.trace.save(path);
  const auto reloaded = SyndromeTrace::load(path);
  EXPECT_TRUE(reloaded == result.trace);
  std::remove(path.c_str());
}

TEST(FuzzMutate, MutationsPreserveLoaderValidity) {
  // Every mutation operator edits layers through set_layer, so any mutant
  // must serialize to a file the hardened loader accepts verbatim.
  auto trace = noisy_trace(2, 6, 51);
  TraceMutator mutator(/*seed=*/3);
  const std::string path = temp_path("mutant.qtrc");
  for (int i = 0; i < 40; ++i) {
    mutator.mutate(trace);
  }
  const auto donor = noisy_trace(2, 6, 52);
  mutator.splice(trace, donor);
  trace.save(path);
  const auto reloaded = SyndromeTrace::load(path);
  EXPECT_TRUE(reloaded == trace);
  // Geometry never drifts: mutations touch defect patterns only.
  EXPECT_EQ(trace.header().distance, 5u);
  EXPECT_EQ(trace.lanes(), 2);
  EXPECT_EQ(trace.rounds(), 7);
  std::remove(path.c_str());
}

TEST(FuzzMutate, SpliceRejectsGeometryMismatch) {
  auto trace = noisy_trace(2, 6, 61);
  const auto before = trace;
  const auto donor = noisy_trace(3, 6, 62);  // different lane count
  TraceMutator mutator(/*seed=*/5);
  mutator.splice(trace, donor);
  EXPECT_TRUE(trace == before) << "mismatched splice must be a no-op";
}

}  // namespace
}  // namespace qec::fuzz
