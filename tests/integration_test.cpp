// Cross-decoder integration tests: every decoder must produce a valid
// correction on identical histories, and their relative accuracy must
// reflect the paper's ordering (Table IV).
#include <gtest/gtest.h>

#include <memory>

#include "aqec/aqec_decoder.hpp"
#include "decoder/decoder.hpp"
#include "mwpm/mwpm_decoder.hpp"
#include "noise/phenomenological.hpp"
#include "qecool/online_runner.hpp"
#include "qecool/qecool_decoder.hpp"
#include "sim/monte_carlo.hpp"
#include "surface_code/pauli_frame.hpp"
#include "unionfind/uf_decoder.hpp"

namespace qec {
namespace {

std::vector<std::unique_ptr<Decoder>> all_decoders() {
  std::vector<std::unique_ptr<Decoder>> out;
  out.push_back(std::make_unique<MwpmDecoder>());
  out.push_back(std::make_unique<UnionFindDecoder>());
  out.push_back(std::make_unique<BatchQecoolDecoder>());
  out.push_back(std::make_unique<AqecDecoder>());
  return out;
}

struct IntegrationCase {
  int distance;
  double p;
  int rounds;
};

class AllDecoders : public ::testing::TestWithParam<IntegrationCase> {};

TEST_P(AllDecoders, ValidCorrectionsOnSharedHistories) {
  const auto param = GetParam();
  const PlanarLattice lat(param.distance);
  Xoshiro256ss rng(0xabcd + static_cast<unsigned>(param.distance));
  auto decoders = all_decoders();
  for (int trial = 0; trial < 15; ++trial) {
    const auto h =
        sample_history(lat, {param.p, param.p, param.rounds}, rng);
    for (auto& dec : decoders) {
      const auto r = dec->decode(lat, h);
      ASSERT_TRUE(residual_syndrome_free(lat, h, r))
          << dec->name() << " trial " << trial;
      ASSERT_EQ(static_cast<int>(r.correction.size()), lat.num_data())
          << dec->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AllDecoders,
    ::testing::Values(IntegrationCase{3, 0.02, 3}, IntegrationCase{5, 0.01, 5},
                      IntegrationCase{5, 0.05, 5}, IntegrationCase{7, 0.02, 7},
                      IntegrationCase{9, 0.01, 9}),
    [](const ::testing::TestParamInfo<IntegrationCase>& info) {
      return "d" + std::to_string(info.param.distance) + "_p" +
             std::to_string(static_cast<int>(info.param.p * 1000));
    });

TEST(DecoderOrdering, MwpmIsMostAccurate) {
  // Aggregate accuracy over shared histories must respect Table IV's
  // ordering: MWPM <= {UF, QECOOL} failures (within noise margin).
  const PlanarLattice lat(7);
  Xoshiro256ss rng(2024);
  MwpmDecoder mwpm;
  UnionFindDecoder uf;
  BatchQecoolDecoder qecool;
  int fm = 0, fu = 0, fq = 0;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    const auto h = sample_history(lat, {0.02, 0.02, 7}, rng);
    fm += logical_failure(lat, h, mwpm.decode(lat, h));
    fu += logical_failure(lat, h, uf.decode(lat, h));
    fq += logical_failure(lat, h, qecool.decode(lat, h));
  }
  EXPECT_LE(fm, fu + 4);
  EXPECT_LE(fm, fq + 4);
  EXPECT_LE(fu, fq + 6) << "UF should also beat greedy QECOOL at p=0.02";
}

TEST(DecoderOrdering, EveryoneDecodesTrivialHistories) {
  const PlanarLattice lat(5);
  Xoshiro256ss rng(7);
  const auto h = sample_history(lat, {0.0, 0.0, 5}, rng);
  for (auto& dec : all_decoders()) {
    const auto r = dec->decode(lat, h);
    EXPECT_TRUE(is_zero(r.correction)) << dec->name();
    EXPECT_FALSE(logical_failure(lat, h, r)) << dec->name();
  }
}

TEST(OnlineVsBatch, AgreeAtUnlimitedBudgetOnAggregate) {
  // Online with thv=3 and unlimited cycles should be close to batch-QECOOL
  // in accuracy (slightly worse by construction, never wildly off).
  const int trials = 300;
  const auto cfg = phenomenological_config(5, 0.01, trials, 5150);
  BatchQecoolDecoder batch;
  const auto rb = run_memory_experiment(batch, cfg);
  OnlineConfig online;  // unlimited budget
  const auto ro = run_online_experiment(cfg, online);
  EXPECT_LE(static_cast<double>(rb.failures),
            static_cast<double>(ro.failures) + trials * 0.03);
  EXPECT_LE(static_cast<double>(ro.failures),
            static_cast<double>(rb.failures) + trials * 0.05);
}

TEST(LogicalObservable, DecodingTruthNeverFails) {
  // Feeding the exact error back as the correction always succeeds — the
  // scoring pipeline itself must not create phantom failures.
  const PlanarLattice lat(7);
  Xoshiro256ss rng(31337);
  for (int trial = 0; trial < 50; ++trial) {
    const auto h = sample_history(lat, {0.05, 0.05, 7}, rng);
    DecodeResult r;
    r.correction = h.final_error;
    EXPECT_FALSE(logical_failure(lat, h, r));
    EXPECT_TRUE(residual_syndrome_free(lat, h, r));
  }
}

}  // namespace
}  // namespace qec
