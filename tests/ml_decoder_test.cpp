// Tests for the exhaustive maximum-likelihood oracle decoder.
#include "decoder/ml_decoder.hpp"

#include <gtest/gtest.h>

#include "mwpm/mwpm_decoder.hpp"
#include "noise/phenomenological.hpp"
#include "qecool/qecool_decoder.hpp"
#include "surface_code/pauli_frame.hpp"

namespace qec {
namespace {

SyndromeHistory history_from_error(const PlanarLattice& lat,
                                   const BitVec& error) {
  SyndromeHistory h;
  h.final_error = error;
  h.measured = {lat.syndrome(error), lat.syndrome(error)};
  h.difference = difference_syndromes(h.measured);
  return h;
}

TEST(MlDecoder, RejectsBadP) {
  EXPECT_THROW(MaximumLikelihoodDecoder(0.0), std::invalid_argument);
  EXPECT_THROW(MaximumLikelihoodDecoder(1.0), std::invalid_argument);
}

TEST(MlDecoder, RejectsLargeLattices) {
  const PlanarLattice lat(5);  // 41 qubits > kMaxQubits
  MaximumLikelihoodDecoder dec(0.05);
  const BitVec none(static_cast<std::size_t>(lat.num_data()), 0);
  EXPECT_THROW(dec.decode(lat, history_from_error(lat, none)),
               std::invalid_argument);
}

TEST(MlDecoder, RejectsMeasurementNoise) {
  const PlanarLattice lat(3);
  MaximumLikelihoodDecoder dec(0.05);
  SyndromeHistory h;
  h.final_error.assign(static_cast<std::size_t>(lat.num_data()), 0);
  BitVec clean(static_cast<std::size_t>(lat.num_checks()), 0);
  BitVec dirty = clean;
  dirty[0] = 1;
  h.measured = {clean, dirty, clean};
  h.difference = difference_syndromes(h.measured);
  EXPECT_THROW(dec.decode(lat, h), std::invalid_argument);
}

TEST(MlDecoder, CorrectsEverySingleDataError) {
  const PlanarLattice lat(3);
  MaximumLikelihoodDecoder dec(0.05);
  for (int q = 0; q < lat.num_data(); ++q) {
    BitVec err(static_cast<std::size_t>(lat.num_data()), 0);
    err[static_cast<std::size_t>(q)] = 1;
    const auto h = history_from_error(lat, err);
    const auto r = dec.decode(lat, h);
    ASSERT_TRUE(residual_syndrome_free(lat, h, r)) << "qubit " << q;
    EXPECT_FALSE(logical_failure(lat, h, r)) << "qubit " << q;
  }
}

TEST(MlDecoder, ExhaustiveWeightTwoNeverBeatsDistance) {
  const PlanarLattice lat(3);
  MaximumLikelihoodDecoder dec(0.05);
  // d=3 corrects every weight-1 error; weight-2+ may fail, but the decode
  // must always return a valid correction.
  for (int a = 0; a < lat.num_data(); ++a) {
    for (int b = a + 1; b < lat.num_data(); ++b) {
      BitVec err(static_cast<std::size_t>(lat.num_data()), 0);
      err[static_cast<std::size_t>(a)] = 1;
      err[static_cast<std::size_t>(b)] = 1;
      const auto h = history_from_error(lat, err);
      const auto r = dec.decode(lat, h);
      ASSERT_TRUE(residual_syndrome_free(lat, h, r));
    }
  }
}

TEST(MlDecoder, IsNeverWorseThanApproximateDecoders) {
  // The oracle property over a Monte Carlo ensemble at d = 3.
  const PlanarLattice lat(3);
  const double p = 0.08;
  Xoshiro256ss rng(9001);
  MaximumLikelihoodDecoder ml(p);
  MwpmDecoder mwpm;
  BatchQecoolDecoder qecool;
  int f_ml = 0, f_mwpm = 0, f_qecool = 0;
  const int trials = 4000;
  for (int trial = 0; trial < trials; ++trial) {
    const auto h = sample_history(lat, {p, 0.0, 1}, rng);
    f_ml += logical_failure(lat, h, ml.decode(lat, h));
    f_mwpm += logical_failure(lat, h, mwpm.decode(lat, h));
    f_qecool += logical_failure(lat, h, qecool.decode(lat, h));
  }
  // Allow a little Monte Carlo slack in the strict inequality direction.
  EXPECT_LE(f_ml, f_mwpm + 10);
  EXPECT_LE(f_ml, f_qecool + 10);
  EXPECT_GT(f_qecool, 0) << "at p=0.08 and d=3 some failures must occur";
}

TEST(MlDecoder, AgreesWithMwpmOnUniqueSyndromes) {
  // For single-defect-pair syndromes the minimum-weight representative is
  // the unique shortest chain, so ML and MWPM corrections coincide.
  const PlanarLattice lat(3);
  MaximumLikelihoodDecoder ml(0.01);
  MwpmDecoder mwpm;
  for (int q = 0; q < lat.num_data(); ++q) {
    BitVec err(static_cast<std::size_t>(lat.num_data()), 0);
    err[static_cast<std::size_t>(q)] = 1;
    const auto h = history_from_error(lat, err);
    EXPECT_EQ(ml.decode(lat, h).correction, mwpm.decode(lat, h).correction)
        << "qubit " << q;
  }
}

}  // namespace
}  // namespace qec
