// Property tests for the exact blossom matcher: compare against exhaustive
// bitmask-DP minimum-weight perfect matching on random complete graphs.
#include "mwpm/blossom.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"

namespace qec {
namespace {

// Exhaustive min-weight perfect matching over all pairings (DP over subsets).
std::int64_t brute_force_min(const std::vector<std::vector<std::int64_t>>& w) {
  const int n = static_cast<int>(w.size());
  const std::size_t full = std::size_t{1} << n;
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
  std::vector<std::int64_t> dp(full, kInf);
  dp[0] = 0;
  for (std::size_t mask = 0; mask < full; ++mask) {
    if (dp[mask] == kInf) continue;
    int first = -1;
    for (int i = 0; i < n; ++i) {
      if (!(mask & (std::size_t{1} << i))) {
        first = i;
        break;
      }
    }
    if (first < 0) continue;
    for (int j = first + 1; j < n; ++j) {
      if (mask & (std::size_t{1} << j)) continue;
      const std::size_t next =
          mask | (std::size_t{1} << first) | (std::size_t{1} << j);
      const std::int64_t cand = dp[mask] + w[static_cast<std::size_t>(first)]
                                            [static_cast<std::size_t>(j)];
      if (cand < dp[next]) dp[next] = cand;
    }
  }
  return dp[full - 1];
}

std::vector<std::vector<std::int64_t>> random_weights(int n, std::int64_t maxw,
                                                      Xoshiro256ss& rng) {
  std::vector<std::vector<std::int64_t>> w(
      static_cast<std::size_t>(n),
      std::vector<std::int64_t>(static_cast<std::size_t>(n), 0));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const auto v = static_cast<std::int64_t>(
          rng.below(static_cast<std::uint64_t>(maxw) + 1));
      w[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = v;
      w[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = v;
    }
  }
  return w;
}

std::int64_t run_blossom(const std::vector<std::vector<std::int64_t>>& w,
                         std::vector<int>* mate_out = nullptr) {
  const int n = static_cast<int>(w.size());
  BlossomMatcher matcher(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      matcher.set_weight(i, j, w[static_cast<std::size_t>(i)]
                                  [static_cast<std::size_t>(j)]);
    }
  }
  const std::vector<int> mate = matcher.solve();
  if (mate_out) *mate_out = mate;
  return matcher.matching_weight();
}

TEST(Blossom, TwoVertices) {
  BlossomMatcher matcher(2);
  matcher.set_weight(0, 1, 7);
  const auto mate = matcher.solve();
  EXPECT_EQ(mate[0], 1);
  EXPECT_EQ(mate[1], 0);
  EXPECT_EQ(matcher.matching_weight(), 7);
}

TEST(Blossom, FourVerticesPicksCheaperPairing) {
  // Pairing (0-1)(2-3) costs 2; any other pairing costs >= 20.
  BlossomMatcher matcher(4);
  matcher.set_weight(0, 1, 1);
  matcher.set_weight(2, 3, 1);
  matcher.set_weight(0, 2, 10);
  matcher.set_weight(0, 3, 10);
  matcher.set_weight(1, 2, 10);
  matcher.set_weight(1, 3, 10);
  const auto mate = matcher.solve();
  EXPECT_EQ(mate[0], 1);
  EXPECT_EQ(mate[2], 3);
  EXPECT_EQ(matcher.matching_weight(), 2);
}

TEST(Blossom, ZeroWeightEdgesAllowed) {
  BlossomMatcher matcher(4);
  matcher.set_weight(0, 1, 0);
  matcher.set_weight(2, 3, 0);
  matcher.set_weight(0, 2, 5);
  matcher.set_weight(0, 3, 5);
  matcher.set_weight(1, 2, 5);
  matcher.set_weight(1, 3, 5);
  matcher.solve();
  EXPECT_EQ(matcher.matching_weight(), 0);
}

TEST(Blossom, MatchingIsAlwaysPerfectAndSymmetric) {
  Xoshiro256ss rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 2 * (1 + static_cast<int>(rng.below(6)));  // 2..12
    const auto w = random_weights(n, 30, rng);
    std::vector<int> mate;
    run_blossom(w, &mate);
    for (int v = 0; v < n; ++v) {
      ASSERT_GE(mate[static_cast<std::size_t>(v)], 0) << "unmatched vertex";
      ASSERT_EQ(mate[static_cast<std::size_t>(
                    mate[static_cast<std::size_t>(v)])],
                v)
          << "mate not symmetric";
      ASSERT_NE(mate[static_cast<std::size_t>(v)], v);
    }
  }
}

struct BruteForceCase {
  int n;
  std::int64_t max_weight;
  int trials;
};

class BlossomVsBruteForce : public ::testing::TestWithParam<BruteForceCase> {};

TEST_P(BlossomVsBruteForce, WeightsAgree) {
  const auto param = GetParam();
  Xoshiro256ss rng(0xc0ffee + static_cast<std::uint64_t>(param.n) * 7919 +
                   static_cast<std::uint64_t>(param.max_weight));
  for (int trial = 0; trial < param.trials; ++trial) {
    const auto w = random_weights(param.n, param.max_weight, rng);
    const std::int64_t expected = brute_force_min(w);
    const std::int64_t actual = run_blossom(w);
    ASSERT_EQ(actual, expected)
        << "n=" << param.n << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, BlossomVsBruteForce,
    ::testing::Values(BruteForceCase{4, 10, 200}, BruteForceCase{6, 10, 200},
                      BruteForceCase{8, 10, 150}, BruteForceCase{10, 20, 100},
                      BruteForceCase{12, 5, 60}, BruteForceCase{12, 100, 60},
                      BruteForceCase{14, 7, 40}, BruteForceCase{16, 3, 25},
                      BruteForceCase{16, 1000, 25}),
    [](const ::testing::TestParamInfo<BruteForceCase>& info) {
      return "n" + std::to_string(info.param.n) + "_w" +
             std::to_string(info.param.max_weight);
    });

// Larger randomized sanity: weight must match a greedy upper bound or beat
// it, and duplicate solves must be deterministic.
TEST(Blossom, DeterministicAndNoWorseThanGreedy) {
  Xoshiro256ss rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 40;
    const auto w = random_weights(n, 50, rng);
    const std::int64_t first = run_blossom(w);
    const std::int64_t second = run_blossom(w);
    EXPECT_EQ(first, second);
    // Greedy: repeatedly take the globally cheapest remaining pair.
    std::vector<bool> used(static_cast<std::size_t>(n), false);
    std::int64_t greedy = 0;
    for (int k = 0; k < n / 2; ++k) {
      std::int64_t best = std::numeric_limits<std::int64_t>::max();
      int bi = -1, bj = -1;
      for (int i = 0; i < n; ++i) {
        if (used[static_cast<std::size_t>(i)]) continue;
        for (int j = i + 1; j < n; ++j) {
          if (used[static_cast<std::size_t>(j)]) continue;
          if (w[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] <
              best) {
            best = w[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
            bi = i;
            bj = j;
          }
        }
      }
      used[static_cast<std::size_t>(bi)] = true;
      used[static_cast<std::size_t>(bj)] = true;
      greedy += best;
    }
    EXPECT_LE(first, greedy);
  }
}

}  // namespace
}  // namespace qec
