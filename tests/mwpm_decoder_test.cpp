// Tests for the MWPM decoder on the space-time matching graph.
#include "mwpm/mwpm_decoder.hpp"

#include <gtest/gtest.h>

#include "decoder/decoder.hpp"
#include "noise/phenomenological.hpp"
#include "surface_code/pauli_frame.hpp"

namespace qec {
namespace {

SyndromeHistory history_from_error(const PlanarLattice& lat,
                                   const BitVec& error) {
  SyndromeHistory h;
  h.final_error = error;
  h.measured = {lat.syndrome(error), lat.syndrome(error)};
  h.difference = difference_syndromes(h.measured);
  return h;
}

TEST(MwpmDecoder, EmptyHistoryGivesEmptyCorrection) {
  const PlanarLattice lat(5);
  const BitVec none(static_cast<std::size_t>(lat.num_data()), 0);
  MwpmDecoder dec;
  const auto r = dec.decode(lat, history_from_error(lat, none));
  EXPECT_TRUE(is_zero(r.correction));
  EXPECT_EQ(r.work, 0u);
}

TEST(MwpmDecoder, CorrectsEverySingleDataError) {
  const PlanarLattice lat(5);
  MwpmDecoder dec;
  for (int q = 0; q < lat.num_data(); ++q) {
    BitVec err(static_cast<std::size_t>(lat.num_data()), 0);
    err[static_cast<std::size_t>(q)] = 1;
    const auto h = history_from_error(lat, err);
    const auto r = dec.decode(lat, h);
    EXPECT_TRUE(residual_syndrome_free(lat, h, r)) << "qubit " << q;
    EXPECT_FALSE(logical_failure(lat, h, r)) << "qubit " << q;
  }
}

TEST(MwpmDecoder, CorrectsEveryTwoQubitError) {
  const PlanarLattice lat(5);
  MwpmDecoder dec;
  int failures = 0;
  for (int a = 0; a < lat.num_data(); ++a) {
    for (int b = a + 1; b < lat.num_data(); ++b) {
      BitVec err(static_cast<std::size_t>(lat.num_data()), 0);
      err[static_cast<std::size_t>(a)] = 1;
      err[static_cast<std::size_t>(b)] = 1;
      const auto h = history_from_error(lat, err);
      const auto r = dec.decode(lat, h);
      ASSERT_TRUE(residual_syndrome_free(lat, h, r))
          << "qubits " << a << "," << b;
      failures += logical_failure(lat, h, r);
    }
  }
  // Weight-2 errors are strictly below half the distance (d=5), so exact
  // MWPM never mis-decodes them.
  EXPECT_EQ(failures, 0);
}

TEST(MwpmDecoder, MeasurementErrorOnlyNeedsNoDataCorrection) {
  const PlanarLattice lat(5);
  // A single flipped measurement at round 1 creates a vertical defect pair;
  // optimal matching pairs them in time with zero data correction.
  SyndromeHistory h;
  h.final_error.assign(static_cast<std::size_t>(lat.num_data()), 0);
  BitVec clean(static_cast<std::size_t>(lat.num_checks()), 0);
  BitVec flipped = clean;
  flipped[7] = 1;
  h.measured = {clean, flipped, clean, clean};
  h.difference = difference_syndromes(h.measured);
  MwpmDecoder dec;
  const auto r = dec.decode(lat, h);
  EXPECT_TRUE(is_zero(r.correction));
}

TEST(MwpmDecoder, MatchesDefectsAcrossTime) {
  const PlanarLattice lat(5);
  // Data error in round 0 whose left defect is masked by a measurement
  // error in round 0: the left defect appears only in round 1. MWPM must
  // still recover a correction equivalent to the single data error.
  BitVec err(static_cast<std::size_t>(lat.num_data()), 0);
  const int q = lat.horizontal_qubit(2, 2);  // interior: two checks
  err[static_cast<std::size_t>(q)] = 1;
  BitVec synd = lat.syndrome(err);
  BitVec masked = synd;
  const int left_check = lat.qubit_checks(q)[0];
  masked[static_cast<std::size_t>(left_check)] ^= 1;
  SyndromeHistory h;
  h.final_error = err;
  h.measured = {masked, synd, synd};
  h.difference = difference_syndromes(h.measured);
  MwpmDecoder dec;
  const auto r = dec.decode(lat, h);
  EXPECT_TRUE(residual_syndrome_free(lat, h, r));
  EXPECT_FALSE(logical_failure(lat, h, r));
}

TEST(MwpmDecoder, MatchDefectsExposesPairs) {
  const PlanarLattice lat(5);
  const std::vector<Defect> defects = {{1, 1, 0}, {1, 2, 0}};
  const auto pairs = MwpmDecoder::match_defects(lat, defects);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_FALSE(pairs[0].to_boundary);
}

TEST(MwpmDecoder, FarApartDefectsPreferBoundaries) {
  const PlanarLattice lat(9);
  // Two defects hugging opposite boundaries: boundary matching (cost 1+1)
  // beats pairing them (cost 6).
  const std::vector<Defect> defects = {{4, 0, 0}, {4, 7, 0}};
  const auto pairs = MwpmDecoder::match_defects(lat, defects);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_TRUE(pairs[0].to_boundary);
  EXPECT_TRUE(pairs[1].to_boundary);
}

TEST(MwpmDecoder, OddDefectCountUsesBoundaryOnce) {
  const PlanarLattice lat(5);
  const std::vector<Defect> defects = {{0, 0, 0}, {0, 1, 0}, {4, 3, 2}};
  const auto pairs = MwpmDecoder::match_defects(lat, defects);
  int boundary = 0, pairwise = 0;
  for (const auto& p : pairs) (p.to_boundary ? boundary : pairwise)++;
  EXPECT_EQ(boundary, 1);
  EXPECT_EQ(pairwise, 1);
}

class MwpmRandomHistories : public ::testing::TestWithParam<int> {};

TEST_P(MwpmRandomHistories, ResidualAlwaysSyndromeFree) {
  const int d = GetParam();
  const PlanarLattice lat(d);
  Xoshiro256ss rng(31u * static_cast<unsigned>(d));
  MwpmDecoder dec;
  for (int trial = 0; trial < 40; ++trial) {
    const auto h = sample_history(lat, {0.03, 0.03, d}, rng);
    const auto r = dec.decode(lat, h);
    ASSERT_TRUE(residual_syndrome_free(lat, h, r)) << "trial " << trial;
  }
}

TEST_P(MwpmRandomHistories, CorrectionWeightBoundedByMatchingWeight) {
  const int d = GetParam();
  const PlanarLattice lat(d);
  Xoshiro256ss rng(77u * static_cast<unsigned>(d));
  MwpmDecoder dec;
  for (int trial = 0; trial < 20; ++trial) {
    const auto h = sample_history(lat, {0.02, 0.02, d}, rng);
    const auto r = dec.decode(lat, h);
    // Spatial correction weight can never exceed total path length, which
    // is bounded by defects * max distance.
    const int defects = defect_count(h);
    EXPECT_LE(weight(r.correction), defects * (2 * d + h.total_rounds()));
  }
}

INSTANTIATE_TEST_SUITE_P(Distances, MwpmRandomHistories,
                         ::testing::Values(3, 5, 7),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace qec
