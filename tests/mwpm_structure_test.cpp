// Structural properties of the MWPM decoder's boundary construction and
// optimality on the space-time graph.
#include <gtest/gtest.h>

#include "mwpm/mwpm_decoder.hpp"
#include "noise/phenomenological.hpp"
#include "surface_code/pauli_frame.hpp"

namespace qec {
namespace {

int pairing_cost(const PlanarLattice& lat,
                 const std::vector<MatchedPair>& pairs) {
  int cost = 0;
  for (const auto& pair : pairs) {
    if (pair.to_boundary) {
      cost += lat.boundary_distance(pair.a.col);
    } else {
      cost += defect_distance(pair.a, pair.b);
    }
  }
  return cost;
}

TEST(MwpmStructure, EveryDefectAppearsExactlyOnce) {
  const PlanarLattice lat(7);
  Xoshiro256ss rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    const auto h = sample_history(lat, {0.03, 0.03, 7}, rng);
    const auto defects = collect_defects(lat, h.difference);
    const auto pairs = MwpmDecoder::match_defects(lat, defects);
    int covered = 0;
    for (const auto& pair : pairs) covered += pair.to_boundary ? 1 : 2;
    EXPECT_EQ(covered, static_cast<int>(defects.size()));
  }
}

TEST(MwpmStructure, MatchingCostNeverExceedsGreedy) {
  // Exactness check at the pairing level: the MWPM cost must lower-bound
  // the greedy nearest-pair heuristic cost on the same defect set.
  const PlanarLattice lat(9);
  Xoshiro256ss rng(321);
  for (int trial = 0; trial < 25; ++trial) {
    const auto h = sample_history(lat, {0.02, 0.02, 9}, rng);
    auto defects = collect_defects(lat, h.difference);
    if (defects.empty()) continue;
    const auto pairs = MwpmDecoder::match_defects(lat, defects);
    const int optimal = pairing_cost(lat, pairs);

    // Greedy: repeatedly match the globally closest option (pair or
    // boundary) among the remaining defects.
    std::vector<std::uint8_t> used(defects.size(), 0);
    int greedy = 0;
    for (std::size_t matched = 0; matched < defects.size();) {
      int best = 1 << 20;
      int bi = -1, bj = -1;  // bj = -1 means boundary
      for (std::size_t i = 0; i < defects.size(); ++i) {
        if (used[i]) continue;
        const int bdist = lat.boundary_distance(defects[i].col);
        if (bdist < best) {
          best = bdist;
          bi = static_cast<int>(i);
          bj = -1;
        }
        for (std::size_t j = i + 1; j < defects.size(); ++j) {
          if (used[j]) continue;
          const int dist = defect_distance(defects[i], defects[j]);
          if (dist < best) {
            best = dist;
            bi = static_cast<int>(i);
            bj = static_cast<int>(j);
          }
        }
      }
      ASSERT_GE(bi, 0) << "an unused defect always has a boundary option";
      used[static_cast<std::size_t>(bi)] = 1;
      ++matched;
      if (bj >= 0) {
        used[static_cast<std::size_t>(bj)] = 1;
        ++matched;
      }
      greedy += best;
    }
    EXPECT_LE(optimal, greedy) << "trial " << trial;
  }
}

TEST(MwpmStructure, NearBoundaryDefectPairsWithItsOwnSide) {
  const PlanarLattice lat(9);
  // Lone defect next to the right wall: correction must lie entirely on
  // right-side horizontal qubits of its row.
  const std::vector<Defect> defects = {{3, 7, 0}};
  const auto pairs = MwpmDecoder::match_defects(lat, defects);
  ASSERT_EQ(pairs.size(), 1u);
  ASSERT_TRUE(pairs[0].to_boundary);
  const BitVec corr = pairs_to_correction(lat, pairs);
  EXPECT_EQ(weight(corr), 1);
  EXPECT_EQ(corr[static_cast<std::size_t>(lat.horizontal_qubit(3, 8))], 1);
}

TEST(MwpmStructure, TimeSeparatedDefectsOnSameCheckMatchVertically) {
  const PlanarLattice lat(9);
  // Two defects on the same check 2 rounds apart: vertical match (cost 2)
  // beats two boundary matches (cost 2x4=8); no data correction results.
  const std::vector<Defect> defects = {{4, 3, 1}, {4, 3, 3}};
  const auto pairs = MwpmDecoder::match_defects(lat, defects);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_FALSE(pairs[0].to_boundary);
  EXPECT_TRUE(is_zero(pairs_to_correction(lat, pairs)));
}

TEST(MwpmStructure, CorrectionWeightEqualsSpatialMatchingCost) {
  // Each pair contributes exactly its spatial path length (mod overlaps);
  // with disjoint paths the total correction weight equals the spatial
  // component of the matching cost.
  const PlanarLattice lat(9);
  const std::vector<Defect> defects = {{0, 0, 0}, {0, 2, 0}, {7, 4, 2},
                                       {5, 4, 2}};
  const auto pairs = MwpmDecoder::match_defects(lat, defects);
  const BitVec corr = pairs_to_correction(lat, pairs);
  EXPECT_EQ(weight(corr), 2 + 2);
}

}  // namespace
}  // namespace qec
