// Tests for the phenomenological noise model and syndrome histories.
#include "noise/phenomenological.hpp"

#include <gtest/gtest.h>

#include "surface_code/pauli_frame.hpp"

namespace qec {
namespace {

TEST(Noise, NoNoiseGivesCleanHistory) {
  const PlanarLattice lat(5);
  Xoshiro256ss rng(1);
  const auto h = sample_history(lat, {0.0, 0.0, 5}, rng);
  EXPECT_EQ(h.total_rounds(), 6);  // 5 noisy + 1 perfect
  EXPECT_TRUE(is_zero(h.final_error));
  for (const auto& layer : h.measured) EXPECT_TRUE(is_zero(layer));
  EXPECT_EQ(defect_count(h), 0);
}

TEST(Noise, RejectsZeroRounds) {
  const PlanarLattice lat(3);
  Xoshiro256ss rng(1);
  EXPECT_THROW(sample_history(lat, {0.1, 0.1, 0}, rng),
               std::invalid_argument);
}

TEST(Noise, FinalRoundIsPerfect) {
  const PlanarLattice lat(5);
  Xoshiro256ss rng(2);
  const auto h = sample_history(lat, {0.05, 0.05, 5}, rng);
  // Last measured layer must equal the true syndrome of the final error.
  EXPECT_EQ(h.measured.back(), lat.syndrome(h.final_error));
}

TEST(Noise, DifferenceTelescopesToFinalMeasurement) {
  const PlanarLattice lat(7);
  Xoshiro256ss rng(3);
  const auto h = sample_history(lat, {0.03, 0.03, 7}, rng);
  BitVec acc(static_cast<std::size_t>(lat.num_checks()), 0);
  for (const auto& layer : h.difference) xor_into(layer, acc);
  EXPECT_EQ(acc, h.measured.back());
}

TEST(Noise, MeasurementNoiseOnlyLeavesDataClean) {
  const PlanarLattice lat(5);
  Xoshiro256ss rng(4);
  const auto h = sample_history(lat, {0.0, 0.2, 10}, rng);
  EXPECT_TRUE(is_zero(h.final_error));
  // With no data errors, every defect comes in a vertical pair: the total
  // per-check defect parity over all layers must be even.
  BitVec acc(static_cast<std::size_t>(lat.num_checks()), 0);
  for (const auto& layer : h.difference) xor_into(layer, acc);
  EXPECT_TRUE(is_zero(acc));
  // And with p_meas = 0.2 over 10 rounds some defects must exist.
  EXPECT_GT(defect_count(h), 0);
}

TEST(Noise, DataNoiseCreatesMatchingSyndrome) {
  const PlanarLattice lat(5);
  Xoshiro256ss rng(5);
  const auto h = sample_history(lat, {0.1, 0.0, 3}, rng);
  // With perfect measurement, every measured layer is the true syndrome of
  // the accumulated error — in particular each is a valid syndrome.
  for (const auto& layer : h.measured) {
    EXPECT_EQ(layer.size(), static_cast<std::size_t>(lat.num_checks()));
  }
  EXPECT_EQ(h.measured.back(), lat.syndrome(h.final_error));
}

TEST(Noise, DeterministicGivenRngState) {
  const PlanarLattice lat(5);
  Xoshiro256ss rng1(42), rng2(42);
  const auto a = sample_history(lat, {0.02, 0.02, 5}, rng1);
  const auto b = sample_history(lat, {0.02, 0.02, 5}, rng2);
  EXPECT_EQ(a.final_error, b.final_error);
  EXPECT_EQ(a.measured, b.measured);
  EXPECT_EQ(a.difference, b.difference);
}

TEST(Noise, ErrorRateRoughlyMatchesP) {
  const PlanarLattice lat(9);
  Xoshiro256ss rng(6);
  const double p = 0.05;
  const int rounds = 1;
  int flips = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const auto h = sample_history(lat, {p, 0.0, rounds}, rng);
    flips += weight(h.final_error);
  }
  const double expected = p * lat.num_data();
  EXPECT_NEAR(static_cast<double>(flips) / trials, expected,
              0.05 * expected + 0.5);
}

TEST(Noise, DifferenceSyndromesStandalone) {
  std::vector<BitVec> measured = {{0, 1, 0}, {1, 1, 0}, {1, 0, 0}};
  const auto diff = difference_syndromes(measured);
  ASSERT_EQ(diff.size(), 3u);
  EXPECT_EQ(diff[0], (BitVec{0, 1, 0}));
  EXPECT_EQ(diff[1], (BitVec{1, 0, 0}));
  EXPECT_EQ(diff[2], (BitVec{0, 1, 0}));
}

class NoiseSweep : public ::testing::TestWithParam<int> {};

TEST_P(NoiseSweep, HistoriesAreInternallyConsistent) {
  const int d = GetParam();
  const PlanarLattice lat(d);
  Xoshiro256ss rng(1000u + static_cast<unsigned>(d));
  for (int trial = 0; trial < 20; ++trial) {
    const auto h = sample_history(lat, {0.02, 0.02, d}, rng);
    ASSERT_EQ(h.total_rounds(), d + 1);
    ASSERT_EQ(static_cast<int>(h.final_error.size()), lat.num_data());
    // Difference layers must reconstruct measured layers by prefix XOR.
    BitVec acc(static_cast<std::size_t>(lat.num_checks()), 0);
    for (int t = 0; t < h.total_rounds(); ++t) {
      xor_into(h.difference[static_cast<std::size_t>(t)], acc);
      ASSERT_EQ(acc, h.measured[static_cast<std::size_t>(t)]) << "t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Distances, NoiseSweep, ::testing::Values(3, 5, 7, 9),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace qec
