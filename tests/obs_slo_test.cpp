// Tests for PR 10's observability additions (src/obs): the SLO spec
// grammar collects every malformed item, unknown objective metrics are
// all named at attach, the dual-window burn-rate rules page/warn/recover
// exactly as documented, a small bursty codel run reproduces a
// golden-pinned verdict sequence (with kSloState trace events on the
// control track), every SLO-enabled export is byte-identical at 1 vs 4
// worker threads, 0-round and window-larger-than-run edges stay tame,
// the wall-clock profiler records stages without perturbing outcomes,
// and the postmortem flight recorder writes a complete bundle.
#include "obs/slo.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/postmortem.hpp"
#include "obs/profile.hpp"
#include "qecool/online_runner.hpp"
#include "stream/service.hpp"
#include "surface_code/planar_lattice.hpp"

namespace qec {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(SloSpec, GrammarObjectivesOpsAndOptions) {
  const auto config =
      obs::parse_slo_spec("sojourn_p99<8,depth_p95<=12,pushes>0,"
                          "starves>=1,window=32,fast=2,slow=8");
  ASSERT_EQ(config.objectives.size(), 4u);
  EXPECT_EQ(config.objectives[0].spec(), "sojourn_p99<8");
  EXPECT_EQ(config.objectives[1].spec(), "depth_p95<=12");
  EXPECT_EQ(config.objectives[2].spec(), "pushes>0");
  EXPECT_EQ(config.objectives[3].spec(), "starves>=1");
  EXPECT_EQ(config.window, 32);
  EXPECT_EQ(config.fast, 2);
  EXPECT_EQ(config.slow, 8);

  const auto defaults = obs::parse_slo_spec("sojourn_p99<8");
  EXPECT_EQ(defaults.window, 0);  // keep the registry's configured window
  EXPECT_EQ(defaults.fast, 4);
  EXPECT_EQ(defaults.slow, 16);
}

TEST(SloSpec, MalformedSpecNamesEveryOffendingItem) {
  try {
    obs::parse_slo_spec("nope,bogus=3,sojourn_p99!8,fast=0");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    // Spec-parse contract: every problem reported, not just the first.
    EXPECT_NE(what.find("nope"), std::string::npos) << what;
    EXPECT_NE(what.find("bogus"), std::string::npos) << what;
    EXPECT_NE(what.find("sojourn_p99!8"), std::string::npos) << what;
    EXPECT_NE(what.find("fast"), std::string::npos) << what;
  }
  EXPECT_THROW(obs::parse_slo_spec(""), std::invalid_argument);
  // Options alone do not make an SLO: at least one objective required.
  EXPECT_THROW(obs::parse_slo_spec("window=8"), std::invalid_argument);
  // slow must cover fast.
  EXPECT_THROW(obs::parse_slo_spec("sojourn_p99<8,fast=8,slow=4"),
               std::invalid_argument);
}

TEST(SloEngine, UnknownMetricsAllNamedAtAttach) {
  obs::MetricsRegistry reg(/*window=*/4);
  reg.add_counter("pushes");
  obs::SloEngine engine(obs::parse_slo_spec("foo<1,bar>2"));
  try {
    engine.attach(reg, nullptr);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("foo"), std::string::npos) << what;
    EXPECT_NE(what.find("bar"), std::string::npos) << what;
    EXPECT_NE(what.find("pushes"), std::string::npos)
        << "known metrics should be listed: " << what;
  }
}

TEST(SloEngine, DualWindowBurnRateRules) {
  // One gauge, window = 1 round, fast = 2, slow = 4: drive the violation
  // bit directly and check the documented state machine.
  //   page    — every fast window bad AND >= 1/2 of slow bad
  //   warning — >= 1/2 of fast bad AND >= 1/4 of slow bad
  obs::MetricsRegistry reg(/*window=*/1);
  const int g = reg.add_gauge("load");
  auto config = obs::parse_slo_spec("load>=10,fast=2,slow=4");
  obs::SloEngine engine(std::move(config));
  engine.attach(reg, nullptr);

  // The objective is "load stays >= 10": a window with load below 10
  // violates it.
  const std::int64_t values[] = {0, 0, 10, 10, 0};
  const obs::SloState expected[] = {
      obs::SloState::kWarning,  // bad:       fast 1/2, slow 1/4
      obs::SloState::kPage,     // bad again: fast 2/2, slow 2/4
      obs::SloState::kWarning,  // recovers:  fast 1/2, slow 2/4
      obs::SloState::kOk,       // clean:     fast 0/2, slow 2/4
      obs::SloState::kWarning,  // bad again: fast 1/2, slow 3/4
  };
  for (std::size_t i = 0; i < std::size(values); ++i) {
    reg.set_gauge(g, values[i]);
    reg.tick(static_cast<std::int64_t>(i));
    ASSERT_EQ(engine.verdicts().size(), i + 1);
    EXPECT_EQ(engine.verdicts().back().state, expected[i]) << "window " << i;
  }
  EXPECT_FALSE(engine.compliant());  // window 1 paged
  EXPECT_EQ(engine.summaries()[0].pages, 1);
  EXPECT_EQ(engine.summaries()[0].warnings, 3);
  EXPECT_EQ(engine.summaries()[0].violations, 3);
}

StreamConfig bursty_config() {
  // The PR 7 golden scenario (tests/obs_test.cpp): K < N under a tight
  // clock with codel admission — sojourn spikes within a dozen rounds.
  StreamConfig config;
  config.lanes = 6;
  config.distance = 5;
  config.p = 0.02;
  config.rounds = 12;
  config.seed = 7;
  config.engines = 2;
  config.policy = "fq";
  config.admission = "codel";
  config.cycles_per_round = cycles_per_microsecond(20e6);
  return config;
}

std::string render_verdicts(const obs::SloEngine& slo) {
  std::ostringstream out;
  for (const auto& v : slo.verdicts()) {
    out << v.window << ':' << v.value << ':' << obs::slo_state_name(v.state)
        << '\n';
  }
  return out.str();
}

TEST(SloEngine, GoldenVerdictSequenceOnBurstyRun) {
  StreamConfig config = bursty_config();
  config.obs.trace = true;
  config.obs.slo = "sojourn_p99<20,window=4,fast=2,slow=4";
  const auto outcome = run_stream(config);
  ASSERT_TRUE(outcome.slo);
  ASSERT_TRUE(outcome.metrics);
  // The slo window= option overrides the metrics window.
  EXPECT_EQ(outcome.metrics->window(), 4);

  // The pinned burn trajectory: the drain backlog builds until
  // sojourn_p99 crosses 20 at window 6, then burns through warning into
  // page for the rest of the run.
  EXPECT_EQ(render_verdicts(*outcome.slo),
            "0:4:ok\n"
            "1:7:ok\n"
            "2:7:ok\n"
            "3:16:ok\n"
            "4:19:ok\n"
            "5:18:ok\n"
            "6:26:warning\n"
            "7:30:page\n"
            "8:31:page\n"
            "9:32:page\n"
            "10:41:page\n"
            "11:43:page\n"
            "12:45:page\n"
            "13:52:page\n"
            "14:53:page\n"
            "15:54:page\n");
  EXPECT_FALSE(outcome.slo->compliant());
  EXPECT_EQ(outcome.slo->worst_state(), obs::SloState::kPage);

  // kSloState control-track events fire only on transitions: the first
  // window (ok), ok->warning, warning->page.
  ASSERT_TRUE(outcome.tracer);
  int slo_events = 0;
  for (const auto& e : outcome.tracer->merged()) {
    if (e.event.kind == static_cast<std::uint16_t>(obs::EventKind::kSloState)) {
      ++slo_events;
      EXPECT_EQ(e.track, obs::TrackKind::kControl);
    }
  }
  EXPECT_EQ(slo_events, 3);
}

TEST(SloEngine, SloEnabledExportsAreThreadCountInvariant) {
  // The PR 10 acceptance scenario: with SLO enabled (profiling off),
  // verdicts, trace, metrics, and the Prometheus snapshot are all
  // byte-identical at 1 vs 4 worker threads.
  StreamConfig config;
  config.lanes = 16;
  config.distance = 5;
  config.p = 0.01;
  config.rounds = 96;
  config.seed = 2021;
  config.engines = 4;
  config.policy = "least_loaded";
  config.admission = "codel";
  config.cycles_per_round = cycles_per_microsecond(40e6);
  config.obs.trace = true;
  config.obs.slo = "sojourn_p99<6,depth_p95<8,window=16";
  const SyndromeTrace trace = record_trace(config);

  std::string exports[2];
  const int threads[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    config.threads = threads[i];
    const auto outcome = run_stream(trace, config);
    ASSERT_TRUE(outcome.tracer);
    ASSERT_TRUE(outcome.metrics);
    ASSERT_TRUE(outcome.slo);
    const std::string trace_path = temp_path("slo_invariant_trace.json");
    const std::string csv_path = temp_path("slo_invariant_metrics.csv");
    const std::string slo_path = temp_path("slo_invariant_slo.csv");
    const std::string prom_path = temp_path("slo_invariant_prom.txt");
    ASSERT_TRUE(obs::write_chrome_trace(*outcome.tracer, trace_path));
    ASSERT_TRUE(outcome.metrics->write_csv(csv_path));
    ASSERT_TRUE(outcome.slo->write_csv(slo_path));
    ASSERT_TRUE(obs::write_prom_snapshot(*outcome.metrics, outcome.slo.get(),
                                         prom_path));
    exports[i] = read_all(trace_path) + "\n--\n" + read_all(csv_path) +
                 "\n--\n" + read_all(slo_path) + "\n--\n" +
                 read_all(prom_path) + "\n--\n" + outcome.slo->summary_json();
    for (const auto& p : {trace_path, csv_path, slo_path, prom_path}) {
      std::remove(p.c_str());
    }
  }
  EXPECT_EQ(exports[0], exports[1]);
}

TEST(SloEngine, ZeroRoundRunStaysTame) {
  PlanarLattice lattice(3);
  TraceHeader header;
  header.distance = 3;
  header.lanes = 3;
  header.rounds = 0;
  header.checks = static_cast<std::uint32_t>(lattice.num_checks());
  header.data_qubits = static_cast<std::uint32_t>(lattice.num_data());
  const SyndromeTrace trace(header);

  StreamConfig config;
  config.lanes = 3;
  config.distance = 3;
  config.engines = 2;
  config.policy = "least_loaded";
  config.admission = "codel";
  config.obs.slo = "sojourn_p99<8";
  const auto outcome = run_stream(trace, config);
  ASSERT_TRUE(outcome.slo);
  ASSERT_TRUE(outcome.metrics);
  EXPECT_LE(outcome.metrics->windows(), 1);
  EXPECT_LE(outcome.slo->verdicts().size(), 1u);
  EXPECT_TRUE(outcome.slo->compliant());  // nothing ran, nothing paged
}

TEST(SloEngine, WindowLargerThanRunYieldsOnePartialVerdict) {
  StreamConfig config = bursty_config();
  config.obs.slo = "sojourn_p99<4,window=4096";
  const auto outcome = run_stream(config);
  ASSERT_TRUE(outcome.slo);
  ASSERT_TRUE(outcome.metrics);
  // The whole run fits one (partial) window: exactly one verdict, flushed
  // by finish() — the tail a tick-only registry would have dropped.
  EXPECT_EQ(outcome.metrics->windows(), 1);
  ASSERT_EQ(outcome.slo->verdicts().size(), 1u);
  EXPECT_TRUE(outcome.slo->verdicts()[0].violated);
}

TEST(Profiler, RecordsScopesAndWritesCsv) {
  obs::Profiler profiler(/*sample_ring=*/16);
  {
    obs::ScopedStage scope(&profiler, obs::Stage::kDispatchAssign);
    obs::ScopedStage inner(&profiler, obs::Stage::kCache);
  }
  { obs::ScopedStage scope(&profiler, obs::Stage::kDispatchAssign); }
  // A null profiler is a safe no-op (the disabled hot path).
  { obs::ScopedStage scope(nullptr, obs::Stage::kLaneExecute); }

  const auto totals = profiler.totals();
  EXPECT_EQ(totals[0].calls, 2u);  // dispatch_assign
  EXPECT_EQ(totals[3].calls, 1u);  // cache
  EXPECT_EQ(totals[1].calls, 0u);  // lane_execute untouched
  EXPECT_EQ(profiler.threads(), 1);

  // take_window_nanos drains: the second take with no new scopes is 0.
  EXPECT_GE(profiler.take_window_nanos(obs::Stage::kDispatchAssign), 0u);
  EXPECT_EQ(profiler.take_window_nanos(obs::Stage::kDispatchAssign), 0u);

  const auto samples = profiler.thread_samples(0);
  ASSERT_EQ(samples.size(), 3u);
  // Sorted by start time: the outer dispatch scope precedes its nested
  // cache scope even though the inner one closed (recorded) first.
  EXPECT_LE(samples[0].start_ns, samples[1].start_ns);
  EXPECT_EQ(samples[0].stage, obs::Stage::kDispatchAssign);

  const std::string path = temp_path("profiler_stages.csv");
  ASSERT_TRUE(profiler.write_csv(path));
  const std::string text = read_all(path);
  std::remove(path.c_str());
  EXPECT_NE(text.find("stage,calls,threads,total_ns,mean_ns"),
            std::string::npos);
  EXPECT_NE(text.find("dispatch_assign,2,1,"), std::string::npos);
}

TEST(Profiler, ProfilingNeverPerturbsOutcomesOrTelemetry) {
  StreamConfig config = bursty_config();
  config.obs.metrics = true;  // exercise the kTelemetryClose stage too
  const auto plain = run_stream(config);
  config.obs.profile = true;
  const auto profiled = run_stream(config);
  ASSERT_TRUE(profiled.profiler);
  EXPECT_FALSE(plain.profiler);

  // Timing is observed, never consulted: outcomes and telemetry are
  // byte-identical with profiling on.
  EXPECT_EQ(plain.overflow_lanes, profiled.overflow_lanes);
  EXPECT_EQ(plain.failed_lanes, profiled.failed_lanes);
  EXPECT_EQ(plain.logical_failures, profiled.logical_failures);
  const std::string a = temp_path("prof_off_telemetry.csv");
  const std::string b = temp_path("prof_on_telemetry.csv");
  ASSERT_TRUE(plain.telemetry.write_csv(a));
  ASSERT_TRUE(profiled.telemetry.write_csv(b));
  EXPECT_EQ(read_all(a), read_all(b));
  std::remove(a.c_str());
  std::remove(b.c_str());

  // The run populated the taxonomy's hot stages.
  const auto totals = profiled.profiler->totals();
  EXPECT_GT(totals[static_cast<int>(obs::Stage::kDispatchAssign)].calls, 0u);
  EXPECT_GT(totals[static_cast<int>(obs::Stage::kLaneExecute)].calls, 0u);
  EXPECT_GT(totals[static_cast<int>(obs::Stage::kReduction)].calls, 0u);
  EXPECT_GT(totals[static_cast<int>(obs::Stage::kTelemetryClose)].calls, 0u);
}

TEST(Profiler, ProfMetricsColumnsAppearOnlyWhenProfiling) {
  StreamConfig config = bursty_config();
  config.obs.metrics = true;
  config.obs.metrics_window = 8;
  const auto plain = run_stream(config);
  config.obs.profile = true;
  const auto profiled = run_stream(config);

  const std::string a = temp_path("prof_cols_off.csv");
  const std::string b = temp_path("prof_cols_on.csv");
  ASSERT_TRUE(plain.metrics->write_csv(a));
  ASSERT_TRUE(profiled.metrics->write_csv(b));
  const std::string off_text = read_all(a);
  const std::string on_text = read_all(b);
  std::remove(a.c_str());
  std::remove(b.c_str());
  // prof_* columns ride the metrics CSV only when profiling is on — a
  // disabled run's export stays byte-stable against older goldens.
  EXPECT_EQ(off_text.find("prof_"), std::string::npos);
  EXPECT_NE(on_text.find("prof_lane_ns"), std::string::npos);
}

TEST(Postmortem, DumpWritesCompleteBundle) {
  const std::string dir = temp_path("obs_bundle_test");
  StreamConfig config = bursty_config();
  config.obs.trace = true;
  config.obs.profile = true;
  config.obs.slo = "sojourn_p99<4,window=4";
  config.obs.dump_dir = dir;
  const auto outcome = run_stream(config);
  ASSERT_TRUE(obs::FlightRecorder::instance().armed());
  EXPECT_EQ(obs::FlightRecorder::instance().dir(), dir);

  // The SIGUSR1 request flag is a consumable edge, not a level.
  EXPECT_FALSE(obs::FlightRecorder::take_dump_request());
  obs::FlightRecorder::request_dump();
  EXPECT_TRUE(obs::FlightRecorder::take_dump_request());
  EXPECT_FALSE(obs::FlightRecorder::take_dump_request());

  ASSERT_TRUE(obs::FlightRecorder::instance().dump("test"));
  for (const char* name : {"manifest.json", "config.json", "trace.json",
                           "metrics.csv", "last_window.csv", "profile.csv",
                           "slo.csv"}) {
    const std::string text = read_all(dir + "/" + name);
    EXPECT_FALSE(text.empty()) << name;
  }
  const std::string manifest = read_all(dir + "/manifest.json");
  EXPECT_NE(manifest.find("\"reason\": \"test\""), std::string::npos);
  EXPECT_NE(manifest.find("\"slo\""), std::string::npos);
  const std::string config_echo = read_all(dir + "/config.json");
  EXPECT_NE(config_echo.find("\"lanes\": 6"), std::string::npos);
  EXPECT_NE(config_echo.find("\"admission\": \"codel\""), std::string::npos);

  obs::FlightRecorder::instance().disarm();
  EXPECT_FALSE(obs::FlightRecorder::instance().armed());
  EXPECT_FALSE(obs::FlightRecorder::instance().dump("disarmed"));
}

}  // namespace
}  // namespace qec
