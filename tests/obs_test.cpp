// Tests for the observability subsystem (src/obs): the trace ring
// overwrites oldest with exact drop accounting, the log-bucketed
// histogram's quantiles never understate the exact nearest-rank
// percentile (and are exact below one octave of sub-buckets), the merged
// event order is the canonical (ts, control < lanes < engines, id, seq),
// a small bursty codel run reproduces a golden-pinned event prefix, the
// Chrome trace JSON and the windowed metrics CSV are byte-identical at
// any thread count, an undersized ring degrades to a flight recorder
// (dropped > 0, export still valid), and a 0-round stream neither traps
// nor poisons any telemetry CSV with NaNs (the zero-sample guards).
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "qecool/online_runner.hpp"
#include "stream/service.hpp"
#include "surface_code/planar_lattice.hpp"

namespace qec {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(TraceRing, OverwritesOldestAndCountsDrops) {
  obs::TraceRing ring(4);
  for (int i = 0; i < 10; ++i) {
    ring.emit(i, obs::EventKind::kPush, static_cast<std::uint64_t>(100 + i),
              0);
  }
  EXPECT_EQ(ring.emitted(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  ASSERT_EQ(ring.size(), 4u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    // Oldest survivor first: emissions 6..9 survive, in order.
    EXPECT_EQ(events[i].ts, static_cast<std::int64_t>(6 + i));
    EXPECT_EQ(events[i].seq, static_cast<std::uint32_t>(6 + i));
    EXPECT_EQ(events[i].payload, static_cast<std::uint64_t>(106 + i));
  }
}

TEST(TraceRing, ZeroCapacityDropsEverything) {
  obs::TraceRing ring(0);
  ring.emit(1, obs::EventKind::kPush, 0, 0);
  EXPECT_EQ(ring.emitted(), 1u);
  EXPECT_EQ(ring.dropped(), 1u);
  EXPECT_EQ(ring.size(), 0u);
}

TEST(Tracer, MergedOrderIsTsThenControlLanesEnginesThenSeq) {
  obs::Tracer tracer(/*lanes=*/2, /*engines=*/1, /*ring_capacity=*/16);
  tracer.engine(0).emit_at(5, obs::EventKind::kGrant, 1);
  tracer.lane(1).set_round(5);
  tracer.lane(1).emit(obs::EventKind::kPush, 3);
  tracer.lane(1).emit(obs::EventKind::kSpend, 40);
  tracer.lane(0).emit_at(5, obs::EventKind::kPush, 2);
  tracer.control().emit_at(5, obs::EventKind::kDispatch, 1);
  tracer.control().emit_at(3, obs::EventKind::kDispatch, 0);
  EXPECT_EQ(tracer.emitted(), 6u);
  EXPECT_EQ(tracer.dropped(), 0u);

  const auto merged = tracer.merged();
  ASSERT_EQ(merged.size(), 6u);
  // ts=3 first, then at ts=5: control < lane 0 < lane 1 (seq order) < engine.
  EXPECT_EQ(merged[0].event.ts, 3);
  EXPECT_EQ(merged[0].track, obs::TrackKind::kControl);
  EXPECT_EQ(merged[1].track, obs::TrackKind::kControl);
  EXPECT_EQ(merged[2].track, obs::TrackKind::kLane);
  EXPECT_EQ(merged[2].id, 0);
  EXPECT_EQ(merged[3].track, obs::TrackKind::kLane);
  EXPECT_EQ(merged[3].id, 1);
  EXPECT_EQ(merged[3].event.kind,
            static_cast<std::uint16_t>(obs::EventKind::kPush));
  EXPECT_EQ(merged[4].id, 1);
  EXPECT_EQ(merged[4].event.kind,
            static_cast<std::uint16_t>(obs::EventKind::kSpend));
  EXPECT_EQ(merged[5].track, obs::TrackKind::kEngine);
}

TEST(LogHistogram, ExactBelowOneOctaveOfSubBuckets) {
  // Values below kSub (= 8) land in unit-width buckets: quantiles exact.
  obs::LogHistogram hist;
  std::vector<std::uint64_t> samples = {0, 1, 1, 2, 3, 5, 7, 7};
  for (const auto v : samples) hist.observe(v);
  for (const double q : {1.0, 25.0, 50.0, 75.0, 95.0, 100.0}) {
    EXPECT_EQ(hist.quantile(q), percentile_nearest_rank(samples, q)) << q;
  }
}

TEST(LogHistogram, QuantileNeverUnderstatesExactNearestRank) {
  obs::LogHistogram hist;
  std::vector<std::uint64_t> samples;
  // Deterministic spread over ~4 decades, heavy tail included.
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const std::uint64_t v = (i * 2654435761ULL) % 50000;
    samples.push_back(v);
    hist.observe(v);
  }
  for (const double q : {1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    const std::uint64_t exact = percentile_nearest_rank(samples, q);
    const std::uint64_t approx = hist.quantile(q);
    // Never below the exact percentile, never more than one sub-bucket
    // (<= 12.5% relative) above it.
    EXPECT_GE(approx, exact) << "q=" << q;
    EXPECT_LE(approx, exact + exact / 8 + 1) << "q=" << q;
  }
  EXPECT_EQ(hist.quantile(100), hist.max());
  EXPECT_EQ(hist.count(), samples.size());
}

TEST(MetricsRegistry, WindowsCountersGaugesAndHistograms) {
  obs::MetricsRegistry reg(/*window=*/4);
  const int c = reg.add_counter("pushes");
  const int g = reg.add_gauge("live");
  const int h = reg.add_histogram("depth");
  for (std::int64_t round = 0; round < 10; ++round) {
    reg.count(c);
    reg.set_gauge(g, round);
    reg.observe(h, static_cast<std::uint64_t>(round + 1));
    reg.tick(round);
  }
  reg.finish();
  ASSERT_EQ(reg.windows(), 3);  // rounds 0-3, 4-7, 8-9 (partial flushed)

  const std::string path = temp_path("obs_metrics_windows.csv");
  ASSERT_TRUE(reg.write_csv(path));
  const std::string text = read_all(path);
  std::remove(path.c_str());
  std::istringstream lines(text);
  std::string line;
  std::getline(lines, line);
  EXPECT_EQ(line,
            "window,round_first,round_last,rounds,partial,pushes,live,"
            "depth_count,depth_p50,depth_p95,depth_p99,depth_max");
  std::getline(lines, line);
  EXPECT_EQ(line, "0,0,3,4,0,4,3,4,2,4,4,4");
  std::getline(lines, line);
  EXPECT_EQ(line, "1,4,7,4,0,4,7,4,6,8,8,8");
  std::getline(lines, line);
  // Counters are per-window deltas and histograms reset per window: the
  // trailing 2-round window reports 2 of each, not cumulative totals —
  // and carries partial=1 because finish() flushed it before it filled.
  EXPECT_EQ(line, "2,8,9,2,1,2,9,2,9,10,10,10");
}

StreamConfig bursty_config() {
  // The small bursty scenario the golden pins: K < N under a tight clock
  // with codel admission, so pushes, starves, spends, pops, CoDel arms and
  // pauses all appear within a dozen rounds.
  StreamConfig config;
  config.lanes = 6;
  config.distance = 5;
  config.p = 0.02;
  config.rounds = 12;
  config.seed = 7;
  config.engines = 2;
  config.policy = "fq";
  config.admission = "codel";
  config.cycles_per_round = cycles_per_microsecond(20e6);
  config.obs.trace = true;
  config.obs.metrics = true;
  config.obs.metrics_window = 8;
  return config;
}

std::string render_track(const obs::MergedEvent& event) {
  switch (event.track) {
    case obs::TrackKind::kControl:
      return "ctl";
    case obs::TrackKind::kLane:
      return "L" + std::to_string(event.id);
    case obs::TrackKind::kEngine:
      return "E" + std::to_string(event.id);
  }
  return "?";
}

std::string render_events(const std::vector<obs::MergedEvent>& events,
                          std::size_t limit) {
  std::ostringstream out;
  for (std::size_t i = 0; i < events.size() && i < limit; ++i) {
    const auto& e = events[i];
    out << e.event.ts << ' ' << render_track(e) << ' '
        << obs::event_name(static_cast<obs::EventKind>(e.event.kind)) << ' '
        << e.event.payload << ' ' << e.event.arg << '\n';
  }
  return out.str();
}

TEST(ObsIntegration, GoldenEventPrefixOfSmallBurstyRun) {
  const auto outcome = run_stream(bursty_config());
  ASSERT_TRUE(outcome.tracer);
  const auto merged = outcome.tracer->merged();
  EXPECT_EQ(outcome.tracer->dropped(), 0u);
  EXPECT_EQ(outcome.tracer->emitted(), merged.size());
  EXPECT_EQ(outcome.tracer->emitted(), 695u);
  // The first three rounds, verbatim: round 0 lands the first layer on
  // every lane before any engine has work to grant; from round 1 on the
  // two fq engines serve two lanes per round while the other four starve
  // and build depth. Served lanes also emit one cache event per run (the
  // decode cache is on by default). Format: "ts track kind payload arg".
  EXPECT_EQ(render_events(merged, 30),
            "0 ctl dispatch 0 0\n"
            "0 L0 push 1 1\n"
            "0 L1 push 1 1\n"
            "0 L2 push 1 1\n"
            "0 L3 push 1 1\n"
            "0 L4 push 1 1\n"
            "0 L5 push 1 1\n"
            "1 ctl dispatch 2 0\n"
            "1 L0 push 2 1\n"
            "1 L0 serve 0 0\n"
            "1 L1 push 2 1\n"
            "1 L1 pop 7 0\n"
            "1 L1 cache 7 0\n"
            "1 L1 serve 7 0\n"
            "1 L2 push 2 1\n"
            "1 L2 starve 2 0\n"
            "1 L3 push 2 1\n"
            "1 L3 starve 2 0\n"
            "1 L4 push 2 1\n"
            "1 L4 starve 2 0\n"
            "1 L5 push 2 1\n"
            "1 L5 starve 2 0\n"
            "1 E0 grant 0 0\n"
            "1 E1 grant 1 0\n"
            "2 ctl dispatch 2 0\n"
            "2 L0 push 3 1\n"
            "2 L0 starve 3 0\n"
            "2 L1 push 2 1\n"
            "2 L1 starve 2 0\n"
            "2 L2 push 3 1\n");
}

TEST(ObsIntegration, TraceAndMetricsAreThreadCountInvariant) {
  // The PR 5 pinned acceptance scenario: byte-identical exports at 1 vs 4
  // worker threads (the determinism contract, DESIGN.md section 12).
  StreamConfig config;
  config.lanes = 16;
  config.distance = 5;
  config.p = 0.01;
  config.rounds = 96;
  config.seed = 2021;
  config.engines = 4;
  config.policy = "least_loaded";
  config.admission = "codel";
  config.cycles_per_round = cycles_per_microsecond(40e6);
  config.obs.trace = true;
  config.obs.metrics = true;
  config.obs.metrics_window = 16;
  const SyndromeTrace trace = record_trace(config);

  std::string exports[2];
  const int threads[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    config.threads = threads[i];
    const auto outcome = run_stream(trace, config);
    ASSERT_TRUE(outcome.tracer);
    ASSERT_TRUE(outcome.metrics);
    const std::string trace_path = temp_path("obs_invariant_trace.json");
    const std::string csv_path = temp_path("obs_invariant_metrics.csv");
    ASSERT_TRUE(obs::write_chrome_trace(*outcome.tracer, trace_path));
    ASSERT_TRUE(outcome.metrics->write_csv(csv_path));
    exports[i] = read_all(trace_path) + "\n--\n" + read_all(csv_path);
    std::remove(trace_path.c_str());
    std::remove(csv_path.c_str());
    EXPECT_GT(outcome.tracer->emitted(), 0u);
  }
  EXPECT_EQ(exports[0], exports[1]);
}

TEST(ObsIntegration, UndersizedRingDropsButExportStaysValid) {
  StreamConfig config = bursty_config();
  config.obs.trace_ring = 8;
  const auto outcome = run_stream(config);
  ASSERT_TRUE(outcome.tracer);
  EXPECT_GT(outcome.tracer->dropped(), 0u);
  // Survivors = emitted - dropped, and the export still serializes.
  EXPECT_EQ(outcome.tracer->merged().size(),
            outcome.tracer->emitted() - outcome.tracer->dropped());
  const std::string path = temp_path("obs_tiny_ring_trace.json");
  ASSERT_TRUE(obs::write_chrome_trace(*outcome.tracer, path));
  const std::string text = read_all(path);
  std::remove(path.c_str());
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\""), std::string::npos);
}

TEST(ObsIntegration, ZeroRoundStreamKeepsTelemetryFinite) {
  // A trace with zero stored rounds: every lane drains instantly with no
  // samples anywhere. The zero-sample guards must keep every CSV finite —
  // no NaN/inf from empty means, percentiles, or fairness sums.
  PlanarLattice lattice(3);
  TraceHeader header;
  header.distance = 3;
  header.lanes = 3;
  header.rounds = 0;
  header.checks = static_cast<std::uint32_t>(lattice.num_checks());
  header.data_qubits = static_cast<std::uint32_t>(lattice.num_data());
  const SyndromeTrace trace(header);

  StreamConfig config;
  config.lanes = 3;
  config.distance = 3;
  config.engines = 2;
  config.policy = "least_loaded";
  config.admission = "codel";
  config.obs.trace = true;
  config.obs.metrics = true;
  const auto outcome = run_stream(trace, config);
  EXPECT_EQ(outcome.lanes, 3);
  EXPECT_EQ(outcome.overflow_lanes, 0);
  EXPECT_EQ(outcome.failed_lanes, 0);
  EXPECT_EQ(outcome.telemetry.fairness_index(), 1.0);

  const struct {
    const char* name;
    bool (StreamTelemetry::*writer)(const std::string&) const;
  } writers[] = {
      {"obs_zero_lanes.csv", &StreamTelemetry::write_csv},
      {"obs_zero_sched.csv", &StreamTelemetry::write_schedule_csv},
      {"obs_zero_timeline.csv", &StreamTelemetry::write_timeline_csv},
      {"obs_zero_latency.csv", &StreamTelemetry::write_latency_csv},
  };
  for (const auto& w : writers) {
    const std::string path = temp_path(w.name);
    ASSERT_TRUE((outcome.telemetry.*w.writer)(path)) << w.name;
    const std::string text = read_all(path);
    std::remove(path.c_str());
    EXPECT_FALSE(text.empty()) << w.name;
    EXPECT_EQ(text.find("nan"), std::string::npos) << w.name;
    EXPECT_EQ(text.find("inf"), std::string::npos) << w.name;
  }
  // The obs side of a zero-round run is equally tame: a valid (if tiny)
  // trace and a metrics registry with at most one flushed window.
  ASSERT_TRUE(outcome.tracer);
  const std::string path = temp_path("obs_zero_trace.json");
  ASSERT_TRUE(obs::write_chrome_trace(*outcome.tracer, path));
  std::remove(path.c_str());
  ASSERT_TRUE(outcome.metrics);
  EXPECT_LE(outcome.metrics->windows(), 1);
}

}  // namespace
}  // namespace qec
