// Tests for the on-line QECOOL runner: cadence budgets, Reg overflow, drain.
#include "qecool/online_runner.hpp"

#include <gtest/gtest.h>

#include "decoder/decoder.hpp"
#include "noise/phenomenological.hpp"
#include "surface_code/pauli_frame.hpp"

namespace qec {
namespace {

TEST(OnlineRunner, CleanHistoryDrainsTrivially) {
  const PlanarLattice lat(5);
  Xoshiro256ss rng(1);
  const auto h = sample_history(lat, {0.0, 0.0, 5}, rng);
  OnlineConfig config;
  config.cycles_per_round = 2000;
  const auto r = run_online(lat, h, config);
  EXPECT_FALSE(r.overflow);
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(is_zero(r.correction));
  EXPECT_EQ(static_cast<int>(r.layer_cycles.size()), h.total_rounds());
}

TEST(OnlineRunner, UnlimitedBudgetNeverOverflows) {
  const PlanarLattice lat(9);
  Xoshiro256ss rng(2);
  OnlineConfig config;  // cycles_per_round = 0: unconstrained
  for (int trial = 0; trial < 20; ++trial) {
    const auto h = sample_history(lat, {0.01, 0.01, 9}, rng);
    const auto r = run_online(lat, h, config);
    ASSERT_FALSE(r.overflow);
    ASSERT_TRUE(r.drained);
    DecodeResult dr;
    dr.correction = r.correction;
    ASSERT_TRUE(residual_syndrome_free(lat, h, dr));
  }
}

TEST(OnlineRunner, TinyBudgetOverflowsUnderLoad) {
  const PlanarLattice lat(13);
  Xoshiro256ss rng(3);
  OnlineConfig slow;
  slow.cycles_per_round = 2;  // absurdly slow decoder clock
  int overflows = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto h = sample_history(lat, {0.02, 0.02, 13}, rng);
    overflows += run_online(lat, h, slow).overflow;
  }
  EXPECT_GT(overflows, 10) << "a 2-cycle budget cannot keep up at d=13";
}

TEST(OnlineRunner, HigherFrequencyNeverHurtsDrainage) {
  const PlanarLattice lat(11);
  Xoshiro256ss rng(4);
  OnlineConfig mhz500, ghz2;
  mhz500.cycles_per_round = cycles_per_microsecond(500e6);
  ghz2.cycles_per_round = cycles_per_microsecond(2e9);
  int slow_overflow = 0, fast_overflow = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const auto h = sample_history(lat, {0.015, 0.015, 11}, rng);
    slow_overflow += run_online(lat, h, mhz500).failed_operationally();
    fast_overflow += run_online(lat, h, ghz2).failed_operationally();
  }
  EXPECT_LE(fast_overflow, slow_overflow);
}

TEST(OnlineRunner, CyclesPerMicrosecondHelper) {
  EXPECT_DOUBLE_EQ(cycles_per_microsecond(2e9), 2000.0);
  EXPECT_DOUBLE_EQ(cycles_per_microsecond(1e9), 1000.0);
  EXPECT_DOUBLE_EQ(cycles_per_microsecond(500e6), 500.0);
  // Sub-MHz clocks no longer truncate to 0 ("unconstrained"); fractional
  // budgets survive and accumulate across rounds in OnlineStepper.
  EXPECT_NEAR(cycles_per_microsecond(1.5e6), 1.5, 1e-12);
  EXPECT_NEAR(cycles_per_microsecond(500e3), 0.5, 1e-12);
  EXPECT_GT(cycles_per_microsecond(1.0), 0.0);
}

TEST(OnlineRunner, FractionalBudgetAccumulatesAcrossRounds) {
  // At 1.5 cycles/round the engine must receive 1, 2, 1, 2, ... cycles —
  // 2k rounds of clean input grant exactly 3k cycles of work capacity. A
  // clean history never makes work, so instead compare against the integer
  // envelope: a 0.5-cycle budget must behave strictly worse than 1
  // cycle/round and no better than it, and must NOT behave as unconstrained.
  const PlanarLattice lat(9);
  Xoshiro256ss rng(11);
  OnlineConfig half, one, unconstrained;
  half.cycles_per_round = 0.5;
  one.cycles_per_round = 1.0;
  int half_fail = 0, one_fail = 0, free_fail = 0;
  for (int trial = 0; trial < 15; ++trial) {
    const auto h = sample_history(lat, {0.01, 0.01, 9}, rng);
    half_fail += run_online(lat, h, half).failed_operationally();
    one_fail += run_online(lat, h, one).failed_operationally();
    free_fail += run_online(lat, h, unconstrained).failed_operationally();
  }
  EXPECT_EQ(free_fail, 0);
  EXPECT_GE(half_fail, one_fail);
  EXPECT_GT(half_fail, 0) << "0.5 cycles/round must not mean unconstrained";
}

TEST(OnlineRunner, IntegerBudgetMatchesLegacyPerRoundGrant) {
  // With an integral budget the fractional carry stays zero, so the new
  // stepper must reproduce the old fixed-grant behaviour exactly.
  const PlanarLattice lat(7);
  Xoshiro256ss rng(12);
  for (int trial = 0; trial < 10; ++trial) {
    const auto h = sample_history(lat, {0.02, 0.02, 7}, rng);
    OnlineConfig config;
    config.cycles_per_round = 300;
    const auto via_runner = run_online(lat, h, config);

    QecoolEngine engine(lat, config.engine);
    bool overflow = false;
    for (const auto& layer : h.difference) {
      if (!engine.push_layer(layer)) {
        overflow = true;
        break;
      }
      engine.run(300);
    }
    const BitVec clean(static_cast<std::size_t>(lat.num_checks()), 0);
    for (int extra = 0; !overflow && extra < config.max_drain_rounds;
         ++extra) {
      if (engine.all_clear() && engine.stored_layers() == 0) break;
      if (!engine.push_layer(clean)) {
        overflow = true;
        break;
      }
      engine.run(300);
    }
    ASSERT_EQ(via_runner.overflow, overflow);
    if (!overflow) {
      ASSERT_EQ(via_runner.correction, engine.correction());
      ASSERT_EQ(via_runner.total_cycles, engine.total_cycles());
    }
  }
}

TEST(OnlineRunner, StepperMatchesRunOnline) {
  const PlanarLattice lat(7);
  Xoshiro256ss rng(13);
  OnlineConfig config;
  config.cycles_per_round = 150.25;
  for (int trial = 0; trial < 10; ++trial) {
    const auto h = sample_history(lat, {0.015, 0.015, 7}, rng);
    const auto direct = run_online(lat, h, config);

    OnlineStepper stepper(lat, config);
    for (const auto& layer : h.difference) {
      if (!stepper.step(layer)) break;
    }
    for (int extra = 0;
         !stepper.overflowed() && extra < config.max_drain_rounds; ++extra) {
      if (stepper.drained()) break;
      stepper.step_clean();
    }
    const auto stepped = stepper.result();
    ASSERT_EQ(direct.overflow, stepped.overflow);
    ASSERT_EQ(direct.drained, stepped.drained);
    ASSERT_EQ(direct.correction, stepped.correction);
    ASSERT_EQ(direct.total_cycles, stepped.total_cycles);
    ASSERT_EQ(direct.layer_cycles, stepped.layer_cycles);
  }
}

TEST(OnlineRunner, PushSpendDecompositionMatchesStep) {
  // step() must be exactly push() + spend(configured budget): driving the
  // two halves by hand — the shared-pool service's calling convention —
  // reproduces the bundled stepper cycle for cycle, fractional carry
  // included.
  const PlanarLattice lat(7);
  Xoshiro256ss rng(21);
  OnlineConfig config;
  config.cycles_per_round = 150.25;
  for (int trial = 0; trial < 5; ++trial) {
    const auto h = sample_history(lat, {0.02, 0.02, 7}, rng);
    OnlineStepper bundled(lat, config);
    OnlineStepper split(lat, config);
    for (const auto& layer : h.difference) {
      const bool stepped = bundled.step(layer);
      const bool pushed = split.push(layer);
      ASSERT_EQ(stepped, pushed);
      if (!pushed) break;
      split.spend(config.cycles_per_round);
    }
    const auto a = bundled.result();
    const auto b = split.result();
    ASSERT_EQ(a.overflow, b.overflow);
    ASSERT_EQ(a.correction, b.correction);
    ASSERT_EQ(a.total_cycles, b.total_cycles);
    ASSERT_EQ(a.layer_cycles, b.layer_cycles);
  }
}

TEST(OnlineRunner, ZeroBudgetRoundsAccumulateBacklog) {
  // A lane denied service only queues: pushes without spend() grow the
  // stored-layer count one per round, consume no cycles, and overflow the
  // Reg exactly when the (reg_depth + 1)-th layer arrives.
  const PlanarLattice lat(5);
  OnlineConfig config;
  config.cycles_per_round = 64;
  OnlineStepper stepper(lat, config);
  const BitVec clean(static_cast<std::size_t>(lat.num_checks()), 0);
  for (int round = 1; round <= config.engine.reg_depth; ++round) {
    ASSERT_TRUE(stepper.push(clean));
    EXPECT_EQ(stepper.engine().stored_layers(), round);
  }
  EXPECT_EQ(stepper.engine().total_cycles(), 0u);
  EXPECT_FALSE(stepper.push(clean)) << "Reg must overflow at depth + 1";
  EXPECT_TRUE(stepper.overflowed());
  EXPECT_EQ(stepper.spend(1000.0), 0u) << "spend after overflow is a no-op";
}

TEST(OnlineRunner, FractionalSpendCarriesDeficitAcrossGrants) {
  // Two 0.5-cycle grants must execute one cycle on the second grant; a
  // grant the lane never receives must NOT bank cycles (no spend call, no
  // carry growth). Use a backlog that leaves the engine with work so a
  // granted cycle is visibly consumed.
  const PlanarLattice lat(5);
  OnlineConfig config;  // budget irrelevant: spend() is driven by hand
  OnlineStepper stepper(lat, config);
  const BitVec clean(static_cast<std::size_t>(lat.num_checks()), 0);
  // Build enough backlog that clean base layers are poppable work.
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(stepper.push(clean));
  EXPECT_EQ(stepper.spend(0.5), 0u) << "half a cycle buys nothing yet";
  EXPECT_EQ(stepper.engine().total_cycles(), 0u);
  EXPECT_EQ(stepper.spend(0.5), 1u) << "the carried half completes a cycle";
  EXPECT_EQ(stepper.engine().total_cycles(), 1u);
}

TEST(OnlineRunner, MaxDrainRoundsExhaustionReportsUndrained) {
  // With max_drain_rounds = 0 the thv gate guarantees failure whenever the
  // last layers carry defects (a base layer is decoded only once m - b >
  // thv, and without drain pushes m never grows): the run must end
  // undrained — flagged by failed_operationally() — yet never overflow,
  // while the same histories drain fine with the default drain budget.
  const PlanarLattice lat(9);
  Xoshiro256ss rng(14);
  int undrained = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto h = sample_history(lat, {0.02, 0.02, 9}, rng);
    OnlineConfig no_drain;  // unconstrained clock
    no_drain.max_drain_rounds = 0;
    const auto r = run_online(lat, h, no_drain);
    EXPECT_FALSE(r.overflow);
    if (!r.drained) {
      ++undrained;
      EXPECT_TRUE(r.failed_operationally());
    }
    OnlineConfig with_drain;
    const auto full = run_online(lat, h, with_drain);
    EXPECT_TRUE(full.drained);
  }
  EXPECT_GT(undrained, 5) << "expected drain-budget exhaustion at p=0.02";
}

TEST(OnlineRunner, ZeroDefectHistoryDrainsWithoutMatches) {
  // A defect-free history must drain cleanly: no overflow, no matches, no
  // correction. (Clean layers still cost row-skip/pop cycles — the QEC
  // cycle never stops — so the budget must cover the pop cadence.)
  const PlanarLattice lat(7);
  SyndromeHistory h;
  const BitVec clean(static_cast<std::size_t>(lat.num_checks()), 0);
  h.measured.assign(8, clean);
  h.difference = difference_syndromes(h.measured);
  h.final_error.assign(static_cast<std::size_t>(lat.num_data()), 0);

  OnlineConfig config;
  config.cycles_per_round = 64;
  const auto r = run_online(lat, h, config);
  EXPECT_FALSE(r.overflow);
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(is_zero(r.correction));
  EXPECT_EQ(r.matches.total(), 0u);
  EXPECT_EQ(static_cast<int>(r.layer_cycles.size()), 8);
}

TEST(OnlineRunner, MatchStatsAccumulate) {
  const PlanarLattice lat(5);
  Xoshiro256ss rng(5);
  OnlineConfig config;
  config.cycles_per_round = 2000;
  int with_matches = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto h = sample_history(lat, {0.05, 0.05, 5}, rng);
    const auto r = run_online(lat, h, config);
    if (r.matches.total() > 0) ++with_matches;
  }
  EXPECT_GT(with_matches, 5);
}

TEST(OnlineRunner, OnlineAndBatchAgreeOnIsolatedErrors) {
  // For a single data error the on-line decoder must produce exactly the
  // same (unique, minimal) correction as batch.
  const PlanarLattice lat(5);
  const int q = lat.horizontal_qubit(2, 2);
  SyndromeHistory h;
  h.final_error.assign(static_cast<std::size_t>(lat.num_data()), 0);
  h.final_error[static_cast<std::size_t>(q)] = 1;
  const BitVec synd = lat.syndrome(h.final_error);
  const BitVec clean(static_cast<std::size_t>(lat.num_checks()), 0);
  h.measured = {clean, synd, synd, synd, synd};
  h.difference = difference_syndromes(h.measured);

  OnlineConfig config;
  config.cycles_per_round = 2000;
  const auto r = run_online(lat, h, config);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.correction, h.final_error);
}

TEST(OnlineRunner, RegDepthAblation) {
  // Shrinking the Reg queue to the minimum (thv + 1) must only increase
  // overflow incidence relative to the paper's 7-entry margin.
  const PlanarLattice lat(13);
  Xoshiro256ss rng(6);
  OnlineConfig margin7, tight4;
  margin7.cycles_per_round = 400;
  tight4.cycles_per_round = 400;
  tight4.engine.reg_depth = 4;
  int overflow7 = 0, overflow4 = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const auto h = sample_history(lat, {0.01, 0.01, 13}, rng);
    overflow7 += run_online(lat, h, margin7).overflow;
    overflow4 += run_online(lat, h, tight4).overflow;
  }
  EXPECT_LE(overflow7, overflow4);
}

}  // namespace
}  // namespace qec
