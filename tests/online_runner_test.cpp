// Tests for the on-line QECOOL runner: cadence budgets, Reg overflow, drain.
#include "qecool/online_runner.hpp"

#include <gtest/gtest.h>

#include "decoder/decoder.hpp"
#include "noise/phenomenological.hpp"
#include "surface_code/pauli_frame.hpp"

namespace qec {
namespace {

TEST(OnlineRunner, CleanHistoryDrainsTrivially) {
  const PlanarLattice lat(5);
  Xoshiro256ss rng(1);
  const auto h = sample_history(lat, {0.0, 0.0, 5}, rng);
  OnlineConfig config;
  config.cycles_per_round = 2000;
  const auto r = run_online(lat, h, config);
  EXPECT_FALSE(r.overflow);
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(is_zero(r.correction));
  EXPECT_EQ(static_cast<int>(r.layer_cycles.size()), h.total_rounds());
}

TEST(OnlineRunner, UnlimitedBudgetNeverOverflows) {
  const PlanarLattice lat(9);
  Xoshiro256ss rng(2);
  OnlineConfig config;  // cycles_per_round = 0: unconstrained
  for (int trial = 0; trial < 20; ++trial) {
    const auto h = sample_history(lat, {0.01, 0.01, 9}, rng);
    const auto r = run_online(lat, h, config);
    ASSERT_FALSE(r.overflow);
    ASSERT_TRUE(r.drained);
    DecodeResult dr;
    dr.correction = r.correction;
    ASSERT_TRUE(residual_syndrome_free(lat, h, dr));
  }
}

TEST(OnlineRunner, TinyBudgetOverflowsUnderLoad) {
  const PlanarLattice lat(13);
  Xoshiro256ss rng(3);
  OnlineConfig slow;
  slow.cycles_per_round = 2;  // absurdly slow decoder clock
  int overflows = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto h = sample_history(lat, {0.02, 0.02, 13}, rng);
    overflows += run_online(lat, h, slow).overflow;
  }
  EXPECT_GT(overflows, 10) << "a 2-cycle budget cannot keep up at d=13";
}

TEST(OnlineRunner, HigherFrequencyNeverHurtsDrainage) {
  const PlanarLattice lat(11);
  Xoshiro256ss rng(4);
  OnlineConfig mhz500, ghz2;
  mhz500.cycles_per_round = cycles_per_microsecond(500e6);
  ghz2.cycles_per_round = cycles_per_microsecond(2e9);
  int slow_overflow = 0, fast_overflow = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const auto h = sample_history(lat, {0.015, 0.015, 11}, rng);
    slow_overflow += run_online(lat, h, mhz500).failed_operationally();
    fast_overflow += run_online(lat, h, ghz2).failed_operationally();
  }
  EXPECT_LE(fast_overflow, slow_overflow);
}

TEST(OnlineRunner, CyclesPerMicrosecondHelper) {
  EXPECT_EQ(cycles_per_microsecond(2e9), 2000u);
  EXPECT_EQ(cycles_per_microsecond(1e9), 1000u);
  EXPECT_EQ(cycles_per_microsecond(500e6), 500u);
}

TEST(OnlineRunner, MatchStatsAccumulate) {
  const PlanarLattice lat(5);
  Xoshiro256ss rng(5);
  OnlineConfig config;
  config.cycles_per_round = 2000;
  int with_matches = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto h = sample_history(lat, {0.05, 0.05, 5}, rng);
    const auto r = run_online(lat, h, config);
    if (r.matches.total() > 0) ++with_matches;
  }
  EXPECT_GT(with_matches, 5);
}

TEST(OnlineRunner, OnlineAndBatchAgreeOnIsolatedErrors) {
  // For a single data error the on-line decoder must produce exactly the
  // same (unique, minimal) correction as batch.
  const PlanarLattice lat(5);
  const int q = lat.horizontal_qubit(2, 2);
  SyndromeHistory h;
  h.final_error.assign(static_cast<std::size_t>(lat.num_data()), 0);
  h.final_error[static_cast<std::size_t>(q)] = 1;
  const BitVec synd = lat.syndrome(h.final_error);
  const BitVec clean(static_cast<std::size_t>(lat.num_checks()), 0);
  h.measured = {clean, synd, synd, synd, synd};
  h.difference = difference_syndromes(h.measured);

  OnlineConfig config;
  config.cycles_per_round = 2000;
  const auto r = run_online(lat, h, config);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.correction, h.final_error);
}

TEST(OnlineRunner, RegDepthAblation) {
  // Shrinking the Reg queue to the minimum (thv + 1) must only increase
  // overflow incidence relative to the paper's 7-entry margin.
  const PlanarLattice lat(13);
  Xoshiro256ss rng(6);
  OnlineConfig margin7, tight4;
  margin7.cycles_per_round = 400;
  tight4.cycles_per_round = 400;
  tight4.engine.reg_depth = 4;
  int overflow7 = 0, overflow4 = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const auto h = sample_history(lat, {0.01, 0.01, 13}, rng);
    overflow7 += run_online(lat, h, margin7).overflow;
    overflow4 += run_online(lat, h, tight4).overflow;
  }
  EXPECT_LE(overflow7, overflow4);
}

}  // namespace
}  // namespace qec
