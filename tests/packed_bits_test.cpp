// Property tests for PackedBits (src/surface_code/packed_bits.hpp): every
// word-parallel operation is checked against the naive byte-per-bit
// reference on random vectors, with deliberate emphasis on sizes that are
// NOT multiples of 64 (the tail-word masking is where packed bit vectors
// rot). Also pins the layout contract — append_bytes() must produce the
// exact bytes pack_bits() produces, because the QTRC payload format
// (docs/trace_format.md) is defined by that packing.
#include "surface_code/packed_bits.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "stream/trace.hpp"
#include "surface_code/pauli_frame.hpp"

namespace qec {
namespace {

// The awkward sizes: empty, sub-word, word-aligned, word+1, the d=9
// engine grid (72 checks), multi-word with a partial tail.
const std::size_t kSizes[] = {0, 1, 7, 63, 64, 65, 72, 100, 128, 130, 1000};

BitVec random_bits(std::size_t n, std::mt19937& rng, double density = 0.5) {
  std::bernoulli_distribution bit(density);
  BitVec v(n, 0);
  for (auto& b : v) b = bit(rng) ? 1 : 0;
  return v;
}

int reference_weight(const BitVec& v) {
  int w = 0;
  for (auto b : v) w += b ? 1 : 0;
  return w;
}

TEST(PackedBits, RoundTripsByteVectorsAtAwkwardSizes) {
  std::mt19937 rng(7);
  for (std::size_t n : kSizes) {
    for (int trial = 0; trial < 20; ++trial) {
      const BitVec ref = random_bits(n, rng);
      const PackedBits packed = PackedBits::from_bits(ref);
      ASSERT_EQ(packed.size(), n);
      EXPECT_EQ(packed.to_bits(), ref) << "size " << n;
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(packed.test(i), ref[i] != 0) << "size " << n << " bit " << i;
      }
    }
  }
}

TEST(PackedBits, PopcountAnyNoneMatchReference) {
  std::mt19937 rng(11);
  for (std::size_t n : kSizes) {
    for (double density : {0.0, 0.02, 0.5, 1.0}) {
      const BitVec ref = random_bits(n, rng, density);
      const PackedBits packed = PackedBits::from_bits(ref);
      const int w = reference_weight(ref);
      EXPECT_EQ(packed.popcount(), w) << "size " << n;
      EXPECT_EQ(packed.any(), w > 0);
      EXPECT_EQ(packed.none(), w == 0);
    }
  }
}

TEST(PackedBits, BitwiseOpsMatchReference) {
  std::mt19937 rng(13);
  for (std::size_t n : kSizes) {
    for (int trial = 0; trial < 20; ++trial) {
      const BitVec a = random_bits(n, rng);
      const BitVec b = random_bits(n, rng);
      PackedBits px = PackedBits::from_bits(a);
      PackedBits po = PackedBits::from_bits(a);
      PackedBits pa = PackedBits::from_bits(a);
      const PackedBits pb = PackedBits::from_bits(b);
      px ^= pb;
      po |= pb;
      pa &= pb;
      BitVec rx(n, 0), ro(n, 0), ra(n, 0);
      for (std::size_t i = 0; i < n; ++i) {
        rx[i] = a[i] ^ b[i];
        ro[i] = a[i] | b[i];
        ra[i] = a[i] & b[i];
      }
      EXPECT_EQ(px.to_bits(), rx) << "xor, size " << n;
      EXPECT_EQ(po.to_bits(), ro) << "or, size " << n;
      EXPECT_EQ(pa.to_bits(), ra) << "and, size " << n;
      // XOR must also preserve the tail-zero invariant observables.
      EXPECT_EQ(px.popcount(), reference_weight(rx));
      EXPECT_EQ(px == PackedBits::from_bits(rx), true);
    }
  }
}

TEST(PackedBits, AnyInRangeMatchesReferenceOnAllSubranges) {
  std::mt19937 rng(17);
  for (std::size_t n : {std::size_t{1}, std::size_t{72}, std::size_t{130}}) {
    const BitVec ref = random_bits(n, rng, 0.1);
    const PackedBits packed = PackedBits::from_bits(ref);
    for (std::size_t first = 0; first < n; ++first) {
      for (std::size_t count = 0; count <= n - first; ++count) {
        bool expect = false;
        for (std::size_t i = first; i < first + count; ++i) {
          if (ref[i]) expect = true;
        }
        ASSERT_EQ(packed.any_in_range(first, count), expect)
            << "size " << n << " [" << first << ", " << first + count << ")";
      }
    }
  }
}

TEST(PackedBits, ForEachSetVisitsExactlyTheSetBitsInOrder) {
  std::mt19937 rng(19);
  for (std::size_t n : kSizes) {
    const BitVec ref = random_bits(n, rng, 0.2);
    const PackedBits packed = PackedBits::from_bits(ref);
    std::vector<std::size_t> expect;
    for (std::size_t i = 0; i < n; ++i) {
      if (ref[i]) expect.push_back(i);
    }
    std::vector<std::size_t> got;
    packed.for_each_set([&](std::size_t i) { got.push_back(i); });
    EXPECT_EQ(got, expect) << "size " << n;
  }
}

TEST(PackedBits, MutatorsMatchReference) {
  std::mt19937 rng(23);
  const std::size_t n = 130;
  BitVec ref = random_bits(n, rng);
  PackedBits packed = PackedBits::from_bits(ref);
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  for (int step = 0; step < 500; ++step) {
    const std::size_t i = pick(rng);
    switch (step % 3) {
      case 0:
        packed.set(i);
        ref[i] = 1;
        break;
      case 1:
        packed.reset(i);
        ref[i] = 0;
        break;
      default:
        packed.flip(i);
        ref[i] ^= 1;
        break;
    }
    ASSERT_EQ(packed.test(i), ref[i] != 0);
  }
  EXPECT_EQ(packed.to_bits(), ref);
  packed.clear_all();
  EXPECT_TRUE(packed.none());
  EXPECT_EQ(packed.size(), n);
}

TEST(PackedBits, AssignAndCopyReuseStorage) {
  std::mt19937 rng(29);
  for (std::size_t n : {std::size_t{72}, std::size_t{100}}) {
    const BitVec a = random_bits(n, rng);
    const BitVec b = random_bits(n, rng);
    PackedBits packed(n);
    packed.assign_bits(a);
    EXPECT_EQ(packed.to_bits(), a);
    packed.assign_bits(b);
    EXPECT_EQ(packed.to_bits(), b);
    PackedBits other(n);
    other.copy_from(packed);
    EXPECT_EQ(other, packed);
  }
}

TEST(PackedBits, ByteSerializationMatchesTracePayloadPacking) {
  std::mt19937 rng(31);
  for (std::size_t n : kSizes) {
    const BitVec ref = random_bits(n, rng);
    const PackedBits packed = PackedBits::from_bits(ref);

    // append_bytes must be byte-identical to the format-defining packer.
    std::vector<std::uint8_t> bytes;
    packed.append_bytes(bytes);
    EXPECT_EQ(bytes, pack_bits(ref)) << "size " << n;

    // ...and from_bytes must invert it.
    const PackedBits loaded =
        PackedBits::from_bytes(bytes.data(), n);
    EXPECT_EQ(loaded, packed) << "size " << n;
    EXPECT_EQ(loaded.to_bits(), unpack_bits(bytes.data(), n));
  }
}

TEST(PackedBits, FromBytesMasksStrayPaddingBits) {
  // 10 bits occupy 2 bytes; the top 6 bits of the second byte are padding
  // and must not leak into the vector (they would corrupt popcount/any).
  const std::uint8_t bytes[] = {0xff, 0xff};
  const PackedBits packed = PackedBits::from_bytes(bytes, 10);
  EXPECT_EQ(packed.popcount(), 10);
  EXPECT_EQ(packed.word(0), 0x3ffULL);
}

TEST(PackedBits, PauliFrameHelpersMatchByteVersions) {
  std::mt19937 rng(37);
  const std::size_t n = 41;  // d = 5 data qubits
  const BitVec a = random_bits(n, rng);
  const BitVec b = random_bits(n, rng);
  const PackedBits pa = PackedBits::from_bits(a);
  const PackedBits pb = PackedBits::from_bits(b);
  EXPECT_EQ(weight(pa), weight(a));
  EXPECT_EQ(is_zero(pa), is_zero(a));
  EXPECT_EQ(xor_of(pa, pb).to_bits(), xor_of(a, b));
  PackedBits acc = pa;
  xor_into(pb, acc);
  EXPECT_EQ(acc, xor_of(pa, pb));
}

}  // namespace
}  // namespace qec
