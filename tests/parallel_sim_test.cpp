// Determinism tests for the sharded Monte Carlo engine: a parallel run must
// be bit-identical to a sequential run of the same shard schedule, and the
// merge primitives it relies on must agree with their streaming forms.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/stats.hpp"
#include "decoder/registry.hpp"
#include "mwpm/mwpm_decoder.hpp"
#include "qecool/qecool_decoder.hpp"
#include "sim/executor.hpp"
#include "sim/monte_carlo.hpp"

namespace qec {
namespace {

void expect_same(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.operational_failures, b.operational_failures);
  EXPECT_EQ(a.matches.pair_matches, b.matches.pair_matches);
  EXPECT_EQ(a.matches.self_matches, b.matches.self_matches);
  EXPECT_EQ(a.matches.boundary_matches, b.matches.boundary_matches);
  EXPECT_EQ(a.matches.vertical_hist, b.matches.vertical_hist);
  EXPECT_EQ(a.layer_cycles.count(), b.layer_cycles.count());
  // Merges happen in shard order on both sides, so even the floating-point
  // reductions are performed in an identical sequence.
  EXPECT_DOUBLE_EQ(a.layer_cycles.mean(), b.layer_cycles.mean());
  EXPECT_DOUBLE_EQ(a.layer_cycles.variance(), b.layer_cycles.variance());
}

TEST(RunningStatsMerge, MatchesStreamingAccumulation) {
  RunningStats whole, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = 0.37 * i * i - 5.0 * i + 2.0;
    whole.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStatsMerge, EmptySidesAreIdentity) {
  RunningStats stats, empty;
  stats.add(1.0);
  stats.add(3.0);
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.0);

  RunningStats fresh;
  fresh.merge(stats);
  EXPECT_EQ(fresh.count(), 2u);
  EXPECT_DOUBLE_EQ(fresh.mean(), 2.0);
  EXPECT_DOUBLE_EQ(fresh.min(), 1.0);
  EXPECT_DOUBLE_EQ(fresh.max(), 3.0);
}

TEST(MatchStatsMerge, AddsCountersAndHistogram) {
  MatchStats a, b;
  a.pair_matches = 2;
  a.record(1);
  a.record(4);
  b.self_matches = 1;
  b.boundary_matches = 3;
  b.record(6);
  a.merge(b);
  EXPECT_EQ(a.pair_matches, 2u);
  EXPECT_EQ(a.self_matches, 1u);
  EXPECT_EQ(a.boundary_matches, 3u);
  EXPECT_EQ(a.total(), 6u);
  EXPECT_EQ(a.vertical_ge3, 2u);  // dt=4 and dt=6
  ASSERT_EQ(a.vertical_hist.size(), 7u);
  EXPECT_EQ(a.vertical_hist[1], 1u);
  EXPECT_EQ(a.vertical_hist[4], 1u);
  EXPECT_EQ(a.vertical_hist[6], 1u);
}

TEST(ExperimentRng, ShardStreamsAreDistinct) {
  const ExperimentConfig config = phenomenological_config(5, 0.01, 100);
  Xoshiro256ss s0 = experiment_rng(config, 0);
  Xoshiro256ss s1 = experiment_rng(config, 1);
  Xoshiro256ss s0_again = experiment_rng(config, 0);
  EXPECT_NE(s0(), s1());
  Xoshiro256ss fresh = experiment_rng(config, 0);
  EXPECT_EQ(fresh(), s0_again());
}

TEST(ExperimentRng, TinyProbabilitiesStillPerturbTheStream) {
  // The old mixing cast p * 1e12 to an integer, so any p below 1e-12
  // collapsed to the same stream. The IEEE-754 bit mixing must not.
  ExperimentConfig a = phenomenological_config(5, 1e-15, 100);
  ExperimentConfig b = phenomenological_config(5, 2e-15, 100);
  ExperimentConfig zero = phenomenological_config(5, 0.0, 100);
  EXPECT_NE(experiment_rng(a)(), experiment_rng(b)());
  EXPECT_NE(experiment_rng(a)(), experiment_rng(zero)());
}

TEST(ExperimentRng, PMeasPerturbsIndependentlyOfPData) {
  ExperimentConfig a = phenomenological_config(5, 0.01, 100);
  ExperimentConfig b = a;
  b.p_data = 0.02;
  ExperimentConfig c = a;
  c.p_meas = 0.02;
  EXPECT_NE(experiment_rng(a)(), experiment_rng(b)());
  EXPECT_NE(experiment_rng(a)(), experiment_rng(c)());
  EXPECT_NE(experiment_rng(b)(), experiment_rng(c)());
}

TEST(ParallelExecutor, RunsEveryTaskExactlyOnce) {
  std::vector<std::atomic<int>> hits(64);
  parallel_for(64, 4, [&](int i) { ++hits[static_cast<std::size_t>(i)]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelExecutor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(8, 4,
                   [](int i) {
                     if (i == 3) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ParallelExecutor, ResolveThreadsHandlesAutoAndExplicit) {
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_GE(resolve_threads(0), 1);
  EXPECT_GE(resolve_threads(-1), 1);
}

TEST(ShardedMemory, ParallelMatchesSequentialBitForBit) {
  ExperimentConfig config = phenomenological_config(5, 0.02, 240, 77);
  config.shards = 8;
  const auto maker = decoder_maker("qecool");

  config.threads = 1;
  const auto sequential = run_memory_experiment(maker, config);
  config.threads = 4;
  const auto parallel = run_memory_experiment(maker, config);
  EXPECT_GT(sequential.failures, 0u);
  expect_same(sequential, parallel);
}

TEST(ShardedMemory, SingleInstanceOverloadMatchesMakerOverload) {
  ExperimentConfig config = phenomenological_config(5, 0.02, 160, 3);
  config.shards = 4;
  config.threads = 4;
  BatchQecoolDecoder decoder;
  const auto shared_instance = run_memory_experiment(decoder, config);
  const auto per_shard = run_memory_experiment(decoder_maker("qecool"), config);
  expect_same(shared_instance, per_shard);
}

TEST(ShardedMemory, DefaultConfigIsTheLegacySingleStream) {
  // threads = 1, shards = 0 must resolve to exactly one shard whose stream
  // is the un-jumped mixed seed — the pre-sharding sequential behaviour.
  ExperimentConfig config = phenomenological_config(5, 0.02, 100, 5);
  EXPECT_EQ(resolve_shards(config), 1);
  MwpmDecoder decoder;
  const auto implicit = run_memory_experiment(decoder, config);
  config.shards = 1;
  const auto explicit_one = run_memory_experiment(decoder, config);
  expect_same(implicit, explicit_one);
}

TEST(ShardedMemory, ShardCountChangesTheSampledStreams) {
  // Shards are independent streams, so the schedule is part of the seed
  // contract; document that by expecting *different* samples.
  ExperimentConfig one = phenomenological_config(5, 0.03, 400, 9);
  ExperimentConfig many = one;
  many.shards = 8;
  MwpmDecoder decoder;
  const auto a = run_memory_experiment(decoder, one);
  const auto b = run_memory_experiment(decoder, many);
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_TRUE(a.failures != b.failures || a.matches.total() != b.matches.total());
}

TEST(ShardedMemory, MoreShardsThanTrialsIsSafe) {
  ExperimentConfig config = phenomenological_config(3, 0.02, 5, 1);
  config.shards = 16;
  config.threads = 4;
  const auto result = run_memory_experiment(decoder_maker("mwpm"), config);
  EXPECT_EQ(result.trials, 5u);
}

TEST(ShardedOnline, ParallelMatchesSequentialBitForBit) {
  ExperimentConfig config = phenomenological_config(5, 0.01, 160, 13);
  config.shards = 8;
  OnlineConfig online;
  online.cycles_per_round = 2000;

  config.threads = 1;
  const auto sequential = run_online_experiment(config, online);
  config.threads = 4;
  const auto parallel = run_online_experiment(config, online);
  EXPECT_GT(sequential.layer_cycles.count(), 0u);
  expect_same(sequential, parallel);
}

}  // namespace
}  // namespace qec
