// Geometry tests for the planar surface-code sector.
#include "surface_code/planar_lattice.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "surface_code/pauli_frame.hpp"

namespace qec {
namespace {

class LatticeGeometry : public ::testing::TestWithParam<int> {};

TEST_P(LatticeGeometry, Counts) {
  const int d = GetParam();
  const PlanarLattice lat(d);
  EXPECT_EQ(lat.distance(), d);
  EXPECT_EQ(lat.check_rows(), d);
  EXPECT_EQ(lat.check_cols(), d - 1);
  EXPECT_EQ(lat.num_checks(), d * (d - 1));
  EXPECT_EQ(lat.num_data(), d * d + (d - 1) * (d - 1));
}

TEST_P(LatticeGeometry, CheckIndexRoundTrips) {
  const PlanarLattice lat(GetParam());
  for (int idx = 0; idx < lat.num_checks(); ++idx) {
    const CheckCoord c = lat.check_coord(idx);
    EXPECT_EQ(lat.check_index(c.row, c.col), idx);
  }
}

TEST_P(LatticeGeometry, SupportSizes) {
  const int d = GetParam();
  const PlanarLattice lat(d);
  for (int r = 0; r < d; ++r) {
    for (int c = 0; c < d - 1; ++c) {
      const auto support = lat.check_support(r, c);
      // Interior rows see 4 data qubits; the first and last rows lack one
      // vertical neighbour.
      const int expected = (r == 0 || r == d - 1) ? 3 : 4;
      EXPECT_EQ(static_cast<int>(support.size()), expected)
          << "check (" << r << "," << c << ")";
    }
  }
}

TEST_P(LatticeGeometry, QubitCheckAdjacencyIsConsistent) {
  const int d = GetParam();
  const PlanarLattice lat(d);
  for (int q = 0; q < lat.num_data(); ++q) {
    const auto checks = lat.qubit_checks(q);
    ASSERT_GE(checks.size(), 1u);
    ASSERT_LE(checks.size(), 2u);
    for (int chk : checks) {
      const CheckCoord c = lat.check_coord(chk);
      const auto support = lat.check_support(c.row, c.col);
      EXPECT_NE(std::find(support.begin(), support.end(), q), support.end());
    }
  }
}

TEST_P(LatticeGeometry, BoundaryTouchingQubitsHaveOneCheck) {
  const int d = GetParam();
  const PlanarLattice lat(d);
  int single_check_qubits = 0;
  for (int q = 0; q < lat.num_data(); ++q) {
    if (lat.qubit_checks(q).size() == 1) ++single_check_qubits;
  }
  // Exactly the first/last horizontal qubit of each row touches a boundary.
  EXPECT_EQ(single_check_qubits, 2 * d);
}

TEST_P(LatticeGeometry, SyndromeIsLinear) {
  const int d = GetParam();
  const PlanarLattice lat(d);
  Xoshiro256ss rng(17u + static_cast<unsigned>(d));
  BitVec a(static_cast<std::size_t>(lat.num_data()), 0);
  BitVec b(static_cast<std::size_t>(lat.num_data()), 0);
  for (auto& bit : a) bit = static_cast<std::uint8_t>(rng.below(2));
  for (auto& bit : b) bit = static_cast<std::uint8_t>(rng.below(2));
  const BitVec sum = xor_of(a, b);
  EXPECT_EQ(lat.syndrome(sum), xor_of(lat.syndrome(a), lat.syndrome(b)));
}

TEST_P(LatticeGeometry, LPathConnectsEndpoints) {
  const int d = GetParam();
  const PlanarLattice lat(d);
  Xoshiro256ss rng(99u + static_cast<unsigned>(d));
  for (int trial = 0; trial < 50; ++trial) {
    const CheckCoord from{static_cast<int>(rng.below(d)),
                          static_cast<int>(rng.below(d - 1))};
    const CheckCoord to{static_cast<int>(rng.below(d)),
                        static_cast<int>(rng.below(d - 1))};
    if (from == to) continue;
    BitVec err(static_cast<std::size_t>(lat.num_data()), 0);
    for (int q : lat.l_path(from, to)) err[static_cast<std::size_t>(q)] ^= 1;
    // The path's syndrome must light exactly the two endpoints.
    const BitVec synd = lat.syndrome(err);
    std::set<int> lit;
    for (int i = 0; i < lat.num_checks(); ++i) {
      if (synd[static_cast<std::size_t>(i)]) lit.insert(i);
    }
    EXPECT_EQ(lit, (std::set<int>{lat.check_index(from.row, from.col),
                                  lat.check_index(to.row, to.col)}));
    // And its length is the Manhattan distance.
    EXPECT_EQ(static_cast<int>(lat.l_path(from, to).size()),
              std::abs(from.row - to.row) + std::abs(from.col - to.col));
  }
}

TEST_P(LatticeGeometry, BoundaryPathTerminatesOnOneCheck) {
  const int d = GetParam();
  const PlanarLattice lat(d);
  for (int r = 0; r < d; ++r) {
    for (int c = 0; c < d - 1; ++c) {
      BitVec err(static_cast<std::size_t>(lat.num_data()), 0);
      const auto path = lat.boundary_path({r, c});
      EXPECT_EQ(static_cast<int>(path.size()), lat.boundary_distance(c));
      for (int q : path) err[static_cast<std::size_t>(q)] ^= 1;
      const BitVec synd = lat.syndrome(err);
      int lit = 0;
      for (int i = 0; i < lat.num_checks(); ++i) {
        lit += synd[static_cast<std::size_t>(i)];
      }
      EXPECT_EQ(lit, 1);
      EXPECT_EQ(synd[static_cast<std::size_t>(lat.check_index(r, c))], 1);
    }
  }
}

TEST_P(LatticeGeometry, LogicalOperatorSpansAndFlips) {
  const int d = GetParam();
  const PlanarLattice lat(d);
  // A full row of horizontal qubits is a logical operator: syndrome-free
  // and crossing.
  for (int r = 0; r < d; ++r) {
    BitVec logical(static_cast<std::size_t>(lat.num_data()), 0);
    for (int k = 0; k < d; ++k) {
      logical[static_cast<std::size_t>(lat.horizontal_qubit(r, k))] = 1;
    }
    EXPECT_TRUE(is_zero(lat.syndrome(logical)));
    EXPECT_TRUE(lat.logical_flip(logical));
  }
}

TEST_P(LatticeGeometry, HomologicallyTrivialLoopsDoNotFlip) {
  const int d = GetParam();
  const PlanarLattice lat(d);
  // Boundary-to-same-boundary "detour": go right then back = empty, so use
  // an elementary face loop instead: two horizontal + two vertical qubits
  // around a face.
  for (int r = 0; r + 1 < d; ++r) {
    for (int k = 1; k < d - 1; ++k) {
      BitVec loop(static_cast<std::size_t>(lat.num_data()), 0);
      loop[static_cast<std::size_t>(lat.horizontal_qubit(r, k))] = 1;
      loop[static_cast<std::size_t>(lat.horizontal_qubit(r + 1, k))] = 1;
      loop[static_cast<std::size_t>(lat.vertical_qubit(r, k - 1))] = 1;
      loop[static_cast<std::size_t>(lat.vertical_qubit(r, k))] = 1;
      ASSERT_TRUE(is_zero(lat.syndrome(loop)))
          << "face loop at r=" << r << " k=" << k;
      EXPECT_FALSE(lat.logical_flip(loop));
    }
  }
}

TEST_P(LatticeGeometry, BoundaryDistanceSymmetry) {
  const int d = GetParam();
  const PlanarLattice lat(d);
  for (int c = 0; c < d - 1; ++c) {
    EXPECT_EQ(lat.boundary_distance(c), lat.boundary_distance(d - 2 - c));
    EXPECT_GE(lat.boundary_distance(c), 1);
    EXPECT_LE(lat.boundary_distance(c), (d + 1) / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Distances, LatticeGeometry,
                         ::testing::Values(2, 3, 5, 7, 9, 11, 13),
                         ::testing::PrintToStringParamName());

TEST(Lattice, RejectsTooSmallDistance) {
  EXPECT_THROW(PlanarLattice(1), std::invalid_argument);
  EXPECT_THROW(PlanarLattice(0), std::invalid_argument);
}

TEST(Direction, OppositeIsInvolution) {
  for (Direction dir : {Direction::North, Direction::East, Direction::South,
                        Direction::West}) {
    EXPECT_EQ(opposite(opposite(dir)), dir);
    EXPECT_NE(opposite(dir), dir);
  }
}

TEST(PauliFrame, WeightAndXor) {
  BitVec a{1, 0, 1, 0};
  const BitVec b{1, 1, 0, 0};
  EXPECT_EQ(weight(a), 2);
  EXPECT_EQ(xor_of(a, b), (BitVec{0, 1, 1, 0}));
  xor_into(b, a);
  EXPECT_EQ(a, (BitVec{0, 1, 1, 0}));
  EXPECT_FALSE(is_zero(a));
  EXPECT_TRUE(is_zero(BitVec{0, 0}));
}

}  // namespace
}  // namespace qec
