// Tests for the QECOOL engine: Reg queue mechanics, token/spike matching
// semantics, cycle accounting, and the batch decoder built on top.
#include "qecool/engine.hpp"

#include <gtest/gtest.h>

#include "decoder/decoder.hpp"
#include "noise/phenomenological.hpp"
#include "qecool/qecool_decoder.hpp"
#include "surface_code/pauli_frame.hpp"

namespace qec {
namespace {

BitVec layer_with(const PlanarLattice& lat, std::vector<CheckCoord> coords) {
  BitVec layer(static_cast<std::size_t>(lat.num_checks()), 0);
  for (const auto& c : coords) {
    layer[static_cast<std::size_t>(lat.check_index(c.row, c.col))] = 1;
  }
  return layer;
}

QecoolConfig batch_config(int reg_depth) {
  QecoolConfig config;
  config.thv = -1;
  config.reg_depth = reg_depth;
  return config;
}

TEST(QecoolEngine, PushPopMechanics) {
  const PlanarLattice lat(5);
  QecoolEngine engine(lat, batch_config(3));
  const BitVec clean(static_cast<std::size_t>(lat.num_checks()), 0);
  EXPECT_TRUE(engine.push_layer(clean));
  EXPECT_TRUE(engine.push_layer(clean));
  EXPECT_TRUE(engine.push_layer(clean));
  EXPECT_FALSE(engine.push_layer(clean)) << "4th push must overflow depth 3";
  EXPECT_EQ(engine.stored_layers(), 3);
  engine.run(QecoolEngine::kUnlimited);
  EXPECT_EQ(engine.stored_layers(), 0);
  EXPECT_EQ(engine.popped_layers(), 3);
  EXPECT_TRUE(engine.all_clear());
}

TEST(QecoolEngine, CleanLayerCostsAboutOnePass) {
  // Row master skips every clean row: cost ~ rows + pass overhead + pop.
  const PlanarLattice lat(5);
  QecoolEngine engine(lat, batch_config(1));
  engine.push_layer(BitVec(static_cast<std::size_t>(lat.num_checks()), 0));
  engine.run(QecoolEngine::kUnlimited);
  ASSERT_EQ(engine.layer_cycles().size(), 1u);
  EXPECT_EQ(engine.layer_cycles()[0], 5u + 1u + 1u);
}

TEST(QecoolEngine, AdjacentPairMatchesAtHopLimitOne) {
  const PlanarLattice lat(5);
  QecoolEngine engine(lat, batch_config(1));
  engine.push_layer(layer_with(lat, {{2, 1}, {2, 2}}));
  engine.run(QecoolEngine::kUnlimited);
  EXPECT_TRUE(engine.all_clear());
  EXPECT_EQ(engine.match_stats().pair_matches, 1u);
  EXPECT_EQ(engine.match_stats().boundary_matches, 0u);
  // The correction is exactly the data qubit between the two checks.
  BitVec expected(static_cast<std::size_t>(lat.num_data()), 0);
  expected[static_cast<std::size_t>(lat.horizontal_qubit(2, 2))] = 1;
  EXPECT_EQ(engine.correction(), expected);
}

TEST(QecoolEngine, VerticalPairSelfMatchesWithoutCorrection) {
  // A measurement error: same Unit flagged in consecutive layers.
  const PlanarLattice lat(5);
  QecoolEngine engine(lat, batch_config(2));
  engine.push_layer(layer_with(lat, {{1, 2}}));
  engine.push_layer(layer_with(lat, {{1, 2}}));
  engine.run(QecoolEngine::kUnlimited);
  EXPECT_TRUE(engine.all_clear());
  EXPECT_EQ(engine.match_stats().self_matches, 1u);
  EXPECT_TRUE(is_zero(engine.correction()));
}

TEST(QecoolEngine, LoneDefectMatchesNearestBoundary) {
  const PlanarLattice lat(5);
  {
    QecoolEngine engine(lat, batch_config(1));
    engine.push_layer(layer_with(lat, {{2, 0}}));  // 1 hop from left wall
    engine.run(QecoolEngine::kUnlimited);
    EXPECT_EQ(engine.match_stats().boundary_matches, 1u);
    BitVec expected(static_cast<std::size_t>(lat.num_data()), 0);
    expected[static_cast<std::size_t>(lat.horizontal_qubit(2, 0))] = 1;
    EXPECT_EQ(engine.correction(), expected);
  }
  {
    QecoolEngine engine(lat, batch_config(1));
    engine.push_layer(layer_with(lat, {{2, 3}}));  // 1 hop from right wall
    engine.run(QecoolEngine::kUnlimited);
    BitVec expected(static_cast<std::size_t>(lat.num_data()), 0);
    expected[static_cast<std::size_t>(lat.horizontal_qubit(2, 4))] = 1;
    EXPECT_EQ(engine.correction(), expected);
  }
}

TEST(QecoolEngine, UnitBeatsBoundaryAtEqualDistance) {
  // Defects at (2,0) and (2,1): each is 1 hop from the other; (2,0) is also
  // 1 hop from the left wall. Deprioritization makes the pair win.
  const PlanarLattice lat(5);
  QecoolEngine engine(lat, batch_config(1));
  engine.push_layer(layer_with(lat, {{2, 0}, {2, 1}}));
  engine.run(QecoolEngine::kUnlimited);
  EXPECT_EQ(engine.match_stats().pair_matches, 1u);
  EXPECT_EQ(engine.match_stats().boundary_matches, 0u);
}

TEST(QecoolEngine, BoundaryWinsWithoutDeprioritization) {
  const PlanarLattice lat(5);
  QecoolConfig config = batch_config(1);
  config.deprioritize_boundary = false;
  QecoolEngine engine(lat, config);
  engine.push_layer(layer_with(lat, {{2, 0}, {2, 1}}));
  engine.run(QecoolEngine::kUnlimited);
  // Sink (2,0): boundary (West, port rank 0) now ties the unit spike from
  // the East and wins on port priority.
  EXPECT_EQ(engine.match_stats().boundary_matches, 2u);
  EXPECT_EQ(engine.match_stats().pair_matches, 0u);
}

TEST(QecoolEngine, HopLimitEscalationFindsDistantPair) {
  const PlanarLattice lat(9);
  QecoolEngine engine(lat, batch_config(1));
  engine.push_layer(layer_with(lat, {{4, 2}, {4, 5}}));  // distance 3
  engine.run(QecoolEngine::kUnlimited);
  // Each defect is 3 hops from its partner and 3+ hops from the nearest
  // wall; deprioritization breaks the tie for (4,2) (left wall at 3) in
  // favour of the partner.
  EXPECT_EQ(engine.match_stats().pair_matches, 1u);
  EXPECT_TRUE(engine.all_clear());
}

TEST(QecoolEngine, MixedSpaceTimeMatch) {
  // Defect at (2,1) layer 0 and (2,2) layer 1: arrival = 1 hop + 1 depth.
  const PlanarLattice lat(5);
  QecoolEngine engine(lat, batch_config(2));
  engine.push_layer(layer_with(lat, {{2, 1}}));
  engine.push_layer(layer_with(lat, {{2, 2}}));
  engine.run(QecoolEngine::kUnlimited);
  EXPECT_TRUE(engine.all_clear());
  EXPECT_EQ(engine.match_stats().pair_matches, 1u);
  ASSERT_GE(engine.match_stats().vertical_hist.size(), 2u);
  EXPECT_EQ(engine.match_stats().vertical_hist[1], 1u);
  // Correction still flips the single spatial edge between the checks.
  BitVec expected(static_cast<std::size_t>(lat.num_data()), 0);
  expected[static_cast<std::size_t>(lat.horizontal_qubit(2, 2))] = 1;
  EXPECT_EQ(engine.correction(), expected);
}

TEST(QecoolEngine, ThvGatesDecoding) {
  const PlanarLattice lat(5);
  QecoolConfig config;
  config.thv = 3;
  config.reg_depth = 7;
  QecoolEngine engine(lat, config);
  engine.push_layer(layer_with(lat, {{2, 1}, {2, 2}}));
  // Only 1 stored layer: m - b = 1 <= thv, so the engine must idle.
  EXPECT_EQ(engine.run(QecoolEngine::kUnlimited), 0u);
  EXPECT_FALSE(engine.all_clear());
  const BitVec clean(static_cast<std::size_t>(lat.num_checks()), 0);
  engine.push_layer(clean);
  engine.push_layer(clean);
  EXPECT_EQ(engine.run(QecoolEngine::kUnlimited), 0u) << "m=3 still gated";
  engine.push_layer(clean);
  engine.run(QecoolEngine::kUnlimited);  // m=4 > thv: now decodable
  EXPECT_TRUE(engine.all_clear());
  EXPECT_EQ(engine.match_stats().pair_matches, 1u);
}

TEST(QecoolEngine, BudgetedRunsResumeAndMatchUnbudgeted) {
  const PlanarLattice lat(7);
  Xoshiro256ss rng(123);
  const auto h = sample_history(lat, {0.03, 0.03, 7}, rng);

  QecoolEngine full(lat, batch_config(h.total_rounds()));
  for (const auto& layer : h.difference) full.push_layer(layer);
  full.run(QecoolEngine::kUnlimited);

  QecoolEngine sliced(lat, batch_config(h.total_rounds()));
  for (const auto& layer : h.difference) sliced.push_layer(layer);
  while (!(sliced.all_clear() && sliced.stored_layers() == 0)) {
    sliced.run(3);  // tiny budget slices
  }
  EXPECT_EQ(sliced.correction(), full.correction());
  EXPECT_EQ(sliced.total_cycles(), full.total_cycles());
  EXPECT_EQ(sliced.match_stats().pair_matches, full.match_stats().pair_matches);
}

TEST(QecoolEngine, CyclesGrowWithDefectLoad) {
  const PlanarLattice lat(9);
  QecoolEngine light(lat, batch_config(1));
  light.push_layer(layer_with(lat, {{0, 0}}));
  light.run(QecoolEngine::kUnlimited);

  QecoolEngine heavy(lat, batch_config(1));
  heavy.push_layer(layer_with(lat, {{0, 0}, {2, 3}, {5, 6}, {8, 1}, {4, 4}}));
  heavy.run(QecoolEngine::kUnlimited);
  EXPECT_GT(heavy.total_cycles(), light.total_cycles());
}

TEST(QecoolEngine, RejectsBadRegDepth) {
  const PlanarLattice lat(3);
  QecoolConfig config;
  config.reg_depth = 0;
  EXPECT_THROW(QecoolEngine(lat, config), std::invalid_argument);
}

TEST(MatchStatsTest, RecordAndMerge) {
  MatchStats a;
  a.record(0);
  a.record(4);
  a.pair_matches = 2;
  MatchStats b;
  b.record(3);
  b.self_matches = 1;
  a.merge(b);
  EXPECT_EQ(a.vertical_ge3, 2u);
  EXPECT_EQ(a.total(), 3u);
  ASSERT_GE(a.vertical_hist.size(), 5u);
  EXPECT_EQ(a.vertical_hist[0], 1u);
  EXPECT_EQ(a.vertical_hist[3], 1u);
  EXPECT_EQ(a.vertical_hist[4], 1u);
}

// --- Batch decoder on top of the engine ------------------------------------

SyndromeHistory history_from_error(const PlanarLattice& lat,
                                   const BitVec& error) {
  SyndromeHistory h;
  h.final_error = error;
  h.measured = {lat.syndrome(error), lat.syndrome(error)};
  h.difference = difference_syndromes(h.measured);
  return h;
}

TEST(BatchQecool, CorrectsEverySingleDataError) {
  const PlanarLattice lat(5);
  BatchQecoolDecoder dec;
  for (int q = 0; q < lat.num_data(); ++q) {
    BitVec err(static_cast<std::size_t>(lat.num_data()), 0);
    err[static_cast<std::size_t>(q)] = 1;
    const auto h = history_from_error(lat, err);
    const auto r = dec.decode(lat, h);
    ASSERT_TRUE(residual_syndrome_free(lat, h, r)) << "qubit " << q;
    EXPECT_FALSE(logical_failure(lat, h, r)) << "qubit " << q;
  }
}

class QecoolRandomHistories : public ::testing::TestWithParam<int> {};

TEST_P(QecoolRandomHistories, ResidualAlwaysSyndromeFree) {
  const int d = GetParam();
  const PlanarLattice lat(d);
  Xoshiro256ss rng(41u * static_cast<unsigned>(d));
  BatchQecoolDecoder dec;
  for (int trial = 0; trial < 40; ++trial) {
    const auto h = sample_history(lat, {0.03, 0.03, d}, rng);
    const auto r = dec.decode(lat, h);
    ASSERT_TRUE(residual_syndrome_free(lat, h, r)) << "trial " << trial;
  }
}

TEST_P(QecoolRandomHistories, DecodeIsDeterministic) {
  const int d = GetParam();
  const PlanarLattice lat(d);
  Xoshiro256ss rng(43u * static_cast<unsigned>(d));
  BatchQecoolDecoder dec;
  const auto h = sample_history(lat, {0.05, 0.05, d}, rng);
  const auto r1 = dec.decode(lat, h);
  const auto r2 = dec.decode(lat, h);
  EXPECT_EQ(r1.correction, r2.correction);
  EXPECT_EQ(r1.work, r2.work);
}

INSTANTIATE_TEST_SUITE_P(Distances, QecoolRandomHistories,
                         ::testing::Values(3, 5, 7, 9),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace qec
