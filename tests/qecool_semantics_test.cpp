// Deeper semantic tests of the QECOOL engine: routing geometry, race
// priorities, controller configuration knobs, and cycle-model plumbing.
#include <gtest/gtest.h>

#include "decoder/decoder.hpp"
#include "noise/phenomenological.hpp"
#include "qecool/engine.hpp"
#include "qecool/qecool_decoder.hpp"
#include "surface_code/pauli_frame.hpp"

namespace qec {
namespace {

BitVec layer_with(const PlanarLattice& lat, std::vector<CheckCoord> coords) {
  BitVec layer(static_cast<std::size_t>(lat.num_checks()), 0);
  for (const auto& c : coords) {
    layer[static_cast<std::size_t>(lat.check_index(c.row, c.col))] = 1;
  }
  return layer;
}

QecoolConfig batch_config(int reg_depth) {
  QecoolConfig config;
  config.thv = -1;
  config.reg_depth = reg_depth;
  return config;
}

TEST(QecoolRouting, LPathCorrectionMatchesSpikeGeometry) {
  // Sink at (1,1) (row-major token order), source at (2,2): the spike
  // travels north along column 2 to row 1, then west along row 1. The
  // boundary is equidistant (2 hops) but deprioritized, so the pair wins
  // and the syndrome flips exactly the two data qubits on the L-path.
  const PlanarLattice lat(5);
  QecoolEngine engine(lat, batch_config(1));
  engine.push_layer(layer_with(lat, {{1, 1}, {2, 2}}));
  engine.run(QecoolEngine::kUnlimited);
  ASSERT_TRUE(engine.all_clear());
  BitVec expected(static_cast<std::size_t>(lat.num_data()), 0);
  expected[static_cast<std::size_t>(lat.vertical_qubit(1, 2))] ^= 1;
  expected[static_cast<std::size_t>(lat.horizontal_qubit(1, 2))] ^= 1;
  EXPECT_EQ(engine.correction(), expected);
  EXPECT_EQ(engine.match_stats().pair_matches, 1u);
}

TEST(QecoolRouting, DoubleBoundaryBeatsExpensivePair) {
  // Defects at (1,1) and (3,3): pairing costs 4, two boundary matches cost
  // 2 + 1 = 3 — the greedy engine must take the boundaries.
  const PlanarLattice lat(5);
  QecoolEngine engine(lat, batch_config(1));
  engine.push_layer(layer_with(lat, {{1, 1}, {3, 3}}));
  engine.run(QecoolEngine::kUnlimited);
  ASSERT_TRUE(engine.all_clear());
  EXPECT_EQ(engine.match_stats().boundary_matches, 2u);
  EXPECT_EQ(engine.match_stats().pair_matches, 0u);
  EXPECT_EQ(weight(engine.correction()), 3);
}

TEST(QecoolRouting, CorrectionIsSyndromeValidForRandomPairs) {
  // Whatever pair matches, applying the correction must clear exactly the
  // two defects' checks.
  const PlanarLattice lat(9);
  Xoshiro256ss rng(404);
  for (int trial = 0; trial < 60; ++trial) {
    const int r1 = static_cast<int>(rng.below(9));
    const int c1 = static_cast<int>(rng.below(8));
    int r2 = static_cast<int>(rng.below(9));
    int c2 = static_cast<int>(rng.below(8));
    if (r1 == r2 && c1 == c2) continue;
    QecoolEngine engine(lat, batch_config(1));
    engine.push_layer(layer_with(lat, {{r1, c1}, {r2, c2}}));
    engine.run(QecoolEngine::kUnlimited);
    ASSERT_TRUE(engine.all_clear());
    // Residual after correcting the "virtual error" = syndrome of the
    // correction must equal the pushed defect pattern or account for
    // boundary matches.
    const BitVec synd = lat.syndrome(engine.correction());
    const auto& stats = engine.match_stats();
    if (stats.pair_matches == 1 && stats.boundary_matches == 0) {
      EXPECT_EQ(synd, layer_with(lat, {{r1, c1}, {r2, c2}}));
    } else {
      // Two boundary matches: each defect cleared separately.
      EXPECT_EQ(stats.boundary_matches, 2u);
      EXPECT_EQ(synd, layer_with(lat, {{r1, c1}, {r2, c2}}));
    }
  }
}

TEST(QecoolRace, ThreeDefectsResolveDeterministically) {
  // Token order makes (2,1) the first sink; it matches its adjacent
  // partner (2,2) and the leftover (3,2) escalates to a boundary match.
  // Whatever the routing details, the total correction's syndrome must
  // equal the pushed defect pattern.
  const PlanarLattice lat(5);
  QecoolEngine engine(lat, batch_config(1));
  engine.push_layer(layer_with(lat, {{2, 2}, {2, 1}, {3, 2}}));
  engine.run(QecoolEngine::kUnlimited);
  const BitVec synd = lat.syndrome(engine.correction());
  EXPECT_EQ(synd, layer_with(lat, {{2, 2}, {2, 1}, {3, 2}}));
  EXPECT_TRUE(engine.all_clear());
  EXPECT_EQ(engine.match_stats().pair_matches, 1u);
  EXPECT_EQ(engine.match_stats().boundary_matches, 1u);
}

TEST(QecoolRace, TokenOrderIsRowMajor) {
  // With defects at (0,3) and (4,0), the token reaches (0,3) first; it
  // becomes the sink and matches the boundary (distance 1 to the right
  // wall at d=5: col 3 -> distance min(4, 1) = 1).
  const PlanarLattice lat(5);
  QecoolEngine engine(lat, batch_config(1));
  engine.push_layer(layer_with(lat, {{0, 3}, {4, 0}}));
  engine.run(QecoolEngine::kUnlimited);
  EXPECT_EQ(engine.match_stats().boundary_matches, 2u);
  BitVec expected(static_cast<std::size_t>(lat.num_data()), 0);
  expected[static_cast<std::size_t>(lat.horizontal_qubit(0, 4))] = 1;
  expected[static_cast<std::size_t>(lat.horizontal_qubit(4, 0))] = 1;
  EXPECT_EQ(engine.correction(), expected);
}

TEST(QecoolConfigKnobs, CustomNlimitRespected) {
  // nlimit=1 can only ever match adjacent pairs; a distance-2 pair plus
  // far boundaries (impossible within 1 hop) stays stuck until... the
  // escalation wraps at nlimit, so the engine would never clear. The
  // run must terminate by budget, not spin forever.
  const PlanarLattice lat(9);
  QecoolConfig config = batch_config(1);
  config.nlimit = 1;
  QecoolEngine engine(lat, config);
  engine.push_layer(layer_with(lat, {{4, 3}, {4, 5}}));  // distance 2
  const std::uint64_t spent = engine.run(5000);
  EXPECT_GE(spent, 5000u) << "budget must bound the spin";
  EXPECT_FALSE(engine.all_clear());
}

TEST(QecoolConfigKnobs, StartAtMaxHopMatchesInOnePass) {
  const PlanarLattice lat(9);
  QecoolConfig config = batch_config(1);
  config.start_at_max_hop = true;
  QecoolEngine engine(lat, config);
  engine.push_layer(layer_with(lat, {{4, 3}, {4, 5}}));
  engine.run(QecoolEngine::kUnlimited);
  EXPECT_TRUE(engine.all_clear());
  EXPECT_EQ(engine.match_stats().pair_matches, 1u);
}

TEST(QecoolConfigKnobs, CycleCostsScaleReportedWork) {
  const PlanarLattice lat(5);
  QecoolConfig cheap = batch_config(1);
  QecoolConfig costly = batch_config(1);
  costly.cycles.row_skip = 10;
  costly.cycles.pass_overhead = 10;
  costly.cycles.pop = 10;
  QecoolEngine a(lat, cheap), b(lat, costly);
  const BitVec clean(static_cast<std::size_t>(lat.num_checks()), 0);
  a.push_layer(clean);
  b.push_layer(clean);
  a.run(QecoolEngine::kUnlimited);
  b.run(QecoolEngine::kUnlimited);
  EXPECT_EQ(a.total_cycles() * 10, b.total_cycles());
}

TEST(QecoolEngineState, RegBitAccessor) {
  const PlanarLattice lat(5);
  QecoolEngine engine(lat, batch_config(3));
  engine.push_layer(layer_with(lat, {{2, 2}}));
  engine.push_layer(layer_with(lat, {{1, 1}}));
  EXPECT_TRUE(engine.reg_bit(2, 2, 0));
  EXPECT_FALSE(engine.reg_bit(2, 2, 1));
  EXPECT_TRUE(engine.reg_bit(1, 1, 1));
  EXPECT_EQ(engine.stored_layers(), 2);
}

TEST(QecoolEngineState, CorrectionAccumulatesAcrossRuns) {
  const PlanarLattice lat(5);
  QecoolEngine engine(lat, batch_config(2));
  engine.push_layer(layer_with(lat, {{2, 1}, {2, 2}}));
  engine.run(QecoolEngine::kUnlimited);
  const int w1 = weight(engine.correction());
  engine.push_layer(layer_with(lat, {{0, 0}}));
  engine.run(QecoolEngine::kUnlimited);
  EXPECT_GT(weight(engine.correction()), 0);
  EXPECT_GE(weight(engine.correction()), w1);
}

TEST(QecoolDeterminism, IdenticalRunsBitForBit) {
  const PlanarLattice lat(7);
  Xoshiro256ss rng(808);
  const auto h = sample_history(lat, {0.04, 0.04, 7}, rng);
  auto run_once = [&] {
    QecoolEngine engine(lat, batch_config(h.total_rounds()));
    for (const auto& layer : h.difference) engine.push_layer(layer);
    engine.run(QecoolEngine::kUnlimited);
    return std::make_pair(engine.correction(), engine.total_cycles());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

class QecoolDeprioritizationSweep : public ::testing::TestWithParam<int> {};

TEST_P(QecoolDeprioritizationSweep, BoundaryDeprioritizationNeverHurtsMuch) {
  // Footnote 1's rationale: preferring Unit pairs over equidistant
  // boundaries should not degrade accuracy. Compare aggregate failures.
  const int d = GetParam();
  const PlanarLattice lat(d);
  Xoshiro256ss rng(515u * static_cast<unsigned>(d));
  QecoolConfig with;  // default: deprioritized
  QecoolConfig without;
  without.deprioritize_boundary = false;
  BatchQecoolDecoder dec_with(with), dec_without(without);
  int f_with = 0, f_without = 0;
  const int trials = 300;
  for (int trial = 0; trial < trials; ++trial) {
    const auto h = sample_history(lat, {0.01, 0.01, d}, rng);
    f_with += logical_failure(lat, h, dec_with.decode(lat, h));
    f_without += logical_failure(lat, h, dec_without.decode(lat, h));
  }
  EXPECT_LE(f_with, f_without + trials / 20);
}

INSTANTIATE_TEST_SUITE_P(Distances, QecoolDeprioritizationSweep,
                         ::testing::Values(5, 7),
                         ::testing::PrintToStringParamName());

}  // namespace
}  // namespace qec
