// Tests for the decoder registry: spec parsing, option plumbing, extension
// registration, and the match-stats hook on the Decoder interface.
#include <gtest/gtest.h>

#include <stdexcept>

#include "decoder/registry.hpp"
#include "mwpm/mwpm_decoder.hpp"
#include "noise/phenomenological.hpp"
#include "qecool/qecool_decoder.hpp"
#include "sim/monte_carlo.hpp"

namespace qec {
namespace {

TEST(Registry, ConstructsEveryBuiltin) {
  const auto names = registered_decoders();
  EXPECT_GE(names.size(), 6u);
  for (const auto& name : names) {
    const auto decoder = make_decoder(name);
    ASSERT_NE(decoder, nullptr) << name;
    EXPECT_FALSE(decoder->name().empty()) << name;
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_decoder("not-a-decoder"), std::invalid_argument);
}

TEST(Registry, UnknownOptionThrows) {
  EXPECT_THROW(make_decoder("qecool:tvh=3"), std::invalid_argument);
  EXPECT_THROW(make_decoder("mwpm:window=4"), std::invalid_argument);
}

TEST(Registry, MalformedOptionsThrow) {
  EXPECT_THROW(make_decoder("qecool:thv"), std::invalid_argument);
  EXPECT_THROW(make_decoder("qecool:thv="), std::invalid_argument);
  EXPECT_THROW(make_decoder("qecool:=3"), std::invalid_argument);
  EXPECT_THROW(make_decoder("qecool:thv=abc"), std::invalid_argument);
  EXPECT_THROW(make_decoder("qecool:start_at_max_hop=maybe"),
               std::invalid_argument);
}

TEST(Registry, OptionsReachTheDecoder) {
  // reg_depth=1 cannot hold a d=5 batch history (decode() resizes it, so
  // probe indirectly: start_at_max_hop changes the decode result at a
  // conflict-heavy error rate).
  ExperimentConfig config = phenomenological_config(7, 0.04, 200, 11);
  const auto escalating = run_memory_experiment(
      decoder_maker("qecool"), config);
  const auto max_hop = run_memory_experiment(
      decoder_maker("qecool:start_at_max_hop=1"), config);
  EXPECT_NE(escalating.failures, max_hop.failures);
}

TEST(Registry, WindowedMwpmOptionsParse) {
  const auto decoder = make_decoder("windowed-mwpm:window=4,guard=2");
  EXPECT_EQ(decoder->name(), "Windowed-MWPM");
}

TEST(Registry, DecoderMakerProducesFreshInstances) {
  const auto maker = decoder_maker("qecool");
  const auto a = maker();
  const auto b = maker();
  EXPECT_NE(a.get(), b.get());
}

TEST(Registry, DecoderMakerValidatesEagerly) {
  EXPECT_THROW(decoder_maker("nope"), std::invalid_argument);
}

TEST(Registry, CustomRegistrationIsVisible) {
  register_decoder("test-mwpm-alias", [](const DecoderOptions&) {
    return std::make_unique<MwpmDecoder>();
  });
  const auto decoder = make_decoder("test-mwpm-alias");
  EXPECT_EQ(decoder->name(), "MWPM");
  const auto names = registered_decoders();
  EXPECT_NE(std::find(names.begin(), names.end(), "test-mwpm-alias"),
            names.end());
}

TEST(MatchStatsHook, QecoolExposesStatsAfterDecode) {
  const PlanarLattice lattice(5);
  NoiseParams params;
  params.p_data = params.p_meas = 0.05;
  params.rounds = 5;
  Xoshiro256ss rng(42);
  const SyndromeHistory history = sample_history(lattice, params, rng);

  BatchQecoolDecoder qecool;
  ASSERT_NE(qecool.match_stats(), nullptr);
  qecool.decode(lattice, history);
  EXPECT_GT(qecool.match_stats()->total(), 0u);
  EXPECT_EQ(qecool.match_stats(), &qecool.last_match_stats());
}

TEST(MatchStatsHook, StatlessDecodersReturnNull) {
  MwpmDecoder mwpm;
  EXPECT_EQ(mwpm.match_stats(), nullptr);
}

}  // namespace
}  // namespace qec
