// Robustness / fuzz-style tests: random configurations and budgets must
// never crash, spin, or produce syndrome-inconsistent corrections.
#include <gtest/gtest.h>

#include "decoder/decoder.hpp"
#include "mwpm/blossom.hpp"
#include "noise/phenomenological.hpp"
#include "qecool/engine.hpp"
#include "qecool/online_runner.hpp"
#include "surface_code/pauli_frame.hpp"

namespace qec {
namespace {

TEST(BlossomEdge, OddVertexCountThrows) {
  BlossomMatcher matcher(3);
  EXPECT_THROW(matcher.solve(), std::invalid_argument);
}

TEST(BlossomEdge, ZeroVerticesIsEmpty) {
  BlossomMatcher matcher(0);
  EXPECT_TRUE(matcher.solve().empty());
  EXPECT_EQ(matcher.matching_weight(), 0);
}

TEST(BlossomEdge, NegativeCountThrows) {
  EXPECT_THROW(BlossomMatcher(-1), std::invalid_argument);
}

TEST(EngineFuzz, RandomPushesAndBudgetsNeverBreakInvariants) {
  Xoshiro256ss rng(31415);
  for (int iteration = 0; iteration < 60; ++iteration) {
    const int d = 3 + 2 * static_cast<int>(rng.below(4));  // 3,5,7,9
    const PlanarLattice lat(d);
    QecoolConfig config;
    config.reg_depth = 2 + static_cast<int>(rng.below(8));
    config.thv = static_cast<int>(rng.below(4)) - 1;  // -1..2
    config.deprioritize_boundary = rng.below(2) != 0;
    QecoolEngine engine(lat, config);

    for (int step = 0; step < 30; ++step) {
      if (rng.below(2)) {
        BitVec layer(static_cast<std::size_t>(lat.num_checks()), 0);
        // Push a random even-ish defect layer.
        const int defects = static_cast<int>(rng.below(5));
        for (int k = 0; k < defects; ++k) {
          layer[rng.below(static_cast<std::uint64_t>(lat.num_checks()))] ^= 1;
        }
        engine.push_layer(layer);  // overflow allowed; must not corrupt
      } else {
        engine.run(rng.below(300));
      }
      // Invariants: stored layers bounded, cycles monotone non-negative,
      // popped count consistent.
      ASSERT_LE(engine.stored_layers(), config.reg_depth);
      ASSERT_GE(engine.stored_layers(), 0);
      ASSERT_EQ(engine.popped_layers(),
                static_cast<int>(engine.layer_cycles().size()));
    }
  }
}

TEST(EngineFuzz, PopAttributionCoversAllPops) {
  const PlanarLattice lat(5);
  QecoolConfig config;
  config.thv = -1;
  config.reg_depth = 10;
  QecoolEngine engine(lat, config);
  const BitVec clean(static_cast<std::size_t>(lat.num_checks()), 0);
  for (int i = 0; i < 10; ++i) engine.push_layer(clean);
  engine.run(QecoolEngine::kUnlimited);
  EXPECT_EQ(engine.popped_layers(), 10);
  std::uint64_t attributed = 0;
  for (std::uint64_t c : engine.layer_cycles()) attributed += c;
  EXPECT_EQ(attributed, engine.total_cycles())
      << "every working cycle must be attributed to some layer";
}

TEST(OnlineFuzz, RandomHistoriesAlwaysTerminate) {
  Xoshiro256ss rng(2718);
  for (int iteration = 0; iteration < 30; ++iteration) {
    const int d = 3 + 2 * static_cast<int>(rng.below(3));
    const PlanarLattice lat(d);
    const double p = 0.005 + 0.05 * rng.uniform();
    const auto h = sample_history(lat, {p, p, d}, rng);
    OnlineConfig config;
    config.cycles_per_round = 1 + rng.below(3000);
    config.max_drain_rounds = 200;
    const auto r = run_online(lat, h, config);
    // Either it drained or it failed operationally; both are terminal.
    ASSERT_TRUE(r.drained || r.failed_operationally());
    if (r.drained) {
      DecodeResult dr;
      dr.correction = r.correction;
      ASSERT_TRUE(residual_syndrome_free(lat, h, dr));
    }
  }
}

TEST(OnlineFuzz, OverflowImpliesOperationalFailure) {
  const PlanarLattice lat(13);
  Xoshiro256ss rng(95);
  OnlineConfig config;
  config.cycles_per_round = 1;
  bool saw_overflow = false;
  for (int trial = 0; trial < 10 && !saw_overflow; ++trial) {
    const auto h = sample_history(lat, {0.03, 0.03, 13}, rng);
    const auto r = run_online(lat, h, config);
    if (r.overflow) {
      saw_overflow = true;
      EXPECT_TRUE(r.failed_operationally());
      EXPECT_FALSE(r.drained);
    }
  }
  EXPECT_TRUE(saw_overflow);
}

}  // namespace
}  // namespace qec
