// Tests for the behavioural SFQ pulse simulator and the race-logic
// priority arbiter it demonstrates.
#include "sfq/pulse_sim.hpp"

#include <gtest/gtest.h>

namespace qec {
namespace {

TEST(PulseSim, JtlDelaysPulse) {
  PulseSimulator sim;
  const auto in = sim.make_node("in");
  const auto out = sim.make_node("out");
  sim.add_jtl(in, out, 7.5);
  sim.inject(in, 10.0);
  sim.run();
  ASSERT_EQ(sim.pulse_count(out), 1);
  EXPECT_DOUBLE_EQ(sim.pulses(out)[0], 17.5);
}

TEST(PulseSim, SplitterFansOut) {
  PulseSimulator sim;
  const auto in = sim.make_node();
  const auto a = sim.make_node();
  const auto b = sim.make_node();
  sim.add_splitter(in, a, b);
  sim.inject(in, 0.0);
  sim.run();
  EXPECT_EQ(sim.pulse_count(a), 1);
  EXPECT_EQ(sim.pulse_count(b), 1);
  EXPECT_DOUBLE_EQ(sim.pulses(a)[0], cell_spec(SfqCell::Splitter).latency_ps);
}

TEST(PulseSim, MergerCombines) {
  PulseSimulator sim;
  const auto a = sim.make_node();
  const auto b = sim.make_node();
  const auto out = sim.make_node();
  sim.add_merger(a, b, out);
  sim.inject(a, 1.0);
  sim.inject(b, 5.0);
  sim.run();
  ASSERT_EQ(sim.pulse_count(out), 2);
  EXPECT_LT(sim.pulses(out)[0], sim.pulses(out)[1]);
}

TEST(PulseSim, DroStoresAndReadsDestructively) {
  PulseSimulator sim;
  const auto set = sim.make_node();
  const auto clk = sim.make_node();
  const auto out = sim.make_node();
  sim.add_dro(set, clk, out);
  sim.inject(set, 0.0);
  sim.inject(clk, 10.0);  // reads the stored pulse
  sim.inject(clk, 20.0);  // second read: empty
  sim.run();
  EXPECT_EQ(sim.pulse_count(out), 1);
}

TEST(PulseSim, DroWithoutSetStaysQuiet) {
  PulseSimulator sim;
  const auto set = sim.make_node();
  const auto clk = sim.make_node();
  const auto out = sim.make_node();
  sim.add_dro(set, clk, out);
  sim.inject(clk, 5.0);
  sim.run();
  EXPECT_EQ(sim.pulse_count(out), 0);
}

TEST(PulseSim, NdroReadsNonDestructively) {
  PulseSimulator sim;
  const auto set = sim.make_node();
  const auto reset = sim.make_node();
  const auto clk = sim.make_node();
  const auto out = sim.make_node();
  sim.add_ndro(set, reset, clk, out);
  sim.inject(set, 0.0);
  sim.inject(clk, 10.0);
  sim.inject(clk, 20.0);
  sim.inject(reset, 30.0);
  sim.inject(clk, 40.0);
  sim.run();
  EXPECT_EQ(sim.pulse_count(out), 2);  // two reads before reset, none after
}

TEST(PulseSim, RdResetClearsState) {
  PulseSimulator sim;
  const auto set = sim.make_node();
  const auto reset = sim.make_node();
  const auto clk = sim.make_node();
  const auto out = sim.make_node();
  sim.add_rd(set, reset, clk, out);
  sim.inject(set, 0.0);
  sim.inject(reset, 5.0);
  sim.inject(clk, 10.0);
  sim.run();
  EXPECT_EQ(sim.pulse_count(out), 0);
}

TEST(PulseSim, D2EmitsOnComplementaryOutputs) {
  PulseSimulator sim;
  const auto set = sim.make_node();
  const auto clk = sim.make_node();
  const auto out1 = sim.make_node();
  const auto out0 = sim.make_node();
  sim.add_d2(set, clk, out1, out0);
  sim.inject(set, 0.0);
  sim.inject(clk, 10.0);  // state set: out1
  sim.inject(clk, 20.0);  // state cleared by first read: out0
  sim.run();
  EXPECT_EQ(sim.pulse_count(out1), 1);
  EXPECT_EQ(sim.pulse_count(out0), 1);
}

TEST(PulseSim, SwitchRoutesBySelect) {
  PulseSimulator sim;
  const auto in = sim.make_node();
  const auto sel_set = sim.make_node();
  const auto sel_reset = sim.make_node();
  const auto out0 = sim.make_node();
  const auto out1 = sim.make_node();
  sim.add_switch(in, sel_set, sel_reset, out0, out1);
  sim.inject(in, 0.0);        // select clear -> out0
  sim.inject(sel_set, 10.0);
  sim.inject(in, 20.0);       // select set -> out1
  sim.inject(sel_reset, 30.0);
  sim.inject(in, 40.0);       // back to out0
  sim.run();
  EXPECT_EQ(sim.pulse_count(out0), 2);
  EXPECT_EQ(sim.pulse_count(out1), 1);
}

TEST(PulseSim, DeterministicTieBreaking) {
  // Two pulses at identical times must process in injection order.
  PulseSimulator sim;
  const auto a = sim.make_node();
  const auto b = sim.make_node();
  const auto out = sim.make_node();
  sim.add_merger(a, b, out);
  sim.inject(a, 1.0);
  sim.inject(b, 1.0);
  sim.run();
  EXPECT_EQ(sim.pulse_count(out), 2);
}

TEST(PriorityArbiterTest, EarliestPortWinsExactlyOnce) {
  PulseSimulator sim;
  const auto arb = build_priority_arbiter(sim);
  // Inject on all four ports simultaneously; the JTL skew makes port 0 (W)
  // arrive first; the switch lock must swallow the other three.
  for (int i = 0; i < 4; ++i) sim.inject(arb.port[i], 0.0);
  sim.run();
  EXPECT_EQ(sim.pulse_count(arb.winner), 1);
}

TEST(PriorityArbiterTest, LatePortCanWinWhenOthersIdle) {
  PulseSimulator sim;
  const auto arb = build_priority_arbiter(sim);
  sim.inject(arb.port[3], 2.0);  // only the lowest-priority port fires
  sim.run();
  EXPECT_EQ(sim.pulse_count(arb.winner), 1);
}

TEST(PriorityArbiterTest, PhysicallyEarlierPulseBeatsPriority) {
  // Race logic is about arrival time: a pulse on the lowest-priority port
  // that arrives sufficiently earlier still wins.
  PulseSimulator sim;
  const auto arb = build_priority_arbiter(sim);
  sim.inject(arb.port[3], 0.0);
  sim.inject(arb.port[0], 200.0);  // well after the lock engages
  sim.run();
  EXPECT_EQ(sim.pulse_count(arb.winner), 1);
}

TEST(PulseSim, RunUntilLimitsSimulation) {
  PulseSimulator sim;
  const auto in = sim.make_node();
  const auto out = sim.make_node();
  sim.add_jtl(in, out, 100.0);
  sim.inject(in, 0.0);
  sim.run(50.0);  // pulse still in flight
  EXPECT_EQ(sim.pulse_count(out), 0);
  sim.run();
  EXPECT_EQ(sim.pulse_count(out), 1);
}

}  // namespace
}  // namespace qec
