// Tests for the SFQ hardware model: Table I cells, Table II netlist,
// RSFQ/ERSFQ power, and the Table V power-budget deployments.
#include <gtest/gtest.h>

#include <cmath>

#include "sfq/budget.hpp"
#include "sfq/cell_library.hpp"
#include "sfq/power.hpp"
#include "sfq/unit_netlist.hpp"

namespace qec {
namespace {

TEST(CellLibrary, TableOneValues) {
  EXPECT_EQ(cell_spec(SfqCell::Splitter).jjs, 3);
  EXPECT_DOUBLE_EQ(cell_spec(SfqCell::Splitter).bias_ma, 0.300);
  EXPECT_EQ(cell_spec(SfqCell::Merger).jjs, 7);
  EXPECT_EQ(cell_spec(SfqCell::Switch12).jjs, 33);
  EXPECT_DOUBLE_EQ(cell_spec(SfqCell::Switch12).area_um2, 8100.0);
  EXPECT_EQ(cell_spec(SfqCell::Dro).jjs, 6);
  EXPECT_EQ(cell_spec(SfqCell::Ndro).jjs, 11);
  EXPECT_EQ(cell_spec(SfqCell::ResettableDro).jjs, 11);
  EXPECT_EQ(cell_spec(SfqCell::DualOutputDro).jjs, 12);
  EXPECT_DOUBLE_EQ(cell_spec(SfqCell::DualOutputDro).latency_ps, 6.8);
}

TEST(CellLibrary, TableIsCompleteAndOrdered) {
  const auto& table = cell_table();
  ASSERT_EQ(table.size(), static_cast<std::size_t>(kSfqCellCount));
  EXPECT_EQ(table[0].name, "splitter");
  EXPECT_EQ(table.back().name, "D2");
  for (const auto& spec : table) {
    EXPECT_GT(spec.jjs, 0);
    EXPECT_GT(spec.bias_ma, 0.0);
    EXPECT_GT(spec.area_um2, 0.0);
    EXPECT_GT(spec.latency_ps, 0.0);
  }
}

TEST(UnitNetlist, CellInstanceTotalsMatchTableTwo) {
  // Total column of Table II: 31 splitters, 65 mergers, 11 switches,
  // 3 DROs, 20 NDROs, 44 RDs, 6 D2s, 1472 wire JJs.
  const auto& modules = unit_modules();
  std::array<int, kSfqCellCount> cells{};
  int wire = 0;
  for (const auto& m : modules) {
    for (int c = 0; c < kSfqCellCount; ++c) {
      cells[static_cast<std::size_t>(c)] += m.cells[static_cast<std::size_t>(c)];
    }
    wire += m.wire_jjs;
  }
  EXPECT_EQ(cells[0], 31);   // splitter
  EXPECT_EQ(cells[1], 65);   // merger
  EXPECT_EQ(cells[2], 11);   // 1:2 switch
  EXPECT_EQ(cells[3], 3);    // DRO
  EXPECT_EQ(cells[4], 20);   // NDRO
  EXPECT_EQ(cells[5], 44);   // RD
  EXPECT_EQ(cells[6], 6);    // D2
  EXPECT_EQ(wire, 1472);
}

TEST(UnitNetlist, DerivedJjTotalReconcilesWithPaper) {
  // Bottom-up: cell instances x JJs/cell + wire JJs = 3177 exactly.
  int derived = 0;
  for (const auto& m : unit_modules()) derived += m.derived_jjs();
  EXPECT_EQ(derived, unit_budget().jjs);
  EXPECT_EQ(derived, 3177);
}

TEST(UnitNetlist, PublishedModuleBudgetsSumToTotals) {
  int jjs = 0;
  double area = 0.0, bias = 0.0;
  for (const auto& m : unit_modules()) {
    jjs += m.published_jjs;
    area += m.published_area_um2;
    bias += m.published_bias_ma;
  }
  EXPECT_EQ(jjs, 3177);
  EXPECT_DOUBLE_EQ(area, 1274400.0);
  EXPECT_NEAR(bias, 336.0, 0.15);  // Table II rows sum to 336.1 mA
}

TEST(UnitNetlist, ModuleLookups) {
  const auto& modules = unit_modules();
  EXPECT_EQ(modules[static_cast<std::size_t>(UnitModule::BasePointer)]
                .published_jjs,
            1935);
  EXPECT_DOUBLE_EQ(
      modules[static_cast<std::size_t>(UnitModule::StateMachine)]
          .published_latency_ps,
      98.7);
  EXPECT_EQ(modules[static_cast<std::size_t>(UnitModule::Prioritization)]
                .total_cell_instances(),
            13);
}

TEST(UnitNetlist, MaxFrequencyAboutFiveGigahertz) {
  // 215 ps critical path -> 4.65 GHz; the paper rounds to "about 5 GHz".
  EXPECT_NEAR(unit_max_frequency_hz() / 1e9, 4.65, 0.05);
  EXPECT_GT(unit_max_frequency_hz(), 2e9) << "must support the 2 GHz target";
}

TEST(UnitNetlist, UnitsPerLogicalQubit) {
  EXPECT_EQ(units_per_logical_qubit(9), 144);   // 2*9*8
  EXPECT_EQ(units_per_logical_qubit(5), 40);
  EXPECT_EQ(units_per_logical_qubit(13), 312);
}

TEST(Power, RsfqUnitPowerIs840Microwatts) {
  EXPECT_NEAR(qecool_unit_rsfq_power_w() * 1e6, 840.0, 0.5);
}

TEST(Power, ErsfqUnitPowerAtTwoGigahertz) {
  // 336 mA * 2 GHz * Phi0 * 2 = 2.78 uW (Section V-C).
  EXPECT_NEAR(qecool_unit_ersfq_power_w(2e9) * 1e6, 2.78, 0.01);
}

TEST(Power, ErsfqScalesLinearlyWithFrequency) {
  const double at1 = ersfq_power_w(336.0, 1e9);
  const double at2 = ersfq_power_w(336.0, 2e9);
  EXPECT_NEAR(at2 / at1, 2.0, 1e-12);
}

TEST(Budget, QecoolProtects2498LogicalQubits) {
  // Table V headline: d=9, 2 GHz, 1 W at 4 K.
  const auto dep = qecool_deployment(9, 2e9);
  EXPECT_EQ(dep.units_per_logical_qubit, 144);
  EXPECT_NEAR(dep.power_per_unit_w * 1e6, 2.78, 0.01);
  EXPECT_EQ(dep.protectable_logical_qubits(kFourKelvinBudgetW), 2498);
}

TEST(Budget, AqecProtectsAbout37) {
  // The paper prints 37; 37 * 2023 units * 13.44 uW = 1.006 W slightly
  // exceeds the budget, so the floor is 36. We assert the floor and the
  // near-37 value (documented in EXPERIMENTS.md).
  const auto dep = aqec_deployment(9, /*extended_to_3d=*/true);
  EXPECT_EQ(dep.units_per_logical_qubit, 2023);  // (2*9-1)^2 * 7
  const double exact = kFourKelvinBudgetW / dep.power_per_logical_qubit_w();
  EXPECT_NEAR(exact, 36.8, 0.1);
  EXPECT_EQ(dep.protectable_logical_qubits(kFourKelvinBudgetW), 36);
}

TEST(Budget, Aqec2dDeployment) {
  const auto dep = aqec_deployment(9, /*extended_to_3d=*/false);
  EXPECT_EQ(dep.units_per_logical_qubit, 289);
}

TEST(Budget, QecoolBeatsAqecByTwoOrdersOfMagnitude) {
  const auto q = qecool_deployment(9, 2e9);
  const auto a = aqec_deployment(9, true);
  const double ratio =
      static_cast<double>(q.protectable_logical_qubits(1.0)) /
      static_cast<double>(a.protectable_logical_qubits(1.0));
  EXPECT_GT(ratio, 60.0);
}

TEST(Budget, LowerFrequencyProtectsMore) {
  const auto at2 = qecool_deployment(9, 2e9);
  const auto at1 = qecool_deployment(9, 1e9);
  EXPECT_GT(at1.protectable_logical_qubits(1.0),
            at2.protectable_logical_qubits(1.0));
}

}  // namespace
}  // namespace qec
