// Tests for the Monte Carlo harness and the threshold estimator.
#include <gtest/gtest.h>

#include <cmath>

#include "mwpm/mwpm_decoder.hpp"
#include "qecool/qecool_decoder.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/threshold.hpp"

namespace qec {
namespace {

TEST(Threshold, RecoversExactCrossing) {
  // Synthetic power-law curves pl = (p / pth)^k with k growing in d cross
  // exactly at pth.
  const double pth = 0.02;
  std::vector<DistanceCurve> curves;
  for (int d : {5, 7, 9}) {
    DistanceCurve curve;
    curve.distance = d;
    for (double p = 0.005; p <= 0.06; p *= 1.3) {
      curve.points.push_back(
          {p, std::pow(p / pth, (d + 1) / 2.0) * 0.3});
    }
    curves.push_back(curve);
  }
  const auto th = estimate_threshold(curves);
  ASSERT_TRUE(th.has_value());
  EXPECT_NEAR(*th, pth, 0.001);
}

TEST(Threshold, NoCrossingReturnsNullopt) {
  std::vector<DistanceCurve> curves;
  for (int d : {5, 7}) {
    DistanceCurve curve;
    curve.distance = d;
    for (double p = 0.01; p <= 0.05; p *= 1.5) {
      curve.points.push_back({p, p * d});  // strictly ordered, no crossing
    }
    curves.push_back(curve);
  }
  EXPECT_FALSE(estimate_threshold(curves).has_value());
}

TEST(Threshold, IgnoresZeroRatePoints) {
  DistanceCurve a{5, {{0.01, 0.0}, {0.02, 0.1}, {0.04, 0.3}}};
  DistanceCurve b{7, {{0.01, 0.0}, {0.02, 0.05}, {0.04, 0.5}}};
  const auto th = curve_crossing(a, b);
  ASSERT_TRUE(th.has_value());
  EXPECT_GT(*th, 0.02);
  EXPECT_LT(*th, 0.04);
}

TEST(MonteCarlo, ConfigHelpers) {
  const auto pheno = phenomenological_config(7, 0.01, 100);
  EXPECT_EQ(pheno.rounds, 7);
  EXPECT_DOUBLE_EQ(pheno.p_meas, 0.01);
  const auto cc = code_capacity_config(7, 0.05, 100);
  EXPECT_EQ(cc.rounds, 1);
  EXPECT_DOUBLE_EQ(cc.p_meas, 0.0);
}

TEST(MonteCarlo, DeterministicForSameSeed) {
  MwpmDecoder dec;
  const auto cfg = phenomenological_config(5, 0.02, 200, 99);
  const auto a = run_memory_experiment(dec, cfg);
  const auto b = run_memory_experiment(dec, cfg);
  EXPECT_EQ(a.failures, b.failures);
}

TEST(MonteCarlo, DifferentSeedsGiveDifferentSamples) {
  MwpmDecoder dec;
  const auto a =
      run_memory_experiment(dec, phenomenological_config(5, 0.03, 300, 1));
  const auto b =
      run_memory_experiment(dec, phenomenological_config(5, 0.03, 300, 2));
  // Not a hard guarantee, but with 300 trials at p = 0.03 a collision of
  // failure counts AND identical CI bounds would be a seeding bug.
  EXPECT_TRUE(a.failures != b.failures || a.ci.upper != b.ci.upper ||
              a.failures > 0);
}

TEST(MonteCarlo, ZeroNoiseNeverFails) {
  BatchQecoolDecoder dec;
  ExperimentConfig cfg = phenomenological_config(5, 0.0, 50);
  const auto r = run_memory_experiment(dec, cfg);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_DOUBLE_EQ(r.logical_error_rate, 0.0);
}

TEST(MonteCarlo, FailureRateWithinCi) {
  MwpmDecoder dec;
  const auto r =
      run_memory_experiment(dec, phenomenological_config(5, 0.03, 500));
  EXPECT_GE(r.logical_error_rate, r.ci.lower);
  EXPECT_LE(r.logical_error_rate, r.ci.upper);
  EXPECT_EQ(r.trials, 500u);
}

TEST(MonteCarlo, QecoolCollectsMatchStats) {
  BatchQecoolDecoder dec;
  const auto r =
      run_memory_experiment(dec, phenomenological_config(5, 0.05, 100));
  EXPECT_GT(r.matches.total(), 0u);
}

TEST(MonteCarlo, OnlineExperimentReportsLayerCycles) {
  OnlineConfig online;
  online.cycles_per_round = 2000;
  const auto r =
      run_online_experiment(phenomenological_config(5, 0.005, 100), online);
  EXPECT_GT(r.layer_cycles.count(), 0u);
  EXPECT_GT(r.layer_cycles.mean(), 0.0);
  EXPECT_LE(r.operational_failures, r.failures);
}

TEST(MonteCarlo, OnlineLowFrequencyFailsMoreAtLargeDistance) {
  OnlineConfig slow, fast;
  slow.cycles_per_round = 40;
  fast.cycles_per_round = 4000;
  const auto cfg = phenomenological_config(11, 0.01, 60);
  const auto rs = run_online_experiment(cfg, slow);
  const auto rf = run_online_experiment(cfg, fast);
  EXPECT_GE(rs.failures, rf.failures);
  EXPECT_GT(rs.operational_failures, 0u);
}

}  // namespace
}  // namespace qec
