// Tests for power-aware pool admission control (src/stream/admission.*):
// spec parsing fails loudly, the power model caps the pool at the budget,
// checkpoint()/resume() round-trip on OnlineStepper, admission=pause keeps
// a bursty lane alive that admission=overflow loses, admission=overflow
// stays byte-identical to the PR 3 goldens, and pause-mode outcomes are
// thread-count invariant.
#include "stream/admission.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "qecool/online_runner.hpp"
#include "stream/service.hpp"
#include "surface_code/planar_lattice.hpp"

namespace qec {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string csv_of(const StreamOutcome& outcome, const char* name) {
  const std::string path = temp_path(name);
  EXPECT_TRUE(outcome.telemetry.write_csv(path));
  const std::string text = read_all(path);
  std::remove(path.c_str());
  return text;
}

std::string schedule_csv_of(const StreamOutcome& outcome, const char* name) {
  const std::string path = temp_path(name);
  EXPECT_TRUE(outcome.telemetry.write_schedule_csv(path));
  const std::string text = read_all(path);
  std::remove(path.c_str());
  return text;
}

std::string timeline_csv_of(const StreamOutcome& outcome, const char* name) {
  const std::string path = temp_path(name);
  EXPECT_TRUE(outcome.telemetry.write_timeline_csv(path));
  const std::string text = read_all(path);
  std::remove(path.c_str());
  return text;
}

TEST(Admission, SpecParsing) {
  const auto overflow = parse_admission_spec("overflow");
  EXPECT_FALSE(overflow.pause());

  const auto pause = parse_admission_spec("pause");
  EXPECT_TRUE(pause.pause());
  EXPECT_EQ(pause.high_water, 0);  // auto: reg_depth
  EXPECT_EQ(pause.low_water, -1);  // auto: reg_depth / 2

  const auto marked = parse_admission_spec("pause:high=6,low=2");
  EXPECT_TRUE(marked.pause());
  EXPECT_EQ(marked.high_water, 6);
  EXPECT_EQ(marked.low_water, 2);

  // Unknown modes, options the mode does not understand, malformed
  // option lists, and unorderable watermarks all throw.
  EXPECT_THROW(parse_admission_spec("shed"), std::invalid_argument);
  EXPECT_THROW(parse_admission_spec("overflow:high=3"), std::invalid_argument);
  EXPECT_THROW(parse_admission_spec("pause:bogus=1"), std::invalid_argument);
  EXPECT_THROW(parse_admission_spec("pause:high"), std::invalid_argument);
  EXPECT_THROW(parse_admission_spec("pause:high=x"), std::invalid_argument);
  EXPECT_THROW(parse_admission_spec("pause:high=3,low=5"),
               std::invalid_argument);
  EXPECT_THROW(parse_admission_spec("pause:high=3,low=3"),
               std::invalid_argument);
  // Explicit non-positive marks are typos, not requests for the
  // automatic watermarks.
  EXPECT_THROW(parse_admission_spec("pause:high=0"), std::invalid_argument);
  EXPECT_THROW(parse_admission_spec("pause:high=-3"), std::invalid_argument);
  EXPECT_THROW(parse_admission_spec("pause:low=-2"), std::invalid_argument);
}

TEST(Admission, ResolveValidatesAgainstRegDepth) {
  const int reg_depth = 7;
  const auto resolved =
      resolve_admission(parse_admission_spec("pause"), reg_depth);
  EXPECT_EQ(resolved.high_water, reg_depth);
  EXPECT_EQ(resolved.low_water, reg_depth / 2);

  // A high-water mark beyond the queue capacity can never trigger before
  // the overflow it is supposed to prevent.
  EXPECT_THROW(
      resolve_admission(parse_admission_spec("pause:high=8"), reg_depth),
      std::invalid_argument);
  // Auto low (3) >= explicit high (2): unorderable after resolution.
  EXPECT_THROW(
      resolve_admission(parse_admission_spec("pause:high=2"), reg_depth),
      std::invalid_argument);
  EXPECT_NO_THROW(
      resolve_admission(parse_admission_spec("pause:high=2,low=0"), reg_depth));

  // The service surfaces the same errors through StreamConfig.
  StreamConfig config;
  config.lanes = 2;
  config.rounds = 4;
  config.cycles_per_round = 50;
  config.admission = "pause:high=9";
  EXPECT_THROW(run_stream(config), std::invalid_argument);
  config.admission = "shed";
  EXPECT_THROW(run_stream(config), std::invalid_argument);
}

TEST(Admission, PowerModelMatchesDeploymentAndInverts) {
  const PoolPowerModel one{1, 5, 60e6};
  EXPECT_GT(one.watts_per_engine(), 0.0);
  EXPECT_DOUBLE_EQ(one.watts(), one.watts_per_engine());

  const PoolPowerModel four{4, 5, 60e6};
  EXPECT_DOUBLE_EQ(four.watts(), 4.0 * one.watts_per_engine());

  // Power is linear in the clock (ERSFQ dynamic dissipation).
  const PoolPowerModel fast{1, 5, 120e6};
  EXPECT_NEAR(fast.watts(), 2.0 * one.watts(), 1e-18);

  // max_engines inverts watts(): K engines fit, K + 1 do not.
  const double budget = 3.5 * one.watts_per_engine();
  const int fit = PoolPowerModel::max_engines(budget, 5, 60e6);
  EXPECT_EQ(fit, 3);
  EXPECT_TRUE((PoolPowerModel{fit, 5, 60e6}.fits(budget)));
  EXPECT_FALSE((PoolPowerModel{fit + 1, 5, 60e6}.fits(budget)));
  EXPECT_EQ(PoolPowerModel::max_engines(one.watts_per_engine() * 0.5, 5, 60e6),
            0);
}

TEST(Admission, BudgetWattsCapThePool) {
  StreamConfig config;
  config.lanes = 6;
  config.distance = 5;
  config.p = 0.02;
  config.rounds = 8;
  config.seed = 7;
  config.cycles_per_round = 60;  // 60 MHz clock
  config.policy = "least_loaded";

  const double per_engine = PoolPowerModel{1, 5, 60e6}.watts_per_engine();

  // Budget for ~2.5 engines: the pool is shed from 6 to 2.
  config.budget_w = 2.5 * per_engine;
  const auto capped = run_stream(config);
  EXPECT_EQ(capped.telemetry.engines, 2);
  EXPECT_NEAR(capped.telemetry.watts, 2.0 * per_engine, 1e-15);
  EXPECT_DOUBLE_EQ(capped.telemetry.budget_w, config.budget_w);

  // An explicit K below the cap is left alone.
  config.engines = 1;
  EXPECT_EQ(run_stream(config).telemetry.engines, 1);
  config.engines = 0;

  // A budget that cannot power a single engine fails loudly.
  config.budget_w = 0.5 * per_engine;
  EXPECT_THROW(run_stream(config), std::invalid_argument);

  // A budget without a clock is undefined: watts scale with frequency.
  config.budget_w = 1.0;
  config.cycles_per_round = 0.0;
  EXPECT_THROW(run_stream(config), std::invalid_argument);
}

TEST(Admission, CheckpointResumeRoundTripIsANoOp) {
  const PlanarLattice lattice(5);
  OnlineConfig online;
  online.cycles_per_round = 30;

  // Two identical steppers fed the same stream; one checkpoint/resume
  // round-trips mid-stream. All subsequent behaviour must be identical.
  OnlineStepper plain(lattice, online);
  OnlineStepper paused(lattice, online);
  BitVec layer(static_cast<std::size_t>(lattice.num_checks()), 0);
  layer[2] = layer[9] = 1;

  for (int round = 0; round < 4; ++round) {
    EXPECT_TRUE(plain.step(layer));
    EXPECT_TRUE(paused.step(layer));
  }

  const StepperCheckpoint cp = paused.checkpoint();
  EXPECT_TRUE(paused.paused());
  EXPECT_EQ(cp.rounds_accepted, paused.rounds_stepped());
  EXPECT_EQ(cp.stored_layers, paused.engine().stored_layers());
  EXPECT_EQ(cp.correction, paused.engine().correction());
  EXPECT_EQ(cp.total_cycles, paused.engine().total_cycles());
  paused.resume();
  EXPECT_FALSE(paused.paused());

  for (int round = 0; round < 40; ++round) {
    EXPECT_TRUE(plain.step_clean());
    EXPECT_TRUE(paused.step_clean());
    if (plain.drained() && paused.drained()) break;
  }
  const OnlineResult a = plain.result();
  const OnlineResult b = paused.result();
  EXPECT_EQ(a.correction, b.correction);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.layer_cycles, b.layer_cycles);
  EXPECT_EQ(a.drained, b.drained);
}

TEST(Admission, CheckpointDrainResumeContinuesCorrectly) {
  const PlanarLattice lattice(5);
  OnlineConfig online;
  online.cycles_per_round = 0;  // unconstrained step budget for the tail
  BitVec layer(static_cast<std::size_t>(lattice.num_checks()), 0);
  layer[0] = layer[5] = 1;

  // Reference: push + spend with no pause.
  OnlineStepper reference(lattice, online);
  // Paused twin: same pushes and the same total spends, but frozen (no
  // pushes) while the backlog drains between rounds 5 and 6.
  OnlineStepper frozen(lattice, online);

  for (int round = 0; round < 5; ++round) {
    EXPECT_TRUE(reference.push(layer));
    reference.spend(10);
    EXPECT_TRUE(frozen.push(layer));
    frozen.spend(10);
  }
  const StepperCheckpoint cp = frozen.checkpoint();
  EXPECT_GT(cp.stored_layers, 0);
  // While paused: pushes are a logic error, spends drain the backlog.
  EXPECT_THROW(frozen.push(layer), std::logic_error);
  EXPECT_THROW(frozen.checkpoint(), std::logic_error);
  const std::uint64_t before = frozen.engine().total_cycles();
  for (int round = 0; round < 8; ++round) frozen.spend(10);
  EXPECT_GT(frozen.engine().total_cycles(), before)
      << "a paused lane must keep draining through spend()";
  reference.spend(80);  // same cycles, granted in one block
  frozen.resume();
  EXPECT_THROW(frozen.resume(), std::logic_error);

  for (int round = 0; round < 60; ++round) {
    EXPECT_TRUE(reference.step_clean());
    EXPECT_TRUE(frozen.step_clean());
    if (reference.drained() && frozen.drained()) break;
  }
  EXPECT_TRUE(reference.drained());
  EXPECT_TRUE(frozen.drained());
  EXPECT_EQ(reference.result().correction, frozen.result().correction);
  EXPECT_EQ(reference.result().total_cycles, frozen.result().total_cycles);
}

/// One bursty lane among quiet ones (the PR 3 rescue scenario, turned up
/// until even the scheduler cannot help): with K = 1 engine under a fixed
/// rotation, admission=overflow loses the bursty lane to Reg overflow;
/// admission=pause freezes its clock at the high-water mark, drains it on
/// engines the rotation wastes, and finishes it late but alive.
SyndromeTrace bursty_trace(int lanes, int rounds, int bursty_lane) {
  const PlanarLattice lattice(5);
  TraceHeader header;
  header.distance = 5;
  header.lanes = static_cast<std::uint32_t>(lanes);
  header.rounds = static_cast<std::uint32_t>(rounds);
  header.checks = static_cast<std::uint32_t>(lattice.num_checks());
  header.data_qubits = static_cast<std::uint32_t>(lattice.num_data());
  SyndromeTrace trace(header);
  for (int round = 4; round < rounds - 6 && round < 24; ++round) {
    BitVec layer(static_cast<std::size_t>(lattice.num_checks()), 0);
    for (const int check : {0, 3, 9, 14, 16, 19}) {
      layer[static_cast<std::size_t>(check)] = 1;
    }
    trace.set_layer(bursty_lane, round, std::move(layer));
  }
  return trace;
}

TEST(Admission, PauseKeepsBurstyLaneAliveWhereOverflowLosesIt) {
  const int lanes = 4;
  const int bursty = 2;
  const auto trace = bursty_trace(lanes, 40, bursty);

  StreamConfig config;
  config.lanes = lanes;
  config.distance = 5;
  config.engines = 1;  // one engine for four lanes
  config.policy = "round_robin";
  config.cycles_per_round = 60;
  config.max_drain_rounds = 400;

  config.admission = "overflow";
  const auto overflow = run_stream(trace, config);
  ASSERT_TRUE(overflow.telemetry.lanes[bursty].overflow)
      << "the (K, clock) point must be one where overflow loses the lane";

  config.admission = "pause";
  const auto pause = run_stream(trace, config);
  for (const auto& lane : pause.telemetry.lanes) {
    EXPECT_FALSE(lane.overflow) << "lane " << lane.lane;
    EXPECT_TRUE(lane.drained) << "lane " << lane.lane;
    EXPECT_EQ(lane.rounds_streamed, trace.rounds()) << "lane " << lane.lane;
  }
  EXPECT_LT(pause.failed_lanes, overflow.failed_lanes);

  // The rescue is visible in the admission telemetry: the bursty lane was
  // paused at least once, re-admitted as many times as it was paused, and
  // the pauses show up in the timeline.
  const auto& rescued = pause.telemetry.lanes[bursty];
  EXPECT_GT(rescued.pauses, 0);
  EXPECT_EQ(rescued.pauses, rescued.resumes);
  EXPECT_GE(rescued.paused_rounds, rescued.pauses);
  EXPECT_EQ(pause.telemetry.ever_paused_lanes(), 1);
  int timeline_paused = 0;
  for (const auto& s : pause.telemetry.timeline) {
    timeline_paused += s.paused_lanes;
  }
  EXPECT_EQ(timeline_paused, rescued.paused_rounds);
}

TEST(Admission, LaggedLaneAtRoundBoundIsNotCountedDrained) {
  // A lane that spends the tail of the run paused can reach the
  // trace.rounds() + max_drain_rounds bound with an empty queue but an
  // unconsumed trace tail. It dropped syndrome layers, so it must count
  // as undrained/failed — never as a survivor scored against the
  // full-trace ground truth.
  const int lanes = 4;
  const int bursty = 2;
  const auto trace = bursty_trace(lanes, 40, bursty);

  StreamConfig config;
  config.lanes = lanes;
  config.distance = 5;
  config.engines = 1;
  config.policy = "round_robin";
  config.cycles_per_round = 60;
  config.admission = "pause";
  config.max_drain_rounds = 10;  // far too small for the paused lane's lag
  const auto outcome = run_stream(trace, config);

  const auto& lagged = outcome.telemetry.lanes[bursty];
  ASSERT_LT(lagged.rounds_streamed, trace.rounds())
      << "the scenario must actually leave the lane mid-trace at the bound";
  EXPECT_FALSE(lagged.drained);
  EXPECT_TRUE(lagged.failed());
  EXPECT_FALSE(lagged.logical_failure) << "unscored, not scored-and-wrong";

  // With a generous bound the same lane finishes the whole trace.
  config.max_drain_rounds = 400;
  const auto generous = run_stream(trace, config);
  const auto& finished = generous.telemetry.lanes[bursty];
  EXPECT_EQ(finished.rounds_streamed, trace.rounds());
  EXPECT_TRUE(finished.drained);
}

TEST(Admission, PauseNeverOverflowsAtAutoWatermarks) {
  // With the automatic high-water mark (reg_depth), a pause fires exactly
  // where the next push would overflow — so no lane can ever overflow,
  // for any policy or pool size.
  StreamConfig config;
  config.lanes = 5;
  config.distance = 7;
  config.p = 0.03;
  config.rounds = 20;
  config.seed = 11;
  config.cycles_per_round = 4;  // the PR 3 starved-clock golden scenario
  config.admission = "pause";
  const auto outcome = run_stream(config);
  EXPECT_EQ(outcome.overflow_lanes, 0);
  EXPECT_GT(outcome.telemetry.ever_paused_lanes(), 0);
}

// Telemetry CSV of the pre-refactor (PR 2) run_stream for lanes=4, d=5,
// p=0.02, rounds=10, seed=7, 60 cycles/round — the same golden capture
// stream_scheduler_test pins. admission=overflow must keep reproducing it
// byte for byte with the admission layer in place.
constexpr const char* kGoldenPr2Csv =
    "lane,distance,p,engine,budget,overflow,drained,logical_fail,rounds,"
    "drain_rounds,popped,total_cycles,cyc_p50,cyc_p95,cyc_p99,cyc_max,"
    "depth_mean,depth_max,depth_0,depth_1,depth_2,depth_3,depth_4,depth_5,"
    "depth_6,depth_7\n"
    "0,5,0.02,qecool,60,0,1,0,11,0,11,94,7,14,14,14,1.3636,3,4,2,2,3,0,0,0,0\n"
    "1,5,0.02,qecool,60,0,1,0,11,2,13,197,7,44,44,44,2.0769,3,1,3,3,6,0,0,0,0\n"
    "2,5,0.02,qecool,60,0,1,0,11,2,13,347,23,72,72,72,2.6923,4,1,1,1,8,2,0,0,0\n"
    "3,5,0.02,qecool,60,0,1,0,11,2,13,131,7,23,23,23,1.6923,3,3,2,4,4,0,0,0,0\n"
    "all,5,0.02,qecool,60,0,4,0,44,6,50,769,7,44,72,72,1.9800,4,9,8,10,21,2,"
    "0,0,0\n";

TEST(Admission, OverflowModeStaysByteIdenticalToPr3Goldens) {
  StreamConfig config;
  config.lanes = 4;
  config.distance = 5;
  config.p = 0.02;
  config.rounds = 10;
  config.seed = 7;
  config.cycles_per_round = 60;
  config.admission = "overflow";  // spelled out, parsed through the spec
  EXPECT_EQ(csv_of(run_stream(config), "adm_golden.csv"), kGoldenPr2Csv);
}

TEST(Admission, PauseOutcomesThreadCountInvariant) {
  StreamConfig config;
  config.lanes = 6;
  config.distance = 5;
  config.p = 0.02;
  config.rounds = 12;
  config.seed = 7;
  config.engines = 2;
  config.policy = "least_loaded";
  config.cycles_per_round = 20;  // starved enough to trigger pauses
  config.admission = "pause";
  const auto trace = record_trace(config);

  config.threads = 1;
  const auto serial = run_stream(trace, config);
  config.threads = 4;
  const auto parallel = run_stream(trace, config);

  EXPECT_EQ(csv_of(serial, "adm_t1.csv"), csv_of(parallel, "adm_t4.csv"));
  EXPECT_EQ(schedule_csv_of(serial, "adm_s1.csv"),
            schedule_csv_of(parallel, "adm_s4.csv"));
  EXPECT_EQ(timeline_csv_of(serial, "adm_r1.csv"),
            timeline_csv_of(parallel, "adm_r4.csv"));
  for (std::size_t i = 0; i < serial.telemetry.lanes.size(); ++i) {
    EXPECT_EQ(serial.telemetry.lanes[i].pauses,
              parallel.telemetry.lanes[i].pauses);
    EXPECT_EQ(serial.telemetry.lanes[i].paused_rounds,
              parallel.telemetry.lanes[i].paused_rounds);
  }
}

TEST(Admission, PauseAccountingIsConsistent) {
  StreamConfig config;
  config.lanes = 6;
  config.distance = 5;
  config.p = 0.02;
  config.rounds = 12;
  config.seed = 7;
  config.engines = 2;
  config.policy = "least_loaded";
  config.cycles_per_round = 20;
  config.admission = "pause";
  const auto outcome = run_stream(config);
  const auto& t = outcome.telemetry;

  // Engine-rounds cover exactly the recorded timeline; each served
  // lane-round maps to one busy engine-round; cycles balance.
  const auto scheduled = static_cast<std::int64_t>(t.timeline.size());
  std::int64_t busy = 0;
  std::uint64_t engine_cycles = 0;
  for (const auto& e : t.engine_stats) {
    EXPECT_EQ(e.busy_rounds + e.idle_rounds, scheduled);
    busy += e.busy_rounds;
    engine_cycles += e.cycles;
  }
  std::int64_t served = 0;
  std::uint64_t lane_cycles = 0;
  for (const auto& lane : t.lanes) {
    served += lane.served_rounds;
    lane_cycles += lane.total_cycles;
    // Every round a lane took part in is streamed, drained, or paused.
    EXPECT_LE(lane.served_rounds,
              lane.rounds_streamed + lane.drain_rounds + lane.paused_rounds);
    // The lane's clock pauses and resumes in strict alternation.
    EXPECT_GE(lane.pauses, lane.resumes);
    EXPECT_LE(lane.pauses, lane.resumes + 1);
  }
  EXPECT_EQ(busy, served);
  EXPECT_EQ(engine_cycles, lane_cycles);

  std::int64_t tl_live = 0, tl_paused = 0, tl_served = 0;
  std::uint64_t tl_cycles = 0;
  for (const auto& s : t.timeline) {
    EXPECT_LE(s.served_lanes, config.engines);
    EXPECT_LE(s.depth_max, 7);
    tl_live += s.live_lanes;
    tl_paused += s.paused_lanes;
    tl_served += s.served_lanes;
    tl_cycles += s.cycles;
  }
  std::int64_t lane_rounds = 0, lane_paused = 0;
  for (const auto& lane : t.lanes) {
    lane_rounds += lane.rounds_streamed + lane.drain_rounds;
    lane_paused += lane.paused_rounds;
  }
  EXPECT_EQ(tl_live, lane_rounds);
  EXPECT_EQ(tl_paused, lane_paused);
  EXPECT_EQ(tl_served, served);
  EXPECT_EQ(tl_cycles, engine_cycles);
}

}  // namespace
}  // namespace qec
